package aggstack

import (
	"strings"
	"testing"
)

func TestParseStack(t *testing.T) {
	cases := []struct {
		in   string
		want string // String() round-trip form; "ERR" marks a parse error
	}{
		{"", ""},
		{"none", ""},
		{"zeroing", "zeroing"},
		{"clip", "clip"},
		{"zeroing|clip", "zeroing|clip"},
		{"zeroing:20|clip:5", "zeroing:20|clip:5"},
		{" zeroing : 20 ", "ERR"}, // inner spaces are not trimmed
		{"zeroing:20 | clip", "zeroing:20|clip"},
		{"clip:0.5", "clip:0.5"},
		{"clip|clip:1", "clip|clip:1"},
		{"zeroing:0", "ERR"},
		{"zeroing:-3", "ERR"},
		{"zeroing:NaN", "ERR"},
		{"zeroing:Inf", "ERR"},
		{"zeroing:x", "ERR"},
		{"median", "ERR"},
		{"zeroing||clip", "ERR"},
		{"|", "ERR"},
	}
	for _, c := range cases {
		spec, err := ParseStack(c.in)
		if c.want == "ERR" {
			if err == nil {
				t.Errorf("ParseStack(%q) = %v, want error", c.in, spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseStack(%q): %v", c.in, err)
			continue
		}
		if got := spec.String(); got != c.want {
			t.Errorf("ParseStack(%q).String() = %q, want %q", c.in, got, c.want)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("ParseStack(%q).Validate(): %v", c.in, err)
		}
	}
}

func TestParseServerOpt(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", ""},
		{"none", ""},
		{"fedsgd", "fedsgd"},
		{"fedsgd:1", "fedsgd:1"},
		{"adam", "adam"},
		{"adam:0.05", "adam:0.05"},
		{"adagrad:0.1", "adagrad:0.1"},
		{"yogi", "yogi"},
		{"adam:0", "ERR"},
		{"adam:-1", "ERR"},
		{"adam:NaN", "ERR"},
		{"adam:x", "ERR"},
		{"momentum", "ERR"},
		{"none:5", "ERR"},
	}
	for _, c := range cases {
		spec, err := ParseServerOpt(c.in)
		if c.want == "ERR" {
			if err == nil {
				t.Errorf("ParseServerOpt(%q) = %v, want error", c.in, spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseServerOpt(%q): %v", c.in, err)
			continue
		}
		if got := spec.String(); got != c.want {
			t.Errorf("ParseServerOpt(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestOptSpecDefaults(t *testing.T) {
	if lr := (OptSpec{Kind: OptFedSGD}).lr(); lr != DefaultSGDLR {
		t.Errorf("fedsgd default lr = %v, want %v", lr, DefaultSGDLR)
	}
	for _, k := range []OptKind{OptAdagrad, OptAdam, OptYogi} {
		if lr := (OptSpec{Kind: k}).lr(); lr != DefaultAdaptiveLR {
			t.Errorf("%s default lr = %v, want %v", k, lr, DefaultAdaptiveLR)
		}
	}
	if lr := (OptSpec{Kind: OptAdam, LR: 0.5}).lr(); lr != 0.5 {
		t.Errorf("explicit lr = %v, want 0.5", lr)
	}
}

// FuzzParseStack: the parser never panics, and every accepted spec
// validates and round-trips through String bit-exactly.
func FuzzParseStack(f *testing.F) {
	for _, seed := range []string{"", "none", "zeroing", "clip:5", "zeroing:20|clip", "zeroing|zeroing|clip:0.1", "a:b", "|", "clip:1e300"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseStack(s)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseStack(%q) accepted an invalid spec: %v", s, err)
		}
		rt, err := ParseStack(spec.String())
		if err != nil {
			t.Fatalf("round-trip ParseStack(%q): %v", spec.String(), err)
		}
		if rt.String() != spec.String() {
			t.Fatalf("round-trip %q -> %q", spec.String(), rt.String())
		}
		if _, err := NewStages(spec); err != nil {
			t.Fatalf("NewStages(%q): %v", spec.String(), err)
		}
	})
}

// FuzzParseServerOpt: parser never panics; accepted specs validate,
// round-trip, and construct.
func FuzzParseServerOpt(f *testing.F) {
	for _, seed := range []string{"", "none", "fedsgd", "adam:0.1", "yogi:2", "adagrad", "x:y", ":", "adam:1e-300"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseServerOpt(s)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseServerOpt(%q) accepted an invalid spec: %v", s, err)
		}
		rt, err := ParseServerOpt(spec.String())
		if err != nil {
			t.Fatalf("round-trip ParseServerOpt(%q): %v", spec.String(), err)
		}
		if rt != spec {
			t.Fatalf("round-trip %v -> %v", spec, rt)
		}
		if _, err := NewOptimizer(spec); err != nil {
			t.Fatalf("NewOptimizer(%v): %v", spec, err)
		}
	})
}

// Sanity: strings.Contains guard so a future syntax change that drops the
// "|" separator trips a test, not just docs.
func TestStackStringSeparator(t *testing.T) {
	s := StackSpec{Stages: []StageSpec{{Kind: StageZeroing}, {Kind: StageClipping, Norm: 2}}}
	if got := s.String(); !strings.Contains(got, "|") {
		t.Fatalf("StackSpec.String() = %q, want '|'-separated", got)
	}
}
