package aggstack

import "math"

// QuantileEstimator tracks a target quantile of a norm stream with the
// TFF-style geometric no-noise update (quantile matching): each round the
// estimate is multiplied by exp(lr·(target − below)), where below is the
// fraction of observed norms at or under the current estimate. If too few
// norms fall below (below < target) the estimate grows, and vice versa;
// at the fixed point exactly the target fraction falls below. The update
// is O(n) per round with O(1) state — one float64 — which is what keeps
// checkpoints small and rounds allocation-free.
//
// The round's bound is always the estimate *before* observing that
// round's norms (threshold-then-observe), so the bound a round applies is
// a pure function of previous rounds and replays bit-identically.
type QuantileEstimator struct {
	// Target is the quantile being matched, in (0, 1).
	Target float64
	// LR is the geometric learning rate (> 0).
	LR float64
	// Estimate is the current quantile estimate (> 0).
	Estimate float64
}

// Observe folds one round of norms into the estimate. Entries whose
// multiplier is zero (already dropped by an earlier stage) are skipped;
// pass nil to observe every entry. Empty observations leave the estimate
// unchanged.
func (q *QuantileEstimator) Observe(norms, mult []float64) {
	n, below := 0, 0
	for i, v := range norms {
		if mult != nil && mult[i] == 0 {
			continue
		}
		n++
		if v <= q.Estimate {
			below++
		}
	}
	if n == 0 {
		return
	}
	q.Estimate *= math.Exp(q.LR * (q.Target - float64(below)/float64(n)))
}
