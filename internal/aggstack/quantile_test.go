package aggstack

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// sortQuantile returns the empirical target quantile of xs: the smallest
// sample value whose ≤-fraction reaches the target.
func sortQuantile(xs []float64, target float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, v := range s {
		if float64(i+1)/float64(len(s)) >= target {
			return v
		}
	}
	return s[len(s)-1]
}

// fracBelow returns the fraction of xs at or under c.
func fracBelow(xs []float64, c float64) float64 {
	below := 0
	for _, v := range xs {
		if v <= c {
			below++
		}
	}
	return float64(below) / float64(len(xs))
}

// TestQuantileEstimatorConverges: iterating the geometric update on a
// fixed sample converges to the sort-based quantile, in the sense the
// fixed-point structure allows. Where the empirical CDF is flat at the
// target (a gap between order statistics) any point of the gap is a fixed
// point, so the meaningful invariant is on the CDF: the final estimate's
// ≤-fraction is within one sample of the target. Where the CDF jumps
// across the target (heavy ties) no estimate attains the target fraction
// and the estimator oscillates geometrically around the jump value, so
// the invariant is on the value: within one e^±lr step of the sort-based
// quantile. Every input satisfies at least one of the two.
func TestQuantileEstimatorConverges(t *testing.T) {
	r := rng.New(7)
	uniform := make([]float64, 100)
	for i := range uniform {
		uniform[i] = 1 + 9*r.Float64()
	}
	ties := make([]float64, 100)
	for i := range ties {
		ties[i] = 5 // adversarial: a single atom carries all the mass
	}
	mixed := make([]float64, 100)
	for i := range mixed {
		if i < 90 {
			mixed[i] = 3
		} else {
			mixed[i] = 50 + r.Float64()
		}
	}
	spread := make([]float64, 60)
	for i := range spread {
		spread[i] = math.Pow(10, -2+4*r.Float64())
	}
	twoCluster := make([]float64, 40)
	for i := range twoCluster {
		if i%2 == 0 {
			twoCluster[i] = 1 + 0.01*r.Float64()
		} else {
			twoCluster[i] = 1000 + r.Float64()
		}
	}

	cases := []struct {
		name   string
		xs     []float64
		target float64
		lr     float64
	}{
		{"uniform-0.8", uniform, 0.8, ClippingLR},
		{"uniform-0.98", uniform, 0.98, ClippingLR},
		{"all-ties-0.8", ties, 0.8, ClippingLR},
		{"mixed-ties-0.8", mixed, 0.8, ClippingLR},
		{"log-spread-0.5", spread, 0.5, ZeroingLR},
		{"two-cluster-0.5", twoCluster, 0.5, ClippingLR},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q := &QuantileEstimator{Target: c.target, LR: c.lr, Estimate: 1}
			for it := 0; it < 2000; it++ {
				q.Observe(c.xs, nil)
			}
			est := q.Estimate
			if math.IsNaN(est) || math.IsInf(est, 0) || est <= 0 {
				t.Fatalf("estimate diverged: %v", est)
			}
			wantQ := sortQuantile(c.xs, c.target)
			fracOK := math.Abs(fracBelow(c.xs, est)-c.target) <= 1.0/float64(len(c.xs))+1e-9
			valueOK := math.Abs(math.Log(est)-math.Log(wantQ)) <= c.lr+1e-9
			if !fracOK && !valueOK {
				t.Fatalf("estimate %v: frac %.3f (target %.3f), sort quantile %v — neither CDF nor value invariant holds",
					est, fracBelow(c.xs, est), c.target, wantQ)
			}
		})
	}
}

// TestQuantileEstimatorSkipsDropped: entries with a zero multiplier are
// invisible to the observation.
func TestQuantileEstimatorSkipsDropped(t *testing.T) {
	norms := []float64{1, 2, 1e9, 3}
	mult := []float64{1, 1, 0, 1}
	a := &QuantileEstimator{Target: 0.8, LR: 0.2, Estimate: 5}
	b := &QuantileEstimator{Target: 0.8, LR: 0.2, Estimate: 5}
	a.Observe(norms, mult)
	b.Observe([]float64{1, 2, 3}, nil)
	if a.Estimate != b.Estimate {
		t.Fatalf("dropped entry leaked into observation: %v vs %v", a.Estimate, b.Estimate)
	}
}

// TestQuantileEstimatorEmptyObservation: observing nothing (all dropped,
// or an empty round) leaves the estimate untouched.
func TestQuantileEstimatorEmptyObservation(t *testing.T) {
	q := &QuantileEstimator{Target: 0.8, LR: 0.2, Estimate: 3.5}
	q.Observe(nil, nil)
	q.Observe([]float64{9, 9}, []float64{0, 0})
	if q.Estimate != 3.5 {
		t.Fatalf("empty observation moved the estimate to %v", q.Estimate)
	}
}
