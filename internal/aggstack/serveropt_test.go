package aggstack

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// scalarOpt is the naive per-coordinate reference the vectorized
// optimizers are differentially tested against: one scalar moment pair,
// the update rules transcribed directly from Reddi et al. with no
// buffer reuse, loop fusion, or shared bias-correction factors.
type scalarOpt struct {
	kind OptKind
	lr   float64
	t    int
	m, v float64
}

func (s *scalarOpt) step(wPrev, w float64) float64 {
	g := w - wPrev
	const beta1, beta2, eps = DefaultBeta1, DefaultBeta2, DefaultEps
	s.t++
	switch s.kind {
	case OptFedSGD:
		return wPrev + s.lr*g
	case OptAdagrad:
		s.m = beta1*s.m + (1-beta1)*g
		s.v = s.v + g*g
		mhat := s.m / (1 - math.Pow(beta1, float64(s.t)))
		return wPrev + s.lr*mhat/(math.Sqrt(s.v)+eps)
	case OptAdam:
		s.m = beta1*s.m + (1-beta1)*g
		s.v = beta2*s.v + (1-beta2)*g*g
		mhat := s.m / (1 - math.Pow(beta1, float64(s.t)))
		vhat := s.v / (1 - math.Pow(beta2, float64(s.t)))
		return wPrev + s.lr*mhat/(math.Sqrt(vhat)+eps)
	case OptYogi:
		g2 := g * g
		s.m = beta1*s.m + (1-beta1)*g
		switch {
		case s.v > g2:
			s.v -= (1 - beta2) * g2
		case s.v < g2:
			s.v += (1 - beta2) * g2
		}
		mhat := s.m / (1 - math.Pow(beta1, float64(s.t)))
		vhat := s.v / (1 - math.Pow(beta2, float64(s.t)))
		return wPrev + s.lr*mhat/(math.Sqrt(vhat)+eps)
	}
	return w
}

// TestOptimizerMatchesScalarReference drives each optimizer through
// randomized pseudo-gradient sequences and checks every coordinate
// against the independent scalar reference after every step.
func TestOptimizerMatchesScalarReference(t *testing.T) {
	const d, rounds = 64, 40
	for _, kind := range []OptKind{OptFedSGD, OptAdagrad, OptAdam, OptYogi} {
		for _, lr := range []float64{0, 0.03, 1.7} {
			spec := OptSpec{Kind: kind, LR: lr}
			t.Run(spec.Kind.String()+"/"+spec.String(), func(t *testing.T) {
				opt, err := NewOptimizer(spec)
				if err != nil {
					t.Fatal(err)
				}
				opt.Grow(d)
				refs := make([]scalarOpt, d)
				for i := range refs {
					refs[i] = scalarOpt{kind: kind, lr: opt.LR()}
				}
				r := rng.New(uint64(17 + len(kind)))
				wPrev := make([]float64, d)
				w := make([]float64, d)
				want := make([]float64, d)
				for i := range wPrev {
					wPrev[i] = r.Normal(0, 1)
				}
				for round := 0; round < rounds; round++ {
					for i := range w {
						// Aggregated model = wPrev + pseudo-gradient,
						// heavy-tailed to stress the adaptive denominators.
						g := r.Normal(0, 1)
						if r.Float64() < 0.1 {
							g *= 100
						}
						if r.Float64() < 0.1 {
							g = 0 // sparse coordinates: Yogi's special case
						}
						w[i] = wPrev[i] + g
						want[i] = refs[i].step(wPrev[i], w[i])
					}
					opt.Step(wPrev, w)
					for i := range w {
						diff := math.Abs(w[i] - want[i])
						scale := math.Max(1, math.Abs(want[i]))
						if diff > 1e-12*scale || math.IsNaN(w[i]) {
							t.Fatalf("round %d coord %d: got %v, want %v (diff %g)", round, i, w[i], want[i], diff)
						}
					}
					copy(wPrev, w)
				}
			})
		}
	}
}

// TestFedSGDUnitLRIsIdentity: fedsgd with lr 1 must leave the aggregated
// model bit-identical — the law the stacked golden test builds on.
func TestFedSGDUnitLRIsIdentity(t *testing.T) {
	opt, err := NewOptimizer(OptSpec{Kind: OptFedSGD, LR: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt.Grow(8)
	wPrev := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	w := []float64{1.5, 1.9, 3.1, 4, 5.25, 5.75, 7.5, 8.125}
	orig := append([]float64(nil), w...)
	opt.Step(wPrev, w)
	for i := range w {
		if w[i] != orig[i] {
			t.Fatalf("coord %d moved: %v -> %v", i, orig[i], w[i])
		}
	}
}

// TestOptimizerStateRoundTrip: State/Restore reproduce the exact
// trajectory — step the original and a restored copy in lockstep and
// demand bit-identical output.
func TestOptimizerStateRoundTrip(t *testing.T) {
	const d = 16
	for _, kind := range []OptKind{OptAdagrad, OptAdam, OptYogi} {
		t.Run(kind.String(), func(t *testing.T) {
			opt, err := NewOptimizer(OptSpec{Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			opt.Grow(d)
			r := rng.New(29)
			wPrev := make([]float64, d)
			w := make([]float64, d)
			for round := 0; round < 5; round++ {
				for i := range w {
					w[i] = wPrev[i] + r.Normal(0, 1)
				}
				opt.Step(wPrev, w)
				copy(wPrev, w)
			}
			step, m, v := opt.State()
			mCopy := append([]float64(nil), m...)
			vCopy := append([]float64(nil), v...)

			clone, err := NewOptimizer(OptSpec{Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			clone.Grow(d)
			if err := clone.Restore(step, mCopy, vCopy); err != nil {
				t.Fatal(err)
			}
			wA := append([]float64(nil), wPrev...)
			wB := append([]float64(nil), wPrev...)
			for i := range wA {
				delta := 0.1 * float64(i+1)
				wA[i] += delta
				wB[i] += delta
			}
			opt.Step(wPrev, wA)
			clone.Step(wPrev, wB)
			for i := range wA {
				if wA[i] != wB[i] {
					t.Fatalf("coord %d diverged after restore: %v vs %v", i, wA[i], wB[i])
				}
			}
		})
	}
}

// TestOptimizerRestoreRejectsMismatch: restoring moments of the wrong
// dimension fails instead of corrupting state.
func TestOptimizerRestoreRejectsMismatch(t *testing.T) {
	opt, _ := NewOptimizer(OptSpec{Kind: OptAdam})
	opt.Grow(4)
	if err := opt.Restore(1, make([]float64, 3), make([]float64, 4)); err == nil {
		t.Fatal("restore accepted mismatched first moment")
	}
	if err := opt.Restore(-1, make([]float64, 4), make([]float64, 4)); err == nil {
		t.Fatal("restore accepted a negative step counter")
	}
}

// TestOptimizerGrowNoRealloc: Grow with the same dimension keeps the
// backing arrays (the 0-alloc steady-state contract).
func TestOptimizerGrowNoRealloc(t *testing.T) {
	opt, _ := NewOptimizer(OptSpec{Kind: OptYogi})
	opt.Grow(32)
	_, m1, _ := opt.State()
	opt.Grow(32)
	_, m2, _ := opt.State()
	if &m1[0] != &m2[0] {
		t.Fatal("Grow reallocated the moment buffer")
	}
}
