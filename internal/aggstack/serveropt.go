package aggstack

import (
	"fmt"
	"math"
)

// Optimizer is a FedOpt server optimizer (Reddi et al.): it consumes the
// round's aggregated pseudo-gradient g = w_agg − w_prev and rewrites the
// model as w ← w_prev + lr·direction(g), maintaining O(d) moment state.
// With kind fedsgd and lr 1 the rewrite is exactly the identity, which is
// what pins the wrapped engine to the pre-stack golden trace.
//
// Step never allocates once Grow has sized the moment buffers, and the
// full optimizer state is (step counter, m, v) — captured and restored
// exactly by State/Restore, so checkpointed runs replay bit-identically.
type Optimizer struct {
	kind                  OptKind
	lr, beta1, beta2, eps float64
	step                  int
	m, v                  []float64
}

// NewOptimizer constructs the optimizer a spec declares, or nil for the
// zero spec. The spec must validate.
func NewOptimizer(spec OptSpec) (*Optimizer, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.None() {
		return nil, nil
	}
	return &Optimizer{
		kind:  spec.Kind,
		lr:    spec.lr(),
		beta1: DefaultBeta1,
		beta2: DefaultBeta2,
		eps:   DefaultEps,
	}, nil
}

// Kind reports the optimizer family.
func (o *Optimizer) Kind() OptKind { return o.kind }

// LR reports the resolved server learning rate.
func (o *Optimizer) LR() float64 { return o.lr }

// Grow pre-sizes the moment buffers for d parameters (fedsgd holds no
// moments). Call once before the first Step; Step then never allocates.
func (o *Optimizer) Grow(d int) {
	if o.kind == OptFedSGD {
		return
	}
	if cap(o.m) < d {
		o.m = make([]float64, d)
		o.v = make([]float64, d)
	}
	o.m = o.m[:d]
	o.v = o.v[:d]
}

// Step consumes the aggregated pseudo-gradient g[i] = w[i] − wPrev[i] and
// rewrites w in place to wPrev + lr·direction(g). wPrev is read-only.
func (o *Optimizer) Step(wPrev, w []float64) {
	switch o.kind {
	case OptFedSGD:
		if o.lr == 1 {
			// Exactly the aggregated model: bit-identical to no optimizer.
			return
		}
		for i := range w {
			w[i] = wPrev[i] + o.lr*(w[i]-wPrev[i])
		}
		return
	case OptAdagrad:
		o.step++
		// Adagrad accumulates v without decay; only the first moment is
		// an EMA and gets bias-corrected.
		c1 := 1 / (1 - math.Pow(o.beta1, float64(o.step)))
		for i := range w {
			g := w[i] - wPrev[i]
			o.m[i] = o.beta1*o.m[i] + (1-o.beta1)*g
			o.v[i] += g * g
			w[i] = wPrev[i] + o.lr*(o.m[i]*c1)/(math.Sqrt(o.v[i])+o.eps)
		}
		return
	case OptAdam:
		o.step++
		c1 := 1 / (1 - math.Pow(o.beta1, float64(o.step)))
		c2 := 1 / (1 - math.Pow(o.beta2, float64(o.step)))
		for i := range w {
			g := w[i] - wPrev[i]
			o.m[i] = o.beta1*o.m[i] + (1-o.beta1)*g
			o.v[i] = o.beta2*o.v[i] + (1-o.beta2)*g*g
			w[i] = wPrev[i] + o.lr*(o.m[i]*c1)/(math.Sqrt(o.v[i]*c2)+o.eps)
		}
		return
	case OptYogi:
		o.step++
		c1 := 1 / (1 - math.Pow(o.beta1, float64(o.step)))
		c2 := 1 / (1 - math.Pow(o.beta2, float64(o.step)))
		for i := range w {
			g := w[i] - wPrev[i]
			g2 := g * g
			o.m[i] = o.beta1*o.m[i] + (1-o.beta1)*g
			// Yogi's sign-damped second moment: moves v toward g² at a
			// rate independent of their gap, avoiding Adam's abrupt
			// adaptivity collapse on sparse pseudo-gradients.
			o.v[i] -= (1 - o.beta2) * sign(o.v[i]-g2) * g2
			w[i] = wPrev[i] + o.lr*(o.m[i]*c1)/(math.Sqrt(o.v[i]*c2)+o.eps)
		}
		return
	}
}

// sign returns ±1 for non-zero x and 0 for x == 0.
func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// State exposes the optimizer's full mutable state for checkpointing:
// the step counter and the (possibly empty, for fedsgd) moment vectors.
// The slices alias internal storage — copy, don't hold.
func (o *Optimizer) State() (step int, m, v []float64) { return o.step, o.m, o.v }

// Restore replaces the optimizer state with a checkpointed capture. The
// moment lengths must match the grown dimension.
func (o *Optimizer) Restore(step int, m, v []float64) error {
	if step < 0 {
		return fmt.Errorf("aggstack: optimizer step %d must be non-negative", step)
	}
	if len(m) != len(o.m) || len(v) != len(o.v) {
		return fmt.Errorf("aggstack: optimizer moments %d/%d do not match dimension %d/%d", len(m), len(v), len(o.m), len(o.v))
	}
	o.step = step
	copy(o.m, m)
	copy(o.v, v)
	return nil
}
