package aggstack

// TFF-matched adaptive defaults (tff.aggregators.zeroing_factory /
// clipping_factory, no-noise quantile estimation): zeroing tracks the
// 0.98-quantile aggressively (geometric lr ln 10 ≈ 2.3026) and zeroes
// above 2·estimate + 1 — well clear of the honest norm distribution —
// while clipping tracks the 0.8-quantile gently (lr 0.2) and clips at the
// estimate itself.
const (
	// ZeroingTarget is the adaptive zeroing stage's matched quantile.
	ZeroingTarget = 0.98
	// ZeroingLR is its geometric quantile learning rate (ln 10).
	ZeroingLR = 2.302585092994046
	// ZeroingInit is its initial quantile estimate.
	ZeroingInit = 10.0
	// ZeroingMultiplier and ZeroingIncrement inflate the quantile
	// estimate into the zeroing bound: bound = mult·estimate + incr.
	ZeroingMultiplier = 2.0
	ZeroingIncrement  = 1.0

	// ClippingTarget is the adaptive clipping stage's matched quantile.
	ClippingTarget = 0.8
	// ClippingLR is its geometric quantile learning rate.
	ClippingLR = 0.2
	// ClippingInit is its initial quantile estimate (= initial clip norm).
	ClippingInit = 1.0
)

// Stage is one pre-aggregation pass over a round's update norms. Apply
// reads norms[i] (the L2 norm of update i as seen by this stage) and
// mult[i] (the update's surviving multiplier: 0 = dropped by an earlier
// stage, 1 = untouched, in (0,1) = rescaled) and writes both for the next
// stage: zeroing sets mult[i] = 0 and norms[i] = 0, clipping multiplies
// mult[i] by bound/norms[i] and caps norms[i] at the bound. Entries
// dropped on entry (mult[i] == 0) are skipped everywhere, including the
// adaptive quantile observation. Apply returns the number of updates the
// stage affected this round.
//
// Apply never allocates; the only mutable stage state is the adaptive
// quantile estimate (Estimate/SetEstimate), updated after the round's
// bound is computed so replays are bit-identical from checkpointed
// estimates alone.
type Stage interface {
	// Kind reports the stage family.
	Kind() StageKind
	// Bound returns the norm bound the next Apply will use.
	Bound() float64
	// Apply runs the stage over one round's norms and multipliers,
	// returning the number of updates affected.
	Apply(norms, mult []float64) int
	// Estimate returns the adaptive quantile estimate (the fixed bound
	// for non-adaptive stages) for checkpointing.
	Estimate() float64
	// SetEstimate restores a checkpointed estimate (no-op for
	// non-adaptive stages).
	SetEstimate(v float64)
}

// NewStage constructs the stage a spec declares. The spec must validate.
func NewStage(spec StageSpec) (Stage, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case StageZeroing:
		z := &Zeroing{Norm: spec.Norm}
		if spec.Norm == 0 {
			z.Quantile = &QuantileEstimator{Target: ZeroingTarget, LR: ZeroingLR, Estimate: ZeroingInit}
		}
		return z, nil
	default:
		c := &Clipping{Norm: spec.Norm}
		if spec.Norm == 0 {
			c.Quantile = &QuantileEstimator{Target: ClippingTarget, LR: ClippingLR, Estimate: ClippingInit}
		}
		return c, nil
	}
}

// NewStages constructs the whole pipeline a stack spec declares.
func NewStages(spec StackSpec) ([]Stage, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(spec.Stages) == 0 {
		return nil, nil
	}
	stages := make([]Stage, len(spec.Stages))
	for i, st := range spec.Stages {
		s, err := NewStage(st)
		if err != nil {
			return nil, err
		}
		stages[i] = s
	}
	return stages, nil
}

// Zeroing drops every surviving update whose norm exceeds the bound:
// fixed at Norm, or adaptive 2·q̂ + 1 over the quantile estimate q̂.
type Zeroing struct {
	// Norm is the fixed bound (0 when adaptive).
	Norm float64
	// Quantile is the adaptive estimator (nil when fixed).
	Quantile *QuantileEstimator
}

// Kind implements Stage.
func (*Zeroing) Kind() StageKind { return StageZeroing }

// Bound implements Stage.
func (z *Zeroing) Bound() float64 {
	if z.Quantile == nil {
		return z.Norm
	}
	return ZeroingMultiplier*z.Quantile.Estimate + ZeroingIncrement
}

// Apply implements Stage.
func (z *Zeroing) Apply(norms, mult []float64) int {
	bound := z.Bound()
	if z.Quantile != nil {
		// Observe this round's (pre-zeroing) surviving norms after the
		// bound is fixed: threshold-then-observe.
		z.Quantile.Observe(norms, mult)
	}
	zeroed := 0
	for i, v := range norms {
		if mult[i] == 0 {
			continue
		}
		if v > bound {
			mult[i] = 0
			norms[i] = 0
			zeroed++
		}
	}
	return zeroed
}

// Estimate implements Stage.
func (z *Zeroing) Estimate() float64 {
	if z.Quantile == nil {
		return z.Norm
	}
	return z.Quantile.Estimate
}

// SetEstimate implements Stage.
func (z *Zeroing) SetEstimate(v float64) {
	if z.Quantile != nil {
		z.Quantile.Estimate = v
	}
}

// Clipping projects every surviving update onto the L2 ball of radius
// Bound: fixed at Norm, or the adaptive quantile estimate itself.
type Clipping struct {
	// Norm is the fixed bound (0 when adaptive).
	Norm float64
	// Quantile is the adaptive estimator (nil when fixed).
	Quantile *QuantileEstimator
}

// Kind implements Stage.
func (*Clipping) Kind() StageKind { return StageClipping }

// Bound implements Stage.
func (c *Clipping) Bound() float64 {
	if c.Quantile == nil {
		return c.Norm
	}
	return c.Quantile.Estimate
}

// Apply implements Stage.
func (c *Clipping) Apply(norms, mult []float64) int {
	bound := c.Bound()
	if c.Quantile != nil {
		c.Quantile.Observe(norms, mult)
	}
	clipped := 0
	for i, v := range norms {
		if mult[i] == 0 {
			continue
		}
		if v > bound {
			mult[i] *= bound / v
			norms[i] = bound
			clipped++
		}
	}
	return clipped
}

// Estimate implements Stage.
func (c *Clipping) Estimate() float64 {
	if c.Quantile == nil {
		return c.Norm
	}
	return c.Quantile.Estimate
}

// SetEstimate implements Stage.
func (c *Clipping) SetEstimate(v float64) {
	if c.Quantile != nil {
		c.Quantile.Estimate = v
	}
}
