// Package aggstack implements the composable robust-aggregation pipeline
// (DESIGN.md §9): a stack of pre-aggregation stages — zeroing (drop
// updates whose norm exceeds a bound) and clipping (project updates onto
// an L2 ball) — each with either a fixed norm bound or a quantile-matched
// adaptive one (TFF-style geometric quantile estimation), followed by a
// server optimizer (FedSGD/FedAdagrad/FedAdam/FedYogi) that consumes the
// aggregated pseudo-gradient with O(d) moment state.
//
// The package is spec + numeric machinery only: stages operate on plain
// per-update norms and multipliers, and optimizers on flat []float64
// parameter vectors, so it never imports the FL engine — the engine's
// Config holds the specs (mirroring compress.Spec / fault.Spec) and a
// wrapper in internal/fl applies them to real updates. All state (the
// quantile estimates, the optimizer moments) is caller-visible and
// fixed-size, which is what makes checkpointing bit-identical and the
// steady-state rounds allocation-free: Grow pre-sizes everything once.
package aggstack

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// StageKind names a pre-aggregation stage family.
type StageKind string

const (
	// StageZeroing drops (weights to zero) every update whose norm
	// exceeds the stage's bound.
	StageZeroing StageKind = "zeroing"
	// StageClipping rescales every update whose norm exceeds the stage's
	// bound onto the L2 ball of that radius.
	StageClipping StageKind = "clip"
)

// StageKindNames lists the accepted stage kinds in pipeline order.
func StageKindNames() []string { return []string{"zeroing", "clip"} }

// StageSpec declares one stage. A zero Norm selects the adaptive
// quantile-matched bound with the stage kind's defaults; a positive Norm
// fixes the bound for the whole run.
type StageSpec struct {
	// Kind selects the stage family.
	Kind StageKind
	// Norm is the fixed norm bound; 0 selects adaptive quantile matching.
	Norm float64
}

// Validate reports specification errors.
func (s StageSpec) Validate() error {
	switch s.Kind {
	case StageZeroing, StageClipping:
	default:
		return fmt.Errorf("aggstack: unknown stage kind %q (valid: %v)", s.Kind, StageKindNames())
	}
	if math.IsNaN(s.Norm) || math.IsInf(s.Norm, 0) || s.Norm < 0 {
		return fmt.Errorf("aggstack: stage %s norm %v must be a finite non-negative number (0 selects adaptive quantile matching)", s.Kind, s.Norm)
	}
	return nil
}

// String renders the stage in ParseStack syntax.
func (s StageSpec) String() string {
	if s.Norm == 0 {
		return string(s.Kind)
	}
	return fmt.Sprintf("%s:%g", s.Kind, s.Norm)
}

// StackSpec declares the ordered pre-aggregation pipeline. The zero value
// (no stages) is the identity: updates reach the inner rule untouched.
type StackSpec struct {
	// Stages run in order over each round's updates before the inner
	// aggregation rule sees them.
	Stages []StageSpec
}

// Validate reports specification errors.
func (s StackSpec) Validate() error {
	for i, st := range s.Stages {
		if err := st.Validate(); err != nil {
			return fmt.Errorf("stage %d: %w", i, err)
		}
	}
	return nil
}

// Empty reports whether the stack is the identity (no stages).
func (s StackSpec) Empty() bool { return len(s.Stages) == 0 }

// String renders the stack in ParseStack syntax ("" for the empty stack).
func (s StackSpec) String() string {
	parts := make([]string, len(s.Stages))
	for i, st := range s.Stages {
		parts[i] = st.String()
	}
	return strings.Join(parts, "|")
}

// ParseStack parses the CLI syntax "stage[:norm]|stage[:norm]|...", e.g.
// "zeroing|clip" (both adaptive), "zeroing:20|clip:5" (fixed bounds), or
// "" / "none" for the empty stack. It mirrors compress.ParseSpec /
// fault.ParseFault: every parse round-trips through String.
func ParseStack(s string) (StackSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return StackSpec{}, nil
	}
	var spec StackSpec
	for _, field := range strings.Split(s, "|") {
		field = strings.TrimSpace(field)
		if field == "" {
			return StackSpec{}, fmt.Errorf("aggstack: empty stage in stack %q", s)
		}
		kind, param, hasParam := strings.Cut(field, ":")
		st := StageSpec{Kind: StageKind(kind)}
		if hasParam {
			v, err := strconv.ParseFloat(param, 64)
			if err != nil {
				return StackSpec{}, fmt.Errorf("aggstack: stage %q: bad norm %q: %v", kind, param, err)
			}
			if v == 0 {
				return StackSpec{}, fmt.Errorf("aggstack: stage %q: explicit norm must be positive (omit it for adaptive quantile matching)", kind)
			}
			st.Norm = v
		}
		if err := st.Validate(); err != nil {
			return StackSpec{}, err
		}
		spec.Stages = append(spec.Stages, st)
	}
	return spec, nil
}

// OptKind names a server-optimizer family.
type OptKind string

const (
	// OptNone is the zero value: no server optimizer at all (the inner
	// rule's model update stands). Distinct from OptFedSGD(1), which runs
	// the optimizer machinery and happens to be the identity.
	OptNone OptKind = ""
	// OptFedSGD applies the aggregated delta scaled by the server LR —
	// with LR 1 this is exactly today's behavior.
	OptFedSGD OptKind = "fedsgd"
	// OptAdagrad is FedAdagrad: accumulated squared pseudo-gradients.
	OptAdagrad OptKind = "adagrad"
	// OptAdam is FedAdam: EMA first and second moments, bias-corrected.
	OptAdam OptKind = "adam"
	// OptYogi is FedYogi: Adam with the sign-damped second-moment update.
	OptYogi OptKind = "yogi"
)

// String implements fmt.Stringer, naming the zero value explicitly.
func (k OptKind) String() string {
	if k == OptNone {
		return "none"
	}
	return string(k)
}

// OptKindNames lists the accepted -serveropt flag values.
func OptKindNames() []string { return []string{"fedsgd", "adagrad", "adam", "yogi"} }

// Server-optimizer defaults (Reddi et al., "Adaptive Federated
// Optimization": β1 = 0.9, β2 = 0.99, τ = 1e-3).
const (
	// DefaultBeta1 is the first-moment EMA decay.
	DefaultBeta1 = 0.9
	// DefaultBeta2 is the second-moment EMA decay.
	DefaultBeta2 = 0.99
	// DefaultEps is the adaptivity floor τ added to √v.
	DefaultEps = 1e-3
	// DefaultSGDLR is the FedSGD server learning rate when LR is 0.
	DefaultSGDLR = 1.0
	// DefaultAdaptiveLR is the adaptive optimizers' server learning rate
	// when LR is 0.
	DefaultAdaptiveLR = 0.1
)

// OptSpec declares a server optimizer. The zero value selects no
// optimizer (the aggregated model stands unchanged).
type OptSpec struct {
	// Kind selects the optimizer family.
	Kind OptKind
	// LR is the server learning rate; 0 selects the kind's default
	// (DefaultSGDLR for fedsgd, DefaultAdaptiveLR otherwise).
	LR float64
}

// Validate reports specification errors.
func (s OptSpec) Validate() error {
	switch s.Kind {
	case OptNone:
		if s.LR != 0 {
			return fmt.Errorf("aggstack: server LR %v without an optimizer kind", s.LR)
		}
		return nil
	case OptFedSGD, OptAdagrad, OptAdam, OptYogi:
	default:
		return fmt.Errorf("aggstack: unknown server optimizer %q (valid: %v)", s.Kind, OptKindNames())
	}
	if math.IsNaN(s.LR) || math.IsInf(s.LR, 0) || s.LR < 0 {
		return fmt.Errorf("aggstack: server LR %v must be a finite non-negative number (0 selects the default)", s.LR)
	}
	return nil
}

// None reports whether the spec selects no optimizer.
func (s OptSpec) None() bool { return s.Kind == OptNone }

// lr resolves the learning-rate default.
func (s OptSpec) lr() float64 {
	if s.LR != 0 {
		return s.LR
	}
	if s.Kind == OptFedSGD {
		return DefaultSGDLR
	}
	return DefaultAdaptiveLR
}

// String renders the spec in ParseServerOpt syntax ("" for none).
func (s OptSpec) String() string {
	if s.Kind == OptNone {
		return ""
	}
	if s.LR == 0 {
		return string(s.Kind)
	}
	return fmt.Sprintf("%s:%g", s.Kind, s.LR)
}

// ParseServerOpt parses the CLI syntax "kind[:lr]", e.g. "adam",
// "adam:0.05", "fedsgd:1", or "" / "none" for no optimizer.
func ParseServerOpt(s string) (OptSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return OptSpec{}, nil
	}
	kind, param, hasParam := strings.Cut(s, ":")
	spec := OptSpec{Kind: OptKind(kind)}
	if hasParam {
		v, err := strconv.ParseFloat(param, 64)
		if err != nil {
			return OptSpec{}, fmt.Errorf("aggstack: optimizer %q: bad lr %q: %v", kind, param, err)
		}
		if v == 0 {
			return OptSpec{}, fmt.Errorf("aggstack: optimizer %q: explicit lr must be positive (omit it for the default)", kind)
		}
		spec.LR = v
	}
	if err := spec.Validate(); err != nil {
		return OptSpec{}, err
	}
	return spec, nil
}
