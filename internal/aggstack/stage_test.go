package aggstack

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func randNormsMult(r *rng.RNG, n int) (norms, mult []float64) {
	norms = make([]float64, n)
	mult = make([]float64, n)
	for i := range norms {
		norms[i] = math.Pow(10, -1+3*r.Float64())
		mult[i] = 1
		if r.Float64() < 0.15 {
			// Entries an earlier stage already dropped.
			norms[i], mult[i] = 0, 0
		}
	}
	return norms, mult
}

// TestClippingIsProjection: after one Apply with a fixed bound c, every
// surviving norm is ≤ c and the multiplier times the original norm equals
// the post-stage norm; a second Apply is the identity (projections are
// idempotent).
func TestClippingIsProjection(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 50; trial++ {
		norms, mult := randNormsMult(r, 32)
		orig := append([]float64(nil), norms...)
		c, err := NewStage(StageSpec{Kind: StageClipping, Norm: 2.5})
		if err != nil {
			t.Fatal(err)
		}
		clipped := c.Apply(norms, mult)
		wantClipped := 0
		for i := range norms {
			if mult[i] == 0 {
				continue
			}
			if norms[i] > 2.5+1e-12 {
				t.Fatalf("trial %d: norm %v above bound after clipping", trial, norms[i])
			}
			if got := mult[i] * orig[i]; math.Abs(got-norms[i]) > 1e-9*orig[i] {
				t.Fatalf("trial %d: mult·orig = %v but post-stage norm = %v", trial, got, norms[i])
			}
			if orig[i] > 2.5 {
				wantClipped++
			}
		}
		if clipped != wantClipped {
			t.Fatalf("trial %d: Apply reported %d clipped, want %d", trial, clipped, wantClipped)
		}
		// Idempotence: re-applying the same bound changes nothing.
		norms2 := append([]float64(nil), norms...)
		mult2 := append([]float64(nil), mult...)
		if again := c.Apply(norms2, mult2); again != 0 {
			t.Fatalf("trial %d: second Apply clipped %d updates", trial, again)
		}
		for i := range norms {
			if norms2[i] != norms[i] || mult2[i] != mult[i] {
				t.Fatalf("trial %d: second Apply moved entry %d", trial, i)
			}
		}
	}
}

// TestZeroingNeverTouchesSurvivors: zeroing either drops an update
// entirely (mult 0) or leaves its norm and multiplier bit-identical.
func TestZeroingNeverTouchesSurvivors(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 50; trial++ {
		norms, mult := randNormsMult(r, 32)
		origN := append([]float64(nil), norms...)
		origM := append([]float64(nil), mult...)
		z, err := NewStage(StageSpec{Kind: StageZeroing, Norm: 4})
		if err != nil {
			t.Fatal(err)
		}
		zeroed := z.Apply(norms, mult)
		wantZeroed := 0
		for i := range norms {
			if origM[i] != 0 && origN[i] > 4 {
				wantZeroed++
				if mult[i] != 0 || norms[i] != 0 {
					t.Fatalf("trial %d: entry %d above bound not dropped", trial, i)
				}
				continue
			}
			if norms[i] != origN[i] || mult[i] != origM[i] {
				t.Fatalf("trial %d: survivor %d was touched: (%v,%v) -> (%v,%v)",
					trial, i, origN[i], origM[i], norms[i], mult[i])
			}
		}
		if zeroed != wantZeroed {
			t.Fatalf("trial %d: Apply reported %d zeroed, want %d", trial, zeroed, wantZeroed)
		}
	}
}

// TestAdaptiveBoundThresholdThenObserve: the bound applied in round r is
// a function of rounds < r only — Apply uses the pre-observation
// estimate, then folds the round in.
func TestAdaptiveBoundThresholdThenObserve(t *testing.T) {
	st, err := NewStage(StageSpec{Kind: StageClipping})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Bound(); got != ClippingInit {
		t.Fatalf("initial adaptive clip bound = %v, want %v", got, ClippingInit)
	}
	norms := []float64{10, 10, 10, 10}
	mult := []float64{1, 1, 1, 1}
	clipped := st.Apply(norms, mult)
	if clipped != 4 {
		t.Fatalf("clipped %d of 4 updates above the initial bound", clipped)
	}
	for i, m := range mult {
		if math.Abs(m-ClippingInit/10) > 1e-15 {
			t.Fatalf("mult[%d] = %v, want %v (clip at the pre-observation bound)", i, m, ClippingInit/10)
		}
	}
	// All norms were above the estimate, so the estimate must have grown.
	if st.Bound() <= ClippingInit {
		t.Fatalf("estimate did not grow after an all-above round: %v", st.Bound())
	}
}

// TestAdaptiveZeroingBoundShape: the zeroing bound is the inflated
// 2·estimate + 1, not the raw quantile estimate.
func TestAdaptiveZeroingBoundShape(t *testing.T) {
	st, err := NewStage(StageSpec{Kind: StageZeroing})
	if err != nil {
		t.Fatal(err)
	}
	want := ZeroingMultiplier*ZeroingInit + ZeroingIncrement
	if got := st.Bound(); got != want {
		t.Fatalf("initial adaptive zeroing bound = %v, want %v", got, want)
	}
	if got := st.Estimate(); got != ZeroingInit {
		t.Fatalf("initial estimate = %v, want %v", got, ZeroingInit)
	}
}

// TestStageEstimateRoundTrip: Estimate/SetEstimate restore adaptive state
// exactly and are inert on fixed stages.
func TestStageEstimateRoundTrip(t *testing.T) {
	ad, _ := NewStage(StageSpec{Kind: StageClipping})
	ad.Apply([]float64{5, 5}, []float64{1, 1})
	saved := ad.Estimate()
	ad.Apply([]float64{50, 50}, []float64{1, 1})
	if ad.Estimate() == saved {
		t.Fatal("estimate did not move")
	}
	ad.SetEstimate(saved)
	if ad.Estimate() != saved {
		t.Fatalf("SetEstimate: got %v, want %v", ad.Estimate(), saved)
	}

	fixed, _ := NewStage(StageSpec{Kind: StageZeroing, Norm: 7})
	fixed.SetEstimate(123)
	if fixed.Estimate() != 7 || fixed.Bound() != 7 {
		t.Fatalf("fixed stage state moved: estimate %v bound %v", fixed.Estimate(), fixed.Bound())
	}
}

// TestStackedZeroingThenClip: a dropped update is invisible to the
// downstream clip stage — both its multiplier math and its quantile
// observation.
func TestStackedZeroingThenClip(t *testing.T) {
	stages, err := NewStages(StackSpec{Stages: []StageSpec{
		{Kind: StageZeroing, Norm: 100},
		{Kind: StageClipping, Norm: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	norms := []float64{1, 3, 1e6, 2}
	mult := []float64{1, 1, 1, 1}
	if z := stages[0].Apply(norms, mult); z != 1 {
		t.Fatalf("zeroed %d, want 1", z)
	}
	if c := stages[1].Apply(norms, mult); c != 1 {
		t.Fatalf("clipped %d, want 1 (the dropped update must not count)", c)
	}
	want := []float64{1, 2.0 / 3, 0, 1}
	for i := range mult {
		if math.Abs(mult[i]-want[i]) > 1e-12 {
			t.Fatalf("mult = %v, want %v", mult, want)
		}
	}
}
