package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield the same stream")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds coincide %d/64 times", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	c0 := parent.Derive("client", 0)
	parent2 := New(7)
	c0b := parent2.Derive("client", 0)
	for i := 0; i < 50; i++ {
		if c0.Uint64() != c0b.Uint64() {
			t.Fatal("derived stream must be reproducible from the parent seed")
		}
	}
	parent3 := New(7)
	c1 := parent3.Derive("client", 1)
	c0c := New(7).Derive("client", 0)
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c0c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatal("derived streams with different indices must differ")
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Normal mean = %v, want ≈3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("Normal variance = %v, want ≈4", variance)
	}
}

func TestGammaMoments(t *testing.T) {
	// Gamma(alpha) with scale 1 has mean alpha and variance alpha.
	for _, alpha := range []float64{0.2, 0.5, 1, 2.5, 10} {
		r := New(13)
		const n = 150000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := r.Gamma(alpha)
			if v < 0 {
				t.Fatalf("Gamma(%v) produced negative sample %v", alpha, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-alpha) > 0.05*math.Max(1, alpha) {
			t.Fatalf("Gamma(%v) mean = %v, want ≈%v", alpha, mean, alpha)
		}
		if math.Abs(variance-alpha) > 0.12*math.Max(1, alpha) {
			t.Fatalf("Gamma(%v) variance = %v, want ≈%v", alpha, variance, alpha)
		}
	}
}

func TestGammaPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for alpha <= 0")
		}
	}()
	New(1).Gamma(0)
}

func TestDirichletSimplex(t *testing.T) {
	r := New(17)
	for _, phi := range []float64{0.1, 0.5, 1, 5} {
		for trial := 0; trial < 200; trial++ {
			p := r.Dirichlet(phi, 10)
			var sum float64
			for _, v := range p {
				if v < 0 {
					t.Fatalf("Dirichlet produced negative weight %v", v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("Dirichlet weights sum to %v, want 1", sum)
			}
		}
	}
}

func TestDirichletSkewIncreasesAsPhiShrinks(t *testing.T) {
	// With small phi, most mass concentrates on few categories; measure the
	// average max weight.
	avgMax := func(phi float64) float64 {
		r := New(19)
		var total float64
		const trials = 500
		for i := 0; i < trials; i++ {
			p := r.Dirichlet(phi, 10)
			m := 0.0
			for _, v := range p {
				if v > m {
					m = v
				}
			}
			total += m
		}
		return total / trials
	}
	small := avgMax(0.1)
	large := avgMax(10)
	if small <= large {
		t.Fatalf("expected Dir(0.1) to be more skewed than Dir(10): %v vs %v", small, large)
	}
}

func TestCategoricalDistribution(t *testing.T) {
	r := New(23)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	if counts[1] != 0 {
		t.Fatal("zero-weight category was sampled")
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("category ratio = %v, want ≈3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	t.Run("all zero", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		New(1).Categorical([]float64{0, 0})
	})
	t.Run("negative", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		New(1).Categorical([]float64{1, -1})
	})
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(29)
	got := r.SampleWithoutReplacement(10, 5)
	if len(got) != 5 {
		t.Fatalf("got %d samples, want 5", len(got))
	}
	seen := make(map[int]bool, len(got))
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("sample %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample %d", v)
		}
		seen[v] = true
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d in permutation", v)
		}
		seen[v] = true
	}
}
