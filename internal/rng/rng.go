// Package rng provides the deterministic random-number machinery used by
// every stochastic component in the repository: dataset synthesis, non-IID
// partitioning (Dirichlet label skew), mini-batch sampling, and parameter
// initialization.
//
// Determinism contract: every experiment takes one uint64 seed. Components
// that run concurrently (for example the clients inside one FL round) must
// each own an RNG derived via Derive with a distinct stream label, so that
// results are bit-identical regardless of goroutine scheduling or the
// parallelism level.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random source with the distribution samplers this
// repository needs beyond math/rand/v2. It retains its underlying PCG so
// the stream cursor can be checkpointed (MarshalBinary) and restored
// (UnmarshalBinary) for bit-identical resume.
type RNG struct {
	src *rand.Rand
	pcg *rand.PCG
}

// New returns an RNG seeded with the given seed.
func New(seed uint64) *RNG {
	// The second PCG word is a fixed golden-ratio constant so that nearby
	// seeds still produce decorrelated streams.
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &RNG{src: rand.New(pcg), pcg: pcg}
}

// MarshalBinary captures the stream cursor. Every sampler in this package
// draws statelessly from the underlying source, so the cursor alone is the
// full RNG state.
func (r *RNG) MarshalBinary() ([]byte, error) { return r.pcg.MarshalBinary() }

// UnmarshalBinary restores a cursor captured by MarshalBinary; subsequent
// draws continue the original stream bit-identically.
func (r *RNG) UnmarshalBinary(data []byte) error { return r.pcg.UnmarshalBinary(data) }

// Derive returns a new independent RNG whose stream is a pure function of
// this RNG's original seed is NOT used; instead the label alone plus the
// parent's next value determine the child stream. To keep parallel client
// execution deterministic, call Derive for all children before any of them
// starts consuming randomness.
func (r *RNG) Derive(label string, index int) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	var buf [8]byte
	v := uint64(index)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	mix := h.Sum64()
	return New(r.src.Uint64() ^ mix)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.src.NormFloat64()
}

// Gamma returns a sample from the Gamma distribution with shape alpha > 0
// and scale 1, using the Marsaglia–Tsang squeeze method (2000). For
// alpha < 1 it applies the standard boost Gamma(a) = Gamma(a+1)·U^(1/a).
func (r *RNG) Gamma(alpha float64) float64 {
	if alpha <= 0 {
		panic("rng: Gamma requires alpha > 0")
	}
	if alpha < 1 {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.src.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		x2 := x * x
		if u < 1-0.0331*x2*x2 {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet returns a sample from the symmetric Dirichlet distribution with
// concentration parameter phi over k categories. Smaller phi values produce
// more skewed (sparser) probability vectors — the standard non-IID
// label-skew generator in FL research.
func (r *RNG) Dirichlet(phi float64, k int) []float64 {
	if k <= 0 {
		panic("rng: Dirichlet requires k > 0")
	}
	out := make([]float64, k)
	r.DirichletInto(phi, out)
	return out
}

// DirichletInto fills dst with a symmetric Dirichlet(phi) sample over
// len(dst) categories, consuming exactly the stream draws Dirichlet
// would — callers batching many draws (the Dirichlet partitioner) reuse
// one buffer without perturbing the sequence.
func (r *RNG) DirichletInto(phi float64, dst []float64) {
	if len(dst) == 0 {
		panic("rng: Dirichlet requires k > 0")
	}
	var sum float64
	for i := range dst {
		g := r.Gamma(phi)
		dst[i] = g
		sum += g
	}
	if sum == 0 {
		// Numerically possible for tiny phi: fall back to a one-hot vector.
		for i := range dst {
			dst[i] = 0
		}
		dst[r.IntN(len(dst))] = 1
		return
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// Categorical returns an index sampled according to the (not necessarily
// normalized) non-negative weights. It panics when all weights are zero.
func (r *RNG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: Categorical requires non-negative weights")
		}
		total += w
	}
	if total == 0 {
		panic("rng: Categorical requires at least one positive weight")
	}
	u := r.Float64() * total
	var cum float64
	for i, w := range weights {
		cum += w
		if u < cum {
			return i
		}
	}
	return len(weights) - 1 // floating-point edge: return the last category
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). It panics when k > n.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("rng: SampleWithoutReplacement requires k <= n")
	}
	perm := r.Perm(n)
	return perm[:k]
}
