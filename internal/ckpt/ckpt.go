// Package ckpt provides the little-endian binary primitives shared by
// every checkpoint writer in the repository: the fl run checkpoint and
// the per-algorithm state serializers (Scaffold control variates, STEM
// momentum, TACO's alpha tracker). All encoders write fixed-width
// little-endian words via a stack scratch buffer — no reflection, no
// per-value allocation — and every decoder length-checks before
// allocating so corrupt or truncated input fails with an error instead
// of a panic or an absurd allocation.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MaxElems bounds any single decoded slice length. Checkpoints in this
// repository hold at most a few million parameters; a length beyond this
// is corrupt input, rejected before allocation.
const MaxElems = 1 << 28

// growChunk caps a decoder's initial allocation: slices grow with the
// data actually read (fuzz-safe against forged huge lengths).
const growChunk = 1 << 13

// WriteU64 writes one little-endian uint64.
func WriteU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

// ReadU64 reads one little-endian uint64.
func ReadU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// WriteInt writes an int as a uint64 (two's complement).
func WriteInt(w io.Writer, v int) error { return WriteU64(w, uint64(v)) }

// ReadInt reads an int written by WriteInt.
func ReadInt(r io.Reader) (int, error) {
	v, err := ReadU64(r)
	return int(v), err
}

// WriteBool writes a bool as one byte.
func WriteBool(w io.Writer, v bool) error {
	b := [1]byte{0}
	if v {
		b[0] = 1
	}
	_, err := w.Write(b[:])
	return err
}

// ReadBool reads a bool written by WriteBool, rejecting bytes other than
// 0 or 1.
func ReadBool(r io.Reader) (bool, error) {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return false, err
	}
	switch b[0] {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("ckpt: invalid bool byte %#x", b[0])
	}
}

// WriteF64 writes one float64 as its IEEE-754 bits.
func WriteF64(w io.Writer, v float64) error { return WriteU64(w, math.Float64bits(v)) }

// ReadF64 reads a float64 written by WriteF64.
func ReadF64(r io.Reader) (float64, error) {
	v, err := ReadU64(r)
	return math.Float64frombits(v), err
}

// checkLen validates a decoded element count against MaxElems.
func checkLen(n uint64, what string) (int, error) {
	if n > MaxElems {
		return 0, fmt.Errorf("ckpt: %s length %d exceeds limit %d (corrupt checkpoint)", what, n, MaxElems)
	}
	return int(n), nil
}

// WriteF64s writes a length-prefixed float64 slice. A nil slice and an
// empty slice both encode as length 0.
func WriteF64s(w io.Writer, v []float64) error {
	if err := WriteU64(w, uint64(len(v))); err != nil {
		return err
	}
	var buf [8]byte
	for _, x := range v {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadF64s reads a slice written by WriteF64s. Length 0 decodes as nil.
func ReadF64s(r io.Reader) ([]float64, error) {
	n, err := ReadU64(r)
	if err != nil {
		return nil, err
	}
	ln, err := checkLen(n, "float64 slice")
	if err != nil {
		return nil, err
	}
	if ln == 0 {
		return nil, nil
	}
	// Grow with the data actually read, so a forged length on truncated
	// input fails with a small allocation, not an ln-sized one.
	out := make([]float64, 0, min(ln, growChunk))
	var buf [8]byte
	for i := 0; i < ln; i++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
	}
	return out, nil
}

// ReadF64sInto reads a slice written by WriteF64s into dst, requiring the
// recorded length to match exactly len(dst).
func ReadF64sInto(r io.Reader, dst []float64) error {
	n, err := ReadU64(r)
	if err != nil {
		return err
	}
	if n != uint64(len(dst)) {
		return fmt.Errorf("ckpt: recorded length %d, destination needs %d", n, len(dst))
	}
	var buf [8]byte
	for i := range dst {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return err
		}
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return nil
}

// WriteF64Rows writes a length-prefixed slice of float64 slices; nil rows
// are preserved via a presence byte (the lazy-allocation idiom used by
// Scaffold's control variates and TACO's correction state).
func WriteF64Rows(w io.Writer, rows [][]float64) error {
	if err := WriteU64(w, uint64(len(rows))); err != nil {
		return err
	}
	for _, row := range rows {
		if err := WriteBool(w, row != nil); err != nil {
			return err
		}
		if row != nil {
			if err := WriteF64s(w, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadF64Rows reads rows written by WriteF64Rows, preserving nil rows.
func ReadF64Rows(r io.Reader) ([][]float64, error) {
	n, err := ReadU64(r)
	if err != nil {
		return nil, err
	}
	ln, err := checkLen(n, "row slice")
	if err != nil {
		return nil, err
	}
	if ln == 0 {
		return nil, nil
	}
	rows := make([][]float64, ln)
	for i := range rows {
		present, err := ReadBool(r)
		if err != nil {
			return nil, err
		}
		if present {
			row, err := ReadF64s(r)
			if err != nil {
				return nil, err
			}
			if row == nil {
				row = []float64{}
			}
			rows[i] = row
		}
	}
	return rows, nil
}

// WriteInts writes a length-prefixed int slice.
func WriteInts(w io.Writer, v []int) error {
	if err := WriteU64(w, uint64(len(v))); err != nil {
		return err
	}
	for _, x := range v {
		if err := WriteInt(w, x); err != nil {
			return err
		}
	}
	return nil
}

// ReadInts reads a slice written by WriteInts. Length 0 decodes as nil.
func ReadInts(r io.Reader) ([]int, error) {
	n, err := ReadU64(r)
	if err != nil {
		return nil, err
	}
	ln, err := checkLen(n, "int slice")
	if err != nil {
		return nil, err
	}
	if ln == 0 {
		return nil, nil
	}
	out := make([]int, 0, min(ln, growChunk))
	for i := 0; i < ln; i++ {
		v, err := ReadInt(r)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// WriteBytes writes a length-prefixed byte slice.
func WriteBytes(w io.Writer, v []byte) error {
	if err := WriteU64(w, uint64(len(v))); err != nil {
		return err
	}
	_, err := w.Write(v)
	return err
}

// ReadBytes reads a slice written by WriteBytes.
func ReadBytes(r io.Reader) ([]byte, error) {
	n, err := ReadU64(r)
	if err != nil {
		return nil, err
	}
	ln, err := checkLen(n, "byte slice")
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, min(ln, growChunk))
	var chunk [4096]byte
	for ln > 0 {
		c := min(ln, len(chunk))
		if _, err := io.ReadFull(r, chunk[:c]); err != nil {
			return nil, err
		}
		out = append(out, chunk[:c]...)
		ln -= c
	}
	return out, nil
}

// Marshaler is anything whose state serializes via MarshalBinary — in
// this repository, rng stream cursors.
type Marshaler interface {
	MarshalBinary() ([]byte, error)
}

// Unmarshaler restores a cursor captured by WriteCursor.
type Unmarshaler interface {
	UnmarshalBinary([]byte) error
}

// WriteCursor serializes an rng cursor (or anything MarshalBinary-able).
func WriteCursor(w io.Writer, m Marshaler) error {
	data, err := m.MarshalBinary()
	if err != nil {
		return err
	}
	return WriteBytes(w, data)
}

// ReadCursor restores a cursor written by WriteCursor.
func ReadCursor(r io.Reader, u Unmarshaler) error {
	data, err := ReadBytes(r)
	if err != nil {
		return err
	}
	return u.UnmarshalBinary(data)
}

// SkipCursor consumes a cursor written by WriteCursor without applying
// it — used by the divergence-rollback restore path, which keeps the
// live stream positions so the replayed rounds draw fresh batches.
func SkipCursor(r io.Reader) error {
	_, err := ReadBytes(r)
	return err
}
