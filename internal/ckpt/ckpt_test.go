package ckpt

import (
	"bytes"
	"io"
	"math"
	"testing"
)

func TestScalarRoundTrip(t *testing.T) {
	var b bytes.Buffer
	for _, v := range []uint64{0, 1, math.MaxUint64} {
		if err := WriteU64(&b, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []int{0, -1, 1 << 40, math.MinInt} {
		if err := WriteInt(&b, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []float64{0, -0.5, math.Inf(-1), math.Pi} {
		if err := WriteF64(&b, v); err != nil {
			t.Fatal(err)
		}
	}
	WriteBool(&b, true)
	WriteBool(&b, false)
	WriteF64(&b, math.NaN())

	r := bytes.NewReader(b.Bytes())
	for _, want := range []uint64{0, 1, math.MaxUint64} {
		if got, err := ReadU64(r); err != nil || got != want {
			t.Fatalf("ReadU64 = %d, %v; want %d", got, err, want)
		}
	}
	for _, want := range []int{0, -1, 1 << 40, math.MinInt} {
		if got, err := ReadInt(r); err != nil || got != want {
			t.Fatalf("ReadInt = %d, %v; want %d", got, err, want)
		}
	}
	for _, want := range []float64{0, -0.5, math.Inf(-1), math.Pi} {
		if got, err := ReadF64(r); err != nil || got != want {
			t.Fatalf("ReadF64 = %v, %v; want %v", got, err, want)
		}
	}
	if got, err := ReadBool(r); err != nil || !got {
		t.Fatalf("ReadBool = %v, %v; want true", got, err)
	}
	if got, err := ReadBool(r); err != nil || got {
		t.Fatalf("ReadBool = %v, %v; want false", got, err)
	}
	// NaN round-trips bit-exactly through the IEEE encoding.
	if got, err := ReadF64(r); err != nil || !math.IsNaN(got) {
		t.Fatalf("ReadF64 = %v, %v; want NaN", got, err)
	}
}

func TestSliceRoundTrip(t *testing.T) {
	var b bytes.Buffer
	f64s := []float64{1.5, -2.25, 0}
	ints := []int{3, -7, 1 << 33}
	raw := []byte("checkpoint")
	rows := [][]float64{{1, 2}, nil, {}, {3}}
	WriteF64s(&b, f64s)
	WriteF64s(&b, nil)
	WriteInts(&b, ints)
	WriteBytes(&b, raw)
	WriteF64Rows(&b, rows)

	r := bytes.NewReader(b.Bytes())
	got, err := ReadF64s(r)
	if err != nil || len(got) != len(f64s) {
		t.Fatalf("ReadF64s = %v, %v", got, err)
	}
	for i := range f64s {
		if got[i] != f64s[i] {
			t.Fatalf("f64s[%d] = %v, want %v", i, got[i], f64s[i])
		}
	}
	if got, err := ReadF64s(r); err != nil || got != nil {
		t.Fatalf("nil slice decoded as %v, %v", got, err)
	}
	gotInts, err := ReadInts(r)
	if err != nil || len(gotInts) != len(ints) {
		t.Fatalf("ReadInts = %v, %v", gotInts, err)
	}
	for i := range ints {
		if gotInts[i] != ints[i] {
			t.Fatalf("ints[%d] = %d, want %d", i, gotInts[i], ints[i])
		}
	}
	gotRaw, err := ReadBytes(r)
	if err != nil || !bytes.Equal(gotRaw, raw) {
		t.Fatalf("ReadBytes = %q, %v", gotRaw, err)
	}
	gotRows, err := ReadF64Rows(r)
	if err != nil || len(gotRows) != len(rows) {
		t.Fatalf("ReadF64Rows = %v, %v", gotRows, err)
	}
	if gotRows[1] != nil {
		t.Fatalf("nil row decoded as %v", gotRows[1])
	}
	if gotRows[2] == nil || len(gotRows[2]) != 0 {
		t.Fatalf("empty row decoded as %v", gotRows[2])
	}
	if gotRows[0][1] != 2 || gotRows[3][0] != 3 {
		t.Fatalf("row contents mismatch: %v", gotRows)
	}
}

func TestReadF64sInto(t *testing.T) {
	var b bytes.Buffer
	WriteF64s(&b, []float64{1, 2, 3})
	dst := make([]float64, 3)
	if err := ReadF64sInto(bytes.NewReader(b.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	if dst[2] != 3 {
		t.Fatalf("dst = %v", dst)
	}
	short := make([]float64, 2)
	if err := ReadF64sInto(bytes.NewReader(b.Bytes()), short); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestCorruptInputErrors(t *testing.T) {
	// Forged huge length: rejected (over limit) or fails on truncation —
	// never a length-sized allocation up front.
	var b bytes.Buffer
	WriteU64(&b, uint64(MaxElems)+1)
	if _, err := ReadF64s(bytes.NewReader(b.Bytes())); err == nil {
		t.Fatal("oversized length accepted")
	}
	b.Reset()
	WriteU64(&b, uint64(MaxElems)) // within limit, but no payload follows
	if _, err := ReadF64s(bytes.NewReader(b.Bytes())); err != io.ErrUnexpectedEOF && err != io.EOF {
		t.Fatalf("truncated payload: err = %v", err)
	}
	if _, err := ReadBool(bytes.NewReader([]byte{7})); err == nil {
		t.Fatal("invalid bool byte accepted")
	}
	if _, err := ReadU64(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("short read accepted")
	}
}

type fakeCursor struct{ state []byte }

func (c *fakeCursor) MarshalBinary() ([]byte, error)  { return c.state, nil }
func (c *fakeCursor) UnmarshalBinary(d []byte) error  { c.state = append([]byte(nil), d...); return nil }

func TestCursorRoundTripAndSkip(t *testing.T) {
	var b bytes.Buffer
	src := &fakeCursor{state: []byte{9, 8, 7}}
	if err := WriteCursor(&b, src); err != nil {
		t.Fatal(err)
	}
	WriteInt(&b, 42)

	dst := &fakeCursor{}
	r := bytes.NewReader(b.Bytes())
	if err := ReadCursor(r, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.state, src.state) {
		t.Fatalf("cursor state = %v", dst.state)
	}
	// Skip must consume exactly the cursor's bytes.
	r = bytes.NewReader(b.Bytes())
	if err := SkipCursor(r); err != nil {
		t.Fatal(err)
	}
	if v, err := ReadInt(r); err != nil || v != 42 {
		t.Fatalf("after skip: %d, %v", v, err)
	}
}
