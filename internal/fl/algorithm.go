package fl

import (
	"math"

	"repro/internal/compress"
	"repro/internal/nn"
	"repro/internal/simclock"
	"repro/internal/vecmath"
)

// Env describes the fixed environment an algorithm trains in. It is handed
// to Setup once before round 0.
type Env struct {
	// Net is the shared model architecture.
	Net *nn.Network
	// NumClients is N (full participation).
	NumClients int
	// NumParams is the flat parameter-vector length.
	NumParams int
	// DataSizes is D_i per client.
	DataSizes []int
	// Devices is the resolved per-client device fleet (uniform when the
	// config left it empty), so algorithms can inspect the heterogeneity
	// regime they train under.
	Devices []simclock.DeviceProfile
	// Cfg is the engine configuration.
	Cfg Config
}

// StepCtx is the per-local-step context passed to GradAdjust. The hook may
// mutate Grad in place; every other field is read-only by convention.
type StepCtx struct {
	// Client is the client ID, Round the communication round, Step the
	// local step index k ∈ [K].
	Client, Round, Step int
	// W is the client's current local parameter vector w_{i,k}.
	W []float64
	// W0 is the round's local starting point w_{i,0}.
	W0 []float64
	// Grad is the mini-batch gradient g_{i,k}, to be adjusted in place.
	Grad []float64
	// BatchX and BatchY are the sampled mini-batch, available to
	// algorithms that need additional gradient evaluations (STEM).
	BatchX []float64
	BatchY []int
	// Eng is the client's execution engine for extra evaluations. It is
	// nil under Config.DType "f32"; algorithms that use it must declare
	// the dependency via RequiresF64Engine so fp32 runs reject them at
	// setup instead of panicking mid-round.
	Eng *nn.Engine
	// Scratch is a NumParams-sized scratch vector owned by the client.
	Scratch []float64

	// fuseCoeff and fuseVec hold a correction registered by
	// FuseCorrection for the engine to fold into the SGD step.
	fuseCoeff float64
	fuseVec   []float64
}

// FuseCorrection registers the additive correction coeff·corr for this
// step: instead of the algorithm mutating Grad (one full pass over d) and
// the engine then applying the step (a second pass), the engine performs
// the corrected step w ← w − ηl·(g + coeff·corr) in a single fused pass
// (vecmath.AXPYPY). corr must stay valid until the step completes and is
// read-only; Grad keeps the raw mini-batch gradient, so algorithms that
// need the adjusted gradient materialized (STEM's momentum recursion)
// should keep mutating Grad instead. The registration is consumed by the
// step; call it again on the next step to keep the correction applied.
func (c *StepCtx) FuseCorrection(coeff float64, corr []float64) {
	c.fuseCoeff, c.fuseVec = coeff, corr
}

// Correction returns the fused correction registered for this step (nil
// vector when the algorithm mutated Grad directly instead). Diagnostic
// accessor for tests; the engine consumes the registration itself.
func (c *StepCtx) Correction() (coeff float64, corr []float64) {
	return c.fuseCoeff, c.fuseVec
}

// Update is one client's upload for a round: the accumulated local
// gradient Δ_i = w_{i,0} − w_{i,K} of Eq. (5).
type Update struct {
	// Client is the uploading client's ID.
	Client int
	// Delta is Δ_i (length NumParams). The engine owns the backing array;
	// algorithms must copy anything they keep across rounds.
	Delta []float64
	// NumSamples is D_i, for data-weighted aggregation.
	NumSamples int
	// TrainLoss is the client's mean mini-batch loss across the round.
	TrainLoss float64
	// Staleness counts the server versions that elapsed between the
	// client starting this local round and the server consuming the
	// update: 0 for the synchronous and deadline policies, ≥ 0 under
	// buffered asynchronous aggregation. Aggregation rules damp stale
	// updates via StalenessDamp.
	Staleness int
	// Corrupt marks an upload from a client designated adversarial by
	// the run's corruption specs (ground truth for defense metrics;
	// window-gated attackers are marked even while dormant). Aggregation
	// rules must NOT read it — defenses only see the update geometry.
	Corrupt bool
	// Payload is the encoded on-the-wire form of the upload when the run
	// compresses updates (nil for dense transport). Delta always holds
	// the decoded dense view, so the two never disagree; rules that can
	// exploit sparse form should go through AddScaled/Norm,
	// which pick the O(k) kernels automatically. Like Delta, the backing
	// buffers belong to the engine's ring.
	Payload *compress.Payload
	// ring is the pool's buffer-ownership handle (pool.go).
	ring *upload
}

// AddScaled accumulates alpha·Δ_i into dst. When the update carries a
// sparse payload the accumulation scatters the k kept coordinates
// (vecmath.ScatterAXPY) instead of walking all d, so aggregating a top-k
// round is O(n·k) server work.
func (u *Update) AddScaled(alpha float64, dst []float64) {
	if u.Payload != nil && u.Payload.Sparse() {
		vecmath.ScatterAXPY(alpha, u.Payload.Idx, u.Payload.Val, dst)
		return
	}
	vecmath.AXPY(alpha, u.Delta, dst)
}

// Norm returns ‖Δ_i‖ with overflow-safe accumulation (the upload is not
// under the server's control), over the sparse values when available —
// the dropped coordinates are exact zeros, so the sparse and dense norms
// agree.
func (u *Update) Norm() float64 {
	if u.Payload != nil && u.Payload.Sparse() {
		return vecmath.Norm2Safe(u.Payload.Val)
	}
	return vecmath.Norm2Safe(u.Delta)
}

// CosineWith returns cos(Δ_i, y) under the CosineSimilarity conventions
// (0 for a degenerate vector, clamped to [−1, 1]). The sparse path costs
// O(k) beyond y's norm; callers looping over many updates against one
// reference vector can pass y's precomputed MaxAbs-rescaled norm via
// CosineWithNorm to stay O(k) per update.
func (u *Update) CosineWith(y []float64) float64 {
	if u.Payload == nil || !u.Payload.Sparse() {
		return vecmath.CosineSimilarity(u.Delta, y)
	}
	my := vecmath.MaxAbs(y)
	if my == 0 {
		return 0
	}
	return u.CosineWithNorm(y, my, vecmath.Norm2Safe(y)/my)
}

// CosineWithNorm is CosineWith given y's precomputed largest magnitude
// my = MaxAbs(y) (non-zero) and rescaled norm ny = ‖y/my‖. The sparse
// inner product runs through the AVX2 gather kernel (vecmath.GatherDot)
// and normalizes afterwards; when the raw product overflows, both sides
// are rescaled by their largest magnitudes first — the same overflow
// guard CosineSimilarity applies to dense uploads.
func (u *Update) CosineWithNorm(y []float64, my, ny float64) float64 {
	p := u.Payload
	if p == nil || !p.Sparse() {
		return vecmath.CosineSimilarity(u.Delta, y)
	}
	if ny == 0 || math.IsNaN(ny) {
		return 0
	}
	nv := vecmath.Norm2Safe(p.Val)
	if nv == 0 {
		return 0
	}
	if dot := vecmath.GatherDot(p.Idx, p.Val, y); !math.IsNaN(dot) && !math.IsInf(dot, 0) {
		if c := dot / (nv * my * ny); !math.IsNaN(c) && !math.IsInf(c, 0) {
			return vecmath.Clamp(c, -1, 1)
		}
	}
	mv := vecmath.MaxAbs(p.Val)
	if mv == 0 || math.IsNaN(mv) {
		return 0
	}
	invV, invY := 1/mv, 1/my
	var dot, snv float64
	for j, i := range p.Idx {
		sv := p.Val[j] * invV
		dot += sv * (y[i] * invY)
		snv += sv * sv
	}
	if snv == 0 {
		return 0
	}
	return vecmath.Clamp(dot/(math.Sqrt(snv)*ny), -1, 1)
}

// ServerCtx is the aggregation context. Aggregate must write the next
// global model into W (in place).
type ServerCtx struct {
	// Round is the completed communication round t.
	Round int
	// W is the global model w^t, to be advanced to w^{t+1} in place.
	W []float64
	// WPrev is a stable copy of w^t (W's value at entry to Aggregate), so
	// aggregation rules that advance W in place can still read the
	// pre-aggregation model, e.g. TACO's z_t output (Eq. (15)).
	WPrev []float64
	// Env echoes the training environment.
	Env *Env
	// Active flags which clients are still participating.
	Active []bool

	expelled []int
	weights  []float64
	reported []float64
}

// Expel schedules a client's removal from all future rounds (TACO's
// freeloader expulsion, Algorithm 2 line 12).
func (s *ServerCtx) Expel(client int) {
	s.expelled = append(s.expelled, client)
}

// GlobalLR returns ηg with the paper's K·ηl default applied.
func (s *ServerCtx) GlobalLR() float64 { return s.Env.Cfg.globalLR() }

// AggregationWeights returns the Eq. (6) weights over the updates (see
// the package-level AggregationWeights for the rule), backed by a scratch
// buffer owned by the context so steady-state aggregation allocates
// nothing. The slice is valid until the next call on this context. The
// weights are also recorded as the rule's reported weights (see
// ReportWeights); rules that re-weight further must report again.
func (s *ServerCtx) AggregationWeights(updates []Update) []float64 {
	if cap(s.weights) < len(updates) {
		s.weights = make([]float64, len(updates))
	}
	w := s.weights[:len(updates)]
	aggregationWeightsInto(w, updates, s.Env.Cfg.WeightByData)
	s.ReportWeights(w)
	return w
}

// ReportWeights records the per-update aggregation weights the rule
// actually used this round (w[i] belongs to updates[i] of the Aggregate
// call), copied into a context-owned buffer. The engine derives the
// honest-vs-corrupt weight-mass metrics and per-client cumulative weights
// from the last report of each round; rules with tailored weightings
// (TACO's α-weights, FoolsGold's similarity weights) call this with their
// normalized weights, and ServerCtx.AggregationWeights reports
// automatically for every rule built on it.
func (s *ServerCtx) ReportWeights(w []float64) {
	if cap(s.reported) < len(w) {
		s.reported = make([]float64, len(w))
	}
	s.reported = s.reported[:len(w)]
	copy(s.reported, w)
}

// Algorithm is the hook set an FL method implements. Hooks prefixed
// "Local" run concurrently for different clients: implementations must
// confine per-client mutable state to per-client storage.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Setup is called once with the environment before round 0.
	Setup(env *Env)
	// LocalInit writes the client's round-t starting parameters into out
	// (usually the global model w; FedACG adds server momentum).
	LocalInit(client, round int, w []float64, out []float64)
	// BeginLocal runs once per client per round before the local loop.
	BeginLocal(client, round int, w0 []float64)
	// GradAdjust applies the method's per-step correction to ctx.Grad.
	GradAdjust(ctx *StepCtx)
	// EndLocal runs after the local loop with the client's delta
	// (read-only; the engine reuses the buffer).
	EndLocal(client, round int, delta []float64)
	// Aggregate combines the round's updates into the next global model.
	Aggregate(s *ServerCtx, updates []Update)
	// Costs reports the modeled per-step computation profile.
	Costs() simclock.Costs
	// FinalModel maps aggregated parameters to the evaluation model
	// (identity for all methods except TACO's z_t, Eq. (15)).
	FinalModel(w []float64) []float64
	// MeanAlpha reports the mean correction coefficient of the last
	// aggregation for diagnostics; algorithms without one return 0.
	MeanAlpha() float64
}

// RequiresF64Engine marks algorithms whose hooks call StepCtx.Eng — the
// client's float64 engine — for extra evaluations (STEM's previous-round
// gradient). Runs with Config.DType "f32" carry no float64 engine in
// their slots, so newScheduler rejects marked algorithms up front with a
// clear error instead of letting a hook hit a nil engine mid-round.
type RequiresF64Engine interface {
	// RequiresF64Engine is a marker; it is never called.
	RequiresF64Engine()
}

// Base provides no-op defaults for the optional Algorithm hooks; concrete
// algorithms embed it and override what they need.
type Base struct{}

// Setup implements Algorithm.
func (Base) Setup(*Env) {}

// LocalInit implements Algorithm with the standard w_{i,0} ← w^t.
func (Base) LocalInit(_, _ int, w []float64, out []float64) { copy(out, w) }

// BeginLocal implements Algorithm.
func (Base) BeginLocal(int, int, []float64) {}

// GradAdjust implements Algorithm.
func (Base) GradAdjust(*StepCtx) {}

// EndLocal implements Algorithm.
func (Base) EndLocal(int, int, []float64) {}

// Costs implements Algorithm with the plain FedAvg profile.
func (Base) Costs() simclock.Costs { return simclock.Plain() }

// FinalModel implements Algorithm as the identity.
func (Base) FinalModel(w []float64) []float64 { return w }

// MeanAlpha implements Algorithm.
func (Base) MeanAlpha() float64 { return 0 }

// StalenessDamp returns the FedBuff-style polynomial damping factor
// 1/√(1+s) applied to an update that is s server versions stale. Fresh
// updates (s ≤ 0) keep weight 1 exactly, so synchronous aggregation is
// bit-identical with or without the damping in the formula.
func StalenessDamp(staleness int) float64 {
	if staleness <= 0 {
		return 1
	}
	return 1 / math.Sqrt(1+float64(staleness))
}

// AggregationWeights returns the weights p_i of Eq. (6) over the active
// updates: D_i/D when cfg.WeightByData, else 1/N_active. When any update
// is stale (async policy), each base weight is damped by
// StalenessDamp(s_i) and the result renormalized; with all-fresh updates
// the legacy weights are returned bit-identically.
func AggregationWeights(updates []Update, weightByData bool) []float64 {
	weights := make([]float64, len(updates))
	aggregationWeightsInto(weights, updates, weightByData)
	return weights
}

// aggregationWeightsInto computes AggregationWeights into the caller's
// buffer (len(weights) == len(updates)).
func aggregationWeightsInto(weights []float64, updates []Update, weightByData bool) {
	if weightByData {
		total := 0
		for _, u := range updates {
			total += u.NumSamples
		}
		for i, u := range updates {
			weights[i] = float64(u.NumSamples) / float64(total)
		}
	} else {
		for i := range weights {
			weights[i] = 1 / float64(len(updates))
		}
	}
	anyStale := false
	for _, u := range updates {
		if u.Staleness > 0 {
			anyStale = true
			break
		}
	}
	if !anyStale {
		return
	}
	var sum float64
	for i, u := range updates {
		weights[i] *= StalenessDamp(u.Staleness)
		sum += weights[i]
	}
	for i := range weights {
		weights[i] /= sum
	}
}

// FedAvgStep applies the vanilla aggregation of Eq. (6) with ∆^{t+1} =
// Σ p_i ∆_i / (K·ηl): with the default ηg = K·ηl the global model moves by
// the weighted mean client delta. Shared by FedAvg, FedProx, and Scaffold.
// Sparse uploads fold in via their O(k) scatter view (Update.AddScaled).
func FedAvgStep(s *ServerCtx, updates []Update) {
	weights := s.AggregationWeights(updates)
	scale := s.GlobalLR() / (float64(s.Env.Cfg.LocalSteps) * s.Env.Cfg.LocalLR)
	for i := range updates {
		updates[i].AddScaled(-weights[i]*scale, s.W)
	}
}
