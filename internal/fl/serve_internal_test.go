package fl

import (
	"net"
	"testing"

	"repro/internal/dataset"
	"repro/internal/partition"
	"repro/internal/rng"
)

// wireAvg is a minimal wire-safe algorithm for internal serve tests
// (package fl cannot import internal/baselines — cycle).
type wireAvg struct{ Base }

func (wireAvg) Name() string                             { return "WireAvg" }
func (wireAvg) Aggregate(s *ServerCtx, updates []Update) { FedAvgStep(s, updates) }
func (wireAvg) WireSafe()                                {}

// TestServeBackpressureHolds drives a loopback run with IntakeBound 1 —
// every multi-update ingest overflows the bound — and asserts the server
// actually sent Hold frames, the force-resume liveness rule released
// them (the run completes), and the result still matches the in-process
// run bit-for-bit: backpressure is flow control, never data loss.
func TestServeBackpressureHolds(t *testing.T) {
	train, test, err := dataset.Standard("adult", dataset.ScaleSmall, 3)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Dirichlet(train, 8, 0.5, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	network, err := dataset.Model("adult")
	if err != nil {
		t.Fatal(err)
	}
	shards := part.Shards(train)
	cfg := Config{Rounds: 3, LocalSteps: 3, BatchSize: 16, LocalLR: 0.05, Seed: 11}

	local, err := Run(cfg, wireAvg{}, network, shards, test)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var ex *remoteExec
	serveObserve = func(e *remoteExec) { ex = e }
	defer func() { serveObserve = nil }()

	workerErr := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			workerErr <- err
			return
		}
		workerErr <- RunWorker(conn, 0, 1, cfg, wireAvg{}, network, shards, test.Name)
	}()

	res, err := Serve(ln, ServeOptions{Workers: 1, IntakeBound: 1}, cfg, wireAvg{}, network, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-workerErr; werr != nil {
		t.Fatalf("worker: %v", werr)
	}
	if ex == nil {
		t.Fatal("serve hook never fired")
	}
	if ex.Holds() == 0 {
		t.Fatal("IntakeBound 1 never triggered a Hold frame")
	}
	for i := range local.FinalParams {
		if res.FinalParams[i] != local.FinalParams[i] {
			t.Fatalf("FinalParams[%d]: wire %v != local %v under backpressure", i, res.FinalParams[i], local.FinalParams[i])
		}
	}
}
