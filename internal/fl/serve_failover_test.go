package fl_test

import (
	"encoding/binary"
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"

	"repro/internal/baselines"
	"repro/internal/compress"
	"repro/internal/fault"
	"repro/internal/fl"
	"repro/internal/metrics"
)

// failoverCodecs is the acceptance matrix: worker failure must be
// survivable bit-identically under dense and sparse transport.
var failoverCodecs = []struct {
	name string
	spec compress.Spec
}{
	{"dense", compress.Spec{}},
	{"topk", compress.Spec{Kind: compress.KindTopK, TopKFrac: 0.25}},
}

// killAfterFrames wraps a worker-side connection and closes it the
// moment n complete inbound frames have been delivered — a
// deterministic way to die at a frame boundary mid-run, independent of
// scheduling. The worker still processes the final frame (the bytes
// were delivered) but its reply write fails, so the server sees the
// frame's dispatches as in-flight on a dead connection.
type killAfterFrames struct {
	net.Conn
	mu     sync.Mutex
	remain int
	header []byte
	body   int
	done   bool
}

func (k *killAfterFrames) Read(p []byte) (int, error) {
	n, err := k.Conn.Read(p)
	if n > 0 {
		k.mu.Lock()
		kill := k.feed(p[:n])
		k.mu.Unlock()
		if kill {
			k.Conn.Close()
		}
	}
	return n, err
}

// feed advances the frame-boundary state machine (7-byte header with a
// little-endian u32 body length) and reports whether the kill
// threshold was just crossed.
func (k *killAfterFrames) feed(b []byte) bool {
	for len(b) > 0 && !k.done {
		if k.body > 0 {
			take := min(k.body, len(b))
			k.body -= take
			b = b[take:]
		} else {
			take := min(7-len(k.header), len(b))
			k.header = append(k.header, b[:take]...)
			b = b[take:]
			if len(k.header) < 7 {
				return false
			}
			k.body = int(binary.LittleEndian.Uint32(k.header[3:]))
			k.header = k.header[:0]
		}
		if k.body == 0 {
			k.remain--
			if k.remain == 0 {
				k.done = true
				return true
			}
		}
	}
	return false
}

// stripRecovery additionally clears the failover counters — legitimate
// differences between a disturbed run and the clean comparator.
func stripRecovery(rounds []metrics.Round) []metrics.Round {
	out := stripMeasured(rounds)
	for i := range out {
		out[i].ReassignedDispatches = 0
		out[i].WorkerReconnects = 0
	}
	return out
}

// assertSameRun requires bit-identical final weights and round metrics
// (measured wall times and recovery counters excluded).
func assertSameRun(t *testing.T, local, wired *fl.Result) {
	t.Helper()
	if len(wired.FinalParams) != len(local.FinalParams) {
		t.Fatalf("param count %d != %d", len(wired.FinalParams), len(local.FinalParams))
	}
	for i := range local.FinalParams {
		if wired.FinalParams[i] != local.FinalParams[i] {
			t.Fatalf("FinalParams[%d]: wire %v != local %v (first mismatch)", i, wired.FinalParams[i], local.FinalParams[i])
		}
	}
	lr, wr := stripRecovery(local.Run.Rounds), stripRecovery(wired.Run.Rounds)
	if !reflect.DeepEqual(lr, wr) {
		for i := range lr {
			if i < len(wr) && !reflect.DeepEqual(lr[i], wr[i]) {
				t.Fatalf("round %d metrics diverge:\nlocal %+v\nwire  %+v", i, lr[i], wr[i])
			}
		}
		t.Fatalf("round counts diverge: local %d, wire %d", len(lr), len(wr))
	}
}

// totalRecovery sums the per-round failover counters.
func totalRecovery(run *metrics.Run) (re, rc int) {
	return run.TotalReassignedDispatches(), run.TotalWorkerReconnects()
}

// TestServeFailoverKillWorker is the tentpole acceptance test: one of
// two workers dies mid-round (its connection closes right after the
// round-2 dispatch is delivered, before the reply), the survivor adopts
// its clients by history replay, and the run finishes bit-identical to
// the uninterrupted in-process fl.Run — under dense and top-k codecs.
func TestServeFailoverKillWorker(t *testing.T) {
	for _, tc := range failoverCodecs {
		t.Run(tc.name, func(t *testing.T) {
			cfg := quickConfig()
			cfg.Compress = tc.spec
			network, shards, test := testSetup(t, 8)
			local, err := fl.Run(cfg, baselines.NewFedAvg(), network, shards, test)
			if err != nil {
				t.Fatal(err)
			}

			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make([]error, 2)
			wg.Add(2)
			go func() {
				defer wg.Done()
				conn, err := net.Dial("tcp", ln.Addr().String())
				if err != nil {
					errs[0] = err
					return
				}
				errs[0] = fl.RunWorker(conn, 0, 2, cfg, baselines.NewFedAvg(), network, shards, test.Name)
			}()
			go func() {
				defer wg.Done()
				conn, err := net.Dial("tcp", ln.Addr().String())
				if err != nil {
					errs[1] = err
					return
				}
				// Dies after the third inbound frame (dispatches for
				// rounds 0, 1, 2): round 2 is left in flight.
				kc := &killAfterFrames{Conn: conn, remain: 3}
				errs[1] = fl.RunWorkerOpts(kc, fl.WorkerOptions{Index: 1, Workers: 2}, cfg, baselines.NewFedAvg(), network, shards, test.Name)
			}()
			opt := fl.ServeOptions{Workers: 2, HeartbeatSec: -1}
			wired, serveErr := fl.Serve(ln, opt, cfg, baselines.NewFedAvg(), network, shards, test)
			ln.Close()
			wg.Wait()
			if serveErr != nil {
				t.Fatal(serveErr)
			}
			if errs[0] != nil {
				t.Fatalf("surviving worker: %v", errs[0])
			}
			if errs[1] == nil {
				t.Fatal("killed worker returned nil — the kill never fired")
			}
			assertSameRun(t, local, wired)
			if re, _ := totalRecovery(wired.Run); re == 0 {
				t.Fatal("no dispatches were reassigned — failover never engaged")
			}
		})
	}
}

// TestServeFailoverReconnect pins re-admission: with reassignment
// disabled and a grace window, a worker that dies mid-round and
// re-dials (Attach=1) is reset, rebuilt by history replay, and the run
// still finishes bit-identical to fl.Run.
func TestServeFailoverReconnect(t *testing.T) {
	cfg := quickConfig()
	network, shards, test := testSetup(t, 8)
	local, err := fl.Run(cfg, baselines.NewFedAvg(), network, shards, test)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			errs[0] = err
			return
		}
		errs[0] = fl.RunWorker(conn, 0, 2, cfg, baselines.NewFedAvg(), network, shards, test.Name)
	}()
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			errs[1] = err
			return
		}
		kc := &killAfterFrames{Conn: conn, remain: 2}
		if err := fl.RunWorkerOpts(kc, fl.WorkerOptions{Index: 1, Workers: 2}, cfg, baselines.NewFedAvg(), network, shards, test.Name); err == nil {
			errs[1] = errors.New("killed worker returned nil — the kill never fired")
			return
		}
		conn2, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			errs[1] = err
			return
		}
		errs[1] = fl.RunWorkerOpts(conn2, fl.WorkerOptions{Index: 1, Workers: 2, Attach: 1}, cfg, baselines.NewFedAvg(), network, shards, test.Name)
	}()
	opt := fl.ServeOptions{Workers: 2, HeartbeatSec: -1, DisableReassign: true, FailoverGraceSec: 30}
	wired, serveErr := fl.Serve(ln, opt, cfg, baselines.NewFedAvg(), network, shards, test)
	ln.Close()
	wg.Wait()
	if serveErr != nil {
		t.Fatal(serveErr)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("worker %d: %v", i, e)
		}
	}
	assertSameRun(t, local, wired)
	re, rc := totalRecovery(wired.Run)
	if rc == 0 || re == 0 {
		t.Fatalf("reassigned %d, reconnects %d — re-admission never engaged", re, rc)
	}
}

// TestServeServerCrashReplay extends the in-process crash-replay pin
// over the loopback wire: a servercrash fault restores the last
// checkpoint mid-run, workers are rewound by a reset-and-replay, and
// the re-executed rounds are bit-identical to a clean run.
func TestServeServerCrashReplay(t *testing.T) {
	for _, tc := range failoverCodecs {
		t.Run(tc.name, func(t *testing.T) {
			clean := quickConfig()
			clean.Compress = tc.spec
			network, shards, test := testSetup(t, 8)
			local, err := fl.Run(clean, baselines.NewFedAvg(), network, shards, test)
			if err != nil {
				t.Fatal(err)
			}

			cfg := clean
			cfg.Faults = []fault.Spec{{Kind: fault.KindServerCrash, Round: 3}}
			cfg.CheckpointEvery = 2
			wired := runWire(t, cfg, 2, fl.ServeOptions{})
			if wired.Run.RecoveredRounds == 0 {
				t.Fatal("RecoveredRounds = 0: the crash never fired")
			}
			assertSameRun(t, local, wired)
		})
	}
}

// TestServeResumeRestart pins the checkpointed server restart: the
// server is interrupted mid-run (final checkpoint, pausing Bye), the
// workers observe ErrServerPaused, and a NEW server process restarted
// from the checkpoint (ServeResume, fresh listener, re-attaching
// workers) finishes the run bit-identical to an uninterrupted fl.Run.
func TestServeResumeRestart(t *testing.T) {
	for _, tc := range failoverCodecs {
		t.Run(tc.name, func(t *testing.T) {
			clean := quickConfig()
			clean.Compress = tc.spec
			network, shards, test := testSetup(t, 8)
			local, err := fl.Run(clean, baselines.NewFedAvg(), network, shards, test)
			if err != nil {
				t.Fatal(err)
			}

			cfg := clean
			cfg.CheckpointEvery = 2
			var blob []byte
			interrupt := make(chan struct{})
			var once sync.Once
			cfg.OnCheckpoint = func(round int, b []byte) {
				blob = append(blob[:0], b...)
				if round >= 4 {
					once.Do(func() { close(interrupt) })
				}
			}

			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make([]error, 2)
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					conn, err := net.Dial("tcp", ln.Addr().String())
					if err != nil {
						errs[i] = err
						return
					}
					errs[i] = fl.RunWorker(conn, i, 2, cfg, baselines.NewFedAvg(), network, shards, test.Name)
				}(i)
			}
			opt := fl.ServeOptions{Workers: 2, HeartbeatSec: -1, Interrupt: interrupt}
			paused, serveErr := fl.Serve(ln, opt, cfg, baselines.NewFedAvg(), network, shards, test)
			ln.Close()
			wg.Wait()
			if serveErr != nil {
				t.Fatal(serveErr)
			}
			if paused.Run.HaltReason != "interrupted" {
				t.Fatalf("HaltReason %q, want interrupted", paused.Run.HaltReason)
			}
			for i, e := range errs {
				if !errors.Is(e, fl.ErrServerPaused) {
					t.Fatalf("worker %d: got %v, want ErrServerPaused", i, e)
				}
			}
			if len(blob) == 0 {
				t.Fatal("no checkpoint captured")
			}

			// Restart: fresh listener, ServeResume from the checkpoint,
			// workers re-attach.
			ln2, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					conn, err := net.Dial("tcp", ln2.Addr().String())
					if err != nil {
						errs[i] = err
						return
					}
					errs[i] = fl.RunWorkerOpts(conn, fl.WorkerOptions{Index: i, Workers: 2, Attach: 1}, cfg, baselines.NewFedAvg(), network, shards, test.Name)
				}(i)
			}
			opt.Interrupt = nil
			wired, resumeErr := fl.ServeResume(ln2, opt, blob, cfg, baselines.NewFedAvg(), network, shards, test)
			ln2.Close()
			wg.Wait()
			if resumeErr != nil {
				t.Fatal(resumeErr)
			}
			for i, e := range errs {
				if e != nil {
					t.Fatalf("re-attached worker %d: %v", i, e)
				}
			}
			assertSameRun(t, local, wired)
		})
	}
}

// TestServeDegradedLostWorker pins the quorum path: with reassignment
// disabled, no grace, and no reconnect, a dead worker's dispatches are
// lost — the run survives, committing sub-quorum rounds as Degraded
// with the losses counted as dropped updates.
func TestServeDegradedLostWorker(t *testing.T) {
	cfg := quickConfig()
	cfg.Faults = []fault.Spec{{Kind: fault.KindDup, Frac: 0.01}}
	cfg.Quorum = 0.6
	network, shards, test := testSetup(t, 8)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			errs[0] = err
			return
		}
		errs[0] = fl.RunWorker(conn, 0, 2, cfg, baselines.NewFedAvg(), network, shards, test.Name)
	}()
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			errs[1] = err
			return
		}
		kc := &killAfterFrames{Conn: conn, remain: 2}
		errs[1] = fl.RunWorkerOpts(kc, fl.WorkerOptions{Index: 1, Workers: 2}, cfg, baselines.NewFedAvg(), network, shards, test.Name)
	}()
	opt := fl.ServeOptions{Workers: 2, HeartbeatSec: -1, DisableReassign: true}
	res, serveErr := fl.Serve(ln, opt, cfg, baselines.NewFedAvg(), network, shards, test)
	ln.Close()
	wg.Wait()
	if serveErr != nil {
		t.Fatal(serveErr)
	}
	if errs[0] != nil {
		t.Fatalf("surviving worker: %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("killed worker returned nil — the kill never fired")
	}
	if got := res.Run.DegradedRounds(); got == 0 {
		t.Fatal("no Degraded rounds despite half the fleet being lost")
	}
	if got := res.Run.TotalDroppedUpdates(); got < 4 {
		t.Fatalf("TotalDroppedUpdates = %d, want >= 4 (one worker's clients per lost round)", got)
	}
	if len(res.Run.Rounds) != cfg.Rounds {
		t.Fatalf("run stopped early: %d/%d rounds", len(res.Run.Rounds), cfg.Rounds)
	}
}
