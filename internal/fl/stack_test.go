package fl

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/aggstack"
	"repro/internal/simclock"
)

// mustStack parses a stack spec or fails the test.
func mustStack(t testing.TB, s string) aggstack.StackSpec {
	t.Helper()
	spec, err := aggstack.ParseStack(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// mustOpt parses a server-optimizer spec or fails the test.
func mustOpt(t testing.TB, s string) aggstack.OptSpec {
	t.Helper()
	spec, err := aggstack.ParseServerOpt(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// stackedConfig is the stacked tests' base: the full zeroing|clip pipeline
// with FedAdam on top of the policy's required knobs.
func stackedConfig(t *testing.T, policy AggregationPolicy, seed uint64, gradFlops int64) Config {
	t.Helper()
	cfg := Config{
		Rounds:     6,
		LocalSteps: 3,
		BatchSize:  8,
		LocalLR:    0.05,
		Seed:       seed,
		Policy:     policy,
		AggStack:   mustStack(t, "zeroing|clip"),
		ServerOpt:  mustOpt(t, "adam:0.1"),
	}
	switch policy {
	case PolicyDeadline:
		cfg.RoundDeadlineSec = 10 * simclock.RoundSeconds(gradFlops, cfg.LocalSteps, simclock.Plain())
	case PolicyAsync:
		cfg.AsyncBuffer = 3
	}
	return cfg
}

// TestWrapStackZeroConfigIsNoWrap pins the identity contract at its root:
// a zero-valued AggStack/ServerOpt must return the algorithm unchanged —
// not an empty wrapper — so every unstacked run is structurally untouched.
func TestWrapStackZeroConfigIsNoWrap(t *testing.T) {
	inner := goldenFedAvg{}
	cfg := Config{}
	got, err := wrapStack(inner, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != Algorithm(inner) {
		t.Fatalf("zero-config wrapStack returned %T, want the inner algorithm unchanged", got)
	}
	cfg.AggStack = mustStack(t, "none")
	if got, err = wrapStack(inner, &cfg); err != nil || got != Algorithm(inner) {
		t.Fatalf(`"none" stack wrapped: %T, %v`, got, err)
	}
}

// TestFedSGDUnitLRMatchesBareRun pins the optimizer identity law at the
// engine level: ServerOpt fedsgd:1 wraps the rule but must reproduce the
// bare run bit-identically — FinalParams and every deterministic round
// field — because a unit-LR FedSGD server step is the vanilla apply.
func TestFedSGDUnitLRMatchesBareRun(t *testing.T) {
	net, shards, test := goldenSetup(t, 6, 4)
	cfg := Config{Rounds: 5, LocalSteps: 4, BatchSize: 16, LocalLR: 0.05, Seed: 11}
	want, err := Run(cfg, goldenFedAvg{}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ServerOpt = mustOpt(t, "fedsgd:1")
	got, err := Run(cfg, goldenFedAvg{}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if wh, gh := paramsHash(want.FinalParams), paramsHash(got.FinalParams); wh != gh {
		t.Fatalf("FinalParams hash mismatch: bare %016x, fedsgd:1 %016x", wh, gh)
	}
	if wn, gn := want.Run.Algorithm, got.Run.Algorithm; wn == gn {
		t.Fatalf("wrapped run kept the bare name %q — wrap did not engage", gn)
	}
	if len(want.Run.Rounds) != len(got.Run.Rounds) {
		t.Fatalf("round count: bare %d, wrapped %d", len(want.Run.Rounds), len(got.Run.Rounds))
	}
	for i := range want.Run.Rounds {
		w, g := want.Run.Rounds[i], got.Run.Rounds[i]
		w.SlowestMeasuredSec, g.SlowestMeasuredSec = 0, 0
		w.CumMeasuredSec, g.CumMeasuredSec = 0, 0
		if w != g {
			t.Fatalf("round %d record mismatch:\nbare    %+v\nwrapped %+v", i, w, g)
		}
	}
}

// TestStackedP1vsP8BitIdentity extends the parallelism-independence
// contract to the full stack: zeroing|clip + FedAdam over FedAvg must be
// bit-identical across slot counts under every policy and multiple seeds.
// The stages consume update norms in client order and the optimizer is a
// pure function of the aggregate, so no parallelism leaks in.
func TestStackedP1vsP8BitIdentity(t *testing.T) {
	net, shards, test := poolSetup(t, 8)
	for _, policy := range []AggregationPolicy{PolicySync, PolicyDeadline, PolicyAsync} {
		for _, seed := range []uint64{11, 29} {
			t.Run(fmt.Sprintf("%v-seed%d", policy, seed), func(t *testing.T) {
				cfg := stackedConfig(t, policy, seed, net.GradFlops(8))
				cfgA := cfg
				cfgA.Parallelism = 1
				cfgB := cfg
				cfgB.Parallelism = 8
				resA, err := Run(cfgA, goldenFedAvg{}, net, shards, test)
				if err != nil {
					t.Fatal(err)
				}
				resB, err := Run(cfgB, goldenFedAvg{}, net, shards, test)
				if err != nil {
					t.Fatal(err)
				}
				if ha, hb := paramsHash(resA.FinalParams), paramsHash(resB.FinalParams); ha != hb {
					t.Fatalf("FinalParams differ across slot counts: %016x vs %016x", ha, hb)
				}
				if la, lb := len(resA.Run.Rounds), len(resB.Run.Rounds); la != lb {
					t.Fatalf("round count differs across slot counts: %d vs %d", la, lb)
				}
			})
		}
	}
}

// normProbe is FedAvg that records the largest honest update norm it
// aggregates, calibrating the fixed zeroing bound in the suppression test
// below without hard-coding dataset-dependent magnitudes.
type normProbe struct {
	goldenFedAvg
	maxNorm float64
}

func (a *normProbe) Aggregate(s *ServerCtx, updates []Update) {
	for i := range updates {
		if n := updates[i].Norm(); n > a.maxNorm {
			a.maxNorm = n
		}
	}
	a.goldenFedAvg.Aggregate(s, updates)
}

// TestZeroingSuppressionWeightMetrics is the weight-remap regression: when
// zeroing drops a corrupt update before the inner rule sees it, the
// honest/corrupt weight-mass metrics must credit the suppression (corrupt
// mass 0, honest mass intact) instead of being skipped on the
// full-vs-survivor length mismatch — the bug this PR's re-map fixes. The
// zeroing bound is calibrated from a probe run's honest norms: honest
// updates clear it by 5x, the scaled corrupt update exceeds it by orders
// of magnitude, so exactly one update is zeroed every round.
func TestZeroingSuppressionWeightMetrics(t *testing.T) {
	net, shards, test := poolSetup(t, 8)
	cfg := Config{Rounds: 6, LocalSteps: 3, BatchSize: 8, LocalLR: 0.05, Seed: 11}
	probe := &normProbe{}
	if _, err := Run(cfg, probe, net, shards, test); err != nil {
		t.Fatal(err)
	}
	if probe.maxNorm <= 0 {
		t.Fatalf("probe recorded no update norms")
	}

	const corrupt = 2
	cfg.Adversaries = []adversary.Spec{{Kind: adversary.KindScale, Clients: []int{corrupt}, Scale: 1e6}}
	cfg.AggStack = aggstack.StackSpec{Stages: []aggstack.StageSpec{{Kind: aggstack.StageZeroing, Norm: 5 * probe.maxNorm}}}
	res, err := Run(cfg, goldenFedAvg{}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Run.TotalZeroedUpdates(); got != cfg.Rounds {
		t.Fatalf("TotalZeroedUpdates = %d, want %d (one corrupt drop per round)", got, cfg.Rounds)
	}
	for i, rec := range res.Run.Rounds {
		if rec.ZeroedUpdates != 1 {
			t.Fatalf("round %d: ZeroedUpdates = %d, want 1", i, rec.ZeroedUpdates)
		}
		if rec.CorruptWeight != 0 {
			t.Fatalf("round %d: CorruptWeight = %v, want 0 (update was zeroed)", i, rec.CorruptWeight)
		}
		if rec.HonestWeight <= 0 {
			t.Fatalf("round %d: HonestWeight = %v, want > 0 (re-mapped report missing)", i, rec.HonestWeight)
		}
	}
	if res.CumWeights == nil {
		t.Fatal("adversarial run returned no cumulative weights")
	}
	if w := res.CumWeights[corrupt]; w != 0 {
		t.Fatalf("corrupt client accumulated weight %v, want 0", w)
	}
	for id, w := range res.CumWeights {
		if id != corrupt && w <= 0 {
			t.Fatalf("honest client %d accumulated weight %v, want > 0", id, w)
		}
	}
}

// stackedCapture retains checkpoints for the white-box resume test.
type stackedCapture struct {
	rounds []int
	blobs  [][]byte
}

func (c *stackedCapture) hook() func(int, []byte) {
	return func(round int, data []byte) {
		c.rounds = append(c.rounds, round)
		c.blobs = append(c.blobs, append([]byte(nil), data...))
	}
}

func (c *stackedCapture) at(round int) []byte {
	for i, r := range c.rounds {
		if r == round {
			return c.blobs[i]
		}
	}
	return nil
}

// TestStackedCheckpointResumeBitIdentical pins the wrapper's checkpoint
// state: the adaptive stage estimates and the optimizer moments (step, m,
// v) must survive a checkpoint so the resumed run replays bit-identically
// — the threshold-then-observe bounds of the remaining rounds are a pure
// function of that restored state.
func TestStackedCheckpointResumeBitIdentical(t *testing.T) {
	net, shards, test := poolSetup(t, 8)
	for _, policy := range []AggregationPolicy{PolicySync, PolicyDeadline, PolicyAsync} {
		t.Run(policy.String(), func(t *testing.T) {
			cfg := stackedConfig(t, policy, 11, net.GradFlops(8))
			cfg.Rounds = 8
			cfg.CheckpointEvery = 3
			cap := &stackedCapture{}
			cfg.OnCheckpoint = cap.hook()
			want, err := Run(cfg, goldenFedAvg{}, net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			blob := cap.at(3)
			if blob == nil {
				t.Fatalf("no checkpoint at round 3 (captured %v)", cap.rounds)
			}
			cfg.OnCheckpoint = nil
			got, err := Resume(cfg, goldenFedAvg{}, net, shards, test, blob)
			if err != nil {
				t.Fatal(err)
			}
			if wh, gh := paramsHash(want.FinalParams), paramsHash(got.FinalParams); wh != gh {
				t.Fatalf("FinalParams hash mismatch after resume: %016x vs %016x", wh, gh)
			}
			if len(want.Run.Rounds) != len(got.Run.Rounds) {
				t.Fatalf("round count: %d vs %d", len(want.Run.Rounds), len(got.Run.Rounds))
			}
			for i := range want.Run.Rounds {
				w, g := want.Run.Rounds[i], got.Run.Rounds[i]
				w.SlowestMeasuredSec, g.SlowestMeasuredSec = 0, 0
				w.CumMeasuredSec, g.CumMeasuredSec = 0, 0
				if w != g {
					t.Fatalf("round %d record mismatch:\nwant %+v\ngot  %+v", i, w, g)
				}
			}
		})
	}
}

// newFuzzStack builds a wrapped algorithm with the full stack + FedAdam
// over a tiny environment, for the state-roundtrip fuzz target.
func newFuzzStack(tb testing.TB) *stackedAlg {
	tb.Helper()
	cfg := Config{}
	var err error
	if cfg.AggStack, err = aggstack.ParseStack("zeroing|clip"); err != nil {
		tb.Fatal(err)
	}
	if cfg.ServerOpt, err = aggstack.ParseServerOpt("adam:0.1"); err != nil {
		tb.Fatal(err)
	}
	alg, err := wrapStack(goldenFedAvg{}, &cfg)
	if err != nil {
		tb.Fatal(err)
	}
	a := alg.(*stackedAlg)
	a.Setup(&Env{NumClients: 4, NumParams: 8, Cfg: cfg})
	return a
}

// FuzzStackRoundtrip feeds arbitrary bytes to the wrapper's LoadState:
// corrupt or truncated stack state must fail with an error, never a
// panic; and any accepted state must re-serialize to a fixed point
// (save → load → save is bit-identical), the property checkpoint resume
// depends on.
func FuzzStackRoundtrip(f *testing.F) {
	seedAlg := newFuzzStack(f)
	var fresh bytes.Buffer
	if err := seedAlg.SaveState(&fresh); err != nil {
		f.Fatal(err)
	}
	f.Add(fresh.Bytes())

	seedAlg.stages[0].SetEstimate(42.5)
	seedAlg.stages[1].SetEstimate(0.125)
	_, m, v := seedAlg.opt.State()
	for i := range m {
		m[i] = float64(i) * 0.25
		v[i] = float64(i) * 0.5
	}
	if err := seedAlg.opt.Restore(7, m, v); err != nil {
		f.Fatal(err)
	}
	var warmed bytes.Buffer
	if err := seedAlg.SaveState(&warmed); err != nil {
		f.Fatal(err)
	}
	f.Add(warmed.Bytes())
	f.Add(warmed.Bytes()[:warmed.Len()/2])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		a := newFuzzStack(t)
		if err := a.LoadState(bytes.NewReader(data)); err != nil {
			return
		}
		var first bytes.Buffer
		if err := a.SaveState(&first); err != nil {
			t.Fatalf("save after accepted load: %v", err)
		}
		b := newFuzzStack(t)
		if err := b.LoadState(bytes.NewReader(first.Bytes())); err != nil {
			t.Fatalf("canonical state rejected on reload: %v", err)
		}
		var second bytes.Buffer
		if err := b.SaveState(&second); err != nil {
			t.Fatalf("second save: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("save/load/save not a fixed point:\nfirst  %x\nsecond %x", first.Bytes(), second.Bytes())
		}
	})
}
