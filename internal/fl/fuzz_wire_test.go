package fl

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/compress"
	"repro/internal/wire"
)

// chunkReader delivers at most chunk bytes per Read, forcing the frame
// reader through every partial-delivery path a real TCP stream can
// produce (split headers, split bodies, frames straddling reads).
type chunkReader struct {
	r     io.Reader
	chunk int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(p) > c.chunk {
		p = p[:c.chunk]
	}
	return c.r.Read(p)
}

// fuzzFrame builds one complete frame around a body.
func fuzzFrame(t wire.FrameType, body []byte) []byte {
	buf := wire.BeginFrame(nil, t)
	buf = append(buf, body...)
	wire.EndFrame(buf, 0)
	return buf
}

// FuzzWireStream drives the server/worker read loop's frame-and-parse
// pipeline with arbitrary byte streams delivered in arbitrarily small
// chunks: split frames, truncated frames, concatenated frames, and
// garbage must all surface as errors, never panics, and every frame
// accepted before the stream breaks must parse without panicking in the
// Hello/Dispatch/Updates decoders.
func FuzzWireStream(f *testing.F) {
	hello := fuzzFrame(wire.FrameHello, appendHello(nil, 0xfeed, 1, 4, 2))
	dispatch := fuzzFrame(wire.FrameDispatch, appendDispatch(nil, 3, []int{1, 5}, []float64{0.5, -1, 2}))
	update := fuzzFrame(wire.FrameUpdates, appendUpdateEntry(nil, &Update{Client: 2, TrainLoss: 0.25, Delta: []float64{1, 2, 3}}, 0.125))
	f.Add(hello, uint8(1))
	f.Add(dispatch, uint8(3))
	f.Add(update, uint8(7))
	// Two frames back to back, a truncated frame, and a frame followed
	// by garbage.
	f.Add(append(append([]byte{}, hello...), dispatch...), uint8(2))
	f.Add(dispatch[:len(dispatch)-3], uint8(4))
	f.Add(append(append([]byte{}, update...), 0xff, 0x00, 0xfb), uint8(5))

	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		r := &chunkReader{r: bytes.NewReader(data), chunk: max(int(chunk), 1)}
		var fr wire.Frame
		for i := 0; i < 64; i++ {
			if err := wire.ReadFrame(r, &fr); err != nil {
				return
			}
			switch fr.Type {
			case wire.FrameHello:
				parseHello(fr.Body)
			case wire.FrameDispatch, wire.FrameAdopt:
				parseDispatch(fr.Body)
			case wire.FrameUpdates:
				// Walk the entry stream the way ingest does: id, loss,
				// measured, then a self-delimiting payload.
				d := wire.Dec{B: fr.Body}
				var p compress.Payload
				for d.Err == nil && d.Len() > 0 {
					d.Uvarint()
					d.F64()
					d.F64()
					if err := wire.DecodePayload(&p, &d); err != nil {
						break
					}
				}
			}
		}
	})
}
