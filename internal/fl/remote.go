package fl

import (
	"fmt"
	"hash/fnv"

	"repro/internal/fault"
	"repro/internal/wire"
)

// WireSafe marks algorithms whose client-side hooks (LocalInit,
// BeginLocal, GradAdjust, EndLocal) are pure functions of the dispatched
// global model and the config — no state written by Aggregate is ever
// read on the client. Only such algorithms can run under fl.Serve, where
// clients live in other processes and the server's aggregation state is
// never shipped to them: a stateful algorithm (Scaffold's control
// variates, FedACG's momentum, TACO's α-weights) would silently train
// against stale state instead of failing loudly, so Serve rejects
// anything unmarked. The marker belongs on the raw algorithm; stack
// wrappers are checked through their inner algorithm.
type WireSafe interface {
	// WireSafe is a marker; it is never called.
	WireSafe()
}

// validateWire rejects configurations the wire path cannot execute
// faithfully. Adversaries and freeloaders are out: their fabricators and
// injectors run on the dispatch path with server-held state (prevGlobal,
// window clocks) that workers do not have. Checkpointing — and the
// servercrash fault, which restores from a checkpoint — runs over the
// wire under the sync and deadline policies, where every dispatch
// settles inside its round and a snapshot therefore lands on a quiet
// boundary; under the async policy a snapshot would have to serialize
// in-flight deltas that may still be crossing the socket, so the
// combination is rejected. Scheduler-side faults (crash/drop/dup/slow)
// stay available everywhere — they are resolved from server-owned rng
// streams before dispatch, so workers never see them.
func validateWire(cfg *Config, alg Algorithm) error {
	if _, ok := alg.(WireSafe); !ok {
		return fmt.Errorf("fl: algorithm %s is not wire-safe (client hooks may read server aggregation state)", alg.Name())
	}
	if len(cfg.Adversaries) > 0 || len(cfg.Freeloaders) > 0 {
		return fmt.Errorf("fl: adversaries are not supported over the wire")
	}
	ckpt := cfg.CheckpointEvery > 0 || cfg.OnCheckpoint != nil
	for _, f := range cfg.Faults {
		if f.Kind == fault.KindServerCrash {
			ckpt = true
		}
	}
	if ckpt && cfg.Policy == PolicyAsync {
		return fmt.Errorf("fl: checkpointing over the wire requires the sync or deadline policy (async snapshots would serialize in-flight uploads)")
	}
	return nil
}

// serveFingerprint hashes everything that must agree between the server
// and a worker for their replayed rng derivations and local training to
// be bit-identical: the training config, the codec, the algorithm, and
// the data geometry. Workers send it in Hello; a mismatch is rejected
// before any training happens.
func serveFingerprint(cfg *Config, algName, dsName string, numClients, numParams int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "v1|%d|%d|%d|%x|%x|%d|%s|%v|%x|%d|%s|%x|%d|%s|%g|%d|%s|%s|%d|%d",
		cfg.Rounds, cfg.LocalSteps, cfg.BatchSize,
		cfg.LocalLR, cfg.GlobalLR, cfg.Seed, cfg.DType,
		cfg.WeightByData, cfg.ParticipationFraction,
		int(cfg.Policy), cfg.Policy.String(), cfg.RoundDeadlineSec, cfg.AsyncBuffer,
		cfg.Compress.Kind, cfg.Compress.TopKFrac, cfg.Compress.Chunk,
		algName, dsName, numClients, numParams)
	return h.Sum64()
}

// Frame-body encodings for the flserver protocol (frame types in
// internal/wire). All integers are uvarints, all floats raw little-
// endian float64 bits.

// appendHello encodes a worker's Hello: fingerprint, worker index,
// worker count, and the attach counter — the worker's resume token,
// 0 on its first connection and incremented on every re-dial, so the
// server can tell a fresh fleet member from one re-attaching after a
// connection loss (a re-attaching worker's rng streams restart from
// zero and must be rebuilt by a history replay).
func appendHello(dst []byte, fp uint64, index, workers, attach int) []byte {
	dst = wire.AppendU64(dst, fp)
	dst = wire.AppendUvarint(dst, uint64(index))
	dst = wire.AppendUvarint(dst, uint64(workers))
	return wire.AppendUvarint(dst, uint64(attach))
}

// parseHello decodes a Hello body.
func parseHello(body []byte) (fp uint64, index, workers, attach int, err error) {
	d := wire.Dec{B: body}
	fp = d.U64()
	index = int(d.Uvarint())
	workers = int(d.Uvarint())
	attach = int(d.Uvarint())
	if d.Err == nil && d.Len() != 0 {
		d.Err = fmt.Errorf("fl: %d trailing bytes in hello", d.Len())
	}
	return fp, index, workers, attach, d.Err
}

// appendDispatch encodes one dispatch batch: the round (the server
// version under the async policy), the client IDs to train, and the
// global model snapshot they train from.
func appendDispatch(dst []byte, round int, ids []int, global []float64) []byte {
	dst = wire.AppendUvarint(dst, uint64(round))
	dst = wire.AppendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = wire.AppendUvarint(dst, uint64(id))
	}
	dst = wire.AppendUvarint(dst, uint64(len(global)))
	for _, v := range global {
		dst = wire.AppendF64(dst, v)
	}
	return dst
}

// byePausing is the Bye body code for a server that is pausing the run
// (interrupted, intending a checkpointed restart) rather than completing
// it; workers surface it as ErrServerPaused. An empty Bye body means the
// run finished.
const byePausing byte = 1

// dispatchMsg is one decoded dispatch batch. The slices are owned by the
// message (workers process dispatches strictly in order, but decode them
// on the reader goroutine while training runs). adopt marks a replayed
// batch the worker trains and discards; restore marks a body-less worker
// reset (both ride the same in-order queue so a replay lands exactly
// where the server sequenced it).
type dispatchMsg struct {
	round   int
	ids     []int
	global  []float64
	adopt   bool
	restore bool
}

// parseDispatch decodes a dispatch body.
func parseDispatch(body []byte) (*dispatchMsg, error) {
	d := wire.Dec{B: body}
	m := &dispatchMsg{round: int(d.Uvarint())}
	k := d.Count(wire.MaxElems, 1)
	m.ids = make([]int, k)
	for j := 0; j < k && d.Err == nil; j++ {
		m.ids[j] = int(d.Uvarint())
	}
	n := d.Count(wire.MaxElems, 8)
	m.global = make([]float64, n)
	for i := 0; i < n && d.Err == nil; i++ {
		m.global[i] = d.F64()
	}
	if d.Err == nil && d.Len() != 0 {
		d.Err = fmt.Errorf("fl: %d trailing bytes in dispatch", d.Len())
	}
	if d.Err != nil {
		return nil, d.Err
	}
	return m, nil
}

// appendUpdateEntry encodes one completed client result inside an
// Updates frame: id, train loss, measured wall seconds, then the payload
// (the codec encoding when compression is live, the dense fallback
// otherwise — self-delimiting either way).
func appendUpdateEntry(dst []byte, u *Update, measured float64) []byte {
	dst = wire.AppendUvarint(dst, uint64(u.Client))
	dst = wire.AppendF64(dst, u.TrainLoss)
	dst = wire.AppendF64(dst, measured)
	if u.Payload != nil {
		return wire.AppendPayload(dst, u.Payload)
	}
	return wire.AppendDense(dst, u.Delta)
}
