package fl

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/vecmath"
)

func TestBaseDefaults(t *testing.T) {
	var b Base
	w := []float64{1, 2, 3}
	out := make([]float64, 3)
	b.LocalInit(0, 0, w, out)
	for i := range w {
		if out[i] != w[i] {
			t.Fatal("Base.LocalInit must copy w")
		}
	}
	if got := b.FinalModel(w); &got[0] != &w[0] {
		t.Fatal("Base.FinalModel must be the identity")
	}
	if b.MeanAlpha() != 0 {
		t.Fatal("Base.MeanAlpha must be 0")
	}
	if c := b.Costs(); c.GradEvalsPerStep != 1 || c.AuxPerStep != 0 {
		t.Fatalf("Base.Costs = %+v, want the plain profile", c)
	}
	// No-op hooks must not panic.
	b.Setup(nil)
	b.BeginLocal(0, 0, nil)
	b.GradAdjust(nil)
	b.EndLocal(0, 0, nil)
}

func TestServerCtxExpel(t *testing.T) {
	s := &ServerCtx{}
	s.Expel(3)
	s.Expel(5)
	if len(s.expelled) != 2 || s.expelled[0] != 3 || s.expelled[1] != 5 {
		t.Fatalf("expelled = %v", s.expelled)
	}
}

func TestGlobalLRDefault(t *testing.T) {
	env := &Env{Cfg: Config{LocalSteps: 10, LocalLR: 0.05}}
	s := &ServerCtx{Env: env}
	if got := s.GlobalLR(); got != 0.5 {
		t.Fatalf("GlobalLR = %v, want K·ηl = 0.5", got)
	}
	env.Cfg.GlobalLR = 2
	if got := s.GlobalLR(); got != 2 {
		t.Fatalf("GlobalLR = %v, want explicit 2", got)
	}
}

func TestFedAvgStepMovesByMeanDelta(t *testing.T) {
	env := &Env{Cfg: Config{LocalSteps: 2, LocalLR: 0.5, Rounds: 1, BatchSize: 1}}
	w := []float64{10, 10}
	s := &ServerCtx{W: w, Env: env}
	updates := []Update{
		{Client: 0, Delta: []float64{1, 0}, NumSamples: 1},
		{Client: 1, Delta: []float64{3, 0}, NumSamples: 1},
	}
	FedAvgStep(s, updates)
	// ηg = K·ηl, so the model moves by exactly the mean delta: −2 in x.
	if w[0] != 8 || w[1] != 10 {
		t.Fatalf("w after FedAvgStep = %v, want [8 10]", w)
	}
}

func TestSortUpdatesByClient(t *testing.T) {
	updates := []Update{{Client: 2}, {Client: 0}, {Client: 1}}
	SortUpdatesByClient(updates)
	for i, u := range updates {
		if u.Client != i {
			t.Fatalf("updates not sorted: %v", updates)
		}
	}
}

func TestAdversarySpecNormalization(t *testing.T) {
	// The legacy Freeloaders field compiles to a leading freeloader spec
	// with sorted, deduplicated members, so every downstream iteration is
	// deterministic (the old map-backed set iterated in random order).
	cfg := Config{Freeloaders: []int{3, 1, 3}}
	specs := cfg.adversarySpecs()
	if len(specs) != 1 {
		t.Fatalf("specs = %+v, want one freeloader spec", specs)
	}
	if specs[0].Kind != adversary.KindFreeloader {
		t.Fatalf("kind = %v", specs[0].Kind)
	}
	if got := specs[0].Clients; len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("clients = %v, want sorted dedup [1 3]", got)
	}
	if (Config{}).adversarySpecs() != nil {
		t.Fatal("empty corruption config must produce no specs")
	}
	both := Config{
		Freeloaders: []int{2},
		Adversaries: []adversary.Spec{{Kind: adversary.KindSignFlip, Frac: 0.5}},
	}
	specs = both.adversarySpecs()
	if len(specs) != 2 || specs[0].Kind != adversary.KindFreeloader || specs[1].Kind != adversary.KindSignFlip {
		t.Fatalf("combined specs = %+v", specs)
	}
}

func TestMeanLossSkipsFreeloaders(t *testing.T) {
	updates := []Update{
		{TrainLoss: 2},
		{TrainLoss: math.NaN()}, // freeloaders report NaN ("no loss")
		{TrainLoss: 4},
	}
	if got := meanLoss(updates); got != 3 {
		t.Fatalf("meanLoss = %v, want 3", got)
	}
	// An honest client whose true mean loss is exactly 0 still counts
	// (the old 0 sentinel silently excluded it).
	updates = []Update{
		{TrainLoss: 0},
		{TrainLoss: math.NaN()},
		{TrainLoss: 4},
	}
	if got := meanLoss(updates); got != 2 {
		t.Fatalf("meanLoss with honest zero loss = %v, want 2", got)
	}
	if got := meanLoss(nil); got != 0 {
		t.Fatalf("meanLoss(nil) = %v", got)
	}
	if got := meanLoss([]Update{{TrainLoss: math.NaN()}}); got != 0 {
		t.Fatalf("meanLoss of freeloaders only = %v, want 0", got)
	}
}

func TestAggregationWeightsSumToOne(t *testing.T) {
	updates := []Update{
		{NumSamples: 7}, {NumSamples: 13}, {NumSamples: 5},
	}
	for _, byData := range []bool{false, true} {
		w := AggregationWeights(updates, byData)
		if s := vecmath.Sum(w); s < 0.999 || s > 1.001 {
			t.Fatalf("weights sum to %v (byData=%v)", s, byData)
		}
	}
}
