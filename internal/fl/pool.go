package fl

import (
	"sync"
	"time"

	"repro/internal/compress"
	"repro/internal/nn"
	"repro/internal/rng"
)

// slot bundles the training resources one in-flight local round needs: an
// execution engine (activation/gradient arenas sized for the batch) plus
// the w0/w/grad/scratch parameter buffers and the mini-batch staging
// buffers. Slots carry no client identity — every buffer is fully
// overwritten by each local round, so which slot serves which client is
// invisible in the results (the P=1-vs-P=8 bit-identity tests pin this).
type slot struct {
	eng                  *nn.Engine // float64 engine; nil under DType "f32"
	w0, w, grad, scratch []float64
	batchX               []float64
	batchY               []int
	// The float32 compute path (Config.DType "f32", DESIGN.md §10): the
	// fp32 engine replaces the fp64 one — halving the activation arenas,
	// the dominant slot memory — and the four fp32 twins bridge the hot
	// loop. w0/w/grad/scratch stay allocated as the float64 views every
	// algorithm hook reads; localUpdate32 keeps the two precisions in
	// sync at the hook boundary.
	eng32    *nn.Engine32
	w32      []float32
	grad32   []float32
	corr32   []float32 // narrowed fused-correction vector
	batchX32 []float32
	// ctx is the slot's reusable StepCtx, so dispatching a local round
	// does not allocate (the interface call to GradAdjust would otherwise
	// force a fresh StepCtx to escape every round).
	ctx StepCtx
}

// roundTask is the work description shared by every job of one
// runLocalRounds call. It lives inside the pool so submitting a round
// writes plain struct fields instead of allocating a closure per round.
type roundTask struct {
	cfg        *Config
	alg        Algorithm
	pool       *slotPool
	clients    []*client
	ids        []int
	round      int
	global     []float64
	prevGlobal []float64
	updates    []Update
	measured   []float64
	// now is the modeled dispatch time, which gates window-activated
	// corruption (adversary.go).
	now float64
}

// run executes job j (the j-th client of the round) on the worker's slot.
// Corruption and compression hooks live here, on the checkout path: a
// live fabricator replaces training outright; otherwise the client trains
// (from its corrupted shard while a data-level window is live) and the
// update-level injector chain mutates the delta in place before upload.
// With a codec live the outgoing delta — fabricated ones included; lossy
// transport applies to every upload — is then error-feedback encoded into
// the ring buffer's payload, and the dense delta is replaced by the
// decoded view so every aggregation rule sees exactly what arrived on the
// wire.
func (t *roundTask) run(j int, sl *slot) {
	c := t.clients[t.ids[j]]
	start := time.Now()
	if fab := c.fabricatorAt(t.now); fab != nil {
		c.fabricate(fab, t.cfg, t.updates[j].Delta, t.round, t.global, t.prevGlobal)
	} else {
		if t.cfg.isF32() {
			localUpdate32(t.cfg, t.alg, c, sl, t.updates[j].Delta, t.round, t.global, c.samplerAt(t.now))
		} else {
			localUpdate(t.cfg, t.alg, c, sl, t.updates[j].Delta, t.round, t.global, c.samplerAt(t.now))
		}
		c.injectDelta(t.cfg, t.updates[j].Delta, t.round, t.now, t.global, t.prevGlobal)
	}
	if comp := t.pool.comp; comp != nil {
		comp.compress(&t.updates[j], sl)
	}
	t.measured[j] = time.Since(start).Seconds()
	t.updates[j].TrainLoss = c.lastLoss
}

// upload is one delta-ring entry: the dense delta buffer plus a sized
// encode buffer (the codec payload) that rides along when a codec is
// live, so encoding an upload in steady state allocates nothing.
//
// loss and measured are the remote-execution backfill fields: under
// fl.Serve, Update structs are copied into the scheduler's flight table
// at dispatch time, before the worker's reply lands, so the reply's
// train loss and measured wall time are written here — the one location
// both the flight copy and the ingest goroutine can reach — and copied
// out by the executor's settle step. The in-process executor never
// touches them.
type upload struct {
	delta    []float64
	pay      compress.Payload
	loss     float64
	measured float64
	// lost marks an in-flight dispatch whose worker died with failover
	// exhausted (no survivor to adopt it, no reconnect within grace):
	// settle stops waiting for it and the scheduler feeds it through the
	// quorum/degradation path instead of aborting the run.
	lost bool
	// via is the connection that delivered (or, while in flight, will
	// deliver) this upload — the reassignment-stable handle backpressure
	// accounting needs, since the owner table may have moved the client
	// to another worker after dispatch.
	via *serveConn
}

// executor runs dispatched local rounds and hands their results back to
// the scheduler. The in-process implementation is the slot pool, which
// computes updates synchronously inside runRound; the remote
// implementation (serve.go) serializes dispatch frames to socket-
// connected workers inside runRound and defers the results, which is
// what lets round r+1's dispatch overlap round r's aggregation. The
// seam's contract: runRound fills updates with ring-backed buffers that
// MAY still be empty; no field of an update — Delta, Payload, TrainLoss
// — nor its measured time may be read until settle (whole round) or
// settleOne (one update) has returned for it, and every settled update
// must eventually be released.
type executor interface {
	runRound(cfg *Config, alg Algorithm, clients []*client, ids []int, round int, now float64, global, prevGlobal []float64, updates []Update, measured []float64) error
	// settle blocks until every update of the round has its results in
	// place (position j of measured matches updates[j]).
	settle(updates []Update, measured []float64) error
	// settleOne blocks until one update's results are in place; measured
	// may be nil when the caller only needs the update itself.
	settleOne(u *Update, measured *float64) error
	release(u *Update)
	close()
}

// compressor is the slot pool's uplink codec state (DESIGN.md §7): the
// shared stateless codec plus the per-client mutable pieces — the
// error-feedback residual, allocated lazily on first participation like
// Scaffold's control variates (nil = zero vector), and the deterministic
// quantization stream, derived after every honest stream at setup so a
// codec-free config's draws are untouched. A client is in flight at most
// once at any instant under every policy, so workers touch disjoint
// residuals and streams without locking.
type compressor struct {
	codec   compress.Codec
	resid   [][]float64 // error-feedback residuals; nil rows until first use
	resid32 [][]float32 // fp32 residuals under DType "f32" (resid stays nil)
	streams []*rng.RNG
}

// compress runs the error-feedback encode step for one upload on the
// checkout path: u.Delta is folded with the client's residual, encoded
// into the ring buffer's payload, and replaced by the decoded
// server-visible update; the residual keeps the mass the codec dropped
// for the client's next round (compress.EncodeEF).
func (c *compressor) compress(u *Update, sl *slot) {
	id := u.Client
	if c.resid32 != nil {
		// fp32 mode: the residual rides the slot dtype — it carries
		// client-local dropped mass, the same precision class as the
		// client's training state — while the encode/decode arithmetic
		// stays float64 on the widened delta (compress.EncodeEF32).
		e := c.resid32[id]
		if e == nil {
			e = make([]float32, len(u.Delta))
			c.resid32[id] = e
		}
		compress.EncodeEF32(c.codec, u.Payload, u.Delta, e, c.streams[id], sl.scratch)
		return
	}
	e := c.resid[id]
	if e == nil {
		e = make([]float64, len(u.Delta))
		c.resid[id] = e
	}
	compress.EncodeEF(c.codec, u.Payload, u.Delta, e, c.streams[id], sl.scratch)
}

// slotPool decouples per-client identity from per-client training
// resources. Exactly P = min(Parallelism, clients) slots exist, each
// pinned to one long-lived worker goroutine, so a run's training memory
// is O(P·d) for the heavy state instead of O(n·d): a thousand-client
// fleet no longer owns a thousand engines (DESIGN.md §5).
//
// The pool also owns the delta ring: uploads (Update.Delta and the
// encoded Update.Payload) must outlive the slot that produced them —
// until the server consumes them at aggregation — so they are checked
// out of a free list sized by the steady-state in-flight count and
// returned by the scheduler once aggregated (or discarded). After the
// first round the ring is warm and checkout allocates nothing.
type slotPool struct {
	jobs chan int
	wg   sync.WaitGroup
	task roundTask
	// comp is the uplink codec state, nil for dense transport (the
	// entire compression path is skipped, bit-identical to the
	// pre-codec engine).
	comp *compressor

	mu        sync.Mutex
	free      []*upload // delta ring free list
	numParams int
	slots     int
}

// newSlotPool creates the pool and starts its worker goroutines. Close
// must be called when the run ends to stop them.
func newSlotPool(net *nn.Network, cfg Config, n int) *slotPool {
	workers := min(cfg.parallelism(), n)
	p := &slotPool{
		jobs:      make(chan int, n),
		numParams: net.NumParams(),
		slots:     workers,
	}
	inSize := net.InShape().Size()
	for w := 0; w < workers; w++ {
		sl := &slot{
			w0:      make([]float64, p.numParams),
			w:       make([]float64, p.numParams),
			grad:    make([]float64, p.numParams),
			scratch: make([]float64, p.numParams),
			batchX:  make([]float64, cfg.BatchSize*inSize),
			batchY:  make([]int, cfg.BatchSize),
		}
		if cfg.isF32() {
			sl.eng32 = nn.NewEngine32(net, cfg.BatchSize)
			sl.w32 = make([]float32, p.numParams)
			sl.grad32 = make([]float32, p.numParams)
			sl.corr32 = make([]float32, p.numParams)
			sl.batchX32 = make([]float32, cfg.BatchSize*inSize)
		} else {
			sl.eng = nn.NewEngine(net, cfg.BatchSize)
		}
		go p.worker(sl)
	}
	return p
}

// worker drains jobs onto its pinned slot until the pool closes.
func (p *slotPool) worker(sl *slot) {
	for j := range p.jobs {
		p.task.run(j, sl)
		p.wg.Done()
	}
}

// close stops the worker goroutines. The pool must be idle. A ring-only
// pool (newRingPool) has no workers to stop.
func (p *slotPool) close() {
	if p.jobs != nil {
		close(p.jobs)
	}
}

// settle implements executor: runRound already computed everything.
func (p *slotPool) settle([]Update, []float64) error { return nil }

// settleOne implements executor: runRound already computed everything.
func (p *slotPool) settleOne(*Update, *float64) error { return nil }

// newRingPool creates a pool that owns only the delta ring — no slots,
// no worker goroutines, no engines. The remote executor (serve.go) uses
// it for the server side of a wire run, where local training never
// happens: ring entries hold the decoded uploads workers send back.
func newRingPool(numParams int) *slotPool {
	return &slotPool{numParams: numParams}
}

// runRound executes one round of local updates for the given client IDs
// on the worker pool, checking a delta buffer out of the ring for each
// update and filling updates/measured slot-by-slot (position j matches
// ids[j]). It returns once every client's update is written; the error
// is always nil (the executor seam's remote implementation can fail).
func (p *slotPool) runRound(cfg *Config, alg Algorithm, clients []*client, ids []int, round int, now float64, global, prevGlobal []float64, updates []Update, measured []float64) error {
	for j, id := range ids {
		u := p.getUpload()
		updates[j] = Update{
			Client:     id,
			Delta:      u.delta,
			NumSamples: clients[id].data.Len(),
			Corrupt:    clients[id].corrupt(),
			ring:       u,
		}
		if p.comp != nil {
			updates[j].Payload = &u.pay
		}
	}
	p.task = roundTask{
		cfg:        cfg,
		alg:        alg,
		pool:       p,
		clients:    clients,
		ids:        ids,
		round:      round,
		global:     global,
		prevGlobal: prevGlobal,
		updates:    updates,
		measured:   measured,
		now:        now,
	}
	p.wg.Add(len(ids))
	for j := range ids {
		p.jobs <- j
	}
	p.wg.Wait()
	return nil
}

// getUpload checks a ring entry (delta buffer + sized encode buffer) out
// of the ring, allocating only when the free list is empty (cold start
// or a new in-flight high-water mark).
func (p *slotPool) getUpload() *upload {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		u := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		u.lost, u.via = false, nil
		return u
	}
	p.mu.Unlock()
	u := &upload{delta: make([]float64, p.numParams)}
	if p.comp != nil {
		p.comp.codec.Grow(&u.pay, p.numParams)
	}
	return u
}

// release returns an update's ring entry and clears its borrowed views.
// The caller must not retain Delta or Payload past this call. Updates
// not built by runRound (tests constructing them by hand) carry no ring
// entry and are left untouched.
func (p *slotPool) release(u *Update) {
	if u.ring == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, u.ring)
	p.mu.Unlock()
	u.ring, u.Delta, u.Payload = nil, nil, nil
}
