package fl

import (
	"sync"
	"time"

	"repro/internal/nn"
)

// slot bundles the training resources one in-flight local round needs: an
// execution engine (activation/gradient arenas sized for the batch) plus
// the w0/w/grad/scratch parameter buffers and the mini-batch staging
// buffers. Slots carry no client identity — every buffer is fully
// overwritten by each local round, so which slot serves which client is
// invisible in the results (the P=1-vs-P=8 bit-identity tests pin this).
type slot struct {
	eng                  *nn.Engine
	w0, w, grad, scratch []float64
	batchX               []float64
	batchY               []int
	// ctx is the slot's reusable StepCtx, so dispatching a local round
	// does not allocate (the interface call to GradAdjust would otherwise
	// force a fresh StepCtx to escape every round).
	ctx StepCtx
}

// roundTask is the work description shared by every job of one
// runLocalRounds call. It lives inside the pool so submitting a round
// writes plain struct fields instead of allocating a closure per round.
type roundTask struct {
	cfg        *Config
	alg        Algorithm
	clients    []*client
	ids        []int
	round      int
	global     []float64
	prevGlobal []float64
	updates    []Update
	measured   []float64
	// now is the modeled dispatch time, which gates window-activated
	// corruption (adversary.go).
	now float64
}

// run executes job j (the j-th client of the round) on the worker's slot.
// Corruption hooks live here, on the checkout path: a live fabricator
// replaces training outright; otherwise the client trains (from its
// corrupted shard while a data-level window is live) and the update-level
// injector chain mutates the delta in place before upload.
func (t *roundTask) run(j int, sl *slot) {
	c := t.clients[t.ids[j]]
	start := time.Now()
	if fab := c.fabricatorAt(t.now); fab != nil {
		c.fabricate(fab, t.cfg, t.updates[j].Delta, t.round, t.global, t.prevGlobal)
	} else {
		localUpdate(t.cfg, t.alg, c, sl, t.updates[j].Delta, t.round, t.global, c.samplerAt(t.now))
		c.injectDelta(t.cfg, t.updates[j].Delta, t.round, t.now, t.global, t.prevGlobal)
	}
	t.measured[j] = time.Since(start).Seconds()
	t.updates[j].TrainLoss = c.lastLoss
}

// slotPool decouples per-client identity from per-client training
// resources. Exactly P = min(Parallelism, clients) slots exist, each
// pinned to one long-lived worker goroutine, so a run's training memory
// is O(P·d) for the heavy state instead of O(n·d): a thousand-client
// fleet no longer owns a thousand engines (DESIGN.md §5).
//
// The pool also owns the delta ring: uploads (Update.Delta) must outlive
// the slot that produced them — until the server consumes them at
// aggregation — so they are checked out of a free list sized by the
// steady-state in-flight count and returned by the scheduler once
// aggregated (or discarded). After the first round the ring is warm and
// checkout allocates nothing.
type slotPool struct {
	jobs chan int
	wg   sync.WaitGroup
	task roundTask

	mu        sync.Mutex
	free      [][]float64 // delta ring free list
	numParams int
	slots     int
}

// newSlotPool creates the pool and starts its worker goroutines. Close
// must be called when the run ends to stop them.
func newSlotPool(net *nn.Network, cfg Config, n int) *slotPool {
	workers := min(cfg.parallelism(), n)
	p := &slotPool{
		jobs:      make(chan int, n),
		numParams: net.NumParams(),
		slots:     workers,
	}
	inSize := net.InShape().Size()
	for w := 0; w < workers; w++ {
		sl := &slot{
			eng:     nn.NewEngine(net, cfg.BatchSize),
			w0:      make([]float64, p.numParams),
			w:       make([]float64, p.numParams),
			grad:    make([]float64, p.numParams),
			scratch: make([]float64, p.numParams),
			batchX:  make([]float64, cfg.BatchSize*inSize),
			batchY:  make([]int, cfg.BatchSize),
		}
		go p.worker(sl)
	}
	return p
}

// worker drains jobs onto its pinned slot until the pool closes.
func (p *slotPool) worker(sl *slot) {
	for j := range p.jobs {
		p.task.run(j, sl)
		p.wg.Done()
	}
}

// close stops the worker goroutines. The pool must be idle.
func (p *slotPool) close() { close(p.jobs) }

// runRound executes one round of local updates for the given client IDs
// on the worker pool, checking a delta buffer out of the ring for each
// update and filling updates/measured slot-by-slot (position j matches
// ids[j]). It returns once every client's update is written.
func (p *slotPool) runRound(cfg *Config, alg Algorithm, clients []*client, ids []int, round int, now float64, global, prevGlobal []float64, updates []Update, measured []float64) {
	for j, id := range ids {
		updates[j] = Update{
			Client:     id,
			Delta:      p.getDelta(),
			NumSamples: clients[id].data.Len(),
			Corrupt:    clients[id].corrupt(),
		}
	}
	p.task = roundTask{
		cfg:        cfg,
		alg:        alg,
		clients:    clients,
		ids:        ids,
		round:      round,
		global:     global,
		prevGlobal: prevGlobal,
		updates:    updates,
		measured:   measured,
		now:        now,
	}
	p.wg.Add(len(ids))
	for j := range ids {
		p.jobs <- j
	}
	p.wg.Wait()
}

// getDelta checks a NumParams-length delta buffer out of the ring,
// allocating only when the free list is empty (cold start or a new
// in-flight high-water mark).
func (p *slotPool) getDelta() []float64 {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		d := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return d
	}
	p.mu.Unlock()
	return make([]float64, p.numParams)
}

// putDelta returns a buffer to the ring. The caller must not retain it.
func (p *slotPool) putDelta(d []float64) {
	p.mu.Lock()
	p.free = append(p.free, d)
	p.mu.Unlock()
}
