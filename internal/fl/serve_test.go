package fl_test

import (
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/baselines"
	"repro/internal/compress"
	"repro/internal/fault"
	"repro/internal/fl"
	"repro/internal/metrics"
)

// runWire executes cfg over a loopback TCP socket: fl.Serve in this
// goroutine, `workers` fl.RunWorker goroutines dialing in. Worker errors
// fail the test.
func runWire(t *testing.T, cfg fl.Config, workers int, opt fl.ServeOptions) *fl.Result {
	t.Helper()
	network, shards, test := testSetup(t, 8)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = fl.RunWorker(conn, i, workers, cfg, baselines.NewFedAvg(), network, shards, test.Name)
		}(i)
	}
	opt.Workers = workers
	res, serveErr := fl.Serve(ln, opt, cfg, baselines.NewFedAvg(), network, shards, test)
	ln.Close()
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			t.Fatalf("worker %d: %v", i, e)
		}
	}
	if serveErr != nil {
		t.Fatal(serveErr)
	}
	return res
}

// stripMeasured clears the real wall-time fields — the only metrics a
// wire run may legitimately differ on (both runs measure real Go time,
// just of different processes).
func stripMeasured(rounds []metrics.Round) []metrics.Round {
	out := make([]metrics.Round, len(rounds))
	for i, r := range rounds {
		r.SlowestMeasuredSec = 0
		r.CumMeasuredSec = 0
		out[i] = r
	}
	return out
}

// assertWireGolden runs cfg in-process and over loopback and requires
// bit-identical final weights and round metrics (measured wall times
// excluded).
func assertWireGolden(t *testing.T, cfg fl.Config, workers int) {
	t.Helper()
	network, shards, test := testSetup(t, 8)
	local, err := fl.Run(cfg, baselines.NewFedAvg(), network, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	wired := runWire(t, cfg, workers, fl.ServeOptions{})

	if len(wired.FinalParams) != len(local.FinalParams) {
		t.Fatalf("param count %d != %d", len(wired.FinalParams), len(local.FinalParams))
	}
	for i := range local.FinalParams {
		if wired.FinalParams[i] != local.FinalParams[i] {
			t.Fatalf("FinalParams[%d]: wire %v != local %v (first mismatch)", i, wired.FinalParams[i], local.FinalParams[i])
		}
	}
	lr, wr := stripMeasured(local.Run.Rounds), stripMeasured(wired.Run.Rounds)
	if !reflect.DeepEqual(lr, wr) {
		for i := range lr {
			if i < len(wr) && !reflect.DeepEqual(lr[i], wr[i]) {
				t.Fatalf("round %d metrics diverge:\nlocal %+v\nwire  %+v", i, lr[i], wr[i])
			}
		}
		t.Fatalf("round counts diverge: local %d, wire %d", len(lr), len(wr))
	}
}

// TestServeGoldenCodecs pins the tentpole acceptance bar: a socket-backed
// run is bit-identical to the in-process run — same final weights, same
// losses, same accuracies, same uplink accounting — under every payload
// wire form (dense, varint-delta TopK, chunked int8).
func TestServeGoldenCodecs(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec compress.Spec
	}{
		{"dense", compress.Spec{}},
		{"topk", compress.Spec{Kind: compress.KindTopK, TopKFrac: 0.25}},
		{"int8", compress.Spec{Kind: compress.KindInt8, Chunk: 64}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := quickConfig()
			cfg.Compress = tc.spec
			assertWireGolden(t, cfg, 2)
		})
	}
}

// TestServeGoldenPolicies covers the two non-sync schedulers: the
// deadline straggler cut and the pipelined async path (settleOne,
// overlapping dispatch), plus partial participation's sparse dispatch
// IDs, and an uneven three-way worker split.
func TestServeGoldenPolicies(t *testing.T) {
	t.Run("deadline", func(t *testing.T) {
		cfg := quickConfig()
		cfg.Policy = fl.PolicyDeadline
		cfg.RoundDeadlineSec = 1e6
		assertWireGolden(t, cfg, 2)
	})
	t.Run("async", func(t *testing.T) {
		cfg := quickConfig()
		cfg.Policy = fl.PolicyAsync
		cfg.AsyncBuffer = 3
		assertWireGolden(t, cfg, 2)
	})
	t.Run("participation", func(t *testing.T) {
		cfg := quickConfig()
		cfg.ParticipationFraction = 0.5
		assertWireGolden(t, cfg, 2)
	})
	t.Run("three workers", func(t *testing.T) {
		assertWireGolden(t, quickConfig(), 3)
	})
}

// TestServeGoldenFaults exercises server-side fault resolution over the
// wire: crashes retry (re-dispatching the same client, whose sampler
// advances identically in both modes) and duplicates double the charged
// uplink bytes — all decided from server-owned rng streams the workers
// never see.
func TestServeGoldenFaults(t *testing.T) {
	cfg := quickConfig()
	cfg.Faults = []fault.Spec{
		{Kind: fault.KindCrash, Frac: 0.3},
		{Kind: fault.KindDup, Frac: 0.5},
	}
	assertWireGolden(t, cfg, 2)
}

// TestServeRejectsUnsafe pins validateWire: stateful algorithms and
// async-policy checkpointing cannot run over the wire and must fail
// loudly up front.
func TestServeRejectsUnsafe(t *testing.T) {
	network, shards, test := testSetup(t, 8)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	cfg := quickConfig()
	if _, err := fl.Serve(ln, fl.ServeOptions{Workers: 1}, cfg, baselines.NewScaffold(1), network, shards, test); err == nil || !strings.Contains(err.Error(), "wire-safe") {
		t.Fatalf("stateful algorithm: got err %v, want wire-safe rejection", err)
	}
	cfg.CheckpointEvery = 2
	cfg.Policy = fl.PolicyAsync
	cfg.AsyncBuffer = 3
	if _, err := fl.Serve(ln, fl.ServeOptions{Workers: 1}, cfg, baselines.NewFedAvg(), network, shards, test); err == nil || !strings.Contains(err.Error(), "checkpointing") {
		t.Fatalf("async checkpointing: got err %v, want rejection", err)
	}

	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if err := fl.RunWorker(c1, 0, 1, quickConfig(), baselines.NewScaffold(1), network, shards, test.Name); err == nil || !strings.Contains(err.Error(), "wire-safe") {
		t.Fatalf("worker with stateful algorithm: got err %v, want wire-safe rejection", err)
	}
}

// TestServeFingerprintMismatch pins the handshake: a worker built from a
// diverging config (here a different seed) is rejected before any
// training, and both sides surface the mismatch.
func TestServeFingerprintMismatch(t *testing.T) {
	network, shards, test := testSetup(t, 8)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	workerErr := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			workerErr <- err
			return
		}
		bad := quickConfig()
		bad.Seed++
		workerErr <- fl.RunWorker(conn, 0, 1, bad, baselines.NewFedAvg(), network, shards, test.Name)
	}()

	_, err = fl.Serve(ln, fl.ServeOptions{Workers: 1}, quickConfig(), baselines.NewFedAvg(), network, shards, test)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("serve: got err %v, want fingerprint mismatch", err)
	}
	if werr := <-workerErr; werr == nil || !strings.Contains(werr.Error(), "rejected") {
		t.Fatalf("worker: got err %v, want rejection", werr)
	}
}
