package fl_test

import (
	"fmt"
	"testing"

	"repro/internal/baselines"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fl"
	"repro/internal/simclock"
)

// TestFaultDeterminismAcrossParallelism pins the fault subsystem's
// reproducibility contract: every fault outcome is drawn from dedicated
// per-client streams in the scheduler goroutine, so a faulty run is
// bit-identical at any parallelism level — P=1 and P=8, two seeds,
// all three policies.
func TestFaultDeterminismAcrossParallelism(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	for _, policy := range []fl.AggregationPolicy{fl.PolicySync, fl.PolicyDeadline, fl.PolicyAsync} {
		for _, seed := range []uint64{7, 19} {
			t.Run(fmt.Sprintf("%v-seed%d", policy, seed), func(t *testing.T) {
				cfg := faultedConfig(t, policy, seed, net)
				cfg.CheckpointEvery = 0

				cfg.Parallelism = 1
				one, err := fl.Run(cfg, core.New(core.Recommended()), net, shards, test)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Parallelism = 8
				eight, err := fl.Run(cfg, core.New(core.Recommended()), net, shards, test)
				if err != nil {
					t.Fatal(err)
				}
				sameParams(t, one.FinalParams, eight.FinalParams)
				sameRounds(t, one.Run.Rounds, eight.Run.Rounds)
			})
		}
	}
}

// TestFaultsActuallyFire guards against a silently inert fault plan: the
// mixed crash/drop/slow config must produce retries and lost updates.
func TestFaultsActuallyFire(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	cfg := faultedConfig(t, fl.PolicySync, 7, net)
	cfg.CheckpointEvery = 0
	res, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.TotalRetries() == 0 {
		t.Error("no retries recorded under a 20% crash + 15% drop mix")
	}
	if res.Run.TotalDupUpdates() == 0 {
		t.Error("no duplicate deliveries recorded under a 20% dup fault")
	}
}

// TestUplinkDupIdempotence pins the duplicate-delivery contract: the
// server ingests a duplicated update once, so a dup-only faulty run
// reaches bit-identical final weights to the fault-free run — the
// duplicates are visible only in DupUpdates and the uplink byte count.
//
// The codec dimension guards the double-charging seam specifically: a
// duplicated delivery must be billed at the update's *encoded* size (the
// same bytes the codec put on the wire), not the dense 8d fallback, so
// the dup run's uplink is exactly 2× the clean run's under every codec
// and every aggregation policy.
func TestUplinkDupIdempotence(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	codecs := []struct {
		name string
		spec compress.Spec
	}{
		{"dense", compress.Spec{}},
		{"topk", compress.Spec{Kind: compress.KindTopK, TopKFrac: 0.25}},
		{"int8", compress.Spec{Kind: compress.KindInt8, Chunk: 64}},
	}
	for _, policy := range []fl.AggregationPolicy{fl.PolicySync, fl.PolicyDeadline, fl.PolicyAsync} {
		for _, codec := range codecs {
			t.Run(fmt.Sprintf("%v-%s", policy, codec.name), func(t *testing.T) {
				clean := fl.Config{
					Rounds: 6, LocalSteps: 4, BatchSize: 16, LocalLR: 0.05, Seed: 11,
					Policy:   policy,
					Compress: codec.spec,
				}
				switch policy {
				case fl.PolicyDeadline:
					clean.RoundDeadlineSec = 10 * simclock.RoundSeconds(net.GradFlops(clean.BatchSize), clean.LocalSteps, simclock.Plain())
				case fl.PolicyAsync:
					clean.AsyncBuffer = 3
				}
				want, err := fl.Run(clean, baselines.NewFedAvg(), net, shards, test)
				if err != nil {
					t.Fatal(err)
				}

				duped := clean
				duped.Faults = []fault.Spec{{Kind: fault.KindDup, Frac: 1}}
				got, err := fl.Run(duped, baselines.NewFedAvg(), net, shards, test)
				if err != nil {
					t.Fatal(err)
				}
				sameParams(t, want.FinalParams, got.FinalParams)
				if got.Run.TotalDupUpdates() == 0 {
					t.Fatal("certain dup fault produced no duplicates")
				}
				var wantBytes, gotBytes int64
				for i := range want.Run.Rounds {
					wantBytes += want.Run.Rounds[i].UplinkBytes
					gotBytes += got.Run.Rounds[i].UplinkBytes
				}
				if wantBytes == 0 {
					t.Fatal("clean run recorded zero uplink bytes")
				}
				if codec.spec.Kind == compress.KindTopK && wantBytes >= int64(clean.Rounds)*int64(len(shards))*8*int64(net.NumParams()) {
					t.Fatalf("top-k run billed dense-sized uplink: %d bytes", wantBytes)
				}
				if gotBytes != 2*wantBytes {
					t.Fatalf("every-dispatch duplication should double encoded uplink bytes: clean %d, duped %d", wantBytes, gotBytes)
				}
			})
		}
	}
}

// TestQuorumDegradedRounds pins the quorum-commit semantics: under heavy
// loss with a quorum configured, below-quorum rounds commit degraded —
// recorded, never silent — and the run still completes.
func TestQuorumDegradedRounds(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	cfg := fl.Config{
		Rounds: 6, LocalSteps: 4, BatchSize: 16, LocalLR: 0.05, Seed: 11,
		Faults: []fault.Spec{{Kind: fault.KindCrash, Frac: 0.8}},
		Quorum: 0.75,
	}
	res, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.DegradedRounds() == 0 {
		t.Fatal("80% crash rate with a 0.75 quorum produced no degraded rounds")
	}
	if res.Run.TotalDroppedUpdates() == 0 {
		t.Fatal("80% crash rate lost no updates")
	}
	if len(res.Run.Rounds) != cfg.Rounds {
		t.Fatalf("run recorded %d rounds, want %d (degraded rounds must still commit)", len(res.Run.Rounds), cfg.Rounds)
	}
}

// TestSlowFaultStretchesRounds pins the latency-spike fault: modeled
// round time under a certain 4x slowdown exceeds the fault-free time,
// while measured training work is unchanged.
func TestSlowFaultStretchesRounds(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	clean := fl.Config{Rounds: 4, LocalSteps: 4, BatchSize: 16, LocalLR: 0.05, Seed: 11}
	want, err := fl.Run(clean, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	slowed := clean
	// Param 2 with timeout factor 4: the spike doubles compute but stays
	// inside the budget, so nothing is dropped — rounds just stretch.
	slowed.Faults = []fault.Spec{{Kind: fault.KindSlow, Frac: 1, Param: 2}}
	slowed.FaultTimeoutFactor = 4
	got, err := fl.Run(slowed, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	sameParams(t, want.FinalParams, got.FinalParams)
	if got.Run.TotalDroppedUpdates() != 0 {
		t.Fatalf("in-budget slowdown dropped %d updates", got.Run.TotalDroppedUpdates())
	}
	for i := range want.Run.Rounds {
		w, g := want.Run.Rounds[i].SlowestModeledSec, got.Run.Rounds[i].SlowestModeledSec
		if g != 2*w {
			t.Fatalf("round %d: slowed modeled time %v, want exactly 2x clean %v", i, g, w)
		}
	}
}

// TestFaultConfigValidation covers the fault-specific config rejections.
func TestFaultConfigValidation(t *testing.T) {
	net, shards, test := testSetup(t, 6)
	base := fl.Config{Rounds: 4, LocalSteps: 3, BatchSize: 8, LocalLR: 0.05, Seed: 11}
	cases := []struct {
		name   string
		mutate func(*fl.Config)
	}{
		{"retries without faults", func(c *fl.Config) { c.FaultRetries = 2 }},
		{"quorum without faults", func(c *fl.Config) { c.Quorum = 0.5 }},
		{"quorum above one", func(c *fl.Config) {
			c.Faults = []fault.Spec{{Kind: fault.KindDrop, Frac: 0.5}}
			c.Quorum = 1.5
		}},
		{"quorum under async", func(c *fl.Config) {
			c.Policy = fl.PolicyAsync
			c.AsyncBuffer = 2
			c.Faults = []fault.Spec{{Kind: fault.KindDrop, Frac: 0.5}}
			c.Quorum = 0.5
		}},
		{"certain crash", func(c *fl.Config) {
			c.Faults = []fault.Spec{{Kind: fault.KindCrash, Frac: 1}}
		}},
		{"servercrash past horizon", func(c *fl.Config) {
			c.Faults = []fault.Spec{{Kind: fault.KindServerCrash, Round: 4}}
		}},
		{"two servercrashes", func(c *fl.Config) {
			c.Faults = []fault.Spec{
				{Kind: fault.KindServerCrash, Round: 1},
				{Kind: fault.KindServerCrash, Round: 2},
			}
		}},
		{"negative checkpoint cadence", func(c *fl.Config) { c.CheckpointEvery = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test); err == nil {
				t.Fatalf("config accepted: %+v", cfg)
			}
		})
	}
}
