package fl

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/vecmath"
)

// scheduler is the event-driven round engine behind Run. One instance
// drives one training run under one aggregation policy; its virtual clock
// is modeled (simclock) time, so every scheduling decision — straggler
// drops, arrival order, staleness — is a pure function of the config and
// therefore bit-reproducible at any parallelism level.
//
// Local computation is executed when a client is *dispatched*, not when
// its modeled finish event fires: the algorithm state a client reads
// (correction vectors, control variates) is exactly the state at its
// dispatch version, which is what makes stale-correction dynamics
// faithful without racing the server's aggregation step. Per-client
// algorithm state written by EndLocal therefore reflects the client's
// latest dispatched round, which under the async policy may be ahead of
// an update still waiting in the server buffer.
type scheduler struct {
	cfg      Config
	alg      Algorithm
	clients  []*client
	env      *Env
	params   []float64
	wPrev    []float64
	active   []bool
	expelled map[int]int
	run      *metrics.Run
	evalEng  *nn.Engine
	test     *dataset.Dataset
	// baseRound is the nominal-device modeled duration of one local round
	// (K steps with the algorithm's cost profile); per-client durations
	// scale it by the device's speed factor.
	baseRound float64
	partRNG   *rng.RNG
}

// participants collects the round's participating clients in ID order,
// applying the partial-participation sampler, and errors when every
// client has been expelled.
func (s *scheduler) participants(t int) ([]int, error) {
	ids := make([]int, 0, len(s.clients))
	for i := range s.clients {
		if s.active[i] {
			ids = append(ids, i)
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("fl: all clients expelled by round %d", t)
	}
	if f := s.cfg.ParticipationFraction; f > 0 && f < 1 {
		take := max(int(f*float64(len(ids))+0.5), 1)
		picked := s.partRNG.SampleWithoutReplacement(len(ids), take)
		sort.Ints(picked)
		sampled := make([]int, take)
		for j, p := range picked {
			sampled[j] = ids[p]
		}
		ids = sampled
	}
	return ids, nil
}

// aggregate runs one server step over updates: snapshot w^t, apply the
// algorithm's aggregation rule, process expulsions, and report whether
// the model diverged (the paper's "×" outcome), which halts the run.
func (s *scheduler) aggregate(t int, updates []Update) (diverged bool) {
	copy(s.wPrev, s.params)
	server := &ServerCtx{
		Round:  t,
		W:      s.params,
		WPrev:  s.wPrev,
		Env:    s.env,
		Active: s.active,
	}
	s.alg.Aggregate(server, updates)
	for _, id := range server.expelled {
		if s.active[id] {
			s.active[id] = false
			s.expelled[id] = t
		}
	}
	if !vecmath.AllFinite(s.params) {
		s.run.Diverged = true
		s.run.DivergedRound = t
		return true
	}
	return false
}

// recordAccuracy fills rec.Accuracy per the evaluation cadence.
// Evaluation uses the algorithm's output model: Definition 2 calls z_t
// "the final model output after communication round t", and by Lemma 2
// the z sequence advances by the plain averaged mini-batch gradient
// (z^{t+1} = z^t − ηg·˜∆^t), cancelling the momentum in the w sequence.
// For every other algorithm FinalModel is w itself.
func (s *scheduler) recordAccuracy(t int, rec *metrics.Round) {
	if (t+1)%s.cfg.evalEvery() == 0 || t == s.cfg.Rounds-1 {
		rec.Accuracy = s.evalEng.Accuracy(s.alg.FinalModel(s.params), s.test.X, s.test.Y)
	} else if len(s.run.Rounds) > 0 {
		rec.Accuracy = s.run.Rounds[len(s.run.Rounds)-1].Accuracy
	}
}

// slowestHonest returns the largest measured wall time among non-
// freeloader participants (the paper measures the slowest client per
// round; freeloaders do no work).
func (s *scheduler) slowestHonest(ids []int, measured []float64) float64 {
	var slowest float64
	for j, id := range ids {
		if s.clients[id].freeloader {
			continue
		}
		if measured[j] > slowest {
			slowest = measured[j]
		}
	}
	return slowest
}

// runSync is the paper's lock-step loop: every participant trains, the
// server waits for all of them — including any wait for an off-window
// device to come back, which is where the synchronous policy pays for
// heterogeneity in modeled wall time. With a uniform fleet it reproduces
// the pre-scheduler engine bit-identically (golden-tested: for an
// always-available device finishRel collapses to Seconds(baseRound)
// exactly).
func (s *scheduler) runSync() error {
	now := 0.0
	for t := 0; t < s.cfg.Rounds; t++ {
		ids, err := s.participants(t)
		if err != nil {
			return err
		}
		updates := make([]Update, len(ids))
		measured := make([]float64, len(ids))
		runLocalRounds(s.cfg, s.alg, s.clients, ids, t, s.params, s.wPrev, updates, measured)

		// The synchronous server waits for the slowest honest device.
		var slowestModeled float64
		for _, id := range ids {
			if s.clients[id].freeloader {
				continue
			}
			if m := s.finishRel(id, now); m > slowestModeled {
				slowestModeled = m
			}
		}
		slowestMeasured := s.slowestHonest(ids, measured)

		if s.aggregate(t, updates) {
			break
		}
		rec := metrics.Round{
			Index:              t,
			TrainLoss:          meanLoss(updates),
			SlowestModeledSec:  slowestModeled,
			SlowestMeasuredSec: slowestMeasured,
			MeanAlpha:          s.alg.MeanAlpha(),
		}
		s.recordAccuracy(t, &rec)
		s.run.Append(rec)
		now += slowestModeled
	}
	return nil
}

// finishRel returns client id's modeled finish time relative to a round
// starting at now: wait for the device's next availability window, then
// compute. The wait is formed before adding the compute duration so an
// always-available device yields exactly finishDur (no now+dur−now
// round trip), which the sync golden test depends on.
func (s *scheduler) finishRel(id int, now float64) float64 {
	wait := s.env.Devices[id].Availability.NextAvailable(now) - now
	return wait + s.finishDur(id)
}

// runDeadline is round-based partial aggregation: participants whose
// modeled finish time exceeds the round deadline are dropped before any
// work is dispatched (the server will not wait, so the straggler's round
// is abandoned) and retry from the next round's fresh model. When every
// participant would miss the deadline the server admits the earliest
// finisher so the round always aggregates at least one update.
func (s *scheduler) runDeadline() error {
	now := 0.0
	for t := 0; t < s.cfg.Rounds; t++ {
		ids, err := s.participants(t)
		if err != nil {
			return err
		}
		include := make([]int, 0, len(ids))
		var roundDur float64
		dropped := 0
		earliest, earliestRel := -1, math.Inf(1)
		for _, id := range ids {
			rel := s.finishRel(id, now)
			if rel <= s.cfg.RoundDeadlineSec {
				include = append(include, id)
				if rel > roundDur {
					roundDur = rel
				}
			} else {
				dropped++
				if rel < earliestRel {
					earliest, earliestRel = id, rel
				}
			}
		}
		if len(include) == 0 {
			include = append(include, earliest)
			dropped--
			roundDur = earliestRel
		} else if dropped > 0 {
			// Stragglers were cut off, so the server waited out the full
			// deadline before closing the round.
			roundDur = s.cfg.RoundDeadlineSec
		}

		updates := make([]Update, len(include))
		measured := make([]float64, len(include))
		runLocalRounds(s.cfg, s.alg, s.clients, include, t, s.params, s.wPrev, updates, measured)

		if s.aggregate(t, updates) {
			break
		}
		rec := metrics.Round{
			Index:              t,
			TrainLoss:          meanLoss(updates),
			SlowestModeledSec:  roundDur,
			SlowestMeasuredSec: s.slowestHonest(include, measured),
			MeanAlpha:          s.alg.MeanAlpha(),
			DroppedClients:     dropped,
		}
		s.recordAccuracy(t, &rec)
		s.run.Append(rec)
		now += roundDur
	}
	return nil
}

// flight is one client's in-progress local round under the async policy:
// the update it will upload (already computed — see the scheduler doc
// comment), the server version it trained from, and its modeled
// completion time.
type flight struct {
	update   Update
	measured float64
	finish   float64
	version  int
}

// runAsync is FedBuff-style buffered asynchronous aggregation: every
// client trains continuously; the server steps once asyncBuffer updates
// have arrived, tagging each with its staleness (server versions elapsed
// since the client downloaded its base model). A client restarts from
// the then-current model immediately after uploading; the update that
// triggers a server step restarts after it, on the new model. Cfg.Rounds
// counts server steps.
func (s *scheduler) runAsync() error {
	bufK := s.cfg.asyncBuffer()
	pending := make([]*flight, len(s.clients))
	version := 0
	now, lastAgg := 0.0, 0.0

	dispatch := func(ids []int, at float64) {
		updates := make([]Update, len(ids))
		measured := make([]float64, len(ids))
		runLocalRounds(s.cfg, s.alg, s.clients, ids, version, s.params, s.wPrev, updates, measured)
		for j, id := range ids {
			u := updates[j]
			// The client's delta buffer is reused by its next dispatch,
			// so the buffered upload owns a copy.
			u.Delta = vecmath.Clone(u.Delta)
			pending[id] = &flight{
				update:   u,
				measured: measured[j],
				finish:   s.env.Devices[id].Availability.NextAvailable(at) + s.finishDur(id),
				version:  version,
			}
		}
	}

	ids, err := s.participants(0)
	if err != nil {
		return err
	}
	dispatch(ids, 0)

	buffer := make([]Update, 0, bufK)
	var bufMeasured float64
	for t := 0; t < s.cfg.Rounds; t++ {
		// Drain arrivals in virtual-time order (ties broken by client ID)
		// until the buffer triggers a server step.
		trigger := -1
		for len(buffer) < bufK {
			id := -1
			for i, f := range pending {
				if f != nil && (id == -1 || f.finish < pending[id].finish) {
					id = i
				}
			}
			if id == -1 {
				return fmt.Errorf("fl: no client updates in flight at async step %d (all clients expelled)", t)
			}
			f := pending[id]
			pending[id] = nil
			now = f.finish
			if !s.active[id] {
				continue // expelled while in flight: upload discarded
			}
			f.update.Staleness = version - f.version
			buffer = append(buffer, f.update)
			if f.measured > bufMeasured {
				bufMeasured = f.measured
			}
			if len(buffer) < bufK {
				dispatch([]int{id}, now)
			} else {
				trigger = id
			}
		}

		var staleSum, staleMax int
		for _, u := range buffer {
			staleSum += u.Staleness
			if u.Staleness > staleMax {
				staleMax = u.Staleness
			}
		}

		if s.aggregate(t, buffer) {
			break
		}
		version++
		if trigger >= 0 && s.active[trigger] {
			dispatch([]int{trigger}, now)
		}
		rec := metrics.Round{
			Index:              t,
			TrainLoss:          meanLoss(buffer),
			SlowestModeledSec:  now - lastAgg,
			SlowestMeasuredSec: bufMeasured,
			MeanAlpha:          s.alg.MeanAlpha(),
			MeanStaleness:      float64(staleSum) / float64(len(buffer)),
			MaxStaleness:       staleMax,
		}
		s.recordAccuracy(t, &rec)
		s.run.Append(rec)
		lastAgg = now
		buffer = buffer[:0]
		bufMeasured = 0
	}
	return nil
}

// finishDur returns client id's modeled compute duration. Freeloaders
// claim the same duration as honest work: they masquerade as honest
// clients (Section IV-A), so their uploads arrive on an honest-looking
// schedule — replying instantly would both unmask them and let them
// flood the async buffer at a frozen virtual clock. (Their real measured
// time stays near zero, and the sync policy's slowest-client metrics
// exclude them as before.)
func (s *scheduler) finishDur(id int) float64 {
	return s.env.Devices[id].Seconds(s.baseRound)
}
