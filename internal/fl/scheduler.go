package fl

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/vecmath"
)

// scheduler is the event-driven round engine behind Run. One instance
// drives one training run under one aggregation policy; its virtual clock
// is modeled (simclock) time, so every scheduling decision — straggler
// drops, arrival order, staleness — is a pure function of the config and
// therefore bit-reproducible at any parallelism level.
//
// Local computation is executed when a client is *dispatched*, not when
// its modeled finish event fires: the algorithm state a client reads
// (correction vectors, control variates) is exactly the state at its
// dispatch version, which is what makes stale-correction dynamics
// faithful without racing the server's aggregation step. Per-client
// algorithm state written by EndLocal therefore reflects the client's
// latest dispatched round, which under the async policy may be ahead of
// an update still waiting in the server buffer.
//
// Steady-state rounds are allocation-free: the per-round ids/updates/
// measured slices, the aggregation context, the async flight table, and
// the upload deltas (slot-pool ring, pool.go) are all owned by the
// scheduler and reused round over round (pinned by TestSteadyStateAllocs).
type scheduler struct {
	cfg     Config
	alg     Algorithm
	clients []*client
	env     *Env
	pool    *slotPool
	// exec runs dispatched local rounds: the slot pool itself for an
	// in-process run, the remote executor for a wire run (serve.go). Every
	// scheduling path goes through it; s.pool remains for the ring-and-
	// compressor state that both executors share (and for checkpointing,
	// which the wire path rejects).
	exec     executor
	params   []float64
	wPrev    []float64
	active   []bool
	expelled map[int]int
	run      *metrics.Run
	evalEng  *nn.Engine
	test     *dataset.Dataset
	// baseRound is the nominal-device modeled duration of one local round
	// (K steps with the algorithm's cost profile); per-client durations
	// scale it by the device's speed factor.
	baseRound float64
	partRNG   *rng.RNG

	// Reusable per-round state (capacity n, sliced per round).
	ids      []int
	include  []int
	updates  []Update
	measured []float64
	server   ServerCtx
	oneID    [1]int
	// now is the virtual clock (modeled seconds since the run started).
	now float64

	// stack is the aggregation-stack wrapper when the config declares one
	// (nil otherwise); the round records read its per-round zeroed/
	// clipped statistics through it.
	stack *stackedAlg

	// Adversary bookkeeping (adversary.go): anyAdv flags a run with at
	// least one corrupt client; cumWeights accumulates each client's
	// reported aggregation weight; lastHonestW/lastCorruptW hold the
	// round's honest-vs-corrupt weight-mass split for the metric record.
	anyAdv       bool
	cumWeights   []float64
	lastHonestW  float64
	lastCorruptW float64

	// Async-policy state (setupAsync/asyncStep).
	pending     []flight
	buffer      []Update
	version     int
	lastAgg     float64
	bufMeasured float64

	// Fault-injection and recovery state (fault.go, checkpoint.go). plan
	// is nil for zero-fault configs, which keeps every fault branch off
	// the golden-pinned path. dupFlags marks delivered-twice updates per
	// include position; attempts tracks async per-client consecutive
	// failed dispatch attempts. All are sized at setup so fault-enabled
	// steady-state rounds still allocate nothing.
	plan     *faultPlan
	dupFlags []bool
	attempts []int
	// Async per-step fault counters, flushed into each round record.
	stepRetries  int
	stepDropped  int
	stepDups     int
	stepDupBytes int64
	failStreak   int

	// Checkpoint/restore state: startRound is the first round to execute
	// (non-zero after a restore); ckptBuf is the reusable encode scratch
	// and lastCkpt the retained copy of the newest checkpoint.
	// serverCrashed latches the one-shot servercrash fault; recovered and
	// rollbacks count replayed rounds and divergence rollbacks — they
	// live outside the checkpointed state so restores cannot erase them.
	startRound    int
	serverCrashed bool
	recovered     int
	rollbacks     int
	ckptBuf       bytes.Buffer
	lastCkpt      []byte
	lastCkptRound int

	// interrupt, when non-nil, requests a graceful pause: the round loop
	// checks it at every round boundary and stops with a final checkpoint
	// instead of running to Rounds (ServeOptions.Interrupt).
	interrupt <-chan struct{}
}

// participants collects the round's participating clients in ID order
// into the scheduler's reusable ids buffer, applying the partial-
// participation sampler, and errors when every client has been expelled.
func (s *scheduler) participants(t int) ([]int, error) {
	ids := s.ids[:0]
	for i := range s.clients {
		if s.active[i] {
			ids = append(ids, i)
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("fl: all clients expelled by round %d", t)
	}
	if f := s.cfg.ParticipationFraction; f > 0 && f < 1 {
		take := max(int(f*float64(len(ids))+0.5), 1)
		picked := s.partRNG.SampleWithoutReplacement(len(ids), take)
		sort.Ints(picked)
		for j, p := range picked {
			// picked is sorted ascending, so ids[p] is never overwritten
			// before it is read: in-place compaction is safe.
			ids[j] = ids[p]
		}
		ids = ids[:take]
	}
	s.ids = ids[:0]
	return ids, nil
}

// aggregate runs one server step over updates: snapshot w^t, apply the
// algorithm's aggregation rule, process expulsions, and report whether
// the model diverged (the paper's "×" outcome), which halts the run.
func (s *scheduler) aggregate(t int, updates []Update) (diverged bool) {
	copy(s.wPrev, s.params)
	s.server.Round = t
	s.server.W = s.params
	s.server.WPrev = s.wPrev
	s.server.expelled = s.server.expelled[:0]
	s.server.reported = s.server.reported[:0]
	s.alg.Aggregate(&s.server, updates)
	s.recordWeightMass(updates)
	for _, id := range s.server.expelled {
		if s.active[id] {
			s.active[id] = false
			s.expelled[id] = t
		}
	}
	if !vecmath.AllFinite(s.params) {
		s.run.Diverged = true
		s.run.DivergedRound = t
		return true
	}
	return false
}

// recordWeightMass splits the round's reported aggregation weights into
// honest and corrupt mass and folds them into the per-client cumulative
// weights — the data behind the defense metrics (how much influence the
// rule actually granted attackers). Skipped entirely for adversary-free
// runs (the golden sync trace stays byte-identical) and when the
// aggregation rule reported nothing for this update set.
func (s *scheduler) recordWeightMass(updates []Update) {
	s.lastHonestW, s.lastCorruptW = 0, 0
	if !s.anyAdv || len(s.server.reported) != len(updates) {
		return
	}
	for i, u := range updates {
		w := s.server.reported[i]
		if u.Corrupt {
			s.lastCorruptW += w
		} else {
			s.lastHonestW += w
		}
		s.cumWeights[u.Client] += w
	}
}

// stackStats returns the last aggregation's stage statistics (all zero
// without a stack).
func (s *scheduler) stackStats() (zeroed, clipped int, clipNorm float64) {
	if s.stack == nil {
		return 0, 0, 0
	}
	return s.stack.stackStats()
}

// clearStackStats resets the stage statistics for rounds that never
// aggregated (alongside the honest/corrupt weight reset).
func (s *scheduler) clearStackStats() {
	if s.stack != nil {
		s.stack.clearStackStats()
	}
}

// releaseDeltas returns the round's upload buffers (dense deltas and
// encoded payloads) to the slot-pool ring once the server has consumed
// them.
func (s *scheduler) releaseDeltas(updates []Update) {
	for i := range updates {
		s.exec.release(&updates[i])
	}
}

// uplink totals the round's client→server traffic: the encoded payload
// sizes when a codec is live, the dense 8d cost otherwise. ratio is
// dense-over-encoded — the round's compression factor, 1 for dense
// transport.
func (s *scheduler) uplink(updates []Update) (bytes int64, ratio float64) {
	dense := 8 * int64(len(s.params))
	var enc int64
	for i := range updates {
		if p := updates[i].Payload; p != nil {
			enc += int64(p.Bytes())
		} else {
			enc += dense
		}
	}
	if enc == 0 {
		return 0, 0
	}
	return enc, float64(dense*int64(len(updates))) / float64(enc)
}

// recordAccuracy fills rec.Accuracy per the evaluation cadence.
// Evaluation uses the algorithm's output model: Definition 2 calls z_t
// "the final model output after communication round t", and by Lemma 2
// the z sequence advances by the plain averaged mini-batch gradient
// (z^{t+1} = z^t − ηg·˜∆^t), cancelling the momentum in the w sequence.
// For every other algorithm FinalModel is w itself.
func (s *scheduler) recordAccuracy(t int, rec *metrics.Round) {
	if (t+1)%s.cfg.evalEvery() == 0 || t == s.cfg.Rounds-1 {
		rec.Accuracy = s.evalEng.Accuracy(s.alg.FinalModel(s.params), s.test.X, s.test.Y)
	} else if len(s.run.Rounds) > 0 {
		rec.Accuracy = s.run.Rounds[len(s.run.Rounds)-1].Accuracy
	}
}

// slowestHonest returns the largest measured wall time among training
// participants (the paper measures the slowest client per round;
// fabricating adversaries — freeloaders, sybils — do no work). at is the
// round's dispatch time, which decides whether a windowed fabricator was
// live.
func (s *scheduler) slowestHonest(ids []int, measured []float64, at float64) float64 {
	var slowest float64
	for j, id := range ids {
		if s.clients[id].fabricatorAt(at) != nil {
			continue
		}
		if measured[j] > slowest {
			slowest = measured[j]
		}
	}
	return slowest
}

// runSync is the paper's lock-step loop: every participant trains, the
// server waits for all of them — including any wait for an off-window
// device to come back, which is where the synchronous policy pays for
// heterogeneity in modeled wall time. With a uniform fleet it reproduces
// the pre-scheduler engine bit-identically (golden-tested: for an
// always-available device finishRel collapses to Seconds(baseRound)
// exactly).
func (s *scheduler) runSync() error { return s.runRounds(s.syncRound) }

// runAll drives the configured policy's round loop. resumed marks a run
// restored from a checkpoint, whose async in-flight state was rebuilt by
// restore instead of setupAsync's initial dispatch wave.
func (s *scheduler) runAll(resumed bool) error {
	if s.cfg.Policy == PolicyAsync && !resumed {
		if err := s.setupAsync(); err != nil {
			return err
		}
	}
	switch s.cfg.Policy {
	case PolicyDeadline:
		return s.runRounds(s.deadlineRound)
	case PolicyAsync:
		return s.runRounds(s.asyncStep)
	default:
		return s.runRounds(s.syncRound)
	}
}

// wantCheckpoints reports whether the run snapshots state: periodically
// when CheckpointEvery is set, and at minimum once at the start when a
// servercrash fault needs something to restart from.
func (s *scheduler) wantCheckpoints() bool {
	return s.cfg.CheckpointEvery > 0 || (s.plan != nil && s.plan.crashRound >= 0)
}

// runRounds is the policy-independent round loop with the recovery
// machinery around one policy's step function: an initial checkpoint
// when checkpointing is armed, periodic checkpoints every CheckpointEvery
// rounds, the one-shot simulated server crash (restore the last
// checkpoint with its rng cursors and replay bit-identically), and the
// divergence guard (roll back to the last checkpoint keeping the live
// cursors — so the replay draws fresh batches — instead of halting,
// up to maxRollbacks times).
func (s *scheduler) runRounds(step func(int) (bool, error)) error {
	if s.wantCheckpoints() && s.lastCkpt == nil {
		if err := s.snapshot(s.startRound); err != nil {
			return err
		}
	}
	for t := s.startRound; t < s.cfg.Rounds; {
		if s.interrupt != nil {
			select {
			case <-s.interrupt:
				return s.pause(t)
			default:
			}
		}
		if s.plan != nil && s.plan.crashRound == t && !s.serverCrashed {
			s.serverCrashed = true
			restored, err := s.restoreLast(true)
			if err != nil {
				return err
			}
			if rx, ok := s.exec.(*remoteExec); ok {
				// The restarted server re-dispatches from the restored
				// round; workers must be rewound to match (reset plus
				// full history replay, serve.go).
				if err := rx.resyncWorkers(); err != nil {
					return err
				}
			}
			s.recovered += t - restored
			t = restored
			continue
		}
		halt, err := step(t)
		if err != nil {
			return err
		}
		if halt {
			if s.lastCkpt != nil && s.rollbacks < maxRollbacks && s.canRollback() {
				restored, err := s.restoreLast(false)
				if err != nil {
					return err
				}
				s.rollbacks++
				s.run.Diverged = false
				s.run.DivergedRound = 0
				t = restored
				continue
			}
			s.run.HaltRound = t
			s.run.HaltReason = "diverged: non-finite parameters"
			break
		}
		t++
		if s.cfg.CheckpointEvery > 0 && t < s.cfg.Rounds && t%s.cfg.CheckpointEvery == 0 {
			if err := s.snapshot(t); err != nil {
				return err
			}
		}
	}
	s.run.RecoveredRounds = s.recovered
	s.run.Rollbacks = s.rollbacks
	return nil
}

// pause ends the run early at a round boundary after an interrupt
// (SIGINT on cmd/flserver): take a final checkpoint when checkpointing
// is armed — the blob ServeResume restarts from — mark the result, and
// flag the executor so its Bye tells workers the server is pausing, not
// done (they surface ErrServerPaused and re-attach to the restarted
// server).
func (s *scheduler) pause(t int) error {
	if s.wantCheckpoints() && t != s.lastCkptRound {
		if err := s.snapshot(t); err != nil {
			return err
		}
	}
	s.run.HaltRound = t
	s.run.HaltReason = "interrupted"
	s.run.RecoveredRounds = s.recovered
	s.run.Rollbacks = s.rollbacks
	if rx, ok := s.exec.(*remoteExec); ok {
		rx.setPausing()
	}
	return nil
}

// canRollback reports whether the divergence rollback (restore keeping
// live rng cursors so the replay draws fresh batches) is available. The
// wire path cannot use it: worker rng streams live in other processes
// and the rollback deliberately does NOT rewind cursors, so there is no
// consistent worker state to rebuild — a diverged wire run halts with
// its checkpoint on disk instead.
func (s *scheduler) canRollback() bool {
	_, remote := s.exec.(*remoteExec)
	return !remote
}

// drainRecoveryInto folds the executor's failover counters since the
// last round into the round record (always zero for in-process runs).
func (s *scheduler) drainRecoveryInto(rec *metrics.Round) {
	if rx, ok := s.exec.(*remoteExec); ok {
		rec.ReassignedDispatches, rec.WorkerReconnects = rx.drainRecovery()
	}
}

// compactLost drops updates whose worker connection was lost with
// failover exhausted (serve.go marks their ring entries lost): the
// entries are released and the kept updates left-compacted in place
// alongside their ids, measured times, and dup flags. The survivors'
// order is unchanged, so the aggregation stays deterministic given
// which workers were lost.
func (s *scheduler) compactLost(include []int, updates []Update, measured []float64, dup []bool) (kept, lost int) {
	for j := range updates {
		if updates[j].ring != nil && updates[j].ring.lost {
			s.exec.release(&updates[j])
			lost++
			continue
		}
		if lost > 0 {
			include[kept] = include[j]
			updates[kept] = updates[j]
			measured[kept] = measured[j]
			if dup != nil {
				dup[kept] = dup[j]
			}
		}
		kept++
	}
	return kept, lost
}

// syncRound executes one synchronous round; halt reports divergence.
// Under a fault plan, each participant's dispatch is resolved first
// (crash/drop/slow/dup draws plus retry chains, in client-id order from
// the scheduler goroutine); only the delivering clients train, and the
// server's wait covers the losers' full timeout chains.
func (s *scheduler) syncRound(t int) (halt bool, err error) {
	ids, err := s.participants(t)
	if err != nil {
		return false, err
	}
	faulty := s.plan != nil && s.plan.anyDispatch
	include := ids
	var (
		slowestModeled                        float64
		dup                                   []bool
		roundRetries, roundDropped, roundDups int
		degraded                              bool
	)
	if faulty {
		include = s.include[:0]
		dup = s.dupFlags[:0]
		for _, id := range ids {
			out := s.resolveDispatch(id, s.now)
			roundRetries += out.retries
			if s.clients[id].fabricatorAt(s.now) == nil && out.rel > slowestModeled {
				slowestModeled = out.rel
			}
			if !out.delivered {
				roundDropped++
				continue
			}
			include = append(include, id)
			dup = append(dup, out.dup)
			if out.dup {
				roundDups++
			}
		}
		s.include = include[:0]
		s.dupFlags = dup[:0]
		degraded = s.degraded(len(include), len(ids))
	}

	updates := s.updates[:len(include)]
	measured := s.measured[:len(include)]
	if len(include) > 0 {
		if err := s.exec.runRound(&s.cfg, s.alg, s.clients, include, t, s.now, s.params, s.wPrev, updates, measured); err != nil {
			return false, err
		}
		if err := s.exec.settle(updates, measured); err != nil {
			return false, err
		}
		if kept, lost := s.compactLost(include, updates, measured, dup); lost > 0 {
			include = include[:kept]
			updates = updates[:kept]
			measured = measured[:kept]
			if dup != nil {
				dup = dup[:kept]
			}
			roundDropped += lost
			degraded = s.degraded(len(include), len(ids))
		}
	}

	if !faulty {
		// The synchronous server waits for the slowest honest device.
		for _, id := range ids {
			if s.clients[id].fabricatorAt(s.now) != nil {
				continue
			}
			if m := s.finishRel(id, s.now); m > slowestModeled {
				slowestModeled = m
			}
		}
	}
	slowestMeasured := s.slowestHonest(include, measured, s.now)

	if len(include) > 0 {
		halt = s.aggregate(t, updates)
	} else {
		// Every update was lost: the model does not move this round.
		s.lastHonestW, s.lastCorruptW = 0, 0
		s.clearStackStats()
	}
	trainLoss := meanLoss(updates)
	upBytes, upRatio := s.uplink(updates)
	if roundDups > 0 {
		upBytes += s.dupBytes(updates, dup)
	}
	s.releaseDeltas(updates)
	if halt {
		return true, nil
	}
	zeroed, clipped, clipNorm := s.stackStats()
	rec := metrics.Round{
		Index:              t,
		TrainLoss:          trainLoss,
		SlowestModeledSec:  slowestModeled,
		SlowestMeasuredSec: slowestMeasured,
		MeanAlpha:          s.alg.MeanAlpha(),
		HonestWeight:       s.lastHonestW,
		CorruptWeight:      s.lastCorruptW,
		Retries:            roundRetries,
		DroppedUpdates:     roundDropped,
		DupUpdates:         roundDups,
		Degraded:           degraded,
		ZeroedUpdates:      zeroed,
		ClippedUpdates:     clipped,
		ClipNorm:           clipNorm,
		UplinkBytes:        upBytes,
		CompressionRatio:   upRatio,
	}
	s.drainRecoveryInto(&rec)
	s.recordAccuracy(t, &rec)
	s.run.Append(rec)
	s.now += slowestModeled
	return false, nil
}

// finishRel returns client id's modeled finish time relative to a round
// starting at now: wait for the device's next availability window, then
// compute. The wait is formed before adding the compute duration so an
// always-available device yields exactly finishDur (no now+dur−now
// round trip), which the sync golden test depends on.
func (s *scheduler) finishRel(id int, now float64) float64 {
	wait := s.env.Devices[id].Availability.NextAvailable(now) - now
	return wait + s.finishDur(id)
}

// runDeadline is round-based partial aggregation: participants whose
// modeled finish time exceeds the round deadline are dropped before any
// work is dispatched (the server will not wait, so the straggler's round
// is abandoned) and retry from the next round's fresh model. When every
// participant would miss the deadline the server admits the earliest
// finisher so the round always aggregates at least one update.
func (s *scheduler) runDeadline() error { return s.runRounds(s.deadlineRound) }

// deadlineRound executes one deadline round; halt reports divergence.
// Under a fault plan each dispatch is fault-resolved first; a dispatch
// whose retry budget is exhausted counts as a dropped *update* (the
// client never delivered), while a delivered update past the deadline
// counts as a dropped *client* (the classic straggler cut).
func (s *scheduler) deadlineRound(t int) (halt bool, err error) {
	ids, err := s.participants(t)
	if err != nil {
		return false, err
	}
	faulty := s.plan != nil && s.plan.anyDispatch
	include := s.include[:0]
	var dup []bool
	if faulty {
		dup = s.dupFlags[:0]
	}
	var roundDur float64
	dropped := 0
	var roundRetries, roundDropped, roundDups int
	earliest, earliestRel := -1, math.Inf(1)
	earliestDup := false
	for _, id := range ids {
		var rel float64
		isDup := false
		if faulty {
			out := s.resolveDispatch(id, s.now)
			roundRetries += out.retries
			if !out.delivered {
				roundDropped++
				continue
			}
			rel, isDup = out.rel, out.dup
		} else {
			rel = s.finishRel(id, s.now)
		}
		if rel <= s.cfg.RoundDeadlineSec {
			include = append(include, id)
			if faulty {
				dup = append(dup, isDup)
				if isDup {
					roundDups++
				}
			}
			if rel > roundDur {
				roundDur = rel
			}
		} else {
			dropped++
			if rel < earliestRel {
				earliest, earliestRel, earliestDup = id, rel, isDup
			}
		}
	}
	if len(include) == 0 && earliest >= 0 {
		include = append(include, earliest)
		if faulty {
			dup = append(dup, earliestDup)
			if earliestDup {
				roundDups++
			}
		}
		dropped--
		roundDur = earliestRel
	} else if dropped > 0 || (faulty && len(include) == 0) {
		// Stragglers were cut off (or every update was lost), so the
		// server waited out the full deadline before closing the round.
		roundDur = s.cfg.RoundDeadlineSec
	}
	s.include = include[:0]
	if faulty {
		s.dupFlags = dup[:0]
	}

	updates := s.updates[:len(include)]
	measured := s.measured[:len(include)]
	lostN := 0
	if len(include) > 0 {
		if err := s.exec.runRound(&s.cfg, s.alg, s.clients, include, t, s.now, s.params, s.wPrev, updates, measured); err != nil {
			return false, err
		}
		if err := s.exec.settle(updates, measured); err != nil {
			return false, err
		}
		var kept int
		kept, lostN = s.compactLost(include, updates, measured, dup)
		if lostN > 0 {
			include = include[:kept]
			updates = updates[:kept]
			measured = measured[:kept]
			if dup != nil {
				dup = dup[:kept]
			}
			roundDropped += lostN
		}
	}
	if len(include) > 0 {
		halt = s.aggregate(t, updates)
	} else {
		s.lastHonestW, s.lastCorruptW = 0, 0
		s.clearStackStats()
	}
	trainLoss := meanLoss(updates)
	slowestMeasured := s.slowestHonest(include, measured, s.now)
	upBytes, upRatio := s.uplink(updates)
	if roundDups > 0 {
		upBytes += s.dupBytes(updates, dup)
	}
	s.releaseDeltas(updates)
	if halt {
		return true, nil
	}
	zeroed, clipped, clipNorm := s.stackStats()
	rec := metrics.Round{
		Index:              t,
		TrainLoss:          trainLoss,
		SlowestModeledSec:  roundDur,
		SlowestMeasuredSec: slowestMeasured,
		MeanAlpha:          s.alg.MeanAlpha(),
		HonestWeight:       s.lastHonestW,
		CorruptWeight:      s.lastCorruptW,
		DroppedClients:     dropped,
		Retries:            roundRetries,
		DroppedUpdates:     roundDropped,
		DupUpdates:         roundDups,
		Degraded:           (faulty || lostN > 0) && s.degraded(len(include), len(ids)),
		ZeroedUpdates:      zeroed,
		ClippedUpdates:     clipped,
		ClipNorm:           clipNorm,
		UplinkBytes:        upBytes,
		CompressionRatio:   upRatio,
	}
	s.drainRecoveryInto(&rec)
	s.recordAccuracy(t, &rec)
	s.run.Append(rec)
	s.now += roundDur
	return false, nil
}

// flight is one client's in-progress local round under the async policy:
// the update it will upload (already computed — see the scheduler doc
// comment), the server version it trained from, and its modeled
// completion time. Flights live in the scheduler's fixed pending table;
// live distinguishes in-flight entries from consumed ones.
type flight struct {
	update   Update
	measured float64
	finish   float64
	version  int
	live     bool
	// Fault state (fault.go): failed marks a crashed/lost/timed-out
	// dispatch — finish is then the server's timeout expiry, the computed
	// update is discarded (ring entry returned) and the client retried or
	// rejoined; dup marks a delivery the uplink duplicated; attempt is
	// the dispatch's 0-based position in its retry chain.
	failed  bool
	dup     bool
	attempt int
}

// dispatch starts a local round for the given clients at virtual time at:
// the update is computed now (execute-at-dispatch semantics) and parked
// in the pending table until its modeled finish event fires. The upload
// delta is a ring buffer owned by the flight until the server consumes or
// discards it. Under remote execution the update's results are still in
// flight when dispatch returns — asyncStep settles each flight before
// reading it — which is what overlaps worker compute with the server's
// aggregation and evaluation of earlier rounds.
func (s *scheduler) dispatch(ids []int, at float64) error {
	updates := s.updates[:len(ids)]
	measured := s.measured[:len(ids)]
	if err := s.exec.runRound(&s.cfg, s.alg, s.clients, ids, s.version, at, s.params, s.wPrev, updates, measured); err != nil {
		return err
	}
	for j, id := range ids {
		f := flight{
			update:   updates[j],
			measured: measured[j],
			finish:   s.env.Devices[id].Availability.NextAvailable(at) + s.finishDur(id),
			version:  s.version,
			live:     true,
		}
		if s.plan != nil && s.plan.anyDispatch {
			out := s.resolveAsyncDispatch(id, at)
			f.finish = out.finish
			f.failed = out.failed
			f.dup = out.dup
			f.attempt = s.attempts[id]
		}
		s.pending[id] = f
	}
	return nil
}

// setupAsync initializes the async state and dispatches the first wave.
func (s *scheduler) setupAsync() error {
	s.pending = make([]flight, len(s.clients))
	s.buffer = make([]Update, 0, s.cfg.asyncBuffer())
	ids, err := s.participants(0)
	if err != nil {
		return err
	}
	return s.dispatch(ids, 0)
}

// runAsync is FedBuff-style buffered asynchronous aggregation: every
// client trains continuously; the server steps once asyncBuffer updates
// have arrived, tagging each with its staleness (server versions elapsed
// since the client downloaded its base model). A client restarts from
// the then-current model immediately after uploading; the update that
// triggers a server step restarts after it, on the new model. Cfg.Rounds
// counts server steps.
func (s *scheduler) runAsync() error {
	if err := s.setupAsync(); err != nil {
		return err
	}
	return s.runRounds(s.asyncStep)
}

// asyncStep drains arrivals in virtual-time order (ties broken by client
// ID) until the buffer triggers one server step; halt reports divergence.
func (s *scheduler) asyncStep(t int) (halt bool, err error) {
	bufK := s.cfg.asyncBuffer()
	trigger := -1
	for len(s.buffer) < bufK {
		id := -1
		for i := range s.pending {
			if s.pending[i].live && (id == -1 || s.pending[i].finish < s.pending[id].finish) {
				id = i
			}
		}
		if id == -1 {
			return false, fmt.Errorf("fl: no client updates in flight at async step %d (all clients expelled)", t)
		}
		f := &s.pending[id]
		f.live = false
		s.now = f.finish
		// Remote execution defers results past dispatch: block here, at the
		// modeled finish event, until this flight's reply has landed (no-op
		// in process). Discarded flights settle too — their ring entries
		// must not be recycled while an in-flight reply could still write
		// into them.
		if err := s.exec.settleOne(&f.update, &f.measured); err != nil {
			return false, err
		}
		if f.update.ring != nil && f.update.ring.lost {
			// A worker died with this dispatch in flight and nobody could
			// adopt it. The async pipeline cannot drop it (the buffer
			// trigger accounting would diverge from the modeled clock), so
			// this is fatal — sync and deadline runs degrade instead.
			s.exec.release(&f.update)
			return false, fmt.Errorf("fl: worker lost with client %d in flight (the async policy cannot drop in-flight updates; use sync or deadline for degraded operation)", id)
		}
		if !s.active[id] {
			// Expelled while in flight: upload discarded, ring entry recycled.
			s.exec.release(&f.update)
			continue
		}
		if f.failed {
			// Crash, uplink loss, or timeout: the computed update never
			// arrives — the delta-ring entry returns to the pool and the
			// client is re-dispatched after its deterministic backoff
			// (recomputing against the then-current model), or rejoins
			// fresh once its retry budget is exhausted.
			s.exec.release(&f.update)
			s.failStreak++
			if s.failStreak > (s.plan.retries+2)*max(64, 8*len(s.clients)) {
				return false, fmt.Errorf("fl: faults starved the async buffer at step %d (%d consecutive failed dispatches)", t, s.failStreak)
			}
			attempt := f.attempt
			s.oneID[0] = id
			if attempt < s.plan.retries {
				s.attempts[id] = attempt + 1
				s.stepRetries++
				err = s.dispatch(s.oneID[:1], s.now+s.plan.backoff(attempt, s.plan.perClient[id].r))
			} else {
				s.attempts[id] = 0
				s.stepDropped++
				err = s.dispatch(s.oneID[:1], s.now)
			}
			if err != nil {
				return false, err
			}
			continue
		}
		s.failStreak = 0
		if s.attempts != nil {
			s.attempts[id] = 0
		}
		if f.dup {
			// Duplicated delivery: the server is idempotent — count it,
			// charge its bytes, aggregate the update once.
			s.stepDups++
			s.stepDupBytes += s.payloadBytes(&f.update)
		}
		f.update.Staleness = s.version - f.version
		s.buffer = append(s.buffer, f.update)
		if f.measured > s.bufMeasured {
			s.bufMeasured = f.measured
		}
		if len(s.buffer) < bufK {
			s.oneID[0] = id
			if err := s.dispatch(s.oneID[:1], s.now); err != nil {
				return false, err
			}
		} else {
			trigger = id
		}
	}

	var staleSum, staleMax int
	for _, u := range s.buffer {
		staleSum += u.Staleness
		if u.Staleness > staleMax {
			staleMax = u.Staleness
		}
	}

	halt = s.aggregate(t, s.buffer)
	trainLoss := meanLoss(s.buffer)
	upBytes, upRatio := s.uplink(s.buffer)
	s.releaseDeltas(s.buffer)
	if halt {
		return true, nil
	}
	s.version++
	if trigger >= 0 && s.active[trigger] {
		s.oneID[0] = trigger
		if err := s.dispatch(s.oneID[:1], s.now); err != nil {
			return false, err
		}
	}
	zeroed, clipped, clipNorm := s.stackStats()
	rec := metrics.Round{
		Index:              t,
		TrainLoss:          trainLoss,
		SlowestModeledSec:  s.now - s.lastAgg,
		SlowestMeasuredSec: s.bufMeasured,
		MeanAlpha:          s.alg.MeanAlpha(),
		HonestWeight:       s.lastHonestW,
		CorruptWeight:      s.lastCorruptW,
		MeanStaleness:      float64(staleSum) / float64(len(s.buffer)),
		MaxStaleness:       staleMax,
		Retries:            s.stepRetries,
		DroppedUpdates:     s.stepDropped,
		DupUpdates:         s.stepDups,
		ZeroedUpdates:      zeroed,
		ClippedUpdates:     clipped,
		ClipNorm:           clipNorm,
		UplinkBytes:        upBytes + s.stepDupBytes,
		CompressionRatio:   upRatio,
	}
	s.drainRecoveryInto(&rec)
	s.recordAccuracy(t, &rec)
	s.run.Append(rec)
	s.lastAgg = s.now
	s.buffer = s.buffer[:0]
	s.bufMeasured = 0
	s.stepRetries, s.stepDropped, s.stepDups, s.stepDupBytes = 0, 0, 0, 0
	return false, nil
}

// finishDur returns client id's modeled compute duration. Freeloaders
// claim the same duration as honest work: they masquerade as honest
// clients (Section IV-A), so their uploads arrive on an honest-looking
// schedule — replying instantly would both unmask them and let them
// flood the async buffer at a frozen virtual clock. (Their real measured
// time stays near zero, and the sync policy's slowest-client metrics
// exclude them as before.)
func (s *scheduler) finishDur(id int) float64 {
	return s.env.Devices[id].Seconds(s.baseRound)
}
