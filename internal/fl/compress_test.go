package fl

import (
	"math"
	"testing"

	"repro/internal/compress"
)

// compressConfig is the shared engine config of the codec tests.
func compressConfig(seed uint64) Config {
	return Config{
		Rounds:     4,
		LocalSteps: 3,
		BatchSize:  8,
		LocalLR:    0.05,
		Seed:       seed,
	}
}

// TestCodecNoneGoldenIdentity pins the empty-codec contract: an explicit
// dense-transport spec must reproduce a config without the field
// bit-identically — the compression subsystem derives no streams and
// touches no buffers unless a lossy codec is selected.
func TestCodecNoneGoldenIdentity(t *testing.T) {
	net, shards, test := poolSetup(t, 8)
	base := compressConfig(7)
	withSpec := base
	withSpec.Compress = compress.Spec{Kind: compress.KindNone}
	resA, err := Run(base, goldenFedAvg{}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Run(withSpec, goldenFedAvg{}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if ha, hb := paramsHash(resA.FinalParams), paramsHash(resB.FinalParams); ha != hb {
		t.Fatalf("explicit KindNone diverged from the zero config: %016x vs %016x", ha, hb)
	}
	// Dense transport reports the uncompressed wire cost.
	for _, rec := range resB.Run.Rounds {
		if rec.CompressionRatio != 1 {
			t.Fatalf("dense round %d has ratio %v, want 1", rec.Index, rec.CompressionRatio)
		}
		if want := int64(8 * net.NumParams() * len(shards)); rec.UplinkBytes != want {
			t.Fatalf("dense round %d uplink %d B, want %d", rec.Index, rec.UplinkBytes, want)
		}
	}
}

// TestCompressionBitIdentity is the P=1-vs-P=8 determinism regression
// for the lossy codecs: top-k selection is deterministic and the int8
// stochastic roundings draw from per-client streams, so the slot-to-
// client assignment must be invisible in the results.
func TestCompressionBitIdentity(t *testing.T) {
	net, shards, test := poolSetup(t, 8)
	specs := []compress.Spec{
		{Kind: compress.KindTopK, TopKFrac: 0.05},
		{Kind: compress.KindInt8, Chunk: 512},
	}
	for _, spec := range specs {
		for _, seed := range []uint64{3, 41} {
			cfgA := compressConfig(seed)
			cfgA.Compress = spec
			cfgA.Parallelism = 1
			cfgB := cfgA
			cfgB.Parallelism = 8
			resA, err := Run(cfgA, goldenFedAvg{}, net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			resB, err := Run(cfgB, goldenFedAvg{}, net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			if ha, hb := paramsHash(resA.FinalParams), paramsHash(resB.FinalParams); ha != hb {
				t.Fatalf("%v seed %d: FinalParams differ across parallelism: %016x vs %016x", spec, seed, ha, hb)
			}
		}
	}
}

// TestCompressionUplinkAccounting checks the wire metrics end to end: a
// 1% top-k round must shrink uplink bytes by roughly the sparsification
// factor (12 bytes per kept coordinate vs 8 per dense one), and int8
// must land near 8x.
func TestCompressionUplinkAccounting(t *testing.T) {
	net, shards, test := poolSetup(t, 8)
	d := net.NumParams()
	cases := []struct {
		spec      compress.Spec
		wantRatio float64
	}{
		{compress.Spec{Kind: compress.KindTopK, TopKFrac: 0.01}, 8.0 / (12 * 0.01)},
		{compress.Spec{Kind: compress.KindInt8, Chunk: 1024}, 8},
	}
	for _, tc := range cases {
		cfg := compressConfig(5)
		cfg.Compress = tc.spec
		res, err := Run(cfg, goldenFedAvg{}, net, shards, test)
		if err != nil {
			t.Fatal(err)
		}
		ratio := res.Run.Rounds[0].CompressionRatio
		if math.Abs(ratio-tc.wantRatio)/tc.wantRatio > 0.2 {
			t.Fatalf("%v: round ratio %.1f, want ≈%.1f", tc.spec, ratio, tc.wantRatio)
		}
		if got := res.Run.TotalUplinkBytes(); got <= 0 || got >= int64(cfg.Rounds*len(shards)*8*d) {
			t.Fatalf("%v: total uplink %d B out of range", tc.spec, got)
		}
		if mean := res.Run.MeanCompressionRatio(); math.Abs(mean-ratio) > 1e-9 {
			t.Fatalf("%v: rollup ratio %v, want %v", tc.spec, mean, ratio)
		}
	}
}

// TestSparsePayloadMatchesDelta pins the two views of a compressed
// upload against each other inside a live run: the dense Delta the
// engine exposes must be exactly the decode of the payload, so the
// sparse aggregation kernels and a dense fallback can never disagree on
// what arrived.
func TestSparsePayloadMatchesDelta(t *testing.T) {
	net, shards, test := poolSetup(t, 8)
	cfg := compressConfig(9)
	cfg.Compress = compress.Spec{Kind: compress.KindTopK, TopKFrac: 0.02}
	alg := &payloadCheckAlg{t: t}
	if _, err := Run(cfg, alg, net, shards, test); err != nil {
		t.Fatal(err)
	}
	if alg.checked == 0 {
		t.Fatal("aggregation never saw a sparse payload")
	}
}

// payloadCheckAlg aggregates like FedAvg but first cross-checks every
// update's payload view against its dense delta.
type payloadCheckAlg struct {
	Base
	t       *testing.T
	checked int
}

func (a *payloadCheckAlg) Name() string { return "payloadCheck" }
func (a *payloadCheckAlg) Aggregate(s *ServerCtx, updates []Update) {
	for i := range updates {
		u := &updates[i]
		p := u.Payload
		if p == nil || !p.Sparse() {
			a.t.Fatalf("update %d carries no sparse payload", i)
		}
		nonzero := 0
		for _, v := range u.Delta {
			if v != 0 {
				nonzero++
			}
		}
		if nonzero > len(p.Idx) {
			a.t.Fatalf("dense delta has %d nonzeros, payload keeps %d", nonzero, len(p.Idx))
		}
		for j, idx := range p.Idx {
			if u.Delta[idx] != p.Val[j] {
				a.t.Fatalf("delta[%d] = %v, payload says %v", idx, u.Delta[idx], p.Val[j])
			}
		}
		a.checked++
	}
	FedAvgStep(s, updates)
}
