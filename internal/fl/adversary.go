package fl

import (
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/simclock"
)

// advClient is one corrupt client's compiled corruption state, assembled
// from the config's adversary specs at setup. Honest clients carry none
// (client.adv == nil), so the honest path is untouched. All fields are
// written once at setup; dispatch only reads them (plus the reusable ctx
// and the client-owned RNG stream), keeping warmed-up rounds at zero
// allocations with update-level injectors live.
type advClient struct {
	// alts are the data-level corrupted views of the client's shard, one
	// per data-level spec, each corrupted from the clean shard and gated
	// by its own window. At dispatch the last live alternative wins.
	alts []dataAlt
	// injectors is the update-level chain, applied to the outgoing delta
	// in spec order after local training.
	injectors []deltaInjector
	// fab, when set, replaces local training entirely while fabWin is
	// live (at most one fabricator per client, enforced at setup).
	fab    adversary.Fabricator
	fabWin simclock.Trace
	// ctx is the reusable dispatch context for update-level behaviors.
	ctx adversary.Ctx
	// r is the client's persistent corruption stream; deriving it at
	// setup (after every honest stream) leaves honest clients'
	// randomness bit-identical to an adversary-free run.
	r *rng.RNG
}

type dataAlt struct {
	sampler *dataset.Sampler
	win     simclock.Trace
}

type deltaInjector struct {
	b   adversary.DeltaCorruptor
	win simclock.Trace
}

// corrupt reports whether the client is designated adversarial by any
// spec — the ground truth the weight-mass metrics and detection scores
// are measured against (window-gated attackers count even while dormant).
func (c *client) corrupt() bool { return c.adv != nil }

// fabricatorAt returns the client's fabricator when one is live at
// modeled time now, else nil.
func (c *client) fabricatorAt(now float64) adversary.Fabricator {
	if c.adv == nil || c.adv.fab == nil || !c.adv.fabWin.Available(now) {
		return nil
	}
	return c.adv.fab
}

// samplerAt returns the mini-batch sampler to train from at modeled time
// now: the last data-level corruption whose window is live, else the
// clean sampler.
func (c *client) samplerAt(now float64) *dataset.Sampler {
	if c.adv == nil {
		return c.sampler
	}
	for i := len(c.adv.alts) - 1; i >= 0; i-- {
		if c.adv.alts[i].win.Available(now) {
			return c.adv.alts[i].sampler
		}
	}
	return c.sampler
}

// fillCtx refreshes the client's reusable dispatch context (allocation-
// free; the struct and RNG are owned by advClient).
func (c *client) fillCtx(cfg *Config, round int, global, prevGlobal []float64) *adversary.Ctx {
	a := c.adv
	a.ctx.Client = c.id
	a.ctx.Round = round
	a.ctx.Global = global
	a.ctx.PrevGlobal = prevGlobal
	a.ctx.ReplayScale = float64(cfg.LocalSteps) * cfg.LocalLR / cfg.globalLR()
	a.ctx.RNG = a.r
	return &a.ctx
}

// fabricate synthesizes the client's upload via its fabricator.
// Fabricating clients report no training loss (NaN sentinel; see
// meanLoss).
func (c *client) fabricate(fab adversary.Fabricator, cfg *Config, delta []float64, round int, global, prevGlobal []float64) {
	fab.Fabricate(delta, c.fillCtx(cfg, round, global, prevGlobal))
	c.lastLoss = math.NaN()
}

// injectDelta runs the client's update-level injector chain over the
// trained delta, skipping injectors whose window is closed at now.
func (c *client) injectDelta(cfg *Config, delta []float64, round int, now float64, global, prevGlobal []float64) {
	a := c.adv
	if a == nil || len(a.injectors) == 0 {
		return
	}
	ctx := c.fillCtx(cfg, round, global, prevGlobal)
	for i := range a.injectors {
		if a.injectors[i].win.Available(now) {
			a.injectors[i].b.CorruptDelta(delta, ctx)
		}
	}
}

// setupAdversaries compiles the config's corruption specs onto the
// clients. It runs after every honest RNG stream has been derived from
// root, so adversarial streams never perturb honest ones; specs are
// processed in declaration order and members in ascending ID order, so
// setup (including which invalid ID an error reports) is deterministic.
func setupAdversaries(cfg *Config, clients []*client, root *rng.RNG) error {
	for si, spec := range cfg.adversarySpecs() {
		members := spec.Members(len(clients))
		b := spec.Behavior()
		for _, id := range members {
			if id < 0 || id >= len(clients) {
				return fmt.Errorf("fl: adversary %d (%s): client id %d outside [0,%d)", si, spec.Kind, id, len(clients))
			}
			c := clients[id]
			if c.adv == nil {
				c.adv = &advClient{r: root.Derive("adversary", id)}
			}
			switch bb := b.(type) {
			case adversary.DataCorruptor:
				shard := bb.CorruptData(c.data, c.adv.r.Derive("data", si))
				c.adv.alts = append(c.adv.alts, dataAlt{
					sampler: dataset.NewSampler(shard, c.adv.r.Derive("datasampler", si)),
					win:     spec.Window,
				})
			case adversary.DeltaCorruptor:
				c.adv.injectors = append(c.adv.injectors, deltaInjector{b: bb, win: spec.Window})
			case adversary.Fabricator:
				if c.adv.fab != nil {
					return fmt.Errorf("fl: adversary %d (%s): client %d already has a fabricator", si, spec.Kind, id)
				}
				c.adv.fab = bb
				c.adv.fabWin = spec.Window
			default:
				return fmt.Errorf("fl: adversary %d: kind %q compiles to no behavior", si, spec.Kind)
			}
		}
	}
	return nil
}
