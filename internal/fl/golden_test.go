package fl

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"testing"

	"repro/internal/adversary"
	"repro/internal/aggstack"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/vecmath"
)

// referenceRun is a frozen copy of the engine's pre-scheduler lock-step
// round loop (the Run of the GEMM-substrate revision). It is the golden
// oracle for the synchronous policy: runSync must reproduce it
// bit-identically — same RNG derivation order, same update ordering,
// same aggregation arithmetic. Do not "fix" or modernize this function;
// divergence from it is the bug.
func referenceRun(cfg Config, alg Algorithm, net *nn.Network, shards []*dataset.Dataset, test *dataset.Dataset) (*Result, error) {
	n := len(shards)
	root := rng.New(cfg.Seed)
	params := net.InitParams(root.Derive("init", 0))
	numParams := net.NumParams()

	clients := make([]*client, n)
	dataSizes := make([]int, n)
	for i, shard := range shards {
		clients[i] = &client{
			id:      i,
			data:    shard,
			sampler: dataset.NewSampler(shard, root.Derive("sampler", i)),
		}
		dataSizes[i] = shard.Len()
	}
	// The reference loop predates the slot pool; per-client resources are
	// now pooled, but the local-update arithmetic and ordering it pins are
	// unchanged (runRound fills updates[j] for ids[j] exactly as the old
	// per-client engines did).
	pool := newSlotPool(net, cfg, n)
	defer pool.close()

	env := &Env{
		Net:        net,
		NumClients: n,
		NumParams:  numParams,
		DataSizes:  dataSizes,
		Cfg:        cfg,
	}
	alg.Setup(env)

	evalEng := nn.NewEngine(net, min(256, max(1, test.Len())))
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	expelled := make(map[int]int)
	run := &metrics.Run{Algorithm: alg.Name(), Dataset: test.Name}

	wPrev := vecmath.Clone(params)
	modeledRound := simclock.RoundSeconds(net.GradFlops(cfg.BatchSize), cfg.LocalSteps, alg.Costs())
	participationRNG := root.Derive("participation", 0)
	// The reference loop predates the adversary subsystem; its freeloader
	// flag is now the compiled always-on fabricator, assembled from the
	// same config field by the same setup helper (streams derive after
	// every honest stream, so honest arithmetic is unchanged).
	if err := setupAdversaries(&cfg, clients, root); err != nil {
		return nil, err
	}

	for t := 0; t < cfg.Rounds; t++ {
		ids := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if active[i] {
				ids = append(ids, i)
			}
		}
		if len(ids) == 0 {
			return nil, fmt.Errorf("fl: all clients expelled by round %d", t)
		}
		if f := cfg.ParticipationFraction; f > 0 && f < 1 {
			take := max(int(f*float64(len(ids))+0.5), 1)
			picked := participationRNG.SampleWithoutReplacement(len(ids), take)
			sort.Ints(picked)
			sampled := make([]int, take)
			for j, p := range picked {
				sampled[j] = ids[p]
			}
			ids = sampled
		}

		updates := make([]Update, len(ids))
		measured := make([]float64, len(ids))
		pool.runRound(&cfg, alg, clients, ids, t, 0, params, wPrev, updates, measured)

		var slowestMeasured float64
		anyHonest := false
		for j, id := range ids {
			if clients[id].fabricatorAt(0) != nil {
				continue
			}
			anyHonest = true
			if measured[j] > slowestMeasured {
				slowestMeasured = measured[j]
			}
		}
		slowestModeled := modeledRound
		if !anyHonest {
			slowestModeled = 0
		}

		copy(wPrev, params)
		server := &ServerCtx{
			Round:  t,
			W:      params,
			WPrev:  wPrev,
			Env:    env,
			Active: active,
		}
		alg.Aggregate(server, updates)
		for _, id := range server.expelled {
			if active[id] {
				active[id] = false
				expelled[id] = t
			}
		}

		if !vecmath.AllFinite(params) {
			run.Diverged = true
			run.DivergedRound = t
			break
		}

		rec := metrics.Round{
			Index:              t,
			TrainLoss:          meanLoss(updates),
			SlowestModeledSec:  slowestModeled,
			SlowestMeasuredSec: slowestMeasured,
			MeanAlpha:          alg.MeanAlpha(),
			// The reference loop predates the compression substrate; its
			// uploads are dense float64 vectors, whose on-wire cost the
			// scheduler now records explicitly (8d bytes per update,
			// ratio 1).
			UplinkBytes:      8 * int64(numParams) * int64(len(updates)),
			CompressionRatio: 1,
		}
		if (t+1)%cfg.evalEvery() == 0 || t == cfg.Rounds-1 {
			rec.Accuracy = evalEng.Accuracy(alg.FinalModel(params), test.X, test.Y)
		} else if len(run.Rounds) > 0 {
			rec.Accuracy = run.Rounds[len(run.Rounds)-1].Accuracy
		}
		run.Append(rec)
	}

	return &Result{
		Run:         run,
		FinalParams: vecmath.Clone(alg.FinalModel(params)),
		Expelled:    expelled,
	}, nil
}

// paramsHash fingerprints a parameter vector bit-exactly.
func paramsHash(params []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range params {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	return h.Sum64()
}

// goldenSetup builds the small adult federation the golden tests train.
func goldenSetup(t *testing.T, clients int, seed uint64) (*nn.Network, []*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	train, test, err := dataset.Standard("adult", dataset.ScaleSmall, 3)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Dirichlet(train, clients, 0.5, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	net, err := dataset.Model("adult")
	if err != nil {
		t.Fatal(err)
	}
	return net, part.Shards(train), test
}

// TestSyncPolicyMatchesPreSchedulerEngine is the golden regression: the
// event-driven scheduler's synchronous policy must reproduce the
// pre-refactor round loop bit-identically — FinalParams hash, every
// metric field, and expulsions — across algorithms and engine features
// (freeloaders, partial participation).
func TestSyncPolicyMatchesPreSchedulerEngine(t *testing.T) {
	cases := []struct {
		name string
		alg  func() Algorithm
		cfg  func(*Config)
	}{
		{"fedavg", func() Algorithm { return goldenFedAvg{} }, nil},
		{"fedavg-partial", func() Algorithm { return goldenFedAvg{} }, func(c *Config) { c.ParticipationFraction = 0.5 }},
		{"fedavg-freeloader", func() Algorithm { return goldenFedAvg{} }, func(c *Config) { c.Freeloaders = []int{5} }},
		{"fedavg-bydata", func() Algorithm { return goldenFedAvg{} }, func(c *Config) { c.WeightByData = true }},
		// A declared-but-empty adversary list is the honest run: it must
		// reproduce the adversary-free golden trace bit-identically.
		{"fedavg-empty-adversaries", func() Algorithm { return goldenFedAvg{} }, func(c *Config) { c.Adversaries = []adversary.Spec{} }},
		// A declared-but-empty fault list derives no fault streams and
		// must reproduce the fault-free golden trace bit-identically.
		{"fedavg-empty-faults", func() Algorithm { return goldenFedAvg{} }, func(c *Config) { c.Faults = []fault.Spec{} }},
		// Periodic checkpointing is pure observation: snapshots must not
		// perturb a single draw or byte of the training trajectory.
		{"fedavg-checkpointing", func() Algorithm { return goldenFedAvg{} }, func(c *Config) { c.CheckpointEvery = 2 }},
		// A unit-LR FedSGD server optimizer wraps the rule in the stack
		// shim but is algebraically the vanilla apply: the wrapped run must
		// reproduce the reference loop (which predates the stack and never
		// wraps) bit-identically.
		{"fedavg-fedsgd-identity", func() Algorithm { return goldenFedAvg{} }, func(c *Config) {
			c.ServerOpt = aggstack.OptSpec{Kind: aggstack.OptFedSGD, LR: 1}
		}},
		// A server crash restores the last checkpoint with its rng
		// cursors; the replayed rounds are bit-identical, so the whole
		// run still matches the crash-free reference.
		{"fedavg-servercrash-replay", func() Algorithm { return goldenFedAvg{} }, func(c *Config) {
			c.Faults = []fault.Spec{{Kind: fault.KindServerCrash, Round: 3}}
			c.CheckpointEvery = 2
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net, shards, test := goldenSetup(t, 6, 4)
			cfg := Config{Rounds: 5, LocalSteps: 4, BatchSize: 16, LocalLR: 0.05, Seed: 11}
			if tc.cfg != nil {
				tc.cfg(&cfg)
			}
			want, err := referenceRun(cfg, tc.alg(), net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(cfg, tc.alg(), net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			if wh, gh := paramsHash(want.FinalParams), paramsHash(got.FinalParams); wh != gh {
				t.Fatalf("FinalParams hash mismatch: reference %016x, scheduler %016x", wh, gh)
			}
			if len(want.Run.Rounds) != len(got.Run.Rounds) {
				t.Fatalf("round count: reference %d, scheduler %d", len(want.Run.Rounds), len(got.Run.Rounds))
			}
			for i := range want.Run.Rounds {
				// Measured wall time is real Go time, inherently noisy;
				// every modeled/deterministic field must match exactly.
				// The weight-mass fields postdate the frozen reference
				// (which never computes them) and are pinned by the
				// adversary tests instead.
				w, g := want.Run.Rounds[i], got.Run.Rounds[i]
				w.SlowestMeasuredSec, g.SlowestMeasuredSec = 0, 0
				w.CumMeasuredSec, g.CumMeasuredSec = 0, 0
				w.HonestWeight, g.HonestWeight = 0, 0
				w.CorruptWeight, g.CorruptWeight = 0, 0
				if w != g {
					t.Fatalf("round %d record mismatch:\nreference %+v\nscheduler %+v", i, w, g)
				}
			}
		})
	}
}

// goldenFedAvg is a minimal FedAvg so the white-box golden test does not
// import internal/baselines (which would create an import cycle through
// this package).
type goldenFedAvg struct{ Base }

func (goldenFedAvg) Name() string { return "FedAvg" }
func (goldenFedAvg) Aggregate(s *ServerCtx, updates []Update) {
	FedAvgStep(s, updates)
}
