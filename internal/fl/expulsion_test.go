package fl_test

import (
	"testing"

	"repro/internal/fl"
	"repro/internal/simclock"
)

// expelEarly is a minimal algorithm that expels one client at a fixed
// round, to test the engine's active-set handling in isolation.
type expelEarly struct {
	fl.Base
	victim       int
	atRound      int
	seenAfter    bool
	updatesCount []int
}

func (a *expelEarly) Name() string { return "expelEarly" }

func (a *expelEarly) Aggregate(s *fl.ServerCtx, updates []fl.Update) {
	a.updatesCount = append(a.updatesCount, len(updates))
	for _, u := range updates {
		if u.Client == a.victim && s.Round > a.atRound {
			a.seenAfter = true
		}
	}
	if s.Round == a.atRound {
		s.Expel(a.victim)
	}
	fl.FedAvgStep(s, updates)
}

func (a *expelEarly) Costs() simclock.Costs { return simclock.Plain() }

func TestEngineExpulsion(t *testing.T) {
	net, shards, test := testSetup(t, 5)
	alg := &expelEarly{victim: 2, atRound: 1}
	cfg := quickConfig()
	res, err := fl.Run(cfg, alg, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if round, ok := res.Expelled[2]; !ok || round != 1 {
		t.Fatalf("Expelled = %v, want client 2 at round 1", res.Expelled)
	}
	if alg.seenAfter {
		t.Fatal("expelled client still produced updates")
	}
	// Rounds 0-1 aggregate 5 clients, later rounds 4.
	if alg.updatesCount[0] != 5 || alg.updatesCount[1] != 5 {
		t.Fatalf("pre-expulsion update counts = %v", alg.updatesCount[:2])
	}
	for r, n := range alg.updatesCount[2:] {
		if n != 4 {
			t.Fatalf("round %d aggregated %d updates, want 4", r+2, n)
		}
	}
	if res.Run.FinalAccuracy() < 0.5 {
		t.Fatalf("training broke after expulsion: %.4f", res.Run.FinalAccuracy())
	}
}

// TestAllClientsExpelledErrors covers the engine's guard against an empty
// federation.
func TestAllClientsExpelledErrors(t *testing.T) {
	net, shards, test := testSetup(t, 2)
	alg := &expelAll{}
	cfg := quickConfig()
	if _, err := fl.Run(cfg, alg, net, shards, test); err == nil {
		t.Fatal("expected an error when every client is expelled")
	}
}

type expelAll struct {
	fl.Base
}

func (a *expelAll) Name() string { return "expelAll" }

func (a *expelAll) Aggregate(s *fl.ServerCtx, updates []fl.Update) {
	for _, u := range updates {
		s.Expel(u.Client)
	}
	fl.FedAvgStep(s, updates)
}

func (a *expelAll) Costs() simclock.Costs { return simclock.Plain() }
