package fl

import (
	"math"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/simclock"
)

// advSpec builds one always-on spec of the given kind over 1/3 of the
// clients, with a representative magnitude.
func advSpec(kind adversary.Kind) adversary.Spec {
	s := adversary.Spec{Kind: kind, Frac: 1.0 / 3}
	switch kind {
	case adversary.KindScale, adversary.KindSybil:
		s.Scale = 2
	case adversary.KindDeltaNoise:
		s.Scale = 1
	case adversary.KindLabelNoise:
		s.Scale = 0.8
	}
	return s
}

// TestEmptyAdversaryListIsHonestRun: declaring an empty (or nil-member)
// corruption config is the honest run, bit-identical to a config without
// the field.
func TestEmptyAdversaryListIsHonestRun(t *testing.T) {
	net, shards, test := goldenSetup(t, 6, 4)
	cfg := Config{Rounds: 4, LocalSteps: 3, BatchSize: 8, LocalLR: 0.05, Seed: 11}
	clean, err := Run(cfg, goldenFedAvg{}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Adversaries = []adversary.Spec{}
	empty, err := Run(cfg, goldenFedAvg{}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if ch, eh := paramsHash(clean.FinalParams), paramsHash(empty.FinalParams); ch != eh {
		t.Fatalf("empty adversary list changed the run: %016x vs %016x", ch, eh)
	}
	if empty.CumWeights != nil {
		t.Fatal("adversary-free run must not track cumulative weights")
	}
}

// TestAdversaryDeterminism pins P=1-vs-P=8 bit-identity for every
// injector kind × 2 seeds: corruption streams are per-client and window
// gates are pure functions of modeled time, so the slot multiplexing
// must stay invisible.
func TestAdversaryDeterminism(t *testing.T) {
	net, shards, test := goldenSetup(t, 6, 4)
	for _, kind := range adversary.Kinds() {
		for _, seed := range []uint64{11, 23} {
			t.Run(string(kind)+"/seed"+string(rune('0'+seed%10)), func(t *testing.T) {
				cfg := Config{
					Rounds: 4, LocalSteps: 3, BatchSize: 8, LocalLR: 0.05,
					Seed:        seed,
					Adversaries: []adversary.Spec{advSpec(kind)},
				}
				cfgA := cfg
				cfgA.Parallelism = 1
				cfgB := cfg
				cfgB.Parallelism = 8
				resA, err := Run(cfgA, goldenFedAvg{}, net, shards, test)
				if err != nil {
					t.Fatal(err)
				}
				resB, err := Run(cfgB, goldenFedAvg{}, net, shards, test)
				if err != nil {
					t.Fatal(err)
				}
				if ha, hb := paramsHash(resA.FinalParams), paramsHash(resB.FinalParams); ha != hb {
					t.Fatalf("%s seed %d: params differ across parallelism: %016x vs %016x", kind, seed, ha, hb)
				}
				for i := range resA.Run.Rounds {
					a, b := resA.Run.Rounds[i], resB.Run.Rounds[i]
					if a.CorruptWeight != b.CorruptWeight || a.HonestWeight != b.HonestWeight {
						t.Fatalf("%s seed %d round %d: weight mass differs across parallelism", kind, seed, i)
					}
				}
			})
		}
	}
}

// TestLegacyFreeloaderFieldEquivalence: Config.Freeloaders is sugar for
// an explicit freeloader spec — bit-identical runs.
func TestLegacyFreeloaderFieldEquivalence(t *testing.T) {
	net, shards, test := goldenSetup(t, 6, 4)
	base := Config{Rounds: 4, LocalSteps: 3, BatchSize: 8, LocalLR: 0.05, Seed: 11}
	legacy := base
	legacy.Freeloaders = []int{5, 2}
	spec := base
	spec.Adversaries = []adversary.Spec{{Kind: adversary.KindFreeloader, Clients: []int{2, 5}}}
	resL, err := Run(legacy, goldenFedAvg{}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	resS, err := Run(spec, goldenFedAvg{}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if lh, sh := paramsHash(resL.FinalParams), paramsHash(resS.FinalParams); lh != sh {
		t.Fatalf("legacy field and explicit spec diverge: %016x vs %016x", lh, sh)
	}
}

// TestAdversaryErrorDeterministic is the map-order regression for the old
// freeloader setup, which iterated a map to validate IDs and so reported
// a random invalid ID. Members iterate sorted, so the smallest offender
// is reported every time.
func TestAdversaryErrorDeterministic(t *testing.T) {
	net, shards, test := goldenSetup(t, 6, 4)
	cfg := Config{Rounds: 2, LocalSteps: 2, BatchSize: 8, LocalLR: 0.05, Seed: 1}
	cfg.Freeloaders = []int{99, 98, 97}
	var first string
	for i := 0; i < 10; i++ {
		_, err := Run(cfg, goldenFedAvg{}, net, shards, test)
		if err == nil {
			t.Fatal("out-of-range freeloader ids must error")
		}
		if !strings.Contains(err.Error(), "97") {
			t.Fatalf("error must name the smallest invalid id 97: %v", err)
		}
		if i == 0 {
			first = err.Error()
		} else if err.Error() != first {
			t.Fatalf("validation error not deterministic:\n%q\n%q", first, err.Error())
		}
	}
}

// captureAlg records the per-round uploads of watched clients.
type captureAlg struct {
	goldenFedAvg
	watch  []int
	deltas map[int][][]float64 // round -> one copy per watched client
}

func (a *captureAlg) Aggregate(s *ServerCtx, updates []Update) {
	if a.deltas == nil {
		a.deltas = make(map[int][][]float64)
	}
	for _, u := range updates {
		for _, id := range a.watch {
			if u.Client == id {
				cp := make([]float64, len(u.Delta))
				copy(cp, u.Delta)
				a.deltas[s.Round] = append(a.deltas[s.Round], cp)
			}
		}
	}
	a.goldenFedAvg.Aggregate(s, updates)
}

// TestSybilUploadsExactlyShared: every member of the colluding set
// uploads the identical delta each round (zeros in round 0).
func TestSybilUploadsExactlyShared(t *testing.T) {
	net, shards, test := goldenSetup(t, 6, 4)
	members := []int{1, 3, 5}
	cfg := Config{
		Rounds: 3, LocalSteps: 2, BatchSize: 8, LocalLR: 0.05, Seed: 7,
		Adversaries: []adversary.Spec{{Kind: adversary.KindSybil, Clients: members, Scale: 2}},
	}
	alg := &captureAlg{watch: members}
	if _, err := Run(cfg, alg, net, shards, test); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < cfg.Rounds; round++ {
		got := alg.deltas[round]
		if len(got) != len(members) {
			t.Fatalf("round %d captured %d sybil uploads, want %d", round, len(got), len(members))
		}
		for m := 1; m < len(got); m++ {
			for i := range got[0] {
				if got[m][i] != got[0][i] {
					t.Fatalf("round %d: sybil uploads differ at coordinate %d", round, i)
				}
			}
		}
		if round == 0 {
			for _, v := range got[0] {
				if v != 0 {
					t.Fatal("round-0 sybil upload must be zero")
				}
			}
		} else {
			allZero := true
			for _, v := range got[0] {
				if v != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Fatalf("round %d sybil upload is zero — fabrication did not run", round)
			}
		}
	}
}

// TestActivationWindowGates: a window that is never live leaves the run
// bit-identical to the honest one; a window live only part of the time
// produces a third, distinct trajectory.
func TestActivationWindowGates(t *testing.T) {
	net, shards, test := goldenSetup(t, 6, 4)
	base := Config{Rounds: 6, LocalSteps: 3, BatchSize: 8, LocalLR: 0.05, Seed: 11}
	run := func(mut func(*Config)) uint64 {
		cfg := base
		if mut != nil {
			mut(&cfg)
		}
		res, err := Run(cfg, goldenFedAvg{}, net, shards, test)
		if err != nil {
			t.Fatal(err)
		}
		return paramsHash(res.FinalParams)
	}
	clean := run(nil)
	// OnFraction must be in (0,1]; a live window pushed entirely out of
	// reach by its offset is never available over the run's horizon.
	never := run(func(c *Config) {
		c.Adversaries = []adversary.Spec{{
			Kind: adversary.KindSignFlip, Frac: 0.5,
			Window: simclock.Trace{PeriodSec: 1e12, OnFraction: 1e-9, OffsetSec: 1e6},
		}}
	})
	if clean != never {
		t.Fatalf("never-live window must be the honest run: %016x vs %016x", clean, never)
	}
	always := run(func(c *Config) {
		c.Adversaries = []adversary.Spec{{Kind: adversary.KindSignFlip, Frac: 0.5}}
	})
	if always == clean {
		t.Fatal("always-on sign flip did not change the trajectory")
	}
	// Window spanning half the nominal rounds: different from both.
	nominal := simclock.RoundSeconds(net.GradFlops(base.BatchSize), base.LocalSteps, simclock.Plain())
	windowed := run(func(c *Config) {
		c.Adversaries = []adversary.Spec{{
			Kind: adversary.KindSignFlip, Frac: 0.5,
			Window: simclock.Trace{PeriodSec: 4 * nominal, OnFraction: 0.5},
		}}
	})
	if windowed == clean || windowed == always {
		t.Fatal("intermittent window must produce its own trajectory")
	}
}

// TestWeightMassRecorded: under uniform aggregation the corrupt mass is
// exactly the corrupt head-count share, the split sums to one, and the
// per-client cumulative weights match.
func TestWeightMassRecorded(t *testing.T) {
	net, shards, test := goldenSetup(t, 6, 4)
	cfg := Config{
		Rounds: 3, LocalSteps: 2, BatchSize: 8, LocalLR: 0.05, Seed: 5,
		Adversaries: []adversary.Spec{{Kind: adversary.KindSignFlip, Clients: []int{0, 4}}},
	}
	res, err := Run(cfg, goldenFedAvg{}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range res.Run.Rounds {
		if math.Abs(rec.HonestWeight+rec.CorruptWeight-1) > 1e-12 {
			t.Fatalf("round %d: weight masses sum to %v", i, rec.HonestWeight+rec.CorruptWeight)
		}
		if want := 2.0 / 6; math.Abs(rec.CorruptWeight-want) > 1e-12 {
			t.Fatalf("round %d: corrupt mass %v, want uniform share %v", i, rec.CorruptWeight, want)
		}
	}
	if res.CumWeights == nil {
		t.Fatal("adversarial run must track cumulative weights")
	}
	var total float64
	for _, w := range res.CumWeights {
		total += w
	}
	if math.Abs(total-float64(cfg.Rounds)) > 1e-9 {
		t.Fatalf("cumulative weights sum to %v, want %d", total, cfg.Rounds)
	}
	if got := res.Run.MeanCorruptWeight(); math.Abs(got-2.0/6) > 1e-12 {
		t.Fatalf("MeanCorruptWeight = %v", got)
	}
}

// TestDataAttackChangesOnlyLabels: a label attack leaves the client's
// clean shard untouched (other runs reuse it) and still trains.
func TestDataAttackChangesOnlyLabels(t *testing.T) {
	net, shards, test := goldenSetup(t, 6, 4)
	origY := append([]int(nil), shards[0].Y...)
	cfg := Config{
		Rounds: 3, LocalSteps: 2, BatchSize: 8, LocalLR: 0.05, Seed: 5,
		Adversaries: []adversary.Spec{{Kind: adversary.KindLabelFlip, Clients: []int{0}}},
	}
	res, err := Run(cfg, goldenFedAvg{}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range shards[0].Y {
		if y != origY[i] {
			t.Fatal("label attack mutated the clean shard")
		}
	}
	// The attacker trains (on poisoned labels), so it reports a loss and
	// counts as honest for the timing metrics.
	last := res.Run.Rounds[len(res.Run.Rounds)-1]
	if math.IsNaN(last.TrainLoss) || last.TrainLoss <= 0 {
		t.Fatalf("train loss %v with a label attacker", last.TrainLoss)
	}
}

// TestFabricatorConflict: stacking two fabricators on one client is a
// setup error; a fabricator stacks fine with update-level injectors.
func TestFabricatorConflict(t *testing.T) {
	net, shards, test := goldenSetup(t, 6, 4)
	cfg := Config{Rounds: 2, LocalSteps: 2, BatchSize: 8, LocalLR: 0.05, Seed: 1}
	cfg.Adversaries = []adversary.Spec{
		{Kind: adversary.KindFreeloader, Clients: []int{2}},
		{Kind: adversary.KindSybil, Clients: []int{2, 3}},
	}
	if _, err := Run(cfg, goldenFedAvg{}, net, shards, test); err == nil {
		t.Fatal("two fabricators on one client must error")
	}
	cfg.Adversaries = []adversary.Spec{
		{Kind: adversary.KindSignFlip, Clients: []int{2}},
		{Kind: adversary.KindScale, Clients: []int{2}, Scale: 2},
		{Kind: adversary.KindLabelFlip, Clients: []int{2}},
	}
	if _, err := Run(cfg, goldenFedAvg{}, net, shards, test); err != nil {
		t.Fatalf("composed injector stack rejected: %v", err)
	}
}
