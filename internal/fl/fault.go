package fl

import (
	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/simclock"
)

// Fault injection (DESIGN.md §8). A faultPlan compiles the config's
// declarative fault.Specs into per-client dispatch draws. Every outcome
// is resolved in the scheduler goroutine from a dedicated per-client
// fault stream — derived after all honest, adversary, and compression
// streams — so fault runs are bit-reproducible at any parallelism and a
// zero-fault config consumes nothing. All plan state is allocated at
// setup; resolving a dispatch performs only stream draws, preserving the
// 0-alloc steady state with faults enabled.

// maxRollbacks bounds divergence recoveries per run: past it the run
// halts with a recorded HaltReason instead of looping on a configuration
// that keeps blowing up.
const maxRollbacks = 3

// gatedProb is one compiled probabilistic fault: it fires with
// probability p per dispatch attempt, gated by a modeled-time window.
// The draw is always consumed so window gating never shifts the stream.
type gatedProb struct {
	p   float64
	win simclock.Trace
}

// gatedSlow is one compiled latency-spike fault: with probability p the
// dispatch's compute time is multiplied by factor.
type gatedSlow struct {
	p      float64
	factor float64
	win    simclock.Trace
}

// clientFaults is one client's compiled fault state and its dedicated
// draw stream.
type clientFaults struct {
	crash []gatedProb
	drop  []gatedProb
	dup   []gatedProb
	slow  []gatedSlow
	r     *rng.RNG
}

// drawProb consumes one draw per spec and reports whether any fired
// inside its window at modeled time at.
func drawProb(r *rng.RNG, specs []gatedProb, at float64) bool {
	fired := false
	for _, g := range specs {
		if r.Float64() < g.p && g.win.Available(at) {
			fired = true
		}
	}
	return fired
}

// drawSlow consumes one draw per spec and returns the product of the
// firing specs' latency factors (1 when none fired).
func drawSlow(r *rng.RNG, specs []gatedSlow, at float64) float64 {
	f := 1.0
	for _, g := range specs {
		if r.Float64() < g.p && g.win.Available(at) {
			f *= g.factor
		}
	}
	return f
}

// faultPlan is the run's compiled fault model.
type faultPlan struct {
	// perClient holds each client's compiled fault state; nil entries
	// mark clients not subject to any fault (their dispatches draw
	// nothing and behave exactly as in a fault-free run).
	perClient []*clientFaults
	// anyDispatch flags at least one per-dispatch fault (everything but
	// a pure servercrash config).
	anyDispatch bool
	// crashRound is the round at whose start the simulated server crash
	// fires; -1 when the config declares none.
	crashRound    int
	retries       int
	timeoutFactor float64
	backoffSec    float64
}

// newFaultPlan compiles cfg.Faults for n clients, deriving the fault
// streams from root last of all (after init, samplers, participation,
// adversary, and compression streams) in client-id order. Returns nil
// for a zero-fault config, which therefore derives nothing.
func newFaultPlan(cfg *Config, n int, baseRound float64, root *rng.RNG) *faultPlan {
	if len(cfg.Faults) == 0 {
		return nil
	}
	p := &faultPlan{
		perClient:     make([]*clientFaults, n),
		crashRound:    -1,
		retries:       cfg.faultRetries(),
		timeoutFactor: cfg.faultTimeoutFactor(),
		backoffSec:    cfg.faultBackoff(baseRound),
	}
	for _, spec := range cfg.Faults {
		if spec.Kind == fault.KindServerCrash {
			p.crashRound = spec.Round
			continue
		}
		p.anyDispatch = true
		for _, id := range spec.Subjects(n) {
			cf := p.perClient[id]
			if cf == nil {
				cf = &clientFaults{}
				p.perClient[id] = cf
			}
			switch spec.Kind {
			case fault.KindCrash:
				cf.crash = append(cf.crash, gatedProb{spec.Frac, spec.Window})
			case fault.KindDrop:
				cf.drop = append(cf.drop, gatedProb{spec.Frac, spec.Window})
			case fault.KindDup:
				cf.dup = append(cf.dup, gatedProb{spec.Frac, spec.Window})
			case fault.KindSlow:
				cf.slow = append(cf.slow, gatedSlow{spec.Frac, spec.Param, spec.Window})
			}
		}
	}
	for i, cf := range p.perClient {
		if cf != nil {
			cf.r = root.Derive("fault", i)
		}
	}
	return p
}

// backoff returns the deterministic jittered exponential delay before
// retry attempt a (0-based): base · 2^a · (0.5 + u) with u drawn from
// the client's fault stream.
func (p *faultPlan) backoff(a int, r *rng.RNG) float64 {
	return p.backoffSec * float64(uint64(1)<<min(a, 30)) * (0.5 + r.Float64())
}

// dispatchOutcome is one fully resolved sync/deadline dispatch: whether
// an update was delivered (possibly after retries), whether the uplink
// duplicated it, how many retries were spent, and the modeled completion
// (or abandonment) time relative to the round start.
type dispatchOutcome struct {
	delivered bool
	dup       bool
	retries   int
	rel       float64
}

// resolveDispatch plays out client id's dispatch at modeled time at
// under the fault plan. Each attempt draws, in fixed order, its crash,
// drop, and slow faults (one draw per compiled spec); an attempt fails
// when a crash or drop fired, or when a latency spike pushed its
// completion past the timeout budget (timeoutFactor × the attempt's
// fault-free completion time). Failed attempts cost the full budget plus
// an exponential backoff; the dup draw happens only on delivery. The
// retried client retransmits the update computed at dispatch — retries
// are modeled in time only, never in extra local training.
func (s *scheduler) resolveDispatch(id int, at float64) dispatchOutcome {
	cf := s.plan.perClient[id]
	if cf == nil {
		return dispatchOutcome{delivered: true, rel: s.finishRel(id, at)}
	}
	var elapsed float64
	for a := 0; ; a++ {
		start := at + elapsed
		wait := s.env.Devices[id].Availability.NextAvailable(start) - start
		base := s.finishDur(id)
		crash := drawProb(cf.r, cf.crash, start)
		drop := drawProb(cf.r, cf.drop, start)
		slowF := drawSlow(cf.r, cf.slow, start)
		budget := s.plan.timeoutFactor * (wait + base)
		dur := base * slowF
		if !crash && !drop && wait+dur <= budget {
			return dispatchOutcome{
				delivered: true,
				dup:       drawProb(cf.r, cf.dup, start),
				retries:   a,
				rel:       elapsed + wait + dur,
			}
		}
		elapsed += budget
		if a == s.plan.retries {
			return dispatchOutcome{retries: a, rel: elapsed}
		}
		elapsed += s.plan.backoff(a, cf.r)
	}
}

// asyncOutcome is one resolved async dispatch attempt. Unlike the
// sync/deadline path, async retries re-dispatch — and recompute against
// the then-current model — so only a single attempt is drawn here.
type asyncOutcome struct {
	failed bool
	dup    bool
	finish float64
}

// resolveAsyncDispatch draws one dispatch attempt for client id at
// modeled time at. A failed attempt's finish is the moment the server's
// timeout budget expires and it notices the loss.
func (s *scheduler) resolveAsyncDispatch(id int, at float64) asyncOutcome {
	cf := s.plan.perClient[id]
	if cf == nil {
		return asyncOutcome{finish: s.env.Devices[id].Availability.NextAvailable(at) + s.finishDur(id)}
	}
	wait := s.env.Devices[id].Availability.NextAvailable(at) - at
	base := s.finishDur(id)
	crash := drawProb(cf.r, cf.crash, at)
	drop := drawProb(cf.r, cf.drop, at)
	slowF := drawSlow(cf.r, cf.slow, at)
	budget := s.plan.timeoutFactor * (wait + base)
	dur := base * slowF
	if crash || drop || wait+dur > budget {
		return asyncOutcome{failed: true, finish: at + budget}
	}
	return asyncOutcome{dup: drawProb(cf.r, cf.dup, at), finish: at + wait + dur}
}

// degraded reports whether a sync/deadline round that delivered
// `delivered` of `dispatched` updates commits below quorum. A round that
// lost every update is always degraded (the model did not move).
func (s *scheduler) degraded(delivered, dispatched int) bool {
	if delivered == 0 {
		return true
	}
	return s.cfg.Quorum > 0 && float64(delivered) < s.cfg.Quorum*float64(dispatched)
}

// payloadBytes is one update's cost on the wire (used to charge
// duplicate deliveries).
func (s *scheduler) payloadBytes(u *Update) int64 {
	if u.Payload != nil {
		return int64(u.Payload.Bytes())
	}
	return 8 * int64(len(s.params))
}

// dupBytes totals the wire cost of the round's duplicate deliveries:
// dup[j] marks updates[j] as delivered twice.
func (s *scheduler) dupBytes(updates []Update, dup []bool) int64 {
	var extra int64
	for i := range dup {
		if dup[i] {
			extra += s.payloadBytes(&updates[i])
		}
	}
	return extra
}
