package fl

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/wire"
)

// RunWorker executes the client side of a wire run (cmd/flserver -mode
// worker): it replays the engine's rng derivation order from the shared
// seed, announces itself with the config fingerprint, and then trains
// every dispatched batch on an in-process slot pool, streaming the
// results back as Updates frames. index/workers must match the server's
// ServeOptions — the worker owns clients [index·n/W, (index+1)·n/W).
// The connection is closed when RunWorker returns.
//
// Bit-identity with fl.Run rests on the derivation ORDER contract
// (newSchedulerExec): the worker derives init, then every client
// sampler, then participation, then every compression stream — exactly
// the in-process sequence — and discards the streams the server owns
// (init, participation). Adversary and fault streams derive after these
// on the server, so skipping them here leaves every worker-held stream
// bit-identical to its in-process twin. Given identical streams and
// identical training code, every delta, loss, and encoded payload
// matches the in-process run to the bit.
func RunWorker(conn net.Conn, index, workers int, cfg Config, alg Algorithm, network *nn.Network, shards []*dataset.Dataset, dsName string) error {
	defer conn.Close()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if err := validateWire(&cfg, alg); err != nil {
		return err
	}
	if workers <= 0 || index < 0 || index >= workers {
		return fmt.Errorf("fl: worker index %d out of range [0,%d)", index, workers)
	}
	n := len(shards)
	fp := serveFingerprint(&cfg, alg.Name(), dsName, n, network.NumParams())

	// Replay the derivation order (see the doc comment above).
	root := rng.New(cfg.Seed)
	_ = root.Derive("init", 0)
	clients := make([]*client, n)
	dataSizes := make([]int, n)
	for i, shard := range shards {
		if shard.Len() == 0 {
			return fmt.Errorf("fl: client %d has no data", i)
		}
		clients[i] = &client{
			id:      i,
			data:    shard,
			sampler: dataset.NewSampler(shard, root.Derive("sampler", i)),
		}
		dataSizes[i] = shard.Len()
	}
	_ = root.Derive("participation", 0)

	env := &Env{
		Net:        network,
		NumClients: n,
		NumParams:  network.NumParams(),
		DataSizes:  dataSizes,
		Devices:    cfg.devices(n),
		Cfg:        cfg,
	}
	alg, err := wrapStack(alg, &cfg)
	if err != nil {
		return err
	}
	alg.Setup(env)

	lo, hi := index*n/workers, (index+1)*n/workers
	owned := max(1, hi-lo)
	pool := newSlotPool(network, cfg, owned)
	defer pool.close()
	if cfg.Compress.Kind != compress.KindNone {
		codec, err := cfg.Compress.Codec()
		if err != nil {
			return fmt.Errorf("fl: %w", err)
		}
		comp := &compressor{codec: codec, streams: make([]*rng.RNG, n)}
		if cfg.isF32() {
			comp.resid32 = make([][]float32, n)
		} else {
			comp.resid = make([][]float64, n)
		}
		for i := range comp.streams {
			comp.streams[i] = root.Derive("compress", i)
		}
		pool.comp = comp
	}

	wbuf, err := wire.WriteFrame(conn, wire.FrameHello, appendHello(nil, fp, index, workers), nil)
	if err != nil {
		return fmt.Errorf("fl: sending hello: %w", err)
	}

	w := &workerLoop{conn: conn}
	w.cond = sync.NewCond(&w.mu)
	go w.readLoop()

	updates := make([]Update, owned)
	measured := make([]float64, owned)
	for {
		m, ok := w.next()
		if !ok {
			break
		}
		k := len(m.ids)
		for _, id := range m.ids {
			if id < lo || id >= hi {
				return fmt.Errorf("fl: dispatched client %d outside owned range [%d,%d)", id, lo, hi)
			}
		}
		if k > len(updates) {
			// A client is in flight at most once under every policy, so a
			// batch larger than the owned range is a protocol violation.
			return fmt.Errorf("fl: dispatch of %d clients exceeds owned range size %d", k, hi-lo)
		}
		if err := pool.runRound(&cfg, alg, clients, m.ids, m.round, 0, m.global, m.global, updates[:k], measured[:k]); err != nil {
			return err
		}
		buf := wire.BeginFrame(wbuf[:0], wire.FrameUpdates)
		buf = wire.AppendUvarint(buf, uint64(k))
		for j := 0; j < k; j++ {
			buf = appendUpdateEntry(buf, &updates[j], measured[j])
		}
		wire.EndFrame(buf, 0)
		wbuf = buf
		w.waitResumed()
		if w.stopped() {
			// The run ended while this batch trained; the result is
			// abandoned, not sent (the server is only waiting for EOF).
			break
		}
		if _, err := conn.Write(buf); err != nil {
			return fmt.Errorf("fl: sending updates: %w", err)
		}
		for j := 0; j < k; j++ {
			pool.release(&updates[j])
		}
	}
	return w.readErr()
}

// workerLoop is RunWorker's connection state: the reader goroutine that
// turns incoming frames into an unbounded dispatch queue (unbounded so
// the reader NEVER blocks — a Resume frame must get through even while
// dispatches are queued, or a held worker would deadlock; depth is
// bounded in practice by the server's pipelining), and the Hold/Resume
// gate the training loop blocks on before each upload.
type workerLoop struct {
	conn net.Conn

	mu    sync.Mutex
	cond  *sync.Cond
	queue []*dispatchMsg
	done  bool
	held  bool
	err   error
}

// next pops the oldest queued dispatch, waiting for one; ok is false
// once the stream has ended (cleanly or not — readErr distinguishes).
// Dispatches still queued at that point are abandoned: Bye means the run
// completed, so the server has no use for their results.
func (w *workerLoop) next() (*dispatchMsg, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.queue) == 0 && !w.done {
		w.cond.Wait()
	}
	if w.done {
		return nil, false
	}
	m := w.queue[0]
	w.queue = w.queue[1:]
	return m, true
}

// waitResumed blocks while the server holds this worker. Bye releases
// the gate too: a held connection whose in-flight work the run abandoned
// gets no Resume.
func (w *workerLoop) waitResumed() {
	w.mu.Lock()
	for w.held && w.err == nil && !w.done {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// stopped reports whether the stream has ended.
func (w *workerLoop) stopped() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.done
}

// readErr reports why the job stream ended: nil after a clean Bye.
func (w *workerLoop) readErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// fail records the terminal error and releases the training loop.
func (w *workerLoop) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.done = true
	w.held = false
	w.cond.Broadcast()
	w.mu.Unlock()
}

// readLoop decodes incoming frames until the stream ends. Dispatches
// queue up behind the training loop (the queue is what the server's
// pipelining fills); Hold/Resume flip the upload gate; Bye ends the
// stream cleanly.
func (w *workerLoop) readLoop() {
	var fr wire.Frame
	for {
		if err := wire.ReadFrame(w.conn, &fr); err != nil {
			w.fail(fmt.Errorf("fl: reading from server: %w", err))
			return
		}
		switch fr.Type {
		case wire.FrameDispatch:
			m, err := parseDispatch(fr.Body)
			if err != nil {
				w.fail(err)
				return
			}
			w.mu.Lock()
			w.queue = append(w.queue, m)
			w.cond.Broadcast()
			w.mu.Unlock()
		case wire.FrameHold:
			w.mu.Lock()
			w.held = true
			w.mu.Unlock()
		case wire.FrameResume:
			w.mu.Lock()
			w.held = false
			w.cond.Broadcast()
			w.mu.Unlock()
		case wire.FrameBye:
			w.mu.Lock()
			w.done = true
			w.cond.Broadcast()
			w.mu.Unlock()
			return
		case wire.FrameReject:
			w.fail(fmt.Errorf("fl: server rejected worker: %s", fr.Body))
			return
		default:
			w.fail(fmt.Errorf("fl: unexpected frame type %d from server", fr.Type))
			return
		}
	}
}
