package fl

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/wire"
)

// ErrServerPaused is returned by RunWorker when the server shut the run
// down before completion — an interrupted (SIGINT/SIGTERM) flserver that
// intends to restart from a checkpoint. The worker should re-dial and
// re-attach; a clean Bye (run complete) returns nil instead.
var ErrServerPaused = errors.New("fl: server paused the run (re-attach after it restarts)")

// WorkerOptions configures the connection-level behavior of RunWorkerOpts.
type WorkerOptions struct {
	// Index and Workers place this worker in the fleet: it initially owns
	// the contiguous client range [Index·n/W, (Index+1)·n/W). Failover may
	// later adopt clients outside that range onto it.
	Index, Workers int
	// Attach is the re-attach counter sent in Hello: 0 on the first
	// connection, incremented on every re-dial after a connection loss.
	// A positive Attach tells the server this worker's rng streams are
	// fresh and must be rebuilt by a history replay before new dispatches.
	Attach int
	// HeartbeatSec bounds read liveness: when positive, the worker arms a
	// read deadline of FaultTimeoutFactor (default 3) × HeartbeatSec
	// before every frame read, so a dead server is detected instead of
	// blocking forever. It should match the server's
	// ServeOptions.HeartbeatSec (the server's Pings are what keep the
	// deadline fed between dispatches). 0 disables the deadline.
	HeartbeatSec float64
}

// RunWorker executes the client side of a wire run with default
// connection options; see RunWorkerOpts.
func RunWorker(conn net.Conn, index, workers int, cfg Config, alg Algorithm, network *nn.Network, shards []*dataset.Dataset, dsName string) error {
	return RunWorkerOpts(conn, WorkerOptions{Index: index, Workers: workers}, cfg, alg, network, shards, dsName)
}

// RunWorkerOpts executes the client side of a wire run (cmd/flserver
// -mode worker): it replays the engine's rng derivation order from the
// shared seed, announces itself with the config fingerprint, and then
// trains every dispatched batch on an in-process slot pool, streaming
// the results back as Updates frames. The connection is closed when it
// returns.
//
// Bit-identity with fl.Run rests on the derivation ORDER contract
// (newSchedulerExec): the worker derives init, then every client
// sampler, then participation, then every compression stream — exactly
// the in-process sequence — and discards the streams the server owns
// (init, participation). Adversary and fault streams derive after these
// on the server, so skipping them here leaves every worker-held stream
// bit-identical to its in-process twin. Given identical streams and
// identical training code, every delta, loss, and encoded payload
// matches the in-process run to the bit.
//
// Failover (DESIGN.md §12) extends the contract across worker loss: the
// worker derives streams for ALL n clients but only advances the ones it
// trains, so the server can move a dead worker's clients onto a survivor
// by replaying their full dispatch history as Adopt frames (train and
// discard — each replayed batch advances the sampler and quantization
// streams exactly as the original training did). A Restore frame resets
// the worker to its freshly-started state (fresh root, empty residuals)
// so the same replay mechanism serves a server restarting from a
// checkpoint behind live workers.
func RunWorkerOpts(conn net.Conn, opt WorkerOptions, cfg Config, alg Algorithm, network *nn.Network, shards []*dataset.Dataset, dsName string) error {
	defer conn.Close()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if err := validateWire(&cfg, alg); err != nil {
		return err
	}
	index, workers := opt.Index, opt.Workers
	if workers <= 0 || index < 0 || index >= workers {
		return fmt.Errorf("fl: worker index %d out of range [0,%d)", index, workers)
	}
	n := len(shards)
	fp := serveFingerprint(&cfg, alg.Name(), dsName, n, network.NumParams())

	env := &Env{
		Net:        network,
		NumClients: n,
		NumParams:  network.NumParams(),
		DataSizes:  make([]int, n),
		Devices:    cfg.devices(n),
		Cfg:        cfg,
	}
	for i, shard := range shards {
		if shard.Len() == 0 {
			return fmt.Errorf("fl: client %d has no data", i)
		}
		env.DataSizes[i] = shard.Len()
	}
	alg, err := wrapStack(alg, &cfg)
	if err != nil {
		return err
	}
	alg.Setup(env)

	// The pool is sized for the whole fleet, not just the initially owned
	// range: failover can adopt any client onto this worker.
	pool := newSlotPool(network, cfg, n)
	defer pool.close()

	clients := make([]*client, n)
	// reset (re)builds every client-held rng stream by replaying the
	// derivation order from a fresh root — the worker's freshly-started
	// state, which a Restore frame rewinds to before a history replay.
	reset := func() error {
		root := rng.New(cfg.Seed)
		_ = root.Derive("init", 0)
		for i, shard := range shards {
			clients[i] = &client{
				id:      i,
				data:    shard,
				sampler: dataset.NewSampler(shard, root.Derive("sampler", i)),
			}
		}
		_ = root.Derive("participation", 0)
		if cfg.Compress.Kind != compress.KindNone {
			codec, err := cfg.Compress.Codec()
			if err != nil {
				return fmt.Errorf("fl: %w", err)
			}
			comp := &compressor{codec: codec, streams: make([]*rng.RNG, n)}
			if cfg.isF32() {
				comp.resid32 = make([][]float32, n)
			} else {
				comp.resid = make([][]float64, n)
			}
			for i := range comp.streams {
				comp.streams[i] = root.Derive("compress", i)
			}
			pool.comp = comp
		}
		return nil
	}
	if err := reset(); err != nil {
		return err
	}

	w := &workerLoop{conn: conn, fp: fp, heartbeat: opt.HeartbeatSec, timeoutFactor: cfg.faultTimeoutFactor()}
	w.cond = sync.NewCond(&w.mu)

	hello := wire.BeginFrame(nil, wire.FrameHello)
	hello = appendHello(hello, fp, index, workers, opt.Attach)
	wire.EndFrame(hello, 0)
	if err := w.write(hello); err != nil {
		return fmt.Errorf("fl: sending hello: %w", err)
	}
	go w.readLoop()

	wbuf := hello
	updates := make([]Update, n)
	measured := make([]float64, n)
	for {
		m, ok := w.next()
		if !ok {
			break
		}
		if m.restore {
			if err := reset(); err != nil {
				return err
			}
			continue
		}
		k := len(m.ids)
		for _, id := range m.ids {
			if id < 0 || id >= n {
				return fmt.Errorf("fl: dispatched client %d outside fleet [0,%d)", id, n)
			}
		}
		if k > n {
			// A client is in flight at most once under every policy, so a
			// batch larger than the fleet is a protocol violation.
			return fmt.Errorf("fl: dispatch of %d clients exceeds fleet size %d", k, n)
		}
		if err := pool.runRound(&cfg, alg, clients, m.ids, m.round, 0, m.global, m.global, updates[:k], measured[:k]); err != nil {
			return err
		}
		if m.adopt {
			// Adopted history: the training advanced this worker's streams
			// (and EF residuals) exactly as the original run did; the server
			// already holds the results, so nothing is uploaded.
			for j := 0; j < k; j++ {
				pool.release(&updates[j])
			}
			continue
		}
		buf := wire.BeginFrame(wbuf[:0], wire.FrameUpdates)
		buf = wire.AppendUvarint(buf, uint64(k))
		for j := 0; j < k; j++ {
			buf = appendUpdateEntry(buf, &updates[j], measured[j])
		}
		wire.EndFrame(buf, 0)
		wbuf = buf
		w.waitResumed()
		if w.stopped() {
			// The run ended while this batch trained; the result is
			// abandoned, not sent (the server is only waiting for EOF).
			break
		}
		if err := w.write(buf); err != nil {
			return fmt.Errorf("fl: sending updates: %w", err)
		}
		for j := 0; j < k; j++ {
			pool.release(&updates[j])
		}
	}
	return w.readErr()
}

// workerLoop is RunWorker's connection state: the reader goroutine that
// turns incoming frames into an unbounded dispatch queue (unbounded so
// the reader NEVER blocks — a Resume frame must get through even while
// dispatches are queued, or a held worker would deadlock; depth is
// bounded in practice by the server's pipelining), and the Hold/Resume
// gate the training loop blocks on before each upload.
type workerLoop struct {
	conn          net.Conn
	fp            uint64
	heartbeat     float64
	timeoutFactor float64

	// wmu serializes frame writes: the training loop writes Hello/Updates
	// while the reader goroutine answers Pings with Pongs.
	wmu     sync.Mutex
	pongBuf []byte

	mu    sync.Mutex
	cond  *sync.Cond
	queue []*dispatchMsg
	done  bool
	held  bool
	// paused marks a Bye whose body flags an interrupted (not completed)
	// run; readErr surfaces it as ErrServerPaused.
	paused bool
	err    error
}

// write sends one pre-framed buffer under the write lock.
func (w *workerLoop) write(frame []byte) error {
	w.wmu.Lock()
	_, err := w.conn.Write(frame)
	w.wmu.Unlock()
	return err
}

// next pops the oldest queued dispatch, waiting for one; ok is false
// once the stream has ended (cleanly or not — readErr distinguishes).
// Dispatches still queued at that point are abandoned: Bye means the run
// completed, so the server has no use for their results.
func (w *workerLoop) next() (*dispatchMsg, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.queue) == 0 && !w.done {
		w.cond.Wait()
	}
	if w.done {
		return nil, false
	}
	m := w.queue[0]
	w.queue = w.queue[1:]
	return m, true
}

// waitResumed blocks while the server holds this worker. Bye releases
// the gate too: a held connection whose in-flight work the run abandoned
// gets no Resume.
func (w *workerLoop) waitResumed() {
	w.mu.Lock()
	for w.held && w.err == nil && !w.done {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// stopped reports whether the stream has ended.
func (w *workerLoop) stopped() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.done
}

// readErr reports why the job stream ended: nil after a clean Bye,
// ErrServerPaused after an interrupting one.
func (w *workerLoop) readErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil && w.paused {
		return ErrServerPaused
	}
	return w.err
}

// fail records the terminal error and releases the training loop.
func (w *workerLoop) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.done = true
	w.held = false
	w.cond.Broadcast()
	w.mu.Unlock()
}

// readLoop decodes incoming frames until the stream ends. Dispatches and
// the failover frames (Adopt, Restore) queue up behind the training loop
// (the queue preserves the server's per-client replay order); Hold/
// Resume flip the upload gate; Ping is answered immediately; Bye ends
// the stream cleanly.
func (w *workerLoop) readLoop() {
	var fr wire.Frame
	for {
		if w.heartbeat > 0 {
			deadline := time.Duration(w.timeoutFactor * w.heartbeat * float64(time.Second))
			_ = w.conn.SetReadDeadline(time.Now().Add(deadline))
		}
		if err := wire.ReadFrame(w.conn, &fr); err != nil {
			w.fail(fmt.Errorf("fl: reading from server: %w", err))
			return
		}
		switch fr.Type {
		case wire.FrameDispatch, wire.FrameAdopt:
			m, err := parseDispatch(fr.Body)
			if err != nil {
				w.fail(err)
				return
			}
			m.adopt = fr.Type == wire.FrameAdopt
			w.mu.Lock()
			w.queue = append(w.queue, m)
			w.cond.Broadcast()
			w.mu.Unlock()
		case wire.FrameRestore:
			w.mu.Lock()
			w.queue = append(w.queue, &dispatchMsg{restore: true})
			w.cond.Broadcast()
			w.mu.Unlock()
		case wire.FramePing:
			w.wmu.Lock()
			var err error
			w.pongBuf, err = wire.WriteFrame(w.conn, wire.FramePong, nil, w.pongBuf)
			w.wmu.Unlock()
			if err != nil {
				w.fail(fmt.Errorf("fl: answering ping: %w", err))
				return
			}
		case wire.FrameHold:
			w.mu.Lock()
			w.held = true
			w.mu.Unlock()
		case wire.FrameResume:
			w.mu.Lock()
			w.held = false
			w.cond.Broadcast()
			w.mu.Unlock()
		case wire.FrameBye:
			w.mu.Lock()
			w.paused = len(fr.Body) > 0 && fr.Body[0] == byePausing
			w.done = true
			w.cond.Broadcast()
			w.mu.Unlock()
			return
		case wire.FrameReject:
			w.fail(fmt.Errorf("fl: server rejected worker (this worker's config fingerprint %016x): %s", w.fp, fr.Body))
			return
		default:
			w.fail(fmt.Errorf("fl: unexpected frame type %d from server", fr.Type))
			return
		}
	}
}
