package fl

import (
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/wire"
)

// ServeOptions configures the socket-backed server side of a wire run.
type ServeOptions struct {
	// Workers is the number of worker processes that will connect. Each
	// worker w initially owns the contiguous client range
	// [w·n/W, (w+1)·n/W); failover may move clients between workers.
	Workers int
	// IntakeBound caps, per connection, the updates that have arrived but
	// not yet been consumed by the scheduler before the server sends a
	// Hold frame (explicit backpressure; a Resume follows once the
	// scheduler drains the backlog). 0 means 256.
	IntakeBound int
	// HeartbeatSec is the liveness probe cadence: the server Pings every
	// live connection at this interval and severs one that has been
	// silent for Config.FaultTimeoutFactor (default 3) heartbeats,
	// routing it through failover instead of hanging on a read forever.
	// 0 means 5 seconds; negative disables supervision.
	HeartbeatSec float64
	// FailoverGraceSec is how long failover waits for a dead worker's
	// index to re-dial (a Hello with a positive attach counter) before
	// falling back to reassignment or loss; 0 admits only a reconnect
	// that is already parked.
	FailoverGraceSec float64
	// DisableReassign pins every client to its original worker index:
	// when that worker dies and no reconnect arrives within the grace
	// period, its in-flight dispatches are marked lost — the round
	// commits Degraded through the quorum path — until it re-attaches.
	DisableReassign bool
	// DisableFailover restores the strict pre-failover behavior: any
	// worker connection error aborts the run.
	DisableFailover bool
	// Interrupt, when non-nil, stops the run gracefully at the next round
	// boundary after the channel closes: a final checkpoint is taken when
	// checkpointing is armed, the result carries HaltReason
	// "interrupted", and workers receive a pausing Bye (ErrServerPaused)
	// telling them to re-attach once the server restarts (ServeResume).
	Interrupt <-chan struct{}
}

// serveObserve is a test hook: when set, Serve hands it the live remote
// executor so backpressure tests can read the Hold count.
var serveObserve func(*remoteExec)

func (o ServeOptions) intakeBound() int {
	if o.IntakeBound > 0 {
		return o.IntakeBound
	}
	return 256
}

func (o ServeOptions) heartbeat() float64 {
	if o.HeartbeatSec < 0 {
		return 0
	}
	if o.HeartbeatSec == 0 {
		return 5
	}
	return o.HeartbeatSec
}

func (o ServeOptions) grace() float64 {
	if o.FailoverGraceSec > 0 {
		return o.FailoverGraceSec
	}
	return 0
}

// Serve runs a federated training run with local computation executed by
// socket-connected worker processes (cmd/flserver) instead of in-process
// goroutines. It accepts exactly opt.Workers connections from ln, checks
// each worker's config fingerprint, and then drives the ordinary
// event-driven scheduler with a remote executor: dispatches serialize
// the global model to the owning worker, replies stream back through a
// bounded per-connection intake with Hold/Resume backpressure, and under
// the async policy the next dispatch overlaps aggregation and
// evaluation of earlier rounds.
//
// The run is bit-identical to fl.Run with the same arguments — final
// weights, per-round losses, accuracies, and uplink accounting — because
// workers replay the exact rng derivation order of the in-process engine
// (worker.go) and every scheduling decision stays on the server. Only
// measured wall times differ (they are real observations either way).
// Configurations the wire cannot execute faithfully are rejected up
// front (validateWire).
//
// Worker failure is survived, not fatal (DESIGN.md §12): a connection
// that errors, times out under the heartbeat, or sends a bad frame is
// closed and its clients re-homed — onto the same worker if it re-dials
// within FailoverGraceSec (full history replay rebuilds its rng streams
// bit-exactly), onto the lowest-index survivor otherwise. A fully
// recovered run stays bit-identical to fl.Run; when nobody can take the
// clients their in-flight dispatches are dropped through the quorum
// path and the round commits Degraded.
func Serve(ln net.Listener, opt ServeOptions, cfg Config, alg Algorithm, network *nn.Network, shards []*dataset.Dataset, test *dataset.Dataset) (*Result, error) {
	s, ex, err := newServeScheduler(ln, opt, cfg, alg, network, shards, test)
	if err != nil {
		return nil, err
	}
	defer ex.close()
	if err := s.runAll(false); err != nil {
		return nil, err
	}
	return s.result(), nil
}

// ServeResume is Serve continuing from a checkpoint written by a wire
// run (Config.OnCheckpoint under Serve): it accepts the worker fleet,
// restores the scheduler and the dispatch history, rebuilds every
// worker's rng streams by a Restore-plus-replay of that history, and
// runs the remaining rounds — bit-identical to the uninterrupted run.
// Workers may be the original processes re-attaching (cmd/flserver
// -reattach) or fresh ones; either way they start from a clean slate
// and the replay brings them to the checkpoint state.
func ServeResume(ln net.Listener, opt ServeOptions, checkpoint []byte, cfg Config, alg Algorithm, network *nn.Network, shards []*dataset.Dataset, test *dataset.Dataset) (*Result, error) {
	s, ex, err := newServeScheduler(ln, opt, cfg, alg, network, shards, test)
	if err != nil {
		return nil, err
	}
	defer ex.close()
	if err := s.restore(checkpoint, true); err != nil {
		return nil, err
	}
	if err := ex.resyncWorkers(); err != nil {
		return nil, err
	}
	if err := s.runAll(true); err != nil {
		return nil, err
	}
	return s.result(), nil
}

// newServeScheduler is the shared front half of Serve and ServeResume:
// validation, the remote scheduler, the executor, and the worker fleet.
func newServeScheduler(ln net.Listener, opt ServeOptions, cfg Config, alg Algorithm, network *nn.Network, shards []*dataset.Dataset, test *dataset.Dataset) (*scheduler, *remoteExec, error) {
	if opt.Workers <= 0 {
		return nil, nil, fmt.Errorf("fl: ServeOptions.Workers %d must be positive", opt.Workers)
	}
	if err := validateWire(&cfg, alg); err != nil {
		return nil, nil, err
	}
	fp := serveFingerprint(&cfg, alg.Name(), test.Name, len(shards), network.NumParams())
	s, err := newSchedulerExec(cfg, alg, network, shards, test, true)
	if err != nil {
		return nil, nil, err
	}
	ex := newRemoteExec(s.pool, cfg.Compress, len(shards), network.NumParams(), opt, cfg.faultTimeoutFactor())
	if err := ex.accept(ln, fp); err != nil {
		ex.close()
		return nil, nil, err
	}
	ex.start()
	s.exec = ex
	s.interrupt = opt.Interrupt
	if serveObserve != nil {
		serveObserve(ex)
	}
	return s, ex, nil
}

// serveConn is one worker connection on the server side.
type serveConn struct {
	c     net.Conn
	index int
	// lastRecv is the unix-nano time of the last frame read from this
	// connection (atomic; the heartbeat supervisor reads it).
	lastRecv int64
	// wmu serializes frame writes: the scheduler goroutine writes
	// Dispatch/Resume/Bye while an ingest goroutine may write Hold, the
	// supervisor Pings, and recovery replays history.
	wmu  sync.Mutex
	wbuf []byte
	// held, unsettled, and dead are guarded by remoteExec.mu. dead is
	// additionally stable while remoteExec.recoverMu is held: the only
	// writer (workerDown) holds both.
	held      bool
	unsettled int
	dead      bool
}

// write sends one pre-framed buffer.
func (sc *serveConn) write(frame []byte) error {
	sc.wmu.Lock()
	_, err := sc.c.Write(frame)
	sc.wmu.Unlock()
	return err
}

// writeEmpty sends a body-less frame of the given type.
func (sc *serveConn) writeEmpty(t wire.FrameType) error {
	sc.wmu.Lock()
	var err error
	sc.wbuf, err = wire.WriteFrame(sc.c, t, nil, sc.wbuf)
	sc.wmu.Unlock()
	return err
}

// remoteExec implements the executor seam over worker sockets. runRound
// checks ring entries out for every dispatched client, registers them as
// pending, and serializes one Dispatch frame per owning connection —
// then returns, leaving the results in flight. Per-connection reader
// goroutines decode Updates frames straight into the pending ring
// entries; settle/settleOne block until the needed entries have landed
// and backfill TrainLoss and the measured wall time from the ring
// (update structs were copied at dispatch time, so the ring entry is the
// only stable rendezvous).
//
// The failover substrate (DESIGN.md §12) rides on two records the
// executor keeps per run: hist, each client's full dispatch history
// (ascending rounds), and globals, the exact global-model bits of every
// dispatched round. Together they let the server rebuild ANY worker
// from a cold start — reset it (FrameRestore) and replay its clients'
// histories as train-and-discard batches (FrameAdopt) — which is the
// one mechanism behind reconnect re-admission, cross-worker adoption,
// and checkpointed restart. The memory cost is O(T·d) for globals plus
// O(total dispatches) for hist, the price of replayability.
type remoteExec struct {
	ring      *slotPool
	codec     compress.Codec // nil for dense transport
	wantForm  compress.Kind  // payload form every upload must carry
	numParams int
	bound     int
	fp        uint64
	ln        net.Listener

	hb            float64 // heartbeat cadence in seconds, 0 disabled
	timeoutFactor float64 // silence budget in heartbeats before severing
	grace         float64
	noReassign    bool
	noFailover    bool

	// recoverMu serializes failure recovery (owner transfer + history
	// replay) against dispatch-frame writes: runRound holds it across
	// its writes so a replay can never interleave with a new dispatch
	// for the same client, which would corrupt the worker's stream
	// replay order.
	recoverMu sync.Mutex

	conns []*serveConn
	owner []int // client id -> index into conns (writes hold recoverMu AND mu)

	mu       sync.Mutex
	cond     *sync.Cond
	pend     []*upload // client id -> in-flight ring entry (nil when none)
	arrived  []bool    // client id -> reply landed
	err      error
	closed   bool
	pausing  bool
	holds    int    // Hold frames sent (observability + backpressure tests)
	lostConn []bool // index -> worker lost with failover exhausted
	hist     [][]int
	globals  map[int][]float64
	// reassigned/reconnects accumulate between drainRecovery calls (the
	// scheduler drains them into each round record).
	reassigned int
	reconnects int

	reconnect []chan *serveConn // parked validated reconnects, per index
	closeCh   chan struct{}

	dispatchBuf []byte
	replayBuf   []byte
	replayID    [1]int
	readers     sync.WaitGroup
	acceptWG    sync.WaitGroup
}

// newRemoteExec builds the executor shell; accept wires the connections.
func newRemoteExec(ring *slotPool, spec compress.Spec, numClients, numParams int, opt ServeOptions, timeoutFactor float64) *remoteExec {
	e := &remoteExec{
		ring:          ring,
		wantForm:      spec.Kind,
		numParams:     numParams,
		bound:         opt.intakeBound(),
		hb:            opt.heartbeat(),
		timeoutFactor: timeoutFactor,
		grace:         opt.grace(),
		noReassign:    opt.DisableReassign,
		noFailover:    opt.DisableFailover,
		conns:         make([]*serveConn, opt.Workers),
		owner:         make([]int, numClients),
		pend:          make([]*upload, numClients),
		arrived:       make([]bool, numClients),
		lostConn:      make([]bool, opt.Workers),
		hist:          make([][]int, numClients),
		globals:       make(map[int][]float64),
		reconnect:     make([]chan *serveConn, opt.Workers),
		closeCh:       make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	if ring.comp != nil {
		e.codec = ring.comp.codec
	}
	w := opt.Workers
	for i := 0; i < w; i++ {
		for id := i * numClients / w; id < (i+1)*numClients/w; id++ {
			e.owner[id] = i
		}
	}
	for i := range e.reconnect {
		e.reconnect[i] = make(chan *serveConn, 1)
	}
	return e
}

// accept takes opt.Workers connections off ln, validates each Hello
// against the run fingerprint, and starts the reader goroutines.
// I/O-level Hello failures (a reset or truncated frame from a flaky
// path) drop the connection and keep listening; semantic rejections —
// wrong fingerprint, bad index, duplicate — abort, since the fleet is
// misconfigured.
func (e *remoteExec) accept(ln net.Listener, fp uint64) error {
	e.ln = ln
	e.fp = fp
	for got := 0; got < len(e.conns); {
		c, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("fl: accepting worker %d/%d: %w", got, len(e.conns), err)
		}
		fatal, err := e.admit(c, false)
		if err != nil {
			if fatal {
				return err
			}
			continue
		}
		got++
	}
	for _, sc := range e.conns {
		e.readers.Add(1)
		go e.readLoop(sc)
	}
	return nil
}

// start launches the background services: the reconnect accept loop and
// the heartbeat supervisor.
func (e *remoteExec) start() {
	if e.hb > 0 {
		go e.supervise()
	}
	e.acceptWG.Add(1)
	go func() {
		defer e.acceptWG.Done()
		for {
			c, err := e.ln.Accept()
			if err != nil {
				if e.isClosed() {
					return
				}
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					continue
				}
				return
			}
			go func() { _, _ = e.admit(c, true) }()
		}
	}()
}

// admit validates one inbound connection's Hello. During initial accept
// (running false) it installs the worker into the fleet; during the run
// it parks the validated connection for failover to re-admit. fatal
// reports a semantic rejection that should abort initial accept.
func (e *remoteExec) admit(c net.Conn, running bool) (fatal bool, err error) {
	_ = c.SetReadDeadline(time.Now().Add(10 * time.Second))
	var fr wire.Frame
	if err := wire.ReadFrame(c, &fr); err != nil {
		c.Close()
		return false, fmt.Errorf("fl: reading hello: %w", err)
	}
	_ = c.SetReadDeadline(time.Time{})
	reject := func(format string, args ...any) error {
		msg := fmt.Sprintf(format, args...)
		_, _ = wire.WriteFrame(c, wire.FrameReject, []byte(msg), nil)
		c.Close()
		return fmt.Errorf("fl: %s", msg)
	}
	if fr.Type != wire.FrameHello {
		return true, reject("expected hello, got frame type %d", fr.Type)
	}
	gotFP, index, workers, _, err := parseHello(fr.Body)
	if err != nil {
		return true, reject("bad hello: %v", err)
	}
	switch {
	case workers != len(e.conns):
		return true, reject("worker expects %d workers, server has %d", workers, len(e.conns))
	case index < 0 || index >= len(e.conns):
		return true, reject("worker index %d out of range [0,%d)", index, len(e.conns))
	case gotFP != e.fp:
		return true, reject("config fingerprint mismatch: worker %016x, server %016x", gotFP, e.fp)
	}
	sc := &serveConn{c: c, index: index, lastRecv: time.Now().UnixNano()}
	if !running {
		if e.conns[index] != nil {
			return true, reject("duplicate worker index %d", index)
		}
		e.conns[index] = sc
		return false, nil
	}
	e.park(sc)
	return false, nil
}

// park stages a validated reconnect for its index, replacing (and
// closing) any stale candidate already waiting there.
func (e *remoteExec) park(sc *serveConn) {
	for {
		select {
		case e.reconnect[sc.index] <- sc:
			return
		default:
		}
		select {
		case old := <-e.reconnect[sc.index]:
			old.c.Close()
		default:
		}
	}
}

// isClosed reports whether close has begun.
func (e *remoteExec) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// setPausing marks the shutdown as a pause: close sends Bye with the
// pausing body so workers return ErrServerPaused and re-attach later.
func (e *remoteExec) setPausing() {
	e.mu.Lock()
	e.pausing = true
	e.mu.Unlock()
}

// fail records the first error and wakes every waiter.
func (e *remoteExec) fail(err error) error {
	e.mu.Lock()
	if e.err == nil && !e.closed {
		e.err = err
	}
	err = e.err
	e.cond.Broadcast()
	e.mu.Unlock()
	if err == nil {
		err = fmt.Errorf("fl: server shutting down")
	}
	return err
}

// drainRecovery returns and resets the recovery counters accumulated
// since the last drain; the scheduler folds them into the round record.
func (e *remoteExec) drainRecovery() (reassigned, reconnects int) {
	e.mu.Lock()
	reassigned, reconnects = e.reassigned, e.reconnects
	e.reassigned, e.reconnects = 0, 0
	e.mu.Unlock()
	return reassigned, reconnects
}

// supervise is the heartbeat loop: every hb seconds it Pings each live
// connection and severs one whose last inbound frame is older than
// timeoutFactor heartbeats. Severing just closes the socket — the
// connection's readLoop observes the error and failover takes over, so
// liveness policy and recovery policy stay in one place.
func (e *remoteExec) supervise() {
	interval := time.Duration(e.hb * float64(time.Second))
	timeout := time.Duration(e.timeoutFactor * e.hb * float64(time.Second))
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-e.closeCh:
			return
		case <-t.C:
		}
		e.mu.Lock()
		conns := append([]*serveConn(nil), e.conns...)
		for i, sc := range conns {
			if sc != nil && sc.dead {
				conns[i] = nil
			}
		}
		e.mu.Unlock()
		now := time.Now().UnixNano()
		for _, sc := range conns {
			if sc == nil {
				continue
			}
			if now-atomic.LoadInt64(&sc.lastRecv) > int64(timeout) {
				// Silent past the budget: sever; readLoop recovers.
				sc.c.Close()
				continue
			}
			_ = sc.writeEmpty(wire.FramePing)
		}
	}
}

// runRound implements executor: register pending ring entries and write
// one Dispatch frame per owning connection, without waiting for results.
// It also appends each dispatch to the replay history and snapshots the
// round's global once. Targets that are already down get their entries
// marked lost immediately (no history entry — the batch was never sent);
// a write failure mid-round closes that connection and leaves its
// entries pending for failover to re-dispatch.
func (e *remoteExec) runRound(cfg *Config, alg Algorithm, clients []*client, ids []int, round int, now float64, global, prevGlobal []float64, updates []Update, measured []float64) error {
	e.recoverMu.Lock()
	defer e.recoverMu.Unlock()
	e.mu.Lock()
	if e.err != nil {
		err := e.err
		e.mu.Unlock()
		return err
	}
	for j, id := range ids {
		u := e.ring.getUpload()
		updates[j] = Update{
			Client:     id,
			Delta:      u.delta,
			NumSamples: clients[id].data.Len(),
			ring:       u,
		}
		if e.ring.comp != nil {
			updates[j].Payload = &u.pay
		}
		e.pend[id] = u
		e.arrived[id] = false
	}
	lostAny, sentAny := false, false
	for _, id := range ids {
		ci := e.owner[id]
		if sc := e.conns[ci]; sc == nil || sc.dead || e.lostConn[ci] {
			e.pend[id].lost = true
			lostAny = true
			continue
		}
		e.hist[id] = append(e.hist[id], round)
		sentAny = true
	}
	if sentAny {
		if _, ok := e.globals[round]; !ok {
			e.globals[round] = append(make([]float64, 0, len(global)), global...)
		}
	}
	if lostAny {
		e.cond.Broadcast()
	}
	e.mu.Unlock()

	// owner and conn liveness are stable below: every writer holds
	// recoverMu, which we hold for the rest of the call.
	for ci, sc := range e.conns {
		if sc == nil || sc.dead || e.lostConn[ci] {
			continue
		}
		cnt := 0
		for _, id := range ids {
			if e.owner[id] == ci {
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		buf := wire.BeginFrame(e.dispatchBuf[:0], wire.FrameDispatch)
		buf = wire.AppendUvarint(buf, uint64(round))
		buf = wire.AppendUvarint(buf, uint64(cnt))
		for _, id := range ids {
			if e.owner[id] == ci {
				buf = wire.AppendUvarint(buf, uint64(id))
			}
		}
		buf = wire.AppendUvarint(buf, uint64(len(global)))
		for _, v := range global {
			buf = wire.AppendF64(buf, v)
		}
		wire.EndFrame(buf, 0)
		e.dispatchBuf = buf
		if err := sc.write(buf); err != nil {
			if e.noFailover {
				return e.fail(fmt.Errorf("fl: dispatch to worker %d: %w", ci, err))
			}
			// Sever and move on: the readLoop observes the closed socket
			// and failover re-dispatches the still-pending entries.
			sc.c.Close()
		}
	}
	return nil
}

// settle implements executor: wait for the whole round's replies.
func (e *remoteExec) settle(updates []Update, measured []float64) error {
	for j := range updates {
		if err := e.settleOne(&updates[j], &measured[j]); err != nil {
			return err
		}
	}
	return nil
}

// settleOne implements executor: wait for one update's reply, then copy
// its train loss and measured time out of the ring entry. Liveness under
// backpressure: the server never sleeps waiting on a connection it is
// itself holding — the Hold is lifted first, since the scheduler is by
// definition ready to consume again. The owning connection is re-read
// every iteration (failover may move the client mid-wait), and an entry
// marked lost settles immediately with its ring entry's lost flag set
// for the scheduler's quorum path to compact away.
func (e *remoteExec) settleOne(u *Update, measured *float64) error {
	if u.ring == nil {
		return nil
	}
	id := u.Client
	e.mu.Lock()
	for e.err == nil && e.pend[id] != nil && !e.arrived[id] && !e.pend[id].lost {
		if sc := e.conns[e.owner[id]]; sc != nil && sc.held && !sc.dead {
			e.resumeLocked(sc)
		}
		e.cond.Wait()
	}
	if e.err != nil {
		err := e.err
		e.mu.Unlock()
		return err
	}
	if ring := e.pend[id]; ring != nil {
		e.pend[id] = nil
		if e.arrived[id] {
			e.arrived[id] = false
			u.TrainLoss = ring.loss
			if measured != nil {
				*measured = ring.measured
			}
			if via := ring.via; via != nil {
				via.unsettled--
				if via.held && !via.dead && via.unsettled <= e.bound/2 {
					e.resumeLocked(via)
				}
			}
		} else {
			// Lost: no result ever arrived. The ring entry keeps its lost
			// flag; the scheduler compacts the update out before
			// aggregation and releases the entry.
			u.TrainLoss = math.NaN()
			if measured != nil {
				*measured = 0
			}
		}
	}
	e.mu.Unlock()
	return nil
}

// resumeLocked lifts a connection's Hold (e.mu held).
func (e *remoteExec) resumeLocked(sc *serveConn) {
	sc.held = false
	if err := sc.writeEmpty(wire.FrameResume); err != nil && e.err == nil && !e.closed && e.noFailover {
		e.err = fmt.Errorf("fl: resume to worker %d: %w", sc.index, err)
	}
}

// release implements executor.
func (e *remoteExec) release(u *Update) { e.ring.release(u) }

// close implements executor: send Bye (with the pausing body when the
// run was interrupted) and wait for each worker to drain and close its
// end (a run can finish with dispatches still in flight — under async
// the round budget ends mid-pipeline — and closing first would RST the
// worker's final reply mid-write). The read deadline bounds the wait if
// a worker never drains.
func (e *remoteExec) close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	pausing := e.pausing
	e.cond.Broadcast()
	e.mu.Unlock()
	close(e.closeCh)
	if e.ln != nil {
		if d, ok := e.ln.(interface{ SetDeadline(time.Time) error }); ok {
			_ = d.SetDeadline(time.Now())
			e.acceptWG.Wait()
		}
	}
	var byeBody []byte
	if pausing {
		byeBody = []byte{byePausing}
	}
	for _, sc := range e.conns {
		if sc == nil {
			continue
		}
		e.mu.Lock()
		dead := sc.dead
		e.mu.Unlock()
		if dead {
			continue
		}
		sc.wmu.Lock()
		sc.wbuf, _ = wire.WriteFrame(sc.c, wire.FrameBye, byeBody, sc.wbuf)
		sc.wmu.Unlock()
		_ = sc.c.SetReadDeadline(time.Now().Add(30 * time.Second))
	}
	e.readers.Wait()
	for _, sc := range e.conns {
		if sc != nil {
			sc.c.Close()
		}
	}
	for _, ch := range e.reconnect {
		select {
		case sc := <-ch:
			sc.c.Close()
		default:
		}
	}
	e.ring.close()
}

// Holds reports how many Hold frames the server sent (backpressure
// observability; the loopback tests assert it).
func (e *remoteExec) Holds() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.holds
}

// readLoop drains one worker's frames, ingesting Updates bodies straight
// into the pending ring entries. Any error — a broken socket, a bad
// frame, a protocol violation — hands the connection to failover
// (workerDown) instead of aborting the run, unless failover is disabled.
func (e *remoteExec) readLoop(sc *serveConn) {
	defer e.readers.Done()
	var fr wire.Frame
	var scratch compress.Payload // dense staging for uncompressed runs
	for {
		if err := wire.ReadFrame(sc.c, &fr); err != nil {
			if e.isClosed() {
				return
			}
			e.down(sc, err)
			return
		}
		atomic.StoreInt64(&sc.lastRecv, time.Now().UnixNano())
		switch fr.Type {
		case wire.FrameUpdates:
			if err := e.ingest(sc, fr.Body, &scratch); err != nil {
				e.down(sc, err)
				return
			}
		case wire.FramePong:
			// Liveness only; lastRecv above is the whole point.
		default:
			e.down(sc, fmt.Errorf("worker %d sent unexpected frame type %d", sc.index, fr.Type))
			return
		}
	}
}

// down routes a connection failure: fatal without failover, recovered
// otherwise.
func (e *remoteExec) down(sc *serveConn, cause error) {
	if e.noFailover {
		e.fail(fmt.Errorf("fl: worker %d: %w", sc.index, cause))
		return
	}
	e.workerDown(sc, cause)
}

// workerDown marks a connection dead and re-homes its clients. It runs
// on the connection's own reader goroutine — the single place a failure
// can be observed exactly once — and recoverMu serializes it against
// concurrent dispatches and other recoveries.
func (e *remoteExec) workerDown(sc *serveConn, cause error) {
	_ = cause
	e.recoverMu.Lock()
	defer e.recoverMu.Unlock()
	e.mu.Lock()
	if e.closed || e.err != nil || sc.dead {
		e.mu.Unlock()
		return
	}
	sc.dead = true
	sc.held = false
	e.cond.Broadcast()
	e.mu.Unlock()
	sc.c.Close()
	e.recoverIndex(sc.index)
}

// recoverIndex re-homes index's clients (recoverMu held): re-admit a
// reconnecting worker if one arrives within the grace period, otherwise
// adopt the clients onto a survivor, otherwise mark them lost — a state
// a late reconnect can still clear.
func (e *remoteExec) recoverIndex(index int) {
	for {
		if nc := e.awaitReconnect(index); nc != nil {
			if e.readmit(nc) == nil {
				return
			}
			// The replacement died during replay; wait for another.
			continue
		}
		if !e.noReassign {
			if tgt := e.liveConn(index); tgt != nil {
				// Transfer happens before the replay write, so even if tgt
				// dies mid-adoption its own recovery re-homes the adopted
				// clients along with its native ones.
				_ = e.reassign(index, tgt)
				return
			}
		}
		e.markLost(index)
		return
	}
}

// awaitReconnect waits up to the grace period for a validated reconnect
// of the given index; zero grace admits only an already-parked one.
func (e *remoteExec) awaitReconnect(index int) *serveConn {
	if e.grace <= 0 {
		select {
		case nc := <-e.reconnect[index]:
			return nc
		default:
			return nil
		}
	}
	t := time.NewTimer(time.Duration(e.grace * float64(time.Second)))
	defer t.Stop()
	select {
	case nc := <-e.reconnect[index]:
		return nc
	case <-t.C:
		return nil
	case <-e.closeCh:
		return nil
	}
}

// liveConn returns the lowest-index live connection other than not
// (deterministic adoption target), or nil when none survives.
func (e *remoteExec) liveConn(not int) *serveConn {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, sc := range e.conns {
		if i == not || sc == nil || sc.dead || e.lostConn[i] {
			continue
		}
		return sc
	}
	return nil
}

// readmit installs a reconnected worker (recoverMu held): replace the
// dead connection, reset the worker, replay its clients' full dispatch
// histories to rebuild its rng streams bit-exactly, re-dispatch its
// in-flight batches live, and start a reader.
func (e *remoteExec) readmit(nc *serveConn) error {
	idx := nc.index
	e.mu.Lock()
	e.conns[idx] = nc
	e.lostConn[idx] = false
	e.reconnects++
	var ids []int
	live := 0
	for id := range e.owner {
		if e.owner[id] != idx {
			continue
		}
		ids = append(ids, id)
		if e.pend[id] != nil && !e.arrived[id] && !e.pend[id].lost {
			live++
		}
	}
	e.reassigned += live
	e.mu.Unlock()
	if err := e.replayTo(nc, ids, true); err != nil {
		e.mu.Lock()
		nc.dead = true
		e.mu.Unlock()
		nc.c.Close()
		return err
	}
	atomic.StoreInt64(&nc.lastRecv, time.Now().UnixNano())
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		nc.c.Close()
		return nil
	}
	e.readers.Add(1)
	e.mu.Unlock()
	go e.readLoop(nc)
	return nil
}

// reassign adopts a dead worker's clients onto tgt (recoverMu held):
// ownership moves first, then tgt replays the transferred clients'
// histories (no Restore — tgt keeps its own live state; the transferred
// clients' streams start from zero on it, exactly what the full replay
// expects) with their in-flight batches re-dispatched live at the end.
func (e *remoteExec) reassign(index int, tgt *serveConn) error {
	e.mu.Lock()
	var ids []int
	live := 0
	for id := range e.owner {
		if e.owner[id] != index {
			continue
		}
		e.owner[id] = tgt.index
		ids = append(ids, id)
		if e.pend[id] != nil && !e.arrived[id] && !e.pend[id].lost {
			live++
		}
	}
	e.reassigned += live
	e.mu.Unlock()
	if err := e.replayTo(tgt, ids, false); err != nil {
		// tgt broke mid-adoption: sever it and let its own readLoop
		// recover everything it now owns, adopted clients included.
		tgt.c.Close()
		return err
	}
	return nil
}

// markLost gives up on index for now: in-flight dispatches to it settle
// as lost (the scheduler's quorum path decides whether the run degrades
// or halts), new dispatches to its clients are lost immediately, and a
// watcher re-admits the worker whenever it finally re-dials.
func (e *remoteExec) markLost(index int) {
	e.mu.Lock()
	e.lostConn[index] = true
	for id := range e.owner {
		if e.owner[id] == index && e.pend[id] != nil && !e.arrived[id] {
			e.pend[id].lost = true
		}
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	go e.watchRejoin(index)
}

// watchRejoin waits indefinitely for a lost worker index to re-dial and
// re-admits it (late recovery: rounds in between commit Degraded).
func (e *remoteExec) watchRejoin(index int) {
	for {
		var nc *serveConn
		select {
		case nc = <-e.reconnect[index]:
		case <-e.closeCh:
			return
		}
		e.recoverMu.Lock()
		closed := e.isClosed()
		var err error
		if !closed {
			err = e.readmit(nc)
		}
		e.recoverMu.Unlock()
		if closed {
			nc.c.Close()
			return
		}
		if err == nil {
			return
		}
	}
}

// replayTo rebuilds a worker's training state from the dispatch record
// (recoverMu held): optionally a Restore (reset to the freshly-started
// state), then each client's history in per-client ascending-round
// order — Adopt (train and discard) for settled batches, a live
// Dispatch for the one still in flight. Per-client order is the only
// order that matters: rng streams and EF residuals are per-client, so
// interleaving across clients is free and batches are replayed one
// client at a time. The write deadline bounds a wedged target so
// recovery cannot hang the run.
func (e *remoteExec) replayTo(sc *serveConn, ids []int, restore bool) error {
	_ = sc.c.SetWriteDeadline(time.Now().Add(60 * time.Second))
	defer sc.c.SetWriteDeadline(time.Time{})
	if restore {
		if err := sc.writeEmpty(wire.FrameRestore); err != nil {
			return err
		}
	}
	for _, id := range ids {
		e.mu.Lock()
		h := e.hist[id]
		liveLast := e.pend[id] != nil && !e.arrived[id] && !e.pend[id].lost
		e.mu.Unlock()
		for k, round := range h {
			t := wire.FrameAdopt
			if liveLast && k == len(h)-1 {
				t = wire.FrameDispatch
			}
			g := e.globals[round]
			if g == nil {
				return fmt.Errorf("fl: no recorded global for round %d (replay of client %d)", round, id)
			}
			e.replayID[0] = id
			buf := wire.BeginFrame(e.replayBuf[:0], t)
			buf = appendDispatch(buf, round, e.replayID[:1], g)
			wire.EndFrame(buf, 0)
			e.replayBuf = buf
			if err := sc.write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// resyncWorkers rebuilds every live worker from the just-restored
// dispatch history — the worker half of a checkpoint restore. Restore
// rewinds each worker to its freshly-started state; the replay marches
// it forward to exactly the checkpoint's stream cursors and residuals,
// so the re-executed rounds are bit-identical to the lost ones. Workers
// that are down stay lost (a later reconnect replays the restored
// history instead).
func (e *remoteExec) resyncWorkers() error {
	e.recoverMu.Lock()
	defer e.recoverMu.Unlock()
	for ci, sc := range e.conns {
		if sc == nil || sc.dead || e.lostConn[ci] {
			continue
		}
		var ids []int
		e.mu.Lock()
		for id := range e.owner {
			if e.owner[id] == ci {
				ids = append(ids, id)
			}
		}
		e.mu.Unlock()
		if err := e.replayTo(sc, ids, true); err != nil {
			if e.noFailover {
				return fmt.Errorf("fl: resyncing worker %d: %w", ci, err)
			}
			sc.c.Close()
		}
	}
	return nil
}

// writeWireState serializes the dispatch record (per-client histories
// plus the recorded globals) — the executor's contribution to a run
// checkpoint, and what makes a checkpointed server restart able to
// rebuild workers.
func (e *remoteExec) writeWireState(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := ckpt.WriteInt(w, len(e.hist)); err != nil {
		return err
	}
	for _, h := range e.hist {
		if err := ckpt.WriteInts(w, h); err != nil {
			return err
		}
	}
	rounds := make([]int, 0, len(e.globals))
	for t := range e.globals {
		rounds = append(rounds, t)
	}
	sort.Ints(rounds)
	if err := ckpt.WriteInt(w, len(rounds)); err != nil {
		return err
	}
	for _, t := range rounds {
		if err := ckpt.WriteInt(w, t); err != nil {
			return err
		}
		if err := ckpt.WriteF64s(w, e.globals[t]); err != nil {
			return err
		}
	}
	return nil
}

// readWireState restores the dispatch record written by writeWireState,
// replacing the live one (checkpoint truncation is automatic: the blob
// only holds dispatches from before the snapshot).
func (e *remoteExec) readWireState(r io.Reader) error {
	n, err := ckpt.ReadInt(r)
	if err != nil {
		return err
	}
	if n != len(e.hist) {
		return fmt.Errorf("%d dispatch histories for %d clients", n, len(e.hist))
	}
	hist := make([][]int, n)
	for i := range hist {
		if hist[i], err = ckpt.ReadInts(r); err != nil {
			return err
		}
	}
	ng, err := ckpt.ReadInt(r)
	if err != nil {
		return err
	}
	if ng < 0 || ng > ckpt.MaxElems {
		return fmt.Errorf("recorded-global count %d out of range", ng)
	}
	globals := make(map[int][]float64, ng)
	for i := 0; i < ng; i++ {
		t, err := ckpt.ReadInt(r)
		if err != nil {
			return err
		}
		g, err := ckpt.ReadF64s(r)
		if err != nil {
			return err
		}
		if len(g) != e.numParams {
			return fmt.Errorf("recorded global for round %d has %d params, want %d", t, len(g), e.numParams)
		}
		globals[t] = g
	}
	e.mu.Lock()
	e.hist = hist
	e.globals = globals
	e.mu.Unlock()
	return nil
}

// ingest decodes one Updates frame into the pending ring entries. The
// payload decodes outside the lock — the settle contract guarantees the
// scheduler does not touch a pending entry's buffers until arrived flips
// — then arrival is published and backpressure evaluated.
func (e *remoteExec) ingest(sc *serveConn, body []byte, scratch *compress.Payload) error {
	d := wire.Dec{B: body}
	cnt := d.Count(wire.MaxElems, 1)
	for i := 0; i < cnt && d.Err == nil; i++ {
		id := int(d.Uvarint())
		loss := d.F64()
		meas := d.F64()
		if d.Err != nil {
			break
		}
		if id < 0 || id >= len(e.pend) || e.owner[id] != sc.index {
			return fmt.Errorf("update for client %d not owned by this worker", id)
		}
		e.mu.Lock()
		u := e.pend[id]
		stale := u == nil || e.arrived[id]
		e.mu.Unlock()
		if stale {
			return fmt.Errorf("update for client %d is not in flight", id)
		}
		if e.codec != nil {
			if err := wire.DecodePayload(&u.pay, &d); err != nil {
				return err
			}
			if u.pay.Form != e.wantForm {
				return fmt.Errorf("client %d payload form %q, want %q", id, u.pay.Form, e.wantForm)
			}
			if u.pay.N != e.numParams {
				return fmt.Errorf("client %d payload dimension %d, want %d", id, u.pay.N, e.numParams)
			}
			e.codec.Decode(u.delta, &u.pay)
		} else {
			if err := wire.DecodePayload(scratch, &d); err != nil {
				return err
			}
			if scratch.Form != compress.KindNone || scratch.N != e.numParams {
				return fmt.Errorf("client %d dense upload form %q dimension %d, want %d raw values", id, scratch.Form, scratch.N, e.numParams)
			}
			copy(u.delta, scratch.Val)
		}
		u.loss, u.measured = loss, meas
		e.mu.Lock()
		e.arrived[id] = true
		u.lost = false
		u.via = sc
		sc.unsettled++
		if !sc.held && sc.unsettled > e.bound {
			sc.held = true
			e.holds++
			if err := sc.writeEmpty(wire.FrameHold); err != nil && e.err == nil && !e.closed && e.noFailover {
				e.err = fmt.Errorf("fl: hold to worker %d: %w", sc.index, err)
			}
		}
		e.cond.Broadcast()
		e.mu.Unlock()
	}
	if d.Err != nil {
		return d.Err
	}
	if d.Len() != 0 {
		return fmt.Errorf("%d trailing bytes in updates frame", d.Len())
	}
	return nil
}
