package fl

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/wire"
)

// ServeOptions configures the socket-backed server side of a wire run.
type ServeOptions struct {
	// Workers is the number of worker processes that will connect. Each
	// worker w owns the contiguous client range [w·n/W, (w+1)·n/W).
	Workers int
	// IntakeBound caps, per connection, the updates that have arrived but
	// not yet been consumed by the scheduler before the server sends a
	// Hold frame (explicit backpressure; a Resume follows once the
	// scheduler drains the backlog). 0 means 256.
	IntakeBound int
}

// serveObserve is a test hook: when set, Serve hands it the live remote
// executor so backpressure tests can read the Hold count.
var serveObserve func(*remoteExec)

func (o ServeOptions) intakeBound() int {
	if o.IntakeBound > 0 {
		return o.IntakeBound
	}
	return 256
}

// Serve runs a federated training run with local computation executed by
// socket-connected worker processes (cmd/flserver) instead of in-process
// goroutines. It accepts exactly opt.Workers connections from ln, checks
// each worker's config fingerprint, and then drives the ordinary
// event-driven scheduler with a remote executor: dispatches serialize
// the global model to the owning worker, replies stream back through a
// bounded per-connection intake with Hold/Resume backpressure, and under
// the async policy the next dispatch overlaps aggregation and
// evaluation of earlier rounds.
//
// The run is bit-identical to fl.Run with the same arguments — final
// weights, per-round losses, accuracies, and uplink accounting — because
// workers replay the exact rng derivation order of the in-process engine
// (worker.go) and every scheduling decision stays on the server. Only
// measured wall times differ (they are real observations either way).
// Configurations the wire cannot execute faithfully are rejected up
// front (validateWire).
func Serve(ln net.Listener, opt ServeOptions, cfg Config, alg Algorithm, network *nn.Network, shards []*dataset.Dataset, test *dataset.Dataset) (*Result, error) {
	if opt.Workers <= 0 {
		return nil, fmt.Errorf("fl: ServeOptions.Workers %d must be positive", opt.Workers)
	}
	if err := validateWire(&cfg, alg); err != nil {
		return nil, err
	}
	fp := serveFingerprint(&cfg, alg.Name(), test.Name, len(shards), network.NumParams())
	s, err := newSchedulerExec(cfg, alg, network, shards, test, true)
	if err != nil {
		return nil, err
	}
	ex := newRemoteExec(s.pool, cfg.Compress, len(shards), network.NumParams(), opt)
	if err := ex.accept(ln, fp); err != nil {
		ex.close()
		return nil, err
	}
	s.exec = ex
	defer ex.close()
	if serveObserve != nil {
		serveObserve(ex)
	}
	if err := s.runAll(false); err != nil {
		return nil, err
	}
	return s.result(), nil
}

// serveConn is one worker connection on the server side.
type serveConn struct {
	c     net.Conn
	index int
	// wmu serializes frame writes: the scheduler goroutine writes
	// Dispatch/Resume/Bye while an ingest goroutine may write Hold.
	wmu  sync.Mutex
	wbuf []byte
	// held and unsettled are guarded by remoteExec.mu.
	held      bool
	unsettled int
}

// write sends one pre-framed buffer.
func (sc *serveConn) write(frame []byte) error {
	sc.wmu.Lock()
	_, err := sc.c.Write(frame)
	sc.wmu.Unlock()
	return err
}

// writeEmpty sends a body-less frame of the given type.
func (sc *serveConn) writeEmpty(t wire.FrameType) error {
	sc.wmu.Lock()
	var err error
	sc.wbuf, err = wire.WriteFrame(sc.c, t, nil, sc.wbuf)
	sc.wmu.Unlock()
	return err
}

// remoteExec implements the executor seam over worker sockets. runRound
// checks ring entries out for every dispatched client, registers them as
// pending, and serializes one Dispatch frame per owning connection —
// then returns, leaving the results in flight. Per-connection reader
// goroutines decode Updates frames straight into the pending ring
// entries; settle/settleOne block until the needed entries have landed
// and backfill TrainLoss and the measured wall time from the ring
// (update structs were copied at dispatch time, so the ring entry is the
// only stable rendezvous).
type remoteExec struct {
	ring      *slotPool
	codec     compress.Codec // nil for dense transport
	wantForm  compress.Kind  // payload form every upload must carry
	numParams int
	bound     int
	conns     []*serveConn
	owner     []int // client id -> index into conns

	mu      sync.Mutex
	cond    *sync.Cond
	pend    []*upload // client id -> in-flight ring entry (nil when none)
	arrived []bool    // client id -> reply landed
	err     error
	closed  bool
	holds   int // Hold frames sent (observability + backpressure tests)

	dispatchBuf []byte
	readers     sync.WaitGroup
}

// newRemoteExec builds the executor shell; accept wires the connections.
func newRemoteExec(ring *slotPool, spec compress.Spec, numClients, numParams int, opt ServeOptions) *remoteExec {
	e := &remoteExec{
		ring:      ring,
		wantForm:  spec.Kind,
		numParams: numParams,
		bound:     opt.intakeBound(),
		conns:     make([]*serveConn, opt.Workers),
		owner:     make([]int, numClients),
		pend:      make([]*upload, numClients),
		arrived:   make([]bool, numClients),
	}
	e.cond = sync.NewCond(&e.mu)
	if ring.comp != nil {
		e.codec = ring.comp.codec
	}
	w := opt.Workers
	for i := 0; i < w; i++ {
		for id := i * numClients / w; id < (i+1)*numClients/w; id++ {
			e.owner[id] = i
		}
	}
	return e
}

// accept takes opt.Workers connections off ln, validates each Hello
// against the run fingerprint, and starts the reader goroutines.
func (e *remoteExec) accept(ln net.Listener, fp uint64) error {
	for got := 0; got < len(e.conns); got++ {
		c, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("fl: accepting worker %d/%d: %w", got, len(e.conns), err)
		}
		var fr wire.Frame
		if err := wire.ReadFrame(c, &fr); err != nil {
			c.Close()
			return fmt.Errorf("fl: reading hello: %w", err)
		}
		reject := func(format string, args ...any) error {
			msg := fmt.Sprintf(format, args...)
			_, _ = wire.WriteFrame(c, wire.FrameReject, []byte(msg), nil)
			c.Close()
			return fmt.Errorf("fl: %s", msg)
		}
		if fr.Type != wire.FrameHello {
			return reject("expected hello, got frame type %d", fr.Type)
		}
		gotFP, index, workers, err := parseHello(fr.Body)
		if err != nil {
			return reject("bad hello: %v", err)
		}
		switch {
		case workers != len(e.conns):
			return reject("worker expects %d workers, server has %d", workers, len(e.conns))
		case index < 0 || index >= len(e.conns):
			return reject("worker index %d out of range [0,%d)", index, len(e.conns))
		case e.conns[index] != nil:
			return reject("duplicate worker index %d", index)
		case gotFP != fp:
			return reject("config fingerprint mismatch: worker %016x, server %016x", gotFP, fp)
		}
		e.conns[index] = &serveConn{c: c, index: index}
	}
	for _, sc := range e.conns {
		e.readers.Add(1)
		go e.readLoop(sc)
	}
	return nil
}

// fail records the first error and wakes every waiter.
func (e *remoteExec) fail(err error) error {
	e.mu.Lock()
	if e.err == nil && !e.closed {
		e.err = err
	}
	err = e.err
	e.cond.Broadcast()
	e.mu.Unlock()
	if err == nil {
		err = fmt.Errorf("fl: server shutting down")
	}
	return err
}

// runRound implements executor: register pending ring entries and write
// one Dispatch frame per owning connection, without waiting for results.
func (e *remoteExec) runRound(cfg *Config, alg Algorithm, clients []*client, ids []int, round int, now float64, global, prevGlobal []float64, updates []Update, measured []float64) error {
	e.mu.Lock()
	if e.err != nil {
		err := e.err
		e.mu.Unlock()
		return err
	}
	for j, id := range ids {
		u := e.ring.getUpload()
		updates[j] = Update{
			Client:     id,
			Delta:      u.delta,
			NumSamples: clients[id].data.Len(),
			ring:       u,
		}
		if e.ring.comp != nil {
			updates[j].Payload = &u.pay
		}
		e.pend[id] = u
		e.arrived[id] = false
	}
	e.mu.Unlock()

	for ci, sc := range e.conns {
		cnt := 0
		for _, id := range ids {
			if e.owner[id] == ci {
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		buf := wire.BeginFrame(e.dispatchBuf[:0], wire.FrameDispatch)
		buf = wire.AppendUvarint(buf, uint64(round))
		buf = wire.AppendUvarint(buf, uint64(cnt))
		for _, id := range ids {
			if e.owner[id] == ci {
				buf = wire.AppendUvarint(buf, uint64(id))
			}
		}
		buf = wire.AppendUvarint(buf, uint64(len(global)))
		for _, v := range global {
			buf = wire.AppendF64(buf, v)
		}
		wire.EndFrame(buf, 0)
		e.dispatchBuf = buf
		if err := sc.write(buf); err != nil {
			return e.fail(fmt.Errorf("fl: dispatch to worker %d: %w", ci, err))
		}
	}
	return nil
}

// settle implements executor: wait for the whole round's replies.
func (e *remoteExec) settle(updates []Update, measured []float64) error {
	for j := range updates {
		if err := e.settleOne(&updates[j], &measured[j]); err != nil {
			return err
		}
	}
	return nil
}

// settleOne implements executor: wait for one update's reply, then copy
// its train loss and measured time out of the ring entry. Liveness under
// backpressure: the server never sleeps waiting on a connection it is
// itself holding — the Hold is lifted first, since the scheduler is by
// definition ready to consume again.
func (e *remoteExec) settleOne(u *Update, measured *float64) error {
	if u.ring == nil {
		return nil
	}
	id := u.Client
	e.mu.Lock()
	sc := e.conns[e.owner[id]]
	for e.err == nil && e.pend[id] != nil && !e.arrived[id] {
		if sc.held {
			e.resumeLocked(sc)
		}
		e.cond.Wait()
	}
	if e.err != nil {
		err := e.err
		e.mu.Unlock()
		return err
	}
	if e.pend[id] != nil {
		e.pend[id] = nil
		e.arrived[id] = false
		u.TrainLoss = u.ring.loss
		if measured != nil {
			*measured = u.ring.measured
		}
		sc.unsettled--
		if sc.held && sc.unsettled <= e.bound/2 {
			e.resumeLocked(sc)
		}
	}
	e.mu.Unlock()
	return nil
}

// resumeLocked lifts a connection's Hold (e.mu held).
func (e *remoteExec) resumeLocked(sc *serveConn) {
	sc.held = false
	if err := sc.writeEmpty(wire.FrameResume); err != nil && e.err == nil && !e.closed {
		e.err = fmt.Errorf("fl: resume to worker %d: %w", sc.index, err)
	}
}

// release implements executor.
func (e *remoteExec) release(u *Update) { e.ring.release(u) }

// close implements executor: send Bye and wait for each worker to drain
// and close its end (a run can finish with dispatches still in flight —
// under async the round budget ends mid-pipeline — and closing first
// would RST the worker's final reply mid-write). The read deadline
// bounds the wait if a worker never drains.
func (e *remoteExec) close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	for _, sc := range e.conns {
		if sc == nil {
			continue
		}
		_ = sc.writeEmpty(wire.FrameBye)
		_ = sc.c.SetReadDeadline(time.Now().Add(30 * time.Second))
	}
	e.readers.Wait()
	for _, sc := range e.conns {
		if sc != nil {
			sc.c.Close()
		}
	}
	e.ring.close()
}

// Holds reports how many Hold frames the server sent (backpressure
// observability; the loopback tests assert it).
func (e *remoteExec) Holds() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.holds
}

// readLoop drains one worker's frames, ingesting Updates bodies straight
// into the pending ring entries.
func (e *remoteExec) readLoop(sc *serveConn) {
	defer e.readers.Done()
	var fr wire.Frame
	var scratch compress.Payload // dense staging for uncompressed runs
	for {
		if err := wire.ReadFrame(sc.c, &fr); err != nil {
			e.mu.Lock()
			closed := e.closed
			e.mu.Unlock()
			if !closed {
				e.fail(fmt.Errorf("fl: worker %d: %w", sc.index, err))
			}
			return
		}
		if fr.Type != wire.FrameUpdates {
			e.fail(fmt.Errorf("fl: worker %d sent unexpected frame type %d", sc.index, fr.Type))
			return
		}
		if err := e.ingest(sc, fr.Body, &scratch); err != nil {
			e.fail(fmt.Errorf("fl: worker %d: %w", sc.index, err))
			return
		}
	}
}

// ingest decodes one Updates frame into the pending ring entries. The
// payload decodes outside the lock — the settle contract guarantees the
// scheduler does not touch a pending entry's buffers until arrived flips
// — then arrival is published and backpressure evaluated.
func (e *remoteExec) ingest(sc *serveConn, body []byte, scratch *compress.Payload) error {
	d := wire.Dec{B: body}
	cnt := d.Count(wire.MaxElems, 1)
	for i := 0; i < cnt && d.Err == nil; i++ {
		id := int(d.Uvarint())
		loss := d.F64()
		meas := d.F64()
		if d.Err != nil {
			break
		}
		if id < 0 || id >= len(e.pend) || e.owner[id] != sc.index {
			return fmt.Errorf("update for client %d not owned by this worker", id)
		}
		e.mu.Lock()
		u := e.pend[id]
		stale := u == nil || e.arrived[id]
		e.mu.Unlock()
		if stale {
			return fmt.Errorf("update for client %d is not in flight", id)
		}
		if e.codec != nil {
			if err := wire.DecodePayload(&u.pay, &d); err != nil {
				return err
			}
			if u.pay.Form != e.wantForm {
				return fmt.Errorf("client %d payload form %q, want %q", id, u.pay.Form, e.wantForm)
			}
			if u.pay.N != e.numParams {
				return fmt.Errorf("client %d payload dimension %d, want %d", id, u.pay.N, e.numParams)
			}
			e.codec.Decode(u.delta, &u.pay)
		} else {
			if err := wire.DecodePayload(scratch, &d); err != nil {
				return err
			}
			if scratch.Form != compress.KindNone || scratch.N != e.numParams {
				return fmt.Errorf("client %d dense upload form %q dimension %d, want %d raw values", id, scratch.Form, scratch.N, e.numParams)
			}
			copy(u.delta, scratch.Val)
		}
		u.loss, u.measured = loss, meas
		e.mu.Lock()
		e.arrived[id] = true
		sc.unsettled++
		if !sc.held && sc.unsettled > e.bound {
			sc.held = true
			e.holds++
			if err := sc.writeEmpty(wire.FrameHold); err != nil && e.err == nil && !e.closed {
				e.err = fmt.Errorf("fl: hold to worker %d: %w", sc.index, err)
			}
		}
		e.cond.Broadcast()
		e.mu.Unlock()
	}
	if d.Err != nil {
		return d.Err
	}
	if d.Len() != 0 {
		return fmt.Errorf("%d trailing bytes in updates frame", d.Len())
	}
	return nil
}
