package fl

import (
	"runtime"
	"testing"

	"repro/internal/adversary"
	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/simclock"
)

// poolSetup builds an adult federation with n clients for the white-box
// pool tests.
func poolSetup(t testing.TB, n int) (*nn.Network, []*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	train, test, err := dataset.Standard("adult", dataset.ScaleSmall, 3)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Dirichlet(train, n, 0.5, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	net, err := dataset.Model("adult")
	if err != nil {
		t.Fatal(err)
	}
	return net, part.Shards(train), test
}

// TestSteadyStateAllocs pins the zero-allocation property of warmed-up
// rounds: once the slot pool's delta ring and the scheduler's reusable
// buffers reach their high-water mark, a round allocates nothing under
// any aggregation policy — including with update-level attack injectors
// (sign flip, scaling, delta noise; adversary.go) live on the delta
// checkout path, whose per-client streams and reusable contexts are all
// provisioned at setup, and with an uplink codec live (top-k or int8),
// whose payload buffers ride the delta ring and whose error-feedback
// residuals are lazily allocated during warmup. Evaluation is pushed
// past the measured window (EvalEvery) because test-set accuracy is on
// the eval cadence, not the per-round hot path. Fault injection rides
// the same contract: the fault plan, dup flags, and retry tables are all
// provisioned at setup, so fault-resolved rounds (crash/drop/dup/slow
// draws, retry chains, quorum checks) allocate nothing either —
// checkpoint rounds are excluded (CheckpointEvery 0 here); snapshots
// are allowed to allocate.
func TestSteadyStateAllocs(t *testing.T) {
	net, shards, test := poolSetup(t, 8)
	injectors := []adversary.Spec{
		{Kind: adversary.KindSignFlip, Clients: []int{1}},
		{Kind: adversary.KindScale, Clients: []int{3}, Scale: 2},
		{Kind: adversary.KindDeltaNoise, Clients: []int{3, 5}, Scale: 1},
	}
	faultMix := []fault.Spec{
		{Kind: fault.KindCrash, Frac: 0.2},
		{Kind: fault.KindDrop, Frac: 0.15},
		{Kind: fault.KindDup, Frac: 0.2},
		{Kind: fault.KindSlow, Frac: 0.3, Param: 3},
	}
	variants := []struct {
		name     string
		adv      bool
		compress compress.Spec
		faults   []fault.Spec
		quorum   float64
		stacked  bool
	}{
		{name: "", adv: false},
		{name: "-injectors", adv: true},
		{name: "-topk", compress: compress.Spec{Kind: compress.KindTopK, TopKFrac: 0.1}},
		{name: "-int8", compress: compress.Spec{Kind: compress.KindInt8, Chunk: 256}},
		{name: "-faults", faults: faultMix, quorum: 0.5},
		{name: "-faults-int8", faults: faultMix, compress: compress.Spec{Kind: compress.KindInt8, Chunk: 256}},
		// The full aggregation stack (zeroing|clip + FedAdam) rides the
		// same contract: stage scratch, survivor lists, weight re-map
		// buffers, and optimizer moments are all sized at Setup.
		{name: "-stack", stacked: true},
		// Stack + injectors exercises the weight re-map path with the
		// honest/corrupt mass accounting live every round.
		{name: "-stack-injectors", stacked: true, adv: true},
	}
	for _, v := range variants {
		for _, policy := range []AggregationPolicy{PolicySync, PolicyDeadline, PolicyAsync} {
			name := policy.String() + v.name
			t.Run(name, func(t *testing.T) {
				cfg := Config{
					Rounds:     200,
					LocalSteps: 3,
					BatchSize:  8,
					LocalLR:    0.05,
					Seed:       11,
					EvalEvery:  1000,
					Policy:     policy,
					Compress:   v.compress,
				}
				if v.adv {
					cfg.Adversaries = injectors
				}
				if v.stacked {
					cfg.AggStack = mustStack(t, "zeroing|clip")
					cfg.ServerOpt = mustOpt(t, "adam:0.1")
				}
				if v.faults != nil {
					cfg.Faults = v.faults
					if policy != PolicyAsync {
						// Quorum is a round-commit concept; async has no rounds.
						cfg.Quorum = v.quorum
					}
				}
				switch policy {
				case PolicyDeadline:
					// Generous deadline: nobody drops, rounds stay uniform.
					cfg.RoundDeadlineSec = 10 * simclock.RoundSeconds(net.GradFlops(cfg.BatchSize), cfg.LocalSteps, simclock.Plain())
				case PolicyAsync:
					cfg.AsyncBuffer = 3
				}
				s, err := newScheduler(cfg, goldenFedAvg{}, net, shards, test)
				if err != nil {
					t.Fatal(err)
				}
				defer s.pool.close()

				round := 0
				var step func() (bool, error)
				switch policy {
				case PolicyDeadline:
					step = func() (bool, error) { return s.deadlineRound(round) }
				case PolicyAsync:
					if err := s.setupAsync(); err != nil {
						t.Fatal(err)
					}
					step = func() (bool, error) { return s.asyncStep(round) }
				default:
					step = func() (bool, error) { return s.syncRound(round) }
				}

				// Warm up: first rounds grow the delta ring, the engines'
				// backward buffers, and the metric history's capacity.
				for ; round < 5; round++ {
					if halt, err := step(); err != nil || halt {
						t.Fatalf("warmup round %d: halt=%v err=%v", round, halt, err)
					}
				}
				allocs := testing.AllocsPerRun(30, func() {
					halt, err := step()
					if err != nil || halt {
						t.Fatalf("round %d: halt=%v err=%v", round, halt, err)
					}
					round++
				})
				if allocs != 0 {
					t.Fatalf("steady-state %s round allocates %.1f objects/round, want 0", name, allocs)
				}
			})
		}
	}
}

// TestSlotPoolStressBitIdentity is the n ≫ P stress regression: with 32
// clients multiplexed over 1 vs 8 slots the slot→client assignment (and
// hence the buffer reuse pattern) differs completely between the runs,
// yet results must stay bit-identical — any read-before-write leakage of
// slot or engine state would surface here. TACO exercises the fused
// correction path and per-client coefficients on top.
func TestSlotPoolStressBitIdentity(t *testing.T) {
	net, shards, test := poolSetup(t, 32)
	base := Config{
		Rounds:     4,
		LocalSteps: 3,
		BatchSize:  8,
		LocalLR:    0.05,
		Seed:       19,
	}
	for _, algName := range []string{"fedavg", "taco"} {
		t.Run(algName, func(t *testing.T) {
			mk := func() Algorithm {
				if algName == "taco" {
					return newTestTACO(t)
				}
				return goldenFedAvg{}
			}
			cfgA := base
			cfgA.Parallelism = 1
			cfgB := base
			cfgB.Parallelism = 8
			resA, err := Run(cfgA, mk(), net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			resB, err := Run(cfgB, mk(), net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			if ha, hb := paramsHash(resA.FinalParams), paramsHash(resB.FinalParams); ha != hb {
				t.Fatalf("FinalParams differ across slot counts: %016x vs %016x", ha, hb)
			}
		})
	}
}

// newTestTACO builds a TACO-like correction algorithm without importing
// internal/core (import cycle): a fixed correction vector fused into the
// step plus Scaffold-style per-client state, enough to stress the fused
// path and buffer reuse.
func newTestTACO(t *testing.T) Algorithm { return &fusedCorrAlg{} }

// fusedCorrAlg is a white-box stand-in exercising FuseCorrection with a
// per-client coefficient and cross-round per-client state.
type fusedCorrAlg struct {
	Base
	corr  []float64
	coeff []float64
}

func (a *fusedCorrAlg) Name() string { return "fusedCorr" }
func (a *fusedCorrAlg) Setup(env *Env) {
	a.corr = make([]float64, env.NumParams)
	a.coeff = make([]float64, env.NumClients)
	for i := range a.coeff {
		a.coeff[i] = 0.01 * float64(i+1)
	}
}
func (a *fusedCorrAlg) GradAdjust(ctx *StepCtx) {
	ctx.FuseCorrection(a.coeff[ctx.Client], a.corr)
}
func (a *fusedCorrAlg) Aggregate(s *ServerCtx, updates []Update) {
	FedAvgStep(s, updates)
	// The broadcast correction for the next round is the mean delta in
	// gradient units, as TACO's Eq. (9) does.
	inv := 1 / (float64(s.Env.Cfg.LocalSteps) * s.Env.Cfg.LocalLR * float64(len(updates)))
	for i := range a.corr {
		a.corr[i] = 0
	}
	for _, u := range updates {
		for i, d := range u.Delta {
			a.corr[i] += inv * d
		}
	}
}

// TestSlotPoolMemoryFootprint demonstrates the tentpole memory win: the
// live heap a 500-client run retains with the pooled P=8 configuration
// must be at least 5× smaller than with P=500 (one slot per client — the
// pre-pool layout, where every client owned an engine and its parameter
// buffers). Partial participation keeps the per-round delta ring small,
// as the large-fleet experiments (scale1k) run it.
func TestSlotPoolMemoryFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("500-client footprint measurement in -short mode")
	}
	net, shards, test := poolSetup(t, 500)
	cfg := Config{
		Rounds:                50,
		LocalSteps:            2,
		BatchSize:             8,
		LocalLR:               0.05,
		Seed:                  7,
		EvalEvery:             1000,
		ParticipationFraction: 0.1,
	}

	footprint := func(parallelism int) uint64 {
		c := cfg
		c.Parallelism = parallelism
		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		s, err := newScheduler(c, goldenFedAvg{}, net, shards, test)
		if err != nil {
			t.Fatal(err)
		}
		defer s.pool.close()
		for round := 0; round < 3; round++ {
			if halt, err := s.syncRound(round); err != nil || halt {
				t.Fatalf("round %d: halt=%v err=%v", round, halt, err)
			}
		}
		runtime.GC()
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		live := m1.HeapAlloc - m0.HeapAlloc
		runtime.KeepAlive(s)
		return live
	}

	pooled := footprint(8)
	perClient := footprint(500)
	t.Logf("500-client live heap: P=8 pooled %.2f MiB, P=500 per-client %.2f MiB (%.1fx)",
		float64(pooled)/(1<<20), float64(perClient)/(1<<20), float64(perClient)/float64(pooled))
	if float64(perClient) < 5*float64(pooled) {
		t.Fatalf("pooled footprint %d B is not ≥5x smaller than per-client %d B", pooled, perClient)
	}
}

// TestSlotPoolF32Footprint pins the fp32 half of the footprint story.
// The whole-run heap is diluted by dtype-independent server state
// (global model, aggregation buffers, eval machinery — float64 by
// design, DESIGN.md §10), so the test isolates the quantity the DType
// switch actually changes: the per-slot increment, measured as the live
// heap difference between P=8 and P=1 runs divided by the seven extra
// slots. On the CNN model the slot is dominated by its engine's
// activation/gradient/col buffers, which halve exactly under fp32; the
// five float64 bridge buffers each slot keeps for hook visibility pull
// the ratio back up, so the bound is a conservative 0.70 rather than a
// strict 0.5.
func TestSlotPoolF32Footprint(t *testing.T) {
	if testing.Short() {
		t.Skip("footprint measurement in -short mode")
	}
	train, test, err := dataset.Standard("fmnist", dataset.ScaleSmall, 3)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Dirichlet(train, 64, 0.5, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	net, err := dataset.Model("fmnist")
	if err != nil {
		t.Fatal(err)
	}
	shards := part.Shards(train)
	cfg := Config{
		Rounds:     50,
		LocalSteps: 2,
		BatchSize:  32, // engine buffers scale with batch; bridge vectors don't
		LocalLR:    0.05,
		Seed:       7,
		EvalEvery:  1000,
	}

	// liveHeap settles the heap before reading: a single GC leaves
	// second-cycle garbage (sync.Pool contents, finalizer chains) from
	// earlier tests in the same binary, which would then be collected
	// between the two readings and deflate the delta.
	liveHeap := func() uint64 {
		runtime.GC()
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}

	footprint := func(dtype string, parallelism int) uint64 {
		c := cfg
		c.DType = dtype
		c.Parallelism = parallelism
		before := liveHeap()
		s, err := newScheduler(c, goldenFedAvg{}, net, shards, test)
		if err != nil {
			t.Fatal(err)
		}
		defer s.pool.close()
		// Three rounds force the lazily allocated state (engine gradient
		// buffers, delta ring) to its steady-state high-water mark.
		for round := 0; round < 3; round++ {
			if halt, err := s.syncRound(round); err != nil || halt {
				t.Fatalf("round %d: halt=%v err=%v", round, halt, err)
			}
		}
		live := liveHeap() - before
		runtime.KeepAlive(s)
		return live
	}

	perSlot := func(dtype string) float64 {
		p8 := footprint(dtype, 8)
		p1 := footprint(dtype, 1)
		return float64(p8-p1) / 7
	}

	slot64 := perSlot("")
	slot32 := perSlot("f32")
	ratio := slot32 / slot64
	t.Logf("fmnist per-slot live heap: f64 %.1f KiB, f32 %.1f KiB (f32/f64 = %.2f)",
		slot64/(1<<10), slot32/(1<<10), ratio)
	if ratio > 0.70 {
		t.Fatalf("f32 per-slot heap %.0f B is not ≤0.70x the f64 per-slot heap %.0f B", slot32, slot64)
	}
}

// TestDeltaRingReuse checks the ring's steady state directly: after a few
// sync rounds with a fixed participant count the free list stops growing.
func TestDeltaRingReuse(t *testing.T) {
	net, shards, test := poolSetup(t, 8)
	cfg := Config{Rounds: 6, LocalSteps: 2, BatchSize: 8, LocalLR: 0.05, Seed: 3, EvalEvery: 1000}
	s, err := newScheduler(cfg, goldenFedAvg{}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	defer s.pool.close()
	for round := 0; round < 3; round++ {
		if halt, err := s.syncRound(round); err != nil || halt {
			t.Fatalf("round %d: halt=%v err=%v", round, halt, err)
		}
	}
	high := len(s.pool.free)
	if high != 8 {
		t.Fatalf("delta ring holds %d buffers after full-participation rounds, want 8", high)
	}
	for round := 3; round < 6; round++ {
		if halt, err := s.syncRound(round); err != nil || halt {
			t.Fatalf("round %d: halt=%v err=%v", round, halt, err)
		}
	}
	if len(s.pool.free) != high {
		t.Fatalf("delta ring grew from %d to %d buffers in steady state", high, len(s.pool.free))
	}
}
