package fl

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/compress"
	"repro/internal/metrics"
	"repro/internal/vecmath"
)

// Run checkpointing (DESIGN.md §8). A checkpoint is the complete state
// needed to resume a run bit-identically: the model and its previous
// snapshot, expulsion state, the full metric history, every rng stream
// cursor (participation, per-client samplers, adversary streams,
// quantization streams, fault streams), error-feedback residuals,
// the algorithm's cross-round state (StatefulAlgorithm), and — under the
// async policy — every in-flight update, delta included. The header
// carries a fingerprint of the configuration, architecture, and
// algorithm so a checkpoint cannot silently resume a different run.
//
// Two consumers with different needs share the format:
//   - server-crash recovery and external Resume apply the saved rng
//     cursors, so the replayed rounds are bit-identical to the lost ones;
//   - the divergence guard rolls state back but *keeps* the live
//     cursors, so the replay draws fresh batches instead of marching
//     deterministically into the same blow-up.

// Format 03 added the failover fields to the per-round record
// (ReassignedDispatches/WorkerReconnects) and the wire-execution
// sub-blob (per-client dispatch histories plus recorded globals, the
// record a restarted server replays to rebuild worker rng streams);
// format 02 added the aggregation-stack fields. Older blobs are
// rejected by the magic check rather than silently misparsed.
var runCkptMagic = [8]byte{'F', 'L', 'C', 'K', 'P', 'T', '0', '3'}

// StatefulAlgorithm is implemented by algorithms that carry cross-round
// state a checkpoint must capture — control variates (Scaffold), client
// momentum (STEM), server momentum (FedACG), or TACO's correction state
// and alpha history. Stateless algorithms (FedAvg, FedProx, FoolsGold)
// need no hooks: their runs resume bit-identically from the model alone.
type StatefulAlgorithm interface {
	Algorithm
	// SaveState serializes the algorithm's cross-round state.
	SaveState(w io.Writer) error
	// LoadState restores state written by SaveState into an algorithm
	// that has been Setup with the same Env.
	LoadState(r io.Reader) error
}

// fingerprint hashes everything a checkpoint must agree on with the
// scheduler restoring it: the configuration (minus the checkpoint
// callback), the architecture, the algorithm, and the fleet size.
func (s *scheduler) fingerprint() uint64 {
	c := s.cfg
	c.OnCheckpoint = nil
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|net=%x|alg=%s|d=%d|n=%d", c, s.env.Net.Fingerprint(), s.alg.Name(), len(s.params), len(s.clients))
	return h.Sum64()
}

// snapshot serializes the scheduler's state as of the start of round t
// into the reusable checkpoint buffer, retains it for in-run recovery,
// and hands it to the OnCheckpoint callback when one is set.
func (s *scheduler) snapshot(t int) error {
	if len(s.buffer) != 0 {
		return fmt.Errorf("fl: checkpoint at round %d with %d buffered async updates (not a round boundary)", t, len(s.buffer))
	}
	s.ckptBuf.Reset()
	w := &s.ckptBuf
	w.Write(runCkptMagic[:])
	if err := ckpt.WriteU64(w, s.fingerprint()); err != nil {
		return err
	}
	ckpt.WriteInt(w, t)
	ckpt.WriteF64(w, s.now)
	ckpt.WriteInt(w, s.version)
	ckpt.WriteF64(w, s.lastAgg)
	ckpt.WriteF64s(w, s.params)
	ckpt.WriteF64s(w, s.wPrev)

	ckpt.WriteInt(w, len(s.active))
	for _, a := range s.active {
		ckpt.WriteBool(w, a)
	}
	expelledIDs := make([]int, 0, len(s.expelled))
	for id := range s.expelled {
		expelledIDs = append(expelledIDs, id)
	}
	sort.Ints(expelledIDs)
	ckpt.WriteInt(w, len(expelledIDs))
	for _, id := range expelledIDs {
		ckpt.WriteInt(w, id)
		ckpt.WriteInt(w, s.expelled[id])
	}
	ckpt.WriteBool(w, s.cumWeights != nil)
	if s.cumWeights != nil {
		ckpt.WriteF64s(w, s.cumWeights)
	}
	writeRunHistory(w, s.run)

	// rng cursors, in the derivation order of newScheduler.
	if err := ckpt.WriteCursor(w, s.partRNG); err != nil {
		return err
	}
	for _, c := range s.clients {
		if err := ckpt.WriteCursor(w, c.sampler.Stream()); err != nil {
			return err
		}
	}
	for _, c := range s.clients {
		ckpt.WriteBool(w, c.adv != nil)
		if c.adv == nil {
			continue
		}
		if err := ckpt.WriteCursor(w, c.adv.r); err != nil {
			return err
		}
		ckpt.WriteInt(w, len(c.adv.alts))
		for _, alt := range c.adv.alts {
			if err := ckpt.WriteCursor(w, alt.sampler.Stream()); err != nil {
				return err
			}
		}
	}
	comp := s.pool.comp
	ckpt.WriteBool(w, comp != nil)
	if comp != nil {
		for _, st := range comp.streams {
			if err := ckpt.WriteCursor(w, st); err != nil {
				return err
			}
		}
		if comp.resid32 != nil {
			// fp32 residuals are widened to float64 rows on the wire:
			// widening is exact and restore's narrowing is its exact
			// inverse, so the round-trip is bit-identical without a
			// second on-disk row format. (DType is fingerprinted, so a
			// blob can never be restored under the other precision.)
			rows := make([][]float64, len(comp.resid32))
			for i, e := range comp.resid32 {
				if e == nil {
					continue
				}
				rows[i] = make([]float64, len(e))
				vecmath.Widen(rows[i], e)
			}
			if err := ckpt.WriteF64Rows(w, rows); err != nil {
				return err
			}
		} else if err := ckpt.WriteF64Rows(w, comp.resid); err != nil {
			return err
		}
	}
	ckpt.WriteBool(w, s.plan != nil)
	if s.plan != nil {
		for _, cf := range s.plan.perClient {
			ckpt.WriteBool(w, cf != nil)
			if cf != nil {
				if err := ckpt.WriteCursor(w, cf.r); err != nil {
					return err
				}
			}
		}
	}

	sa, stateful := s.alg.(StatefulAlgorithm)
	ckpt.WriteBool(w, stateful)
	if stateful {
		if err := sa.SaveState(w); err != nil {
			return fmt.Errorf("fl: checkpoint algorithm state: %w", err)
		}
	}

	ckpt.WriteBool(w, s.cfg.Policy == PolicyAsync)
	if s.cfg.Policy == PolicyAsync {
		for i := range s.pending {
			f := &s.pending[i]
			ckpt.WriteBool(w, f.live)
			if !f.live {
				continue
			}
			ckpt.WriteInt(w, f.version)
			ckpt.WriteF64(w, f.measured)
			ckpt.WriteF64(w, f.finish)
			ckpt.WriteBool(w, f.failed)
			ckpt.WriteInt(w, f.attempt)
			ckpt.WriteBool(w, f.dup)
			ckpt.WriteF64(w, f.update.TrainLoss)
			ckpt.WriteBool(w, f.update.Corrupt)
			ckpt.WriteF64s(w, f.update.Delta)
			ckpt.WriteBool(w, f.update.Payload != nil)
			if f.update.Payload != nil {
				writePayload(w, f.update.Payload)
			}
		}
		if s.attempts != nil {
			ckpt.WriteBool(w, true)
			ckpt.WriteInts(w, s.attempts)
		} else {
			ckpt.WriteBool(w, false)
		}
	}

	// Wire-execution sub-blob, last so every in-process field keeps its
	// offset: a marker for the execution mode (a wire blob restored
	// in-process would leave server-side sampler cursors authoritative
	// for state that actually lives in workers, and vice versa — both
	// are silently wrong, so cross-mode restores are rejected), then the
	// dispatch record a restarted server needs to rebuild its workers.
	rx, isWire := s.exec.(*remoteExec)
	ckpt.WriteBool(w, isWire)
	if isWire {
		if err := rx.writeWireState(w); err != nil {
			return fmt.Errorf("fl: checkpoint wire state: %w", err)
		}
	}

	s.lastCkpt = append(s.lastCkpt[:0], w.Bytes()...)
	s.lastCkptRound = t
	if s.cfg.OnCheckpoint != nil {
		s.cfg.OnCheckpoint(t, s.lastCkpt)
	}
	return nil
}

// restoreLast restores the retained in-run checkpoint and returns the
// round it resumes at. applyRNG selects between bit-identical replay
// (server-crash recovery) and fresh draws (divergence rollback).
func (s *scheduler) restoreLast(applyRNG bool) (int, error) {
	if s.lastCkpt == nil {
		return 0, fmt.Errorf("fl: no checkpoint to restore")
	}
	if err := s.restore(s.lastCkpt, applyRNG); err != nil {
		return 0, err
	}
	return s.startRound, nil
}

// restore deserializes a checkpoint into the scheduler. The scheduler
// must have been built from the same config/model/algorithm/shards
// (enforced by the header fingerprint). With applyRNG false the stream
// cursors in the checkpoint are consumed but not applied.
func (s *scheduler) restore(data []byte, applyRNG bool) error {
	r := bytes.NewReader(data)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("fl: checkpoint read: %w", err)
	}
	if magic != runCkptMagic {
		return fmt.Errorf("fl: checkpoint: bad magic %q", magic[:])
	}
	fp, err := ckpt.ReadU64(r)
	if err != nil {
		return fmt.Errorf("fl: checkpoint read: %w", err)
	}
	if fp != s.fingerprint() {
		return fmt.Errorf("fl: checkpoint fingerprint %x does not match this run %x (different config, model, or algorithm)", fp, s.fingerprint())
	}
	if err := s.restoreBody(r, applyRNG); err != nil {
		return fmt.Errorf("fl: checkpoint restore: %w", err)
	}
	return nil
}

// restoreBody decodes everything after the header. It is split out so
// every early return funnels through restore's error wrapping.
func (s *scheduler) restoreBody(r *bytes.Reader, applyRNG bool) error {
	var err error
	if s.startRound, err = ckpt.ReadInt(r); err != nil {
		return err
	}
	if s.startRound < 0 || s.startRound > s.cfg.Rounds {
		return fmt.Errorf("resume round %d outside [0,%d]", s.startRound, s.cfg.Rounds)
	}
	if s.now, err = ckpt.ReadF64(r); err != nil {
		return err
	}
	if s.version, err = ckpt.ReadInt(r); err != nil {
		return err
	}
	if s.lastAgg, err = ckpt.ReadF64(r); err != nil {
		return err
	}
	if err = ckpt.ReadF64sInto(r, s.params); err != nil {
		return fmt.Errorf("params: %w", err)
	}
	if err = ckpt.ReadF64sInto(r, s.wPrev); err != nil {
		return fmt.Errorf("wPrev: %w", err)
	}

	nActive, err := ckpt.ReadInt(r)
	if err != nil {
		return err
	}
	if nActive != len(s.active) {
		return fmt.Errorf("%d active flags for %d clients", nActive, len(s.active))
	}
	for i := range s.active {
		if s.active[i], err = ckpt.ReadBool(r); err != nil {
			return err
		}
	}
	nExp, err := ckpt.ReadInt(r)
	if err != nil {
		return err
	}
	if nExp < 0 || nExp > len(s.clients) {
		return fmt.Errorf("%d expelled entries for %d clients", nExp, len(s.clients))
	}
	clear(s.expelled)
	for i := 0; i < nExp; i++ {
		id, err := ckpt.ReadInt(r)
		if err != nil {
			return err
		}
		round, err := ckpt.ReadInt(r)
		if err != nil {
			return err
		}
		if id < 0 || id >= len(s.clients) {
			return fmt.Errorf("expelled id %d outside [0,%d)", id, len(s.clients))
		}
		s.expelled[id] = round
	}
	hasCum, err := ckpt.ReadBool(r)
	if err != nil {
		return err
	}
	if hasCum != (s.cumWeights != nil) {
		return fmt.Errorf("cumulative-weight presence mismatch")
	}
	if hasCum {
		if err = ckpt.ReadF64sInto(r, s.cumWeights); err != nil {
			return fmt.Errorf("cumWeights: %w", err)
		}
	}
	if err = readRunHistory(r, s.run, s.cfg.Rounds); err != nil {
		return fmt.Errorf("run history: %w", err)
	}

	cursor := func(u ckpt.Unmarshaler) error {
		if applyRNG {
			return ckpt.ReadCursor(r, u)
		}
		return ckpt.SkipCursor(r)
	}
	if err = cursor(s.partRNG); err != nil {
		return fmt.Errorf("participation stream: %w", err)
	}
	for i, c := range s.clients {
		if err = cursor(c.sampler.Stream()); err != nil {
			return fmt.Errorf("client %d sampler: %w", i, err)
		}
	}
	for i, c := range s.clients {
		hasAdv, err := ckpt.ReadBool(r)
		if err != nil {
			return err
		}
		if hasAdv != (c.adv != nil) {
			return fmt.Errorf("client %d adversary presence mismatch", i)
		}
		if c.adv == nil {
			continue
		}
		if err = cursor(c.adv.r); err != nil {
			return fmt.Errorf("client %d adversary stream: %w", i, err)
		}
		nAlts, err := ckpt.ReadInt(r)
		if err != nil {
			return err
		}
		if nAlts != len(c.adv.alts) {
			return fmt.Errorf("client %d has %d data corruptions, checkpoint %d", i, len(c.adv.alts), nAlts)
		}
		for _, alt := range c.adv.alts {
			if err = cursor(alt.sampler.Stream()); err != nil {
				return fmt.Errorf("client %d corrupt sampler: %w", i, err)
			}
		}
	}
	hasComp, err := ckpt.ReadBool(r)
	if err != nil {
		return err
	}
	if hasComp != (s.pool.comp != nil) {
		return fmt.Errorf("compression presence mismatch")
	}
	if comp := s.pool.comp; comp != nil {
		for i, st := range comp.streams {
			if err = cursor(st); err != nil {
				return fmt.Errorf("client %d quantization stream: %w", i, err)
			}
		}
		// EF residuals are algorithm state, not stream cursors: restored
		// unconditionally so a rollback rewinds the error feedback too.
		rows, err := ckpt.ReadF64Rows(r)
		if err != nil {
			return fmt.Errorf("EF residuals: %w", err)
		}
		if comp.resid32 != nil {
			if rows != nil && len(rows) != len(comp.resid32) {
				return fmt.Errorf("%d residual rows for %d clients", len(rows), len(comp.resid32))
			}
			for i := range comp.resid32 {
				if rows == nil || rows[i] == nil {
					comp.resid32[i] = nil
					continue
				}
				if len(rows[i]) != len(s.params) {
					return fmt.Errorf("client %d residual length %d, want %d", i, len(rows[i]), len(s.params))
				}
				e := comp.resid32[i]
				if e == nil {
					e = make([]float32, len(s.params))
				}
				vecmath.Narrow(e, rows[i])
				comp.resid32[i] = e
			}
		} else {
			if rows != nil && len(rows) != len(comp.resid) {
				return fmt.Errorf("%d residual rows for %d clients", len(rows), len(comp.resid))
			}
			for i := range comp.resid {
				if rows == nil || rows[i] == nil {
					comp.resid[i] = nil
					continue
				}
				if len(rows[i]) != len(s.params) {
					return fmt.Errorf("client %d residual length %d, want %d", i, len(rows[i]), len(s.params))
				}
				comp.resid[i] = rows[i]
			}
		}
	}
	hasPlan, err := ckpt.ReadBool(r)
	if err != nil {
		return err
	}
	if hasPlan != (s.plan != nil) {
		return fmt.Errorf("fault-plan presence mismatch")
	}
	if s.plan != nil {
		for i, cf := range s.plan.perClient {
			has, err := ckpt.ReadBool(r)
			if err != nil {
				return err
			}
			if has != (cf != nil) {
				return fmt.Errorf("client %d fault-stream presence mismatch", i)
			}
			if cf != nil {
				if err = cursor(cf.r); err != nil {
					return fmt.Errorf("client %d fault stream: %w", i, err)
				}
			}
		}
	}

	stateful, err := ckpt.ReadBool(r)
	if err != nil {
		return err
	}
	sa, isStateful := s.alg.(StatefulAlgorithm)
	if stateful != isStateful {
		return fmt.Errorf("algorithm statefulness mismatch")
	}
	if stateful {
		if err = sa.LoadState(r); err != nil {
			return fmt.Errorf("algorithm state: %w", err)
		}
	}

	isAsync, err := ckpt.ReadBool(r)
	if err != nil {
		return err
	}
	if isAsync != (s.cfg.Policy == PolicyAsync) {
		return fmt.Errorf("policy mismatch")
	}
	if isAsync {
		if s.pending == nil {
			s.pending = make([]flight, len(s.clients))
			s.buffer = make([]Update, 0, s.cfg.asyncBuffer())
		}
		for id := range s.pending {
			// Drop any current in-flight state; restored flights get
			// fresh ring entries below.
			s.pending[id] = flight{}
			live, err := ckpt.ReadBool(r)
			if err != nil {
				return err
			}
			if !live {
				continue
			}
			f := &s.pending[id]
			f.live = true
			if f.version, err = ckpt.ReadInt(r); err != nil {
				return err
			}
			if f.measured, err = ckpt.ReadF64(r); err != nil {
				return err
			}
			if f.finish, err = ckpt.ReadF64(r); err != nil {
				return err
			}
			if f.failed, err = ckpt.ReadBool(r); err != nil {
				return err
			}
			if f.attempt, err = ckpt.ReadInt(r); err != nil {
				return err
			}
			if f.dup, err = ckpt.ReadBool(r); err != nil {
				return err
			}
			u := s.pool.getUpload()
			f.update = Update{
				Client:     id,
				Delta:      u.delta,
				NumSamples: s.clients[id].data.Len(),
				Corrupt:    s.clients[id].corrupt(),
				ring:       u,
			}
			if f.update.TrainLoss, err = ckpt.ReadF64(r); err != nil {
				return err
			}
			if f.update.Corrupt, err = ckpt.ReadBool(r); err != nil {
				return err
			}
			if err = ckpt.ReadF64sInto(r, u.delta); err != nil {
				return fmt.Errorf("client %d in-flight delta: %w", id, err)
			}
			hasPay, err := ckpt.ReadBool(r)
			if err != nil {
				return err
			}
			if hasPay != (s.pool.comp != nil) {
				return fmt.Errorf("client %d in-flight payload presence mismatch", id)
			}
			if hasPay {
				if err = readPayloadInto(r, &u.pay); err != nil {
					return fmt.Errorf("client %d in-flight payload: %w", id, err)
				}
				f.update.Payload = &u.pay
			}
		}
		hasAttempts, err := ckpt.ReadBool(r)
		if err != nil {
			return err
		}
		if hasAttempts != (s.attempts != nil) {
			return fmt.Errorf("retry-attempt table presence mismatch")
		}
		if hasAttempts {
			att, err := ckpt.ReadInts(r)
			if err != nil {
				return err
			}
			if att != nil && len(att) != len(s.attempts) {
				return fmt.Errorf("%d attempt entries for %d clients", len(att), len(s.attempts))
			}
			for i := range s.attempts {
				if att == nil {
					s.attempts[i] = 0
				} else {
					s.attempts[i] = att[i]
				}
			}
		}
		s.buffer = s.buffer[:0]
		s.bufMeasured = 0
	}
	fromWire, err := ckpt.ReadBool(r)
	if err != nil {
		return err
	}
	rx, isWire := s.exec.(*remoteExec)
	if fromWire && !isWire {
		return fmt.Errorf("checkpoint was written by a wire run (fl.Serve); restore it with ServeResume")
	}
	if !fromWire && isWire {
		return fmt.Errorf("checkpoint was written by an in-process run (fl.Run); restore it with Resume")
	}
	if fromWire {
		if err := rx.readWireState(r); err != nil {
			return fmt.Errorf("wire state: %w", err)
		}
	}
	s.stepRetries, s.stepDropped, s.stepDups, s.stepDupBytes = 0, 0, 0, 0
	s.failStreak = 0
	return nil
}

// writeRunHistory serializes the metric history accumulated so far.
// The run-level recovery counters (RecoveredRounds, Rollbacks, Halt*)
// are process-local — they describe what happened to *this* execution,
// so restores must not erase them — and are therefore not serialized.
func writeRunHistory(w io.Writer, run *metrics.Run) {
	ckpt.WriteBool(w, run.Diverged)
	ckpt.WriteInt(w, run.DivergedRound)
	ckpt.WriteInt(w, len(run.Rounds))
	for i := range run.Rounds {
		writeRound(w, &run.Rounds[i])
	}
}

// readRunHistory restores history written by writeRunHistory, reusing
// the run's round slice.
func readRunHistory(r io.Reader, run *metrics.Run, maxRounds int) error {
	var err error
	if run.Diverged, err = ckpt.ReadBool(r); err != nil {
		return err
	}
	if run.DivergedRound, err = ckpt.ReadInt(r); err != nil {
		return err
	}
	n, err := ckpt.ReadInt(r)
	if err != nil {
		return err
	}
	if n < 0 || n > maxRounds {
		return fmt.Errorf("%d recorded rounds exceeds budget %d", n, maxRounds)
	}
	run.Rounds = run.Rounds[:0]
	for i := 0; i < n; i++ {
		var rec metrics.Round
		if err := readRound(r, &rec); err != nil {
			return err
		}
		run.Rounds = append(run.Rounds, rec)
	}
	return nil
}

// writeRound serializes one round record, field for field in struct
// order; readRound mirrors it exactly.
func writeRound(w io.Writer, rec *metrics.Round) {
	ckpt.WriteInt(w, rec.Index)
	ckpt.WriteF64(w, rec.Accuracy)
	ckpt.WriteF64(w, rec.TrainLoss)
	ckpt.WriteF64(w, rec.SlowestModeledSec)
	ckpt.WriteF64(w, rec.SlowestMeasuredSec)
	ckpt.WriteF64(w, rec.CumModeledSec)
	ckpt.WriteF64(w, rec.CumMeasuredSec)
	ckpt.WriteF64(w, rec.MeanAlpha)
	ckpt.WriteF64(w, rec.MeanStaleness)
	ckpt.WriteInt(w, rec.MaxStaleness)
	ckpt.WriteInt(w, rec.DroppedClients)
	ckpt.WriteInt(w, rec.Retries)
	ckpt.WriteInt(w, rec.DroppedUpdates)
	ckpt.WriteInt(w, rec.DupUpdates)
	ckpt.WriteBool(w, rec.Degraded)
	ckpt.WriteInt(w, rec.ZeroedUpdates)
	ckpt.WriteInt(w, rec.ClippedUpdates)
	ckpt.WriteF64(w, rec.ClipNorm)
	ckpt.WriteF64(w, rec.HonestWeight)
	ckpt.WriteF64(w, rec.CorruptWeight)
	ckpt.WriteU64(w, uint64(rec.UplinkBytes))
	ckpt.WriteF64(w, rec.CompressionRatio)
	ckpt.WriteInt(w, rec.ReassignedDispatches)
	ckpt.WriteInt(w, rec.WorkerReconnects)
}

func readRound(r io.Reader, rec *metrics.Round) error {
	var err error
	read := func(dst *float64) {
		if err == nil {
			*dst, err = ckpt.ReadF64(r)
		}
	}
	readi := func(dst *int) {
		if err == nil {
			*dst, err = ckpt.ReadInt(r)
		}
	}
	readi(&rec.Index)
	read(&rec.Accuracy)
	read(&rec.TrainLoss)
	read(&rec.SlowestModeledSec)
	read(&rec.SlowestMeasuredSec)
	read(&rec.CumModeledSec)
	read(&rec.CumMeasuredSec)
	read(&rec.MeanAlpha)
	read(&rec.MeanStaleness)
	readi(&rec.MaxStaleness)
	readi(&rec.DroppedClients)
	readi(&rec.Retries)
	readi(&rec.DroppedUpdates)
	readi(&rec.DupUpdates)
	if err == nil {
		rec.Degraded, err = ckpt.ReadBool(r)
	}
	readi(&rec.ZeroedUpdates)
	readi(&rec.ClippedUpdates)
	read(&rec.ClipNorm)
	read(&rec.HonestWeight)
	read(&rec.CorruptWeight)
	if err == nil {
		var v uint64
		v, err = ckpt.ReadU64(r)
		rec.UplinkBytes = int64(v)
	}
	read(&rec.CompressionRatio)
	readi(&rec.ReassignedDispatches)
	readi(&rec.WorkerReconnects)
	return err
}

// writePayload serializes an encoded update payload (the async policy's
// in-flight uploads carry one when a codec is live).
func writePayload(w io.Writer, p *compress.Payload) {
	ckpt.WriteBytes(w, []byte(p.Form))
	ckpt.WriteInt(w, p.N)
	ckpt.WriteInt(w, p.ChunkLen)
	ckpt.WriteInt(w, len(p.Idx))
	for _, v := range p.Idx {
		ckpt.WriteInt(w, int(v))
	}
	ckpt.WriteF64s(w, p.Val)
	ckpt.WriteInt(w, len(p.Q))
	for _, v := range p.Q {
		ckpt.WriteInt(w, int(v))
	}
	ckpt.WriteF64s(w, p.Scale)
}

// readPayloadInto restores a payload into the ring entry's pre-grown
// backing arrays.
func readPayloadInto(r io.Reader, p *compress.Payload) error {
	form, err := ckpt.ReadBytes(r)
	if err != nil {
		return err
	}
	p.Form = compress.Kind(form)
	if p.N, err = ckpt.ReadInt(r); err != nil {
		return err
	}
	if p.ChunkLen, err = ckpt.ReadInt(r); err != nil {
		return err
	}
	nIdx, err := ckpt.ReadInt(r)
	if err != nil {
		return err
	}
	if nIdx < 0 || nIdx > ckpt.MaxElems {
		return fmt.Errorf("payload index count %d out of range", nIdx)
	}
	p.Idx = p.Idx[:0]
	for i := 0; i < nIdx; i++ {
		v, err := ckpt.ReadInt(r)
		if err != nil {
			return err
		}
		p.Idx = append(p.Idx, int32(v))
	}
	val, err := ckpt.ReadF64s(r)
	if err != nil {
		return err
	}
	p.Val = append(p.Val[:0], val...)
	nQ, err := ckpt.ReadInt(r)
	if err != nil {
		return err
	}
	if nQ < 0 || nQ > ckpt.MaxElems {
		return fmt.Errorf("payload quantum count %d out of range", nQ)
	}
	p.Q = p.Q[:0]
	for i := 0; i < nQ; i++ {
		v, err := ckpt.ReadInt(r)
		if err != nil {
			return err
		}
		p.Q = append(p.Q, int8(v))
	}
	scale, err := ckpt.ReadF64s(r)
	if err != nil {
		return err
	}
	p.Scale = append(p.Scale[:0], scale...)
	return nil
}
