package fl_test

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/baselines"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/simclock"
)

// testSetup builds a small 8-client adult-MLP federation.
func testSetup(t *testing.T, clients int) (*nn.Network, []*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	train, test, err := dataset.Standard("adult", dataset.ScaleSmall, 3)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Dirichlet(train, clients, 0.5, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	net, err := dataset.Model("adult")
	if err != nil {
		t.Fatal(err)
	}
	return net, part.Shards(train), test
}

func quickConfig() fl.Config {
	return fl.Config{
		Rounds:     6,
		LocalSteps: 5,
		BatchSize:  16,
		LocalLR:    0.05,
		Seed:       11,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*fl.Config)
	}{
		{"zero rounds", func(c *fl.Config) { c.Rounds = 0 }},
		{"zero steps", func(c *fl.Config) { c.LocalSteps = 0 }},
		{"zero batch", func(c *fl.Config) { c.BatchSize = 0 }},
		{"zero lr", func(c *fl.Config) { c.LocalLR = 0 }},
		{"negative global lr", func(c *fl.Config) { c.GlobalLR = -1 }},
		{"participation above one", func(c *fl.Config) { c.ParticipationFraction = 1.5 }},
		{"negative participation", func(c *fl.Config) { c.ParticipationFraction = -0.1 }},
		{"unknown policy", func(c *fl.Config) { c.Policy = fl.AggregationPolicy(99) }},
		{"negative policy", func(c *fl.Config) { c.Policy = fl.AggregationPolicy(-1) }},
		{"negative deadline", func(c *fl.Config) {
			c.Policy = fl.PolicyDeadline
			c.RoundDeadlineSec = -1
		}},
		{"deadline policy without deadline", func(c *fl.Config) { c.Policy = fl.PolicyDeadline }},
		{"deadline without deadline policy", func(c *fl.Config) { c.RoundDeadlineSec = 2 }},
		{"negative async buffer", func(c *fl.Config) {
			c.Policy = fl.PolicyAsync
			c.AsyncBuffer = -1
		}},
		{"async buffer without async policy", func(c *fl.Config) { c.AsyncBuffer = 4 }},
		{"async with partial participation", func(c *fl.Config) {
			c.Policy = fl.PolicyAsync
			c.ParticipationFraction = 0.5
		}},
		{"zero device speed", func(c *fl.Config) {
			c.Devices = []simclock.DeviceProfile{{SpeedFactor: 0}}
		}},
		{"negative device speed", func(c *fl.Config) {
			c.Devices = []simclock.DeviceProfile{{SpeedFactor: -2}}
		}},
		{"negative trace period", func(c *fl.Config) {
			c.Devices = []simclock.DeviceProfile{{SpeedFactor: 1, Availability: simclock.Trace{PeriodSec: -1}}}
		}},
		{"trace on-fraction zero", func(c *fl.Config) {
			c.Devices = []simclock.DeviceProfile{{SpeedFactor: 1, Availability: simclock.Trace{PeriodSec: 5}}}
		}},
		{"trace on-fraction above one", func(c *fl.Config) {
			c.Devices = []simclock.DeviceProfile{{SpeedFactor: 1, Availability: simclock.Trace{PeriodSec: 5, OnFraction: 1.5}}}
		}},
		{"trace offset NaN", func(c *fl.Config) {
			c.Devices = []simclock.DeviceProfile{{SpeedFactor: 1, Availability: simclock.Trace{PeriodSec: 5, OnFraction: 0.5, OffsetSec: math.NaN()}}}
		}},
		{"negative freeloader id", func(c *fl.Config) { c.Freeloaders = []int{-1} }},
		{"unknown adversary kind", func(c *fl.Config) {
			c.Adversaries = []adversary.Spec{{Kind: "nope", Frac: 0.5}}
		}},
		{"adversary selects nobody", func(c *fl.Config) {
			c.Adversaries = []adversary.Spec{{Kind: adversary.KindSignFlip}}
		}},
		{"adversary fraction above one", func(c *fl.Config) {
			c.Adversaries = []adversary.Spec{{Kind: adversary.KindSignFlip, Frac: 1.5}}
		}},
		{"adversary both selectors", func(c *fl.Config) {
			c.Adversaries = []adversary.Spec{{Kind: adversary.KindSignFlip, Clients: []int{1}, Frac: 0.5}}
		}},
		{"adversary duplicate client", func(c *fl.Config) {
			c.Adversaries = []adversary.Spec{{Kind: adversary.KindSignFlip, Clients: []int{2, 2}}}
		}},
		{"adversary negative scale", func(c *fl.Config) {
			c.Adversaries = []adversary.Spec{{Kind: adversary.KindScale, Frac: 0.5, Scale: -3}}
		}},
		{"adversary bad window", func(c *fl.Config) {
			c.Adversaries = []adversary.Spec{{Kind: adversary.KindSignFlip, Frac: 0.5, Window: simclock.Trace{PeriodSec: 5}}}
		}},
		{"unknown codec kind", func(c *fl.Config) {
			c.Compress = compress.Spec{Kind: "gzip"}
		}},
		{"topk fraction above one", func(c *fl.Config) {
			c.Compress = compress.Spec{Kind: compress.KindTopK, TopKFrac: 1.5}
		}},
		{"topk fraction on int8", func(c *fl.Config) {
			c.Compress = compress.Spec{Kind: compress.KindInt8, TopKFrac: 0.1}
		}},
		{"negative int8 chunk", func(c *fl.Config) {
			c.Compress = compress.Spec{Kind: compress.KindInt8, Chunk: -1}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := quickConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("expected a validation error")
			}
		})
	}
	valid := []struct {
		name   string
		mutate func(*fl.Config)
	}{
		{"default sync", func(*fl.Config) {}},
		{"full participation boundary", func(c *fl.Config) { c.ParticipationFraction = 1 }},
		{"topk codec defaults", func(c *fl.Config) { c.Compress = compress.Spec{Kind: compress.KindTopK} }},
		{"int8 codec chunked", func(c *fl.Config) { c.Compress = compress.Spec{Kind: compress.KindInt8, Chunk: 64} }},
		{"adversary stack", func(c *fl.Config) {
			c.Adversaries = []adversary.Spec{
				{Kind: adversary.KindLabelFlip, Frac: 0.3},
				{Kind: adversary.KindSybil, Clients: []int{0, 2}, Scale: 2,
					Window: simclock.Trace{PeriodSec: 10, OnFraction: 0.5}},
			}
		}},
		{"deadline policy", func(c *fl.Config) {
			c.Policy = fl.PolicyDeadline
			c.RoundDeadlineSec = 1.5
		}},
		{"async policy", func(c *fl.Config) {
			c.Policy = fl.PolicyAsync
			c.AsyncBuffer = 4
		}},
		{"async default buffer", func(c *fl.Config) { c.Policy = fl.PolicyAsync }},
		{"device fleet", func(c *fl.Config) {
			c.Devices = []simclock.DeviceProfile{
				{SpeedFactor: 1},
				{SpeedFactor: 3, Availability: simclock.Trace{PeriodSec: 5, OnFraction: 0.5}},
			}
		}},
	}
	for _, tt := range valid {
		t.Run("valid "+tt.name, func(t *testing.T) {
			cfg := quickConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("valid config rejected: %v", err)
			}
		})
	}
}

func TestRunImprovesAccuracy(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	res, err := fl.Run(quickConfig(), baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	run := res.Run
	if len(run.Rounds) != 6 {
		t.Fatalf("recorded %d rounds, want 6", len(run.Rounds))
	}
	first := run.Rounds[0].Accuracy
	final := run.FinalAccuracy()
	if final <= first {
		t.Fatalf("no learning: round1 %.4f -> final %.4f", first, final)
	}
	if final < 0.6 {
		t.Fatalf("final accuracy %.4f too low for adult", final)
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	cfgSerial := quickConfig()
	cfgSerial.Parallelism = 1
	cfgParallel := quickConfig()
	cfgParallel.Parallelism = 8

	resA, err := fl.Run(cfgSerial, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := fl.Run(cfgParallel, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resA.FinalParams {
		if resA.FinalParams[i] != resB.FinalParams[i] {
			t.Fatal("parameters differ across parallelism levels")
		}
	}
	for i := range resA.Run.Rounds {
		if resA.Run.Rounds[i].Accuracy != resB.Run.Rounds[i].Accuracy {
			t.Fatal("accuracy history differs across parallelism levels")
		}
	}
}

func TestRunDeterministicSameSeed(t *testing.T) {
	net, shards, test := testSetup(t, 6)
	resA, err := fl.Run(quickConfig(), core.New(core.Config{}), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := fl.Run(quickConfig(), core.New(core.Config{}), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resA.FinalParams {
		if resA.FinalParams[i] != resB.FinalParams[i] {
			t.Fatal("TACO run not reproducible with identical seeds")
		}
	}
}

func TestRunDifferentSeedsDiffer(t *testing.T) {
	net, shards, test := testSetup(t, 6)
	cfgA := quickConfig()
	cfgB := quickConfig()
	cfgB.Seed = 999
	resA, err := fl.Run(cfgA, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := fl.Run(cfgB, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range resA.FinalParams {
		if resA.FinalParams[i] != resB.FinalParams[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical models")
	}
}

func TestRunErrors(t *testing.T) {
	net, shards, test := testSetup(t, 4)
	t.Run("no shards", func(t *testing.T) {
		if _, err := fl.Run(quickConfig(), baselines.NewFedAvg(), net, nil, test); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("bad config", func(t *testing.T) {
		cfg := quickConfig()
		cfg.Rounds = 0
		if _, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("bad freeloader id", func(t *testing.T) {
		cfg := quickConfig()
		cfg.Freeloaders = []int{99}
		if _, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test); err == nil {
			t.Fatal("expected error")
		}
	})
}

func TestAllAlgorithmsRun(t *testing.T) {
	net, shards, test := testSetup(t, 6)
	algs := []fl.Algorithm{
		baselines.NewFedAvg(),
		baselines.NewFedProx(0.1),
		baselines.NewFoolsGold(),
		baselines.NewScaffold(1),
		baselines.NewSTEM(0.2),
		baselines.NewFedACG(0.001),
		core.New(core.Config{}),
		core.NewFedProxTACO(0.1),
		core.NewScaffoldTACO(),
	}
	for _, alg := range algs {
		t.Run(alg.Name(), func(t *testing.T) {
			res, err := fl.Run(quickConfig(), alg, net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			if res.Run.Diverged {
				t.Fatalf("%s diverged on the easy setup", alg.Name())
			}
			if res.Run.FinalAccuracy() < 0.55 {
				t.Fatalf("%s final accuracy %.4f too low", alg.Name(), res.Run.FinalAccuracy())
			}
		})
	}
}

func TestTimingRecorded(t *testing.T) {
	net, shards, test := testSetup(t, 4)
	res, err := fl.Run(quickConfig(), baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range res.Run.Rounds {
		if rec.SlowestModeledSec <= 0 {
			t.Fatalf("round %d modeled time %v, want > 0", i, rec.SlowestModeledSec)
		}
		if rec.SlowestMeasuredSec <= 0 {
			t.Fatalf("round %d measured time %v, want > 0", i, rec.SlowestMeasuredSec)
		}
	}
	last := res.Run.Rounds[len(res.Run.Rounds)-1]
	if last.CumModeledSec <= last.SlowestModeledSec*0.99 {
		t.Fatal("cumulative modeled time not accumulating")
	}
}

func TestSTEMCostsMoreModeledTime(t *testing.T) {
	net, shards, test := testSetup(t, 4)
	fedavg, err := fl.Run(quickConfig(), baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	stem, err := fl.Run(quickConfig(), baselines.NewSTEM(0.2), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if stem.Run.Rounds[0].SlowestModeledSec <= fedavg.Run.Rounds[0].SlowestModeledSec {
		t.Fatal("STEM must cost more modeled time per round than FedAvg")
	}
}

func TestWeightByData(t *testing.T) {
	net, shards, test := testSetup(t, 5)
	cfg := quickConfig()
	cfg.WeightByData = true
	res, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.FinalAccuracy() < 0.55 {
		t.Fatalf("data-weighted FedAvg accuracy %.4f too low", res.Run.FinalAccuracy())
	}
}

func TestAggregationWeights(t *testing.T) {
	updates := []fl.Update{
		{Client: 0, NumSamples: 10},
		{Client: 1, NumSamples: 30},
	}
	uniform := fl.AggregationWeights(updates, false)
	if uniform[0] != 0.5 || uniform[1] != 0.5 {
		t.Fatalf("uniform weights = %v", uniform)
	}
	byData := fl.AggregationWeights(updates, true)
	if byData[0] != 0.25 || byData[1] != 0.75 {
		t.Fatalf("data weights = %v", byData)
	}
}

func TestFreeloaderUploadsReplay(t *testing.T) {
	net, shards, test := testSetup(t, 6)
	cfg := quickConfig()
	cfg.Freeloaders = []int{5}
	res, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	// The engine's replay mechanism must keep training functional: a
	// single freeloader merely echoes the previous global step.
	if res.Run.FinalAccuracy() < 0.55 {
		t.Fatalf("accuracy %.4f with one freeloader", res.Run.FinalAccuracy())
	}
	// The freeloader reports no training loss, so the mean loss comes
	// from honest clients only and must be finite and positive.
	if last := res.Run.Rounds[len(res.Run.Rounds)-1]; last.TrainLoss <= 0 {
		t.Fatalf("train loss %v with freeloader present", last.TrainLoss)
	}
}

func TestPartialParticipation(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	cfg := quickConfig()
	cfg.ParticipationFraction = 0.5
	res, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.FinalAccuracy() < 0.55 {
		t.Fatalf("partial participation accuracy %.4f too low", res.Run.FinalAccuracy())
	}
	// Determinism must hold under sampling too.
	res2, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.FinalParams {
		if res.FinalParams[i] != res2.FinalParams[i] {
			t.Fatal("partial participation broke determinism")
		}
	}
	// Different from the full-participation run.
	full := quickConfig()
	resFull, err := fl.Run(full, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range res.FinalParams {
		if res.FinalParams[i] != resFull.FinalParams[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("sampling had no effect on the trajectory")
	}
}

func TestParticipationValidation(t *testing.T) {
	cfg := quickConfig()
	cfg.ParticipationFraction = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected validation error for fraction > 1")
	}
	cfg.ParticipationFraction = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected validation error for negative fraction")
	}
}

// TestAsyncBufferAboveClientCount: with AsyncBuffer > n a client
// contributes several updates to one server step (it re-dispatches after
// each upload), so the per-step scratch of α-tracking algorithms must
// track the update count, not the client count — this used to panic in
// TACO's aggregate path.
func TestAsyncBufferAboveClientCount(t *testing.T) {
	net, shards, test := testSetup(t, 4)
	cfg := quickConfig()
	cfg.Policy = fl.PolicyAsync
	cfg.AsyncBuffer = 15
	res, err := fl.Run(cfg, core.New(core.Recommended()), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Run.Rounds) != cfg.Rounds {
		t.Fatalf("recorded %d server steps, want %d", len(res.Run.Rounds), cfg.Rounds)
	}
}

// TestTACOSuppressesCorruptMass is the headline defense property: under
// a sign-flip attack TACO's α-weighted aggregation grants the corrupt
// camp strictly less weight mass than FedAvg's uniform rule (which by
// construction grants exactly the head-count share).
func TestTACOSuppressesCorruptMass(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	cfg := quickConfig()
	cfg.Adversaries = []adversary.Spec{{Kind: adversary.KindSignFlip, Frac: 0.25}}
	fedavg, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	taco, err := fl.Run(cfg, core.New(core.Recommended()), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	share := 2.0 / 8
	if got := fedavg.Run.MeanCorruptWeight(); math.Abs(got-share) > 1e-9 {
		t.Fatalf("FedAvg corrupt mass %v, want the head-count share %v", got, share)
	}
	if got := taco.Run.MeanCorruptWeight(); got >= fedavg.Run.MeanCorruptWeight() {
		t.Fatalf("TACO corrupt mass %v not below FedAvg's %v", got, fedavg.Run.MeanCorruptWeight())
	}
}

// FuzzConfigValidate: Validate never panics and never accepts a config
// the engine would then choke on for spec-shape reasons.
func FuzzConfigValidate(f *testing.F) {
	f.Add(5, 3, 8, 0.05, 0.0, 0, 0.0, 0, "signflip", 0.3, 2.0, 0.0, 0.5)
	f.Add(1, 1, 1, 1.0, 1.0, 2, 0.0, 3, "freeload", 1.0, 0.0, 10.0, 1.0)
	f.Add(-1, 0, 0, -0.5, -1.0, 99, -2.0, -1, "nope", -0.5, -1.0, -3.0, 2.0)
	f.Fuzz(func(t *testing.T, rounds, steps, batch int, lr, glr float64,
		policy int, deadline float64, buffer int,
		kind string, frac, scale, winPeriod, winOn float64) {
		cfg := fl.Config{
			Rounds:           rounds,
			LocalSteps:       steps,
			BatchSize:        batch,
			LocalLR:          lr,
			GlobalLR:         glr,
			Policy:           fl.AggregationPolicy(policy),
			RoundDeadlineSec: deadline,
			AsyncBuffer:      buffer,
			Adversaries: []adversary.Spec{{
				Kind:   adversary.Kind(kind),
				Frac:   frac,
				Scale:  scale,
				Window: simclock.Trace{PeriodSec: winPeriod, OnFraction: winOn},
			}},
		}
		if err := cfg.Validate(); err != nil {
			return
		}
		// An accepted spec must compile to a behavior and resolve members.
		spec := cfg.Adversaries[0]
		if spec.Behavior() == nil {
			t.Fatalf("validated spec %+v compiles to nil behavior", spec)
		}
		if got := spec.Members(16); len(got) == 0 {
			t.Fatalf("validated spec %+v selects no members for n=16", spec)
		}
	})
}

func TestStalenessDampedWeights(t *testing.T) {
	fresh := []fl.Update{
		{Client: 0, NumSamples: 10},
		{Client: 1, NumSamples: 30},
	}
	// All-fresh updates keep the legacy weights bit-identically.
	uniform := fl.AggregationWeights(fresh, false)
	if uniform[0] != 0.5 || uniform[1] != 0.5 {
		t.Fatalf("fresh uniform weights = %v", uniform)
	}
	stale := []fl.Update{
		{Client: 0, NumSamples: 10},
		{Client: 1, NumSamples: 10, Staleness: 3},
	}
	damped := fl.AggregationWeights(stale, false)
	if damped[0] <= damped[1] {
		t.Fatalf("stale update not down-weighted: %v", damped)
	}
	if sum := damped[0] + damped[1]; math.Abs(sum-1) > 1e-12 {
		t.Fatalf("damped weights sum to %v, want 1", sum)
	}
	// The 1/√(1+s) ratio is exact.
	if ratio := damped[1] / damped[0]; math.Abs(ratio-1/math.Sqrt(4)) > 1e-12 {
		t.Fatalf("damping ratio %v, want 0.5", ratio)
	}
	if fl.StalenessDamp(0) != 1 || fl.StalenessDamp(-1) != 1 {
		t.Fatal("fresh updates must keep weight 1 exactly")
	}
}
