// Package fl implements the federated-learning engine: the parameter-
// server round loop of Section II of the paper, with algorithm hooks that
// let each method (FedAvg, FedProx, FoolsGold, Scaffold, STEM, FedACG, and
// TACO) plug in its loss regularization, per-step gradient correction, and
// aggregation rule. The engine runs clients in parallel with deterministic
// per-client random streams, measures both real and modeled client
// computation time, and detects divergence (the paper's "×" outcomes).
package fl

import (
	"fmt"
	"runtime"
)

// Config holds the engine parameters shared by every algorithm, following
// the notation of Section II: K local steps of mini-batch SGD with local
// rate ηl, then a server step with global rate ηg.
type Config struct {
	// Rounds is T, the number of communication rounds.
	Rounds int
	// LocalSteps is K, the number of local updates per round.
	LocalSteps int
	// BatchSize is s, the mini-batch size.
	BatchSize int
	// LocalLR is ηl.
	LocalLR float64
	// GlobalLR is ηg; 0 means the paper's default ηg = K·ηl.
	GlobalLR float64
	// Seed drives every random choice in the run.
	Seed uint64
	// Parallelism bounds concurrent client execution; 0 means GOMAXPROCS.
	Parallelism int
	// EvalEvery evaluates test accuracy every this many rounds; 0 means 1.
	EvalEvery int
	// WeightByData selects p_i = D_i/D aggregation weights instead of 1/N
	// for the algorithms that honor static weights.
	WeightByData bool
	// Freeloaders lists client IDs that upload replayed global gradients
	// instead of training (Section IV-A's lazy clients).
	Freeloaders []int
	// ParticipationFraction selects the fraction of active clients that
	// train each round (uniformly sampled per round). 0 or 1 means full
	// participation, the paper's setting; values in between exercise the
	// partial-participation extension.
	ParticipationFraction float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("fl: Rounds %d must be positive", c.Rounds)
	case c.LocalSteps <= 0:
		return fmt.Errorf("fl: LocalSteps %d must be positive", c.LocalSteps)
	case c.BatchSize <= 0:
		return fmt.Errorf("fl: BatchSize %d must be positive", c.BatchSize)
	case c.LocalLR <= 0:
		return fmt.Errorf("fl: LocalLR %v must be positive", c.LocalLR)
	case c.GlobalLR < 0:
		return fmt.Errorf("fl: GlobalLR %v must be non-negative", c.GlobalLR)
	case c.ParticipationFraction < 0 || c.ParticipationFraction > 1:
		return fmt.Errorf("fl: ParticipationFraction %v must be in [0,1]", c.ParticipationFraction)
	}
	return nil
}

// globalLR resolves the ηg default.
func (c Config) globalLR() float64 {
	if c.GlobalLR > 0 {
		return c.GlobalLR
	}
	return float64(c.LocalSteps) * c.LocalLR
}

// parallelism resolves the worker-pool default.
func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// evalEvery resolves the evaluation cadence default.
func (c Config) evalEvery() int {
	if c.EvalEvery > 0 {
		return c.EvalEvery
	}
	return 1
}

// freeloaderSet converts the freeloader list into a lookup set.
func (c Config) freeloaderSet() map[int]bool {
	if len(c.Freeloaders) == 0 {
		return nil
	}
	set := make(map[int]bool, len(c.Freeloaders))
	for _, id := range c.Freeloaders {
		set[id] = true
	}
	return set
}
