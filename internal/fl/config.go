// Package fl implements the federated-learning engine: an event-driven
// scheduler over the parameter-server protocol of Section II of the
// paper, with algorithm hooks that let each method (FedAvg, FedProx,
// FoolsGold, Scaffold, STEM, FedACG, and TACO) plug in its loss
// regularization, per-step gradient correction, and aggregation rule.
// Clients carry device heterogeneity profiles (simclock.DeviceProfile)
// and the server aggregates under a pluggable policy — synchronous
// lock-step, deadline-based straggler dropping, or FedBuff-style
// buffered asynchrony with staleness-damped weights (DESIGN.md §4). The
// engine runs clients in parallel with deterministic per-client random
// streams, so results are bit-identical at any parallelism level; it
// measures both real and modeled client computation time and detects
// divergence (the paper's "×" outcomes).
package fl

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/adversary"
	"repro/internal/aggstack"
	"repro/internal/compress"
	"repro/internal/fault"
	"repro/internal/simclock"
)

// AggregationPolicy selects how the server forms global updates from
// client uploads (DESIGN.md §4).
type AggregationPolicy int

const (
	// PolicySync is the paper's lock-step round: the server waits for
	// every participant, however slow.
	PolicySync AggregationPolicy = iota
	// PolicyDeadline drops stragglers whose modeled finish time exceeds
	// RoundDeadlineSec after the round start and aggregates the rest.
	PolicyDeadline
	// PolicyAsync is FedBuff-style buffered asynchronous aggregation:
	// clients train continuously and the server steps once AsyncBuffer
	// updates have arrived, tagging each with its staleness in server
	// versions.
	PolicyAsync
)

// String implements fmt.Stringer.
func (p AggregationPolicy) String() string {
	switch p {
	case PolicySync:
		return "sync"
	case PolicyDeadline:
		return "deadline"
	case PolicyAsync:
		return "async"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// PolicyNames lists the accepted -policy flag values in PolicySync order.
func PolicyNames() []string { return []string{"sync", "deadline", "async"} }

// ParsePolicy converts a flag value into an AggregationPolicy.
func ParsePolicy(s string) (AggregationPolicy, error) {
	switch s {
	case "sync":
		return PolicySync, nil
	case "deadline":
		return PolicyDeadline, nil
	case "async":
		return PolicyAsync, nil
	default:
		return 0, fmt.Errorf("fl: unknown policy %q (valid: %v)", s, PolicyNames())
	}
}

// Config holds the engine parameters shared by every algorithm, following
// the notation of Section II: K local steps of mini-batch SGD with local
// rate ηl, then a server step with global rate ηg.
type Config struct {
	// Rounds is T, the number of communication rounds.
	Rounds int
	// LocalSteps is K, the number of local updates per round.
	LocalSteps int
	// BatchSize is s, the mini-batch size.
	BatchSize int
	// LocalLR is ηl.
	LocalLR float64
	// GlobalLR is ηg; 0 means the paper's default ηg = K·ηl.
	GlobalLR float64
	// Seed drives every random choice in the run.
	Seed uint64
	// DType selects the client-side training compute precision: "f64" (or
	// empty, the default) is the float64 golden path; "f32" runs each
	// client's forward/backward natively in float32 on the AVX2 8-lane
	// kernels (DESIGN.md §10). Precision is a client-compute property
	// only: uploads are widened to float64 at the aggregation boundary,
	// so every aggregation rule, robust stage, server optimizer, and
	// checkpoint runs bit-identical float64 arithmetic under either
	// setting. Algorithms needing in-step float64 gradient evaluations
	// (STEM) reject "f32" at setup.
	DType string
	// Parallelism bounds concurrent client execution; 0 means GOMAXPROCS.
	Parallelism int
	// EvalEvery evaluates test accuracy every this many rounds; 0 means 1.
	EvalEvery int
	// WeightByData selects p_i = D_i/D aggregation weights instead of 1/N
	// for the algorithms that honor static weights.
	WeightByData bool
	// Freeloaders lists client IDs that upload replayed global gradients
	// instead of training (Section IV-A's lazy clients). Sugar for an
	// always-on adversary.Spec{Kind: KindFreeloader, Clients: ...}; the
	// engine normalizes it into the adversary pipeline.
	Freeloaders []int
	// Adversaries declares client corruptions (attack injectors) applied
	// on top of the honest protocol: data-level label attacks,
	// update-level delta injectors, freeloaders, and sybil camps, each
	// optionally gated by an activation window. Specs compose per client
	// (at most one fabricator each); an empty list is the honest run,
	// bit-identical to a config without the field.
	Adversaries []adversary.Spec
	// ParticipationFraction selects the fraction of active clients that
	// train each round (uniformly sampled per round). 0 or 1 means full
	// participation, the paper's setting; values in between exercise the
	// partial-participation extension. Incompatible with PolicyAsync,
	// where every client trains continuously.
	ParticipationFraction float64
	// Policy selects the aggregation policy; the zero value PolicySync
	// reproduces the paper's lock-step engine bit-identically.
	Policy AggregationPolicy
	// RoundDeadlineSec is the deadline policy's per-round straggler
	// cut-off in modeled seconds after the round start. Required positive
	// when Policy is PolicyDeadline; must be zero otherwise.
	RoundDeadlineSec float64
	// AsyncBuffer is the number of buffered client updates that triggers
	// one asynchronous server step (FedBuff's K); 0 means 1, fully
	// asynchronous aggregation. Must be zero unless Policy is PolicyAsync.
	AsyncBuffer int
	// Devices optionally assigns a heterogeneity profile to each client
	// (speed multiplier + availability trace; see simclock.FleetByName).
	// Empty means a uniform always-available fleet; otherwise its length
	// must equal the number of client shards (checked by Run).
	Devices []simclock.DeviceProfile
	// Compress selects the uplink update codec (top-k sparsification or
	// int8 stochastic quantization, each with per-client error-feedback
	// residuals; DESIGN.md §7). The zero value is dense transport,
	// bit-identical to the pre-codec engine.
	Compress compress.Spec
	// Faults declares benign failure injection (DESIGN.md §8): client
	// crashes, uplink loss or duplication, tail-latency spikes, and a
	// simulated server crash. Per-dispatch outcomes draw from dedicated
	// rng streams derived after every honest, adversary, and compression
	// stream, so an empty list is bit-identical to the fault-free golden.
	Faults []fault.Spec
	// FaultRetries is the number of fault-triggered re-dispatches allowed
	// per client dispatch on top of the first attempt; 0 means 2, -1
	// means none. Only meaningful with Faults.
	FaultRetries int
	// FaultTimeoutFactor multiplies a dispatch's fault-free modeled
	// completion time (availability wait + compute) to form its timeout
	// budget; a dispatch not delivered within the budget is retried.
	// 0 means 3; must be >= 1 (a sub-unit budget would time out every
	// dispatch and starve the async policy). Only meaningful with Faults.
	FaultTimeoutFactor float64
	// FaultBackoffSec is the base of the deterministic exponential
	// backoff between retry dispatches (doubled per attempt, jittered
	// from the client's fault stream); 0 means a quarter of the nominal
	// modeled round. Only meaningful with Faults.
	FaultBackoffSec float64
	// Quorum is the fraction of the round's dispatched updates that must
	// be delivered for the round to commit cleanly; below it the round
	// still commits but is recorded as degraded (metrics.Round.Degraded —
	// never silent). 0 disables the check. Sync and deadline policies
	// only, and only meaningful with Faults.
	Quorum float64
	// AggStack declares the composable robust pre-aggregation pipeline
	// (DESIGN.md §9): zeroing and clipping stages, fixed-bound or
	// quantile-matched adaptive, applied to every round's updates before
	// the algorithm's aggregation rule sees them. The zero value is the
	// identity, bit-identical to the pre-stack engine.
	AggStack aggstack.StackSpec
	// ServerOpt selects the FedOpt server optimizer applied to the
	// aggregated pseudo-gradient (fedsgd/adagrad/adam/yogi). The zero
	// value applies none; fedsgd with LR 1 runs the machinery but is
	// bit-identical to none (golden-pinned).
	ServerOpt aggstack.OptSpec
	// CheckpointEvery serializes the full run state (model, per-client
	// algorithm state, EF residuals, rng cursors, async in-flight work)
	// every this many rounds; resume from any checkpoint is bit-identical
	// to the uninterrupted run. It also arms the divergence guard: a
	// round producing non-finite parameters rolls back to the last
	// checkpoint instead of halting. 0 disables periodic checkpoints
	// (a servercrash fault still forces an initial one).
	CheckpointEvery int
	// OnCheckpoint, when set, receives every serialized checkpoint with
	// the 0-based round it resumes at. The byte slice is reused by the
	// next checkpoint; copy it to retain.
	OnCheckpoint func(round int, data []byte)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("fl: Rounds %d must be positive", c.Rounds)
	case c.LocalSteps <= 0:
		return fmt.Errorf("fl: LocalSteps %d must be positive", c.LocalSteps)
	case c.BatchSize <= 0:
		return fmt.Errorf("fl: BatchSize %d must be positive", c.BatchSize)
	case c.LocalLR <= 0:
		return fmt.Errorf("fl: LocalLR %v must be positive", c.LocalLR)
	case c.GlobalLR < 0:
		return fmt.Errorf("fl: GlobalLR %v must be non-negative", c.GlobalLR)
	case c.DType != "" && c.DType != "f64" && c.DType != "f32":
		return fmt.Errorf("fl: unknown DType %q (valid: f64, f32)", c.DType)
	case c.ParticipationFraction < 0 || c.ParticipationFraction > 1:
		return fmt.Errorf("fl: ParticipationFraction %v must be in [0,1]", c.ParticipationFraction)
	case c.Policy < PolicySync || c.Policy > PolicyAsync:
		return fmt.Errorf("fl: unknown aggregation policy %d", c.Policy)
	case c.RoundDeadlineSec < 0:
		return fmt.Errorf("fl: RoundDeadlineSec %v must be non-negative", c.RoundDeadlineSec)
	case c.Policy == PolicyDeadline && c.RoundDeadlineSec == 0:
		return fmt.Errorf("fl: PolicyDeadline requires RoundDeadlineSec > 0")
	case c.Policy != PolicyDeadline && c.RoundDeadlineSec != 0:
		return fmt.Errorf("fl: RoundDeadlineSec %v is only meaningful with PolicyDeadline", c.RoundDeadlineSec)
	case c.AsyncBuffer < 0:
		return fmt.Errorf("fl: AsyncBuffer %d must be non-negative", c.AsyncBuffer)
	case c.Policy != PolicyAsync && c.AsyncBuffer != 0:
		return fmt.Errorf("fl: AsyncBuffer %d is only meaningful with PolicyAsync", c.AsyncBuffer)
	case c.Policy == PolicyAsync && c.ParticipationFraction > 0 && c.ParticipationFraction < 1:
		return fmt.Errorf("fl: ParticipationFraction %v is incompatible with PolicyAsync (clients train continuously)", c.ParticipationFraction)
	}
	for i, d := range c.Devices {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("fl: device %d: %w", i, err)
		}
	}
	for _, id := range c.Freeloaders {
		if id < 0 {
			return fmt.Errorf("fl: freeloader id %d must be non-negative", id)
		}
	}
	for i, spec := range c.Adversaries {
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("fl: adversary %d: %w", i, err)
		}
	}
	if err := c.Compress.Validate(); err != nil {
		return fmt.Errorf("fl: %w", err)
	}
	if len(c.Faults) == 0 {
		switch {
		case c.FaultRetries != 0:
			return fmt.Errorf("fl: FaultRetries %d is only meaningful with Faults", c.FaultRetries)
		case c.FaultTimeoutFactor != 0:
			return fmt.Errorf("fl: FaultTimeoutFactor %v is only meaningful with Faults", c.FaultTimeoutFactor)
		case c.FaultBackoffSec != 0:
			return fmt.Errorf("fl: FaultBackoffSec %v is only meaningful with Faults", c.FaultBackoffSec)
		case c.Quorum != 0:
			return fmt.Errorf("fl: Quorum %v is only meaningful with Faults", c.Quorum)
		}
	} else {
		switch {
		case c.FaultRetries < -1:
			return fmt.Errorf("fl: FaultRetries %d must be >= -1 (-1 disables retries, 0 means the default)", c.FaultRetries)
		case c.FaultTimeoutFactor < 0 || (c.FaultTimeoutFactor > 0 && c.FaultTimeoutFactor < 1):
			return fmt.Errorf("fl: FaultTimeoutFactor %v must be >= 1 (a sub-unit budget times out every dispatch)", c.FaultTimeoutFactor)
		case c.FaultBackoffSec < 0:
			return fmt.Errorf("fl: FaultBackoffSec %v must be non-negative", c.FaultBackoffSec)
		case c.Quorum < 0 || c.Quorum > 1:
			return fmt.Errorf("fl: Quorum %v must be in [0,1]", c.Quorum)
		case c.Quorum > 0 && c.Policy == PolicyAsync:
			return fmt.Errorf("fl: Quorum is incompatible with PolicyAsync (there is no per-round dispatch set)")
		}
		crashes := 0
		for i, spec := range c.Faults {
			if err := spec.Validate(); err != nil {
				return fmt.Errorf("fl: fault %d: %w", i, err)
			}
			if spec.Kind == fault.KindServerCrash {
				crashes++
				if spec.Round >= c.Rounds {
					return fmt.Errorf("fl: servercrash round %d must be < Rounds %d", spec.Round, c.Rounds)
				}
			}
		}
		if crashes > 1 {
			return fmt.Errorf("fl: at most one servercrash fault per run")
		}
	}
	if err := c.AggStack.Validate(); err != nil {
		return fmt.Errorf("fl: %w", err)
	}
	if err := c.ServerOpt.Validate(); err != nil {
		return fmt.Errorf("fl: %w", err)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("fl: CheckpointEvery %d must be non-negative", c.CheckpointEvery)
	}
	return nil
}

// isF32 reports whether clients train on the float32 compute path.
func (c Config) isF32() bool { return c.DType == "f32" }

// globalLR resolves the ηg default.
func (c Config) globalLR() float64 {
	if c.GlobalLR > 0 {
		return c.GlobalLR
	}
	return float64(c.LocalSteps) * c.LocalLR
}

// parallelism resolves the worker-pool default.
func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// asyncBuffer resolves the async server-step trigger default.
func (c Config) asyncBuffer() int {
	if c.AsyncBuffer > 0 {
		return c.AsyncBuffer
	}
	return 1
}

// faultRetries resolves the retry-budget default.
func (c Config) faultRetries() int {
	switch {
	case c.FaultRetries > 0:
		return c.FaultRetries
	case c.FaultRetries < 0:
		return 0
	default:
		return 2
	}
}

// faultTimeoutFactor resolves the timeout-budget default.
func (c Config) faultTimeoutFactor() float64 {
	if c.FaultTimeoutFactor > 0 {
		return c.FaultTimeoutFactor
	}
	return 3
}

// faultBackoff resolves the backoff base default against the nominal
// modeled round duration.
func (c Config) faultBackoff(baseRound float64) float64 {
	if c.FaultBackoffSec > 0 {
		return c.FaultBackoffSec
	}
	return 0.25 * baseRound
}

// devices resolves the fleet default (n nominal always-available devices).
func (c Config) devices(n int) []simclock.DeviceProfile {
	if len(c.Devices) > 0 {
		return c.Devices
	}
	return simclock.UniformFleet(n)
}

// evalEvery resolves the evaluation cadence default.
func (c Config) evalEvery() int {
	if c.EvalEvery > 0 {
		return c.EvalEvery
	}
	return 1
}

// adversarySpecs returns the run's full corruption declaration: the
// legacy Freeloaders sugar normalized into a leading freeloader spec
// (IDs sorted and deduplicated, so every downstream iteration is
// deterministic — the old map-backed lookup iterated in random order),
// followed by the explicit Adversaries.
func (c Config) adversarySpecs() []adversary.Spec {
	if len(c.Freeloaders) == 0 {
		return c.Adversaries
	}
	ids := make([]int, len(c.Freeloaders))
	copy(ids, c.Freeloaders)
	sort.Ints(ids)
	uniq := ids[:1]
	for _, id := range ids[1:] {
		if id != uniq[len(uniq)-1] {
			uniq = append(uniq, id)
		}
	}
	specs := make([]adversary.Spec, 0, len(c.Adversaries)+1)
	specs = append(specs, adversary.Spec{Kind: adversary.KindFreeloader, Clients: uniq})
	return append(specs, c.Adversaries...)
}
