package fl

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/vecmath"
)

// Result is the outcome of one federated training run.
type Result struct {
	// Run is the per-round metric history.
	Run *metrics.Run
	// FinalParams is the algorithm's final output model (z_T for TACO).
	FinalParams []float64
	// Expelled maps expelled client IDs to the round of expulsion.
	Expelled map[int]int
	// CumWeights sums each client's reported aggregation weight across
	// rounds (nil when the run declared no adversaries). Defense metrics
	// derive weight-suppression detection from it: a defended corrupt
	// client accumulates far less mass than the uniform share.
	CumWeights []float64
}

// client is the engine's per-client identity state: the data shard, the
// client's deterministic sampling stream, and its last reported loss.
// Training resources (engine, parameter buffers) live in the slot pool
// (pool.go), so a client costs O(1) model-sized memory when idle. adv is
// the compiled corruption state (adversary.go), nil for honest clients.
type client struct {
	id       int
	data     *dataset.Dataset
	sampler  *dataset.Sampler
	lastLoss float64
	adv      *advClient
}

// Run trains net with the given algorithm over the client shards and
// evaluates on test, returning the full metric history. The run is
// deterministic for a fixed Config.Seed at any parallelism level under
// every aggregation policy (DESIGN.md §4).
func Run(cfg Config, alg Algorithm, net *nn.Network, shards []*dataset.Dataset, test *dataset.Dataset) (*Result, error) {
	s, err := newScheduler(cfg, alg, net, shards, test)
	if err != nil {
		return nil, err
	}
	defer s.exec.close()

	if err := s.runAll(false); err != nil {
		return nil, err
	}
	return s.result(), nil
}

// Resume rebuilds a run from a checkpoint produced by Config.OnCheckpoint
// (or an external capture of one) and continues it to completion. The
// config, model architecture, algorithm, and client shards must match the
// checkpointed run — a fingerprint in the header rejects mismatches — and
// the resumed run's remaining rounds replay bit-identically to the
// uninterrupted original: same batches, same fault outcomes, same final
// weights.
func Resume(cfg Config, alg Algorithm, net *nn.Network, shards []*dataset.Dataset, test *dataset.Dataset, checkpoint []byte) (*Result, error) {
	s, err := newScheduler(cfg, alg, net, shards, test)
	if err != nil {
		return nil, err
	}
	defer s.exec.close()

	if err := s.restore(checkpoint, true); err != nil {
		return nil, err
	}
	if err := s.runAll(true); err != nil {
		return nil, err
	}
	return s.result(), nil
}

// result packages the scheduler's final state.
func (s *scheduler) result() *Result {
	return &Result{
		Run:         s.run,
		FinalParams: vecmath.Clone(s.alg.FinalModel(s.params)),
		Expelled:    s.expelled,
		CumWeights:  s.cumWeights,
	}
}

// newScheduler validates the configuration and builds the run state: the
// client identities, the slot pool, and the scheduler's reusable
// per-round buffers (sized once here so steady-state rounds allocate
// nothing; see the alloc regression tests).
func newScheduler(cfg Config, alg Algorithm, net *nn.Network, shards []*dataset.Dataset, test *dataset.Dataset) (*scheduler, error) {
	return newSchedulerExec(cfg, alg, net, shards, test, false)
}

// newSchedulerExec is newScheduler with the execution substrate made
// explicit: remote builds a ring-only pool (no slots, no training
// goroutines — clients train in worker processes) and leaves s.exec for
// the caller to swap to the remote executor. Every rng derivation
// happens identically in both modes — the derivation ORDER is the
// determinism contract workers replay (worker.go) — so a wire run's
// fault plan, participation draws, and quantization streams are
// bit-identical to the in-process run's.
func newSchedulerExec(cfg Config, alg Algorithm, net *nn.Network, shards []*dataset.Dataset, test *dataset.Dataset, remote bool) (*scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(shards)
	if n == 0 {
		return nil, fmt.Errorf("fl: no client shards")
	}
	for i, s := range shards {
		if s.Len() == 0 {
			return nil, fmt.Errorf("fl: client %d has no data", i)
		}
	}
	if len(cfg.Devices) > 0 && len(cfg.Devices) != n {
		return nil, fmt.Errorf("fl: %d device profiles for %d clients", len(cfg.Devices), n)
	}
	if cfg.isF32() {
		// Checked on the raw algorithm before stacking: the marker is a
		// property of the inner algorithm, and wrappers would hide it.
		if _, ok := alg.(RequiresF64Engine); ok {
			return nil, fmt.Errorf("fl: algorithm %s needs the float64 engine and does not support DType %q", alg.Name(), cfg.DType)
		}
	}

	root := rng.New(cfg.Seed)
	params := net.InitParams(root.Derive("init", 0))
	numParams := net.NumParams()

	clients := make([]*client, n)
	dataSizes := make([]int, n)
	for i, shard := range shards {
		clients[i] = &client{
			id:      i,
			data:    shard,
			sampler: dataset.NewSampler(shard, root.Derive("sampler", i)),
		}
		dataSizes[i] = shard.Len()
	}

	env := &Env{
		Net:        net,
		NumClients: n,
		NumParams:  numParams,
		DataSizes:  dataSizes,
		Devices:    cfg.devices(n),
		Cfg:        cfg,
	}
	// Compose the robust-aggregation stack and server optimizer around
	// the algorithm (stack.go); a zero-valued AggStack/ServerOpt returns
	// alg unchanged, keeping the unstacked path untouched.
	alg, err := wrapStack(alg, &cfg)
	if err != nil {
		return nil, err
	}
	alg.Setup(env)

	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}

	// Corruption streams derive strictly after every honest stream
	// (init, samplers, participation below is taken from the same root
	// before this point in the reference loop — see setupAdversaries),
	// so declaring adversaries never perturbs honest clients' draws.
	partRNG := root.Derive("participation", 0)
	if err := setupAdversaries(&cfg, clients, root); err != nil {
		return nil, err
	}

	var pool *slotPool
	if remote {
		pool = newRingPool(numParams)
	} else {
		pool = newSlotPool(net, cfg, n)
	}
	if cfg.Compress.Kind != compress.KindNone {
		// Quantization streams derive after every honest and adversary
		// stream, so a dense-transport config draws nothing here and
		// stays bit-identical to the pre-codec engine (the sync golden
		// pins this).
		codec, err := cfg.Compress.Codec()
		if err != nil {
			pool.close()
			return nil, fmt.Errorf("fl: %w", err)
		}
		comp := &compressor{
			codec:   codec,
			streams: make([]*rng.RNG, n),
		}
		if cfg.isF32() {
			comp.resid32 = make([][]float32, n)
		} else {
			comp.resid = make([][]float64, n)
		}
		for i := range comp.streams {
			comp.streams[i] = root.Derive("compress", i)
		}
		pool.comp = comp
	}

	baseRound := simclock.RoundSeconds(net.GradFlops(cfg.BatchSize), cfg.LocalSteps, alg.Costs())
	// Fault streams derive last of all (after compression), so a
	// zero-fault config draws nothing here and stays bit-identical to
	// the fault-free golden.
	plan := newFaultPlan(&cfg, n, baseRound, root)

	s := &scheduler{
		cfg:       cfg,
		alg:       alg,
		clients:   clients,
		env:       env,
		pool:      pool,
		params:    params,
		wPrev:     vecmath.Clone(params),
		active:    active,
		expelled:  make(map[int]int),
		run:       &metrics.Run{Algorithm: alg.Name(), Dataset: test.Name},
		evalEng:   nn.NewEngine(net, min(256, max(1, test.Len()))),
		test:      test,
		baseRound: baseRound,
		partRNG:   partRNG,
		plan:      plan,
		ids:       make([]int, 0, n),
		include:   make([]int, 0, n),
		updates:   make([]Update, n),
		measured:  make([]float64, n),
	}
	s.exec = pool
	s.stack, _ = alg.(*stackedAlg)
	if plan != nil && plan.anyDispatch {
		s.dupFlags = make([]bool, 0, n)
		if cfg.Policy == PolicyAsync {
			s.attempts = make([]int, n)
		}
	}
	for _, c := range clients {
		if c.corrupt() {
			s.anyAdv = true
			break
		}
	}
	if s.anyAdv {
		s.cumWeights = make([]float64, n)
	}
	s.run.Rounds = make([]metrics.Round, 0, cfg.Rounds)
	s.server = ServerCtx{Env: env, Active: active}
	return s, nil
}

// localUpdate runs the K-step local loop of Eq. (4) with the algorithm's
// corrections applied, producing Δ_i = w_{i,0} − w_{i,K} (Eq. (5)) in the
// caller-provided delta buffer. All model-sized scratch comes from the
// slot; the step itself is fused when the algorithm registers its
// correction via StepCtx.FuseCorrection (one pass over d instead of two).
// smp is the mini-batch source — the client's clean sampler, or a
// corrupted-shard sampler while a data-level attack window is live.
func localUpdate(cfg *Config, alg Algorithm, c *client, sl *slot, delta []float64, round int, global []float64, smp *dataset.Sampler) {
	alg.LocalInit(c.id, round, global, sl.w0)
	alg.BeginLocal(c.id, round, sl.w0)
	copy(sl.w, sl.w0)
	ctx := &sl.ctx
	*ctx = StepCtx{
		Client:  c.id,
		Round:   round,
		W:       sl.w,
		W0:      sl.w0,
		Grad:    sl.grad,
		BatchX:  sl.batchX,
		BatchY:  sl.batchY,
		Eng:     sl.eng,
		Scratch: sl.scratch,
	}
	var lossSum float64
	for k := 0; k < cfg.LocalSteps; k++ {
		smp.Batch(sl.batchX, sl.batchY)
		lossSum += sl.eng.Gradient(sl.w, sl.batchX, sl.batchY, sl.grad)
		ctx.Step = k
		alg.GradAdjust(ctx)
		if ctx.fuseVec != nil {
			vecmath.AXPYPY(-cfg.LocalLR, sl.grad, -cfg.LocalLR*ctx.fuseCoeff, ctx.fuseVec, sl.w)
			ctx.fuseVec = nil
		} else {
			vecmath.AXPY(-cfg.LocalLR, sl.grad, sl.w)
		}
	}
	vecmath.Sub(delta, sl.w0, sl.w)
	alg.EndLocal(c.id, round, delta)
	c.lastLoss = lossSum / float64(cfg.LocalSteps)
}

// localUpdate32 is the float32 twin of localUpdate, selected by
// Config.DType "f32" (DESIGN.md §10). The client trains on the slot's fp32
// state (w32/grad32 through Engine32), but every algorithm hook still sees
// float64: the loop widens w32 and grad32 into sl.w and sl.grad before
// GradAdjust, and applies the hook's correction by narrowing it back to
// fp32 for the fused step. The uploaded delta is the exact float64
// widening of the fp32 trajectory difference narrow(w0) − w32, so the
// aggregation boundary — and everything past it — stays float64.
//
// StepCtx.Eng is nil here: slots carry no float64 engine in fp32 mode, and
// algorithms that need one (RequiresF64Engine) are rejected at setup.
func localUpdate32(cfg *Config, alg Algorithm, c *client, sl *slot, delta []float64, round int, global []float64, smp *dataset.Sampler) {
	alg.LocalInit(c.id, round, global, sl.w0)
	alg.BeginLocal(c.id, round, sl.w0)
	vecmath.Narrow(sl.w32, sl.w0)
	ctx := &sl.ctx
	*ctx = StepCtx{
		Client:  c.id,
		Round:   round,
		W:       sl.w,
		W0:      sl.w0,
		Grad:    sl.grad,
		BatchX:  sl.batchX,
		BatchY:  sl.batchY,
		Scratch: sl.scratch,
	}
	var lossSum float64
	for k := 0; k < cfg.LocalSteps; k++ {
		smp.Batch(sl.batchX, sl.batchY)
		vecmath.Narrow(sl.batchX32, sl.batchX)
		lossSum += sl.eng32.Gradient(sl.w32, sl.batchX32, sl.batchY, sl.grad32)
		vecmath.Widen(sl.w, sl.w32)
		vecmath.Widen(sl.grad, sl.grad32)
		ctx.Step = k
		alg.GradAdjust(ctx)
		if ctx.fuseVec != nil {
			// The correction may vary per step (it is a hook-owned
			// float64 vector), so it is narrowed every iteration; the raw
			// gradient stays valid in grad32 per the FuseCorrection
			// contract.
			vecmath.Narrow(sl.corr32, ctx.fuseVec)
			vecmath.AXPYPY32(-float32(cfg.LocalLR), sl.grad32, -float32(cfg.LocalLR*ctx.fuseCoeff), sl.corr32, sl.w32)
			ctx.fuseVec = nil
		} else {
			// Re-narrow in case the hook rewrote ctx.Grad in place
			// (clipping, scaling); identity when it did not.
			vecmath.Narrow(sl.grad32, sl.grad)
			vecmath.AXPY32(-float32(cfg.LocalLR), sl.grad32, sl.w32)
		}
	}
	// Δ = widen(narrow(w0) − w_K): the fp32 trajectory difference, widened
	// exactly. Subtracting in fp32 first keeps the delta consistent with
	// the weights the client actually trained (w0's bits below fp32
	// precision never entered the trajectory). grad32 is free as a temp
	// after the loop.
	vecmath.Narrow(sl.grad32, sl.w0)
	vecmath.Sub32(sl.grad32, sl.grad32, sl.w32)
	vecmath.Widen(delta, sl.grad32)
	alg.EndLocal(c.id, round, delta)
	c.lastLoss = lossSum / float64(cfg.LocalSteps)
}

// meanLoss averages the training participants' losses. Clients that did
// no training (fabricating adversaries: freeloaders, sybils) report NaN,
// which keeps an honest client whose true mean loss happens to be
// exactly 0 in the average.
func meanLoss(updates []Update) float64 {
	var sum float64
	cnt := 0
	for _, u := range updates {
		if math.IsNaN(u.TrainLoss) {
			continue
		}
		sum += u.TrainLoss
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// SortUpdatesByClient orders updates by client ID; aggregation code relies
// on this for reproducibility. The engine produces them ordered already;
// the helper exists for tests and external callers.
func SortUpdatesByClient(updates []Update) {
	sort.Slice(updates, func(i, j int) bool { return updates[i].Client < updates[j].Client })
}
