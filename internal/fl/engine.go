package fl

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/vecmath"
)

// Result is the outcome of one federated training run.
type Result struct {
	// Run is the per-round metric history.
	Run *metrics.Run
	// FinalParams is the algorithm's final output model (z_T for TACO).
	FinalParams []float64
	// Expelled maps expelled client IDs to the round of expulsion.
	Expelled map[int]int
}

// client is the engine's per-client identity state: the data shard, the
// client's deterministic sampling stream, and its last reported loss.
// Training resources (engine, parameter buffers) live in the slot pool
// (pool.go), so a client costs O(1) model-sized memory when idle.
type client struct {
	id         int
	data       *dataset.Dataset
	sampler    *dataset.Sampler
	lastLoss   float64
	freeloader bool
}

// Run trains net with the given algorithm over the client shards and
// evaluates on test, returning the full metric history. The run is
// deterministic for a fixed Config.Seed at any parallelism level under
// every aggregation policy (DESIGN.md §4).
func Run(cfg Config, alg Algorithm, net *nn.Network, shards []*dataset.Dataset, test *dataset.Dataset) (*Result, error) {
	s, err := newScheduler(cfg, alg, net, shards, test)
	if err != nil {
		return nil, err
	}
	defer s.pool.close()

	switch cfg.Policy {
	case PolicyDeadline:
		err = s.runDeadline()
	case PolicyAsync:
		err = s.runAsync()
	default:
		err = s.runSync()
	}
	if err != nil {
		return nil, err
	}

	return &Result{
		Run:         s.run,
		FinalParams: vecmath.Clone(alg.FinalModel(s.params)),
		Expelled:    s.expelled,
	}, nil
}

// newScheduler validates the configuration and builds the run state: the
// client identities, the slot pool, and the scheduler's reusable
// per-round buffers (sized once here so steady-state rounds allocate
// nothing; see the alloc regression tests).
func newScheduler(cfg Config, alg Algorithm, net *nn.Network, shards []*dataset.Dataset, test *dataset.Dataset) (*scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(shards)
	if n == 0 {
		return nil, fmt.Errorf("fl: no client shards")
	}
	for i, s := range shards {
		if s.Len() == 0 {
			return nil, fmt.Errorf("fl: client %d has no data", i)
		}
	}
	freeloaders := cfg.freeloaderSet()
	for id := range freeloaders {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("fl: freeloader id %d outside [0,%d)", id, n)
		}
	}
	if len(cfg.Devices) > 0 && len(cfg.Devices) != n {
		return nil, fmt.Errorf("fl: %d device profiles for %d clients", len(cfg.Devices), n)
	}

	root := rng.New(cfg.Seed)
	params := net.InitParams(root.Derive("init", 0))
	numParams := net.NumParams()

	clients := make([]*client, n)
	dataSizes := make([]int, n)
	for i, shard := range shards {
		clients[i] = &client{
			id:         i,
			data:       shard,
			sampler:    dataset.NewSampler(shard, root.Derive("sampler", i)),
			freeloader: freeloaders[i],
		}
		dataSizes[i] = shard.Len()
	}

	env := &Env{
		Net:        net,
		NumClients: n,
		NumParams:  numParams,
		DataSizes:  dataSizes,
		Devices:    cfg.devices(n),
		Cfg:        cfg,
	}
	alg.Setup(env)

	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}

	s := &scheduler{
		cfg:       cfg,
		alg:       alg,
		clients:   clients,
		env:       env,
		pool:      newSlotPool(net, cfg, n),
		params:    params,
		wPrev:     vecmath.Clone(params),
		active:    active,
		expelled:  make(map[int]int),
		run:       &metrics.Run{Algorithm: alg.Name(), Dataset: test.Name},
		evalEng:   nn.NewEngine(net, min(256, max(1, test.Len()))),
		test:      test,
		baseRound: simclock.RoundSeconds(net.GradFlops(cfg.BatchSize), cfg.LocalSteps, alg.Costs()),
		partRNG:   root.Derive("participation", 0),
		ids:       make([]int, 0, n),
		include:   make([]int, 0, n),
		updates:   make([]Update, n),
		measured:  make([]float64, n),
	}
	s.run.Rounds = make([]metrics.Round, 0, cfg.Rounds)
	s.server = ServerCtx{Env: env, Active: active}
	return s, nil
}

// localUpdate runs the K-step local loop of Eq. (4) with the algorithm's
// corrections applied, producing Δ_i = w_{i,0} − w_{i,K} (Eq. (5)) in the
// caller-provided delta buffer. All model-sized scratch comes from the
// slot; the step itself is fused when the algorithm registers its
// correction via StepCtx.FuseCorrection (one pass over d instead of two).
func localUpdate(cfg *Config, alg Algorithm, c *client, sl *slot, delta []float64, round int, global []float64) {
	alg.LocalInit(c.id, round, global, sl.w0)
	alg.BeginLocal(c.id, round, sl.w0)
	copy(sl.w, sl.w0)
	ctx := &sl.ctx
	*ctx = StepCtx{
		Client:  c.id,
		Round:   round,
		W:       sl.w,
		W0:      sl.w0,
		Grad:    sl.grad,
		BatchX:  sl.batchX,
		BatchY:  sl.batchY,
		Eng:     sl.eng,
		Scratch: sl.scratch,
	}
	var lossSum float64
	for k := 0; k < cfg.LocalSteps; k++ {
		c.sampler.Batch(sl.batchX, sl.batchY)
		lossSum += sl.eng.Gradient(sl.w, sl.batchX, sl.batchY, sl.grad)
		ctx.Step = k
		alg.GradAdjust(ctx)
		if ctx.fuseVec != nil {
			vecmath.AXPYPY(-cfg.LocalLR, sl.grad, -cfg.LocalLR*ctx.fuseCoeff, ctx.fuseVec, sl.w)
			ctx.fuseVec = nil
		} else {
			vecmath.AXPY(-cfg.LocalLR, sl.grad, sl.w)
		}
	}
	vecmath.Sub(delta, sl.w0, sl.w)
	alg.EndLocal(c.id, round, delta)
	c.lastLoss = lossSum / float64(cfg.LocalSteps)
}

// freeloaderUpdate fabricates a lazy client's upload: it replays the
// previous global update rescaled to look like an honest local delta
// (Section IV-A: freeloaders "only upload previous global gradients ∆t
// received without contributing any new local updates"). In round 0 there
// is no previous gradient, so the freeloader uploads zeros. A freeloader
// reports no training loss (NaN sentinel; see meanLoss).
func freeloaderUpdate(cfg *Config, c *client, delta []float64, round int, global, prevGlobal []float64) {
	if round == 0 {
		vecmath.Zero(delta)
	} else {
		// w^t = w^{t−1} − ηg·∆^t  ⇒  ∆^t = (w^{t−1} − w^t)/ηg. An honest
		// delta has magnitude ≈ K·ηl·∆, so replay with that scale.
		scale := float64(cfg.LocalSteps) * cfg.LocalLR / cfg.globalLR()
		vecmath.SubScale(delta, scale, prevGlobal, global)
	}
	c.lastLoss = math.NaN()
}

// meanLoss averages the honest participants' training losses. Clients
// that did no training (freeloaders) report NaN, which keeps an honest
// client whose true mean loss happens to be exactly 0 in the average.
func meanLoss(updates []Update) float64 {
	var sum float64
	cnt := 0
	for _, u := range updates {
		if math.IsNaN(u.TrainLoss) {
			continue
		}
		sum += u.TrainLoss
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// SortUpdatesByClient orders updates by client ID; aggregation code relies
// on this for reproducibility. The engine produces them ordered already;
// the helper exists for tests and external callers.
func SortUpdatesByClient(updates []Update) {
	sort.Slice(updates, func(i, j int) bool { return updates[i].Client < updates[j].Client })
}
