package fl

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/vecmath"
)

// Result is the outcome of one federated training run.
type Result struct {
	// Run is the per-round metric history.
	Run *metrics.Run
	// FinalParams is the algorithm's final output model (z_T for TACO).
	FinalParams []float64
	// Expelled maps expelled client IDs to the round of expulsion.
	Expelled map[int]int
}

// client is the engine's per-client state.
type client struct {
	id      int
	data    *dataset.Dataset
	sampler *dataset.Sampler
	eng     *nn.Engine
	// Buffers reused across rounds.
	w0, w, delta, grad, scratch []float64
	batchX                      []float64
	batchY                      []int
	lastLoss                    float64
	freeloader                  bool
}

// Run trains net with the given algorithm over the client shards and
// evaluates on test, returning the full metric history. The run is
// deterministic for a fixed Config.Seed at any parallelism level under
// every aggregation policy (DESIGN.md §4).
func Run(cfg Config, alg Algorithm, net *nn.Network, shards []*dataset.Dataset, test *dataset.Dataset) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(shards)
	if n == 0 {
		return nil, fmt.Errorf("fl: no client shards")
	}
	for i, s := range shards {
		if s.Len() == 0 {
			return nil, fmt.Errorf("fl: client %d has no data", i)
		}
	}
	freeloaders := cfg.freeloaderSet()
	for id := range freeloaders {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("fl: freeloader id %d outside [0,%d)", id, n)
		}
	}
	if len(cfg.Devices) > 0 && len(cfg.Devices) != n {
		return nil, fmt.Errorf("fl: %d device profiles for %d clients", len(cfg.Devices), n)
	}

	root := rng.New(cfg.Seed)
	params := net.InitParams(root.Derive("init", 0))
	numParams := net.NumParams()
	inSize := net.InShape().Size()

	clients := make([]*client, n)
	dataSizes := make([]int, n)
	for i, shard := range shards {
		clients[i] = &client{
			id:      i,
			data:    shard,
			sampler: dataset.NewSampler(shard, root.Derive("sampler", i)),
			eng:     nn.NewEngine(net, cfg.BatchSize),
			w0:      make([]float64, numParams),
			w:       make([]float64, numParams),
			delta:   make([]float64, numParams),
			grad:    make([]float64, numParams),
			scratch: make([]float64, numParams),
			batchX:  make([]float64, cfg.BatchSize*inSize),
			batchY:  make([]int, cfg.BatchSize),

			freeloader: freeloaders[i],
		}
		dataSizes[i] = shard.Len()
	}

	env := &Env{
		Net:        net,
		NumClients: n,
		NumParams:  numParams,
		DataSizes:  dataSizes,
		Devices:    cfg.devices(n),
		Cfg:        cfg,
	}
	alg.Setup(env)

	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}

	s := &scheduler{
		cfg:       cfg,
		alg:       alg,
		clients:   clients,
		env:       env,
		params:    params,
		wPrev:     vecmath.Clone(params),
		active:    active,
		expelled:  make(map[int]int),
		run:       &metrics.Run{Algorithm: alg.Name(), Dataset: test.Name},
		evalEng:   nn.NewEngine(net, min(256, max(1, test.Len()))),
		test:      test,
		baseRound: simclock.RoundSeconds(net.GradFlops(cfg.BatchSize), cfg.LocalSteps, alg.Costs()),
		partRNG:   root.Derive("participation", 0),
	}

	var err error
	switch cfg.Policy {
	case PolicyDeadline:
		err = s.runDeadline()
	case PolicyAsync:
		err = s.runAsync()
	default:
		err = s.runSync()
	}
	if err != nil {
		return nil, err
	}

	return &Result{
		Run:         s.run,
		FinalParams: vecmath.Clone(alg.FinalModel(params)),
		Expelled:    s.expelled,
	}, nil
}

// runLocalRounds executes the round's local updates for the given client
// IDs with a bounded worker pool, writing each client's Update and
// measured seconds into the slot matching its position in ids.
func runLocalRounds(cfg Config, alg Algorithm, clients []*client, ids []int, round int, global, prevGlobal []float64, updates []Update, measured []float64) {
	workers := min(cfg.parallelism(), len(ids))
	var wg sync.WaitGroup
	jobs := make(chan int) // index into ids
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				id := ids[j]
				start := time.Now()
				if clients[id].freeloader {
					freeloaderUpdate(cfg, clients[id], round, global, prevGlobal)
				} else {
					localUpdate(cfg, alg, clients[id], round, global)
				}
				measured[j] = time.Since(start).Seconds()
				c := clients[id]
				updates[j] = Update{
					Client:     id,
					Delta:      c.delta,
					NumSamples: c.data.Len(),
					TrainLoss:  c.lastLoss,
				}
			}
		}()
	}
	for j := range ids {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
}

// localUpdate runs the K-step local loop of Eq. (4) with the algorithm's
// corrections applied, producing Δ_i = w_{i,0} − w_{i,K} (Eq. (5)).
func localUpdate(cfg Config, alg Algorithm, c *client, round int, global []float64) {
	alg.LocalInit(c.id, round, global, c.w0)
	alg.BeginLocal(c.id, round, c.w0)
	copy(c.w, c.w0)
	ctx := StepCtx{
		Client:  c.id,
		Round:   round,
		W:       c.w,
		W0:      c.w0,
		Grad:    c.grad,
		BatchX:  c.batchX,
		BatchY:  c.batchY,
		Eng:     c.eng,
		Scratch: c.scratch,
	}
	var lossSum float64
	for k := 0; k < cfg.LocalSteps; k++ {
		c.sampler.Batch(c.batchX, c.batchY)
		lossSum += c.eng.Gradient(c.w, c.batchX, c.batchY, c.grad)
		ctx.Step = k
		alg.GradAdjust(&ctx)
		vecmath.AXPY(-cfg.LocalLR, c.grad, c.w)
	}
	vecmath.Sub(c.delta, c.w0, c.w)
	alg.EndLocal(c.id, round, c.delta)
	c.lastLoss = lossSum / float64(cfg.LocalSteps)
}

// freeloaderUpdate fabricates a lazy client's upload: it replays the
// previous global update rescaled to look like an honest local delta
// (Section IV-A: freeloaders "only upload previous global gradients ∆t
// received without contributing any new local updates"). In round 0 there
// is no previous gradient, so the freeloader uploads zeros.
func freeloaderUpdate(cfg Config, c *client, round int, global, prevGlobal []float64) {
	if round == 0 {
		vecmath.Zero(c.delta)
	} else {
		// w^t = w^{t−1} − ηg·∆^t  ⇒  ∆^t = (w^{t−1} − w^t)/ηg. An honest
		// delta has magnitude ≈ K·ηl·∆, so replay with that scale.
		scale := float64(cfg.LocalSteps) * cfg.LocalLR / cfg.globalLR()
		vecmath.Sub(c.delta, prevGlobal, global)
		vecmath.Scale(scale, c.delta)
	}
	c.lastLoss = 0
}

func meanLoss(updates []Update) float64 {
	if len(updates) == 0 {
		return 0
	}
	var sum float64
	cnt := 0
	for _, u := range updates {
		if u.TrainLoss != 0 {
			sum += u.TrainLoss
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// SortUpdatesByClient orders updates by client ID; aggregation code relies
// on this for reproducibility. The engine produces them ordered already;
// the helper exists for tests and external callers.
func SortUpdatesByClient(updates []Update) {
	sort.Slice(updates, func(i, j int) bool { return updates[i].Client < updates[j].Client })
}
