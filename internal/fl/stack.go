package fl

import (
	"fmt"
	"io"

	"repro/internal/aggstack"
	"repro/internal/ckpt"
	"repro/internal/simclock"
	"repro/internal/vecmath"
)

// stackedAlg composes the robust pre-aggregation pipeline and the FedOpt
// server optimizer (Config.AggStack / Config.ServerOpt, DESIGN.md §9)
// around any inner aggregation rule. Per round it
//
//  1. computes every update's L2 norm (the payload-aware Update.Norm, so
//     a sparse round stays O(n·k)),
//  2. runs the stage pipeline over (norms, multipliers) — zeroing drops
//     updates, clipping rescales them in place (both the dense delta and
//     the sparse payload values, keeping the two views consistent),
//  3. hands only the surviving updates to the inner rule,
//  4. re-maps the inner rule's reported weights back to the full update
//     list (dropped updates get weight 0) so HonestWeight/CorruptWeight
//     credit the stack's suppressions, and
//  5. lets the server optimizer rewrite w ← wPrev + lr·dir(w − wPrev).
//
// All scratch (norms, multipliers, survivor list, weight remap buffers,
// optimizer moments) is sized once in Setup, so wrapped steady-state
// rounds still allocate nothing. The wrapper is always a
// StatefulAlgorithm: checkpoints capture the stage quantile estimates,
// the optimizer moments, and the inner algorithm's own state.
type stackedAlg struct {
	inner    Algorithm
	innerSA  StatefulAlgorithm // nil when the inner rule is stateless
	stages   []aggstack.Stage
	opt      *aggstack.Optimizer
	name     string
	weighted bool

	// Per-round scratch, sized in Setup.
	norms, mult []float64
	keptIdx     []int
	kept        []Update
	keptW       []float64
	fullW       []float64

	// Per-round stage statistics, read by the scheduler into the round
	// record (metrics.Round.ZeroedUpdates/ClippedUpdates/ClipNorm).
	lastZeroed   int
	lastClipped  int
	lastClipNorm float64
}

// wrapStack composes alg with the config's aggregation stack and server
// optimizer, returning alg unchanged when both are zero-valued — the
// wrap itself must never perturb an unstacked run.
func wrapStack(alg Algorithm, cfg *Config) (Algorithm, error) {
	if cfg.AggStack.Empty() && cfg.ServerOpt.None() {
		return alg, nil
	}
	stages, err := aggstack.NewStages(cfg.AggStack)
	if err != nil {
		return nil, fmt.Errorf("fl: %w", err)
	}
	opt, err := aggstack.NewOptimizer(cfg.ServerOpt)
	if err != nil {
		return nil, fmt.Errorf("fl: %w", err)
	}
	name := alg.Name()
	if !cfg.AggStack.Empty() {
		name += "+" + cfg.AggStack.String()
	}
	if !cfg.ServerOpt.None() {
		name += "+" + cfg.ServerOpt.String()
	}
	sa, _ := alg.(StatefulAlgorithm)
	return &stackedAlg{
		inner:    alg,
		innerSA:  sa,
		stages:   stages,
		opt:      opt,
		name:     name,
		weighted: cfg.WeightByData,
	}, nil
}

// Name implements Algorithm: the inner rule's name decorated with the
// stack and optimizer specs (e.g. "FedAvg+zeroing|clip+adam").
func (a *stackedAlg) Name() string { return a.name }

// Setup implements Algorithm, sizing every per-round scratch buffer so
// Aggregate never allocates.
func (a *stackedAlg) Setup(env *Env) {
	a.inner.Setup(env)
	n := env.NumClients
	a.norms = make([]float64, n)
	a.mult = make([]float64, n)
	a.keptIdx = make([]int, 0, n)
	a.kept = make([]Update, 0, n)
	a.keptW = make([]float64, n)
	a.fullW = make([]float64, n)
	if a.opt != nil {
		a.opt.Grow(env.NumParams)
	}
}

// LocalInit implements Algorithm by delegation.
func (a *stackedAlg) LocalInit(client, round int, w []float64, out []float64) {
	a.inner.LocalInit(client, round, w, out)
}

// BeginLocal implements Algorithm by delegation.
func (a *stackedAlg) BeginLocal(client, round int, w0 []float64) {
	a.inner.BeginLocal(client, round, w0)
}

// GradAdjust implements Algorithm by delegation.
func (a *stackedAlg) GradAdjust(ctx *StepCtx) { a.inner.GradAdjust(ctx) }

// EndLocal implements Algorithm by delegation.
func (a *stackedAlg) EndLocal(client, round int, delta []float64) {
	a.inner.EndLocal(client, round, delta)
}

// Costs implements Algorithm by delegation.
func (a *stackedAlg) Costs() simclock.Costs { return a.inner.Costs() }

// FinalModel implements Algorithm by delegation.
func (a *stackedAlg) FinalModel(w []float64) []float64 { return a.inner.FinalModel(w) }

// MeanAlpha implements Algorithm by delegation.
func (a *stackedAlg) MeanAlpha() float64 { return a.inner.MeanAlpha() }

// Aggregate implements Algorithm: stages → inner rule → weight re-map →
// server optimizer.
func (a *stackedAlg) Aggregate(s *ServerCtx, updates []Update) {
	a.lastZeroed, a.lastClipped, a.lastClipNorm = 0, 0, 0
	kept := updates
	if len(a.stages) > 0 {
		kept = a.applyStages(updates)
	}
	if len(kept) > 0 {
		a.inner.Aggregate(s, kept)
	}
	if len(a.stages) > 0 {
		a.reportFull(s, updates, kept)
	}
	if a.opt != nil && len(kept) > 0 {
		// A round that lost every update to zeroing moves nothing: the
		// optimizer consumes aggregated pseudo-gradients, not silence.
		a.opt.Step(s.WPrev, s.W)
	}
}

// applyStages runs the stage pipeline over the round's update norms and
// applies the resulting multipliers: dropped updates are compacted out of
// the survivor list (the inner rule never sees them), rescaled updates
// are scaled in place.
func (a *stackedAlg) applyStages(updates []Update) []Update {
	n := len(updates)
	norms := a.norms[:n]
	mult := a.mult[:n]
	for i := range updates {
		norms[i] = updates[i].Norm()
		mult[i] = 1
	}
	for _, st := range a.stages {
		bound := st.Bound()
		affected := st.Apply(norms, mult)
		switch st.Kind() {
		case aggstack.StageZeroing:
			a.lastZeroed += affected
		case aggstack.StageClipping:
			a.lastClipped += affected
			a.lastClipNorm = bound
		}
	}
	a.kept = a.kept[:0]
	a.keptIdx = a.keptIdx[:0]
	for i := range updates {
		m := mult[i]
		if m == 0 {
			continue
		}
		if m != 1 {
			scaleUpdate(&updates[i], m)
		}
		a.kept = append(a.kept, updates[i])
		a.keptIdx = append(a.keptIdx, i)
	}
	return a.kept
}

// scaleUpdate rescales an update in place, keeping the dense delta and
// any encoded payload view consistent. Sparse payloads scale in O(k):
// the dense view's dropped coordinates are exact zeros, which rescale to
// exact zeros for free.
func scaleUpdate(u *Update, m float64) {
	if p := u.Payload; p != nil && p.Sparse() {
		for j, idx := range p.Idx {
			p.Val[j] *= m
			u.Delta[idx] *= m
		}
		return
	}
	vecmath.Scale(m, u.Delta)
}

// reportFull re-maps the round's reported aggregation weights from the
// survivor list back to the full update list, giving dropped updates
// weight 0 — so the engine's honest-vs-corrupt weight-mass metrics see
// the stack's suppressions instead of being skipped on a length mismatch
// (scheduler.recordWeightMass). When the inner rule reported nothing
// (every rule shipped here reports through ServerCtx.AggregationWeights,
// but the hook set does not force it) the stack synthesizes the Eq. (6)
// weights over the survivors, which is what a report-free rule aggregates
// with.
func (a *stackedAlg) reportFull(s *ServerCtx, updates, kept []Update) {
	kw := a.keptW[:len(kept)]
	switch {
	case len(kept) == 0:
	case len(s.reported) == len(kept):
		copy(kw, s.reported)
	default:
		aggregationWeightsInto(kw, kept, a.weighted)
	}
	full := a.fullW[:len(updates)]
	vecmath.Zero(full)
	for j, idx := range a.keptIdx {
		full[idx] = kw[j]
	}
	s.ReportWeights(full)
}

// stackStats returns the last aggregation's stage statistics.
func (a *stackedAlg) stackStats() (zeroed, clipped int, clipNorm float64) {
	return a.lastZeroed, a.lastClipped, a.lastClipNorm
}

// clearStackStats resets the stage statistics for a round that never
// reached Aggregate (every update lost in transit).
func (a *stackedAlg) clearStackStats() {
	a.lastZeroed, a.lastClipped, a.lastClipNorm = 0, 0, 0
}

// SaveState implements StatefulAlgorithm: the stage quantile estimates,
// the optimizer state, and the inner algorithm's own state when it has
// any. The wrapper is stateful even over a stateless inner rule — the
// adaptive bounds and moments must survive a checkpoint bit-identically.
func (a *stackedAlg) SaveState(w io.Writer) error {
	ckpt.WriteInt(w, len(a.stages))
	for _, st := range a.stages {
		ckpt.WriteF64(w, st.Estimate())
	}
	ckpt.WriteBool(w, a.opt != nil)
	if a.opt != nil {
		step, m, v := a.opt.State()
		ckpt.WriteInt(w, step)
		if err := ckpt.WriteF64s(w, m); err != nil {
			return err
		}
		if err := ckpt.WriteF64s(w, v); err != nil {
			return err
		}
	}
	ckpt.WriteBool(w, a.innerSA != nil)
	if a.innerSA != nil {
		return a.innerSA.SaveState(w)
	}
	return nil
}

// LoadState implements StatefulAlgorithm.
func (a *stackedAlg) LoadState(r io.Reader) error {
	nStages, err := ckpt.ReadInt(r)
	if err != nil {
		return err
	}
	if nStages != len(a.stages) {
		return fmt.Errorf("stack: %d stage estimates for %d stages", nStages, len(a.stages))
	}
	for _, st := range a.stages {
		est, err := ckpt.ReadF64(r)
		if err != nil {
			return err
		}
		if est <= 0 {
			return fmt.Errorf("stack: non-positive stage estimate %v", est)
		}
		st.SetEstimate(est)
	}
	hasOpt, err := ckpt.ReadBool(r)
	if err != nil {
		return err
	}
	if hasOpt != (a.opt != nil) {
		return fmt.Errorf("stack: optimizer presence mismatch")
	}
	if a.opt != nil {
		step, err := ckpt.ReadInt(r)
		if err != nil {
			return err
		}
		m, err := ckpt.ReadF64s(r)
		if err != nil {
			return err
		}
		v, err := ckpt.ReadF64s(r)
		if err != nil {
			return err
		}
		if err := a.opt.Restore(step, m, v); err != nil {
			return err
		}
	}
	hasInner, err := ckpt.ReadBool(r)
	if err != nil {
		return err
	}
	if hasInner != (a.innerSA != nil) {
		return fmt.Errorf("stack: inner-state presence mismatch")
	}
	if a.innerSA != nil {
		return a.innerSA.LoadState(r)
	}
	return nil
}
