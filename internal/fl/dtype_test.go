package fl

import (
	"strings"
	"testing"

	"repro/internal/compress"
)

// Float32-path (Config.DType "f32") engine tests. The precision contract
// under test: the fp32 path keeps every determinism guarantee of the
// float64 engine — bit-identical at any parallelism, bit-identical across
// checkpoint/resume, zero allocations in steady state — because all
// cross-client state (aggregation, algorithm hooks, checkpoints) stays
// float64; only the per-client local loop runs fp32. Numeric closeness to
// the float64 results is covered separately by the precision-drift
// regression (precision_drift_test.go).

func TestDTypeValidate(t *testing.T) {
	base := Config{Rounds: 1, LocalSteps: 1, BatchSize: 1, LocalLR: 0.1}
	for _, dt := range []string{"", "f64", "f32"} {
		c := base
		c.DType = dt
		if err := c.Validate(); err != nil {
			t.Fatalf("DType %q rejected: %v", dt, err)
		}
	}
	c := base
	c.DType = "f16"
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "DType") {
		t.Fatalf("DType \"f16\" accepted (err=%v), want DType error", err)
	}
}

// TestDTypeF64Explicit pins that DType "f64" is spelled-out default
// behavior: same bits as the zero value (the sync golden covers the zero
// value itself).
func TestDTypeF64Explicit(t *testing.T) {
	net, shards, test := poolSetup(t, 8)
	cfg := Config{Rounds: 3, LocalSteps: 2, BatchSize: 8, LocalLR: 0.05, Seed: 23}
	def, err := Run(cfg, goldenFedAvg{}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DType = "f64"
	exp, err := Run(cfg, goldenFedAvg{}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if ha, hb := paramsHash(def.FinalParams), paramsHash(exp.FinalParams); ha != hb {
		t.Fatalf("DType \"f64\" differs from default: %016x vs %016x", ha, hb)
	}
}

// TestF32BitIdentityAcrossParallelism is the fp32 twin of the slot-pool
// stress regression: 32 clients over 1 vs 8 slots, fp32 local compute,
// results bit-identical. The fused-correction variant exercises the
// per-step corr32 narrowing; the int8 variant exercises EncodeEF32 and
// the fp32 residual rows under slot multiplexing.
func TestF32BitIdentityAcrossParallelism(t *testing.T) {
	net, shards, test := poolSetup(t, 32)
	base := Config{
		Rounds:     4,
		LocalSteps: 3,
		BatchSize:  8,
		LocalLR:    0.05,
		Seed:       19,
		DType:      "f32",
	}
	variants := []struct {
		name string
		mk   func() Algorithm
		mod  func(*Config)
	}{
		{name: "fedavg", mk: func() Algorithm { return goldenFedAvg{} }},
		{name: "fusedcorr", mk: func() Algorithm { return &fusedCorrAlg{} }},
		{name: "fedavg-int8", mk: func() Algorithm { return goldenFedAvg{} }, mod: func(c *Config) {
			c.Compress = compress.Spec{Kind: compress.KindInt8, Chunk: 256}
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfgA := base
			cfgA.Parallelism = 1
			cfgB := base
			cfgB.Parallelism = 8
			if v.mod != nil {
				v.mod(&cfgA)
				v.mod(&cfgB)
			}
			resA, err := Run(cfgA, v.mk(), net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			resB, err := Run(cfgB, v.mk(), net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			if ha, hb := paramsHash(resA.FinalParams), paramsHash(resB.FinalParams); ha != hb {
				t.Fatalf("FinalParams differ across slot counts: %016x vs %016x", ha, hb)
			}
		})
	}
}

// TestF32CheckpointResumeBitIdentical pins the fp32 state through the
// checkpoint boundary: with int8 compression live, the fp32 EF residuals
// round-trip through the float64 row format (exact widen on save, exact
// narrow on restore), so a resumed run replays bit-identically.
func TestF32CheckpointResumeBitIdentical(t *testing.T) {
	net, shards, test := poolSetup(t, 8)
	cfg := Config{
		Rounds:          6,
		LocalSteps:      3,
		BatchSize:       8,
		LocalLR:         0.05,
		Seed:            31,
		DType:           "f32",
		Compress:        compress.Spec{Kind: compress.KindInt8, Chunk: 256},
		CheckpointEvery: 3,
	}
	var blob []byte
	cfg.OnCheckpoint = func(round int, data []byte) {
		if round == 3 {
			blob = append([]byte(nil), data...)
		}
	}
	want, err := Run(cfg, goldenFedAvg{}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no checkpoint captured at round 3")
	}
	cfg.OnCheckpoint = nil
	got, err := Resume(cfg, goldenFedAvg{}, net, shards, test, blob)
	if err != nil {
		t.Fatal(err)
	}
	if ha, hb := paramsHash(want.FinalParams), paramsHash(got.FinalParams); ha != hb {
		t.Fatalf("resumed FinalParams differ: %016x vs %016x", ha, hb)
	}
}

// TestF32SteadyStateAllocs extends the zero-allocation contract to the
// fp32 path: warmed-up fp32 rounds — plain, fused-correction, compressed,
// and stacked — allocate nothing. The only fp32-specific lazy allocation
// (a client's first EF residual) happens during warmup.
func TestF32SteadyStateAllocs(t *testing.T) {
	net, shards, test := poolSetup(t, 8)
	variants := []struct {
		name     string
		mk       func() Algorithm
		compress compress.Spec
		stacked  bool
	}{
		{name: "plain", mk: func() Algorithm { return goldenFedAvg{} }},
		{name: "fused", mk: func() Algorithm { return &fusedCorrAlg{} }},
		{name: "int8", mk: func() Algorithm { return goldenFedAvg{} }, compress: compress.Spec{Kind: compress.KindInt8, Chunk: 256}},
		{name: "stack", mk: func() Algorithm { return goldenFedAvg{} }, stacked: true},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := Config{
				Rounds:     200,
				LocalSteps: 3,
				BatchSize:  8,
				LocalLR:    0.05,
				Seed:       11,
				EvalEvery:  1000,
				DType:      "f32",
				Compress:   v.compress,
			}
			if v.stacked {
				cfg.AggStack = mustStack(t, "zeroing|clip")
				cfg.ServerOpt = mustOpt(t, "adam:0.1")
			}
			s, err := newScheduler(cfg, v.mk(), net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			defer s.pool.close()
			round := 0
			for ; round < 5; round++ {
				if halt, err := s.syncRound(round); err != nil || halt {
					t.Fatalf("warmup round %d: halt=%v err=%v", round, halt, err)
				}
			}
			allocs := testing.AllocsPerRun(30, func() {
				halt, err := s.syncRound(round)
				if err != nil || halt {
					t.Fatalf("round %d: halt=%v err=%v", round, halt, err)
				}
				round++
			})
			if allocs != 0 {
				t.Fatalf("steady-state f32 %s round allocates %.1f objects/round, want 0", v.name, allocs)
			}
		})
	}
}

// f64EngineAlg is a minimal algorithm carrying the RequiresF64Engine
// marker (as STEM does), for the setup-rejection test.
type f64EngineAlg struct{ Base }

func (f64EngineAlg) Name() string                       { return "needsEng" }
func (f64EngineAlg) Aggregate(s *ServerCtx, u []Update) { FedAvgStep(s, u) }
func (f64EngineAlg) RequiresF64Engine()                 {}

// TestF32RejectsF64EngineAlgorithms pins the setup-time gate: an
// algorithm that evaluates gradients through StepCtx.Eng is rejected
// under DType "f32" with a clear error instead of a nil-engine panic
// mid-round — including when wrapped in an aggregation stack, since the
// check runs on the raw algorithm before stacking.
func TestF32RejectsF64EngineAlgorithms(t *testing.T) {
	net, shards, test := poolSetup(t, 4)
	cfg := Config{Rounds: 1, LocalSteps: 1, BatchSize: 8, LocalLR: 0.05, DType: "f32"}
	if _, err := Run(cfg, f64EngineAlg{}, net, shards, test); err == nil || !strings.Contains(err.Error(), "float64 engine") {
		t.Fatalf("f32 run with engine-dependent algorithm: err=%v, want float64-engine error", err)
	}
	cfg.AggStack = mustStack(t, "clip")
	if _, err := Run(cfg, f64EngineAlg{}, net, shards, test); err == nil || !strings.Contains(err.Error(), "float64 engine") {
		t.Fatalf("stacked f32 run with engine-dependent algorithm: err=%v, want float64-engine error", err)
	}
	cfg.AggStack = mustStack(t, "none")
	cfg.DType = "f64"
	if _, err := Run(cfg, f64EngineAlg{}, net, shards, test); err != nil {
		t.Fatalf("f64 run with engine-dependent algorithm failed: %v", err)
	}
}
