package fl_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/aggstack"
	"repro/internal/baselines"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/simclock"
)

// ckptCapture retains every checkpoint a run emits (the callback's
// buffer is reused, so each blob is copied).
type ckptCapture struct {
	rounds []int
	blobs  [][]byte
}

func (c *ckptCapture) hook() func(int, []byte) {
	return func(round int, data []byte) {
		c.rounds = append(c.rounds, round)
		c.blobs = append(c.blobs, append([]byte(nil), data...))
	}
}

func (c *ckptCapture) at(round int) []byte {
	for i, r := range c.rounds {
		if r == round {
			return c.blobs[i]
		}
	}
	return nil
}

// sameRounds compares two metric histories field for field, zeroing the
// measured (real) wall-time fields, which are inherently noisy.
func sameRounds(t *testing.T, want, got []metrics.Round) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("round count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		w.SlowestMeasuredSec, g.SlowestMeasuredSec = 0, 0
		w.CumMeasuredSec, g.CumMeasuredSec = 0, 0
		if w != g {
			t.Fatalf("round %d record mismatch:\nwant %+v\ngot  %+v", i, w, g)
		}
	}
}

// sameParams compares parameter vectors bit-exactly.
func sameParams(t *testing.T, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("param count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("param %d: want %v, got %v (bit mismatch)", i, want[i], got[i])
		}
	}
}

// faultedConfig is the checkpoint tests' base configuration: a fault mix
// exercising every per-dispatch kind, periodic checkpoints, and the
// policy's required knobs.
func faultedConfig(t *testing.T, policy fl.AggregationPolicy, seed uint64, net *nn.Network) fl.Config {
	t.Helper()
	faults, err := fault.ParseFaults("crash:0.2,drop:0.15,dup:0.2,slow:0.3:3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fl.Config{
		Rounds:          8,
		LocalSteps:      4,
		BatchSize:       16,
		LocalLR:         0.05,
		Seed:            seed,
		Policy:          policy,
		Faults:          faults,
		CheckpointEvery: 3,
	}
	switch policy {
	case fl.PolicyDeadline:
		cfg.RoundDeadlineSec = 10 * simclock.RoundSeconds(net.GradFlops(cfg.BatchSize), cfg.LocalSteps, simclock.Plain())
	case fl.PolicyAsync:
		cfg.AsyncBuffer = 3
	}
	return cfg
}

// TestCheckpointResumeBitIdentical is the tentpole's acceptance test:
// run to completion capturing checkpoints, then resume a fresh engine
// from the mid-run checkpoint and require the final weights and every
// replayed round record to match the uninterrupted run bit-exactly —
// under all three policies, both seeds, with faults live and a stateful
// algorithm (TACO: tracker, correction, z, strikes all checkpointed).
func TestCheckpointResumeBitIdentical(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	for _, policy := range []fl.AggregationPolicy{fl.PolicySync, fl.PolicyDeadline, fl.PolicyAsync} {
		for _, seed := range []uint64{11, 29} {
			t.Run(fmt.Sprintf("%v-seed%d", policy, seed), func(t *testing.T) {
				cfg := faultedConfig(t, policy, seed, net)
				cap := &ckptCapture{}
				cfg.OnCheckpoint = cap.hook()
				want, err := fl.Run(cfg, core.New(core.Recommended()), net, shards, test)
				if err != nil {
					t.Fatal(err)
				}
				blob := cap.at(3)
				if blob == nil {
					t.Fatalf("no checkpoint at round 3 (captured rounds %v)", cap.rounds)
				}
				cfg.OnCheckpoint = nil
				got, err := fl.Resume(cfg, core.New(core.Recommended()), net, shards, test, blob)
				if err != nil {
					t.Fatal(err)
				}
				sameParams(t, want.FinalParams, got.FinalParams)
				sameRounds(t, want.Run.Rounds, got.Run.Rounds)
				if got.Run.RecoveredRounds != 0 || got.Run.Rollbacks != 0 {
					t.Fatalf("clean resume reported recovery: %d recovered, %d rollbacks",
						got.Run.RecoveredRounds, got.Run.Rollbacks)
				}
			})
		}
	}
}

// TestCheckpointResumeStacked pins the stacked wrapper's state delegation
// over stateful inner rules: the checkpoint must capture the stage
// quantile estimates and optimizer moments AND the inner algorithm's own
// state (TACO's tracker/correction/z, Scaffold's control variates), and a
// resume must replay bit-identically — including the new per-round
// zeroed/clipped counters, which ride the round records through the
// checkpoint.
func TestCheckpointResumeStacked(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	stack, err := aggstack.ParseStack("zeroing|clip")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := aggstack.ParseServerOpt("yogi:0.1")
	if err != nil {
		t.Fatal(err)
	}
	algs := map[string]func() fl.Algorithm{
		"taco":     func() fl.Algorithm { return core.New(core.Recommended()) },
		"scaffold": func() fl.Algorithm { return baselines.NewScaffold(1) },
	}
	for _, policy := range []fl.AggregationPolicy{fl.PolicySync, fl.PolicyAsync} {
		for name, alg := range algs {
			t.Run(fmt.Sprintf("%v-%s", policy, name), func(t *testing.T) {
				cfg := faultedConfig(t, policy, 11, net)
				cfg.AggStack = stack
				cfg.ServerOpt = opt
				cap := &ckptCapture{}
				cfg.OnCheckpoint = cap.hook()
				want, err := fl.Run(cfg, alg(), net, shards, test)
				if err != nil {
					t.Fatal(err)
				}
				blob := cap.at(3)
				if blob == nil {
					t.Fatalf("no checkpoint at round 3 (captured %v)", cap.rounds)
				}
				cfg.OnCheckpoint = nil
				got, err := fl.Resume(cfg, alg(), net, shards, test, blob)
				if err != nil {
					t.Fatal(err)
				}
				sameParams(t, want.FinalParams, got.FinalParams)
				sameRounds(t, want.Run.Rounds, got.Run.Rounds)
			})
		}
	}
}

// TestCheckpointResumeWithCompression pins checkpointing of the codec
// state: quantization stream cursors, error-feedback residuals, and
// (under async) the in-flight encoded payloads.
func TestCheckpointResumeWithCompression(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	for _, policy := range []fl.AggregationPolicy{fl.PolicySync, fl.PolicyAsync} {
		t.Run(fmt.Sprintf("%v", policy), func(t *testing.T) {
			cfg := faultedConfig(t, policy, 11, net)
			cfg.Compress = compress.Spec{Kind: compress.KindInt8, Chunk: 256}
			cap := &ckptCapture{}
			cfg.OnCheckpoint = cap.hook()
			want, err := fl.Run(cfg, baselines.NewScaffold(1), net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			cfg.OnCheckpoint = nil
			got, err := fl.Resume(cfg, baselines.NewScaffold(1), net, shards, test, cap.at(3))
			if err != nil {
				t.Fatal(err)
			}
			sameParams(t, want.FinalParams, got.FinalParams)
			sameRounds(t, want.Run.Rounds, got.Run.Rounds)
		})
	}
}

// TestServerCrashReplayBitIdentical pins the in-run recovery path: a
// servercrash fault kills the run at round 5, the engine restores the
// round-4 checkpoint with its rng cursors, and the replayed rounds are
// bit-identical — so the whole run matches a crash-free config exactly,
// with the detour visible only in RecoveredRounds.
func TestServerCrashReplayBitIdentical(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	algs := map[string]func() fl.Algorithm{
		"taco":     func() fl.Algorithm { return core.New(core.Recommended()) },
		"scaffold": func() fl.Algorithm { return baselines.NewScaffold(1) },
		"stem":     func() fl.Algorithm { return baselines.NewSTEM(0.2) },
	}
	for _, policy := range []fl.AggregationPolicy{fl.PolicySync, fl.PolicyDeadline, fl.PolicyAsync} {
		for name, alg := range algs {
			t.Run(fmt.Sprintf("%v-%s", policy, name), func(t *testing.T) {
				base := faultedConfig(t, policy, 11, net)
				base.Faults = nil
				base.CheckpointEvery = 0
				want, err := fl.Run(base, alg(), net, shards, test)
				if err != nil {
					t.Fatal(err)
				}

				crashed := base
				crashed.Faults = []fault.Spec{{Kind: fault.KindServerCrash, Round: 5}}
				crashed.CheckpointEvery = 2
				got, err := fl.Run(crashed, alg(), net, shards, test)
				if err != nil {
					t.Fatal(err)
				}
				sameParams(t, want.FinalParams, got.FinalParams)
				sameRounds(t, want.Run.Rounds, got.Run.Rounds)
				if got.Run.RecoveredRounds != 1 {
					t.Fatalf("RecoveredRounds = %d, want 1 (crash at 5, checkpoint at 4)", got.Run.RecoveredRounds)
				}
			})
		}
	}
}

// TestResumeRejectsMismatch pins the fingerprint guard: a checkpoint
// must not resume under a different config, algorithm, or after header
// corruption.
func TestResumeRejectsMismatch(t *testing.T) {
	net, shards, test := testSetup(t, 6)
	cfg := fl.Config{Rounds: 4, LocalSteps: 3, BatchSize: 8, LocalLR: 0.05, Seed: 11, CheckpointEvery: 2}
	cap := &ckptCapture{}
	cfg.OnCheckpoint = cap.hook()
	if _, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test); err != nil {
		t.Fatal(err)
	}
	blob := cap.at(2)
	if blob == nil {
		t.Fatal("no checkpoint captured")
	}
	cfg.OnCheckpoint = nil

	otherSeed := cfg
	otherSeed.Seed = 12
	if _, err := fl.Resume(otherSeed, baselines.NewFedAvg(), net, shards, test, blob); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("seed mismatch: err = %v, want fingerprint rejection", err)
	}
	if _, err := fl.Resume(cfg, core.New(core.Recommended()), net, shards, test, blob); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("algorithm mismatch: err = %v, want fingerprint rejection", err)
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, err := fl.Resume(cfg, baselines.NewFedAvg(), net, shards, test, bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("corrupt magic: err = %v, want magic rejection", err)
	}
	if _, err := fl.Resume(cfg, baselines.NewFedAvg(), net, shards, test, blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

// nanBomb is FedAvg that poisons the model with a NaN at its nth
// aggregation, once. The fired latch is deliberately NOT checkpointed
// (nanBomb is not a StatefulAlgorithm), modeling a transient blow-up:
// after a rollback the replayed window is clean.
type nanBomb struct {
	*baselines.FedAvg
	bombAt int
	aggs   int
	fired  bool
}

func (a *nanBomb) Aggregate(s *fl.ServerCtx, updates []fl.Update) {
	a.FedAvg.Aggregate(s, updates)
	a.aggs++
	if !a.fired && a.aggs == a.bombAt {
		a.fired = true
		s.W[0] = math.NaN()
	}
}

// TestDivergenceRollback pins the divergence guard: with checkpoints
// armed, a non-finite model rolls back to the last checkpoint (keeping
// the live rng cursors, so the replay draws fresh batches) instead of
// halting, and the run completes.
func TestDivergenceRollback(t *testing.T) {
	net, shards, test := testSetup(t, 6)
	cfg := fl.Config{Rounds: 8, LocalSteps: 3, BatchSize: 8, LocalLR: 0.05, Seed: 11, CheckpointEvery: 2}
	res, err := fl.Run(cfg, &nanBomb{FedAvg: baselines.NewFedAvg(), bombAt: 6}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Rollbacks != 1 {
		t.Fatalf("Rollbacks = %d, want 1", res.Run.Rollbacks)
	}
	if res.Run.Diverged || res.Run.HaltRound != 0 || res.Run.HaltReason != "" {
		t.Fatalf("run should have recovered: Diverged=%v HaltRound=%d HaltReason=%q",
			res.Run.Diverged, res.Run.HaltRound, res.Run.HaltReason)
	}
	if len(res.Run.Rounds) != cfg.Rounds {
		t.Fatalf("completed %d rounds, want %d", len(res.Run.Rounds), cfg.Rounds)
	}
	for i, v := range res.FinalParams {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("final param %d non-finite after rollback: %v", i, v)
		}
	}
}

// TestDivergenceHaltSurfaced pins the no-checkpoint behavior: the run
// halts and the halt is recorded on the Run — never silent.
func TestDivergenceHaltSurfaced(t *testing.T) {
	net, shards, test := testSetup(t, 6)
	cfg := fl.Config{Rounds: 8, LocalSteps: 3, BatchSize: 8, LocalLR: 0.05, Seed: 11}
	res, err := fl.Run(cfg, &nanBomb{FedAvg: baselines.NewFedAvg(), bombAt: 6}, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Run.Diverged || res.Run.DivergedRound != 5 {
		t.Fatalf("Diverged=%v DivergedRound=%d, want divergence at round 5",
			res.Run.Diverged, res.Run.DivergedRound)
	}
	if res.Run.HaltRound != 5 || !strings.Contains(res.Run.HaltReason, "diverged") {
		t.Fatalf("HaltRound=%d HaltReason=%q, want halt surfaced at round 5",
			res.Run.HaltRound, res.Run.HaltReason)
	}
}

// FuzzCheckpointRestore feeds arbitrary bytes to Resume: corrupt or
// truncated checkpoints must fail with an error, never a panic or an
// absurd allocation.
func FuzzCheckpointRestore(f *testing.F) {
	train, test, err := dataset.Standard("adult", dataset.ScaleSmall, 3)
	if err != nil {
		f.Fatal(err)
	}
	part, err := partition.Dirichlet(train, 4, 0.5, rng.New(4))
	if err != nil {
		f.Fatal(err)
	}
	net, err := dataset.Model("adult")
	if err != nil {
		f.Fatal(err)
	}
	shards := part.Shards(train)

	cfg := fl.Config{Rounds: 3, LocalSteps: 2, BatchSize: 8, LocalLR: 0.05, Seed: 5, CheckpointEvery: 1}
	cap := &ckptCapture{}
	cfg.OnCheckpoint = cap.hook()
	if _, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test); err != nil {
		f.Fatal(err)
	}
	cfg.OnCheckpoint = nil
	for _, blob := range cap.blobs {
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
	}
	f.Add([]byte{})
	f.Add([]byte("FLCKPT01 but then garbage follows the magic bytes here"))
	f.Add([]byte("FLCKPT02 but then garbage follows the magic bytes here"))

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = fl.Resume(cfg, baselines.NewFedAvg(), net, shards, test, data)
	})
}
