package fl_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/simclock"
)

// heteroFleet returns a deterministic 8-client fleet with one slow and
// one intermittently-available device, sized so the deadline and async
// dynamics are exercised at test scale.
func heteroFleet(nominal float64) []simclock.DeviceProfile {
	fleet := simclock.UniformFleet(8)
	fleet[2].SpeedFactor = 5 // hard straggler
	fleet[5] = simclock.DeviceProfile{
		SpeedFactor:  1.2,
		Availability: simclock.Trace{PeriodSec: 10 * nominal, OnFraction: 0.5, OffsetSec: 6 * nominal},
	}
	return fleet
}

// nominalRound returns the modeled plain-profile round duration for the
// 8-client adult test setup.
func nominalRound(t *testing.T, cfg fl.Config) float64 {
	t.Helper()
	net, _, _ := testSetup(t, 8)
	return simclock.RoundSeconds(net.GradFlops(cfg.BatchSize), cfg.LocalSteps, simclock.Plain())
}

// policyConfig builds one test config per aggregation policy over the
// shared heterogeneous fleet.
func policyConfig(t *testing.T, policy fl.AggregationPolicy, seed uint64) fl.Config {
	t.Helper()
	cfg := quickConfig()
	cfg.Seed = seed
	nominal := nominalRound(t, cfg)
	cfg.Devices = heteroFleet(nominal)
	cfg.Policy = policy
	switch policy {
	case fl.PolicyDeadline:
		cfg.RoundDeadlineSec = 1.5 * nominal
	case fl.PolicyAsync:
		cfg.AsyncBuffer = 3
	}
	return cfg
}

// TestSchedulerDeterministicAcrossParallelism is the determinism
// regression the event scheduler is locked down by: for every policy and
// two seeds, Parallelism=1 and Parallelism=8 must produce bit-identical
// results — final parameters and the full deterministic metric history.
func TestSchedulerDeterministicAcrossParallelism(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	policies := []fl.AggregationPolicy{fl.PolicySync, fl.PolicyDeadline, fl.PolicyAsync}
	for _, policy := range policies {
		for _, seed := range []uint64{11, 97} {
			t.Run(fmt.Sprintf("%s/seed%d", policy, seed), func(t *testing.T) {
				cfgSerial := policyConfig(t, policy, seed)
				cfgSerial.Parallelism = 1
				cfgParallel := policyConfig(t, policy, seed)
				cfgParallel.Parallelism = 8

				resA, err := fl.Run(cfgSerial, core.New(core.Recommended()), net, shards, test)
				if err != nil {
					t.Fatal(err)
				}
				resB, err := fl.Run(cfgParallel, core.New(core.Recommended()), net, shards, test)
				if err != nil {
					t.Fatal(err)
				}
				for i := range resA.FinalParams {
					if resA.FinalParams[i] != resB.FinalParams[i] {
						t.Fatalf("param %d differs across parallelism levels", i)
					}
				}
				if len(resA.Run.Rounds) != len(resB.Run.Rounds) {
					t.Fatalf("round counts differ: %d vs %d", len(resA.Run.Rounds), len(resB.Run.Rounds))
				}
				for i := range resA.Run.Rounds {
					a, b := resA.Run.Rounds[i], resB.Run.Rounds[i]
					a.SlowestMeasuredSec, b.SlowestMeasuredSec = 0, 0
					a.CumMeasuredSec, b.CumMeasuredSec = 0, 0
					if a != b {
						t.Fatalf("round %d metrics differ across parallelism levels:\nP=1 %+v\nP=8 %+v", i, a, b)
					}
				}
			})
		}
	}
}

// TestDeadlinePolicyDropsStragglers checks the deadline policy's core
// behavior: the 5×-slow device misses every round's deadline, drops are
// recorded, the round's modeled duration is capped at the deadline, and
// training still learns.
func TestDeadlinePolicyDropsStragglers(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	cfg := policyConfig(t, fl.PolicyDeadline, 11)
	res, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	run := res.Run
	if run.TotalDropped() == 0 {
		t.Fatal("expected straggler drops under the deadline policy")
	}
	for i, rec := range run.Rounds {
		if rec.DroppedClients > 0 && rec.SlowestModeledSec > cfg.RoundDeadlineSec {
			t.Fatalf("round %d waited %.6fs past the %.6fs deadline", i, rec.SlowestModeledSec, cfg.RoundDeadlineSec)
		}
		if rec.MeanStaleness != 0 || rec.MaxStaleness != 0 {
			t.Fatalf("round %d reports staleness under the deadline policy", i)
		}
	}
	if run.FinalAccuracy() < 0.55 {
		t.Fatalf("deadline policy accuracy %.4f too low", run.FinalAccuracy())
	}
}

// TestAsyncPolicyTracksStaleness checks the buffered async policy: once
// the server has stepped, later-arriving updates report positive
// staleness, and the staleness-damped aggregation still learns.
func TestAsyncPolicyTracksStaleness(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	cfg := policyConfig(t, fl.PolicyAsync, 11)
	cfg.Rounds = 10
	res, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	run := res.Run
	if len(run.Rounds) != 10 {
		t.Fatalf("recorded %d server steps, want 10", len(run.Rounds))
	}
	if run.PeakStaleness() == 0 {
		t.Fatal("async run never observed a stale update")
	}
	if run.MeanStaleness() <= 0 {
		t.Fatalf("mean staleness %v, want > 0", run.MeanStaleness())
	}
	if run.FinalAccuracy() < 0.55 {
		t.Fatalf("async policy accuracy %.4f too low", run.FinalAccuracy())
	}
	// Virtual time accumulates monotonically.
	last := run.Rounds[len(run.Rounds)-1]
	if last.CumModeledSec <= 0 {
		t.Fatal("async virtual clock did not advance")
	}
}

// TestAsyncSingleBuffer runs fully-asynchronous aggregation (the
// AsyncBuffer=0 → 1 default): every arrival is a server step.
func TestAsyncSingleBuffer(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	cfg := policyConfig(t, fl.PolicyAsync, 11)
	cfg.AsyncBuffer = 0
	res, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Run.Rounds) != cfg.Rounds {
		t.Fatalf("recorded %d server steps, want %d", len(res.Run.Rounds), cfg.Rounds)
	}
}

// TestAllAlgorithmsRunAsync runs every algorithm under buffered async
// aggregation on the heterogeneous fleet — the staleness plumbing must
// not break any method's hook contract.
func TestAllAlgorithmsRunAsync(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	algs := []fl.Algorithm{
		baselines.NewFedAvg(),
		baselines.NewFedProx(0.1),
		baselines.NewFoolsGold(),
		baselines.NewScaffold(1),
		baselines.NewSTEM(0.2),
		baselines.NewFedACG(0.001),
		core.New(core.Recommended()),
	}
	for _, alg := range algs {
		t.Run(alg.Name(), func(t *testing.T) {
			cfg := policyConfig(t, fl.PolicyAsync, 11)
			res, err := fl.Run(cfg, alg, net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			if res.Run.Diverged {
				t.Fatalf("%s diverged under async aggregation", alg.Name())
			}
		})
	}
}

// nanAlg diverges on purpose: its aggregation writes NaN into the global
// model at a chosen round.
type nanAlg struct {
	fl.Base
	atRound int
}

func (a *nanAlg) Name() string { return "NaNBomb" }
func (a *nanAlg) Aggregate(s *fl.ServerCtx, updates []fl.Update) {
	fl.FedAvgStep(s, updates)
	if s.Round == a.atRound {
		s.W[0] = math.NaN()
	}
}

// TestDivergenceHaltsRun injects a NaN-producing aggregation and checks
// the divergence path under every policy: Diverged/DivergedRound are
// set, the loop halts without panicking, and no further rounds are
// recorded.
func TestDivergenceHaltsRun(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	for _, policy := range []fl.AggregationPolicy{fl.PolicySync, fl.PolicyDeadline, fl.PolicyAsync} {
		t.Run(policy.String(), func(t *testing.T) {
			cfg := policyConfig(t, policy, 11)
			res, err := fl.Run(cfg, &nanAlg{atRound: 2}, net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Run.Diverged {
				t.Fatal("Diverged not set after NaN aggregation")
			}
			if res.Run.DivergedRound != 2 {
				t.Fatalf("DivergedRound = %d, want 2", res.Run.DivergedRound)
			}
			if len(res.Run.Rounds) != 2 {
				t.Fatalf("recorded %d rounds after divergence at round 2, want 2", len(res.Run.Rounds))
			}
		})
	}
}

// TestDeviceCountMismatch rejects fleets that do not match the shard
// count.
func TestDeviceCountMismatch(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	cfg := quickConfig()
	cfg.Devices = simclock.UniformFleet(5)
	if _, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test); err == nil {
		t.Fatal("expected error for 5 device profiles over 8 shards")
	}
}

// TestSyncHeterogeneousModeledTime checks that a slow device stretches
// the synchronous server's modeled round time by its speed factor.
func TestSyncHeterogeneousModeledTime(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	uniform := quickConfig()
	resU, err := fl.Run(uniform, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	hetero := quickConfig()
	hetero.Devices = simclock.UniformFleet(8)
	hetero.Devices[3].SpeedFactor = 5
	resH, err := fl.Run(hetero, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	u := resU.Run.Rounds[0].SlowestModeledSec
	h := resH.Run.Rounds[0].SlowestModeledSec
	if math.Abs(h-5*u) > 1e-12*u {
		t.Fatalf("slow device modeled time %.9fs, want 5× the uniform %.9fs", h, u)
	}
	// The trajectory itself is unaffected: sync waits for everyone.
	for i := range resU.FinalParams {
		if resU.FinalParams[i] != resH.FinalParams[i] {
			t.Fatal("device profiles changed the synchronous trajectory")
		}
	}
}

// TestAsyncWithFreeloaders checks that freeloaders under the async
// policy arrive on an honest-looking schedule (they masquerade, so they
// cannot flood the buffer with instant replays) and training still
// learns.
func TestAsyncWithFreeloaders(t *testing.T) {
	net, shards, test := testSetup(t, 8)
	cfg := policyConfig(t, fl.PolicyAsync, 11)
	cfg.Rounds = 8
	cfg.Freeloaders = []int{7}
	res, err := fl.Run(cfg, baselines.NewFedAvg(), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	run := res.Run
	if run.Diverged {
		t.Fatal("diverged with one async freeloader")
	}
	if run.FinalAccuracy() < 0.55 {
		t.Fatalf("async freeloader accuracy %.4f too low", run.FinalAccuracy())
	}
	// Honest clients must dominate the aggregated updates: with 8 clients
	// sharing one device speed, each server step's buffer cannot be pure
	// freeloader replays, so the mean train loss stays positive.
	if last := run.Rounds[len(run.Rounds)-1]; last.TrainLoss <= 0 {
		t.Fatalf("train loss %v suggests freeloader-only buffers", last.TrainLoss)
	}
}
