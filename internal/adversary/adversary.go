// Package adversary models client corruption as a first-class, composable
// axis of the federated simulation. A corruption is declared as a Spec
// (which clients, which attack, how strong, and when it is live) and
// compiled into a Behavior — a small strategy object the engine invokes at
// one of three hook points in the client pipeline (DESIGN.md §6):
//
//   - data level (DataCorruptor): the client's shard is rewritten before
//     training — label flipping, label noise (FedEFC's noisy clients);
//   - update level (DeltaCorruptor): the outgoing delta Δ_i is mutated in
//     place on the slot-pool checkout path — sign flipping, scaling,
//     Gaussian perturbation;
//   - whole-update fabrication (Fabricator): local training is skipped
//     entirely and the upload is synthesized — the paper's freeloaders,
//     and sybil groups uploading one shared crafted delta.
//
// Every behavior is a pure function of the client's deterministic state
// (its derived RNG stream, the dispatch-time globals, the round), so runs
// stay bit-identical at any parallelism level, and honest clients' random
// streams are untouched by the presence of adversaries.
package adversary

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/simclock"
)

// Kind names one corruption primitive.
type Kind string

const (
	// KindLabelFlip deterministically flips every label y → C−1−y in the
	// client's shard (targeted label poisoning).
	KindLabelFlip Kind = "labelflip"
	// KindLabelNoise replaces each label with a uniformly random class
	// with probability Scale (default 0.5) — FedEFC's noisy-label client.
	KindLabelNoise Kind = "labelnoise"
	// KindSignFlip negates the outgoing delta (model-poisoning sign
	// flip; an honest-looking magnitude pointing the wrong way).
	KindSignFlip Kind = "signflip"
	// KindScale multiplies the outgoing delta by Scale (default 5), the
	// classic boosted model-replacement attack.
	KindScale Kind = "scale"
	// KindDeltaNoise adds zero-mean Gaussian noise with per-coordinate
	// standard deviation Scale·‖Δ‖/√d (default Scale 1) to the delta.
	KindDeltaNoise Kind = "deltanoise"
	// KindFreeloader uploads the replayed previous global step instead of
	// training (Section IV-A's lazy client).
	KindFreeloader Kind = "freeload"
	// KindSybil makes the member clients collude: every member uploads
	// the same crafted delta — the previous global step, negated and
	// amplified by Scale (default 1) — so the camp pushes the model
	// backwards along its own trajectory.
	KindSybil Kind = "sybil"
)

// Kinds lists every corruption primitive in a stable order.
func Kinds() []Kind {
	return []Kind{KindLabelFlip, KindLabelNoise, KindSignFlip, KindScale, KindDeltaNoise, KindFreeloader, KindSybil}
}

// KindNames lists the accepted -attack flag values.
func KindNames() []string {
	kinds := Kinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = string(k)
	}
	return names
}

// Spec declares one corruption: the attack kind, the clients it applies
// to, its magnitude, and an optional activation window. Specs compose — a
// client may appear in several specs, stacking a data-level attack with
// update-level injectors (at most one fabricator per client).
type Spec struct {
	// Kind selects the corruption primitive.
	Kind Kind
	// Clients lists the corrupted client IDs explicitly. Mutually
	// exclusive with Frac.
	Clients []int
	// Frac corrupts round(Frac·N) clients — half-up, at least one when
	// positive — spread evenly across the ID range so every
	// data-partition group keeps honest members. Mutually exclusive with
	// Clients.
	Frac float64
	// Scale is the attack magnitude; its meaning is kind-specific (see
	// the Kind constants). 0 selects the kind's default.
	Scale float64
	// Window optionally gates the corruption to a periodic activation
	// window over modeled time (simclock.Trace semantics: live during
	// the first OnFraction of every PeriodSec cycle). The zero value
	// means always live. Fabricators and update-level injectors check
	// the window at dispatch time; data-level corruption swaps the
	// client back to its clean shard while the window is closed.
	Window simclock.Trace
}

// Validate reports malformed specs. Client-count-dependent checks (IDs in
// range) are done by the engine, which knows N.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindLabelFlip, KindLabelNoise, KindSignFlip, KindScale, KindDeltaNoise, KindFreeloader, KindSybil:
	default:
		return fmt.Errorf("adversary: unknown kind %q (valid: %v)", s.Kind, KindNames())
	}
	if len(s.Clients) > 0 && s.Frac != 0 {
		return fmt.Errorf("adversary: %s spec sets both Clients and Frac", s.Kind)
	}
	if s.Frac < 0 || s.Frac > 1 || math.IsNaN(s.Frac) {
		return fmt.Errorf("adversary: %s fraction %v must be in [0,1]", s.Kind, s.Frac)
	}
	if len(s.Clients) == 0 && s.Frac == 0 {
		return fmt.Errorf("adversary: %s spec selects no clients (set Clients or Frac)", s.Kind)
	}
	seen := make(map[int]bool, len(s.Clients))
	for _, id := range s.Clients {
		if id < 0 {
			return fmt.Errorf("adversary: %s client id %d must be non-negative", s.Kind, id)
		}
		if seen[id] {
			return fmt.Errorf("adversary: %s client id %d listed twice", s.Kind, id)
		}
		seen[id] = true
	}
	if math.IsNaN(s.Scale) || math.IsInf(s.Scale, 0) || s.Scale < 0 {
		return fmt.Errorf("adversary: %s scale %v must be finite and non-negative", s.Kind, s.Scale)
	}
	if s.Kind == KindLabelNoise && s.Scale > 1 {
		return fmt.Errorf("adversary: labelnoise rate %v must be in [0,1]", s.Scale)
	}
	if err := s.Window.Validate(); err != nil {
		return fmt.Errorf("adversary: %s window: %w", s.Kind, err)
	}
	return nil
}

// Members resolves the corrupted client set for an n-client federation:
// a sorted copy of Clients, or round(Frac·n) IDs (half-up, at least one)
// spread evenly across [0,n). IDs are sorted ascending, so every
// consumer iterates deterministically.
func (s Spec) Members(n int) []int {
	if len(s.Clients) > 0 {
		ids := make([]int, len(s.Clients))
		copy(ids, s.Clients)
		sort.Ints(ids)
		return ids
	}
	if s.Frac <= 0 || n <= 0 {
		return nil
	}
	count := max(int(s.Frac*float64(n)+0.5), 1)
	count = min(count, n)
	ids := make([]int, count)
	for i := range ids {
		ids[i] = i * n / count
	}
	return ids
}

// Behavior compiles the spec into its strategy object with kind defaults
// applied. The returned value implements exactly one of the capability
// interfaces (DataCorruptor, DeltaCorruptor, Fabricator) and is safe to
// share across the spec's member clients.
func (s Spec) Behavior() Behavior {
	scale := func(def float64) float64 {
		if s.Scale != 0 {
			return s.Scale
		}
		return def
	}
	switch s.Kind {
	case KindLabelFlip:
		return LabelFlip{}
	case KindLabelNoise:
		return LabelNoise{Rate: scale(0.5)}
	case KindSignFlip:
		return SignFlip{}
	case KindScale:
		return ScaleAttack{Factor: scale(5)}
	case KindDeltaNoise:
		return DeltaNoise{Sigma: scale(1)}
	case KindFreeloader:
		return Freeloader{}
	case KindSybil:
		return Sybil{Amplify: scale(1)}
	default:
		return nil
	}
}

// ParseAttack parses the flsim -attack syntax "kind[:frac[:scale]]", e.g.
// "signflip", "scale:0.3", "sybil:0.25:2". The returned spec always
// passes Validate.
func ParseAttack(s string) (Spec, error) {
	parts := strings.Split(s, ":")
	if len(parts) > 3 {
		return Spec{}, fmt.Errorf("adversary: attack %q has more than kind:frac:scale parts", s)
	}
	spec := Spec{Kind: Kind(strings.TrimSpace(parts[0])), Frac: 0.25}
	if len(parts) > 1 {
		f, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return Spec{}, fmt.Errorf("adversary: attack fraction %q: %v", parts[1], err)
		}
		spec.Frac = f
	}
	if len(parts) > 2 {
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return Spec{}, fmt.Errorf("adversary: attack scale %q: %v", parts[2], err)
		}
		spec.Scale = v
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}
