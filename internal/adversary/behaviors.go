package adversary

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/vecmath"
)

// Behavior is one compiled corruption primitive. Concrete behaviors
// additionally implement exactly one of the capability interfaces below,
// which determines where the engine hooks them into the client pipeline.
type Behavior interface {
	// Name identifies the behavior in reports and errors.
	Name() string
}

// DataCorruptor rewrites a client's data shard before training (applied
// once at setup; the engine keeps the clean shard and samples from the
// corrupted one while the spec's window is live).
type DataCorruptor interface {
	Behavior
	// CorruptData returns a corrupted view of shard. Implementations must
	// not mutate shard; label-only attacks share the feature array. r is
	// the client's derived corruption stream.
	CorruptData(shard *dataset.Dataset, r *rng.RNG) *dataset.Dataset
}

// DeltaCorruptor mutates a trained client's outgoing delta in place, on
// the slot pool's checkout path. Implementations must not allocate:
// warmed-up rounds with injectors live are pinned at zero allocations.
type DeltaCorruptor interface {
	Behavior
	CorruptDelta(delta []float64, ctx *Ctx)
}

// Fabricator replaces local training entirely, synthesizing the upload
// into delta. Fabricating clients report no training loss and do no
// measurable work.
type Fabricator interface {
	Behavior
	Fabricate(delta []float64, ctx *Ctx)
}

// Ctx is the per-dispatch context handed to update-level behaviors. The
// engine owns one reusable Ctx per corrupt client, so invoking a behavior
// allocates nothing.
type Ctx struct {
	// Client and Round identify the dispatch.
	Client, Round int
	// Global and PrevGlobal are the dispatch-time global models w^t and
	// w^{t−1} (read-only).
	Global, PrevGlobal []float64
	// ReplayScale converts a global parameter step into honest-delta
	// units: K·ηl/ηg, so (w^{t−1}−w^t)·ReplayScale has the magnitude of
	// an honest K-step local delta.
	ReplayScale float64
	// RNG is the client's persistent corruption stream, derived once at
	// setup; stochastic behaviors draw from it so runs stay bit-identical
	// at any parallelism level.
	RNG *rng.RNG
}

// LabelFlip deterministically maps every label y → C−1−y, preserving the
// shard size and label domain (an involution: flipping twice restores the
// original labels).
type LabelFlip struct{}

// Name implements Behavior.
func (LabelFlip) Name() string { return string(KindLabelFlip) }

// CorruptData implements DataCorruptor. The corrupted view shares X and
// Groups with the clean shard; only the labels are rewritten.
func (LabelFlip) CorruptData(shard *dataset.Dataset, _ *rng.RNG) *dataset.Dataset {
	y := make([]int, len(shard.Y))
	for i, v := range shard.Y {
		y[i] = shard.Classes - 1 - v
	}
	return &dataset.Dataset{Name: shard.Name, In: shard.In, Classes: shard.Classes, X: shard.X, Y: y, Groups: shard.Groups}
}

// LabelNoise replaces each label with a uniformly random class with
// probability Rate — the noisy-label client of FedEFC's threat model.
type LabelNoise struct {
	// Rate ∈ [0,1] is the per-sample corruption probability.
	Rate float64
}

// Name implements Behavior.
func (LabelNoise) Name() string { return string(KindLabelNoise) }

// CorruptData implements DataCorruptor.
func (b LabelNoise) CorruptData(shard *dataset.Dataset, r *rng.RNG) *dataset.Dataset {
	y := make([]int, len(shard.Y))
	copy(y, shard.Y)
	for i := range y {
		if r.Float64() < b.Rate {
			y[i] = r.IntN(shard.Classes)
		}
	}
	return &dataset.Dataset{Name: shard.Name, In: shard.In, Classes: shard.Classes, X: shard.X, Y: y, Groups: shard.Groups}
}

// SignFlip negates the outgoing delta: an honest-looking magnitude
// pointing exactly the wrong way. Applying it twice is the identity.
type SignFlip struct{}

// Name implements Behavior.
func (SignFlip) Name() string { return string(KindSignFlip) }

// CorruptDelta implements DeltaCorruptor.
func (SignFlip) CorruptDelta(delta []float64, _ *Ctx) {
	for i := range delta {
		delta[i] = -delta[i]
	}
}

// ScaleAttack multiplies the outgoing delta by Factor — the boosted
// model-replacement attack. Factor 1 is a bit-exact no-op.
type ScaleAttack struct {
	Factor float64
}

// Name implements Behavior.
func (ScaleAttack) Name() string { return string(KindScale) }

// CorruptDelta implements DeltaCorruptor.
func (b ScaleAttack) CorruptDelta(delta []float64, _ *Ctx) {
	if b.Factor == 1 {
		return
	}
	vecmath.Scale(b.Factor, delta)
}

// DeltaNoise perturbs the outgoing delta with zero-mean Gaussian noise,
// scaled to the delta's own magnitude: per-coordinate σ = Sigma·‖Δ‖/√d,
// so Sigma 1 roughly doubles the expected squared norm regardless of the
// model or round.
type DeltaNoise struct {
	Sigma float64
}

// Name implements Behavior.
func (DeltaNoise) Name() string { return string(KindDeltaNoise) }

// CorruptDelta implements DeltaCorruptor.
func (b DeltaNoise) CorruptDelta(delta []float64, ctx *Ctx) {
	if len(delta) == 0 {
		return
	}
	sigma := b.Sigma * vecmath.Norm2(delta) / math.Sqrt(float64(len(delta)))
	if sigma == 0 {
		return
	}
	for i := range delta {
		delta[i] += ctx.RNG.Normal(0, sigma)
	}
}

// Freeloader fabricates a lazy client's upload: it replays the previous
// global update rescaled to look like an honest local delta (Section
// IV-A: freeloaders "only upload previous global gradients ∆t received
// without contributing any new local updates"). In round 0 there is no
// previous gradient, so the upload is zero.
type Freeloader struct{}

// Name implements Behavior.
func (Freeloader) Name() string { return string(KindFreeloader) }

// Fabricate implements Fabricator: Δ = ReplayScale·(w^{t−1} − w^t).
func (Freeloader) Fabricate(delta []float64, ctx *Ctx) {
	if ctx.Round == 0 {
		vecmath.Zero(delta)
		return
	}
	vecmath.SubScale(delta, ctx.ReplayScale, ctx.PrevGlobal, ctx.Global)
}

// Sybil is a colluding camp: every member uploads the identical crafted
// delta — the previous global step negated and amplified by Amplify — so
// the group coherently drags the model backwards along its own
// trajectory. The delta is a pure function of (round, globals), so
// members dispatched at the same server version share it bit-exactly,
// which is what similarity-based defenses (FoolsGold) key on.
type Sybil struct {
	Amplify float64
}

// Name implements Behavior.
func (Sybil) Name() string { return string(KindSybil) }

// Fabricate implements Fabricator: Δ = −Amplify·ReplayScale·(w^{t−1} − w^t).
func (b Sybil) Fabricate(delta []float64, ctx *Ctx) {
	if ctx.Round == 0 {
		vecmath.Zero(delta)
		return
	}
	vecmath.SubScale(delta, -b.Amplify*ctx.ReplayScale, ctx.PrevGlobal, ctx.Global)
}
