package adversary

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/simclock"
)

func randDelta(seed uint64, n int) []float64 {
	r := rng.New(seed)
	d := make([]float64, n)
	for i := range d {
		d[i] = r.Normal(0, 1)
	}
	return d
}

func testShard(t *testing.T, seed uint64) *dataset.Dataset {
	t.Helper()
	r := rng.New(seed)
	d := &dataset.Dataset{
		Name:    "toy",
		In:      nn.Vec(3),
		Classes: 5,
		X:       make([]float64, 40*3),
		Y:       make([]int, 40),
	}
	for i := range d.X {
		d.X[i] = r.Normal(0, 1)
	}
	for i := range d.Y {
		d.Y[i] = r.IntN(d.Classes)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSignFlipInvolution pins SignFlip∘SignFlip = identity bit-exactly.
func TestSignFlipInvolution(t *testing.T) {
	d := randDelta(3, 257)
	orig := append([]float64(nil), d...)
	var b SignFlip
	b.CorruptDelta(d, &Ctx{})
	for i := range d {
		if d[i] != -orig[i] {
			t.Fatalf("sign flip at %d: %v vs %v", i, d[i], orig[i])
		}
	}
	b.CorruptDelta(d, &Ctx{})
	for i := range d {
		if d[i] != orig[i] {
			t.Fatalf("double sign flip not identity at %d: %v vs %v", i, d[i], orig[i])
		}
	}
}

// TestScaleAttackIdentity pins ScaleAttack(1.0) as a bit-exact no-op.
func TestScaleAttackIdentity(t *testing.T) {
	d := randDelta(5, 129)
	orig := append([]float64(nil), d...)
	(ScaleAttack{Factor: 1}).CorruptDelta(d, &Ctx{})
	for i := range d {
		if d[i] != orig[i] {
			t.Fatalf("ScaleAttack(1.0) changed element %d", i)
		}
	}
	(ScaleAttack{Factor: 3}).CorruptDelta(d, &Ctx{})
	for i := range d {
		if d[i] != 3*orig[i] {
			t.Fatalf("ScaleAttack(3) at %d: %v, want %v", i, d[i], 3*orig[i])
		}
	}
}

// TestLabelFlipPreservesShardShape: size, label domain, and shared
// features are preserved; flipping twice restores the labels.
func TestLabelFlipPreservesShardShape(t *testing.T) {
	shard := testShard(t, 7)
	var b LabelFlip
	flipped := b.CorruptData(shard, rng.New(1))
	if flipped.Len() != shard.Len() {
		t.Fatalf("shard size changed: %d -> %d", shard.Len(), flipped.Len())
	}
	if err := flipped.Validate(); err != nil {
		t.Fatalf("flipped shard invalid (label domain): %v", err)
	}
	if &flipped.X[0] != &shard.X[0] {
		t.Fatal("label flip must share the feature array")
	}
	changed := 0
	for i := range shard.Y {
		if flipped.Y[i] != shard.Y[i] {
			changed++
		}
		if flipped.Y[i] != shard.Classes-1-shard.Y[i] {
			t.Fatalf("label %d not flipped: %d -> %d", i, shard.Y[i], flipped.Y[i])
		}
	}
	if changed == 0 {
		t.Fatal("label flip changed nothing")
	}
	twice := b.CorruptData(flipped, rng.New(1))
	for i := range shard.Y {
		if twice.Y[i] != shard.Y[i] {
			t.Fatal("double label flip must restore the labels")
		}
	}
}

func TestLabelNoise(t *testing.T) {
	shard := testShard(t, 9)
	zero := LabelNoise{Rate: 0}.CorruptData(shard, rng.New(2))
	for i := range shard.Y {
		if zero.Y[i] != shard.Y[i] {
			t.Fatal("rate-0 label noise must be a no-op")
		}
	}
	full := LabelNoise{Rate: 1}.CorruptData(shard, rng.New(2))
	if err := full.Validate(); err != nil {
		t.Fatalf("noisy shard invalid: %v", err)
	}
	if full.Len() != shard.Len() {
		t.Fatal("label noise changed the shard size")
	}
	// Determinism: the same stream produces the same corruption.
	again := LabelNoise{Rate: 1}.CorruptData(shard, rng.New(2))
	for i := range full.Y {
		if full.Y[i] != again.Y[i] {
			t.Fatal("label noise not deterministic for a fixed stream")
		}
	}
}

// TestSybilSharedDelta: colluding clients fabricate bit-identical deltas
// from the same dispatch state, and round 0 uploads zeros.
func TestSybilSharedDelta(t *testing.T) {
	global := randDelta(11, 64)
	prev := randDelta(13, 64)
	b := Sybil{Amplify: 2}
	mk := func(client int) []float64 {
		d := make([]float64, 64)
		b.Fabricate(d, &Ctx{Client: client, Round: 3, Global: global, PrevGlobal: prev, ReplayScale: 0.5})
		return d
	}
	a, c := mk(1), mk(17)
	anyNonZero := false
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("sybil deltas differ at %d: %v vs %v", i, a[i], c[i])
		}
		if a[i] != 0 {
			anyNonZero = true
		}
		if want := -2 * 0.5 * (prev[i] - global[i]); a[i] != want {
			t.Fatalf("sybil delta at %d: %v, want %v", i, a[i], want)
		}
	}
	if !anyNonZero {
		t.Fatal("sybil delta all zero past round 0")
	}
	d := make([]float64, 64)
	d[5] = 99
	b.Fabricate(d, &Ctx{Round: 0, Global: global, PrevGlobal: prev, ReplayScale: 0.5})
	for i := range d {
		if d[i] != 0 {
			t.Fatal("round-0 sybil upload must be zero")
		}
	}
}

// TestFreeloaderReplay pins the Section IV-A replay arithmetic.
func TestFreeloaderReplay(t *testing.T) {
	global := randDelta(17, 32)
	prev := randDelta(19, 32)
	d := make([]float64, 32)
	(Freeloader{}).Fabricate(d, &Ctx{Round: 2, Global: global, PrevGlobal: prev, ReplayScale: 0.25})
	for i := range d {
		if want := 0.25 * (prev[i] - global[i]); d[i] != want {
			t.Fatalf("replay at %d: %v, want %v", i, d[i], want)
		}
	}
}

func TestDeltaNoise(t *testing.T) {
	d := randDelta(23, 512)
	orig := append([]float64(nil), d...)
	ctx := &Ctx{RNG: rng.New(5)}
	DeltaNoise{Sigma: 1}.CorruptDelta(d, ctx)
	changed := 0
	for i := range d {
		if d[i] != orig[i] {
			changed++
		}
	}
	if changed < 500 {
		t.Fatalf("delta noise changed only %d/512 coordinates", changed)
	}
	// A zero delta carries no magnitude to scale the noise by: no-op.
	z := make([]float64, 16)
	DeltaNoise{Sigma: 1}.CorruptDelta(z, ctx)
	for i := range z {
		if z[i] != 0 {
			t.Fatal("noise on a zero delta must stay zero")
		}
	}
}

func TestMembers(t *testing.T) {
	s := Spec{Kind: KindSignFlip, Frac: 0.3}
	ids := s.Members(20)
	if len(ids) != 6 {
		t.Fatalf("0.3 of 20 -> %d members, want 6", len(ids))
	}
	seen := map[int]bool{}
	for i, id := range ids {
		if id < 0 || id >= 20 {
			t.Fatalf("member %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("duplicate member %d", id)
		}
		seen[id] = true
		if i > 0 && ids[i-1] >= id {
			t.Fatal("members not sorted ascending")
		}
	}
	// Tiny fractions still corrupt at least one client.
	if got := (Spec{Kind: KindSignFlip, Frac: 0.001}).Members(20); len(got) != 1 {
		t.Fatalf("tiny fraction -> %v, want one member", got)
	}
	// Explicit lists come back sorted without mutating the spec.
	e := Spec{Kind: KindSignFlip, Clients: []int{5, 1, 3}}
	if got := e.Members(20); got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("explicit members = %v", got)
	}
	if e.Clients[0] != 5 {
		t.Fatal("Members must not mutate the spec's client list")
	}
	if got := (Spec{Kind: KindSignFlip, Frac: 1}).Members(7); len(got) != 7 {
		t.Fatalf("frac 1 -> %v, want all 7", got)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Kind: "nope", Frac: 0.5},
		{Kind: KindSignFlip},                               // selects nobody
		{Kind: KindSignFlip, Frac: 1.5},                    // fraction out of range
		{Kind: KindSignFlip, Frac: -0.1},                   //
		{Kind: KindSignFlip, Frac: math.NaN()},             //
		{Kind: KindSignFlip, Clients: []int{1}, Frac: 0.5}, // both selectors
		{Kind: KindSignFlip, Clients: []int{-1}},           // negative id
		{Kind: KindSignFlip, Clients: []int{2, 2}},         // duplicate id
		{Kind: KindScale, Frac: 0.5, Scale: math.Inf(1)},   // non-finite scale
		{Kind: KindScale, Frac: 0.5, Scale: -1},            // negative scale
		{Kind: KindLabelNoise, Frac: 0.5, Scale: 1.5},      // rate above 1
		{Kind: KindSignFlip, Frac: 0.5, Window: simclock.Trace{PeriodSec: -1}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("spec %+v passed validation", s)
		}
	}
	good := []Spec{
		{Kind: KindSignFlip, Frac: 0.5},
		{Kind: KindSybil, Clients: []int{0, 4, 9}, Scale: 2},
		{Kind: KindFreeloader, Frac: 0.4, Window: simclock.Trace{PeriodSec: 10, OnFraction: 0.5}},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Fatalf("spec %+v rejected: %v", s, err)
		}
	}
}

func TestBehaviorCompilation(t *testing.T) {
	for _, k := range Kinds() {
		s := Spec{Kind: k, Frac: 0.5}
		b := s.Behavior()
		if b == nil {
			t.Fatalf("kind %s compiles to nil", k)
		}
		if b.Name() != string(k) {
			t.Fatalf("kind %s behavior named %q", k, b.Name())
		}
		n := 0
		if _, ok := b.(DataCorruptor); ok {
			n++
		}
		if _, ok := b.(DeltaCorruptor); ok {
			n++
		}
		if _, ok := b.(Fabricator); ok {
			n++
		}
		if n != 1 {
			t.Fatalf("kind %s implements %d capability interfaces, want exactly 1", k, n)
		}
	}
	// Scale defaults are applied at compilation.
	if b := (Spec{Kind: KindScale, Frac: 0.5}).Behavior().(ScaleAttack); b.Factor != 5 {
		t.Fatalf("default scale factor %v, want 5", b.Factor)
	}
	if b := (Spec{Kind: KindLabelNoise, Frac: 0.5}).Behavior().(LabelNoise); b.Rate != 0.5 {
		t.Fatalf("default noise rate %v, want 0.5", b.Rate)
	}
}

func TestParseAttack(t *testing.T) {
	cases := []struct {
		in    string
		kind  Kind
		frac  float64
		scale float64
	}{
		{"signflip", KindSignFlip, 0.25, 0},
		{"scale:0.3", KindScale, 0.3, 0},
		{"sybil:0.25:2", KindSybil, 0.25, 2},
		{" labelflip : 0.5 ", KindLabelFlip, 0.5, 0},
	}
	for _, tc := range cases {
		spec, err := ParseAttack(tc.in)
		if err != nil {
			t.Fatalf("ParseAttack(%q): %v", tc.in, err)
		}
		if spec.Kind != tc.kind || spec.Frac != tc.frac || spec.Scale != tc.scale {
			t.Fatalf("ParseAttack(%q) = %+v", tc.in, spec)
		}
	}
	for _, bad := range []string{"", "nope", "signflip:x", "signflip:0.5:y", "signflip:0.5:1:2", "signflip:2"} {
		if _, err := ParseAttack(bad); err == nil {
			t.Fatalf("ParseAttack(%q) succeeded", bad)
		}
	}
}

// FuzzParseAttack: the parser never panics, and anything it accepts is a
// valid spec.
func FuzzParseAttack(f *testing.F) {
	for _, seed := range []string{"signflip", "scale:0.3", "sybil:0.25:2", "freeload:1", "x:y:z", ":::", "labelnoise:0.5:0.9"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseAttack(s)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseAttack(%q) returned invalid spec %+v: %v", s, spec, verr)
		}
		if got := spec.Behavior(); got == nil {
			t.Fatalf("ParseAttack(%q) spec compiles to nil behavior", s)
		}
	})
}
