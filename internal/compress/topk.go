package compress

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/vecmath"
)

// TopK keeps the k = max(1, round(Frac·d)) largest-magnitude coordinates
// of the update as (index, value) pairs, in ascending index order. The
// selection is fully deterministic: the k-th magnitude is found by
// median-of-three quickselect over a caller-provided scratch copy, and
// ties at the threshold are broken by the smallest index.
//
// Non-finite contract: NaN coordinates are dropped — never selected,
// never transmitted — so one poisoned coordinate cannot claim a top-k
// slot every round and spread NaN through aggregation before the
// divergence guard can attribute the halt; the payload then carries
// fewer than k pairs and the decode yields 0 at the dropped positions
// (EncodeEF's residual reset discards the matching unrecoverable
// residual mass). ±Inf propagates: it is a genuine magnitude, sorts
// above everything finite, and arrives at the server where the
// divergence guard halts the run with the right attribution.
type TopK struct {
	// Frac is the kept-coordinate fraction, in (0, 1].
	Frac float64
}

// Name implements Codec.
func (c *TopK) Name() string { return fmt.Sprintf("topk:%g", c.Frac) }

// K returns the kept-coordinate count for a d-length vector.
func (c *TopK) K(d int) int {
	k := int(c.Frac*float64(d) + 0.5)
	return min(max(k, 1), d)
}

// Grow implements Codec.
func (c *TopK) Grow(p *Payload, d int) {
	k := c.K(d)
	if cap(p.Idx) < k {
		p.Idx = make([]int32, 0, k)
	}
	if cap(p.Val) < k {
		p.Val = make([]float64, 0, k)
	}
}

// absTotal maps a coordinate to its selection magnitude under a total
// order: NaN maps to 0 so the quickselect partition always makes progress
// (no NaN ever reaches the comparison loops). NaN coordinates are
// additionally skipped by every emit loop — a zero magnitude could still
// win a tie slot when the threshold is 0 — which implements the drop-NaN
// contract documented on TopK.
func absTotal(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return math.Abs(v)
}

// Encode implements Codec. scratch must have len(x) capacity; it holds
// the magnitude copy the selection permutes.
func (c *TopK) Encode(p *Payload, x []float64, _ *rng.RNG, scratch []float64) {
	d := len(x)
	k := c.K(d)
	c.Grow(p, d)
	p.Form, p.N, p.ChunkLen = KindTopK, d, 0
	p.Q, p.Scale = p.Q[:0], p.Scale[:0]
	idx, val := p.Idx[:0], p.Val[:0]
	if k == d {
		for i, v := range x {
			if math.IsNaN(v) {
				continue
			}
			idx = append(idx, int32(i))
			val = append(val, v)
		}
		p.Idx, p.Val = idx, val
		return
	}

	mags := scratch[:d]
	for i, v := range x {
		mags[i] = absTotal(v)
	}
	tau := kthLargest(mags, k)
	// Keep everything strictly above the threshold, then fill the
	// remaining slots with threshold-magnitude coordinates in index
	// order; both scans emit ascending indices.
	ties := k
	for _, v := range x {
		if absTotal(v) > tau {
			ties--
		}
	}
	for i, v := range x {
		if math.IsNaN(v) {
			// A NaN holds a rank (its 0 magnitude went through the
			// selection) but is dropped at emission, so the payload may
			// carry fewer than k pairs.
			continue
		}
		m := absTotal(v)
		if m > tau {
			idx = append(idx, int32(i))
			val = append(val, v)
		} else if m == tau && ties > 0 {
			ties--
			idx = append(idx, int32(i))
			val = append(val, v)
		}
	}
	p.Idx, p.Val = idx, val
}

// Decode implements Codec: scatter the kept coordinates over zeros.
func (c *TopK) Decode(dst []float64, p *Payload) {
	vecmath.Zero(dst)
	for j, i := range p.Idx {
		dst[i] = p.Val[j]
	}
}

// kthLargest returns the k-th largest element of a (1 ≤ k ≤ len(a)),
// permuting a in place. Elements must compare under a total order (no
// NaNs — see absTotal). Deterministic: median-of-three pivots, three-way
// partitioning (guaranteed progress on duplicate-heavy inputs).
func kthLargest(a []float64, k int) float64 {
	lo, hi := 0, len(a)
	target := len(a) - k // rank in ascending order
	for hi-lo > 1 {
		pivot := medianOf3(a[lo], a[lo+(hi-lo)/2], a[hi-1])
		// Dutch-flag partition of [lo,hi) into < pivot, == pivot, > pivot.
		lt, gt := lo, hi
		for i := lo; i < gt; {
			switch {
			case a[i] < pivot:
				a[i], a[lt] = a[lt], a[i]
				lt++
				i++
			case a[i] > pivot:
				gt--
				a[i], a[gt] = a[gt], a[i]
			default:
				i++
			}
		}
		switch {
		case target < lt:
			hi = lt
		case target < gt:
			return pivot
		default:
			lo = gt
		}
	}
	return a[lo]
}

// medianOf3 returns the median of its arguments.
func medianOf3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
