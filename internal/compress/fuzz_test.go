package compress

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/rng"
)

// FuzzCodecRoundtrip drives every codec over arbitrary vectors — any
// length, any bit pattern including NaN and ±Inf — and checks the codec
// contract: encode/decode never panics, and when the input is entirely
// finite the decoded vector is entirely finite too.
func FuzzCodecRoundtrip(f *testing.F) {
	f.Add(uint8(0), uint8(50), []byte{})
	f.Add(uint8(1), uint8(10), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(2), uint8(3), []byte{0x7f, 0xf0, 0, 0, 0, 0, 0, 0, 0xff})
	f.Add(uint8(1), uint8(100), []byte{0x7f, 0xf8, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, kind, param uint8, raw []byte) {
		var c Codec
		switch kind % 3 {
		case 0:
			c = None{}
		case 1:
			// Fractions across (0, 1], including degenerate tiny k.
			c = &TopK{Frac: (float64(param%100) + 1) / 100}
		default:
			c = &Int8{Chunk: int(param%64) + 1}
		}
		// Reinterpret the raw bytes as float64s, byte patterns untouched
		// so NaN payloads and subnormals come through.
		d := len(raw) / 8
		if d > 1<<12 {
			d = 1 << 12
		}
		x := make([]float64, d)
		finite := true
		for i := range x {
			x[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
				finite = false
			}
		}

		var p Payload
		scratch := make([]float64, d)
		c.Encode(&p, x, rng.New(uint64(param)), scratch)
		if p.N != d {
			t.Fatalf("%s: payload N = %d, want %d", c.Name(), p.N, d)
		}
		if p.Bytes() < 0 {
			t.Fatalf("%s: negative Bytes %d", c.Name(), p.Bytes())
		}
		dst := make([]float64, d)
		c.Decode(dst, &p)
		if finite {
			for i, v := range dst {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: finite input decoded to %v at %d (x[%d]=%v)", c.Name(), v, i, i, x[i])
				}
			}
		}
		// TopK's drop-NaN contract: a NaN coordinate is never selected, so
		// no transmitted value is NaN and every NaN position decodes to 0.
		if p.Form == KindTopK {
			for j, v := range p.Val {
				if math.IsNaN(v) {
					t.Fatalf("topk transmitted NaN at payload slot %d (index %d)", j, p.Idx[j])
				}
			}
			for i, v := range x {
				if math.IsNaN(v) && dst[i] != 0 {
					t.Fatalf("topk NaN coordinate %d decoded to %v, want 0", i, dst[i])
				}
			}
		}
		// The error-feedback wrapper must be just as total, and its residual
		// must come out finite whatever the input (the reset contract).
		e := make([]float64, d)
		copyX := make([]float64, d)
		copy(copyX, x)
		EncodeEF(c, &p, copyX, e, rng.New(uint64(kind)), scratch)
		for i, v := range e {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: EncodeEF left non-finite residual %v at %d", c.Name(), v, i)
			}
		}
	})
}
