package compress

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/vecmath"
)

func TestParseSpec(t *testing.T) {
	good := []struct {
		in   string
		want Spec
	}{
		{"", Spec{}},
		{"none", Spec{}},
		{"topk", Spec{Kind: KindTopK}},
		{"topk:0.05", Spec{Kind: KindTopK, TopKFrac: 0.05}},
		{"topk:1", Spec{Kind: KindTopK, TopKFrac: 1}},
		{"int8", Spec{Kind: KindInt8}},
		{"int8:256", Spec{Kind: KindInt8, Chunk: 256}},
	}
	for _, tt := range good {
		got, err := ParseSpec(tt.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tt.in, err)
		}
		if got != tt.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
	bad := []string{"gzip", "topk:", "topk:nan", "topk:-0.1", "topk:1.5", "int8:x", "int8:-4", "none:1"}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Fatalf("ParseSpec(%q): expected an error", in)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Kind: "gzip"},
		{Kind: KindNone, TopKFrac: 0.5},
		{Kind: KindInt8, TopKFrac: 0.5},
		{Kind: KindTopK, TopKFrac: -0.1},
		{Kind: KindTopK, TopKFrac: 1.5},
		{Kind: KindTopK, TopKFrac: math.NaN()},
		{Kind: KindTopK, Chunk: 16},
		{Kind: KindInt8, Chunk: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("Validate(%+v): expected an error", s)
		}
	}
	for _, s := range []Spec{{}, {Kind: KindTopK}, {Kind: KindTopK, TopKFrac: 0.1}, {Kind: KindInt8, Chunk: 64}} {
		if err := s.Validate(); err != nil {
			t.Fatalf("Validate(%+v): %v", s, err)
		}
	}
}

func TestNoneRoundtrip(t *testing.T) {
	r := rng.New(1)
	x := randVec(r, 100)
	var p Payload
	c := None{}
	c.Encode(&p, x, nil, nil)
	if p.Bytes() != 800 {
		t.Fatalf("None payload Bytes = %d, want 800", p.Bytes())
	}
	dst := make([]float64, len(x))
	c.Decode(dst, &p)
	for i := range x {
		if dst[i] != x[i] {
			t.Fatalf("None roundtrip changed x[%d]: %v != %v", i, dst[i], x[i])
		}
	}
}

func TestTopKSelection(t *testing.T) {
	x := []float64{0.1, -3, 0.5, 2, -0.2, 0.5, 1}
	c := &TopK{Frac: 3.0 / 7}
	var p Payload
	scratch := make([]float64, len(x))
	c.Encode(&p, x, nil, scratch)
	wantIdx := []int32{1, 3, 6} // |−3|, |2|, |1|
	if len(p.Idx) != len(wantIdx) {
		t.Fatalf("kept %d coordinates, want %d", len(p.Idx), len(wantIdx))
	}
	for j := range wantIdx {
		if p.Idx[j] != wantIdx[j] {
			t.Fatalf("Idx = %v, want %v", p.Idx, wantIdx)
		}
		if p.Val[j] != x[wantIdx[j]] {
			t.Fatalf("Val[%d] = %v, want %v", j, p.Val[j], x[wantIdx[j]])
		}
	}
}

// TestTopKTieBreak pins the determinism contract: magnitude ties at the
// threshold are broken by the smallest index.
func TestTopKTieBreak(t *testing.T) {
	x := []float64{1, -1, 1, 1, -1}
	c := &TopK{Frac: 0.4} // k = 2 of 5
	var p Payload
	c.Encode(&p, x, nil, make([]float64, len(x)))
	if len(p.Idx) != 2 || p.Idx[0] != 0 || p.Idx[1] != 1 {
		t.Fatalf("tie-broken Idx = %v, want [0 1]", p.Idx)
	}
}

func TestTopKProperties(t *testing.T) {
	r := rng.New(5)
	for _, d := range []int{1, 7, 100, 4096} {
		for _, frac := range []float64{0.01, 0.1, 0.5, 1} {
			x := randVec(r, d)
			c := &TopK{Frac: frac}
			var p Payload
			c.Encode(&p, x, nil, make([]float64, d))
			k := c.K(d)
			if len(p.Idx) != k || len(p.Val) != k {
				t.Fatalf("d=%d frac=%v: kept %d/%d coordinates, want %d", d, frac, len(p.Idx), len(p.Val), k)
			}
			// Indices ascending and unique; every kept magnitude ≥ every
			// dropped magnitude.
			kept := make(map[int32]bool, k)
			minKept := math.Inf(1)
			for j, i := range p.Idx {
				if j > 0 && p.Idx[j] <= p.Idx[j-1] {
					t.Fatalf("d=%d frac=%v: indices not ascending: %v", d, frac, p.Idx)
				}
				kept[i] = true
				if m := math.Abs(p.Val[j]); m < minKept {
					minKept = m
				}
				if p.Val[j] != x[i] {
					t.Fatalf("d=%d frac=%v: Val[%d]=%v, want x[%d]=%v", d, frac, j, p.Val[j], i, x[i])
				}
			}
			for i, v := range x {
				if !kept[int32(i)] && math.Abs(v) > minKept {
					t.Fatalf("d=%d frac=%v: dropped |x[%d]|=%v > smallest kept %v", d, frac, i, math.Abs(v), minKept)
				}
			}
			// Decode is the kept coordinates over zeros.
			dst := make([]float64, d)
			c.Decode(dst, &p)
			for i := range x {
				if kept[int32(i)] && dst[i] != x[i] || !kept[int32(i)] && dst[i] != 0 {
					t.Fatalf("d=%d frac=%v: decode[%d]=%v", d, frac, i, dst[i])
				}
			}
		}
	}
}

func TestInt8Roundtrip(t *testing.T) {
	r := rng.New(9)
	for _, d := range []int{1, 63, 64, 65, 1000} {
		x := randVec(r, d)
		c := &Int8{Chunk: 64}
		var p Payload
		c.Encode(&p, x, rng.New(3), nil)
		if wantChunks := (d + 63) / 64; len(p.Scale) != wantChunks {
			t.Fatalf("d=%d: %d chunk scales, want %d", d, len(p.Scale), wantChunks)
		}
		dst := make([]float64, d)
		c.Decode(dst, &p)
		// Per-coordinate error is at most one scale step.
		for i := range x {
			scale := p.Scale[i/64]
			if math.Abs(dst[i]-x[i]) > scale*(1+1e-12) {
				t.Fatalf("d=%d: |decode[%d]-x| = %v exceeds scale %v", d, i, math.Abs(dst[i]-x[i]), scale)
			}
		}
	}
}

// TestInt8Deterministic pins that the encode is a pure function of the
// input and the stream state.
func TestInt8Deterministic(t *testing.T) {
	x := randVec(rng.New(2), 500)
	c := &Int8{Chunk: 128}
	var pa, pb Payload
	c.Encode(&pa, x, rng.New(77), nil)
	c.Encode(&pb, x, rng.New(77), nil)
	for i := range pa.Q {
		if pa.Q[i] != pb.Q[i] {
			t.Fatalf("same stream, different quantization at %d", i)
		}
	}
}

func TestInt8ZeroChunk(t *testing.T) {
	x := make([]float64, 100) // all zero
	c := &Int8{Chunk: 32}
	var p Payload
	c.Encode(&p, x, rng.New(1), nil)
	dst := make([]float64, 100)
	for i := range dst {
		dst[i] = 42
	}
	c.Decode(dst, &p)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("zero vector decoded to %v at %d", v, i)
		}
	}
}

func TestPayloadBytes(t *testing.T) {
	x := randVec(rng.New(4), 1000)
	var p Payload
	tk := &TopK{Frac: 0.01}
	tk.Encode(&p, x, nil, make([]float64, 1000))
	if got, want := p.Bytes(), 10*(4+8); got != want {
		t.Fatalf("TopK Bytes = %d, want %d", got, want)
	}
	i8 := &Int8{Chunk: 100}
	i8.Encode(&p, x, rng.New(1), nil)
	if got, want := p.Bytes(), 1000+10*8; got != want {
		t.Fatalf("Int8 Bytes = %d, want %d", got, want)
	}
}

// TestErrorFeedbackConverges is the error-feedback property test: over a
// stream of updates, the cumulative decoded mass must track the
// cumulative true mass — exactly up to the final residual (algebraic
// telescoping), and within a small relative error overall because the
// residual stays bounded (≈ one selection gap d/k of mass for TopK, one
// scale step for Int8) instead of growing with T.
func TestErrorFeedbackConverges(t *testing.T) {
	const d, T = 512, 400
	codecs := []Codec{&TopK{Frac: 0.05}, &Int8{Chunk: 128}, None{}}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			r := rng.New(21)
			stream := rng.New(33)
			e := make([]float64, d)
			scratch := make([]float64, d)
			x := make([]float64, d)
			cumTrue := make([]float64, d)
			cumDec := make([]float64, d)
			var p Payload
			for step := 0; step < T; step++ {
				// A drifting gradient-like stream: a fixed bias plus noise,
				// so dropped coordinates carry real mass that only error
				// feedback can recover.
				for i := range x {
					x[i] = math.Sin(float64(i)) * 0.1
					x[i] += r.Normal(0, 0.05)
				}
				vecmath.Add(cumTrue, cumTrue, x)
				EncodeEF(c, &p, x, e, stream, scratch)
				vecmath.Add(cumDec, cumDec, x) // x now holds the decoded update
			}
			// Telescoping identity: cumTrue − cumDec == e (up to fp error).
			for i := range e {
				if diff := math.Abs(cumTrue[i] - cumDec[i] - e[i]); diff > 1e-9 {
					t.Fatalf("telescoping violated at %d: |cumTrue-cumDec-e| = %v", i, diff)
				}
			}
			relErr := vecmath.Norm2(e) / vecmath.Norm2(cumTrue)
			if relErr > 0.1 {
				t.Fatalf("cumulative decoded mass off by %.1f%% after %d steps (residual did not stay bounded)", 100*relErr, T)
			}
		})
	}
}

// TestErrorFeedbackRecoversDroppedMass contrasts EF on vs off for a
// constant update under aggressive sparsification: without feedback the
// never-selected coordinates lose all their mass; with feedback every
// coordinate's cumulative decode approaches its cumulative truth.
func TestErrorFeedbackRecoversDroppedMass(t *testing.T) {
	const d, T = 64, 640
	c := &TopK{Frac: 1.0 / 16} // four coordinates per step
	grad := make([]float64, d)
	for i := range grad {
		grad[i] = 1 + float64(i)/d // all positive, mildly skewed
	}
	run := func(withEF bool) []float64 {
		var e []float64
		if withEF {
			e = make([]float64, d)
		}
		scratch := make([]float64, d)
		x := make([]float64, d)
		cum := make([]float64, d)
		var p Payload
		for step := 0; step < T; step++ {
			copy(x, grad)
			EncodeEF(c, &p, x, e, nil, scratch)
			vecmath.Add(cum, cum, x)
		}
		return cum
	}
	withEF, withoutEF := run(true), run(false)
	var zerosNoEF int
	var cumTrue, errEF float64
	for i := range grad {
		if withoutEF[i] == 0 {
			zerosNoEF++
		}
		if withEF[i] == 0 {
			t.Fatalf("EF run starved coordinate %d entirely", i)
		}
		want := float64(T) * grad[i]
		cumTrue += want * want
		errEF += (withEF[i] - want) * (withEF[i] - want)
	}
	if rel := math.Sqrt(errEF / cumTrue); rel > 0.1 {
		t.Fatalf("EF cumulative mass off by %.1f%%", 100*rel)
	}
	if zerosNoEF == 0 {
		t.Fatal("expected the feedback-free run to starve some coordinates entirely")
	}
}

// TestErrorFeedbackNonFiniteRecovery pins the residual-sanitizing
// contract: one non-finite upload (a transient attack or divergence)
// must not poison the client's feedback — the residual stays finite and
// later finite uploads flow through at full mass again.
func TestErrorFeedbackNonFiniteRecovery(t *testing.T) {
	const d = 256
	for _, c := range []Codec{&Int8{Chunk: 64}, &TopK{Frac: 0.5}} {
		t.Run(c.Name(), func(t *testing.T) {
			stream := rng.New(7)
			e := make([]float64, d)
			scratch := make([]float64, d)
			x := make([]float64, d)
			var p Payload
			step := func(poison bool) {
				for i := range x {
					x[i] = 1
				}
				if poison {
					x[3] = math.Inf(1)
					x[100] = math.NaN()
				}
				EncodeEF(c, &p, x, e, stream, scratch)
			}
			step(false)
			step(true)
			for i, v := range e {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("residual poisoned at %d: %v", i, v)
				}
			}
			// A few clean rounds later the decoded mass must track the
			// all-ones upload again (within one quantization/selection
			// residual).
			var last []float64
			for step2 := 0; step2 < 4; step2++ {
				step(false)
				last = append(last[:0], x...)
			}
			for i, v := range last {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("decoded update still non-finite at %d after recovery", i)
				}
				if math.Abs(v-1) > 1.5 {
					t.Fatalf("coordinate %d stuck at %v after recovery, want ≈1", i, v)
				}
			}
		})
	}
}

func randVec(r *rng.RNG, d int) []float64 {
	x := make([]float64, d)
	for i := range x {
		x[i] = r.Normal(0, 1)
	}
	return x
}

// TestTopKDropsNaN pins the drop-NaN contract (see the TopK doc comment):
// NaN coordinates are never selected into the top-k — not by magnitude,
// not through a threshold tie, and not on the keep-everything fast path —
// so they never reach the wire, while ±Inf propagates as a genuine
// largest-magnitude coordinate.
func TestTopKDropsNaN(t *testing.T) {
	scratch := make([]float64, 16)

	// A NaN among large finite values must not displace any of them.
	c := &TopK{Frac: 0.5}
	x := []float64{5, math.NaN(), -4, 0.1, 3, 0.2, -2, 0.3}
	var p Payload
	c.Encode(&p, x, nil, scratch)
	wantIdx := []int32{0, 2, 4, 6} // |5|, |-4|, |3|, |-2|
	if len(p.Idx) != len(wantIdx) {
		t.Fatalf("kept %d coords %v, want %v", len(p.Idx), p.Idx, wantIdx)
	}
	for j, i := range wantIdx {
		if p.Idx[j] != i {
			t.Fatalf("kept indices %v, want %v", p.Idx, wantIdx)
		}
	}

	// The keep-everything fast path (k == d) drops NaNs too.
	all := &TopK{Frac: 1}
	c.Grow(&p, len(x))
	all.Encode(&p, x, nil, scratch)
	for j, i := range p.Idx {
		if math.IsNaN(p.Val[j]) {
			t.Fatalf("k=d path transmitted NaN at index %d", i)
		}
	}
	if len(p.Idx) != len(x)-1 {
		t.Fatalf("k=d path kept %d of %d coords, want %d", len(p.Idx), len(x), len(x)-1)
	}

	// A zero threshold with spare tie slots must not emit a NaN either.
	y := []float64{0, math.NaN(), 0, 1}
	half := &TopK{Frac: 0.75} // k = 3 > one positive coord
	half.Encode(&p, y, nil, scratch)
	for j := range p.Idx {
		if math.IsNaN(p.Val[j]) {
			t.Fatal("tie fill transmitted NaN")
		}
	}

	// All-NaN input: empty payload, zero decode.
	z := []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	half.Encode(&p, z, nil, scratch)
	if len(p.Idx) != 0 {
		t.Fatalf("all-NaN input kept %d coords", len(p.Idx))
	}
	dst := make([]float64, len(z))
	half.Decode(dst, &p)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("all-NaN decode yielded %v at %d", v, i)
		}
	}

	// +Inf is a genuine magnitude and must still be selected first.
	w := []float64{1, math.Inf(1), -3, 2}
	one := &TopK{Frac: 0.25} // k = 1
	one.Encode(&p, w, nil, scratch)
	if len(p.Idx) != 1 || p.Idx[0] != 1 || !math.IsInf(p.Val[0], 1) {
		t.Fatalf("Inf not selected: idx %v val %v", p.Idx, p.Val)
	}
}
