// Package compress implements the uplink update codecs of the
// compressed-communication substrate (DESIGN.md §7): lossless dense
// transport (None), magnitude top-k sparsification (TopK), and QSGD-style
// int8 stochastic quantization (Int8), plus the error-feedback step
// (EncodeEF) that keeps lossy codecs convergent by carrying the
// compression error into the next round's upload.
//
// Codecs are stateless and safe for concurrent use; all mutable state —
// the encoded Payload, the per-client error-feedback residual, the
// quantization RNG stream, and the selection scratch — is owned by the
// caller, which lets the FL engine keep it in the slot pool and run
// steady-state rounds without allocating. Encoding is deterministic: TopK
// breaks magnitude ties by the smallest index, and Int8 draws its
// stochastic roundings from the caller's (per-client) stream, so runs are
// bit-identical at any parallelism level.
package compress

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/rng"
	"repro/internal/vecmath"
)

// Kind names a codec family. The zero value is dense (uncompressed)
// transport, so a zero Spec reproduces uncompressed runs bit-identically.
type Kind string

const (
	// KindNone is lossless dense transport (the identity codec).
	KindNone Kind = ""
	// KindTopK keeps the k largest-magnitude coordinates as (index,
	// value) pairs.
	KindTopK Kind = "topk"
	// KindInt8 quantizes every coordinate to a signed byte with one
	// float64 scale per chunk.
	KindInt8 Kind = "int8"
)

// String implements fmt.Stringer, naming the zero value explicitly.
func (k Kind) String() string {
	if k == KindNone {
		return "none"
	}
	return string(k)
}

// KindNames lists the accepted -compress flag values.
func KindNames() []string { return []string{"none", "topk", "int8"} }

// Defaults applied by Spec for zero fields.
const (
	// DefaultTopKFrac is the kept-coordinate fraction when TopKFrac is 0.
	DefaultTopKFrac = 0.01
	// DefaultChunk is the int8 per-scale chunk length when Chunk is 0.
	DefaultChunk = 1024
)

// Spec declares a codec in a run configuration. The zero value selects
// dense transport.
type Spec struct {
	// Kind selects the codec family.
	Kind Kind
	// TopKFrac is the kept-coordinate fraction for KindTopK, in (0, 1];
	// 0 selects DefaultTopKFrac. Must be 0 for other kinds.
	TopKFrac float64
	// Chunk is the per-scale chunk length for KindInt8; 0 selects
	// DefaultChunk. Must be 0 for other kinds.
	Chunk int
}

// Validate reports specification errors.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindNone, KindTopK, KindInt8:
	default:
		return fmt.Errorf("compress: unknown codec kind %q (valid: %v)", s.Kind, KindNames())
	}
	if s.TopKFrac != 0 {
		if s.Kind != KindTopK {
			return fmt.Errorf("compress: TopKFrac %v is only meaningful for kind topk", s.TopKFrac)
		}
		if math.IsNaN(s.TopKFrac) || s.TopKFrac < 0 || s.TopKFrac > 1 {
			return fmt.Errorf("compress: TopKFrac %v must be in (0,1]", s.TopKFrac)
		}
	}
	if s.Chunk != 0 {
		if s.Kind != KindInt8 {
			return fmt.Errorf("compress: Chunk %d is only meaningful for kind int8", s.Chunk)
		}
		if s.Chunk < 0 {
			return fmt.Errorf("compress: Chunk %d must be positive", s.Chunk)
		}
	}
	return nil
}

// Codec constructs the codec the spec declares. The spec must validate.
func (s Spec) Codec() (Codec, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case KindTopK:
		frac := s.TopKFrac
		if frac == 0 {
			frac = DefaultTopKFrac
		}
		return &TopK{Frac: frac}, nil
	case KindInt8:
		chunk := s.Chunk
		if chunk == 0 {
			chunk = DefaultChunk
		}
		return &Int8{Chunk: chunk}, nil
	default:
		return None{}, nil
	}
}

// String renders the spec in ParseSpec syntax.
func (s Spec) String() string {
	switch s.Kind {
	case KindTopK:
		frac := s.TopKFrac
		if frac == 0 {
			frac = DefaultTopKFrac
		}
		return fmt.Sprintf("topk:%g", frac)
	case KindInt8:
		if s.Chunk != 0 {
			return fmt.Sprintf("int8:%d", s.Chunk)
		}
		return "int8"
	default:
		return "none"
	}
}

// ParseSpec parses the flag syntax "kind[:param]": "none" (or ""),
// "topk[:frac]", "int8[:chunk]".
func ParseSpec(s string) (Spec, error) {
	name, param, hasParam := strings.Cut(s, ":")
	var spec Spec
	switch name {
	case "", "none":
		spec.Kind = KindNone
	case "topk":
		spec.Kind = KindTopK
	case "int8":
		spec.Kind = KindInt8
	default:
		return Spec{}, fmt.Errorf("compress: unknown codec %q (valid: %v)", name, KindNames())
	}
	if hasParam {
		switch spec.Kind {
		case KindTopK:
			frac, err := strconv.ParseFloat(param, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("compress: topk fraction %q: %w", param, err)
			}
			spec.TopKFrac = frac
		case KindInt8:
			chunk, err := strconv.Atoi(param)
			if err != nil {
				return Spec{}, fmt.Errorf("compress: int8 chunk %q: %w", param, err)
			}
			spec.Chunk = chunk
		default:
			return Spec{}, fmt.Errorf("compress: codec %q takes no parameter", name)
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// Payload is one encoded upload. Which fields are populated depends on
// Form; the backing arrays are owned by the payload and reused across
// encodes (the FL engine keeps one payload per delta-ring buffer), so a
// decoded view is only valid until the next Encode into the same payload.
type Payload struct {
	// Form is the codec family that produced the payload.
	Form Kind
	// N is the original (dense) vector length.
	N int
	// Idx and Val are the KindTopK coordinate list, in ascending index
	// order. Idx is also read by KindNone decodes (empty).
	Idx []int32
	Val []float64
	// Q and Scale are the KindInt8 quantized bytes and per-chunk scales;
	// ChunkLen is the quantization chunk length.
	Q        []int8
	Scale    []float64
	ChunkLen int
}

// Bytes returns the payload's size on the wire: 4-byte indices + 8-byte
// values for sparse form, 1-byte quanta + 8-byte chunk scales for int8,
// 8 bytes per coordinate for dense transport.
func (p *Payload) Bytes() int {
	switch p.Form {
	case KindTopK:
		return 4*len(p.Idx) + 8*len(p.Val)
	case KindInt8:
		return len(p.Q) + 8*len(p.Scale)
	default:
		return 8 * p.N
	}
}

// Sparse reports whether the payload is in sparse (index, value) form,
// which aggregation kernels can consume directly (vecmath.ScatterAXPY /
// GatherDot) in O(k) instead of O(d).
func (p *Payload) Sparse() bool { return p.Form == KindTopK }

// Codec encodes dense float64 update vectors into compact payloads.
// Implementations are stateless; Encode and Decode may run concurrently
// on distinct payloads.
type Codec interface {
	// Name identifies the codec in reports.
	Name() string
	// Grow preallocates p's backing arrays to the worst-case capacity
	// for d-length vectors, so subsequent encodes allocate nothing.
	Grow(p *Payload, d int)
	// Encode writes the encoded form of x into p, reusing p's backing
	// arrays. r drives any stochastic rounding (may be nil for
	// deterministic codecs); scratch must have len(x) capacity for
	// codecs that need selection workspace (may be nil otherwise).
	// Encode never panics on non-finite inputs.
	Encode(p *Payload, x []float64, r *rng.RNG, scratch []float64)
	// Decode overwrites dst (length p.N) with the decoded vector. The
	// decode of a finite input's encode is always finite.
	Decode(dst []float64, p *Payload)
}

// None is the identity codec: dense transport, zero loss. Its payload
// stores the full vector, so Bytes reports the uncompressed cost.
type None struct{}

// Name implements Codec.
func (None) Name() string { return "none" }

// Grow implements Codec.
func (None) Grow(p *Payload, d int) {
	if cap(p.Val) < d {
		p.Val = make([]float64, 0, d)
	}
}

// Encode implements Codec by copying x.
func (n None) Encode(p *Payload, x []float64, _ *rng.RNG, _ []float64) {
	n.Grow(p, len(x))
	p.Form, p.N = KindNone, len(x)
	p.Idx = p.Idx[:0]
	p.Val = p.Val[:len(x)]
	copy(p.Val, x)
}

// Decode implements Codec.
func (None) Decode(dst []float64, p *Payload) { copy(dst, p.Val) }

// EncodeEF performs one error-feedback compression step over the update
// x: the carried residual e (the mass previous encodes dropped) is folded
// in, x+e is encoded into p, e is replaced with the fresh residual
// (x+e) − decode(p), and x itself is overwritten with the decoded,
// server-visible update — so cumulative decoded mass tracks cumulative
// true mass to within one residual (‖Σ dec − Σ Δ‖ = ‖e_T‖, which stays
// bounded for contractive codecs instead of growing with T).
//
// A non-finite update coordinate (a diverging or attacked client) would
// poison the residual forever — e.g. int8 transmits a non-finite chunk
// as zeros, so e would absorb the Inf and re-inject it every round,
// silencing the client's affected coordinates for the rest of the run.
// Residual coordinates that come out non-finite are therefore reset to
// zero: the unrecoverable mass is dropped and the client's feedback
// recovers as soon as its uploads are finite again.
//
// e == nil disables the feedback (plain lossy compression). scratch must
// be a distinct buffer with at least len(x) capacity; it doubles as the
// codec's selection workspace and the decode target, and holds the
// decoded update on return.
func EncodeEF(c Codec, p *Payload, x, e []float64, r *rng.RNG, scratch []float64) {
	if e != nil {
		vecmath.Add(x, x, e)
	}
	c.Encode(p, x, r, scratch)
	dec := scratch[:len(x)]
	c.Decode(dec, p)
	if e != nil {
		vecmath.Sub(e, x, dec)
		for i, v := range e {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				e[i] = 0
			}
		}
	}
	copy(x, dec)
}

// EncodeEF32 is EncodeEF with a float32 residual, for runs whose client
// compute state is float32 (fl's DType "f32"): the residual carries
// client-local dropped mass — the same precision class as the client's
// training state — while the fold/encode/decode arithmetic stays float64
// on the already-widened update x, so the wire payload and the
// server-visible decoded update remain exactly what the codec computes.
// e32 must be non-nil and len(x) long; non-finite residual coordinates
// reset to zero exactly as in EncodeEF, and the narrowing to fp32 happens
// after that guard so an Inf produced by the subtraction itself is also
// caught.
func EncodeEF32(c Codec, p *Payload, x []float64, e32 []float32, r *rng.RNG, scratch []float64) {
	for i, v := range e32 {
		x[i] += float64(v)
	}
	c.Encode(p, x, r, scratch)
	dec := scratch[:len(x)]
	c.Decode(dec, p)
	for i := range e32 {
		v := x[i] - dec[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		e32[i] = float32(v)
	}
	copy(x, dec)
}
