package compress

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Int8 is QSGD-style stochastic quantization: each chunk of Chunk
// coordinates is scaled by its own maxAbs/127 and every coordinate is
// stochastically rounded to a signed byte, so the quantization is
// unbiased (E[decode] = x) and the error per coordinate is at most one
// scale step. The roundings draw from the caller's stream — in the FL
// engine each client owns one — which makes encodes bit-reproducible at
// any parallelism level.
type Int8 struct {
	// Chunk is the per-scale chunk length (DefaultChunk when built via
	// Spec.Codec).
	Chunk int
}

// Name implements Codec.
func (c *Int8) Name() string { return fmt.Sprintf("int8:%d", c.Chunk) }

// Grow implements Codec.
func (c *Int8) Grow(p *Payload, d int) {
	if cap(p.Q) < d {
		p.Q = make([]int8, 0, d)
	}
	chunks := (d + c.Chunk - 1) / c.Chunk
	if cap(p.Scale) < chunks {
		p.Scale = make([]float64, 0, chunks)
	}
}

// Encode implements Codec. A chunk whose magnitude is zero or non-finite
// is transmitted as zeros (scale 0) and consumes no stream draws; the
// per-client draw count therefore depends only on the client's own data,
// never on scheduling.
func (c *Int8) Encode(p *Payload, x []float64, r *rng.RNG, _ []float64) {
	d := len(x)
	c.Grow(p, d)
	p.Form, p.N, p.ChunkLen = KindInt8, d, c.Chunk
	p.Idx, p.Val = p.Idx[:0], p.Val[:0]
	q := p.Q[:d]
	sc := p.Scale[:0]
	for base := 0; base < d; base += c.Chunk {
		end := min(base+c.Chunk, d)
		var m float64
		for _, v := range x[base:end] {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		if m == 0 || math.IsInf(m, 0) || math.IsNaN(m) {
			sc = append(sc, 0)
			for i := base; i < end; i++ {
				q[i] = 0
			}
			continue
		}
		scale := m / 127
		sc = append(sc, scale)
		inv := 1 / scale
		for i := base; i < end; i++ {
			q[i] = quantize(x[i]*inv, r)
		}
	}
	p.Q, p.Scale = q, sc
}

// quantize stochastically rounds v (nominally in [−127, 127]) to a
// signed byte: floor plus a Bernoulli(frac) increment. Non-finite v —
// possible when the chunk holds a NaN that escaped the maxAbs scan —
// quantizes to 0.
func quantize(v float64, r *rng.RNG) int8 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	f := math.Floor(v)
	qi := f
	if r.Float64() < v-f {
		qi++
	}
	if qi > 127 {
		qi = 127
	} else if qi < -127 {
		qi = -127
	}
	return int8(qi)
}

// Decode implements Codec.
func (c *Int8) Decode(dst []float64, p *Payload) {
	chunk := p.ChunkLen
	for ci, scale := range p.Scale {
		base := ci * chunk
		end := min(base+chunk, p.N)
		for i := base; i < end; i++ {
			dst[i] = scale * float64(p.Q[i])
		}
	}
}
