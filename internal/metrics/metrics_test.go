package metrics

import (
	"math"
	"testing"
)

func sampleRun() *Run {
	r := &Run{Algorithm: "X", Dataset: "d"}
	accs := []float64{0.2, 0.5, 0.7, 0.65, 0.8}
	for i, a := range accs {
		r.Append(Round{
			Index:              i,
			Accuracy:           a,
			SlowestModeledSec:  1.0,
			SlowestMeasuredSec: 0.5,
		})
	}
	return r
}

func TestAppendAccumulatesTime(t *testing.T) {
	r := sampleRun()
	last := r.Rounds[len(r.Rounds)-1]
	if last.CumModeledSec != 5 {
		t.Fatalf("CumModeledSec = %v, want 5", last.CumModeledSec)
	}
	if last.CumMeasuredSec != 2.5 {
		t.Fatalf("CumMeasuredSec = %v, want 2.5", last.CumMeasuredSec)
	}
}

func TestFinalAndBestAccuracy(t *testing.T) {
	r := sampleRun()
	if r.FinalAccuracy() != 0.8 {
		t.Fatalf("FinalAccuracy = %v", r.FinalAccuracy())
	}
	if r.BestAccuracy() != 0.8 {
		t.Fatalf("BestAccuracy = %v", r.BestAccuracy())
	}
	empty := &Run{}
	if empty.FinalAccuracy() != 0 || empty.BestAccuracy() != 0 {
		t.Fatal("empty run accuracies must be 0")
	}
}

func TestRoundsToAccuracy(t *testing.T) {
	r := sampleRun()
	rounds, ok := r.RoundsToAccuracy(0.7)
	if !ok || rounds != 3 {
		t.Fatalf("RoundsToAccuracy(0.7) = %d,%v want 3,true", rounds, ok)
	}
	if _, ok := r.RoundsToAccuracy(0.95); ok {
		t.Fatal("unreachable target must report false")
	}
}

func TestTimeToAccuracy(t *testing.T) {
	r := sampleRun()
	sec, ok := r.ModeledTimeToAccuracy(0.7)
	if !ok || sec != 3 {
		t.Fatalf("ModeledTimeToAccuracy = %v,%v want 3,true", sec, ok)
	}
	if sec, ok := r.ModeledTimeToAccuracy(0.99); ok || !math.IsInf(sec, 1) {
		t.Fatal("unreachable target must be +Inf,false")
	}
	msec, ok := r.MeasuredTimeToAccuracy(0.7)
	if !ok || msec != 1.5 {
		t.Fatalf("MeasuredTimeToAccuracy = %v, want 1.5", msec)
	}
}

func TestMedians(t *testing.T) {
	r := &Run{}
	for i, v := range []float64{3, 1, 2} {
		r.Append(Round{Index: i, SlowestModeledSec: v, SlowestMeasuredSec: v * 2})
	}
	if got := r.MedianSlowestModeledSec(); got != 2 {
		t.Fatalf("median modeled = %v, want 2", got)
	}
	if got := r.MedianSlowestMeasuredSec(); got != 4 {
		t.Fatalf("median measured = %v, want 4", got)
	}
	even := &Run{}
	for i, v := range []float64{4, 1, 3, 2} {
		even.Append(Round{Index: i, SlowestModeledSec: v})
	}
	if got := even.MedianSlowestModeledSec(); got != 2.5 {
		t.Fatalf("even median = %v, want 2.5", got)
	}
	if (&Run{}).MedianSlowestModeledSec() != 0 {
		t.Fatal("empty median must be 0")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Fatalf("mean = %v, want 5", mean)
	}
	if math.Abs(std-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStd must be 0,0")
	}
}

func TestSchedulerColumns(t *testing.T) {
	r := &Run{}
	r.Append(Round{Index: 0, DroppedClients: 2, MeanStaleness: 0, MaxStaleness: 0})
	r.Append(Round{Index: 1, DroppedClients: 1, MeanStaleness: 1.5, MaxStaleness: 3})
	r.Append(Round{Index: 2, DroppedClients: 0, MeanStaleness: 0.5, MaxStaleness: 1})
	if got := r.TotalDropped(); got != 3 {
		t.Fatalf("TotalDropped = %d, want 3", got)
	}
	if got := r.MeanStaleness(); got != (0+1.5+0.5)/3 {
		t.Fatalf("MeanStaleness = %v", got)
	}
	if got := r.PeakStaleness(); got != 3 {
		t.Fatalf("PeakStaleness = %d, want 3", got)
	}
}

func TestSchedulerColumnsEmptyRun(t *testing.T) {
	r := &Run{}
	if r.TotalDropped() != 0 || r.MeanStaleness() != 0 || r.PeakStaleness() != 0 {
		t.Fatal("empty run must report zero scheduler metrics")
	}
}

func TestMeanCorruptWeight(t *testing.T) {
	r := &Run{}
	// Rounds without a recorded weight split are excluded from the mean.
	r.Append(Round{Index: 0})
	r.Append(Round{Index: 1, HonestWeight: 0.7, CorruptWeight: 0.3})
	r.Append(Round{Index: 2, HonestWeight: 0.9, CorruptWeight: 0.1})
	if got := r.MeanCorruptWeight(); got < 0.1999 || got > 0.2001 {
		t.Fatalf("MeanCorruptWeight = %v, want 0.2", got)
	}
	if got := (&Run{}).MeanCorruptWeight(); got != 0 {
		t.Fatalf("empty run MeanCorruptWeight = %v", got)
	}
	clean := &Run{}
	clean.Append(Round{Index: 0})
	if got := clean.MeanCorruptWeight(); got != 0 {
		t.Fatalf("adversary-free run MeanCorruptWeight = %v", got)
	}
}

func TestEvalDetection(t *testing.T) {
	truth := []bool{true, true, false, false, true}
	flagged := []bool{true, false, true, false, true}
	d := EvalDetection(flagged, truth)
	if d.TP != 2 || d.FP != 1 || d.FN != 1 || d.TN != 1 {
		t.Fatalf("detection counts = %+v", d)
	}
	if p := d.Precision(); p < 0.666 || p > 0.667 {
		t.Fatalf("precision = %v, want 2/3", p)
	}
	if r := d.Recall(); r < 0.666 || r > 0.667 {
		t.Fatalf("recall = %v, want 2/3", r)
	}
	// Conventions: no flags raised -> precision 1; nothing to find ->
	// recall 1.
	none := EvalDetection([]bool{false, false}, []bool{true, false})
	if none.Precision() != 1 {
		t.Fatalf("no-flag precision = %v, want 1", none.Precision())
	}
	if none.Recall() != 0 {
		t.Fatalf("missed-all recall = %v, want 0", none.Recall())
	}
	empty := EvalDetection([]bool{false}, []bool{false})
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Fatalf("clean detection = P %v R %v, want 1/1", empty.Precision(), empty.Recall())
	}
}

func TestUplinkRollups(t *testing.T) {
	var r Run
	if r.TotalUplinkBytes() != 0 || r.MeanCompressionRatio() != 0 {
		t.Fatal("empty run must report zero uplink rollups")
	}
	r.Append(Round{Index: 0, UplinkBytes: 1000, CompressionRatio: 8})
	r.Append(Round{Index: 1, UplinkBytes: 500, CompressionRatio: 4})
	// A round that aggregated nothing contributes no ratio sample.
	r.Append(Round{Index: 2})
	if got := r.TotalUplinkBytes(); got != 1500 {
		t.Fatalf("TotalUplinkBytes = %d, want 1500", got)
	}
	if got := r.MeanCompressionRatio(); got != 6 {
		t.Fatalf("MeanCompressionRatio = %v, want 6", got)
	}
}

func TestFailoverRollups(t *testing.T) {
	var r Run
	if r.TotalReassignedDispatches() != 0 || r.TotalWorkerReconnects() != 0 {
		t.Fatal("empty run must report zero failover rollups")
	}
	r.Append(Round{Index: 0})
	r.Append(Round{Index: 1, ReassignedDispatches: 4, WorkerReconnects: 1})
	r.Append(Round{Index: 2, ReassignedDispatches: 2})
	if got := r.TotalReassignedDispatches(); got != 6 {
		t.Fatalf("TotalReassignedDispatches = %d, want 6", got)
	}
	if got := r.TotalWorkerReconnects(); got != 1 {
		t.Fatalf("TotalWorkerReconnects = %d, want 1", got)
	}
}
