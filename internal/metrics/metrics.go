// Package metrics records per-round federated-learning results and derives
// the paper's two efficiency measures: round-to-accuracy (rounds needed to
// reach a target test accuracy) and time-to-accuracy (cumulative client
// computation time needed to reach it).
package metrics

import "math"

// Round is one communication round's outcome.
type Round struct {
	Index int
	// Accuracy is the global model's test accuracy after this round.
	Accuracy float64
	// TrainLoss is the mean local training loss reported by clients.
	TrainLoss float64
	// SlowestModeledSec is the modeled computation time of the slowest
	// client this round (the paper records the slowest client per round).
	SlowestModeledSec float64
	// SlowestMeasuredSec is the real measured Go time of the slowest client.
	SlowestMeasuredSec float64
	// CumModeledSec and CumMeasuredSec accumulate the slowest-client times
	// across rounds, matching Fig. 4's cumulative cost curves.
	CumModeledSec  float64
	CumMeasuredSec float64
	// MeanAlpha is the mean TACO correction coefficient this round
	// (0 for algorithms without one).
	MeanAlpha float64
	// MeanStaleness and MaxStaleness describe the staleness (in server
	// versions) of the updates aggregated this round; both are 0 under
	// the synchronous and deadline policies.
	MeanStaleness float64
	MaxStaleness  int
	// DroppedClients counts participants dropped past the round deadline
	// (deadline policy only; 0 otherwise).
	DroppedClients int
	// Retries counts fault-triggered re-dispatches this round: timed-out
	// dispatches (crash, uplink loss, or a latency spike past the timeout
	// budget) that the server retried. 0 in fault-free runs.
	Retries int
	// DroppedUpdates counts dispatches whose retry budget was exhausted —
	// the client's update never reached this round's aggregate.
	DroppedUpdates int
	// DupUpdates counts updates the uplink delivered twice; the server
	// deduplicates them (charging the duplicate bytes to UplinkBytes) so
	// each contributes once to the aggregate.
	DupUpdates int
	// Degraded marks a round committed below the configured quorum of
	// delivered updates (including rounds that lost every update and
	// left the model unchanged). Never silent: the count rolls up via
	// Run.DegradedRounds.
	Degraded bool
	// ZeroedUpdates and ClippedUpdates count what the robust-aggregation
	// stack did this round: updates dropped for exceeding the zeroing
	// bound, and updates rescaled onto the clip ball. Both are 0 without
	// a stack.
	ZeroedUpdates  int
	ClippedUpdates int
	// ClipNorm is the clip bound the stack applied this round (the
	// adaptive quantile-matched estimate, or the fixed bound); 0 when no
	// clip stage ran.
	ClipNorm float64
	// HonestWeight and CorruptWeight split the aggregation-weight mass
	// the server granted this round between honest and adversarial
	// clients (they sum to ~1 when the aggregation rule reports weights;
	// both are 0 in adversary-free runs). A defense is working when
	// CorruptWeight stays below the corrupt clients' head-count share.
	HonestWeight  float64
	CorruptWeight float64
	// UplinkBytes is the round's total client→server traffic: the
	// encoded payload sizes under a compression codec, 8d per update for
	// dense transport.
	UplinkBytes int64
	// CompressionRatio is the round's dense-over-encoded byte ratio
	// (1 for dense transport, 0 when no updates were aggregated).
	CompressionRatio float64
	// ReassignedDispatches counts in-flight dispatches re-sent after a
	// worker connection was lost this round — to a surviving worker that
	// adopted the dead worker's clients, or to the same worker after it
	// reconnected. 0 for in-process runs and failure-free wire rounds.
	ReassignedDispatches int
	// WorkerReconnects counts worker connections re-admitted this round
	// after a connection loss (the Hello resume token matched a known
	// worker index and its state was rebuilt by history replay).
	WorkerReconnects int
}

// Run is the full history of one FL training run.
type Run struct {
	Algorithm string
	Dataset   string
	Rounds    []Round
	// Diverged records a convergence failure (non-finite parameters),
	// the paper's "×" entries.
	Diverged      bool
	DivergedRound int
	// HaltRound and HaltReason surface why a run stopped before its
	// configured round budget (for example "diverged: non-finite
	// parameters" when no checkpoint was available to roll back to).
	// HaltReason is empty for runs that completed normally.
	HaltRound  int
	HaltReason string
	// RecoveredRounds counts rounds replayed after a simulated server
	// crash restored the last checkpoint; the replay is bit-identical,
	// so only time (and this counter) distinguishes a recovered run.
	RecoveredRounds int
	// Rollbacks counts divergence recoveries: rounds where non-finite
	// parameters were rolled back to the last checkpoint instead of
	// halting the run.
	Rollbacks int
}

// Append adds a round record, maintaining cumulative times.
func (r *Run) Append(rec Round) {
	if n := len(r.Rounds); n > 0 {
		rec.CumModeledSec = r.Rounds[n-1].CumModeledSec + rec.SlowestModeledSec
		rec.CumMeasuredSec = r.Rounds[n-1].CumMeasuredSec + rec.SlowestMeasuredSec
	} else {
		rec.CumModeledSec = rec.SlowestModeledSec
		rec.CumMeasuredSec = rec.SlowestMeasuredSec
	}
	r.Rounds = append(r.Rounds, rec)
}

// FinalAccuracy returns the last recorded test accuracy (0 when empty).
func (r *Run) FinalAccuracy() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	return r.Rounds[len(r.Rounds)-1].Accuracy
}

// BestAccuracy returns the highest test accuracy seen during the run.
func (r *Run) BestAccuracy() float64 {
	best := 0.0
	for _, rec := range r.Rounds {
		if rec.Accuracy > best {
			best = rec.Accuracy
		}
	}
	return best
}

// RoundsToAccuracy returns the 1-based round at which the run first reached
// the target accuracy, and whether it ever did.
func (r *Run) RoundsToAccuracy(target float64) (int, bool) {
	for _, rec := range r.Rounds {
		if rec.Accuracy >= target {
			return rec.Index + 1, true
		}
	}
	return 0, false
}

// ModeledTimeToAccuracy returns the cumulative modeled client time at which
// the run first reached the target accuracy.
func (r *Run) ModeledTimeToAccuracy(target float64) (float64, bool) {
	for _, rec := range r.Rounds {
		if rec.Accuracy >= target {
			return rec.CumModeledSec, true
		}
	}
	return math.Inf(1), false
}

// MeasuredTimeToAccuracy is ModeledTimeToAccuracy for real measured time.
func (r *Run) MeasuredTimeToAccuracy(target float64) (float64, bool) {
	for _, rec := range r.Rounds {
		if rec.Accuracy >= target {
			return rec.CumMeasuredSec, true
		}
	}
	return math.Inf(1), false
}

// TotalDropped sums the deadline-dropped participants across all rounds.
func (r *Run) TotalDropped() int {
	total := 0
	for _, rec := range r.Rounds {
		total += rec.DroppedClients
	}
	return total
}

// TotalRetries sums the fault-triggered re-dispatches across all rounds.
func (r *Run) TotalRetries() int {
	total := 0
	for _, rec := range r.Rounds {
		total += rec.Retries
	}
	return total
}

// TotalReassignedDispatches sums the in-flight dispatches re-sent after
// worker connection losses across all rounds.
func (r *Run) TotalReassignedDispatches() int {
	total := 0
	for _, rec := range r.Rounds {
		total += rec.ReassignedDispatches
	}
	return total
}

// TotalWorkerReconnects sums the worker re-admissions across all rounds.
func (r *Run) TotalWorkerReconnects() int {
	total := 0
	for _, rec := range r.Rounds {
		total += rec.WorkerReconnects
	}
	return total
}

// TotalDroppedUpdates sums the updates lost to exhausted retry budgets.
func (r *Run) TotalDroppedUpdates() int {
	total := 0
	for _, rec := range r.Rounds {
		total += rec.DroppedUpdates
	}
	return total
}

// TotalDupUpdates sums the duplicate deliveries the server deduplicated.
func (r *Run) TotalDupUpdates() int {
	total := 0
	for _, rec := range r.Rounds {
		total += rec.DupUpdates
	}
	return total
}

// TotalZeroedUpdates sums the updates the aggregation stack dropped for
// exceeding the zeroing bound.
func (r *Run) TotalZeroedUpdates() int {
	total := 0
	for _, rec := range r.Rounds {
		total += rec.ZeroedUpdates
	}
	return total
}

// TotalClippedUpdates sums the updates the aggregation stack rescaled
// onto the clip ball.
func (r *Run) TotalClippedUpdates() int {
	total := 0
	for _, rec := range r.Rounds {
		total += rec.ClippedUpdates
	}
	return total
}

// DegradedRounds counts rounds committed below the delivery quorum.
func (r *Run) DegradedRounds() int {
	total := 0
	for _, rec := range r.Rounds {
		if rec.Degraded {
			total++
		}
	}
	return total
}

// MeanStaleness averages the per-round mean update staleness (0 when the
// run recorded no rounds or ran a policy without staleness).
func (r *Run) MeanStaleness() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	var sum float64
	for _, rec := range r.Rounds {
		sum += rec.MeanStaleness
	}
	return sum / float64(len(r.Rounds))
}

// PeakStaleness returns the largest per-update staleness seen in any round.
func (r *Run) PeakStaleness() int {
	peak := 0
	for _, rec := range r.Rounds {
		if rec.MaxStaleness > peak {
			peak = rec.MaxStaleness
		}
	}
	return peak
}

// TotalUplinkBytes sums the per-round client→server traffic — the "bytes
// on wire" a codec is judged by.
func (r *Run) TotalUplinkBytes() int64 {
	var total int64
	for _, rec := range r.Rounds {
		total += rec.UplinkBytes
	}
	return total
}

// MeanCompressionRatio averages the per-round compression ratios over
// the rounds that aggregated anything (0 when none did).
func (r *Run) MeanCompressionRatio() float64 {
	var sum float64
	n := 0
	for _, rec := range r.Rounds {
		if rec.CompressionRatio == 0 {
			continue
		}
		sum += rec.CompressionRatio
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanCorruptWeight averages the corrupt aggregation-weight mass over the
// rounds that recorded a weight split (0 when none did — adversary-free
// runs or rules that report no weights).
func (r *Run) MeanCorruptWeight() float64 {
	var sum float64
	n := 0
	for _, rec := range r.Rounds {
		if rec.HonestWeight == 0 && rec.CorruptWeight == 0 {
			continue
		}
		sum += rec.CorruptWeight
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Detection scores a defense's corrupt-client identification — TACO's
// κ-threshold expulsion (Eq. 10) or weight-suppression flagging for
// similarity defenses — against the ground-truth corrupt set.
type Detection struct {
	TP, FP, FN, TN int
}

// EvalDetection compares a flagged set against the ground truth (both
// indexed by client). The slices must have equal length.
func EvalDetection(flagged, truth []bool) Detection {
	var d Detection
	for i, f := range flagged {
		switch {
		case f && truth[i]:
			d.TP++
		case f && !truth[i]:
			d.FP++
		case !f && truth[i]:
			d.FN++
		default:
			d.TN++
		}
	}
	return d
}

// Precision returns TP/(TP+FP); by convention 1 when nothing was flagged
// (no false alarms were raised).
func (d Detection) Precision() float64 {
	if d.TP+d.FP == 0 {
		return 1
	}
	return float64(d.TP) / float64(d.TP+d.FP)
}

// Recall returns TP/(TP+FN); by convention 1 when there was nothing to
// detect.
func (d Detection) Recall() float64 {
	if d.TP+d.FN == 0 {
		return 1
	}
	return float64(d.TP) / float64(d.TP+d.FN)
}

// MedianSlowestModeledSec returns the median per-round modeled time of the
// slowest client, the statistic shown by the paper's Fig. 5 box plots.
func (r *Run) MedianSlowestModeledSec() float64 {
	return median(r.collect(func(rec Round) float64 { return rec.SlowestModeledSec }))
}

// MedianSlowestMeasuredSec is the measured-time analogue.
func (r *Run) MedianSlowestMeasuredSec() float64 {
	return median(r.collect(func(rec Round) float64 { return rec.SlowestMeasuredSec }))
}

func (r *Run) collect(f func(Round) float64) []float64 {
	out := make([]float64, len(r.Rounds))
	for i, rec := range r.Rounds {
		out[i] = f(rec)
	}
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	// Insertion sort: round counts are small.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// MeanStd returns the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		d := v - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}
