// Package core implements TACO (Algorithm 2 of the paper): tailored
// adaptive correction coefficients α_i^t (Eq. 7), the corrected local
// update (Eq. 8), α-weighted aggregation (Eq. 9), freeloader detection
// (Eq. 10), and the momentum-style final output z_t (Eq. 15). It also
// provides the TACO-enhanced hybrids FedProx(TACO) and Scaffold(TACO)
// evaluated in the paper's Fig. 6.
package core

import (
	"math"

	"repro/internal/fl"
	"repro/internal/vecmath"
)

// ComputeAlphas evaluates Eq. (7) for one round's uploaded deltas:
//
//	α_i = (1 − ‖∆_i‖/Σ_j‖∆_j‖) · max(cos(∆_i, ∆̄), 0)
//
// where ∆̄ is the unweighted mean of the deltas. mean and out must have
// the right sizes (len(deltas[0]) and len(deltas)); mean is overwritten.
//
// The two factors implement the geometry of the paper's Fig. 3: clients
// whose update disagrees in direction with the crowd (small cosine) or is
// disproportionately large in magnitude get a small α — and therefore a
// large correction factor 1−α in Eq. (8).
func ComputeAlphas(deltas [][]float64, mean []float64, out []float64) {
	computeAlphas(deltas, mean, make([]float64, len(deltas)), out)
}

// computeAlphas is ComputeAlphas with a caller-provided norms scratch
// (len(deltas)), so per-round coefficient updates allocate nothing.
func computeAlphas(deltas [][]float64, mean, norms, out []float64) {
	n := len(deltas)
	if n == 0 {
		return
	}
	vecmath.Zero(mean)
	var normSum float64
	for i, d := range deltas {
		vecmath.AXPY(1/float64(n), d, mean)
		norms[i] = vecmath.Norm2Safe(d)
		normSum += norms[i]
	}
	for i, d := range deltas {
		if normSum == 0 || math.IsInf(normSum, 0) || math.IsNaN(normSum) {
			// Degenerate uploads (all zero, or magnitudes beyond float64
			// range) carry no usable geometry.
			out[i] = 0
			continue
		}
		cosine := vecmath.CosineSimilarity(d, mean)
		if cosine < 0 {
			cosine = 0
		}
		out[i] = (1 - norms[i]/normSum) * cosine
	}
}

// computeAlphasUpdates is computeAlphas over the round's updates, routed
// through the payload-aware views: a sparse (top-k) upload contributes
// its mean mass via an O(k) scatter, its norm over the k kept values
// (the dropped coordinates are exact zeros), and its Eq. (7) inner
// product via an O(k) gather against the mean — whose own rescaled norm
// is computed once, not per update. Dense uploads take the exact code
// path of computeAlphas, bit-identically.
func computeAlphasUpdates(updates []fl.Update, mean, norms, out []float64) {
	n := len(updates)
	if n == 0 {
		return
	}
	vecmath.Zero(mean)
	var normSum float64
	for i := range updates {
		updates[i].AddScaled(1/float64(n), mean)
		norms[i] = updates[i].Norm()
		normSum += norms[i]
	}
	meanMax := vecmath.MaxAbs(mean)
	var meanNorm float64
	if meanMax != 0 && !math.IsInf(meanMax, 0) {
		meanNorm = vecmath.Norm2Safe(mean) / meanMax
	}
	for i := range updates {
		if normSum == 0 || math.IsInf(normSum, 0) || math.IsNaN(normSum) {
			out[i] = 0
			continue
		}
		var cosine float64
		if meanMax != 0 {
			cosine = updates[i].CosineWithNorm(mean, meanMax, meanNorm)
		}
		if cosine < 0 {
			cosine = 0
		}
		out[i] = (1 - norms[i]/normSum) * cosine
	}
}

// AlphaTracker maintains per-client correction coefficients across rounds
// for TACO and the TACO-enhanced hybrids. Coefficients for clients that do
// not participate in a round (expelled) keep their last value.
type AlphaTracker struct {
	alphas  []float64
	history [][]float64
	mean    []float64
	scratch []float64
	norms   []float64 // reusable computeAlphas scratch
}

// NewAlphaTracker creates a tracker for n clients of a numParams-sized
// model, starting every coefficient at initial (Algorithm 2 uses 0.1).
func NewAlphaTracker(n, numParams int, initial float64) *AlphaTracker {
	t := &AlphaTracker{
		alphas:  make([]float64, n),
		mean:    make([]float64, numParams),
		scratch: make([]float64, n),
	}
	for i := range t.alphas {
		t.alphas[i] = initial
	}
	return t
}

// Update recomputes coefficients from the round's updates (Algorithm 2
// line 9) and appends a snapshot to the history. Smoothing ∈ [0,1) blends
// the fresh estimate with the previous round's value: α ← s·α_old +
// (1−s)·α_new. 0 reproduces the paper's memoryless rule.
func (t *AlphaTracker) Update(updates []fl.Update, smoothing float64) {
	if cap(t.norms) < len(updates) {
		t.norms = make([]float64, len(updates))
	}
	// scratch is seeded to the client count but tracks the update count:
	// under buffered asynchrony one client can contribute several updates
	// to a single server step.
	if cap(t.scratch) < len(updates) {
		t.scratch = make([]float64, len(updates))
	}
	out := t.scratch[:len(updates)]
	computeAlphasUpdates(updates, t.mean, t.norms[:len(updates)], out)
	for i, u := range updates {
		t.alphas[u.Client] = smoothing*t.alphas[u.Client] + (1-smoothing)*out[i]
	}
	t.history = append(t.history, vecmath.Clone(t.alphas))
}

// Alpha returns client i's current coefficient α_i^t.
func (t *AlphaTracker) Alpha(i int) float64 { return t.alphas[i] }

// MeanOver returns the mean coefficient over the given updates' clients —
// Eq. (14)'s α_t restricted to participants.
func (t *AlphaTracker) MeanOver(updates []fl.Update) float64 {
	if len(updates) == 0 {
		return 0
	}
	var sum float64
	for _, u := range updates {
		sum += t.alphas[u.Client]
	}
	return sum / float64(len(updates))
}

// History returns per-round snapshots of all coefficients (row t holds
// every client's α after round t). The caller must not mutate the rows.
func (t *AlphaTracker) History() [][]float64 { return t.history }
