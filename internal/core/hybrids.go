package core

import (
	"repro/internal/fl"
	"repro/internal/simclock"
	"repro/internal/vecmath"
)

// The paper's Fig. 6 shows that prior methods improve when their uniform
// correction coefficients are replaced by TACO's tailored α_i^t. These
// hybrids implement that integration: the original method's correction
// structure with a per-client coefficient (1−α_i^t) in place of the
// uniform ζ (FedProx) or α (Scaffold).

// FedProxTACO is FedProx with a tailored proximal weight ζ_i = ζ(1−α_i^t).
type FedProxTACO struct {
	fl.Base
	// Zeta is the maximum proximal weight (the uniform FedProx ζ).
	Zeta float64

	tracker *AlphaTracker
	mean    float64
}

// NewFedProxTACO returns the FedProx(TACO) hybrid of Fig. 6a.
func NewFedProxTACO(zeta float64) *FedProxTACO { return &FedProxTACO{Zeta: zeta} }

var _ fl.Algorithm = (*FedProxTACO)(nil)

// Name implements fl.Algorithm.
func (a *FedProxTACO) Name() string { return "FedProx(TACO)" }

// Setup implements fl.Algorithm.
func (a *FedProxTACO) Setup(env *fl.Env) {
	a.tracker = NewAlphaTracker(env.NumClients, env.NumParams, 0.1)
	a.mean = 0.1
}

// GradAdjust adds the tailored proximal gradient ζ(1−α_i)(w_{i,k} − w^t).
func (a *FedProxTACO) GradAdjust(ctx *fl.StepCtx) {
	coeff := a.Zeta * (1 - a.tracker.Alpha(ctx.Client))
	for j, wj := range ctx.W {
		ctx.Grad[j] += coeff * (wj - ctx.W0[j])
	}
}

// Aggregate keeps FedProx's vanilla aggregation but refreshes the tailored
// coefficients from the round's deltas.
func (a *FedProxTACO) Aggregate(s *fl.ServerCtx, updates []fl.Update) {
	a.tracker.Update(updates, 0)
	a.mean = a.tracker.MeanOver(updates)
	fl.FedAvgStep(s, updates)
}

// MeanAlpha implements fl.Algorithm.
func (a *FedProxTACO) MeanAlpha() float64 { return a.mean }

// Costs implements fl.Algorithm: same in-loss proximal term as FedProx.
func (a *FedProxTACO) Costs() simclock.Costs {
	return simclock.Costs{GradEvalsPerStep: 1, AuxPerStep: simclock.CostProxTerm}
}

// ScaffoldTACO is Scaffold with a tailored control-variate coefficient
// (1−α_i^t) in place of the uniform α.
type ScaffoldTACO struct {
	fl.Base

	tracker *AlphaTracker
	mean    float64
	c       []float64
	ci      [][]float64 // per-client control variates, allocated lazily
	corr    [][]float64
	k       int
	lr      float64
	d       int
}

// NewScaffoldTACO returns the Scaffold(TACO) hybrid of Fig. 6b.
func NewScaffoldTACO() *ScaffoldTACO { return &ScaffoldTACO{} }

var _ fl.Algorithm = (*ScaffoldTACO)(nil)

// Name implements fl.Algorithm.
func (a *ScaffoldTACO) Name() string { return "Scaffold(TACO)" }

// Setup implements fl.Algorithm. Per-client state is allocated lazily on
// first participation, so a large fleet with partial participation pays
// O(d) only for clients that actually train.
func (a *ScaffoldTACO) Setup(env *fl.Env) {
	a.tracker = NewAlphaTracker(env.NumClients, env.NumParams, 0.1)
	a.mean = 0.1
	a.c = make([]float64, env.NumParams)
	a.ci = make([][]float64, env.NumClients)
	a.corr = make([][]float64, env.NumClients)
	a.k = env.Cfg.LocalSteps
	a.lr = env.Cfg.LocalLR
	a.d = env.NumParams
}

// BeginLocal freezes the tailored correction (1−α_i)(c − c_i), allocating
// the client's state on first participation.
func (a *ScaffoldTACO) BeginLocal(clientID, _ int, _ []float64) {
	if a.ci[clientID] == nil {
		a.ci[clientID] = make([]float64, a.d)
		a.corr[clientID] = make([]float64, a.d)
	}
	coeff := 1 - a.tracker.Alpha(clientID)
	corr := a.corr[clientID]
	ci := a.ci[clientID]
	for j := range corr {
		corr[j] = coeff * (a.c[j] - ci[j])
	}
}

// GradAdjust registers the frozen correction for the fused step.
func (a *ScaffoldTACO) GradAdjust(ctx *fl.StepCtx) {
	ctx.FuseCorrection(1, a.corr[ctx.Client])
}

// EndLocal refreshes c_i exactly as Scaffold does.
func (a *ScaffoldTACO) EndLocal(clientID, _ int, delta []float64) {
	ci := a.ci[clientID]
	inv := 1 / (float64(a.k) * a.lr)
	for j := range ci {
		ci[j] = ci[j] - a.c[j] + delta[j]*inv
	}
}

// Aggregate applies the FedAvg step, refreshes c, and recomputes the
// tailored coefficients.
func (a *ScaffoldTACO) Aggregate(s *fl.ServerCtx, updates []fl.Update) {
	a.tracker.Update(updates, 0)
	a.mean = a.tracker.MeanOver(updates)
	fl.FedAvgStep(s, updates)
	vecmath.Zero(a.c)
	for _, u := range updates {
		// Clients that never trained (freeloaders) have no control
		// variate yet; their contribution is the zero vector.
		if ci := a.ci[u.Client]; ci != nil {
			vecmath.AXPY(1/float64(len(updates)), ci, a.c)
		}
	}
}

// MeanAlpha implements fl.Algorithm.
func (a *ScaffoldTACO) MeanAlpha() float64 { return a.mean }

// Costs implements fl.Algorithm: Scaffold's per-step control-variate add.
func (a *ScaffoldTACO) Costs() simclock.Costs {
	return simclock.Costs{GradEvalsPerStep: 1, AuxPerStep: simclock.CostControlVariate}
}
