package core

import (
	"fmt"
	"io"

	"repro/internal/ckpt"
	"repro/internal/fl"
)

// Checkpoint hooks (DESIGN.md §8). TACO's cross-round state is the
// coefficient tracker (current α_i and the per-round history behind
// Table II), the broadcast correction ∆^t, the output model z_t, the
// freeloader strike counts, and the round-mean coefficient; the hybrids
// carry subsets plus Scaffold-style control variates.

var (
	_ fl.StatefulAlgorithm = (*TACO)(nil)
	_ fl.StatefulAlgorithm = (*FedProxTACO)(nil)
	_ fl.StatefulAlgorithm = (*ScaffoldTACO)(nil)
)

// SaveState serializes the tracker's coefficients and history.
func (t *AlphaTracker) SaveState(w io.Writer) error {
	if err := ckpt.WriteF64s(w, t.alphas); err != nil {
		return err
	}
	return ckpt.WriteF64Rows(w, t.history)
}

// LoadState restores state written by SaveState into a tracker created
// for the same fleet size.
func (t *AlphaTracker) LoadState(r io.Reader) error {
	if err := ckpt.ReadF64sInto(r, t.alphas); err != nil {
		return fmt.Errorf("alphas: %w", err)
	}
	hist, err := ckpt.ReadF64Rows(r)
	if err != nil {
		return fmt.Errorf("alpha history: %w", err)
	}
	for i, row := range hist {
		if len(row) != len(t.alphas) {
			return fmt.Errorf("alpha history row %d has %d entries for %d clients", i, len(row), len(t.alphas))
		}
	}
	t.history = hist
	return nil
}

// SaveState implements fl.StatefulAlgorithm.
func (a *TACO) SaveState(w io.Writer) error {
	if err := a.tracker.SaveState(w); err != nil {
		return err
	}
	if err := ckpt.WriteF64s(w, a.corr); err != nil {
		return err
	}
	if err := ckpt.WriteBool(w, a.z != nil); err != nil {
		return err
	}
	if a.z != nil {
		if err := ckpt.WriteF64s(w, a.z); err != nil {
			return err
		}
	}
	if err := ckpt.WriteInts(w, a.strikes); err != nil {
		return err
	}
	return ckpt.WriteF64(w, a.mean)
}

// LoadState implements fl.StatefulAlgorithm.
func (a *TACO) LoadState(r io.Reader) error {
	if err := a.tracker.LoadState(r); err != nil {
		return fmt.Errorf("taco tracker: %w", err)
	}
	if err := ckpt.ReadF64sInto(r, a.corr); err != nil {
		return fmt.Errorf("taco corr: %w", err)
	}
	hasZ, err := ckpt.ReadBool(r)
	if err != nil {
		return err
	}
	if hasZ {
		if a.z == nil {
			a.z = make([]float64, len(a.corr))
		}
		if err := ckpt.ReadF64sInto(r, a.z); err != nil {
			return fmt.Errorf("taco z: %w", err)
		}
	} else {
		a.z = nil
	}
	strikes, err := ckpt.ReadInts(r)
	if err != nil {
		return fmt.Errorf("taco strikes: %w", err)
	}
	if strikes != nil && len(strikes) != len(a.strikes) {
		return fmt.Errorf("taco: %d strike counts for %d clients", len(strikes), len(a.strikes))
	}
	for i := range a.strikes {
		if strikes == nil {
			a.strikes[i] = 0
		} else {
			a.strikes[i] = strikes[i]
		}
	}
	if a.mean, err = ckpt.ReadF64(r); err != nil {
		return fmt.Errorf("taco mean: %w", err)
	}
	return nil
}

// SaveState implements fl.StatefulAlgorithm.
func (a *FedProxTACO) SaveState(w io.Writer) error {
	if err := a.tracker.SaveState(w); err != nil {
		return err
	}
	return ckpt.WriteF64(w, a.mean)
}

// LoadState implements fl.StatefulAlgorithm.
func (a *FedProxTACO) LoadState(r io.Reader) error {
	if err := a.tracker.LoadState(r); err != nil {
		return fmt.Errorf("fedprox(taco) tracker: %w", err)
	}
	var err error
	if a.mean, err = ckpt.ReadF64(r); err != nil {
		return fmt.Errorf("fedprox(taco) mean: %w", err)
	}
	return nil
}

// SaveState implements fl.StatefulAlgorithm.
func (a *ScaffoldTACO) SaveState(w io.Writer) error {
	if err := a.tracker.SaveState(w); err != nil {
		return err
	}
	if err := ckpt.WriteF64(w, a.mean); err != nil {
		return err
	}
	if err := ckpt.WriteF64s(w, a.c); err != nil {
		return err
	}
	return ckpt.WriteF64Rows(w, a.ci)
}

// LoadState implements fl.StatefulAlgorithm.
func (a *ScaffoldTACO) LoadState(r io.Reader) error {
	if err := a.tracker.LoadState(r); err != nil {
		return fmt.Errorf("scaffold(taco) tracker: %w", err)
	}
	var err error
	if a.mean, err = ckpt.ReadF64(r); err != nil {
		return fmt.Errorf("scaffold(taco) mean: %w", err)
	}
	if err := ckpt.ReadF64sInto(r, a.c); err != nil {
		return fmt.Errorf("scaffold(taco) c: %w", err)
	}
	rows, err := ckpt.ReadF64Rows(r)
	if err != nil {
		return fmt.Errorf("scaffold(taco) ci: %w", err)
	}
	if rows != nil && len(rows) != len(a.ci) {
		return fmt.Errorf("scaffold(taco): %d control-variate rows for %d clients", len(rows), len(a.ci))
	}
	for i := range a.ci {
		var row []float64
		if rows != nil {
			row = rows[i]
		}
		if row == nil {
			a.ci[i], a.corr[i] = nil, nil
			continue
		}
		if len(row) != a.d {
			return fmt.Errorf("scaffold(taco): client %d variate length %d, want %d", i, len(row), a.d)
		}
		a.ci[i] = row
		if a.corr[i] == nil {
			a.corr[i] = make([]float64, a.d)
		}
	}
	return nil
}
