package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/vecmath"
)

func tacoSetup(t *testing.T, clients int) (*nn.Network, []*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	train, test, err := dataset.Standard("adult", dataset.ScaleSmall, 9)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Dirichlet(train, clients, 0.5, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	net, err := dataset.Model("adult")
	if err != nil {
		t.Fatal(err)
	}
	return net, part.Shards(train), test
}

func tacoConfig() fl.Config {
	return fl.Config{
		Rounds:     8,
		LocalSteps: 5,
		BatchSize:  16,
		LocalLR:    0.03,
		Seed:       21,
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults(100, 50)
	if cfg.Gamma != 0.01 {
		t.Fatalf("default gamma = %v, want 1/K = 0.01", cfg.Gamma)
	}
	if cfg.InitialAlpha != 0.1 {
		t.Fatalf("default initial alpha = %v, want 0.1", cfg.InitialAlpha)
	}
	if cfg.Kappa != 0.6 {
		t.Fatalf("default kappa = %v, want 0.6", cfg.Kappa)
	}
	if cfg.MaxStrikes != 10 {
		t.Fatalf("default strikes = %v, want T/5 = 10", cfg.MaxStrikes)
	}
}

func TestConfigExplicitValuesKept(t *testing.T) {
	cfg := Config{Gamma: 0.2, Kappa: 0.9, MaxStrikes: 3, InitialAlpha: 0.4}.withDefaults(10, 50)
	if cfg.Gamma != 0.2 || cfg.Kappa != 0.9 || cfg.MaxStrikes != 3 || cfg.InitialAlpha != 0.4 {
		t.Fatalf("explicit values overwritten: %+v", cfg)
	}
}

func TestTACOTrainsAndTracksAlpha(t *testing.T) {
	net, shards, test := tacoSetup(t, 6)
	alg := New(Recommended())
	res, err := fl.Run(tacoConfig(), alg, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Diverged {
		t.Fatal("TACO diverged on the easy setup")
	}
	if res.Run.FinalAccuracy() < 0.55 {
		t.Fatalf("final accuracy %.4f too low", res.Run.FinalAccuracy())
	}
	alphas := alg.Alphas()
	if len(alphas) != 6 {
		t.Fatalf("alphas length %d, want 6", len(alphas))
	}
	for i, a := range alphas {
		if a < 0 || a > 1 {
			t.Fatalf("alpha[%d] = %v outside [0,1]", i, a)
		}
	}
	if len(alg.AlphaHistory()) != tacoConfig().Rounds {
		t.Fatalf("history rounds %d, want %d", len(alg.AlphaHistory()), tacoConfig().Rounds)
	}
	if m := alg.MeanAlpha(); m <= 0 || m >= 1 {
		t.Fatalf("mean alpha %v out of (0,1)", m)
	}
}

func TestTACOFinalModelIsZ(t *testing.T) {
	net, shards, test := tacoSetup(t, 4)
	alg := New(Recommended())
	res, err := fl.Run(tacoConfig(), alg, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	// z_T = w_T + (1−ᾱ)(w_T − w_{T−1}) differs from w_T whenever the last
	// step moved and ᾱ < 1.
	w := make([]float64, net.NumParams())
	z := alg.FinalModel(w)
	if &z[0] == &w[0] {
		t.Fatal("FinalModel returned w, want the z sequence")
	}
	if !vecmath.AllFinite(res.FinalParams) {
		t.Fatal("final z not finite")
	}
}

func TestTACOFreshInstanceFinalModelIdentity(t *testing.T) {
	alg := New(Config{})
	w := []float64{1, 2, 3}
	if got := alg.FinalModel(w); &got[0] != &w[0] {
		t.Fatal("before training, FinalModel must be the identity")
	}
}

func TestTACOFreeloaderAlphasHigh(t *testing.T) {
	net, shards, test := tacoSetup(t, 8)
	cfg := tacoConfig()
	cfg.Rounds = 10
	cfg.Freeloaders = []int{6, 7}
	alg := New(Recommended())
	if _, err := fl.Run(cfg, alg, net, shards, test); err != nil {
		t.Fatal(err)
	}
	alphas := alg.Alphas()
	honest, free := 0.0, 0.0
	for i, a := range alphas {
		if i >= 6 {
			free += a / 2
		} else {
			honest += a / 6
		}
	}
	if free <= honest {
		t.Fatalf("freeloader mean alpha %.3f not above honest %.3f (Table II shape)", free, honest)
	}
}

func TestTACOExpelsFreeloaders(t *testing.T) {
	net, shards, test := tacoSetup(t, 8)
	cfg := tacoConfig()
	cfg.Rounds = 14
	cfg.Freeloaders = []int{6, 7}
	tcfg := Recommended()
	tcfg.DetectFreeloaders = true
	tcfg.Kappa = 0.5
	tcfg.MaxStrikes = 3
	alg := New(tcfg)
	res, err := fl.Run(cfg, alg, net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{6, 7} {
		if _, ok := res.Expelled[id]; !ok {
			t.Fatalf("freeloader %d not expelled; expelled set: %v, strikes: %v", id, res.Expelled, alg.Strikes())
		}
	}
	for id := range res.Expelled {
		if id < 6 {
			t.Fatalf("honest client %d wrongly expelled", id)
		}
	}
}

func TestTACOKappaOneDetectsNothing(t *testing.T) {
	net, shards, test := tacoSetup(t, 8)
	cfg := tacoConfig()
	cfg.Freeloaders = []int{7}
	tcfg := Recommended()
	tcfg.DetectFreeloaders = true
	tcfg.Kappa = 1.01 // α never exceeds 1, Table VIII's κ=1.0 row
	tcfg.MaxStrikes = 1
	res, err := fl.Run(cfg, New(tcfg), net, shards, test)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Expelled) != 0 {
		t.Fatalf("κ>1 must detect nothing, expelled %v", res.Expelled)
	}
}

func TestTACOAblationVariantsRun(t *testing.T) {
	net, shards, test := tacoSetup(t, 5)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"no corr", Config{DisableTailoredCorrection: true}},
		{"no agg", Config{DisableTailoredAggregation: true}},
		{"neither", Config{DisableTailoredCorrection: true, DisableTailoredAggregation: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := fl.Run(tacoConfig(), New(tc.cfg), net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			if res.Run.FinalAccuracy() < 0.5 {
				t.Fatalf("accuracy %.4f too low", res.Run.FinalAccuracy())
			}
		})
	}
}

// TestLemma1EMAStructure validates Lemma 1's qualitative claim on the
// implementation: with uniform alphas the aggregated ∆^{t+1} equals the
// mean local gradient plus (1−α)∆^t. We freeze alphas by disabling
// smoothing and using identical client deltas (so Eq. 7 gives uniform α),
// then check the recursion.
func TestLemma1EMAStructure(t *testing.T) {
	const (
		n   = 4
		dim = 6
		k   = 2
		lr  = 0.5
	)
	alg := New(Config{Gamma: 1.0 / k})
	env := &fl.Env{
		NumClients: n,
		NumParams:  dim,
		DataSizes:  []int{1, 1, 1, 1},
		Cfg:        fl.Config{Rounds: 4, LocalSteps: k, BatchSize: 1, LocalLR: lr, Seed: 1},
	}
	alg.Setup(env)

	mkUpdates := func(base []float64) []fl.Update {
		updates := make([]fl.Update, n)
		for i := range updates {
			updates[i] = fl.Update{Client: i, Delta: vecmath.Clone(base), NumSamples: 1}
		}
		return updates
	}
	w := make([]float64, dim)
	wPrev := make([]float64, dim)
	server := &fl.ServerCtx{W: w, WPrev: wPrev, Env: env, Active: make([]bool, n)}

	// Round 0: identical deltas d0 ⇒ ∆^1 = d0/(K·ηl).
	d0 := []float64{1, 0, 0, 0, 0, 0}
	alg.Aggregate(server, mkUpdates(d0))
	corr1 := alg.Corr()
	want := 1.0 / (k * lr)
	if math.Abs(corr1[0]-want) > 1e-9 {
		t.Fatalf("∆^1[0] = %v, want %v", corr1[0], want)
	}

	// Round 1: identical deltas d1 ⇒ uniform α = 1−1/N, and Lemma 1 says
	// ∆^2 = d1/(K·ηl) — the EMA contribution lives inside d1 in a real
	// run; with synthetic deltas the aggregation itself must be the plain
	// weighted mean, which uniform α reduces to exactly.
	d1 := []float64{0, 2, 0, 0, 0, 0}
	alg.Aggregate(server, mkUpdates(d1))
	corr2 := alg.Corr()
	if math.Abs(corr2[1]-2.0/(k*lr)) > 1e-9 || math.Abs(corr2[0]) > 1e-9 {
		t.Fatalf("∆^2 = %v, want plain mean of identical deltas", corr2[:2])
	}
}

func TestHybridsTrain(t *testing.T) {
	net, shards, test := tacoSetup(t, 5)
	for _, alg := range []fl.Algorithm{NewFedProxTACO(0.1), NewScaffoldTACO()} {
		t.Run(alg.Name(), func(t *testing.T) {
			res, err := fl.Run(tacoConfig(), alg, net, shards, test)
			if err != nil {
				t.Fatal(err)
			}
			if res.Run.Diverged {
				t.Fatal("hybrid diverged")
			}
			if res.Run.FinalAccuracy() < 0.55 {
				t.Fatalf("accuracy %.4f too low", res.Run.FinalAccuracy())
			}
			if alg.MeanAlpha() <= 0 {
				t.Fatal("hybrid did not track alphas")
			}
		})
	}
}

// jitter measures mean absolute round-to-round accuracy change over the
// second half of a run — the instability statistic used in DESIGN.md §5.
func jitter(rounds []float64) float64 {
	if len(rounds) < 2 {
		return 0
	}
	var total float64
	for i := 1; i < len(rounds); i++ {
		d := rounds[i] - rounds[i-1]
		if d < 0 {
			d = -d
		}
		total += d
	}
	return total / float64(len(rounds)-1)
}

// TestStabilizersReduceRinging is the ablation for this reproduction's two
// deviations (aggregation-weight floor + α smoothing): on the adult
// profile where the paper-exact rule rings (DESIGN.md §5), the Recommended
// configuration must cut the late-training accuracy jitter substantially.
func TestStabilizersReduceRinging(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two 20-round runs")
	}
	train, test, err := dataset.Standard("adult", dataset.ScaleSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Dirichlet(train, 20, 0.5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	net, err := dataset.Model("adult")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fl.Config{Rounds: 24, LocalSteps: 10, BatchSize: 24, LocalLR: 0.05, Seed: 7}
	shards := part.Shards(train)

	measure := func(tcfg Config) float64 {
		res, err := fl.Run(cfg, New(tcfg), net, shards, test)
		if err != nil {
			t.Fatal(err)
		}
		accs := make([]float64, 0, len(res.Run.Rounds))
		for _, rec := range res.Run.Rounds[len(res.Run.Rounds)/2:] {
			accs = append(accs, rec.Accuracy)
		}
		return jitter(accs)
	}
	paperExact := measure(Config{})
	stabilized := measure(Recommended())
	if stabilized >= paperExact {
		t.Fatalf("stabilizers did not reduce ringing: paper-exact jitter %.4f, stabilized %.4f",
			paperExact, stabilized)
	}
}
