package core

import (
	"math"
	"repro/internal/fl"
	"repro/internal/simclock"
	"repro/internal/vecmath"
)

// Config holds TACO's hyper-parameters (Algorithm 2).
type Config struct {
	// Gamma is γ ∈ (0,1], the maximum correction factor in Eq. (8);
	// 0 selects the paper's default γ = 1/K.
	Gamma float64
	// InitialAlpha seeds α_i^0 (Algorithm 2 uses 0.1).
	InitialAlpha float64
	// DetectFreeloaders enables the Eq. (10) inspection.
	DetectFreeloaders bool
	// Kappa is the suspicion threshold κ (paper default 0.6).
	Kappa float64
	// MaxStrikes is λ: a client suspected this many times is expelled;
	// 0 selects the paper's default λ = T/5.
	MaxStrikes int
	// DisableTailoredCorrection turns off the Eq. (8) correction
	// (ablation Table VI, "Tailored Corr." column).
	DisableTailoredCorrection bool
	// DisableTailoredAggregation replaces Eq. (9) with uniform averaging
	// (ablation Table VI, "Tailored Agg." column).
	DisableTailoredAggregation bool
	// AlphaSmoothing blends each round's fresh coefficient estimate with
	// the previous value: α ← s·α_old + (1−s)·α_new. The per-round α
	// estimates are noisy at small scale (few local steps), and feeding
	// them raw into Eq. (9) lets the weighted aggregation flip between
	// client camps round to round; smoothing damps the flip while keeping
	// the full dynamic range of the tailoring. 0 keeps the paper's
	// memoryless estimate.
	AlphaSmoothing float64
	// AggFloor floors each client's aggregation weight at this value
	// before normalization. Eq. (9) as written gives weight zero to any
	// client whose delta's cosine with the round mean is non-positive; at
	// small scale (few local steps, high-curvature synthetic data) that
	// excluded camp flips between rounds and the aggregation rings. A
	// small floor keeps every honest client marginally represented while
	// preserving the tailored weighting. 0 keeps the paper's exact rule.
	AggFloor float64
}

func (c Config) withDefaults(localSteps, rounds int) Config {
	if c.Gamma == 0 {
		c.Gamma = 1 / float64(localSteps)
	}
	if c.InitialAlpha == 0 {
		c.InitialAlpha = 0.1
	}
	if c.Kappa == 0 {
		c.Kappa = 0.6
	}
	if c.MaxStrikes == 0 {
		c.MaxStrikes = max(rounds/5, 1)
	}
	return c
}

// TACO is the paper's algorithm: per-client, per-round correction
// coefficients drive both the local-update correction and the aggregation
// weights, with freeloader expulsion as a byproduct.
type TACO struct {
	fl.Base
	cfg     Config
	tracker *AlphaTracker
	// corr is the broadcast global gradient ∆^t of Eq. (8), in gradient
	// units (∆^t ≈ mean local gradient), zero in round 0.
	corr []float64
	// z is the final-output model z_t of Eq. (15).
	z       []float64
	strikes []int
	k       int
	lr      float64
	mean    float64
	// weights is the reusable normalized Eq. (9) weight buffer, reported
	// to the server each round for the defense metrics (honest-vs-corrupt
	// weight mass).
	weights []float64
}

// New returns TACO with the given configuration; zero fields select the
// paper's defaults at Setup time.
func New(cfg Config) *TACO { return &TACO{cfg: cfg} }

// Recommended returns the configuration used by this repository's
// experiments: the paper's hyper-parameters (γ = 1/K, κ = 0.6, λ = T/5)
// plus the two reproduction-scale stabilizers, a 0.2 aggregation-weight
// floor and 0.5 coefficient smoothing. At the paper's scale (hundreds of
// local steps over real datasets) the raw Eq. (7) estimates are stable;
// at this repository's reduced scale they are noisy enough that Eq. (9)'s
// zero-weight exclusions ring (see DESIGN.md §5).
func Recommended() Config {
	return Config{AggFloor: 0.2, AlphaSmoothing: 0.5}
}

var _ fl.Algorithm = (*TACO)(nil)

// Name implements fl.Algorithm.
func (a *TACO) Name() string { return "TACO" }

// Setup implements fl.Algorithm.
func (a *TACO) Setup(env *fl.Env) {
	a.cfg = a.cfg.withDefaults(env.Cfg.LocalSteps, env.Cfg.Rounds)
	a.tracker = NewAlphaTracker(env.NumClients, env.NumParams, a.cfg.InitialAlpha)
	a.corr = make([]float64, env.NumParams)
	a.z = nil
	a.strikes = make([]int, env.NumClients)
	a.k = env.Cfg.LocalSteps
	a.lr = env.Cfg.LocalLR
	a.mean = a.cfg.InitialAlpha
	a.weights = make([]float64, env.NumClients)
}

// GradAdjust applies Eq. (8): g ← g + γ(1−α_i^t)·∆^t, registered as a
// fused correction so the engine folds it into the SGD step in a single
// pass over d. The shared vector ∆^t is read-only during the round, so
// concurrent clients only differ in their scalar coefficient.
func (a *TACO) GradAdjust(ctx *fl.StepCtx) {
	if a.cfg.DisableTailoredCorrection {
		return
	}
	coeff := a.cfg.Gamma * (1 - a.tracker.Alpha(ctx.Client))
	if coeff != 0 {
		ctx.FuseCorrection(coeff, a.corr)
	}
}

// Aggregate implements Algorithm 2 lines 9–12: recompute α_i^{t+1}
// (Eq. 7), build the α-weighted global gradient (Eq. 9), advance the
// model, update z (Eq. 15), and expel repeat-offender freeloaders
// (Eq. 10).
func (a *TACO) Aggregate(s *fl.ServerCtx, updates []fl.Update) {
	a.tracker.Update(updates, a.cfg.AlphaSmoothing)
	a.mean = a.tracker.MeanOver(updates)

	// Eq. (9): ∆^{t+1} = Σ α_i ∆_i / (K·ηl·Σα_i), with weights optionally
	// floored (see Config.AggFloor) and damped by each update's staleness
	// under asynchronous aggregation — a stale delta both carries an
	// outdated correction and misestimates the drift, so its tailored
	// weight shrinks by 1/√(1+s). When every coefficient vanishes
	// (degenerate geometry) fall back to uniform weights.
	weight := func(u fl.Update) float64 {
		return math.Max(a.tracker.Alpha(u.Client), a.cfg.AggFloor) * fl.StalenessDamp(u.Staleness)
	}
	// The normalized per-update weights are materialized once (reusable
	// buffer) so they can both drive the aggregation and be reported to
	// the server for the defense metrics. The buffer tracks the update
	// count, not the client count: under buffered asynchrony one client
	// can contribute several updates to a single server step.
	if cap(a.weights) < len(updates) {
		a.weights = make([]float64, len(updates))
	}
	w := a.weights[:len(updates)]
	var alphaSum float64
	for _, u := range updates {
		alphaSum += weight(u)
	}
	if alphaSum > 1e-12 {
		for i, u := range updates {
			w[i] = weight(u) / alphaSum
		}
	} else {
		for i := range w {
			w[i] = 1 / float64(len(updates))
		}
	}
	if a.cfg.DisableTailoredAggregation {
		// Ablation: uniform FedAvg aggregation, keeping only Eq. (8).
		for i := range w {
			w[i] = 1 / float64(len(updates))
		}
	}
	vecmath.Zero(a.corr)
	inv := 1 / (float64(a.k) * a.lr)
	for i := range updates {
		// Sparse uploads (top-k codec) scatter their k kept coordinates
		// instead of walking all d.
		updates[i].AddScaled(w[i]*inv, a.corr)
	}
	s.ReportWeights(w)
	vecmath.AXPY(-s.GlobalLR(), a.corr, s.W)

	// Eq. (15): z^{t+1} = w^{t+1} + (1−α_{t+1})(w^{t+1} − w^t).
	if a.z == nil {
		a.z = make([]float64, len(s.W))
	}
	for j := range a.z {
		a.z[j] = s.W[j] + (1-a.mean)*(s.W[j]-s.WPrev[j])
	}

	// Eq. (10): strike clients whose coefficient crosses κ; expel after λ.
	if a.cfg.DetectFreeloaders {
		for _, u := range updates {
			if a.tracker.Alpha(u.Client) >= a.cfg.Kappa {
				a.strikes[u.Client]++
				if a.strikes[u.Client] >= a.cfg.MaxStrikes {
					s.Expel(u.Client)
				}
			}
		}
	}
}

// FinalModel returns z_t (Eq. 15), the model TACO evaluates and outputs.
func (a *TACO) FinalModel(w []float64) []float64 {
	if a.z == nil {
		return w
	}
	return a.z
}

// MeanAlpha implements fl.Algorithm.
func (a *TACO) MeanAlpha() float64 { return a.mean }

// Alphas returns the current per-client coefficients (a copy).
func (a *TACO) Alphas() []float64 {
	return vecmath.Clone(a.tracker.alphas)
}

// AlphaHistory exposes per-round coefficient snapshots for Table II.
func (a *TACO) AlphaHistory() [][]float64 { return a.tracker.History() }

// Corr returns the current broadcast correction ∆^t (a copy), the
// aggregated global gradient of Eq. (9). Diagnostic accessor.
func (a *TACO) Corr() []float64 { return vecmath.Clone(a.corr) }

// Strikes returns the per-client suspicion counts (a copy).
func (a *TACO) Strikes() []int {
	out := make([]int, len(a.strikes))
	copy(out, a.strikes)
	return out
}

// Costs implements fl.Algorithm: one AXPY per local step.
func (a *TACO) Costs() simclock.Costs {
	if a.cfg.DisableTailoredCorrection {
		return simclock.Plain()
	}
	return simclock.Costs{GradEvalsPerStep: 1, AuxPerStep: simclock.CostTACOCorrection}
}
