package core

import (
	"math"
	"testing"

	"repro/internal/fl"
	"repro/internal/rng"
	"repro/internal/vecmath"
)

func computeAlphasFor(deltas [][]float64) []float64 {
	out := make([]float64, len(deltas))
	mean := make([]float64, len(deltas[0]))
	ComputeAlphas(deltas, mean, out)
	return out
}

func TestComputeAlphasBounds(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.IntN(10)
		dim := 1 + r.IntN(20)
		deltas := make([][]float64, n)
		for i := range deltas {
			deltas[i] = make([]float64, dim)
			for j := range deltas[i] {
				deltas[i][j] = r.Normal(0, 1)
			}
		}
		alphas := computeAlphasFor(deltas)
		for i, a := range alphas {
			if a < 0 || a > 1 || math.IsNaN(a) {
				t.Fatalf("alpha[%d] = %v outside [0,1]", i, a)
			}
		}
	}
}

func TestComputeAlphasIdenticalClients(t *testing.T) {
	// All clients uploading the same delta get identical alphas of
	// (1 − 1/N)·1.
	n, dim := 5, 8
	base := make([]float64, dim)
	r := rng.New(2)
	for j := range base {
		base[j] = r.Normal(0, 1)
	}
	deltas := make([][]float64, n)
	for i := range deltas {
		deltas[i] = vecmath.Clone(base)
	}
	alphas := computeAlphasFor(deltas)
	want := 1 - 1.0/float64(n)
	for i, a := range alphas {
		if math.Abs(a-want) > 1e-9 {
			t.Fatalf("alpha[%d] = %v, want %v", i, a, want)
		}
	}
}

// TestComputeAlphasDirectionGeometry verifies the Fig. 3 (left) intuition:
// a client whose delta opposes the crowd gets a smaller alpha.
func TestComputeAlphasDirectionGeometry(t *testing.T) {
	deltas := [][]float64{
		{1, 0}, {1, 0.1}, {1, -0.1}, {-1, 0}, // client 3 opposes
	}
	alphas := computeAlphasFor(deltas)
	for i := 0; i < 3; i++ {
		if alphas[3] >= alphas[i] {
			t.Fatalf("opposing client alpha %v not below aligned client %d's %v", alphas[3], i, alphas[i])
		}
	}
	if alphas[3] != 0 {
		t.Fatalf("fully opposing client must clamp to 0, got %v", alphas[3])
	}
}

// TestComputeAlphasMagnitudeGeometry verifies the Fig. 3 (right) intuition:
// with equal directions, the client with the larger magnitude gets the
// smaller alpha (and therefore the larger correction factor 1−α).
func TestComputeAlphasMagnitudeGeometry(t *testing.T) {
	deltas := [][]float64{
		{1, 0}, {1, 0}, {10, 0},
	}
	alphas := computeAlphasFor(deltas)
	if alphas[2] >= alphas[0] {
		t.Fatalf("large-magnitude client alpha %v not below small-magnitude %v", alphas[2], alphas[0])
	}
}

func TestComputeAlphasZeroDeltas(t *testing.T) {
	deltas := [][]float64{{0, 0}, {0, 0}}
	alphas := computeAlphasFor(deltas)
	for i, a := range alphas {
		if a != 0 {
			t.Fatalf("alpha[%d] = %v for all-zero deltas, want 0", i, a)
		}
	}
}

// TestCorollary2Optimality numerically verifies Corollary 2: among weight
// assignments with a fixed total correction Σ(1−α_i) = σ, the error term
// Y_t ∝ [Σ(1−α_i)·Σ(µ_i/c_i)]² ... with the Cauchy-Schwarz argument the
// minimizing choice sets (1−α_i) ∝ µ_i/c_i. We verify by comparing the
// bound's inner product form Σ(1−α_i)·(µ_i/c_i) under the proportional
// assignment against random assignments with the same Σ(1−α_i) and norm.
func TestCorollary2Optimality(t *testing.T) {
	r := rng.New(5)
	n := 10
	ratio := make([]float64, n) // µ_i/c_i per client
	for i := range ratio {
		ratio[i] = 0.1 + r.Float64()*2
	}
	// The Cauchy-Schwarz statement: for vectors u=(1−α) and v=ratio with
	// ‖u‖ fixed, ⟨u,v⟩ is maximized (hence the bound's slack minimized and
	// equality attained) when u ∝ v. Verify ⟨u*,v⟩ ≥ ⟨u_rand,v⟩ for random
	// u with the same Euclidean norm.
	vnorm := vecmath.Norm2(ratio)
	ustar := make([]float64, n)
	for i := range ustar {
		ustar[i] = ratio[i] / vnorm // unit-norm proportional assignment
	}
	best := vecmath.Dot(ustar, ratio)
	for trial := 0; trial < 500; trial++ {
		u := make([]float64, n)
		for i := range u {
			u[i] = r.Float64()
		}
		norm := vecmath.Norm2(u)
		for i := range u {
			u[i] /= norm
		}
		if got := vecmath.Dot(u, ratio); got > best+1e-9 {
			t.Fatalf("random assignment %v beats proportional: %v > %v", u, got, best)
		}
	}
}

func TestAlphaTrackerSmoothing(t *testing.T) {
	tr := NewAlphaTracker(2, 2, 0.5)
	updates := []fl.Update{
		{Client: 0, Delta: []float64{1, 0}},
		{Client: 1, Delta: []float64{1, 0}},
	}
	// Raw new alphas would be (1 − 1/2)·1 = 0.5 each; with smoothing 0.8
	// starting from 0.5 they stay 0.5.
	tr.Update(updates, 0.8)
	if math.Abs(tr.Alpha(0)-0.5) > 1e-12 {
		t.Fatalf("alpha = %v, want 0.5", tr.Alpha(0))
	}
	// Opposing uploads: raw alpha of client 1 clamps to 0; smoothed value
	// must sit between old (0.5) and new (0).
	updates[1].Delta = []float64{-1, 0}
	tr.Update(updates, 0.5)
	a := tr.Alpha(1)
	if a <= 0 || a >= 0.5 {
		t.Fatalf("smoothed alpha %v not in (0, 0.5)", a)
	}
}

func TestAlphaTrackerHistoryAndMean(t *testing.T) {
	tr := NewAlphaTracker(3, 2, 0.1)
	updates := []fl.Update{
		{Client: 0, Delta: []float64{1, 0}},
		{Client: 2, Delta: []float64{1, 0}},
	}
	tr.Update(updates, 0)
	if len(tr.History()) != 1 {
		t.Fatalf("history length %d, want 1", len(tr.History()))
	}
	// Client 1 did not participate: keeps its initial value.
	if tr.Alpha(1) != 0.1 {
		t.Fatalf("non-participant alpha = %v, want 0.1", tr.Alpha(1))
	}
	mean := tr.MeanOver(updates)
	want := (tr.Alpha(0) + tr.Alpha(2)) / 2
	if math.Abs(mean-want) > 1e-12 {
		t.Fatalf("MeanOver = %v, want %v", mean, want)
	}
	if tr.MeanOver(nil) != 0 {
		t.Fatal("MeanOver(nil) must be 0")
	}
}
