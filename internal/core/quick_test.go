package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fl"
)

// Property-based tests (testing/quick) for the α computation, the paper's
// central data structure.

// TestQuickAlphaInvariants: for arbitrary delta matrices, every α lies in
// [0, 1], is finite, and the client with the largest norm never has the
// strictly largest magnitude factor.
func TestQuickAlphaInvariants(t *testing.T) {
	f := func(raw [][3]float64) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		deltas := make([][]float64, len(raw))
		for i, row := range raw {
			deltas[i] = []float64{row[0], row[1], row[2]}
			for j, v := range deltas[i] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					deltas[i][j] = 0
				}
			}
		}
		alphas := computeAlphasFor(deltas)
		for _, a := range alphas {
			if math.IsNaN(a) || a < 0 || a > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAlphaScaleInvariance: scaling every delta by the same positive
// factor leaves all α unchanged (both Eq. 7 factors are scale-free).
func TestQuickAlphaScaleInvariance(t *testing.T) {
	f := func(raw [4][3]float64, scaleSeed uint8) bool {
		scale := 0.5 + float64(scaleSeed)/64 // in [0.5, ~4.5]
		a := make([][]float64, 4)
		b := make([][]float64, 4)
		for i, row := range raw {
			a[i] = []float64{row[0], row[1], row[2]}
			b[i] = make([]float64, 3)
			for j, v := range a[i] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					a[i][j] = 1
				}
				// Keep magnitudes bounded so scaling cannot overflow.
				a[i][j] = math.Mod(a[i][j], 1e6)
				b[i][j] = scale * a[i][j]
			}
		}
		alphaA := computeAlphasFor(a)
		alphaB := computeAlphasFor(b)
		for i := range alphaA {
			if math.Abs(alphaA[i]-alphaB[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSmoothingContracts: the smoothed α always lies between the old
// value and the raw new estimate.
func TestQuickSmoothingContracts(t *testing.T) {
	f := func(oldVal, s8 uint8) bool {
		old := float64(oldVal) / 255
		smoothing := float64(s8%100) / 100
		tr := NewAlphaTracker(2, 2, old)
		// Two identical deltas give raw α = 0.5 for both clients.
		updates := mkTwoIdentical()
		tr.Update(updates, smoothing)
		got := tr.Alpha(0)
		lo, hi := math.Min(old, 0.5), math.Max(old, 0.5)
		return got >= lo-1e-12 && got <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mkTwoIdentical() []fl.Update {
	return []fl.Update{
		{Client: 0, Delta: []float64{1, 0}},
		{Client: 1, Delta: []float64{1, 0}},
	}
}
