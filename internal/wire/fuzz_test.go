package wire

import (
	"bytes"
	"testing"

	"repro/internal/compress"
)

// FuzzWireUnmarshal feeds arbitrary bytes to the payload decoder and the
// frame reader. Invariants: no panic on any input; a successful payload
// decode re-marshals to a byte stream that decodes to the same payload
// (idempotent roundtrip — raw varints are not canonical, so first-pass
// byte equality is not required); index and count invariants hold on every
// accepted payload.
func FuzzWireUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{formDense, 0})
	f.Add([]byte{formTopK, 4, 2, 1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{formInt8, 2, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2})
	for _, p := range samplePayloads(f, 96) {
		f.Add(AppendPayload(nil, p))
	}
	var hdr [HeaderLen]byte
	hdr[0], hdr[1] = Magic, Version
	f.Add(hdr[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		var p compress.Payload
		rest, err := UnmarshalPayload(&p, data)
		if err == nil {
			// Accepted payloads satisfy the structural invariants…
			switch p.Form {
			case compress.KindTopK:
				prev := int32(-1)
				for _, i := range p.Idx {
					if i <= prev || int(i) >= p.N {
						t.Fatalf("accepted topk indices not strictly ascending in range: %v (n=%d)", p.Idx, p.N)
					}
					prev = i
				}
				if len(p.Idx) != len(p.Val) || len(p.Idx) > p.N {
					t.Fatalf("accepted topk shape k=%d vals=%d n=%d", len(p.Idx), len(p.Val), p.N)
				}
			case compress.KindInt8:
				if len(p.Q) != p.N {
					t.Fatalf("accepted int8 shape q=%d n=%d", len(p.Q), p.N)
				}
				if p.N > 0 {
					want := (p.N + p.ChunkLen - 1) / p.ChunkLen
					if len(p.Scale) != want {
						t.Fatalf("accepted int8 scales %d, want %d", len(p.Scale), want)
					}
				}
			case compress.KindNone:
				if len(p.Val) != p.N {
					t.Fatalf("accepted dense shape vals=%d n=%d", len(p.Val), p.N)
				}
			}
			// …and re-marshal/re-decode to the same payload.
			consumed := len(data) - len(rest)
			enc := AppendPayload(nil, &p)
			if len(enc) > consumed {
				t.Fatalf("re-encode grew: %d bytes from %d consumed", len(enc), consumed)
			}
			var q compress.Payload
			if _, err := UnmarshalPayload(&q, enc); err != nil {
				t.Fatalf("re-decode of re-encode failed: %v", err)
			}
			enc2 := AppendPayload(nil, &q)
			if !bytes.Equal(enc, enc2) {
				t.Fatal("re-encode not a fixed point")
			}
		}

		// The frame reader must never panic and must bound its allocation.
		var fr Frame
		_ = ReadFrame(bytes.NewReader(data), &fr)
		if cap(fr.Body) > len(data)+growChunk {
			t.Fatalf("frame reader allocated %d bytes from a %d-byte input", cap(fr.Body), len(data))
		}
	})
}
