// Package wire defines the federation's transport encoding: a versioned,
// length-prefixed frame format plus a compact payload codec for compressed
// updates (DESIGN.md §11). The payload codec beats the in-memory cost
// model of compress.Payload.Bytes for sparse uploads — top-k indices are
// delta-encoded uvarints (typically 1–3 bytes each) instead of fixed
// 4-byte int32s — while int8 frames carry their per-chunk scales and dense
// fallback frames the raw float64 bits, both byte-exact.
//
// Both directions of the API are allocation-free on the hot path: every
// Append* function appends into a caller-owned buffer, and every decode
// reuses the destination's backing arrays, growing them only past a high-
// water mark. Decoders are hostile-input safe in the internal/ckpt style:
// element counts are validated against the bytes actually present before
// any array is grown, and frame bodies are read in bounded chunks, so a
// forged length fails cheaply instead of allocating gigabytes.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/compress"
)

// Frame header layout: magic, version, type, little-endian u32 body length.
const (
	// Magic is the first byte of every frame.
	Magic = 0xFB
	// Version is the protocol version; readers reject every other value.
	Version = 1
	// HeaderLen is the fixed frame-header size in bytes.
	HeaderLen = 7
	// MaxFrame bounds a frame body; longer lengths are rejected as forged.
	MaxFrame = 1 << 28
	// MaxElems bounds any element count decoded from a payload.
	MaxElems = 1 << 28
	// growChunk is the read-granularity for frame bodies: a forged length
	// over a truncated stream fails after at most one extra chunk of
	// allocation instead of committing the full claimed size up front.
	growChunk = 1 << 16
)

// FrameType tags a frame's meaning in the flserver protocol.
type FrameType byte

// Protocol frame types. Hello/Updates/Pong flow worker→server; Dispatch,
// the backpressure pair Hold/Resume, Bye, Reject, the liveness probe
// Ping, and the failover pair Adopt/Restore flow server→worker. Adopt
// carries a Dispatch-shaped body the worker trains and discards (it
// advances the worker's per-client rng streams without re-uploading a
// result the server already holds); Restore is body-less and resets the
// worker to its freshly-started state before a full history replay.
const (
	FrameHello FrameType = iota + 1
	FrameDispatch
	FrameUpdates
	FrameHold
	FrameResume
	FrameBye
	FrameReject
	FramePing
	FramePong
	FrameAdopt
	FrameRestore
)

// BeginFrame appends a frame header with a zero length to dst and returns
// the extended buffer. The caller appends the body and then patches the
// length with EndFrame, passing the offset len(dst) had before this call:
//
//	start := len(buf)
//	buf = wire.BeginFrame(buf, wire.FrameUpdates)
//	buf = append(buf, body...)
//	wire.EndFrame(buf, start)
func BeginFrame(dst []byte, t FrameType) []byte {
	return append(dst, Magic, Version, byte(t), 0, 0, 0, 0)
}

// EndFrame patches the body length of the frame begun at offset start.
// It panics if the body exceeds MaxFrame — frames are built by this
// process, so an oversized body is a bug, not hostile input.
func EndFrame(buf []byte, start int) {
	n := len(buf) - start - HeaderLen
	if n < 0 || n > MaxFrame {
		panic(fmt.Sprintf("wire: frame body %d bytes out of range", n))
	}
	binary.LittleEndian.PutUint32(buf[start+3:], uint32(n))
}

// Frame is one decoded frame. Body aliases the reader's reusable buffer
// and is only valid until the next ReadFrame into the same Frame.
type Frame struct {
	Type FrameType
	Body []byte
	// hdr is the reusable header scratch; a per-call array would escape
	// through the io.Reader interface and cost one allocation per frame.
	hdr [HeaderLen]byte
}

// ReadFrame reads one frame from r into fr, reusing fr.Body's capacity.
// The body is read in growChunk steps so a forged length over a truncated
// stream fails with bounded allocation.
func ReadFrame(r io.Reader, fr *Frame) error {
	hdr := fr.hdr[:]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return err
	}
	if hdr[0] != Magic {
		return fmt.Errorf("wire: bad magic 0x%02x", hdr[0])
	}
	if hdr[1] != Version {
		return fmt.Errorf("wire: unsupported version %d (have %d)", hdr[1], Version)
	}
	n := int(binary.LittleEndian.Uint32(hdr[3:]))
	if n > MaxFrame {
		return fmt.Errorf("wire: frame body %d exceeds limit %d", n, MaxFrame)
	}
	fr.Type = FrameType(hdr[2])
	body := fr.Body[:0]
	for len(body) < n {
		chunk := min(n-len(body), growChunk)
		if cap(body) < len(body)+chunk {
			grown := make([]byte, len(body), len(body)+chunk)
			copy(grown, body)
			body = grown
		}
		m, err := io.ReadFull(r, body[len(body):len(body)+chunk])
		body = body[:len(body)+m]
		if err != nil {
			fr.Body = body
			return fmt.Errorf("wire: frame body truncated at %d/%d bytes: %w", len(body), n, err)
		}
	}
	fr.Body = body
	return nil
}

// WriteFrame writes one complete frame (header + body) to w using buf as
// scratch, returning the (possibly grown) buffer for reuse.
func WriteFrame(w io.Writer, t FrameType, body []byte, buf []byte) ([]byte, error) {
	buf = BeginFrame(buf[:0], t)
	buf = append(buf, body...)
	EndFrame(buf, 0)
	_, err := w.Write(buf)
	return buf, err
}

// Append helpers: little-endian primitives appended to a caller buffer.

// AppendU32 appends v little-endian.
func AppendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }

// AppendU64 appends v little-endian.
func AppendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

// AppendF64 appends v's IEEE-754 bits little-endian (bit-exact, NaN
// payloads included).
func AppendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// Dec is a bounds-checked decoder over a frame body. Every accessor
// returns the zero value once an underflow has occurred; check Err after
// a decode sequence (the ckpt cursor idiom — no panics on hostile input).
type Dec struct {
	B   []byte
	Err error
}

// fail records the first error.
func (d *Dec) fail(format string, args ...any) {
	if d.Err == nil {
		d.Err = fmt.Errorf(format, args...)
	}
}

// Len returns the number of unread bytes.
func (d *Dec) Len() int { return len(d.B) }

// Take consumes n bytes, which alias the underlying buffer.
func (d *Dec) Take(n int) []byte {
	if d.Err != nil {
		return nil
	}
	if n < 0 || n > len(d.B) {
		d.fail("wire: need %d bytes, have %d", n, len(d.B))
		return nil
	}
	b := d.B[:n]
	d.B = d.B[n:]
	return b
}

// Byte consumes one byte.
func (d *Dec) Byte() byte {
	b := d.Take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 consumes a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.Take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 consumes a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.Take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// F64 consumes little-endian IEEE-754 bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Uvarint consumes an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.Err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.B)
	if n <= 0 {
		d.fail("wire: bad uvarint")
		return 0
	}
	d.B = d.B[n:]
	return v
}

// Count consumes a uvarint and validates it as an element count no larger
// than limit and representable by the bytes that remain at perElem bytes
// each (perElem >= 1) — the cheap-failure guard that rejects forged counts
// before any array is grown.
func (d *Dec) Count(limit int, perElem int) int {
	v := d.Uvarint()
	if d.Err != nil {
		return 0
	}
	if v > uint64(limit) {
		d.fail("wire: count %d exceeds limit %d", v, limit)
		return 0
	}
	if perElem > 0 && int(v) > len(d.B)/perElem {
		d.fail("wire: count %d needs %d bytes, have %d", v, int(v)*perElem, len(d.B))
		return 0
	}
	return int(v)
}

// Payload form tags on the wire.
const (
	formDense byte = 0
	formTopK  byte = 1
	formInt8  byte = 2
)

// AppendPayload appends p's wire encoding to dst. Layouts (all integers
// uvarint unless sized, all float64s raw little-endian bits):
//
//	dense: 0x00, n, n×f64
//	topk:  0x01, n, k, k×uvarint index deltas (first delta is idx[0]+1,
//	       later ones idx[j]−idx[j−1]; strictly ascending indices make
//	       every delta ≥ 1, so 0 never occurs and needs no escape),
//	       k×f64 values
//	int8:  0x02, n, chunkLen, ⌈n/chunkLen⌉×f64 scales, n×int8 quanta
//
// The scale count is derived from n and chunkLen rather than transmitted,
// so the two can never disagree.
func AppendPayload(dst []byte, p *compress.Payload) []byte {
	switch p.Form {
	case compress.KindTopK:
		dst = append(dst, formTopK)
		dst = AppendUvarint(dst, uint64(p.N))
		dst = AppendUvarint(dst, uint64(len(p.Idx)))
		prev := int32(-1)
		for _, i := range p.Idx {
			dst = AppendUvarint(dst, uint64(i-prev))
			prev = i
		}
		for _, v := range p.Val {
			dst = AppendF64(dst, v)
		}
	case compress.KindInt8:
		dst = append(dst, formInt8)
		dst = AppendUvarint(dst, uint64(len(p.Q)))
		dst = AppendUvarint(dst, uint64(p.ChunkLen))
		for _, s := range p.Scale {
			dst = AppendF64(dst, s)
		}
		for _, q := range p.Q {
			dst = append(dst, byte(q))
		}
	default:
		dst = append(dst, formDense)
		dst = AppendUvarint(dst, uint64(len(p.Val)))
		for _, v := range p.Val {
			dst = AppendF64(dst, v)
		}
	}
	return dst
}

// AppendDense appends the dense encoding of a raw float64 vector — what an
// uncompressed run's worker uploads (byte-identical to encoding a None
// payload holding x).
func AppendDense(dst []byte, x []float64) []byte {
	dst = append(dst, formDense)
	dst = AppendUvarint(dst, uint64(len(x)))
	for _, v := range x {
		dst = AppendF64(dst, v)
	}
	return dst
}

// PayloadWireSize returns the exact AppendPayload encoding size in bytes.
func PayloadWireSize(p *compress.Payload) int {
	n := 1 // form tag
	switch p.Form {
	case compress.KindTopK:
		n += uvarintLen(uint64(p.N)) + uvarintLen(uint64(len(p.Idx)))
		prev := int32(-1)
		for _, i := range p.Idx {
			n += uvarintLen(uint64(i - prev))
			prev = i
		}
		n += 8 * len(p.Val)
	case compress.KindInt8:
		n += uvarintLen(uint64(len(p.Q))) + uvarintLen(uint64(p.ChunkLen))
		n += 8*len(p.Scale) + len(p.Q)
	default:
		n += uvarintLen(uint64(len(p.Val))) + 8*len(p.Val)
	}
	return n
}

// uvarintLen returns the varint encoding length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// DecodePayload decodes one payload from d into p, reusing p's backing
// arrays. Validation is complete: counts are bounded by MaxElems and the
// bytes present, top-k indices must be strictly ascending and < n, and the
// int8 chunk length must be positive whenever quanta are present. Float64
// bits pass through untouched (a NaN on the wire is a NaN after decode —
// transport is semantics-free; the codec layer owns the NaN contract).
func DecodePayload(p *compress.Payload, d *Dec) error {
	form := d.Byte()
	p.Idx, p.Val, p.Q, p.Scale = p.Idx[:0], p.Val[:0], p.Q[:0], p.Scale[:0]
	p.ChunkLen = 0
	switch form {
	case formDense:
		n := d.Count(MaxElems, 8)
		p.Form, p.N = compress.KindNone, n
		p.Val = grow64(p.Val, n)
		for i := 0; i < n && d.Err == nil; i++ {
			p.Val[i] = d.F64()
		}
	case formTopK:
		n := d.Count(MaxElems, 0)
		k := d.Count(n, 1) // every index delta takes ≥ 1 byte
		p.Form, p.N = compress.KindTopK, n
		p.Idx = growI32(p.Idx, k)
		p.Val = grow64(p.Val, k)
		prev := int32(-1)
		for j := 0; j < k && d.Err == nil; j++ {
			delta := d.Uvarint()
			if delta == 0 || delta > uint64(n) {
				d.fail("wire: topk index delta %d out of range", delta)
				break
			}
			idx := int64(prev) + int64(delta)
			if idx >= int64(n) {
				d.fail("wire: topk index %d out of range [0,%d)", idx, n)
				break
			}
			prev = int32(idx)
			p.Idx[j] = prev
		}
		for j := 0; j < k && d.Err == nil; j++ {
			p.Val[j] = d.F64()
		}
	case formInt8:
		n := d.Count(MaxElems, 1)
		chunk := d.Count(MaxElems, 0)
		if n > 0 && chunk == 0 && d.Err == nil {
			d.fail("wire: int8 chunk length 0 with %d quanta", n)
		}
		p.Form, p.N, p.ChunkLen = compress.KindInt8, n, chunk
		scales := 0
		if chunk > 0 {
			scales = (n + chunk - 1) / chunk
		}
		if d.Err == nil && scales > (d.Len())/8 {
			d.fail("wire: %d int8 scales need %d bytes, have %d", scales, 8*scales, d.Len())
		}
		p.Scale = grow64(p.Scale, scales)
		for j := 0; j < scales && d.Err == nil; j++ {
			p.Scale[j] = d.F64()
		}
		q := d.Take(n)
		p.Q = growI8(p.Q, n)
		for i := range q {
			p.Q[i] = int8(q[i])
		}
	default:
		d.fail("wire: unknown payload form 0x%02x", form)
	}
	if d.Err != nil {
		// Leave no half-decoded state behind.
		p.Idx, p.Val, p.Q, p.Scale = p.Idx[:0], p.Val[:0], p.Q[:0], p.Scale[:0]
		p.N, p.ChunkLen = 0, 0
		p.Form = compress.KindNone
	}
	return d.Err
}

// UnmarshalPayload decodes one payload from the front of b, returning the
// unconsumed remainder.
func UnmarshalPayload(p *compress.Payload, b []byte) ([]byte, error) {
	d := Dec{B: b}
	if err := DecodePayload(p, &d); err != nil {
		return d.B, err
	}
	return d.B, nil
}

// grow64 returns s resized to n, reusing capacity.
func grow64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growI32 returns s resized to n, reusing capacity.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growI8 returns s resized to n, reusing capacity.
func growI8(s []int8, n int) []int8 {
	if cap(s) < n {
		return make([]int8, n)
	}
	return s[:n]
}
