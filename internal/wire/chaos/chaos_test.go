package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"

	"repro/internal/wire"
)

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Spec
	}{
		{"reset", Spec{Kind: KindReset, Frac: 0.1}},
		{"reset:0.01", Spec{Kind: KindReset, Frac: 0.01}},
		{"slow:0.3:0.05", Spec{Kind: KindSlow, Frac: 0.3, Param: 0.05}},
		{"slow", Spec{Kind: KindSlow, Frac: 0.1, Param: 0.05}},
		{"partition:0.5:2", Spec{Kind: KindPartition, Frac: 0.5, Param: 2}},
		{"truncate:1", Spec{Kind: KindTruncate, Frac: 1}},
		{"reorder:0.25", Spec{Kind: KindReorder, Frac: 0.25}},
	} {
		got, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "reset:0", "reset:1.5", "slow:0.5:0", "explode:0.1", "reset:0.1:2:3", "reset:x"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) unexpectedly succeeded", bad)
		}
	}
	specs, err := ParseList("reset:0.01, slow:0.2:0.01")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Kind != KindReset || specs[1].Kind != KindSlow {
		t.Fatalf("ParseList = %+v", specs)
	}
	if specs[1].String() != "slow:0.2:0.01" {
		t.Fatalf("String() = %q", specs[1].String())
	}
}

// echoUpstream accepts one connection and echoes every frame back.
func echoUpstream(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				var fr wire.Frame
				var buf []byte
				for {
					if err := wire.ReadFrame(c, &fr); err != nil {
						return
					}
					buf, err = wire.WriteFrame(c, fr.Type, fr.Body, buf)
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln
}

// startProxy wires a proxy in front of upstream and returns its address.
func startProxy(t *testing.T, upstream string, specs []Spec, seed uint64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := New(ln, upstream, specs, seed)
	go p.Run()
	t.Cleanup(func() { p.Close() })
	return ln.Addr().String()
}

// TestTransparent pins that a fault-free proxy forwards frames intact in
// both directions.
func TestTransparent(t *testing.T) {
	up := echoUpstream(t)
	defer up.Close()
	addr := startProxy(t, up.Addr().String(), nil, 1)

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	body := []byte("through the looking glass")
	var buf []byte
	var fr wire.Frame
	for i := 0; i < 10; i++ {
		if buf, err = wire.WriteFrame(c, wire.FrameHello, body, buf); err != nil {
			t.Fatal(err)
		}
		if err := wire.ReadFrame(c, &fr); err != nil {
			t.Fatal(err)
		}
		if fr.Type != wire.FrameHello || !bytes.Equal(fr.Body, body) {
			t.Fatalf("round trip %d mangled: type %d body %q", i, fr.Type, fr.Body)
		}
	}
}

// TestReset pins that a certain reset kills the connection at the first
// frame.
func TestReset(t *testing.T) {
	up := echoUpstream(t)
	defer up.Close()
	addr := startProxy(t, up.Addr().String(), []Spec{{Kind: KindReset, Frac: 1}}, 1)

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err = wire.WriteFrame(c, wire.FrameHello, []byte("doomed"), nil); err != nil {
		return // reset can already surface on write
	}
	var fr wire.Frame
	if err := wire.ReadFrame(c, &fr); err == nil {
		t.Fatal("read succeeded through a frac-1 reset proxy")
	}
}

// TestTruncateSurfacesDecodeError pins the truncation contract: the
// receiver's decoder errors on a cut frame, never misparses it.
func TestTruncateSurfacesDecodeError(t *testing.T) {
	up := echoUpstream(t)
	defer up.Close()
	addr := startProxy(t, up.Addr().String(), []Spec{{Kind: KindTruncate, Frac: 1}}, 1)

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err = wire.WriteFrame(c, wire.FrameHello, make([]byte, 64), nil); err != nil {
		return
	}
	var fr wire.Frame
	if err := wire.ReadFrame(c, &fr); err == nil {
		t.Fatal("decoded a truncated frame")
	}
}

// countForwarded pushes frames through a reset proxy until it trips and
// returns how many made it.
func countForwarded(t *testing.T, upstream string, seed uint64) int {
	t.Helper()
	addr := startProxy(t, upstream, []Spec{{Kind: KindReset, Frac: 0.2}}, seed)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var buf []byte
	var fr wire.Frame
	n := 0
	for i := 0; i < 200; i++ {
		if buf, err = wire.WriteFrame(c, wire.FrameHello, []byte("x"), buf); err != nil {
			break
		}
		if err := wire.ReadFrame(c, &fr); err != nil {
			break
		}
		n++
	}
	if n == 200 {
		t.Fatal("frac-0.2 reset never fired in 200 frames")
	}
	return n
}

// TestDeterministic pins replayability: the same seed injects the reset
// at the same frame.
func TestDeterministic(t *testing.T) {
	up := echoUpstream(t)
	defer up.Close()
	a := countForwarded(t, up.Addr().String(), 7)
	b := countForwarded(t, up.Addr().String(), 7)
	if a != b {
		t.Fatalf("same seed forwarded %d vs %d frames", a, b)
	}
}

// TestReorder pins the swap: with a certain reorder on an echo path the
// frames still all arrive, pairwise swapped.
func TestReorder(t *testing.T) {
	up := echoUpstream(t)
	defer up.Close()
	// Reorder only client→upstream (seed-derived per direction, but with
	// frac 1 both directions swap; the echo then double-swaps, so pin
	// arrival of all bodies rather than exact order).
	addr := startProxy(t, up.Addr().String(), []Spec{{Kind: KindReorder, Frac: 1}}, 1)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for i := byte(0); i < 4; i++ {
		if buf, err = wire.WriteFrame(c, wire.FrameHello, []byte{i}, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Half-close the write side so held frames flush and reads drain.
	if cw, ok := c.(*net.TCPConn); ok {
		cw.CloseWrite()
	}
	got := make(map[byte]bool)
	var fr wire.Frame
	for {
		if err := wire.ReadFrame(c, &fr); err != nil {
			if err != io.EOF {
				t.Logf("read ended: %v", err)
			}
			break
		}
		got[fr.Body[0]] = true
	}
	c.Close()
	for i := byte(0); i < 4; i++ {
		if !got[i] {
			t.Fatalf("frame %d never arrived (got %v)", i, got)
		}
	}
}
