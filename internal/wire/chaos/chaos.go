// Package chaos is a deterministic fault-injecting TCP proxy for the
// flserver wire protocol. It sits between workers and the server
// (cmd/chaosproxy) and perturbs the byte stream at frame granularity:
// connection resets, stalls, frame truncation, added latency, and frame
// reordering. Unlike internal/fault — which models *client* failures
// inside the simulation's virtual clock — chaos attacks the real
// transport underneath fl.Serve, which is exactly what the failover
// machinery (DESIGN.md §12) exists to survive.
//
// Every decision is drawn from internal/rng streams derived from the
// proxy seed per connection and direction, so a chaos run is replayable:
// the same seed against the same connection arrival order injects the
// same faults at the same frames.
package chaos

import (
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/wire"
)

// Kind names one transport failure mode.
type Kind string

const (
	// KindReset closes both sides of the connection mid-stream (a peer
	// RST). The server routes the dead worker through failover; the
	// worker sees a read error and may re-dial.
	KindReset Kind = "reset"
	// KindSlow sleeps Param seconds before forwarding a frame (tail
	// latency on the real clock; modeled time is unaffected).
	KindSlow Kind = "slow"
	// KindTruncate forwards only the first half of a frame and then
	// resets — the receiver's frame decoder must fail loudly, never
	// misparse.
	KindTruncate Kind = "truncate"
	// KindPartition stalls the direction for Param seconds (a transient
	// network partition; long stalls trip the server's heartbeat).
	KindPartition Kind = "partition"
	// KindReorder holds a frame back and delivers it after the next one.
	// The wire protocol is order-sensitive, so receivers surface this as
	// a protocol error on streams where it matters.
	KindReorder Kind = "reorder"
)

// Spec declares one chaos fault: per-frame probability plus the
// kind-specific parameter (seconds for slow/partition).
type Spec struct {
	Kind  Kind
	Frac  float64
	Param float64
}

// Validate reports malformed specs.
func (s Spec) Validate() error {
	if !(s.Frac > 0 && s.Frac <= 1) {
		return fmt.Errorf("chaos: %s frac %v must be in (0,1]", s.Kind, s.Frac)
	}
	switch s.Kind {
	case KindReset, KindTruncate, KindReorder:
	case KindSlow, KindPartition:
		if !(s.Param > 0) || math.IsInf(s.Param, 0) {
			return fmt.Errorf("chaos: %s delay %v must be a finite value > 0", s.Kind, s.Param)
		}
	default:
		return fmt.Errorf("chaos: unknown kind %q (valid: reset, slow, truncate, partition, reorder)", s.Kind)
	}
	return nil
}

// String renders the spec in Parse syntax.
func (s Spec) String() string {
	switch s.Kind {
	case KindSlow, KindPartition:
		return fmt.Sprintf("%s:%g:%g", s.Kind, s.Frac, s.Param)
	default:
		return fmt.Sprintf("%s:%g", s.Kind, s.Frac)
	}
}

// Parse parses one spec in the CLI syntax "kind[:frac[:param]]",
// mirroring fault.ParseFault:
//
//	reset:0.01          1% of frames reset the connection
//	slow:0.3:0.05       30% of frames are delayed 50ms
//	truncate:0.02       2% of frames are cut mid-body, then reset
//	partition:0.005:2   0.5% of frames stall the direction for 2s
//	reorder:0.1         10% of frames are swapped with their successor
func Parse(s string) (Spec, error) {
	parts := strings.Split(s, ":")
	if len(parts) > 3 {
		return Spec{}, fmt.Errorf("chaos: %q has too many fields (want kind[:frac[:param]])", s)
	}
	spec := Spec{Kind: Kind(strings.TrimSpace(parts[0])), Frac: 0.1}
	switch spec.Kind {
	case KindSlow:
		spec.Param = 0.05
	case KindPartition:
		spec.Param = 1
	}
	if len(parts) >= 2 {
		f, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return Spec{}, fmt.Errorf("chaos: bad frac %q: %w", parts[1], err)
		}
		spec.Frac = f
	}
	if len(parts) == 3 {
		p, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return Spec{}, fmt.Errorf("chaos: bad param %q: %w", parts[2], err)
		}
		spec.Param = p
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// ParseList parses a comma-separated list of specs.
func ParseList(s string) ([]Spec, error) {
	var specs []Spec
	for _, part := range strings.Split(s, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		sp, err := Parse(part)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// Proxy forwards framed connections to an upstream address, injecting
// the configured faults. Per-frame fault draws come from rng streams
// derived per (connection index, direction), consumed one per spec per
// frame in spec order — so which frames are hit depends only on the
// seed, the spec list, and each connection's own frame sequence, never
// on goroutine scheduling.
type Proxy struct {
	ln       net.Listener
	upstream string
	specs    []Spec

	mu    sync.Mutex
	root  *rng.RNG
	conns int
	wg    sync.WaitGroup
	done  chan struct{}
}

// New builds a proxy that accepts on ln and forwards to upstream.
func New(ln net.Listener, upstream string, specs []Spec, seed uint64) *Proxy {
	return &Proxy{
		ln:       ln,
		upstream: upstream,
		specs:    specs,
		root:     rng.New(seed),
		done:     make(chan struct{}),
	}
}

// Run accepts and forwards connections until Close (or a listener
// error). Each accepted connection gets an upstream dial and two framed
// pipes; a dial failure closes the inbound connection and keeps
// accepting.
func (p *Proxy) Run() error {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return nil
			default:
				return err
			}
		}
		u, err := net.Dial("tcp", p.upstream)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		i := p.conns
		p.conns++
		toUp := p.root.Derive("chaos", 2*i)
		toDown := p.root.Derive("chaos", 2*i+1)
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(c, u, toUp)
		go p.pipe(u, c, toDown)
	}
}

// Close stops accepting and tears down the forwarding goroutines (their
// connections close when either side does).
func (p *Proxy) Close() error {
	close(p.done)
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// pipe forwards frames src→dst, applying the fault specs to each frame.
// A clean EOF half-closes the forward direction so the reverse pipe can
// keep draining (the peers decide when the connection dies); injected
// resets and truncations hard-close both sides — that is the failure
// being simulated.
func (p *Proxy) pipe(src, dst net.Conn, r *rng.RNG) {
	defer p.wg.Done()
	abort := func() {
		src.Close()
		dst.Close()
	}
	var fr wire.Frame
	var frame, held []byte
	haveHeld := false
	for {
		if err := wire.ReadFrame(src, &fr); err != nil {
			if haveHeld {
				_, _ = dst.Write(held)
			}
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			} else {
				dst.Close()
			}
			if tc, ok := src.(*net.TCPConn); ok {
				tc.CloseRead()
			} else {
				src.Close()
			}
			return
		}
		frame = wire.BeginFrame(frame[:0], fr.Type)
		frame = append(frame, fr.Body...)
		wire.EndFrame(frame, 0)

		reorder := false
		for _, sp := range p.specs {
			// One draw per spec per frame, hit or miss, so the stream
			// position is a pure function of the frame index.
			if r.Float64() >= sp.Frac {
				continue
			}
			switch sp.Kind {
			case KindReset:
				abort()
				return
			case KindSlow, KindPartition:
				time.Sleep(time.Duration(sp.Param * float64(time.Second)))
			case KindTruncate:
				_, _ = dst.Write(frame[:len(frame)/2])
				abort()
				return
			case KindReorder:
				reorder = true
			}
		}
		if reorder && !haveHeld {
			held = append(held[:0], frame...)
			haveHeld = true
			continue
		}
		if _, err := dst.Write(frame); err != nil {
			abort()
			return
		}
		if haveHeld {
			haveHeld = false
			if _, err := dst.Write(held); err != nil {
				abort()
				return
			}
		}
	}
}
