package wire

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/rng"
)

// samplePayloads builds one payload per form from a deterministic vector,
// using the real codecs so the encodings exercised are the ones the engine
// produces.
func samplePayloads(t testing.TB, d int) map[string]*compress.Payload {
	t.Helper()
	r := rng.New(7)
	x := make([]float64, d)
	for i := range x {
		x[i] = r.Normal(0, 1)
	}
	scratch := make([]float64, d)
	out := map[string]*compress.Payload{}
	for name, codec := range map[string]compress.Codec{
		"none": compress.None{},
		"topk": &compress.TopK{Frac: 0.05},
		"int8": &compress.Int8{Chunk: 64},
	} {
		p := &compress.Payload{}
		codec.Encode(p, x, rng.New(11), scratch)
		out[name] = p
	}
	return out
}

func samePayload(t *testing.T, want, got *compress.Payload) {
	t.Helper()
	if want.Form != got.Form || want.N != got.N || want.ChunkLen != got.ChunkLen {
		t.Fatalf("payload header mismatch: want {%v %d %d}, got {%v %d %d}",
			want.Form, want.N, want.ChunkLen, got.Form, got.N, got.ChunkLen)
	}
	if len(want.Idx) != len(got.Idx) || len(want.Val) != len(got.Val) ||
		len(want.Q) != len(got.Q) || len(want.Scale) != len(got.Scale) {
		t.Fatalf("payload length mismatch")
	}
	for i := range want.Idx {
		if want.Idx[i] != got.Idx[i] {
			t.Fatalf("Idx[%d]: want %d, got %d", i, want.Idx[i], got.Idx[i])
		}
	}
	for i := range want.Val {
		if math.Float64bits(want.Val[i]) != math.Float64bits(got.Val[i]) {
			t.Fatalf("Val[%d]: want %x, got %x", i, want.Val[i], got.Val[i])
		}
	}
	for i := range want.Q {
		if want.Q[i] != got.Q[i] {
			t.Fatalf("Q[%d]: want %d, got %d", i, want.Q[i], got.Q[i])
		}
	}
	for i := range want.Scale {
		if math.Float64bits(want.Scale[i]) != math.Float64bits(got.Scale[i]) {
			t.Fatalf("Scale[%d]: want %x, got %x", i, want.Scale[i], got.Scale[i])
		}
	}
}

func TestPayloadRoundtrip(t *testing.T) {
	for name, p := range samplePayloads(t, 512) {
		t.Run(name, func(t *testing.T) {
			buf := AppendPayload(nil, p)
			if got, want := len(buf), PayloadWireSize(p); got != want {
				t.Fatalf("PayloadWireSize = %d, encoded %d bytes", want, got)
			}
			var dec compress.Payload
			rest, err := UnmarshalPayload(&dec, buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(rest) != 0 {
				t.Fatalf("%d unconsumed bytes", len(rest))
			}
			samePayload(t, p, &dec)
		})
	}
}

// TestTopKWireBeatsInMemory pins the tentpole size claim: varint index
// deltas make the top-k wire encoding smaller than the in-memory
// 12 B/coordinate accounting of Payload.Bytes.
func TestTopKWireBeatsInMemory(t *testing.T) {
	p := samplePayloads(t, 4096)["topk"]
	if len(p.Idx) == 0 {
		t.Fatal("empty topk payload")
	}
	wireSize := PayloadWireSize(p)
	if wireSize >= p.Bytes() {
		t.Fatalf("wire encoding %d B not smaller than in-memory %d B for k=%d", wireSize, p.Bytes(), len(p.Idx))
	}
	perCoord := float64(wireSize) / float64(len(p.Idx))
	if perCoord >= 12 {
		t.Fatalf("wire cost %.2f B/coord, want < 12", perCoord)
	}
}

// TestPayloadRoundtripReusesBuffers pins the allocation-free contract:
// marshal into a warm buffer and unmarshal into a warm payload allocate
// nothing.
func TestPayloadRoundtripReusesBuffers(t *testing.T) {
	for name, p := range samplePayloads(t, 1024) {
		t.Run(name, func(t *testing.T) {
			buf := AppendPayload(nil, p)
			var dec compress.Payload
			if _, err := UnmarshalPayload(&dec, buf); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(50, func() {
				buf = AppendPayload(buf[:0], p)
				if _, err := UnmarshalPayload(&dec, buf); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("warm roundtrip allocated %.1f times per op", allocs)
			}
		})
	}
}

func TestDecodeRejectsCorruptPayloads(t *testing.T) {
	good := AppendPayload(nil, samplePayloads(t, 256)["topk"])
	cases := map[string][]byte{
		"empty":          {},
		"unknown form":   {0x7f},
		"truncated":      good[:len(good)-3],
		"forged count":   {formDense, 0xff, 0xff, 0xff, 0x7f},
		"zero delta":     {formTopK, 4, 2, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"idx past n":     {formTopK, 2, 1, 3, 0, 0, 0, 0, 0, 0, 0, 0},
		"chunkless int8": {formInt8, 4, 0},
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			var p compress.Payload
			if _, err := UnmarshalPayload(&p, b); err == nil {
				t.Fatalf("decode of %q input succeeded", name)
			}
			if p.N != 0 || len(p.Idx) != 0 || len(p.Val) != 0 || len(p.Q) != 0 || len(p.Scale) != 0 {
				t.Fatal("failed decode left partial state in payload")
			}
		})
	}
}

func TestFrameRoundtrip(t *testing.T) {
	var net bytes.Buffer
	body := []byte("hello federation")
	buf, err := WriteFrame(&net, FrameHello, body, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderLen+len(body) {
		t.Fatalf("frame length %d, want %d", len(buf), HeaderLen+len(body))
	}
	var fr Frame
	if err := ReadFrame(&net, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Type != FrameHello || !bytes.Equal(fr.Body, body) {
		t.Fatalf("frame roundtrip mismatch: type %d body %q", fr.Type, fr.Body)
	}
}

func TestReadFrameRejectsHostileHeaders(t *testing.T) {
	var fr Frame
	// Wrong magic.
	if err := ReadFrame(bytes.NewReader([]byte{0x00, Version, 1, 0, 0, 0, 0}), &fr); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic accepted: %v", err)
	}
	// Wrong version.
	if err := ReadFrame(bytes.NewReader([]byte{Magic, 99, 1, 0, 0, 0, 0}), &fr); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version accepted: %v", err)
	}
	// Forged length over a truncated stream must fail without committing
	// the claimed allocation.
	forged := []byte{Magic, Version, 1, 0xff, 0xff, 0xff, 0x0f}
	fr = Frame{}
	if err := ReadFrame(bytes.NewReader(forged), &fr); err == nil {
		t.Fatal("forged length accepted")
	}
	if cap(fr.Body) > 2*growChunk {
		t.Fatalf("forged length allocated %d bytes", cap(fr.Body))
	}
	// Length beyond MaxFrame rejected outright.
	huge := []byte{Magic, Version, 1, 0xff, 0xff, 0xff, 0xff}
	if err := ReadFrame(bytes.NewReader(huge), &fr); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("over-limit length accepted: %v", err)
	}
}

func TestReadFrameReusesBody(t *testing.T) {
	body := make([]byte, 3*growChunk+17)
	for i := range body {
		body[i] = byte(i)
	}
	var net bytes.Buffer
	if _, err := WriteFrame(&net, FrameDispatch, body, nil); err != nil {
		t.Fatal(err)
	}
	var fr Frame
	if err := ReadFrame(&net, &fr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fr.Body, body) {
		t.Fatal("multi-chunk body mismatch")
	}
	// A warm Frame re-reading an equal-sized body allocates nothing.
	net.Reset()
	scratch := make([]byte, 0, HeaderLen+len(body))
	if _, err := WriteFrame(&net, FrameDispatch, body, scratch); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(nil)
	readAllocs := testing.AllocsPerRun(10, func() {
		r.Reset(net.Bytes())
		if err := ReadFrame(r, &fr); err != nil {
			t.Fatal(err)
		}
	})
	if readAllocs != 0 {
		t.Fatalf("warm ReadFrame allocated %.1f times", readAllocs)
	}
}
