package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/report"
)

// freeloaderIDs returns the paper's Table II/VIII setup: 40% of clients
// (8 of 20) replaced by freeloaders, spread evenly across the client
// range so every label-diversity group keeps honest members.
func freeloaderIDs(clients int) []int {
	count := clients * 2 / 5
	ids := make([]int, count)
	for i := range ids {
		ids[i] = (i*clients + clients/2) / count % clients
	}
	return ids
}

// Table2 reproduces "Average value of α_i of different groups of clients":
// TACO's correction coefficients grouped by label diversity (Groups A/B/C)
// plus freeloaders, on four image datasets.
func Table2(r *Runner) (*report.Table, error) {
	datasets := []string{"mnist", "fmnist", "svhn", "cifar10"}
	t := &report.Table{Title: "Table II: Mean TACO α per client group (mean±std over rounds)"}
	t.Columns = append([]string{"Group"}, datasets...)
	rows := map[string][]string{"Group A": {"Group A"}, "Group B": {"Group B"}, "Group C": {"Group C"}, "Freeloaders": {"Freeloaders"}}
	order := []string{"Group A", "Group B", "Group C", "Freeloaders"}

	for _, ds := range datasets {
		profile, err := ProfileFor(ds, r.Scale)
		if err != nil {
			return nil, err
		}
		cfg, shards, test, groupOf, err := profile.Materialize(r.Seed)
		if err != nil {
			return nil, err
		}
		frees := freeloaderIDs(profile.Clients)
		cfg.Freeloaders = frees
		// Detection off: Table II observes α including freeloaders for the
		// whole run, without expelling anyone.
		tcfg := core.Recommended()
		taco := core.New(tcfg)
		net, err := profile.Model()
		if err != nil {
			return nil, err
		}
		if _, err := fl.Run(*cfg, taco, net, shards, test); err != nil {
			return nil, err
		}

		freeSet := make(map[int]bool, len(frees))
		for _, id := range frees {
			freeSet[id] = true
		}
		groupVals := map[string][]float64{}
		history := taco.AlphaHistory()
		// Skip the first quarter of rounds: α needs a few rounds to reflect
		// the clients' data rather than the 0.1 initialization.
		for t := len(history) / 4; t < len(history); t++ {
			for id, alpha := range history[t] {
				key := ""
				switch {
				case freeSet[id]:
					key = "Freeloaders"
				case groupOf[id] == 0:
					key = "Group A"
				case groupOf[id] == 1:
					key = "Group B"
				default:
					key = "Group C"
				}
				groupVals[key] = append(groupVals[key], alpha)
			}
		}
		for _, g := range order {
			mean, std := metrics.MeanStd(groupVals[g])
			rows[g] = append(rows[g], fmt.Sprintf("%.2f±%.2f", mean, std))
		}
	}
	for _, g := range order {
		t.AddRow(rows[g]...)
	}
	t.Notes = append(t.Notes,
		"paper shape: α rises with label diversity (A < B < C) and freeloaders stand far above",
		"all honest groups (paper: 0.75-0.88), enabling threshold detection (Eq. 10).")
	return t, nil
}

// Table8 reproduces "Sensitivity of thresholds λ and κ": freeloader
// detection TPR/FPR on FMNIST over a grid of suspicion thresholds κ and
// strike limits λ.
func Table8(r *Runner) (*report.Table, error) {
	profile, err := ProfileFor("fmnist", r.Scale)
	if err != nil {
		return nil, err
	}
	kappas := []float64{0.4, 0.5, 0.6, 0.8, 0.9, 1.0}
	lambdas := []struct {
		label string
		value func(T int) int
	}{
		{"T/10", func(T int) int { return max(T/10, 1) }},
		{"T/5", func(T int) int { return max(T/5, 1) }},
		{"T/2", func(T int) int { return max(T/2, 1) }},
	}
	t := &report.Table{Title: "Table VIII: Freeloader detection sensitivity (FMNIST, 8/20 freeloaders)"}
	t.Columns = []string{"κ"}
	for _, l := range lambdas {
		t.Columns = append(t.Columns, "λ="+l.label+" TPR", "λ="+l.label+" FPR")
	}
	frees := freeloaderIDs(profile.Clients)
	freeSet := make(map[int]bool, len(frees))
	for _, id := range frees {
		freeSet[id] = true
	}
	for _, kappa := range kappas {
		row := []string{fmt.Sprintf("%.1f", kappa)}
		for _, l := range lambdas {
			key := fmt.Sprintf("table8/k%.1f/l%s", kappa, l.label)
			res, err := r.RunOne(key, "fmnist", "TACO", func(cfg *fl.Config, alg fl.Algorithm) {
				cfg.Freeloaders = frees
				taco := alg.(*core.TACO)
				tcfg := core.Recommended()
				tcfg.DetectFreeloaders = true
				tcfg.Kappa = kappa
				tcfg.MaxStrikes = l.value(cfg.Rounds)
				*taco = *core.New(tcfg)
			})
			if err != nil {
				return nil, err
			}
			tp, fp := 0, 0
			for id := range res.Expelled {
				if freeSet[id] {
					tp++
				} else {
					fp++
				}
			}
			tpr := float64(tp) / float64(len(frees))
			fpr := float64(fp) / float64(profile.Clients-len(frees))
			row = append(row, report.Pct(tpr), report.Pct(fpr))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper shape: a wide κ band (≈0.5-0.8) detects all freeloaders with zero false positives;",
		"κ=1.0 detects nothing; small κ with lenient λ starts flagging benign clients.")
	return t, nil
}
