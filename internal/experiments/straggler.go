package experiments

import (
	"fmt"

	"repro/internal/fl"
	"repro/internal/report"
	"repro/internal/simclock"
)

// stragglerAlgs are the methods compared by the straggler study: the
// plain baseline, the uniform-correction method the paper blames for
// over-correction, and TACO.
func stragglerAlgs() []string { return []string{"FedAvg", "Scaffold", "TACO"} }

// Straggler is the heterogeneous-client scenario study (not a paper
// artifact): it trains TACO against FedAvg and Scaffold on adult under
// the three named device fleets and all three aggregation policies,
// reporting final accuracy plus the scheduler's scenario metrics —
// cumulative modeled wall time, deadline drops, and update staleness.
func Straggler(r *Runner) (*report.Table, error) {
	t := &report.Table{Title: "Straggler study: device heterogeneity × aggregation policy (adult, final accuracy)"}
	t.Columns = []string{"Fleet", "Method", "sync", "t_wall", "deadline", "drops", "async", "stale"}

	base, err := ProfileFor("adult", r.Scale)
	if err != nil {
		return nil, err
	}
	// One nominal modeled round anchors the deadline and the extreme
	// fleet's availability period.
	net, err := base.Model()
	if err != nil {
		return nil, err
	}
	nominal := simclock.RoundSeconds(net.GradFlops(base.BatchSize), base.LocalSteps, simclock.Plain())

	for _, fleetName := range simclock.FleetNames() {
		fleet, err := simclock.FleetByName(fleetName, base.Clients, nominal, r.Seed)
		if err != nil {
			return nil, err
		}
		for _, alg := range stragglerAlgs() {
			row := []string{fleetName, alg}
			var syncWall float64
			for _, policy := range []fl.AggregationPolicy{fl.PolicySync, fl.PolicyDeadline, fl.PolicyAsync} {
				key := fmt.Sprintf("straggler/%s/%s/%s", fleetName, alg, policy)
				res, err := r.RunOne(key, "adult", alg, func(cfg *fl.Config, _ fl.Algorithm) {
					cfg.Rounds = stragglerRounds(r.Scale)
					cfg.Devices = fleet
					cfg.Policy = policy
					switch policy {
					case fl.PolicyDeadline:
						// 1.5× the nominal round admits mildly slow devices
						// and cuts off the hard stragglers.
						cfg.RoundDeadlineSec = 1.5 * nominal
					case fl.PolicyAsync:
						cfg.AsyncBuffer = max(base.Clients/4, 1)
					}
				})
				if err != nil {
					return nil, err
				}
				run := res.Run
				acc := "×"
				if !run.Diverged {
					acc = report.Pct(run.FinalAccuracy())
				}
				switch policy {
				case fl.PolicySync:
					if n := len(run.Rounds); n > 0 {
						syncWall = run.Rounds[n-1].CumModeledSec
					}
					row = append(row, acc, report.Sec(syncWall))
				case fl.PolicyDeadline:
					row = append(row, acc, fmt.Sprintf("%d", run.TotalDropped()))
				case fl.PolicyAsync:
					row = append(row, acc, fmt.Sprintf("%.1f", run.MeanStaleness()))
				}
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"t_wall: cumulative modeled seconds the synchronous server spends waiting for its",
		"slowest device; drops: clients cut past the 1.5×-nominal round deadline; stale:",
		"mean staleness (server versions) of buffered async updates. Expected shape: the",
		"sync column pays for stragglers in wall time, deadline trades them for drops, and",
		"async for staleness that the 1/√(1+s)-damped aggregation absorbs.")
	return t, nil
}

// stragglerRounds trims the study's round budget per scale: 27 runs share
// the table, so each stays small.
func stragglerRounds(s Scale) int {
	switch s {
	case ScaleBench:
		return 5
	case ScaleFull:
		return 20
	default:
		return 10
	}
}
