package experiments

import (
	"fmt"

	"repro/internal/report"
)

// Table5 reproduces "Round-to-Accuracy performance of various algorithms
// across different datasets": final accuracy after the budgeted rounds and
// the rounds needed to reach each dataset's target accuracy ("×" marks a
// divergence, "R+" a run that never reached the target).
func Table5(r *Runner) (*report.Table, error) {
	datasets := SweepDatasets()
	algs := AlgorithmNames()
	runs, err := r.Sweep(datasets, algs)
	if err != nil {
		return nil, err
	}
	t := &report.Table{Title: "Table V: Round-to-Accuracy across datasets (reproduction)"}
	t.Columns = []string{"Method"}
	for _, ds := range datasets {
		p, err := ProfileFor(ds, r.Scale)
		if err != nil {
			return nil, err
		}
		t.Columns = append(t.Columns,
			fmt.Sprintf("%s Acc@%dR", ds, p.Rounds),
			fmt.Sprintf("Rounds(%.0f%%)", p.TargetAcc*100))
	}
	for _, alg := range algs {
		row := []string{alg}
		for _, ds := range datasets {
			p, _ := ProfileFor(ds, r.Scale)
			run := runs[SweepKey(ds, alg)].Run
			if run.Diverged {
				row = append(row, "×", "×")
				continue
			}
			row = append(row, report.Pct(run.FinalAccuracy()))
			if rounds, ok := run.RoundsToAccuracy(p.TargetAcc); ok {
				row = append(row, fmt.Sprintf("%d", rounds))
			} else {
				row = append(row, fmt.Sprintf("%d+", p.Rounds))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper shape: TACO attains the best accuracy on every dataset and the fewest rounds to target;",
		"FedProx and Scaffold trail FedAvg (over-correction), with divergence (×) on the hardest set.")
	return t, nil
}

// Fig4 reproduces "Cumulative local training time required by different
// algorithms to achieve the target accuracy", normalized to FedAvg = 1.
// Entries: "fail" = divergence, ">X" = target never reached (timeout).
func Fig4(r *Runner) (*report.Table, error) {
	datasets := SweepDatasets()
	algs := AlgorithmNames()
	runs, err := r.Sweep(datasets, algs)
	if err != nil {
		return nil, err
	}
	t := &report.Table{Title: "Fig. 4: Normalized modeled time-to-target (FedAvg = 1.00)"}
	t.Columns = append([]string{"Method"}, datasets...)
	base := make(map[string]float64, len(datasets))
	for _, ds := range datasets {
		p, _ := ProfileFor(ds, r.Scale)
		fedavg := runs[SweepKey(ds, "FedAvg")].Run
		if sec, ok := fedavg.ModeledTimeToAccuracy(p.TargetAcc); ok {
			base[ds] = sec
		} else {
			// FedAvg itself timed out; normalize by its total budget.
			base[ds] = fedavg.Rounds[len(fedavg.Rounds)-1].CumModeledSec
		}
	}
	for _, alg := range algs {
		row := []string{alg}
		for _, ds := range datasets {
			p, _ := ProfileFor(ds, r.Scale)
			run := runs[SweepKey(ds, alg)].Run
			switch {
			case run.Diverged:
				row = append(row, "fail")
			default:
				sec, ok := run.ModeledTimeToAccuracy(p.TargetAcc)
				if !ok {
					total := run.Rounds[len(run.Rounds)-1].CumModeledSec
					row = append(row, fmt.Sprintf(">%.2f", total/base[ds]))
				} else {
					row = append(row, fmt.Sprintf("%.2f", sec/base[ds]))
				}
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper shape: TACO is fastest (0.37-0.74 of FedAvg); STEM often exceeds FedAvg's time",
		"despite fewer rounds, because of its per-step second gradient pass.")
	return t, nil
}

// Fig2 reproduces the re-evaluation curves on FMNIST and SVHN:
// round-to-accuracy (2a, 2b) and modeled time-to-accuracy (2c, 2d).
func Fig2(r *Runner) ([]*report.Figure, error) {
	algs := AlgorithmNames()
	var figures []*report.Figure
	for _, ds := range []string{"fmnist", "svhn"} {
		roundFig := &report.Figure{
			Title:  fmt.Sprintf("Fig. 2 Round-Accuracy (%s)", ds),
			XLabel: "round", YLabel: "test accuracy",
		}
		timeFig := &report.Figure{
			Title:  fmt.Sprintf("Fig. 2 Time-Accuracy (%s)", ds),
			XLabel: "modeled computation seconds", YLabel: "test accuracy",
		}
		for _, alg := range algs {
			res, err := r.RunOne(SweepKey(ds, alg), ds, alg, nil)
			if err != nil {
				return nil, err
			}
			run := res.Run
			var xs, ts, ys []float64
			for _, rec := range run.Rounds {
				xs = append(xs, float64(rec.Index+1))
				ts = append(ts, rec.CumModeledSec)
				ys = append(ys, rec.Accuracy)
			}
			roundFig.Series = append(roundFig.Series, report.Series{Label: alg, X: xs, Y: ys})
			timeFig.Series = append(timeFig.Series, report.Series{Label: alg, X: ts, Y: ys})
		}
		figures = append(figures, roundFig, timeFig)
	}
	return figures, nil
}

// Fig5 reproduces "Local computation time for clients in every FL round"
// for the four model families: modeled per-round seconds (deterministic)
// and the median measured per-round seconds of the slowest client.
func Fig5(r *Runner) (*report.Table, error) {
	cases := []string{"adult", "svhn", "cifar100", "shakespeare"}
	algs := AlgorithmNames()
	t := &report.Table{Title: "Fig. 5: Per-round client computation time (modeled s | measured s)"}
	t.Columns = append([]string{"Method"}, []string{"adult-MLP", "svhn-CNN", "cifar100-ResNet", "shakespeare-LSTM"}...)
	type cell struct{ modeled, measured float64 }
	cells := make(map[string]cell, len(cases)*len(algs))
	for _, ds := range cases {
		for _, alg := range algs {
			res, err := r.RunOne(SweepKey(ds, alg), ds, alg, nil)
			if err != nil {
				return nil, err
			}
			cells[ds+"/"+alg] = cell{
				modeled:  res.Run.MedianSlowestModeledSec(),
				measured: res.Run.MedianSlowestMeasuredSec(),
			}
		}
	}
	for _, alg := range algs {
		row := []string{alg}
		for _, ds := range cases {
			c := cells[ds+"/"+alg]
			row = append(row, fmt.Sprintf("%.3f | %.3f", c.modeled, c.measured))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper shape: FedAvg and FoolsGold are cheapest; STEM is the most expensive per round;",
		"FedProx/FedACG pay for in-loss regularizers; TACO adds only a small correction AXPY.")
	return t, nil
}
