package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/aggstack"
	"repro/internal/fl"
	"repro/internal/report"
)

// fedoptAlgs are the inner aggregation rules the server-side stack is
// composed over: the undefended baseline, the variance-reduced method,
// and TACO's tailored α-weights.
func fedoptAlgs() []string { return []string{"FedAvg", "Scaffold", "TACO"} }

// fedoptServerConfig is one server-side column of the grid: a robust
// pre-aggregation stack and a FedOpt optimizer composed around the rule.
type fedoptServerConfig struct {
	name  string
	stack string
	opt   string
}

// fedoptServerConfigs builds the column grid: the bare rule, the TFF
// adaptive zeroing+clipping stack, and the stack with FedAdam on top.
func fedoptServerConfigs() []fedoptServerConfig {
	return []fedoptServerConfig{
		{name: "bare"},
		{name: "+zeroing|clip", stack: "zeroing|clip"},
		{name: "+stack+adam", stack: "zeroing|clip", opt: "adam:0.1"},
	}
}

// fedoptAttacks is the update-level attack grid the stack defends
// against, plus the clean baseline: the stack acts on update geometry
// (norms), so the magnitude attacks (scale, deltanoise) are its home
// turf and signflip probes that it does not harm direction-only attacks.
func fedoptAttacks() []robustnessAttack {
	return []robustnessAttack{
		{name: "clean"},
		{name: "signflip", spec: &adversary.Spec{Kind: adversary.KindSignFlip, Frac: 0.3}},
		{name: "scale", spec: &adversary.Spec{Kind: adversary.KindScale, Frac: 0.3, Scale: 5}},
		{name: "deltanoise", spec: &adversary.Spec{Kind: adversary.KindDeltaNoise, Frac: 0.3, Scale: 2}},
	}
}

// FedOpt is the composable-aggregation scenario study: the attack grid ×
// inner rules × server-side configurations (bare, stacked, stacked with
// FedAdam), reporting each cell's final accuracy, the weight mass the
// composed pipeline granted the corrupt camp, and how hard the stack
// worked (zeroed/clipped update totals for the stacked+adam column).
func FedOpt(r *Runner) (*report.Table, error) {
	cfgs := fedoptServerConfigs()
	t := &report.Table{Title: "FedOpt: robust-aggregation stack × server optimizer × inner rule (final accuracy | corrupt weight mass)"}
	t.Columns = []string{"Attack", "Data", "Alg"}
	for _, sc := range cfgs {
		t.Columns = append(t.Columns, sc.name)
	}
	t.Columns = append(t.Columns, "zeroed/clipped")

	for _, atk := range fedoptAttacks() {
		for _, ds := range robustnessDatasets(r.Scale) {
			for _, algName := range fedoptAlgs() {
				row := []string{atk.name, ds, algName}
				var engaged string
				for _, sc := range cfgs {
					stack, err := aggstack.ParseStack(sc.stack)
					if err != nil {
						return nil, err
					}
					opt, err := aggstack.ParseServerOpt(sc.opt)
					if err != nil {
						return nil, err
					}
					key := fmt.Sprintf("fedopt/%s/%s/%s/%s", atk.name, ds, algName, sc.name)
					res, err := r.RunOne(key, ds, algName, func(cfg *fl.Config, alg fl.Algorithm) {
						cfg.Rounds = robustnessRounds(r.Scale)
						cfg.AggStack = stack
						cfg.ServerOpt = opt
						if atk.spec != nil {
							cfg.Adversaries = []adversary.Spec{*atk.spec}
						}
					})
					if err != nil {
						return nil, err
					}
					run := res.Run
					cell := "×"
					if !run.Diverged {
						cell = report.Pct(run.FinalAccuracy())
						if atk.spec != nil {
							cell += fmt.Sprintf(" |%.2f", run.MeanCorruptWeight())
						}
					}
					row = append(row, cell)
					if sc.opt != "" {
						engaged = fmt.Sprintf("%d/%d", run.TotalZeroedUpdates(), run.TotalClippedUpdates())
					}
				}
				t.AddRow(append(row, engaged)...)
			}
		}
	}
	t.Notes = append(t.Notes,
		"cell: final accuracy | mean per-round aggregation-weight mass granted the corrupt",
		"camp (head-count share 0.30). Columns compose the same inner rule with the TFF",
		"adaptive zeroing+clipping stack and FedAdam (lr 0.1). Expected shape: the stack",
		"suppresses the magnitude attacks (scale, deltanoise) for every inner rule — corrupt",
		"mass drops below the head-count share as oversized updates are zeroed or clipped",
		"— while leaving the clean column close to bare. zeroed/clipped: totals for the",
		"stacked+adam run.")
	return t, nil
}
