package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/report"
)

// Fig6 reproduces "Performance gain in prior methods using TACO": FedProx
// versus FedProx(TACO) on SVHN and Scaffold versus Scaffold(TACO) on
// CIFAR-10, with FedAvg as the reference.
func Fig6(r *Runner) ([]*report.Figure, error) {
	cases := []struct {
		ds       string
		baseline string
		hybrid   string
	}{
		{"svhn", "FedProx", "FedProx(TACO)"},
		{"cifar10", "Scaffold", "Scaffold(TACO)"},
	}
	var figs []*report.Figure
	for _, c := range cases {
		fig := &report.Figure{
			Title:  fmt.Sprintf("Fig. 6: %s vs %s (%s)", c.baseline, c.hybrid, c.ds),
			XLabel: "round", YLabel: "test accuracy",
		}
		for _, alg := range []string{"FedAvg", c.baseline, c.hybrid} {
			key := SweepKey(c.ds, alg)
			if alg == c.hybrid {
				key = "fig6/" + c.ds + "/" + alg
			}
			res, err := r.RunOne(key, c.ds, alg, nil)
			if err != nil {
				return nil, err
			}
			var xs, ys []float64
			for _, rec := range res.Run.Rounds {
				xs = append(xs, float64(rec.Index+1))
				ys = append(ys, rec.Accuracy)
			}
			label := alg
			if res.Run.Diverged {
				label += " (diverged)"
			}
			fig.Series = append(fig.Series, report.Series{Label: label, X: xs, Y: ys})
		}
		fig.Notes = append(fig.Notes,
			"paper shape: the tailored coefficients rescue the uniform-coefficient method,",
			"lifting it from below FedAvg (or divergence) to above it.")
		figs = append(figs, fig)
	}
	return figs, nil
}

// Table6 reproduces the ablation study: the four combinations of TACO's
// tailored correction (Eq. 8) and tailored aggregation (Eq. 9) on FEMNIST
// and adult under two Dirichlet levels each.
func Table6(r *Runner) (*report.Table, error) {
	type variant struct {
		label     string
		corr, agg bool
	}
	variants := []variant{
		{"corr=no  agg=no", false, false},
		{"corr=no  agg=yes", false, true},
		{"corr=yes agg=no", true, false},
		{"corr=yes agg=yes", true, true},
	}
	cases := []struct {
		ds  string
		phi float64
	}{
		{"femnist", 0.2}, {"femnist", 0.5}, {"adult", 0.1}, {"adult", 0.5},
	}
	t := &report.Table{Title: "Table VI: Ablation of tailored correction and aggregation (final accuracy)"}
	t.Columns = []string{"Variant"}
	for _, c := range cases {
		t.Columns = append(t.Columns, fmt.Sprintf("%s Dir(%.1f)", c.ds, c.phi))
	}
	for _, v := range variants {
		row := []string{v.label}
		for _, c := range cases {
			key := fmt.Sprintf("table6/%s/%.1f/%v/%v", c.ds, c.phi, v.corr, v.agg)
			res, err := r.RunOneWithProfile(key, c.ds, "TACO",
				func(p *Profile) {
					p.Partition = PartDirichlet
					p.DirPhi = c.phi
				},
				func(cfg *fl.Config, alg fl.Algorithm) {
					taco := alg.(*core.TACO)
					tcfg := core.Recommended()
					tcfg.DisableTailoredCorrection = !v.corr
					tcfg.DisableTailoredAggregation = !v.agg
					*taco = *core.New(tcfg)
				})
			if err != nil {
				return nil, err
			}
			row = append(row, report.Pct(res.Run.FinalAccuracy()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper shape: both components help; the tailored correction contributes more than",
		"the tailored aggregation, and the full combination is best.")
	return t, nil
}
