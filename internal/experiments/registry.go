package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Artifact is a rendered reproduction of one paper table or figure.
type Artifact interface {
	Render(w io.Writer)
}

// Runnable produces one experiment's artifacts given a Runner.
type Runnable func(*Runner) ([]Artifact, error)

// registry maps experiment ids to runners. Fig. 1 and Fig. 3 are
// conceptual diagrams with no data; their geometry is property-tested in
// internal/core instead.
var registry = map[string]Runnable{
	"table1": func(r *Runner) ([]Artifact, error) { return one(Table1(r)) },
	"table2": func(r *Runner) ([]Artifact, error) { return one(Table2(r)) },
	"table3": func(r *Runner) ([]Artifact, error) { return one(Table3(r)) },
	"table5": func(r *Runner) ([]Artifact, error) { return one(Table5(r)) },
	"table6": func(r *Runner) ([]Artifact, error) { return one(Table6(r)) },
	"table7": func(r *Runner) ([]Artifact, error) { return one(Table7(r)) },
	"table8": func(r *Runner) ([]Artifact, error) { return one(Table8(r)) },
	"fig2": func(r *Runner) ([]Artifact, error) {
		figs, err := Fig2(r)
		return figArtifacts(figs, err)
	},
	"fig4": func(r *Runner) ([]Artifact, error) { return one(Fig4(r)) },
	"fig5": func(r *Runner) ([]Artifact, error) { return one(Fig5(r)) },
	"fig6": func(r *Runner) ([]Artifact, error) {
		figs, err := Fig6(r)
		return figArtifacts(figs, err)
	},
	"fig7": func(r *Runner) ([]Artifact, error) { return one(Fig7(r)) },
	// Scenario studies beyond the paper's artifacts.
	"straggler":   func(r *Runner) ([]Artifact, error) { return one(Straggler(r)) },
	"scale1k":     func(r *Runner) ([]Artifact, error) { return one(Scale1k(r)) },
	"scale100k":   func(r *Runner) ([]Artifact, error) { return one(Scale100k(r)) },
	"robustness":  func(r *Runner) ([]Artifact, error) { return one(Robustness(r)) },
	"compression": func(r *Runner) ([]Artifact, error) { return one(Compression(r)) },
	"faults":      func(r *Runner) ([]Artifact, error) { return one(Faults(r)) },
	"fedopt":      func(r *Runner) ([]Artifact, error) { return one(FedOpt(r)) },
}

func one[T Artifact](t T, err error) ([]Artifact, error) {
	if err != nil {
		return nil, err
	}
	return []Artifact{t}, nil
}

func figArtifacts[T Artifact](figs []T, err error) ([]Artifact, error) {
	if err != nil {
		return nil, err
	}
	out := make([]Artifact, len(figs))
	for i, f := range figs {
		out[i] = f
	}
	return out, nil
}

// IDs returns all experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, r *Runner) ([]Artifact, error) {
	f, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (valid: %v)", id, IDs())
	}
	return f(r)
}
