package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/report"
)

// robustnessAlgs are the aggregation rules compared under attack: the
// undefended baseline, the uniform-correction method, the
// similarity-weighted defense, and TACO (with Eq. (10) detection on).
func robustnessAlgs() []string { return []string{"FedAvg", "Scaffold", "FG", "TACO"} }

// robustnessAttack is one row of the attack grid.
type robustnessAttack struct {
	name string
	// spec is nil for the clean baseline row.
	spec *adversary.Spec
}

// robustnessAttacks builds the attack grid: every injector kind at a 30%
// corruption rate (40% for freeloaders, the paper's Table II setting),
// plus the clean baseline the degradation is measured against.
func robustnessAttacks() []robustnessAttack {
	return []robustnessAttack{
		{name: "clean"},
		{name: "labelflip", spec: &adversary.Spec{Kind: adversary.KindLabelFlip, Frac: 0.3}},
		{name: "labelnoise", spec: &adversary.Spec{Kind: adversary.KindLabelNoise, Frac: 0.3, Scale: 0.8}},
		{name: "signflip", spec: &adversary.Spec{Kind: adversary.KindSignFlip, Frac: 0.3}},
		{name: "scale", spec: &adversary.Spec{Kind: adversary.KindScale, Frac: 0.3, Scale: 5}},
		{name: "deltanoise", spec: &adversary.Spec{Kind: adversary.KindDeltaNoise, Frac: 0.3, Scale: 2}},
		{name: "freeload", spec: &adversary.Spec{Kind: adversary.KindFreeloader, Frac: 0.4}},
		{name: "sybil", spec: &adversary.Spec{Kind: adversary.KindSybil, Frac: 0.3, Scale: 2}},
	}
}

// robustnessDatasets trims the grid per scale: the bench profile (also
// the test suite's) runs the MLP only; the CLI profiles add the CNN.
func robustnessDatasets(s Scale) []string {
	if s == ScaleBench {
		return []string{"adult"}
	}
	return []string{"adult", "fmnist"}
}

// robustnessRounds trims the round budget per scale: the grid shares
// dozens of runs, so each stays small.
func robustnessRounds(s Scale) int {
	switch s {
	case ScaleBench:
		return 5
	case ScaleFull:
		return 16
	default:
		return 8
	}
}

// Robustness is the threat-model scenario study (not a paper artifact):
// the attack grid × aggregation rules, reporting each cell's final
// accuracy and the aggregation-weight mass the rule granted the corrupt
// camp, plus corrupt-client detection precision/recall for the two
// defenses — FoolsGold by weight suppression (cumulative weight below
// half the uniform share) and TACO by κ-threshold expulsion (Eq. 10).
func Robustness(r *Runner) (*report.Table, error) {
	algs := robustnessAlgs()
	t := &report.Table{Title: "Robustness: attack grid × aggregation rule (final accuracy | corrupt weight mass)"}
	t.Columns = []string{"Attack", "Data"}
	t.Columns = append(t.Columns, algs...)
	t.Columns = append(t.Columns, "FG det P/R", "TACO det P/R")

	for _, atk := range robustnessAttacks() {
		for _, ds := range robustnessDatasets(r.Scale) {
			profile, err := ProfileFor(ds, r.Scale)
			if err != nil {
				return nil, err
			}
			var truth []bool
			if atk.spec != nil {
				truth = make([]bool, profile.Clients)
				for _, id := range atk.spec.Members(profile.Clients) {
					truth[id] = true
				}
			}
			row := []string{atk.name, ds}
			var fgDet, tacoDet string = "—", "—"
			for _, algName := range algs {
				key := fmt.Sprintf("robustness/%s/%s/%s", atk.name, ds, algName)
				res, err := r.RunOne(key, ds, algName, func(cfg *fl.Config, alg fl.Algorithm) {
					cfg.Rounds = robustnessRounds(r.Scale)
					if atk.spec != nil {
						cfg.Adversaries = []adversary.Spec{*atk.spec}
					}
					if taco, ok := alg.(*core.TACO); ok {
						tcfg := core.Recommended()
						tcfg.DetectFreeloaders = true
						// The grid trims Rounds, so the paper's λ = T/5
						// default would expel on a single suspicion;
						// require half the budget instead.
						tcfg.MaxStrikes = max(cfg.Rounds/2, 2)
						*taco = *core.New(tcfg)
					}
				})
				if err != nil {
					return nil, err
				}
				run := res.Run
				cell := "×"
				if !run.Diverged {
					cell = report.Pct(run.FinalAccuracy())
				}
				if atk.spec != nil && !run.Diverged {
					cell += fmt.Sprintf(" |%.2f", run.MeanCorruptWeight())
				}
				row = append(row, cell)
				if atk.spec == nil {
					continue
				}
				switch algName {
				case "FG":
					d := metrics.EvalDetection(suppressedClients(res.CumWeights), truth)
					fgDet = fmt.Sprintf("%.2f/%.2f", d.Precision(), d.Recall())
				case "TACO":
					flagged := make([]bool, profile.Clients)
					for id := range res.Expelled {
						flagged[id] = true
					}
					d := metrics.EvalDetection(flagged, truth)
					tacoDet = fmt.Sprintf("%.2f/%.2f", d.Precision(), d.Recall())
				}
			}
			row = append(row, fgDet, tacoDet)
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"cell: final accuracy | mean per-round aggregation-weight mass granted the corrupt",
		"camp (head-count share: 0.30, freeload 0.40). Expected shape: FedAvg/Scaffold grant",
		"attackers their full share; FoolsGold and TACO's tailored α-weights suppress the",
		"mass on direction-coherent attacks (signflip, sybil, freeload). Detection P/R:",
		"FoolsGold flags clients whose cumulative weight falls below half the uniform",
		"share; TACO flags by Eq. (10) expulsion.")
	return t, nil
}

// suppressedClients flags clients whose cumulative reported aggregation
// weight fell below half the uniform share — the weight-suppression
// notion of detection for similarity-weighted defenses.
func suppressedClients(cumWeights []float64) []bool {
	flagged := make([]bool, len(cumWeights))
	var total float64
	for _, w := range cumWeights {
		total += w
	}
	if total == 0 {
		return flagged
	}
	threshold := 0.5 * total / float64(len(cumWeights))
	for i, w := range cumWeights {
		flagged[i] = w < threshold
	}
	return flagged
}
