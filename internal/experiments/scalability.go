package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/report"
)

// Table7 reproduces the 100-client scalability study on adult, FEMNIST,
// and CIFAR-100. Round budgets shrink with the larger client count so the
// quick profile stays tractable on one core.
func Table7(r *Runner) (*report.Table, error) {
	datasets := []string{"adult", "femnist", "cifar100"}
	algs := AlgorithmNames()
	t := &report.Table{Title: "Table VII: Scalability with 100 clients (final accuracy)"}
	t.Columns = append([]string{"Method"}, datasets...)
	for _, alg := range algs {
		row := []string{alg}
		for _, ds := range datasets {
			key := fmt.Sprintf("table7/%s/%s", ds, alg)
			res, err := r.RunOneWithProfile(key, ds, alg,
				func(p *Profile) {
					p.Clients = 100
					// Keep total work comparable: more clients, fewer
					// rounds and local steps than the 20-client profile.
					p.Rounds = max(p.Rounds*2/3, 6)
					p.LocalSteps = max(p.LocalSteps*2/3, 4)
					if ds == "cifar100" {
						// The ResNet at 100 clients is the most expensive
						// cell of the whole harness; cap its budget.
						p.Rounds = 8
						p.LocalSteps = 4
						if r.Scale == ScaleBench {
							p.Rounds, p.LocalSteps = 5, 3
						}
					}
				}, nil)
			if err != nil {
				return nil, err
			}
			if res.Run.Diverged {
				row = append(row, "×")
			} else {
				row = append(row, report.Pct(res.Run.FinalAccuracy()))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper shape: TACO's lead widens at 100 clients (paper: +3.9% over the best baseline",
		"on CIFAR-100), showing the tailored coefficients scale with client diversity.")
	return t, nil
}

// Fig7 reproduces the γ sensitivity study: TACO's final accuracy across
// γ ∈ {0, 1e-3, 1e-2, 1e-1, 1} for three datasets with increasing local
// step counts, exhibiting the paper's γ* ≈ 1/K rule and the failure
// threshold at large γ·K.
func Fig7(r *Runner) (*report.Table, error) {
	gammas := []float64{0, 0.001, 0.01, 0.1, 1.0}
	cases := []struct {
		ds string
		k  int
	}{
		{"mnist", 5}, {"fmnist", 10}, {"cifar10", 20},
	}
	t := &report.Table{Title: "Fig. 7: Sensitivity of γ (TACO final accuracy; × = divergence)"}
	t.Columns = []string{"γ"}
	for _, c := range cases {
		t.Columns = append(t.Columns, fmt.Sprintf("%s (K=%d)", c.ds, c.k))
	}
	for _, gamma := range gammas {
		row := []string{fmt.Sprintf("%g", gamma)}
		for _, c := range cases {
			key := fmt.Sprintf("fig7/%s/%g", c.ds, gamma)
			res, err := r.RunOneWithProfile(key, c.ds, "TACO",
				func(p *Profile) {
					// K is the experiment variable (γ* ≈ 1/K); keep it and
					// trim rounds instead under the bench profile.
					p.LocalSteps = c.k
					if r.Scale == ScaleBench {
						p.Rounds = max(p.Rounds*2/3, 5)
					}
				},
				func(cfg *fl.Config, alg fl.Algorithm) {
					taco := alg.(*core.TACO)
					tcfg := core.Recommended()
					if gamma == 0 {
						// Config.Gamma == 0 selects the 1/K default, so an
						// explicit γ=0 run disables the correction instead.
						tcfg.DisableTailoredCorrection = true
					} else {
						tcfg.Gamma = gamma
					}
					*taco = *core.New(tcfg)
				})
			if err != nil {
				return nil, err
			}
			if res.Run.Diverged {
				row = append(row, "×")
			} else {
				row = append(row, report.Pct(res.Run.FinalAccuracy()))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper shape: accuracy improves with γ up to γ* ≈ 1/K, then degrades or diverges;",
		"the best column entry should sit near γ=1/K for each dataset's K.")
	return t, nil
}
