package experiments

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/fl"
	"repro/internal/report"
	"repro/internal/simclock"
)

// faultConditions are the injected failure mixes of the fault study. The
// spec strings use the -fault flag syntax (fault.ParseFaults); "clean"
// is the fault-free control every other row is read against.
func faultConditions() []struct{ name, spec string } {
	return []struct{ name, spec string }{
		{"clean", ""},
		{"crash20", "crash:0.2"},
		{"drop20", "drop:0.2"},
		{"slow30", "slow:0.3:4"},
		{"crash+drop20", "crash:0.2,drop:0.2"},
	}
}

// faultAlgs are the methods compared under faults: the plain baseline,
// the uniform-correction method, and TACO.
func faultAlgs() []string { return []string{"FedAvg", "Scaffold", "TACO"} }

// Faults is the fault-injection scenario study (not a paper artifact):
// it trains TACO against FedAvg and Scaffold on adult while clients
// crash mid-round, drop their uploads, or run 4× slow, under all three
// aggregation policies. Every cell reports final accuracy; per policy
// the study adds the recovery tally that policy pays with — degraded
// (sub-quorum) rounds for sync, permanently lost updates for deadline,
// and retry dispatches for async. A "×" cell marks a diverged run.
func Faults(r *Runner) (*report.Table, error) {
	t := &report.Table{Title: "Fault study: client failures × aggregation policy (adult, final accuracy)"}
	t.Columns = []string{"Faults", "Method", "sync", "degr", "deadline", "lost", "async", "retry"}

	base, err := ProfileFor("adult", r.Scale)
	if err != nil {
		return nil, err
	}
	net, err := base.Model()
	if err != nil {
		return nil, err
	}
	nominal := simclock.RoundSeconds(net.GradFlops(base.BatchSize), base.LocalSteps, simclock.Plain())

	for _, cond := range faultConditions() {
		specs, err := fault.ParseFaults(cond.spec)
		if err != nil {
			return nil, err
		}
		for _, alg := range faultAlgs() {
			row := []string{cond.name, alg}
			for _, policy := range []fl.AggregationPolicy{fl.PolicySync, fl.PolicyDeadline, fl.PolicyAsync} {
				key := fmt.Sprintf("faults/%s/%s/%s", cond.name, alg, policy)
				res, err := r.RunOne(key, "adult", alg, func(cfg *fl.Config, _ fl.Algorithm) {
					cfg.Rounds = faultRounds(r.Scale)
					cfg.Policy = policy
					cfg.Faults = specs
					switch policy {
					case fl.PolicyDeadline:
						// 1.5× the nominal round, as the straggler study
						// uses: slow-faulted clients blow the deadline.
						cfg.RoundDeadlineSec = 1.5 * nominal
					case fl.PolicyAsync:
						cfg.AsyncBuffer = max(base.Clients/4, 1)
					}
					if len(specs) > 0 && policy != fl.PolicyAsync {
						// Commit rounds at half the dispatched cohort;
						// anything below is recorded as degraded.
						cfg.Quorum = 0.5
					}
				})
				if err != nil {
					return nil, err
				}
				run := res.Run
				acc := "×"
				if !run.Diverged {
					acc = report.Pct(run.FinalAccuracy())
				}
				switch policy {
				case fl.PolicySync:
					row = append(row, acc, fmt.Sprintf("%d", run.DegradedRounds()))
				case fl.PolicyDeadline:
					row = append(row, acc, fmt.Sprintf("%d", run.TotalDroppedUpdates()))
				case fl.PolicyAsync:
					row = append(row, acc, fmt.Sprintf("%d", run.TotalRetries()))
				}
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"Fault mixes are per-dispatch probabilities: crash20 kills 20% of client",
		"dispatches mid-round, drop20 loses 20% of uploads in flight, slow30 stretches",
		"30% of dispatches 4×, crash+drop20 compounds the first two. degr: rounds",
		"committed below the 0.5 quorum after retries ran out; lost: updates the server",
		"never received; retry: re-dispatches the retry/backoff machinery issued.",
		"crash20 and drop20 coincide by construction: both consume the dispatch's",
		"modeled time and deliver nothing, and equal fracs draw identical outcomes from",
		"the same per-client fault stream. Expected shape: the retry budget recovers",
		"most transient faults and quorum keeps sub-cohort rounds honest instead of",
		"silent; correction-tracking methods (TACO) are more sensitive to thinned",
		"cohorts than plain averaging — a lost update biases the correction estimate —",
		"while Scaffold's per-client control variates hold up.")
	return t, nil
}

// faultRounds trims the study's round budget per scale: 45 runs share
// the table, so each stays small.
func faultRounds(s Scale) int {
	switch s {
	case ScaleBench:
		return 5
	case ScaleFull:
		return 20
	default:
		return 10
	}
}
