package experiments

import (
	"fmt"

	"repro/internal/fl"
	"repro/internal/report"
)

// Scale1k pushes the scalability study an order of magnitude past the
// paper's Table VII: one thousand Dirichlet-partitioned clients with 10%
// partial participation per round. The run is feasible because training
// memory is O(P·d) under the slot pool (DESIGN.md §5) — every client
// keeps only its shard, sampler and algorithm coefficients while idle —
// where the pre-pool engine would have materialized a thousand engines
// and parameter arenas up front.
func Scale1k(r *Runner) (*report.Table, error) {
	datasets := []string{"adult", "fmnist"}
	algs := []string{"FedAvg", "Scaffold", "TACO"}
	t := &report.Table{Title: "Scale-1k: 1000 Dirichlet clients, 10% participation (final / best accuracy)"}
	t.Columns = append([]string{"Method"}, datasets...)
	for _, alg := range algs {
		row := []string{alg}
		for _, ds := range datasets {
			key := fmt.Sprintf("scale1k/%s/%s", ds, alg)
			res, err := r.RunOneWithProfile(key, ds, alg,
				func(p *Profile) {
					p.Clients = 1000
					p.Partition = PartDirichlet
					p.DirPhi = 0.3
					// 100 participants per round keeps total work near the
					// 100-client Table VII budget while the fleet is 10×.
					p.Rounds = 8
					p.LocalSteps = 4
					if r.Scale == ScaleBench {
						p.Rounds, p.LocalSteps = 5, 3
					}
				},
				func(cfg *fl.Config, alg fl.Algorithm) {
					cfg.ParticipationFraction = 0.1
				})
			if err != nil {
				return nil, err
			}
			if res.Run.Diverged {
				row = append(row, "×")
			} else {
				row = append(row, report.Pct(res.Run.FinalAccuracy())+" / "+report.Pct(res.Run.BestAccuracy()))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"thousand-client regime: each client holds a handful of samples, so per-round",
		"client sampling dominates the signal; TACO's tailored coefficients must remain",
		"stable with ~100 fresh participants per round.")
	return t, nil
}
