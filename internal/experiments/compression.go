package experiments

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/fl"
	"repro/internal/report"
)

// compressionCodecs is the codec grid of the communication study: dense
// transport as the baseline, magnitude top-k at two sparsity levels, and
// int8 stochastic quantization, each with error feedback (the engine
// always carries residuals for lossy codecs).
func compressionCodecs() []struct {
	name string
	spec compress.Spec
} {
	return []struct {
		name string
		spec compress.Spec
	}{
		{"dense", compress.Spec{}},
		{"topk1%", compress.Spec{Kind: compress.KindTopK, TopKFrac: 0.01}},
		{"topk10%", compress.Spec{Kind: compress.KindTopK, TopKFrac: 0.10}},
		{"int8", compress.Spec{Kind: compress.KindInt8}},
	}
}

// compressionAlgs are the aggregation rules compared under compression:
// the plain average, the control-variate corrector (whose correction
// must survive a lossy uplink), and TACO (whose α geometry is computed
// from the decoded — for top-k, sparse — uploads).
func compressionAlgs() []string { return []string{"FedAvg", "Scaffold", "TACO"} }

// compressionDatasets trims the grid per scale, like the robustness
// study: the bench profile runs the MLP only.
func compressionDatasets(s Scale) []string {
	if s == ScaleBench {
		return []string{"adult"}
	}
	return []string{"adult", "fmnist"}
}

// compressionRounds trims the round budget per scale.
func compressionRounds(s Scale) int {
	switch s {
	case ScaleBench:
		return 5
	case ScaleFull:
		return 16
	default:
		return 10
	}
}

// Compression is the communication-efficiency scenario study (DESIGN.md
// §7): the codec grid × aggregation rules, reporting each cell's final
// accuracy next to the uplink traffic and compression ratio the codec
// achieved — the accuracy-per-byte trade every codec is judged by.
func Compression(r *Runner) (*report.Table, error) {
	algs := compressionAlgs()
	t := &report.Table{Title: "Compression: uplink codec × aggregation rule (final accuracy; uplink MiB, ratio)"}
	t.Columns = []string{"Codec", "Data"}
	t.Columns = append(t.Columns, algs...)
	t.Columns = append(t.Columns, "Uplink", "Ratio")

	for _, codec := range compressionCodecs() {
		for _, ds := range compressionDatasets(r.Scale) {
			row := []string{codec.name, ds}
			var uplink, ratio string
			for _, algName := range algs {
				key := fmt.Sprintf("compression/%s/%s/%s", codec.name, ds, algName)
				res, err := r.RunOne(key, ds, algName, func(cfg *fl.Config, alg fl.Algorithm) {
					cfg.Rounds = compressionRounds(r.Scale)
					cfg.Compress = codec.spec
				})
				if err != nil {
					return nil, err
				}
				run := res.Run
				if run.Diverged {
					row = append(row, "×")
				} else {
					row = append(row, report.Pct(run.FinalAccuracy()))
				}
				// The wire totals are a property of the codec and the
				// participation pattern, not the rule; every cell of the
				// row reports the same numbers — except a diverged run,
				// which halts early and undercounts, so take the first
				// full-length run.
				if uplink == "" && !run.Diverged {
					uplink = fmt.Sprintf("%.2f MiB", float64(run.TotalUplinkBytes())/(1<<20))
					ratio = fmt.Sprintf("%.1fx", run.MeanCompressionRatio())
				}
			}
			if uplink == "" { // every rule diverged: no full-length run to report
				uplink, ratio = "—", "—"
			}
			row = append(row, uplink, ratio)
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"cells: final test accuracy per rule; Uplink/Ratio: total client→server bytes and",
		"dense-over-encoded ratio for the run. Top-k costs 12 B per kept coordinate (4 B",
		"index + 8 B value) → ~66x at 1%; int8 costs ~1 B per coordinate → ~8x. Error",
		"feedback carries each client's dropped mass into its next upload, which is what",
		"keeps the 1% cell convergent at all.")
	return t, nil
}
