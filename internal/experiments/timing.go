package experiments

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/simclock"
)

// Table1 reproduces "Computation time per 100 local updates (CNN)" on the
// FMNIST and SVHN models. The modeled column is the deterministic cost
// model; the measured column times 100 real local updates of each
// algorithm in this Go implementation.
func Table1(r *Runner) (*report.Table, error) {
	t := &report.Table{Title: "Table I: Computation time per 100 local updates (CNN)"}
	t.Columns = []string{"Dataset", "Metric", "FedAvg/FG", "FedProx", "Scaffold", "STEM", "FedACG"}
	algs := []string{"FedAvg", "FedProx", "Scaffold", "STEM", "FedACG"}
	for _, ds := range []string{"fmnist", "svhn"} {
		p, err := ProfileFor(ds, r.Scale)
		if err != nil {
			return nil, err
		}
		net, err := p.Model()
		if err != nil {
			return nil, err
		}
		gradFlops := net.GradFlops(p.BatchSize)

		modeled := make([]float64, len(algs))
		measured := make([]float64, len(algs))
		for i, name := range algs {
			alg, err := NewAlgorithm(name)
			if err != nil {
				return nil, err
			}
			modeled[i] = simclock.Per100Steps(gradFlops, alg.Costs())
			sec, err := measure100Steps(p, alg)
			if err != nil {
				return nil, err
			}
			measured[i] = sec
		}
		rowFor := func(metric string, vals []float64) []string {
			row := []string{ds, metric}
			for i, v := range vals {
				overhead := ""
				if i > 0 && vals[0] > 0 {
					overhead = fmt.Sprintf(" (+%.1f%%)", 100*(v-vals[0])/vals[0])
				}
				row = append(row, fmt.Sprintf("%.3fs%s", v, overhead))
			}
			return row
		}
		t.AddRow(rowFor("modeled", modeled)...)
		t.AddRow(rowFor("measured", measured)...)
	}
	t.Notes = append(t.Notes,
		"modeled overheads are calibrated to the paper's Table I (FMNIST column);",
		"measured times show this implementation's real relative cost (STEM pays a full second gradient).")
	return t, nil
}

// measure100Steps times 100 local SGD steps for one client under the given
// algorithm, the measurement unit of the paper's Table I.
func measure100Steps(p Profile, alg fl.Algorithm) (float64, error) {
	cfg, shards, test, _, err := p.Materialize(7)
	if err != nil {
		return 0, err
	}
	cfg.Rounds = 1
	cfg.LocalSteps = 100
	cfg.EvalEvery = 10 // skip evaluation cost inside the measurement
	// Restrict to one client so the measured time is a single client's.
	one := shards[:1]
	net, err := p.Model()
	if err != nil {
		return 0, err
	}
	res, err := fl.Run(*cfg, alg, net, one, test)
	if err != nil {
		return 0, err
	}
	return res.Run.Rounds[0].SlowestMeasuredSec, nil
}

// Table3 reproduces the capability matrix "Comparison with pioneering FL
// algorithms", including modeled client computation time per round for the
// CIFAR-100 (ResNet) profile.
func Table3(r *Runner) (*report.Table, error) {
	p, err := ProfileFor("cifar100", r.Scale)
	if err != nil {
		return nil, err
	}
	net, err := p.Model()
	if err != nil {
		return nil, err
	}
	gradFlops := net.GradFlops(p.BatchSize)
	t := &report.Table{Title: "Table III: Capability comparison (client time per round, cifar100-ResNet)"}
	t.Columns = []string{"Method", "Local Corr.", "Agg. Corr.", "Freeloader Det.", "Client time/round"}
	caps := []struct {
		name            string
		local, agg, det bool
	}{
		{"FedAvg", false, false, false},
		{"FedProx", true, false, false},
		{"Scaffold", true, false, false},
		{"FG", false, true, false},
		{"STEM", true, true, false},
		{"FedACG", true, true, false},
		{"TACO", true, true, true},
	}
	var base float64
	for _, c := range caps {
		alg, err := NewAlgorithm(c.name)
		if err != nil {
			return nil, err
		}
		sec := simclock.RoundSeconds(gradFlops, p.LocalSteps, alg.Costs())
		if c.name == "FedAvg" {
			base = sec
		}
		mark := func(b bool) string {
			if b {
				return "yes"
			}
			return "no"
		}
		t.AddRow(c.name, mark(c.local), mark(c.agg), mark(c.det),
			fmt.Sprintf("%.3fs (%+.1f%%)", sec, 100*(sec-base)/base))
	}
	t.Notes = append(t.Notes,
		"paper shape: only TACO covers all three capabilities at near-FedAvg cost",
		"(paper: TACO 4.81s vs FedAvg 4.50s, +6.9%; STEM 6.48s, +44%).")
	return t, nil
}

// MicroGradBenchmark measures one mini-batch gradient evaluation for the
// named dataset's model — the building block of every timing artifact.
// Exposed for the benchmark harness.
func MicroGradBenchmark(dsName string, batch int) (time.Duration, error) {
	net, err := dataset.Model(dsName)
	if err != nil {
		return 0, err
	}
	train, _, err := dataset.Standard(dsName, dataset.ScaleSmall, 1)
	if err != nil {
		return 0, err
	}
	r := rng.New(3)
	params := net.InitParams(r)
	eng := nn.NewEngine(net, batch)
	sampler := dataset.NewSampler(train, r)
	x := make([]float64, batch*train.In.Size())
	y := make([]int, batch)
	grad := make([]float64, net.NumParams())
	sampler.Batch(x, y)
	start := time.Now()
	eng.Gradient(params, x, y, grad)
	return time.Since(start), nil
}
