// Package experiments configures and runs every reproduced table and
// figure of the paper. Each experiment has an id (table5, fig2, ...), a
// runner that produces the underlying FL runs (cached, so experiments
// sharing runs — Table V, Fig. 4, Fig. 5 — compute them once), and a
// renderer that prints the paper's rows or series via internal/report.
package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/rng"
)

// Scale selects the experiment size: ScaleBench for the benchmark
// harness, ScaleQuick for the CLI default (the canonical EXPERIMENTS.md
// numbers, sized for a single CPU core), ScaleFull for longer CLI runs.
type Scale int

const (
	// ScaleBench is the reduced profile used by the benchmark harness: it
	// regenerates every artifact's full pipeline at roughly a third of the
	// quick profile's training budget.
	ScaleBench Scale = iota + 1
	// ScaleQuick is the CI/CLI default profile (the canonical numbers in
	// EXPERIMENTS.md).
	ScaleQuick
	// ScaleFull is the larger CLI profile.
	ScaleFull
)

func (s Scale) String() string {
	switch s {
	case ScaleFull:
		return "full"
	case ScaleBench:
		return "bench"
	default:
		return "quick"
	}
}

// PartitionKind names the non-IID regime of a profile.
type PartitionKind string

const (
	// PartGroups is the paper's synthetic label-diversity grouping.
	PartGroups PartitionKind = "groups"
	// PartDirichlet is Dir(φ) label skew.
	PartDirichlet PartitionKind = "dirichlet"
	// PartNatural partitions by the dataset's natural groups (speakers).
	PartNatural PartitionKind = "natural"
)

// Profile fixes one dataset's training setup, mirroring the hyper-
// parameter table of Section V-A at reproduction scale.
type Profile struct {
	Dataset    string
	Clients    int
	Rounds     int
	LocalSteps int
	BatchSize  int
	LocalLR    float64
	// TargetAcc is the dataset's target accuracy for the rounds-to-
	// accuracy and time-to-accuracy columns.
	TargetAcc float64
	Partition PartitionKind
	// DirPhi is the Dirichlet concentration for PartDirichlet.
	DirPhi float64
	// DataScale picks the synthetic dataset size.
	DataScale dataset.Scale
	// FleetMultiplier tiles the partitioned shards to simulate fleets far
	// larger than the dataset can uniquely shard: Clients distinct shards
	// are partitioned once and replicated (by pointer, so data stays
	// O(Clients)) until the fleet has Clients×FleetMultiplier clients.
	// Replicas share bytes but not behavior — every client draws its own
	// sampling stream — which is what the 100k-client scale study runs on.
	// 0 or 1 means no tiling.
	FleetMultiplier int
}

// SweepDatasets lists the six datasets of Table V in paper order.
func SweepDatasets() []string {
	return []string{"adult", "fmnist", "svhn", "cifar10", "cifar100", "shakespeare"}
}

// ProfileFor returns the named dataset's profile at the given scale. The
// relative settings mirror the paper: SVHN and CIFAR-10 get the most local
// work (the paper uses K=1000 there), CIFAR-100 the big model, Shakespeare
// the LSTM with ηl = 1.
func ProfileFor(name string, scale Scale) (Profile, error) {
	p := Profile{
		Dataset:    name,
		Clients:    20,
		BatchSize:  24,
		LocalLR:    0.05,
		DataScale:  dataset.ScaleSmall,
		Partition:  PartGroups,
		LocalSteps: 10,
	}
	switch name {
	case "mnist":
		p.Rounds, p.TargetAcc = 20, 0.85
	case "fmnist":
		p.Rounds, p.TargetAcc = 25, 0.72
	case "femnist":
		p.Rounds, p.TargetAcc = 20, 0.55
		p.Partition, p.DirPhi = PartDirichlet, 0.2
	case "svhn":
		p.Rounds, p.LocalSteps, p.TargetAcc = 25, 15, 0.60
		p.LocalLR = 0.08
	case "cifar10":
		p.Rounds, p.LocalSteps, p.TargetAcc = 25, 15, 0.55
	case "cifar100":
		p.Rounds, p.LocalSteps, p.BatchSize, p.TargetAcc = 15, 8, 16, 0.25
		p.Partition, p.DirPhi = PartDirichlet, 0.5
	case "adult":
		p.Rounds, p.TargetAcc = 20, 0.78
		p.Partition, p.DirPhi = PartDirichlet, 0.5
	case "shakespeare":
		p.Rounds, p.LocalSteps, p.LocalLR, p.TargetAcc = 20, 12, 1.0, 0.40
		p.Partition = PartNatural
	default:
		return Profile{}, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	switch scale {
	case ScaleFull:
		p.Rounds *= 2
		p.DataScale = dataset.ScaleFull
	case ScaleBench:
		p.Rounds = max(p.Rounds/2, 4)
		p.LocalSteps = max(p.LocalSteps*2/3, 3)
	}
	return p, nil
}

// Materialize builds the profile's model, client shards, and test set.
func (p Profile) Materialize(seed uint64) (*fl.Config, []*dataset.Dataset, *dataset.Dataset, []int, error) {
	train, test, err := dataset.Standard(p.Dataset, p.DataScale, seed)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	r := rng.New(seed).Derive("partition", 0)
	var (
		part    *partition.Partition
		groupOf []int
	)
	switch p.Partition {
	case PartGroups:
		part, groupOf, err = partition.Groups(train, partition.PaperGroups(p.Clients), r)
	case PartDirichlet:
		part, err = partition.Dirichlet(train, p.Clients, p.DirPhi, r)
	case PartNatural:
		part, err = partition.ByNaturalGroups(train, p.Clients, r)
	default:
		err = fmt.Errorf("experiments: unknown partition kind %q", p.Partition)
	}
	if err != nil {
		return nil, nil, nil, nil, err
	}
	cfg := &fl.Config{
		Rounds:     p.Rounds,
		LocalSteps: p.LocalSteps,
		BatchSize:  p.BatchSize,
		LocalLR:    p.LocalLR,
		Seed:       seed,
	}
	shards := part.Shards(train)
	if p.FleetMultiplier > 1 {
		tiled := make([]*dataset.Dataset, 0, len(shards)*p.FleetMultiplier)
		for rep := 0; rep < p.FleetMultiplier; rep++ {
			tiled = append(tiled, shards...)
		}
		shards = tiled
	}
	return cfg, shards, test, groupOf, nil
}

// Model returns the dataset's model architecture.
func (p Profile) Model() (*nn.Network, error) {
	return dataset.Model(p.Dataset)
}
