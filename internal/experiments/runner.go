package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/fl"
)

// AlgorithmNames lists the compared methods in the paper's column order.
func AlgorithmNames() []string {
	return []string{"FedAvg", "FedProx", "FG", "Scaffold", "STEM", "FedACG", "TACO"}
}

// NewAlgorithm constructs a fresh instance of the named algorithm with the
// paper's default hyper-parameters (Section V-A): ζ=0.1, α=1, α_t=0.2,
// β=0.001, and TACO's γ=1/K, κ=0.6, λ=T/5.
func NewAlgorithm(name string) (fl.Algorithm, error) {
	switch name {
	case "FedAvg":
		return baselines.NewFedAvg(), nil
	case "FedProx":
		return baselines.NewFedProx(0.1), nil
	case "FG":
		return baselines.NewFoolsGold(), nil
	case "Scaffold":
		return baselines.NewScaffold(1), nil
	case "STEM":
		return baselines.NewSTEM(0.2), nil
	case "FedACG":
		return baselines.NewFedACG(0.001), nil
	case "TACO":
		return core.New(core.Recommended()), nil
	case "FedProx(TACO)":
		return core.NewFedProxTACO(0.1), nil
	case "Scaffold(TACO)":
		return core.NewScaffoldTACO(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %q", name)
	}
}

// Runner executes experiments at one scale with a shared run cache, so
// artifacts that reuse the same training runs (Table V, Fig. 2, Fig. 4,
// Fig. 5) pay for them once per process.
type Runner struct {
	Scale Scale
	// Seed is the base seed; every run derives from it deterministically.
	Seed uint64
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer

	mu    sync.Mutex
	cache map[string]*fl.Result
}

// NewRunner creates a Runner with the default base seed.
func NewRunner(scale Scale) *Runner {
	return &Runner{Scale: scale, Seed: 1}
}

// RunOne trains the named algorithm on the named dataset's profile.
// Results are cached under key; pass distinct keys for distinct setups.
// The optional tweak hook mutates the engine config or algorithm before
// the run; use RunOneWithProfile to also adjust the dataset profile.
func (r *Runner) RunOne(key, dsName, algName string, tweak func(cfg *fl.Config, alg fl.Algorithm)) (*fl.Result, error) {
	return r.RunOneWithProfile(key, dsName, algName, nil, tweak)
}

// RunOneWithProfile is RunOne with an extra hook that adjusts the dataset
// profile (partition kind, Dirichlet level, client count) before the data
// is materialized.
func (r *Runner) RunOneWithProfile(key, dsName, algName string, profTweak func(*Profile), tweak func(cfg *fl.Config, alg fl.Algorithm)) (*fl.Result, error) {
	r.mu.Lock()
	if r.cache == nil {
		r.cache = make(map[string]*fl.Result)
	}
	if res, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	profile, err := ProfileFor(dsName, r.Scale)
	if err != nil {
		return nil, err
	}
	if profTweak != nil {
		profTweak(&profile)
	}
	cfg, shards, test, _, err := profile.Materialize(r.Seed)
	if err != nil {
		return nil, err
	}
	alg, err := NewAlgorithm(algName)
	if err != nil {
		return nil, err
	}
	if tweak != nil {
		tweak(cfg, alg)
	}
	net, err := profile.Model()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := fl.Run(*cfg, alg, net, shards, test)
	if err != nil {
		return nil, fmt.Errorf("run %s: %w", key, err)
	}
	if r.Progress != nil {
		status := ""
		if res.Run.Diverged {
			status = fmt.Sprintf(" DIVERGED@%d", res.Run.DivergedRound)
		}
		fmt.Fprintf(r.Progress, "  [%s] final=%.4f best=%.4f (%.1fs)%s\n",
			key, res.Run.FinalAccuracy(), res.Run.BestAccuracy(), time.Since(start).Seconds(), status)
	}
	r.mu.Lock()
	r.cache[key] = res
	r.mu.Unlock()
	return res, nil
}

// SweepKey names the cached run for one (dataset, algorithm) cell of the
// main comparison sweep.
func SweepKey(ds, alg string) string { return "sweep/" + ds + "/" + alg }

// Sweep runs the Table V matrix: every algorithm on every sweep dataset.
func (r *Runner) Sweep(datasets, algorithms []string) (map[string]*fl.Result, error) {
	out := make(map[string]*fl.Result, len(datasets)*len(algorithms))
	for _, ds := range datasets {
		for _, alg := range algorithms {
			key := SweepKey(ds, alg)
			res, err := r.RunOne(key, ds, alg, nil)
			if err != nil {
				return nil, err
			}
			out[key] = res
		}
	}
	return out, nil
}
