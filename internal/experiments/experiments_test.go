package experiments

import (
	"strings"
	"testing"

	"repro/internal/fl"
)

func TestProfilesForAllDatasets(t *testing.T) {
	for _, name := range append(SweepDatasets(), "mnist", "femnist") {
		for _, scale := range []Scale{ScaleQuick, ScaleFull} {
			p, err := ProfileFor(name, scale)
			if err != nil {
				t.Fatalf("ProfileFor(%s,%v): %v", name, scale, err)
			}
			if p.Rounds <= 0 || p.LocalSteps <= 0 || p.LocalLR <= 0 {
				t.Fatalf("profile %s has zero fields: %+v", name, p)
			}
			if p.TargetAcc <= 0 || p.TargetAcc >= 1 {
				t.Fatalf("profile %s target accuracy %v", name, p.TargetAcc)
			}
		}
	}
	if _, err := ProfileFor("nope", ScaleQuick); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestFullScaleIsBigger(t *testing.T) {
	q, _ := ProfileFor("fmnist", ScaleQuick)
	f, _ := ProfileFor("fmnist", ScaleFull)
	if f.Rounds <= q.Rounds {
		t.Fatalf("full rounds %d not above quick %d", f.Rounds, q.Rounds)
	}
}

func TestProfileMaterialize(t *testing.T) {
	for _, name := range []string{"adult", "fmnist", "shakespeare"} {
		p, err := ProfileFor(name, ScaleQuick)
		if err != nil {
			t.Fatal(err)
		}
		cfg, shards, test, groupOf, err := p.Materialize(1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(shards) != p.Clients {
			t.Fatalf("%s: %d shards, want %d", name, len(shards), p.Clients)
		}
		if test.Len() == 0 {
			t.Fatalf("%s: empty test set", name)
		}
		if cfg.Rounds != p.Rounds {
			t.Fatalf("%s: config rounds %d != profile %d", name, cfg.Rounds, p.Rounds)
		}
		if p.Partition == PartGroups && len(groupOf) != p.Clients {
			t.Fatalf("%s: groupOf length %d", name, len(groupOf))
		}
	}
}

func TestNewAlgorithmNames(t *testing.T) {
	for _, name := range append(AlgorithmNames(), "FedProx(TACO)", "Scaffold(TACO)") {
		alg, err := NewAlgorithm(name)
		if err != nil {
			t.Fatal(err)
		}
		if alg.Name() != name {
			t.Fatalf("NewAlgorithm(%q).Name() = %q", name, alg.Name())
		}
	}
	if _, err := NewAlgorithm("nope"); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestRunnerCaches(t *testing.T) {
	r := NewRunner(ScaleQuick)
	tweak := func(cfg *fl.Config, _ fl.Algorithm) {
		cfg.Rounds = 2
		cfg.LocalSteps = 2
		cfg.BatchSize = 8
	}
	a, err := r.RunOne("cache-test", "adult", "FedAvg", tweak)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunOne("cache-test", "adult", "FedAvg", tweak)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical keys must return the cached result")
	}
}

func TestRegistryIDs(t *testing.T) {
	ids := IDs()
	want := []string{"compression", "faults", "fedopt", "fig2", "fig4", "fig5", "fig6", "fig7", "robustness", "scale100k", "scale1k", "straggler", "table1", "table2", "table3", "table5", "table6", "table7", "table8"}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Fatalf("IDs() = %v, want %v", ids, want)
	}
	if _, err := Run("nope", NewRunner(ScaleQuick)); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

// TestTable1Artifact runs the cheapest full experiment end to end and
// checks the rendered shape.
func TestTable1Artifact(t *testing.T) {
	if testing.Short() {
		t.Skip("measures local updates")
	}
	r := NewRunner(ScaleQuick)
	tbl, err := Table1(r)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	for _, frag := range []string{"Table I", "fmnist", "svhn", "modeled", "measured", "STEM"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("Table I render missing %q:\n%s", frag, s)
		}
	}
}

// TestTable3Artifact checks the capability matrix without training runs.
func TestTable3Artifact(t *testing.T) {
	r := NewRunner(ScaleQuick)
	tbl, err := Table3(r)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	for _, frag := range []string{"TACO", "yes", "no", "Freeloader"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("Table III render missing %q:\n%s", frag, s)
		}
	}
	// TACO's row must be the only one with freeloader detection.
	lines := strings.Split(s, "\n")
	for _, line := range lines {
		if strings.Contains(line, "| TACO") {
			if !strings.Contains(line, "yes") {
				t.Fatalf("TACO row missing capabilities: %s", line)
			}
		}
	}
}

// TestRobustnessArtifact runs the attack grid end to end at bench scale
// (adult only) and checks the rendered shape: every attack row, the
// weight-mass cells, and the detection columns.
func TestRobustnessArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the attack grid")
	}
	r := NewRunner(ScaleBench)
	tbl, err := Robustness(r)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	for _, atk := range robustnessAttacks() {
		if !strings.Contains(s, atk.name) {
			t.Fatalf("robustness render missing attack %q:\n%s", atk.name, s)
		}
	}
	for _, frag := range []string{"FedAvg", "Scaffold", "FG", "TACO", "det P/R", "|0."} {
		if !strings.Contains(s, frag) {
			t.Fatalf("robustness render missing %q:\n%s", frag, s)
		}
	}
}

// TestCompressionArtifact runs the codec grid end to end at bench scale
// (adult only) and checks the rendered shape: every codec row plus the
// wire-cost columns, with the lossy rows actually reporting compression.
func TestCompressionArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the codec grid")
	}
	r := NewRunner(ScaleBench)
	tbl, err := Compression(r)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	for _, codec := range compressionCodecs() {
		if !strings.Contains(s, codec.name) {
			t.Fatalf("compression render missing codec %q:\n%s", codec.name, s)
		}
	}
	for _, frag := range []string{"FedAvg", "Scaffold", "TACO", "Uplink", "Ratio", "MiB", "1.0x"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("compression render missing %q:\n%s", frag, s)
		}
	}
}

// TestFaultsArtifact runs the fault-injection × policy study end to end
// at bench scale and checks the rendered shape: every fault condition,
// every method, and the per-policy recovery-tally columns.
func TestFaultsArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 45 small runs")
	}
	r := NewRunner(ScaleBench)
	tbl, err := Faults(r)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	for _, cond := range faultConditions() {
		if !strings.Contains(s, cond.name) {
			t.Fatalf("faults render missing condition %q:\n%s", cond.name, s)
		}
	}
	for _, frag := range []string{"FedAvg", "Scaffold", "TACO", "degr", "lost", "retry"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("faults render missing %q:\n%s", frag, s)
		}
	}
	// 5 conditions × 3 methods.
	for _, cond := range faultConditions() {
		if strings.Count(s, cond.name) < 3 {
			t.Fatalf("condition %s missing rows:\n%s", cond.name, s)
		}
	}
}

// TestFedOptArtifact runs the stack × optimizer × rule grid end to end
// at bench scale and checks the rendered shape: every attack and server
// configuration column, the weight-mass cells, and the stack-engagement
// tallies.
func TestFedOptArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the fedopt grid")
	}
	r := NewRunner(ScaleBench)
	tbl, err := FedOpt(r)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	for _, atk := range fedoptAttacks() {
		if !strings.Contains(s, atk.name) {
			t.Fatalf("fedopt render missing attack %q:\n%s", atk.name, s)
		}
	}
	for _, frag := range []string{"FedAvg", "Scaffold", "TACO", "bare", "+zeroing|clip", "+stack+adam", "zeroed/clipped", "|0."} {
		if !strings.Contains(s, frag) {
			t.Fatalf("fedopt render missing %q:\n%s", frag, s)
		}
	}
	// Every (attack, alg) row carries the stacked run's engagement tally.
	if strings.Count(s, "/") < len(fedoptAttacks())*len(fedoptAlgs()) {
		t.Fatalf("fedopt render missing engagement tallies:\n%s", s)
	}
}

func TestSuppressedClients(t *testing.T) {
	// Clients 0 and 3 accumulated less than half the uniform share
	// (total 4 over 4 clients -> uniform 1, threshold 0.5).
	flagged := suppressedClients([]float64{0.2, 1.6, 1.9, 0.3})
	want := []bool{true, false, false, true}
	for i := range want {
		if flagged[i] != want[i] {
			t.Fatalf("suppressedClients = %v, want %v", flagged, want)
		}
	}
	for _, f := range suppressedClients([]float64{0, 0}) {
		if f {
			t.Fatal("zero-mass run must flag nobody")
		}
	}
}

func TestMicroGradBenchmark(t *testing.T) {
	d, err := MicroGradBenchmark("adult", 16)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("non-positive duration %v", d)
	}
}

func TestFreeloaderIDsSpread(t *testing.T) {
	ids := freeloaderIDs(20)
	if len(ids) != 8 {
		t.Fatalf("got %d freeloaders, want 8 (40%% of 20)", len(ids))
	}
	seen := map[int]bool{}
	groups := map[int]bool{} // thirds of the client range
	for _, id := range ids {
		if id < 0 || id >= 20 {
			t.Fatalf("id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		groups[id/7] = true
	}
	if len(groups) < 3 {
		t.Fatalf("freeloaders not spread across the client range: %v", ids)
	}
}

// TestStragglerArtifact runs the heterogeneity × policy study end to end
// at bench scale and checks the rendered shape.
func TestStragglerArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 27 small runs")
	}
	r := NewRunner(ScaleBench)
	tbl, err := Straggler(r)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.String()
	for _, frag := range []string{"uniform", "mild", "extreme", "TACO", "Scaffold", "drops", "stale", "t_wall"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("straggler render missing %q:\n%s", frag, s)
		}
	}
	// 3 fleets × 3 methods.
	if rows := strings.Count(s, "| "); rows == 0 {
		t.Fatalf("no table rows rendered:\n%s", s)
	}
	for _, fleet := range []string{"uniform", "mild", "extreme"} {
		if strings.Count(s, fleet) < 3 {
			t.Fatalf("fleet %s missing rows:\n%s", fleet, s)
		}
	}
}
