package experiments

import (
	"fmt"

	"repro/internal/fl"
	"repro/internal/report"
)

// Scale100k pushes the scalability study two orders of magnitude past
// Scale1k: one hundred thousand clients built by tiling 100 Dirichlet
// shards 1000× (Profile.FleetMultiplier — data stays O(100) shards while
// the fleet is 100k client identities, each with its own sampling
// stream), at 0.1% participation so every round aggregates ~100 fresh
// participants. What the study pins down is the server's fixed per-round
// overhead at fleet scale: participant selection, fault bookkeeping, and
// the uplink ledger all walk the full 100k-client fleet every round,
// while training cost stays proportional to the participants.
func Scale100k(r *Runner) (*report.Table, error) {
	algs := []string{"FedAvg", "TACO"}
	const ds = "adult"
	t := &report.Table{Title: "Scale-100k: 100,000 tiled Dirichlet clients, 0.1% participation (final / best accuracy)"}
	t.Columns = []string{"Method", ds}
	for _, alg := range algs {
		key := fmt.Sprintf("scale100k/%s/%s", ds, alg)
		res, err := r.RunOneWithProfile(key, ds, alg,
			func(p *Profile) {
				p.Clients = 100
				p.FleetMultiplier = 1000
				p.Partition = PartDirichlet
				p.DirPhi = 0.3
				// ~100 participants per round keeps the training budget at
				// Scale1k's level while the fleet is 100× larger.
				p.Rounds = 6
				p.LocalSteps = 4
				if r.Scale == ScaleBench {
					p.Rounds, p.LocalSteps = 4, 3
				}
			},
			func(cfg *fl.Config, alg fl.Algorithm) {
				cfg.ParticipationFraction = 0.001
			})
		if err != nil {
			return nil, err
		}
		if res.Run.Diverged {
			t.AddRow(alg, "×")
		} else {
			t.AddRow(alg, report.Pct(res.Run.FinalAccuracy())+" / "+report.Pct(res.Run.BestAccuracy()))
		}
	}
	t.Notes = append(t.Notes,
		"hundred-thousand-client regime: tiled shards mean replicas share bytes but not",
		"sampling streams; per-round cost is ~100 local rounds of training plus O(fleet)",
		"server bookkeeping, which is what the throughput benchmark tracks.")
	return t, nil
}
