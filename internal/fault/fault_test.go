package fault

import (
	"strings"
	"testing"

	"repro/internal/simclock"
)

func TestParseFault(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"crash", Spec{Kind: KindCrash, Frac: 0.25}},
		{"crash:0.2", Spec{Kind: KindCrash, Frac: 0.2}},
		{"drop:0.5", Spec{Kind: KindDrop, Frac: 0.5}},
		{"dup", Spec{Kind: KindDup, Frac: 0.25}},
		{"dup:1", Spec{Kind: KindDup, Frac: 1}},
		{"slow", Spec{Kind: KindSlow, Frac: 0.25, Param: 4}},
		{"slow:0.3:8", Spec{Kind: KindSlow, Frac: 0.3, Param: 8}},
		{" slow : 0.3 : 8 ", Spec{Kind: KindSlow, Frac: 0.3, Param: 8}},
		{"servercrash", Spec{Kind: KindServerCrash, Round: 1}},
		{"servercrash:5", Spec{Kind: KindServerCrash, Round: 5}},
	}
	for _, c := range cases {
		got, err := ParseFault(c.in)
		if err != nil {
			t.Fatalf("ParseFault(%q): %v", c.in, err)
		}
		if got.Kind != c.want.Kind || got.Frac != c.want.Frac || got.Param != c.want.Param || got.Round != c.want.Round {
			t.Errorf("ParseFault(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseFaultErrors(t *testing.T) {
	bad := []string{
		"",                // unknown kind
		"meteor",          // unknown kind
		"crash:1",         // certain crash livelocks async
		"crash:0",         // zero-probability fault selects nothing
		"crash:-0.1",      // negative
		"drop:1.5",        // out of range
		"dup:0",           // zero probability
		"slow:0.3:0.5",    // factor < 1
		"slow:0.3:4:9",    // too many fields
		"crash:zebra",     // non-numeric fraction
		"slow:0.3:zebra",  // non-numeric parameter
		"servercrash:0",   // nothing to recover
		"servercrash:-3",  // negative round
		"servercrash:1:2", // extra field
		"servercrash:x",   // non-numeric round
	}
	for _, in := range bad {
		if _, err := ParseFault(in); err == nil {
			t.Errorf("ParseFault(%q): expected error", in)
		}
	}
}

func TestParseFaults(t *testing.T) {
	specs, err := ParseFaults("crash:0.2,drop:0.1,servercrash:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[0].Kind != KindCrash || specs[1].Kind != KindDrop || specs[2].Kind != KindServerCrash {
		t.Fatalf("ParseFaults: got %+v", specs)
	}
	if specs, err := ParseFaults("  "); err != nil || specs != nil {
		t.Fatalf("ParseFaults(blank) = %v, %v; want nil, nil", specs, err)
	}
	if _, err := ParseFaults("crash:0.2,bogus"); err == nil {
		t.Fatal("ParseFaults with a bad field: expected error")
	}
}

func TestValidateWindowAndClients(t *testing.T) {
	s := Spec{Kind: KindCrash, Frac: 0.2, Window: simclock.Trace{PeriodSec: -1}}
	if err := s.Validate(); err == nil {
		t.Fatal("negative window period: expected error")
	}
	s = Spec{Kind: KindCrash, Frac: 0.2, Clients: []int{3, -1}}
	if err := s.Validate(); err == nil {
		t.Fatal("negative client id: expected error")
	}
	s = Spec{Kind: KindServerCrash, Round: 2, Clients: []int{1}}
	if err := s.Validate(); err == nil {
		t.Fatal("servercrash with clients: expected error")
	}
}

func TestSubjects(t *testing.T) {
	s := Spec{Kind: KindCrash, Frac: 0.2}
	if got := s.Subjects(4); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("Subjects(4) with empty Clients = %v", got)
	}
	s.Clients = []int{5, 1, 3, 1, 9}
	got := s.Subjects(6)
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Subjects = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Subjects = %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	for _, in := range []string{"crash:0.2", "slow:0.3:8", "servercrash:5"} {
		spec, err := ParseFault(in)
		if err != nil {
			t.Fatal(err)
		}
		if spec.String() != in {
			t.Errorf("String() = %q, want %q", spec.String(), in)
		}
	}
}

func FuzzParseFault(f *testing.F) {
	for _, seed := range []string{"crash", "crash:0.2", "drop:0.5", "dup:1", "slow:0.3:4", "servercrash:5", "x:y:z", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseFault(s)
		if err != nil {
			return
		}
		// Every successfully parsed spec must validate and re-parse to an
		// equivalent spec via its String form.
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseFault(%q) accepted a spec that fails Validate: %v", s, verr)
		}
		if len(spec.Subjects(8)) == 0 && spec.PerDispatch() {
			t.Fatalf("ParseFault(%q): per-dispatch spec with no subjects", s)
		}
		round, err := ParseFault(spec.String())
		if err != nil {
			t.Fatalf("ParseFault(String(%q)=%q): %v", s, spec.String(), err)
		}
		if round.Kind != spec.Kind {
			t.Fatalf("round-trip kind mismatch: %q vs %q", round.Kind, spec.Kind)
		}
		_ = strings.TrimSpace(s)
	})
}
