// Package fault declares the benign-failure model of the simulation:
// clients that crash mid-round, uplinks that lose or duplicate payloads,
// tail-latency spikes on modeled time, and a server that dies at a given
// round and must restart from its last checkpoint. Unlike
// internal/adversary — whose clients *lie* — faulty clients are merely
// unlucky: their updates are honest but may never arrive, arrive twice,
// or arrive late.
//
// A Spec is declarative and engine-agnostic, mirroring adversary.Spec:
// the fl scheduler compiles specs into per-dispatch draws from dedicated
// rng streams (derived after every honest, adversary, and compression
// stream, so a zero-fault configuration consumes nothing and stays
// bit-identical to the fault-free golden run).
package fault

import (
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"

	"repro/internal/simclock"
)

// Kind names one failure mode.
type Kind string

const (
	// KindCrash is a client crash mid-round: the dispatched update never
	// returns. The server times out the dispatch, reclaims the slot, and
	// returns the delta-ring entry; the retry recomputes.
	KindCrash Kind = "crash"
	// KindDrop is an uplink payload loss: the client finished its local
	// work but the upload vanished. Timing and retry behave exactly like a
	// crash; the distinction is book-keeping (what the fleet operator would
	// blame).
	KindDrop Kind = "drop"
	// KindDup is an uplink duplication: the payload is delivered twice.
	// The server must be idempotent — the duplicate is counted (and its
	// bytes charged) but never aggregated twice.
	KindDup Kind = "dup"
	// KindSlow is a tail-latency spike: the dispatch's modeled compute
	// time is multiplied by the spec's factor. A spike that pushes the
	// dispatch past its timeout budget is retried like a crash.
	KindSlow Kind = "slow"
	// KindServerCrash kills the run when it reaches the start of round r
	// (the spec's Round) and restarts it from the last checkpoint,
	// replaying the lost rounds bit-identically.
	KindServerCrash Kind = "servercrash"
)

// Kinds lists every supported failure mode, client faults first.
func Kinds() []Kind {
	return []Kind{KindCrash, KindDrop, KindDup, KindSlow, KindServerCrash}
}

// KindNames returns the kinds as strings for CLI help text.
func KindNames() []string {
	ks := Kinds()
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = string(k)
	}
	return names
}

// Spec declares one fault. The zero value is invalid; construct specs
// directly or via ParseFault and check Validate.
type Spec struct {
	Kind Kind
	// Clients optionally restricts which client ids are subject to the
	// fault. Empty means every client is subject. Ignored by
	// KindServerCrash.
	Clients []int
	// Frac is the per-dispatch probability that the fault fires for a
	// subject client, drawn once per dispatch attempt from the client's
	// dedicated fault stream. Crash and drop require Frac < 1 (a certain
	// failure would livelock the async policy's re-dispatch loop).
	// Unused by KindServerCrash.
	Frac float64
	// Param is kind-specific: for KindSlow it is the multiplicative
	// latency factor (≥ 1, default 4); other client faults ignore it.
	Param float64
	// Round is the 0-based round at whose start KindServerCrash fires.
	// Unused by client faults.
	Round int
	// Window optionally gates the fault to a periodic modeled-time window
	// (e.g. a flaky network segment): the fault can only fire at dispatch
	// times the trace marks available. The zero trace means always.
	// Draws are consumed regardless of the window, so gating never shifts
	// the stream. Ignored by KindServerCrash.
	Window simclock.Trace
}

// PerDispatch reports whether the spec is resolved per client dispatch
// (everything except the server crash).
func (s Spec) PerDispatch() bool { return s.Kind != KindServerCrash }

// Validate reports malformed specs.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindCrash, KindDrop:
		if !(s.Frac > 0 && s.Frac < 1) {
			return fmt.Errorf("fault: %s frac %v must be in (0,1): a certain failure never delivers and livelocks async re-dispatch", s.Kind, s.Frac)
		}
	case KindDup:
		if !(s.Frac > 0 && s.Frac <= 1) {
			return fmt.Errorf("fault: dup frac %v must be in (0,1]", s.Frac)
		}
	case KindSlow:
		if !(s.Frac > 0 && s.Frac <= 1) {
			return fmt.Errorf("fault: slow frac %v must be in (0,1]", s.Frac)
		}
		if !(s.Param >= 1) || math.IsInf(s.Param, 0) {
			return fmt.Errorf("fault: slow factor %v must be a finite value >= 1", s.Param)
		}
	case KindServerCrash:
		if s.Round < 1 {
			return fmt.Errorf("fault: servercrash round %d must be >= 1 (there is nothing to recover before round 1)", s.Round)
		}
		if s.Frac != 0 || len(s.Clients) != 0 {
			return fmt.Errorf("fault: servercrash takes only a round, not clients or a fraction")
		}
	default:
		return fmt.Errorf("fault: unknown kind %q (valid: %v)", s.Kind, KindNames())
	}
	if s.PerDispatch() {
		for _, id := range s.Clients {
			if id < 0 {
				return fmt.Errorf("fault: client id %d must be non-negative", id)
			}
		}
		if err := s.Window.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Subjects returns the sorted client ids subject to the fault in a fleet
// of n clients: the explicit Clients list (clamped to ids < n), or every
// client when the list is empty.
func (s Spec) Subjects(n int) []int {
	if len(s.Clients) == 0 {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
	ids := slices.Clone(s.Clients)
	slices.Sort(ids)
	ids = slices.Compact(ids)
	for len(ids) > 0 && ids[len(ids)-1] >= n {
		ids = ids[:len(ids)-1]
	}
	return ids
}

// String renders the spec in ParseFault syntax.
func (s Spec) String() string {
	if s.Kind == KindServerCrash {
		return fmt.Sprintf("%s:%d", s.Kind, s.Round)
	}
	out := fmt.Sprintf("%s:%g", s.Kind, s.Frac)
	if s.Kind == KindSlow {
		out += fmt.Sprintf(":%g", s.Param)
	}
	return out
}

// ParseFault parses the CLI syntax "kind[:frac[:param]]", mirroring
// adversary.ParseAttack:
//
//	crash:0.2        each dispatch of every client crashes w.p. 0.2
//	drop             uplink loss at the default 0.25 per dispatch
//	dup:0.1          one dispatch in ten is delivered twice
//	slow:0.3:4       30% of dispatches take 4× their modeled time
//	servercrash:5    the server dies at the start of round 5
func ParseFault(s string) (Spec, error) {
	parts := strings.Split(s, ":")
	if len(parts) > 3 {
		return Spec{}, fmt.Errorf("fault: %q has too many fields (want kind[:frac[:param]])", s)
	}
	spec := Spec{Kind: Kind(strings.TrimSpace(parts[0])), Frac: 0.25}
	if spec.Kind == KindSlow {
		spec.Param = 4
	}
	if spec.Kind == KindServerCrash {
		spec.Frac = 0
		if len(parts) > 2 {
			return Spec{}, fmt.Errorf("fault: %q: servercrash takes a single round number", s)
		}
		if len(parts) == 2 {
			r, err := strconv.Atoi(strings.TrimSpace(parts[1]))
			if err != nil {
				return Spec{}, fmt.Errorf("fault: bad servercrash round %q: %w", parts[1], err)
			}
			spec.Round = r
		} else {
			spec.Round = 1
		}
		return spec, spec.Validate()
	}
	if len(parts) >= 2 && strings.TrimSpace(parts[1]) != "" {
		f, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return Spec{}, fmt.Errorf("fault: bad fraction %q: %w", parts[1], err)
		}
		spec.Frac = f
	}
	if len(parts) == 3 && strings.TrimSpace(parts[2]) != "" {
		p, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return Spec{}, fmt.Errorf("fault: bad parameter %q: %w", parts[2], err)
		}
		spec.Param = p
	}
	return spec, spec.Validate()
}

// ParseFaults parses a comma-separated list of ParseFault specs.
func ParseFaults(s string) ([]Spec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var specs []Spec
	for _, field := range strings.Split(s, ",") {
		spec, err := ParseFault(field)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
