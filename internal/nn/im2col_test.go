package nn

import (
	"testing"

	"repro/internal/rng"
)

// im2colNaive is the reference packing: walk every (row, position) pair
// and apply the definition directly, with explicit bounds checks.
func im2colNaive(dst, x []float64, inC, inH, inW, k, stride, pad, outH, outW int) {
	n := outH * outW
	for ic := 0; ic < inC; ic++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				r := (ic*k+ky)*k + kx
				for oy := 0; oy < outH; oy++ {
					for ox := 0; ox < outW; ox++ {
						iy := oy*stride - pad + ky
						ix := ox*stride - pad + kx
						v := 0.0
						if iy >= 0 && iy < inH && ix >= 0 && ix < inW {
							v = x[(ic*inH+iy)*inW+ix]
						}
						dst[r*n+oy*outW+ox] = v
					}
				}
			}
		}
	}
}

func TestIm2colAgainstNaive(t *testing.T) {
	r := rng.New(31)
	cases := []struct {
		inC, inH, inW, k, stride, pad int
	}{
		{1, 5, 5, 3, 1, 0},
		{2, 5, 5, 3, 1, 1},
		{2, 6, 6, 3, 2, 1},
		{3, 5, 7, 3, 1, 1}, // rectangular
		{2, 8, 5, 3, 2, 2},
		{1, 6, 6, 5, 2, 2}, // kernel wider than stride, heavy clipping
		{2, 4, 4, 4, 4, 0}, // stride == kernel, no overlap
		{1, 3, 3, 3, 1, 2}, // padding larger than typical, tiny input
	}
	for _, c := range cases {
		outH := (c.inH+2*c.pad-c.k)/c.stride + 1
		outW := (c.inW+2*c.pad-c.k)/c.stride + 1
		if outH <= 0 || outW <= 0 {
			t.Fatalf("bad case %+v", c)
		}
		x := randInput(r, c.inC*c.inH*c.inW)
		kp := c.inC * c.k * c.k
		got := make([]float64, kp*outH*outW)
		want := make([]float64, kp*outH*outW)
		Im2col(got, x, c.inC, c.inH, c.inW, c.k, c.stride, c.pad, outH, outW)
		im2colNaive(want, x, c.inC, c.inH, c.inW, c.k, c.stride, c.pad, outH, outW)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("case %+v: element %d: got %v, want %v", c, i, got[i], want[i])
			}
		}
	}
}

// TestCol2imAdjoint verifies <Im2col(x), u> == <x, col2im(u)> for random
// x and u, which characterizes col2im as the exact adjoint of Im2col — the
// property the conv backward pass relies on.
func TestCol2imAdjoint(t *testing.T) {
	r := rng.New(37)
	const (
		inC, inH, inW  = 2, 6, 5
		k, stride, pad = 3, 2, 1
	)
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	kp := inC * k * k
	n := outH * outW

	x := randInput(r, inC*inH*inW)
	u := randInput(r, kp*n)
	col := make([]float64, kp*n)
	Im2col(col, x, inC, inH, inW, k, stride, pad, outH, outW)
	back := make([]float64, inC*inH*inW)
	col2im(back, u, inC, inH, inW, k, stride, pad, outH, outW)

	var lhs, rhs float64
	for i := range col {
		lhs += col[i] * u[i]
	}
	for i := range x {
		rhs += x[i] * back[i]
	}
	if diff := lhs - rhs; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("adjoint mismatch: <im2col(x),u>=%v, <x,col2im(u)>=%v", lhs, rhs)
	}
}

// TestAccuracyParallelMatchesSequential pins the worker-pool evaluation to
// the sequential result: the shards partition the batches and counting is
// integer, so any worker count must produce the identical accuracy.
func TestAccuracyParallelMatchesSequential(t *testing.T) {
	net := MLP(6, 3)
	r := rng.New(41)
	params := net.InitParams(r)
	const total, maxBatch = 103, 8 // 13 batches, last one ragged
	xs := randInput(r, total*6)
	labels := randLabels(r, total, 3)

	eng := NewEngine(net, maxBatch)
	want := eng.accuracyWorkers(params, xs, labels, 1)
	for _, workers := range []int{2, 3, 7, 16, 64} {
		if got := eng.accuracyWorkers(params, xs, labels, workers); got != want {
			t.Fatalf("accuracy with %d workers = %v, sequential = %v", workers, got, want)
		}
	}
	if got := eng.Accuracy(params, xs, labels); got != want {
		t.Fatalf("Accuracy = %v, sequential = %v", got, want)
	}
}
