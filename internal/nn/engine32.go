package nn

import "fmt"

// Engine32 is the float32 twin of Engine: it executes forward and backward
// passes over float32 parameters and activations, calling each layer's
// forward32/backward32 methods. The loss scalar it returns is float64 —
// training-curve metrics stay full precision even when the compute path is
// fp32. Like Engine, it owns all activation and scratch buffers and is not
// safe for concurrent use; server-side evaluation stays on the float64
// Engine, so Engine32 carries only the training entry points.
type Engine32 struct {
	net      *Network
	maxBatch int
	acts     [][]float32
	dacts    [][]float32
	scratch  []scratch32
}

// NewEngine32 creates a float32 execution engine supporting batches up to
// maxBatch.
func NewEngine32(net *Network, maxBatch int) *Engine32 {
	if maxBatch <= 0 {
		panic(fmt.Sprintf("nn: NewEngine32 maxBatch %d must be positive", maxBatch))
	}
	e := &Engine32{
		net:      net,
		maxBatch: maxBatch,
		acts:     make([][]float32, len(net.layers)+1),
		dacts:    make([][]float32, len(net.layers)+1),
		scratch:  make([]scratch32, len(net.layers)),
	}
	for i, l := range net.layers {
		e.acts[i+1] = make([]float32, maxBatch*l.outShape().Size())
	}
	return e
}

// ensureGradBuffers mirrors Engine.ensureGradBuffers: backward-pass
// buffers are allocated on first Gradient call.
func (e *Engine32) ensureGradBuffers() {
	if e.dacts[0] != nil {
		return
	}
	e.dacts[0] = make([]float32, e.maxBatch*e.net.in.Size())
	for i, l := range e.net.layers {
		e.dacts[i+1] = make([]float32, e.maxBatch*l.outShape().Size())
	}
}

// Net returns the architecture this engine executes.
func (e *Engine32) Net() *Network { return e.net }

func (e *Engine32) checkBatch(x []float32, batch int) {
	if batch <= 0 || batch > e.maxBatch {
		panic(fmt.Sprintf("nn: batch %d out of range (1..%d)", batch, e.maxBatch))
	}
	if len(x) < batch*e.net.in.Size() {
		panic(fmt.Sprintf("nn: input has %d floats, need %d", len(x), batch*e.net.in.Size()))
	}
}

func (e *Engine32) forwardPass(params, x []float32, batch int) []float32 {
	e.acts[0] = x
	for i, l := range e.net.layers {
		off := e.net.offsets[i]
		p := params[off : off+l.paramCount()]
		l.forward32(p, e.acts[i], e.acts[i+1], batch, &e.scratch[i])
	}
	return e.acts[len(e.net.layers)]
}

// Gradient runs a full forward/backward pass over the mini-batch x (row-
// major batch×inputSize) with integer labels, writes the gradient of the
// mean loss into grad (zeroed first), and returns the mean loss.
func (e *Engine32) Gradient(params, x []float32, labels []int, grad []float32) float64 {
	batch := len(labels)
	e.checkBatch(x, batch)
	if len(grad) != e.net.total {
		panic(fmt.Sprintf("nn: grad has %d elements, want %d", len(grad), e.net.total))
	}
	e.ensureGradBuffers()
	logits := e.forwardPass(params, x, batch)
	nl := len(e.net.layers)
	loss := softmaxCrossEntropy(logits[:batch*e.net.classes], labels, e.net.classes, e.dacts[nl])
	zeroF(grad)
	for i := nl - 1; i >= 0; i-- {
		l := e.net.layers[i]
		off := e.net.offsets[i]
		p := params[off : off+l.paramCount()]
		dp := grad[off : off+l.paramCount()]
		l.backward32(p, e.acts[i], e.acts[i+1], e.dacts[i+1], e.dacts[i], dp, batch, &e.scratch[i])
	}
	return loss
}

// Loss runs a forward pass only and returns the mean cross-entropy loss.
func (e *Engine32) Loss(params, x []float32, labels []int) float64 {
	batch := len(labels)
	e.checkBatch(x, batch)
	logits := e.forwardPass(params, x, batch)
	return softmaxCrossEntropy(logits[:batch*e.net.classes], labels, e.net.classes, nil)
}
