package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/vecmath"
)

// Float32-path tests: finite-difference gradient checks against the fp32
// analytic backward pass, and a differential check of Engine32 against the
// float64 Engine on identical (narrowed) inputs. Tolerances are set by
// fp32 arithmetic, not the layer math — the generic bodies are shared with
// the float64 path, which gradcheck_test.go pins at 1e-4.
// The tolerance leaves headroom for the pure-Go kernel path (noasm),
// whose different summation order shifts the marginal cases by a few
// percent; genuinely wrong gradients fail at O(1).
const (
	gcStep32 = 5e-3
	gcTol32  = 3e-2
)

func checkNet32(t *testing.T, net *Network, batch int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	params64 := net.InitParams(r)
	x64 := randInput(r, batch*net.InShape().Size())
	labels := randLabels(r, batch, net.OutSize())
	params := make([]float32, len(params64))
	x := make([]float32, len(x64))
	vecmath.Narrow(params, params64)
	vecmath.Narrow(x, x64)
	if got := GradCheck32(net, params, x, labels, gcStep32); got > gcTol32 {
		t.Fatalf("fp32 gradient check failed: max relative error %.3g > %.3g\nnet:\n%s", got, gcTol32, net)
	}
}

func TestGrad32Dense(t *testing.T) {
	net := NewBuilder(Vec(7)).Dense(5).Dense(3).MustBuild()
	checkNet32(t, net, 4, 101)
}

func TestGrad32DenseReLUTanh(t *testing.T) {
	net := NewBuilder(Vec(6)).Dense(8).ReLU().Dense(8).Tanh().Dense(4).MustBuild()
	checkNet32(t, net, 3, 102)
}

// The conv nets omit ReLU: at the coarse step fp32 loss resolution
// requires, finite differences that cross a ReLU kink produce spurious
// errors far above the smooth-path tolerance. ReLU's fp32 backward is
// covered by TestGrad32DenseReLUTanh and the engine differential below.

func TestGrad32Conv2D(t *testing.T) {
	net := NewBuilder(Shape{C: 2, H: 5, W: 5}).
		Conv2D(3, 3, 1, 1).
		Dense(4).
		MustBuild()
	checkNet32(t, net, 3, 103)
}

func TestGrad32Conv2DStridePad(t *testing.T) {
	// Stride > 1 with pad > 0 exercises every valid-range edge of the
	// generic im2col packing in the fp32 instantiation.
	net := NewBuilder(Shape{C: 2, H: 7, W: 7}).
		Conv2D(3, 3, 2, 2).
		Dense(4).
		MustBuild()
	checkNet32(t, net, 2, 104)
}

func TestGrad32Conv2DRect(t *testing.T) {
	net := NewBuilder(Shape{C: 2, H: 5, W: 7}).
		Conv2D(3, 3, 1, 1).
		Dense(4).
		MustBuild()
	checkNet32(t, net, 2, 105)
}

func TestGrad32LSTM(t *testing.T) {
	net := NewBuilder(Vec(12)).
		LSTM(3, 4, 5).
		Dense(3).
		MustBuild()
	checkNet32(t, net, 3, 107)
}

// TestEngine32MatchesEngine64 runs the same gradient step through both
// engines on identical (float32-representable) parameters and inputs and
// requires the fp32 gradient to track the fp64 one within an fp32-scale
// relative tolerance. This catches dispatch mistakes — an f32 kernel
// routing to the wrong variant — that per-precision gradchecks cannot.
func TestEngine32MatchesEngine64(t *testing.T) {
	nets := map[string]*Network{
		"mlp":  NewBuilder(Vec(10)).Dense(16).ReLU().Dense(4).MustBuild(),
		"cnn":  NewBuilder(Shape{C: 1, H: 8, W: 8}).Conv2D(4, 3, 1, 1).ReLU().MaxPool2D(2).Dense(4).MustBuild(),
		"lstm": NewBuilder(Vec(20)).LSTM(4, 5, 6).Dense(3).MustBuild(),
		// Residual + pooling go through the differential check rather than
		// fp32 finite differences: the ReLU/argmax kinks make fp32-scale
		// difference quotients too noisy at the step size fp32 loss
		// resolution demands.
		"resnet": NewBuilder(Shape{C: 2, H: 4, W: 4}).Residual().MaxPool2D(2).GlobalAvgPool().Dense(3).MustBuild(),
	}
	for name, net := range nets {
		r := rng.New(42)
		params64 := net.InitParams(r)
		batch := 4
		x64 := randInput(r, batch*net.InShape().Size())
		labels := randLabels(r, batch, net.OutSize())
		// Narrow then widen so both paths see bit-identical values.
		params32 := make([]float32, len(params64))
		x32 := make([]float32, len(x64))
		vecmath.Narrow(params32, params64)
		vecmath.Narrow(x32, x64)
		vecmath.Widen(params64, params32)
		vecmath.Widen(x64, x32)

		e64 := NewEngine(net, batch)
		e32 := NewEngine32(net, batch)
		g64 := make([]float64, net.NumParams())
		g32 := make([]float32, net.NumParams())
		loss64 := e64.Gradient(params64, x64, labels, g64)
		loss32 := e32.Gradient(params32, x32, labels, g32)
		if math.Abs(loss64-loss32) > 1e-4*(math.Abs(loss64)+1) {
			t.Fatalf("%s: loss fp32 %v vs fp64 %v", name, loss32, loss64)
		}
		var gnorm float64
		for _, v := range g64 {
			gnorm += v * v
		}
		gnorm = math.Sqrt(gnorm / float64(len(g64)))
		for i := range g64 {
			if d := math.Abs(float64(g32[i]) - g64[i]); d > 1e-3*(math.Abs(g64[i])+gnorm) {
				t.Fatalf("%s: grad[%d] fp32 %v vs fp64 %v (|diff| %g)", name, i, g32[i], g64[i], d)
			}
		}
	}
}

// TestGenericDispatchAllocs pins the property the fp32 hot path relies on:
// the any()-type-switch inside the generic GEMM shims does not box its
// operands, so layer passes stay allocation-free in both precisions.
func TestGenericDispatchAllocs(t *testing.T) {
	c64 := make([]float64, 16)
	a64 := make([]float64, 16)
	b64 := make([]float64, 16)
	c32 := make([]float32, 16)
	a32 := make([]float32, 16)
	b32 := make([]float32, 16)
	if n := testing.AllocsPerRun(100, func() {
		gemm(c64, a64, b64, 4, 4, 4, false)
		gemm(c32, a32, b32, 4, 4, 4, false)
	}); n != 0 {
		t.Fatalf("generic gemm dispatch allocates %v times per call pair", n)
	}
}

// TestEngine32GradientAllocFree pins the steady-state contract for the
// fp32 training path: after warm-up, a Gradient call performs no heap
// allocation (matching the float64 Engine's behavior relied on by the fl
// round loop).
func TestEngine32GradientAllocFree(t *testing.T) {
	net := NewBuilder(Shape{C: 1, H: 8, W: 8}).Conv2D(4, 3, 1, 1).ReLU().MaxPool2D(2).Dense(4).MustBuild()
	r := rng.New(7)
	params64 := net.InitParams(r)
	batch := 4
	x64 := randInput(r, batch*net.InShape().Size())
	labels := randLabels(r, batch, net.OutSize())
	params := make([]float32, len(params64))
	x := make([]float32, len(x64))
	vecmath.Narrow(params, params64)
	vecmath.Narrow(x, x64)
	e := NewEngine32(net, batch)
	grad := make([]float32, net.NumParams())
	e.Gradient(params, x, labels, grad) // warm-up: scratch + dacts
	if n := testing.AllocsPerRun(10, func() {
		e.Gradient(params, x, labels, grad)
	}); n != 0 {
		t.Fatalf("Engine32.Gradient allocates %v times per call after warm-up", n)
	}
}
