package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// maxPool2d is a non-overlapping k×k max pooling layer. The winning input
// index per output cell is recorded in scratch for the backward pass.
type maxPool2d struct {
	in  Shape
	out Shape
	k   int
}

// MaxPool2D appends k×k max pooling with stride k. The spatial extent must
// be divisible by k.
func (b *Builder) MaxPool2D(k int) *Builder {
	in := b.cur()
	if k <= 0 {
		return b.add(nil, fmt.Errorf("nn: MaxPool2D window %d must be positive", k))
	}
	if in.H%k != 0 || in.W%k != 0 {
		return b.add(nil, fmt.Errorf("nn: MaxPool2D window %d does not divide input %v", k, in))
	}
	return b.add(&maxPool2d{
		in:  in,
		out: Shape{C: in.C, H: in.H / k, W: in.W / k},
		k:   k,
	}, nil)
}

func (l *maxPool2d) name() string                   { return "maxpool2d" }
func (l *maxPool2d) inShape() Shape                 { return l.in }
func (l *maxPool2d) outShape() Shape                { return l.out }
func (l *maxPool2d) paramCount() int                { return 0 }
func (l *maxPool2d) initParams([]float64, *rng.RNG) {}

func (l *maxPool2d) forward(_, x, y []float64, batch int, sc *scratch) {
	maxPoolForward(l, x, y, batch, sc)
}

func (l *maxPool2d) forward32(_, x, y []float32, batch int, sc *scratch32) {
	maxPoolForward(l, x, y, batch, sc)
}

func (l *maxPool2d) backward(_, _, _, dy, dx, _ []float64, batch int, sc *scratch) {
	maxPoolBackward(l, dy, dx, batch, sc.ints)
}

func (l *maxPool2d) backward32(_, _, _, dy, dx, _ []float32, batch int, sc *scratch32) {
	maxPoolBackward(l, dy, dx, batch, sc.ints)
}

func maxPoolForward[F Float](l *maxPool2d, x, y []F, batch int, sc *scratchOf[F]) {
	inH, inW := l.in.H, l.in.W
	outH, outW := l.out.H, l.out.W
	inSize, outSize := l.in.Size(), l.out.Size()
	arg := sc.intBuf(batch * outSize)
	if xs, ok := any(x).([]float32); ok && l.k == 2 {
		maxPool2x2Forward32(l, xs, any(y).([]float32), arg, batch)
		return
	}
	for s := 0; s < batch; s++ {
		xs := x[s*inSize : (s+1)*inSize]
		ys := y[s*outSize : (s+1)*outSize]
		args := arg[s*outSize : (s+1)*outSize]
		for c := 0; c < l.in.C; c++ {
			base := c * inH * inW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					best := F(math.Inf(-1))
					bestIdx := -1
					for ky := 0; ky < l.k; ky++ {
						row := base + (oy*l.k+ky)*inW + ox*l.k
						for kx := 0; kx < l.k; kx++ {
							if v := xs[row+kx]; v > best {
								best = v
								bestIdx = row + kx
							}
						}
					}
					o := (c*outH+oy)*outW + ox
					ys[o] = best
					args[o] = bestIdx
				}
			}
		}
	}
}

// maxPool2x2Forward32 is the float32 fast path for the ubiquitous 2×2
// window: the window loops unroll into three compares over two adjacent
// input rows (no −Inf sentinel, no per-tap index arithmetic), which
// roughly halves the pooling cost on the CNN models. Tie-breaking keeps
// the generic loop's first-wins order (row-major within the window), so
// the recorded argmax — and therefore the backward routing — is
// identical.
func maxPool2x2Forward32(l *maxPool2d, x, y []float32, arg []int, batch int) {
	inH, inW := l.in.H, l.in.W
	outH, outW := l.out.H, l.out.W
	inSize, outSize := l.in.Size(), l.out.Size()
	for s := 0; s < batch; s++ {
		xs := x[s*inSize : (s+1)*inSize]
		ys := y[s*outSize : (s+1)*outSize]
		args := arg[s*outSize : (s+1)*outSize]
		for c := 0; c < l.in.C; c++ {
			base := c * inH * inW
			for oy := 0; oy < outH; oy++ {
				r0 := base + (2*oy)*inW
				r1 := r0 + inW
				o := (c*outH + oy) * outW
				for ox := 0; ox < outW; ox++ {
					i0 := r0 + 2*ox
					i1 := r1 + 2*ox
					bi, bv := i0, xs[i0]
					if v := xs[i0+1]; v > bv {
						bi, bv = i0+1, v
					}
					if v := xs[i1]; v > bv {
						bi, bv = i1, v
					}
					if v := xs[i1+1]; v > bv {
						bi, bv = i1+1, v
					}
					ys[o+ox] = bv
					args[o+ox] = bi
				}
			}
		}
	}
}

func maxPoolBackward[F Float](l *maxPool2d, dy, dx []F, batch int, ints []int) {
	inSize, outSize := l.in.Size(), l.out.Size()
	arg := ints[:batch*outSize] // recorded by forward
	zeroF(dx[:batch*inSize])
	for s := 0; s < batch; s++ {
		dys := dy[s*outSize : (s+1)*outSize]
		dxs := dx[s*inSize : (s+1)*inSize]
		args := arg[s*outSize : (s+1)*outSize]
		for o, g := range dys {
			dxs[args[o]] += g
		}
	}
}

// globalAvgPool reduces each channel's spatial map to its mean, producing a
// C-vector. Used by the ResNet-style model head.
type globalAvgPool struct {
	in Shape
}

// GlobalAvgPool appends a global average pooling layer.
func (b *Builder) GlobalAvgPool() *Builder {
	return b.add(&globalAvgPool{in: b.cur()}, nil)
}

func (l *globalAvgPool) name() string                   { return "gavgpool" }
func (l *globalAvgPool) inShape() Shape                 { return l.in }
func (l *globalAvgPool) outShape() Shape                { return Vec(l.in.C) }
func (l *globalAvgPool) paramCount() int                { return 0 }
func (l *globalAvgPool) initParams([]float64, *rng.RNG) {}

func (l *globalAvgPool) forward(_, x, y []float64, batch int, _ *scratch) {
	gavgForward(l, x, y, batch)
}

func (l *globalAvgPool) forward32(_, x, y []float32, batch int, _ *scratch32) {
	gavgForward(l, x, y, batch)
}

func (l *globalAvgPool) backward(_, _, _, dy, dx, _ []float64, batch int, _ *scratch) {
	gavgBackward(l, dy, dx, batch)
}

func (l *globalAvgPool) backward32(_, _, _, dy, dx, _ []float32, batch int, _ *scratch32) {
	gavgBackward(l, dy, dx, batch)
}

func gavgForward[F Float](l *globalAvgPool, x, y []F, batch int) {
	hw := l.in.H * l.in.W
	inSize := l.in.Size()
	inv := F(1.0 / float64(hw))
	for s := 0; s < batch; s++ {
		xs := x[s*inSize : (s+1)*inSize]
		ys := y[s*l.in.C : (s+1)*l.in.C]
		for c := 0; c < l.in.C; c++ {
			var sum F
			for i := c * hw; i < (c+1)*hw; i++ {
				sum += xs[i]
			}
			ys[c] = sum * inv
		}
	}
}

func gavgBackward[F Float](l *globalAvgPool, dy, dx []F, batch int) {
	hw := l.in.H * l.in.W
	inSize := l.in.Size()
	inv := F(1.0 / float64(hw))
	for s := 0; s < batch; s++ {
		dys := dy[s*l.in.C : (s+1)*l.in.C]
		dxs := dx[s*inSize : (s+1)*inSize]
		for c := 0; c < l.in.C; c++ {
			g := dys[c] * inv
			for i := c * hw; i < (c+1)*hw; i++ {
				dxs[i] = g
			}
		}
	}
}
