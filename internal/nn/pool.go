package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/vecmath"
)

// maxPool2d is a non-overlapping k×k max pooling layer. The winning input
// index per output cell is recorded in scratch for the backward pass.
type maxPool2d struct {
	in  Shape
	out Shape
	k   int
}

// MaxPool2D appends k×k max pooling with stride k. The spatial extent must
// be divisible by k.
func (b *Builder) MaxPool2D(k int) *Builder {
	in := b.cur()
	if k <= 0 {
		return b.add(nil, fmt.Errorf("nn: MaxPool2D window %d must be positive", k))
	}
	if in.H%k != 0 || in.W%k != 0 {
		return b.add(nil, fmt.Errorf("nn: MaxPool2D window %d does not divide input %v", k, in))
	}
	return b.add(&maxPool2d{
		in:  in,
		out: Shape{C: in.C, H: in.H / k, W: in.W / k},
		k:   k,
	}, nil)
}

func (l *maxPool2d) name() string                   { return "maxpool2d" }
func (l *maxPool2d) inShape() Shape                 { return l.in }
func (l *maxPool2d) outShape() Shape                { return l.out }
func (l *maxPool2d) paramCount() int                { return 0 }
func (l *maxPool2d) initParams([]float64, *rng.RNG) {}

func (l *maxPool2d) forward(_, x, y []float64, batch int, sc *scratch) {
	inH, inW := l.in.H, l.in.W
	outH, outW := l.out.H, l.out.W
	inSize, outSize := l.in.Size(), l.out.Size()
	arg := sc.intBuf(batch * outSize)
	for s := 0; s < batch; s++ {
		xs := x[s*inSize : (s+1)*inSize]
		ys := y[s*outSize : (s+1)*outSize]
		args := arg[s*outSize : (s+1)*outSize]
		for c := 0; c < l.in.C; c++ {
			base := c * inH * inW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					best := math.Inf(-1)
					bestIdx := -1
					for ky := 0; ky < l.k; ky++ {
						row := base + (oy*l.k+ky)*inW + ox*l.k
						for kx := 0; kx < l.k; kx++ {
							if v := xs[row+kx]; v > best {
								best = v
								bestIdx = row + kx
							}
						}
					}
					o := (c*outH+oy)*outW + ox
					ys[o] = best
					args[o] = bestIdx
				}
			}
		}
	}
}

func (l *maxPool2d) backward(_, _, _, dy, dx, _ []float64, batch int, sc *scratch) {
	inSize, outSize := l.in.Size(), l.out.Size()
	arg := sc.ints[:batch*outSize] // recorded by forward
	vecmath.Zero(dx[:batch*inSize])
	for s := 0; s < batch; s++ {
		dys := dy[s*outSize : (s+1)*outSize]
		dxs := dx[s*inSize : (s+1)*inSize]
		args := arg[s*outSize : (s+1)*outSize]
		for o, g := range dys {
			dxs[args[o]] += g
		}
	}
}

// globalAvgPool reduces each channel's spatial map to its mean, producing a
// C-vector. Used by the ResNet-style model head.
type globalAvgPool struct {
	in Shape
}

// GlobalAvgPool appends a global average pooling layer.
func (b *Builder) GlobalAvgPool() *Builder {
	return b.add(&globalAvgPool{in: b.cur()}, nil)
}

func (l *globalAvgPool) name() string                   { return "gavgpool" }
func (l *globalAvgPool) inShape() Shape                 { return l.in }
func (l *globalAvgPool) outShape() Shape                { return Vec(l.in.C) }
func (l *globalAvgPool) paramCount() int                { return 0 }
func (l *globalAvgPool) initParams([]float64, *rng.RNG) {}

func (l *globalAvgPool) forward(_, x, y []float64, batch int, _ *scratch) {
	hw := l.in.H * l.in.W
	inSize := l.in.Size()
	inv := 1.0 / float64(hw)
	for s := 0; s < batch; s++ {
		xs := x[s*inSize : (s+1)*inSize]
		ys := y[s*l.in.C : (s+1)*l.in.C]
		for c := 0; c < l.in.C; c++ {
			var sum float64
			for i := c * hw; i < (c+1)*hw; i++ {
				sum += xs[i]
			}
			ys[c] = sum * inv
		}
	}
}

func (l *globalAvgPool) backward(_, _, _, dy, dx, _ []float64, batch int, _ *scratch) {
	hw := l.in.H * l.in.W
	inSize := l.in.Size()
	inv := 1.0 / float64(hw)
	for s := 0; s < batch; s++ {
		dys := dy[s*l.in.C : (s+1)*l.in.C]
		dxs := dx[s*inSize : (s+1)*inSize]
		for c := 0; c < l.in.C; c++ {
			g := dys[c] * inv
			for i := c * hw; i < (c+1)*hw; i++ {
				dxs[i] = g
			}
		}
	}
}
