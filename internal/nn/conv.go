package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/vecmath"
)

// conv2d is a 2-D convolution with square kernels, arbitrary stride, and
// symmetric zero padding. Weights are laid out [outC][inC][k][k] followed
// by one bias per output channel.
//
// Forward and backward are lowered onto the vecmath GEMM kernels via
// im2col/col2im (see DESIGN.md §2): each sample's input is packed into a
// K×N patch matrix (K = inC·k·k patch rows, N = outH·outW output
// positions), so the convolution itself is a dense outC×K×N matrix
// product. Stride and zero padding are resolved once per row in the
// packing step, which keeps every inner loop branch-free.
type conv2d struct {
	in          Shape
	out         Shape
	outC        int
	k           int
	stride, pad int
}

// Conv2D appends a convolution with outC output channels, k×k kernels, the
// given stride, and symmetric zero padding pad.
func (b *Builder) Conv2D(outC, k, stride, pad int) *Builder {
	in := b.cur()
	l, err := newConv2D(in, outC, k, stride, pad)
	return b.add(l, err)
}

func newConv2D(in Shape, outC, k, stride, pad int) (*conv2d, error) {
	if outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("nn: Conv2D(outC=%d, k=%d, stride=%d, pad=%d) invalid", outC, k, stride, pad)
	}
	oh := (in.H+2*pad-k)/stride + 1
	ow := (in.W+2*pad-k)/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: Conv2D kernel %d does not fit input %v with stride %d pad %d", k, in, stride, pad)
	}
	return &conv2d{
		in:     in,
		out:    Shape{C: outC, H: oh, W: ow},
		outC:   outC,
		k:      k,
		stride: stride,
		pad:    pad,
	}, nil
}

func (l *conv2d) name() string    { return "conv2d" }
func (l *conv2d) inShape() Shape  { return l.in }
func (l *conv2d) outShape() Shape { return l.out }
func (l *conv2d) paramCount() int { return l.outC*l.in.C*l.k*l.k + l.outC }

// patchSize is K, the im2col row count: one row per (inC, ky, kx) tap.
func (l *conv2d) patchSize() int { return l.in.C * l.k * l.k }

func (l *conv2d) initParams(params []float64, r *rng.RNG) {
	fanIn := l.in.C * l.k * l.k
	limit := math.Sqrt(2.0 / float64(fanIn)) // Kaiming-normal-ish scale, uniform draw
	nw := l.outC * fanIn
	for i := 0; i < nw; i++ {
		params[i] = (2*r.Float64() - 1) * limit
	}
	vecmath.Zero(params[nw:])
}

// validRange returns the [lo, hi) interval of output coordinates whose
// input coordinate o*stride-pad+koff lands inside [0, extent). Outside the
// interval the tap reads implicit zero padding. Resolving the interval
// here is what removes the per-element bounds checks from the pack loops.
func validRange(outExtent, extent, stride, pad, koff int) (lo, hi int) {
	lo = 0
	if d := pad - koff; d > 0 {
		lo = (d + stride - 1) / stride
	}
	hi = outExtent
	top := extent - 1 + pad - koff
	if top < 0 {
		return 0, 0
	}
	if h := top/stride + 1; h < hi {
		hi = h
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Im2col packs one sample's activation volume (inC×inH×inW, row-major)
// into the K×N patch matrix dst, where K = inC·k·k and N = outH·outW.
// Row r = (ic·k+ky)·k+kx of dst holds, for every output position
// (oy, ox) in column oy·outW+ox, the input element
// x[ic][oy·stride-pad+ky][ox·stride-pad+kx], or 0 where that index falls
// in the zero padding. It is exported for the micro-benchmarks and for
// downstream code that wants the packed patch matrix directly.
func Im2col(dst, x []float64, inC, inH, inW, k, stride, pad, outH, outW int) {
	im2col(dst, x, inC, inH, inW, k, stride, pad, outH, outW)
}

func im2col[F Float](dst, x []F, inC, inH, inW, k, stride, pad, outH, outW int) {
	n := outH * outW
	r := 0
	for ic := 0; ic < inC; ic++ {
		plane := x[ic*inH*inW : (ic+1)*inH*inW]
		for ky := 0; ky < k; ky++ {
			oyLo, oyHi := validRange(outH, inH, stride, pad, ky)
			for kx := 0; kx < k; kx++ {
				row := dst[r*n : (r+1)*n]
				r++
				oxLo, oxHi := validRange(outW, inW, stride, pad, kx)
				if oxLo >= oxHi {
					zeroF(row)
					continue
				}
				// Zero only the padding margins — the rows above/below the
				// valid oy range and the left/right edges of valid rows —
				// so interior taps (the common case at pad≤1) are written
				// exactly once.
				zeroF(row[:oyLo*outW])
				zeroF(row[oyHi*outW:])
				for oy := oyLo; oy < oyHi; oy++ {
					iy := oy*stride - pad + ky
					src := plane[iy*inW:]
					zeroF(row[oy*outW : oy*outW+oxLo])
					zeroF(row[oy*outW+oxHi : (oy+1)*outW])
					seg := row[oy*outW+oxLo : oy*outW+oxHi]
					ix := oxLo*stride - pad + kx
					if stride == 1 {
						copy(seg, src[ix:ix+len(seg)])
						continue
					}
					for i := range seg {
						seg[i] = src[ix]
						ix += stride
					}
				}
			}
		}
	}
}

// col2im is the adjoint of im2col: it scatter-adds the K×N patch-gradient
// matrix dcol back into the activation-gradient volume dx (inC×inH×inW),
// which the caller must have zeroed. Taps that read zero padding in the
// forward pass contribute nothing, mirroring im2col's valid ranges.
func col2im[F Float](dx, dcol []F, inC, inH, inW, k, stride, pad, outH, outW int) {
	if dxs, ok := any(dx).([]float32); ok {
		col2im32(dxs, any(dcol).([]float32), inC, inH, inW, k, stride, pad, outH, outW)
		return
	}
	n := outH * outW
	r := 0
	for ic := 0; ic < inC; ic++ {
		plane := dx[ic*inH*inW : (ic+1)*inH*inW]
		for ky := 0; ky < k; ky++ {
			oyLo, oyHi := validRange(outH, inH, stride, pad, ky)
			for kx := 0; kx < k; kx++ {
				row := dcol[r*n : (r+1)*n]
				r++
				oxLo, oxHi := validRange(outW, inW, stride, pad, kx)
				if oxLo >= oxHi {
					continue
				}
				for oy := oyLo; oy < oyHi; oy++ {
					iy := oy*stride - pad + ky
					dst := plane[iy*inW:]
					seg := row[oy*outW+oxLo : oy*outW+oxHi]
					ix := oxLo*stride - pad + kx
					for i := range seg {
						dst[ix] += seg[i]
						ix += stride
					}
				}
			}
		}
	}
}

// col2im32 is the float32 specialization of col2im: identical traversal,
// but the contiguous stride-1 segments — the whole inner loop for the
// stride-1 convolutions every model here uses — accumulate through the
// AVX2 vecmath.Add32 kernel instead of a scalar read-add-store per tap.
func col2im32(dx, dcol []float32, inC, inH, inW, k, stride, pad, outH, outW int) {
	n := outH * outW
	r := 0
	for ic := 0; ic < inC; ic++ {
		plane := dx[ic*inH*inW : (ic+1)*inH*inW]
		for ky := 0; ky < k; ky++ {
			oyLo, oyHi := validRange(outH, inH, stride, pad, ky)
			for kx := 0; kx < k; kx++ {
				row := dcol[r*n : (r+1)*n]
				r++
				oxLo, oxHi := validRange(outW, inW, stride, pad, kx)
				if oxLo >= oxHi {
					continue
				}
				for oy := oyLo; oy < oyHi; oy++ {
					iy := oy*stride - pad + ky
					dst := plane[iy*inW:]
					seg := row[oy*outW+oxLo : oy*outW+oxHi]
					ix := oxLo*stride - pad + kx
					if stride == 1 {
						d := dst[ix : ix+len(seg)]
						vecmath.Add32(d, d, seg)
						continue
					}
					for i := range seg {
						dst[ix] += seg[i]
						ix += stride
					}
				}
			}
		}
	}
}

func (l *conv2d) forward(params, x, y []float64, batch int, sc *scratch) {
	convForward(l, params, x, y, batch, sc)
}

func (l *conv2d) forward32(params, x, y []float32, batch int, sc *scratch32) {
	convForward(l, params, x, y, batch, sc)
}

func (l *conv2d) backward(params, x, _, dy, dx, dparams []float64, batch int, sc *scratch) {
	convBackward(l, params, dy, dx, dparams, batch, sc)
}

func (l *conv2d) backward32(params, x, _, dy, dx, dparams []float32, batch int, sc *scratch32) {
	convBackward(l, params, dy, dx, dparams, batch, sc)
}

func convForward[F Float](l *conv2d, params, x, y []F, batch int, sc *scratchOf[F]) {
	kp := l.patchSize()
	n := l.out.H * l.out.W
	w := params[:l.outC*kp]
	bias := params[l.outC*kp:]
	inSize := l.in.Size()
	outSize := l.out.Size()
	// One K×N patch matrix per sample, kept in sc.cols so backward can
	// reuse the packing for the dW and dX products.
	cols := sc.colBuf(batch * kp * n)
	for s := 0; s < batch; s++ {
		col := cols[s*kp*n : (s+1)*kp*n]
		im2col(col, x[s*inSize:(s+1)*inSize], l.in.C, l.in.H, l.in.W, l.k, l.stride, l.pad, l.out.H, l.out.W)
		ys := y[s*outSize : (s+1)*outSize]
		// ys is outC×N row-major, exactly the GEMM output layout.
		gemm(ys, w, col, l.outC, kp, n, false)
		for oc := 0; oc < l.outC; oc++ {
			addConstF(bias[oc], ys[oc*n:(oc+1)*n])
		}
	}
}

func convBackward[F Float](l *conv2d, params, dy, dx, dparams []F, batch int, sc *scratchOf[F]) {
	kp := l.patchSize()
	n := l.out.H * l.out.W
	nw := l.outC * kp
	w := params[:nw]
	dw := dparams[:nw]
	db := dparams[nw:]
	inSize := l.in.Size()
	outSize := l.out.Size()
	cols := sc.colBuf(batch * kp * n) // packed by the preceding forward
	dcol := sc.floatBuf(kp * n)
	zeroF(dx[:batch*inSize])
	for s := 0; s < batch; s++ {
		col := cols[s*kp*n : (s+1)*kp*n]
		dys := dy[s*outSize : (s+1)*outSize]
		// dW += dY·colᵀ (outC×N · N×K).
		gemmABT(dw, dys, col, l.outC, n, kp, true)
		// db[oc] += Σ over output positions of dY[oc].
		for oc := 0; oc < l.outC; oc++ {
			db[oc] += sumF(dys[oc*n : (oc+1)*n])
		}
		// dcol = Wᵀ·dY (K×outC · outC×N), then scatter back to dX.
		gemmATB(dcol, w, dys, l.outC, kp, n, false)
		col2im(dx[s*inSize:(s+1)*inSize], dcol, l.in.C, l.in.H, l.in.W, l.k, l.stride, l.pad, l.out.H, l.out.W)
	}
}
