package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/vecmath"
)

// conv2d is a 2-D convolution with square kernels, arbitrary stride, and
// symmetric zero padding. Weights are laid out [outC][inC][k][k] followed
// by one bias per output channel.
type conv2d struct {
	in          Shape
	out         Shape
	outC        int
	k           int
	stride, pad int
}

// Conv2D appends a convolution with outC output channels, k×k kernels, the
// given stride, and symmetric zero padding pad.
func (b *Builder) Conv2D(outC, k, stride, pad int) *Builder {
	in := b.cur()
	l, err := newConv2D(in, outC, k, stride, pad)
	return b.add(l, err)
}

func newConv2D(in Shape, outC, k, stride, pad int) (*conv2d, error) {
	if outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("nn: Conv2D(outC=%d, k=%d, stride=%d, pad=%d) invalid", outC, k, stride, pad)
	}
	oh := (in.H+2*pad-k)/stride + 1
	ow := (in.W+2*pad-k)/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: Conv2D kernel %d does not fit input %v with stride %d pad %d", k, in, stride, pad)
	}
	return &conv2d{
		in:     in,
		out:    Shape{C: outC, H: oh, W: ow},
		outC:   outC,
		k:      k,
		stride: stride,
		pad:    pad,
	}, nil
}

func (l *conv2d) name() string    { return "conv2d" }
func (l *conv2d) inShape() Shape  { return l.in }
func (l *conv2d) outShape() Shape { return l.out }
func (l *conv2d) paramCount() int { return l.outC*l.in.C*l.k*l.k + l.outC }

func (l *conv2d) initParams(params []float64, r *rng.RNG) {
	fanIn := l.in.C * l.k * l.k
	limit := math.Sqrt(2.0 / float64(fanIn)) // Kaiming-normal-ish scale, uniform draw
	nw := l.outC * fanIn
	for i := 0; i < nw; i++ {
		params[i] = (2*r.Float64() - 1) * limit
	}
	vecmath.Zero(params[nw:])
}

func (l *conv2d) forward(params, x, y []float64, batch int, _ *scratch) {
	inC, inH, inW := l.in.C, l.in.H, l.in.W
	outH, outW := l.out.H, l.out.W
	ksz := l.k
	w := params[:l.outC*inC*ksz*ksz]
	bias := params[l.outC*inC*ksz*ksz:]
	inSize := l.in.Size()
	outSize := l.out.Size()
	for s := 0; s < batch; s++ {
		xs := x[s*inSize : (s+1)*inSize]
		ys := y[s*outSize : (s+1)*outSize]
		for oc := 0; oc < l.outC; oc++ {
			bOC := bias[oc]
			for oy := 0; oy < outH; oy++ {
				iy0 := oy*l.stride - l.pad
				for ox := 0; ox < outW; ox++ {
					ix0 := ox*l.stride - l.pad
					sum := bOC
					for ic := 0; ic < inC; ic++ {
						wBase := ((oc*inC + ic) * ksz) * ksz
						xBase := ic * inH * inW
						for ky := 0; ky < ksz; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= inH {
								continue
							}
							wRow := wBase + ky*ksz
							xRow := xBase + iy*inW
							for kx := 0; kx < ksz; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= inW {
									continue
								}
								sum += w[wRow+kx] * xs[xRow+ix]
							}
						}
					}
					ys[(oc*outH+oy)*outW+ox] = sum
				}
			}
		}
	}
}

func (l *conv2d) backward(params, x, _, dy, dx, dparams []float64, batch int, _ *scratch) {
	inC, inH, inW := l.in.C, l.in.H, l.in.W
	outH, outW := l.out.H, l.out.W
	ksz := l.k
	nw := l.outC * inC * ksz * ksz
	w := params[:nw]
	dw := dparams[:nw]
	db := dparams[nw:]
	inSize := l.in.Size()
	outSize := l.out.Size()
	vecmath.Zero(dx[:batch*inSize])
	for s := 0; s < batch; s++ {
		xs := x[s*inSize : (s+1)*inSize]
		dys := dy[s*outSize : (s+1)*outSize]
		dxs := dx[s*inSize : (s+1)*inSize]
		for oc := 0; oc < l.outC; oc++ {
			for oy := 0; oy < outH; oy++ {
				iy0 := oy*l.stride - l.pad
				for ox := 0; ox < outW; ox++ {
					g := dys[(oc*outH+oy)*outW+ox]
					if g == 0 {
						continue
					}
					ix0 := ox*l.stride - l.pad
					db[oc] += g
					for ic := 0; ic < inC; ic++ {
						wBase := ((oc*inC + ic) * ksz) * ksz
						xBase := ic * inH * inW
						for ky := 0; ky < ksz; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= inH {
								continue
							}
							wRow := wBase + ky*ksz
							xRow := xBase + iy*inW
							for kx := 0; kx < ksz; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= inW {
									continue
								}
								dw[wRow+kx] += g * xs[xRow+ix]
								dxs[xRow+ix] += g * w[wRow+kx]
							}
						}
					}
				}
			}
		}
	}
}
