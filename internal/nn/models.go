package nn

// Model zoo matching Table IV of the paper, scaled to the synthetic
// datasets in internal/dataset (see DESIGN.md §1 for the substitution
// rationale). Input geometry is a parameter so the same constructors serve
// both the scaled-down default experiments and larger configurations.

// MLP builds the tabular model from the paper: three hidden layers of
// widths 32, 16, and 8 with ReLU activations, used for the adult dataset.
func MLP(inFeatures, classes int) *Network {
	return NewBuilder(Vec(inFeatures)).
		Dense(32).ReLU().
		Dense(16).ReLU().
		Dense(8).ReLU().
		Dense(classes).
		MustBuild()
}

// CNN builds the image model from the paper: two convolutional layers
// followed by three fully connected layers with ReLU activations. The
// paper uses 5×5 kernels on 28×28/32×32 inputs; on the 8×8 synthetic
// images we keep two conv+pool stages with 3×3 kernels so the spatial
// reduction pattern (two halvings) matches.
func CNN(in Shape, classes int) *Network {
	return NewBuilder(in).
		Conv2D(6, 3, 1, 1).ReLU().MaxPool2D(2).
		Conv2D(12, 3, 1, 1).ReLU().MaxPool2D(2).
		Dense(48).ReLU().
		Dense(24).ReLU().
		Dense(classes).
		MustBuild()
}

// ResNetLite builds the residual network standing in for ResNet-18: a
// convolutional stem, `blocks` residual units at each of two widths with a
// strided transition, global average pooling, and a linear classifier.
func ResNetLite(in Shape, classes, blocks int) *Network {
	b := NewBuilder(in).
		Conv2D(8, 3, 1, 1).ReLU()
	for i := 0; i < blocks; i++ {
		b.Residual()
	}
	b.Conv2D(16, 3, 2, 1).ReLU()
	for i := 0; i < blocks; i++ {
		b.Residual()
	}
	return b.GlobalAvgPool().
		Dense(64).ReLU().
		Dense(classes).
		MustBuild()
}

// CharLSTM builds the next-character model standing in for the paper's
// Shakespeare LSTM: one-hot character sequences of length steps over a
// vocab-sized alphabet, a single LSTM layer, and a linear decoder.
func CharLSTM(steps, vocab, hidden int) *Network {
	return NewBuilder(Vec(steps*vocab)).
		LSTM(steps, vocab, hidden).
		Dense(vocab).
		MustBuild()
}
