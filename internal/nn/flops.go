package nn

// Deterministic floating-point-operation estimates. The simulated clock
// (internal/simclock) converts these into modeled client computation time,
// so that the paper's timing tables reproduce identically on any machine.
// Estimates count forward-pass multiply-adds as 2 flops and charge the
// backward pass at twice the forward cost, the standard rule of thumb.

// FlopsPerSample estimates the flops of one forward pass for one sample.
func (n *Network) FlopsPerSample() int64 {
	var total int64
	for _, l := range n.layers {
		total += layerFlops(l)
	}
	return total
}

// GradFlops estimates the flops of one forward+backward pass over a
// mini-batch of the given size.
func (n *Network) GradFlops(batch int) int64 {
	return 3 * n.FlopsPerSample() * int64(batch)
}

func layerFlops(l layer) int64 {
	switch v := l.(type) {
	case *dense:
		return 2 * int64(v.in.Size()) * int64(v.out)
	case *conv2d:
		out := v.out
		return 2 * int64(out.C) * int64(out.H) * int64(out.W) * int64(v.in.C) * int64(v.k) * int64(v.k)
	case *relu:
		return int64(v.in.Size())
	case *tanhLayer:
		return 4 * int64(v.in.Size())
	case *maxPool2d:
		return int64(v.in.Size())
	case *globalAvgPool:
		return int64(v.in.Size())
	case *residualBlock:
		return layerFlops(v.conv1) + layerFlops(v.conv2) + 3*int64(v.in.Size())
	case *lstm:
		// Per step: two matvecs into the four gates plus gate nonlinearities.
		perStep := 2*int64(v.inDim+v.hidden)*int64(4*v.hidden) + 10*int64(v.hidden)
		return int64(v.steps) * perStep
	default:
		return 0
	}
}
