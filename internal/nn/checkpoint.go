package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
)

// Checkpoint serialization: a compact binary format for trained parameter
// vectors. The header carries a fingerprint of the architecture (layer
// names, shapes, and parameter counts) so a checkpoint cannot be loaded
// into a different network silently.

var checkpointMagic = [8]byte{'T', 'A', 'C', 'O', 'C', 'K', 'P', '1'}

// Fingerprint returns a stable hash of the architecture: layer kinds,
// input shape, and per-layer parameter counts.
func (n *Network) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "in=%v;", n.in)
	for _, l := range n.layers {
		fmt.Fprintf(h, "%s:%v->%v:%d;", l.name(), l.inShape(), l.outShape(), l.paramCount())
	}
	return h.Sum64()
}

// SaveParams writes params as a checkpoint for this network.
func (n *Network) SaveParams(w io.Writer, params []float64) error {
	if len(params) != n.total {
		return fmt.Errorf("nn: checkpoint: have %d params, network needs %d", len(params), n.total)
	}
	var buf bytes.Buffer
	buf.Write(checkpointMagic[:])
	var header [16]byte
	binary.LittleEndian.PutUint64(header[0:8], n.Fingerprint())
	binary.LittleEndian.PutUint64(header[8:16], uint64(len(params)))
	buf.Write(header[:])
	var scratch [8]byte
	for _, v := range params {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		buf.Write(scratch[:])
	}
	_, err := w.Write(buf.Bytes())
	if err != nil {
		return fmt.Errorf("nn: checkpoint write: %w", err)
	}
	return nil
}

// LoadParams reads a checkpoint produced by SaveParams, verifying the
// architecture fingerprint and length.
func (n *Network) LoadParams(r io.Reader) ([]float64, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("nn: checkpoint read: %w", err)
	}
	if magic != checkpointMagic {
		return nil, fmt.Errorf("nn: checkpoint: bad magic %q", magic[:])
	}
	var header [16]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("nn: checkpoint read: %w", err)
	}
	fp := binary.LittleEndian.Uint64(header[0:8])
	if fp != n.Fingerprint() {
		return nil, fmt.Errorf("nn: checkpoint: architecture fingerprint %x does not match network %x", fp, n.Fingerprint())
	}
	count := binary.LittleEndian.Uint64(header[8:16])
	if count != uint64(n.total) {
		return nil, fmt.Errorf("nn: checkpoint: %d params recorded, network needs %d", count, n.total)
	}
	params := make([]float64, n.total)
	var scratch [8]byte
	for i := range params {
		if _, err := io.ReadFull(r, scratch[:]); err != nil {
			return nil, fmt.Errorf("nn: checkpoint truncated at param %d: %w", i, err)
		}
		params[i] = math.Float64frombits(binary.LittleEndian.Uint64(scratch[:]))
	}
	return params, nil
}
