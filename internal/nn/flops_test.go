package nn

import "testing"

func TestFlopsPositiveForAllModels(t *testing.T) {
	models := map[string]*Network{
		"mlp":    MLP(20, 2),
		"cnn":    CNN(Shape{C: 1, H: 8, W: 8}, 10),
		"resnet": ResNetLite(Shape{C: 3, H: 8, W: 8}, 50, 1),
		"lstm":   CharLSTM(8, 12, 16),
	}
	for name, net := range models {
		if f := net.FlopsPerSample(); f <= 0 {
			t.Fatalf("%s FlopsPerSample = %d", name, f)
		}
		if g := net.GradFlops(32); g != 3*net.FlopsPerSample()*32 {
			t.Fatalf("%s GradFlops(32) = %d, want 3×flops×32", name, g)
		}
	}
}

func TestFlopsOrderingMatchesModelSize(t *testing.T) {
	mlp := MLP(20, 2)
	cnn := CNN(Shape{C: 1, H: 8, W: 8}, 10)
	resnet := ResNetLite(Shape{C: 3, H: 8, W: 8}, 50, 1)
	if !(mlp.FlopsPerSample() < cnn.FlopsPerSample() && cnn.FlopsPerSample() < resnet.FlopsPerSample()) {
		t.Fatalf("flops ordering violated: mlp %d cnn %d resnet %d",
			mlp.FlopsPerSample(), cnn.FlopsPerSample(), resnet.FlopsPerSample())
	}
}

func TestDenseFlopsExact(t *testing.T) {
	net := NewBuilder(Vec(10)).Dense(5).MustBuild()
	if got := net.FlopsPerSample(); got != 100 {
		t.Fatalf("dense flops = %d, want 2·10·5 = 100", got)
	}
}
