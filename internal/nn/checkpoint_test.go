package nn

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

func TestCheckpointRoundTrip(t *testing.T) {
	net := CNN(Shape{C: 1, H: 8, W: 8}, 10)
	params := net.InitParams(rng.New(4))
	var buf bytes.Buffer
	if err := net.SaveParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	loaded, err := net.LoadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range params {
		if loaded[i] != params[i] {
			t.Fatalf("param %d: %v != %v", i, loaded[i], params[i])
		}
	}
}

func TestCheckpointRejectsWrongArchitecture(t *testing.T) {
	src := MLP(10, 2)
	dst := MLP(10, 3)
	params := src.InitParams(rng.New(1))
	var buf bytes.Buffer
	if err := src.SaveParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.LoadParams(&buf); err == nil {
		t.Fatal("expected a fingerprint mismatch error")
	}
}

func TestCheckpointRejectsBadData(t *testing.T) {
	net := MLP(4, 2)
	t.Run("wrong length save", func(t *testing.T) {
		var buf bytes.Buffer
		if err := net.SaveParams(&buf, make([]float64, 3)); err == nil {
			t.Fatal("expected length error")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		if _, err := net.LoadParams(bytes.NewReader([]byte("not a checkpoint....."))); err == nil {
			t.Fatal("expected magic error")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		params := net.InitParams(rng.New(2))
		var buf bytes.Buffer
		if err := net.SaveParams(&buf, params); err != nil {
			t.Fatal(err)
		}
		half := buf.Bytes()[:buf.Len()/2]
		if _, err := net.LoadParams(bytes.NewReader(half)); err == nil {
			t.Fatal("expected truncation error")
		}
	})
}

func TestFingerprintSensitivity(t *testing.T) {
	a := MLP(10, 2)
	b := MLP(10, 2)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical architectures must share a fingerprint")
	}
	c := MLP(11, 2)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different input widths must change the fingerprint")
	}
	d := CNN(Shape{C: 1, H: 8, W: 8}, 10)
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("different architectures must change the fingerprint")
	}
}
