package nn

import (
	"math"

	"repro/internal/vecmath"
)

// Float is the compute-precision constraint for the generic layer bodies.
// Both instantiations share one gcshape (slices), so the dispatch shims
// below compile to a single body with a dictionary-resolved type switch —
// no allocation on the hot path (pinned by TestGenericDispatchAllocs).
type Float interface {
	float32 | float64
}

// The GEMM shims route each precision to its assembly-backed vecmath
// entry point. For every other helper the two precisions run the same
// plain Go loop, so the float64 instantiation performs bit-identical
// arithmetic to the pre-generic layer code (same operations, same order).

func gemm[F Float](c, a, b []F, m, k, n int, accumulate bool) {
	switch cc := any(c).(type) {
	case []float64:
		vecmath.Gemm(cc, any(a).([]float64), any(b).([]float64), m, k, n, accumulate)
	case []float32:
		vecmath.Gemm32(cc, any(a).([]float32), any(b).([]float32), m, k, n, accumulate)
	}
}

func gemmATB[F Float](c, a, b []F, m, k, n int, accumulate bool) {
	switch cc := any(c).(type) {
	case []float64:
		vecmath.GemmATB(cc, any(a).([]float64), any(b).([]float64), m, k, n, accumulate)
	case []float32:
		vecmath.GemmATB32(cc, any(a).([]float32), any(b).([]float32), m, k, n, accumulate)
	}
}

func gemmABT[F Float](c, a, b []F, m, k, n int, accumulate bool) {
	switch cc := any(c).(type) {
	case []float64:
		vecmath.GemmABT(cc, any(a).([]float64), any(b).([]float64), m, k, n, accumulate)
	case []float32:
		vecmath.GemmABT32(cc, any(a).([]float32), any(b).([]float32), m, k, n, accumulate)
	}
}

func zeroF[F Float](x []F) {
	for i := range x {
		x[i] = 0
	}
}

// addF computes dst[i] = a[i] + b[i] (vecmath.Add's loop). The float32
// instantiation routes to the AVX2 kernel; elementwise adds are order-
// independent, so the float64 scalar loop stays as the golden reference.
func addF[F Float](dst, a, b []F) {
	switch d := any(dst).(type) {
	case []float32:
		vecmath.Add32(d, any(a).([]float32), any(b).([]float32))
	default:
		for i := range dst {
			dst[i] = a[i] + b[i]
		}
	}
}

// addRowVectorF adds the length-n vector v to each of the m rows of a.
// Under float32 each row add is one in-place vecmath.Add32 (8 lanes/iter
// instead of a scalar loop); same-index aliasing is safe for elementwise
// kernels.
func addRowVectorF[F Float](a, v []F, m, n int) {
	if as, ok := any(a).([]float32); ok {
		vs := any(v).([]float32)
		for i := 0; i < m; i++ {
			row := as[i*n : (i+1)*n]
			vecmath.Add32(row, row, vs)
		}
		return
	}
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		for j, vj := range v {
			row[j] += vj
		}
	}
}

// sumRowsAccF accumulates column sums: dst[j] += Σ_i a[i][j]. The row
// order of the accumulation is preserved by both bodies — the float32
// path folds each row into dst with one vectorized add, which is the
// same per-column add sequence as the scalar loop.
func sumRowsAccF[F Float](dst, a []F, m, n int) {
	if ds, ok := any(dst).([]float32); ok {
		as := any(a).([]float32)
		for i := 0; i < m; i++ {
			vecmath.Add32(ds, ds, as[i*n:(i+1)*n])
		}
		return
	}
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		for j, v := range row {
			dst[j] += v
		}
	}
}

// addConstF computes x[i] += alpha in place.
func addConstF[F Float](alpha F, x []F) {
	for i := range x {
		x[i] += alpha
	}
}

// sumF returns the sum of the elements of x, accumulated in F.
func sumF[F Float](x []F) F {
	var s F
	for _, v := range x {
		s += v
	}
	return s
}

// Scalar transcendentals evaluate in float64 and round once to F: for
// F=float64 the conversions are identities, so the float64 path is
// unchanged; for F=float32 one correctly-rounded narrowing replaces a
// whole f32 libm.

func sigmoidF[F Float](x F) F {
	return F(1 / (1 + math.Exp(-float64(x))))
}

func tanhF[F Float](x F) F {
	return F(math.Tanh(float64(x)))
}
