package nn

import "math"

// SoftmaxCrossEntropy computes the mean cross-entropy loss of a batch of
// logits (batch×classes, row-major) against integer labels, and, when
// dlogits is non-nil, writes the gradient of the mean loss with respect to
// the logits into it (softmax(x) − onehot(y), scaled by 1/batch).
func SoftmaxCrossEntropy(logits []float64, labels []int, classes int, dlogits []float64) float64 {
	batch := len(labels)
	invB := 1.0 / float64(batch)
	var total float64
	for s := 0; s < batch; s++ {
		row := logits[s*classes : (s+1)*classes]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - maxv)
		}
		logSum := math.Log(sum) + maxv
		y := labels[s]
		total += logSum - row[y]
		if dlogits != nil {
			drow := dlogits[s*classes : (s+1)*classes]
			for j, v := range row {
				drow[j] = math.Exp(v-logSum) * invB
			}
			drow[y] -= invB
		}
	}
	return total * invB
}

// Argmax returns the index of the largest element of row.
func Argmax(row []float64) int {
	best, bi := row[0], 0
	for i, v := range row[1:] {
		if v > best {
			best = v
			bi = i + 1
		}
	}
	return bi
}
