package nn

import (
	"math"

	"repro/internal/vecmath"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of a batch of
// logits (batch×classes, row-major) against integer labels, and, when
// dlogits is non-nil, writes the gradient of the mean loss with respect to
// the logits into it (softmax(x) − onehot(y), scaled by 1/batch).
func SoftmaxCrossEntropy(logits []float64, labels []int, classes int, dlogits []float64) float64 {
	return softmaxCrossEntropy(logits, labels, classes, dlogits)
}

// softmaxCrossEntropy is the precision-generic body. The per-row reduction
// (max, exp-sum, log) always runs in float64 — numerically it is the one
// place fp32 accumulation visibly hurts, and the loss scalar feeds the
// training-curve metrics, which stay float64 everywhere. Only the logit
// values and the gradient rows carry the F precision; the float32
// specialization additionally evaluates the per-element exponentials with
// the fp32 polynomial expf32 (the sum and log still accumulate in
// float64), trading ~1e-7 relative error — below the fp32 gradient
// rounding — for staying off the float64 libm on the hot path.
func softmaxCrossEntropy[F Float](logits []F, labels []int, classes int, dlogits []F) float64 {
	if ls, ok := any(logits).([]float32); ok {
		return softmaxCrossEntropy32(ls, labels, classes, any(dlogits).([]float32))
	}
	batch := len(labels)
	invB := 1.0 / float64(batch)
	var total float64
	for s := 0; s < batch; s++ {
		row := logits[s*classes : (s+1)*classes]
		maxv := float64(row[0])
		for _, v := range row[1:] {
			if fv := float64(v); fv > maxv {
				maxv = fv
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v) - maxv)
		}
		logSum := math.Log(sum) + maxv
		y := labels[s]
		total += logSum - float64(row[y])
		if dlogits != nil {
			drow := dlogits[s*classes : (s+1)*classes]
			for j, v := range row {
				drow[j] = F(math.Exp(float64(v)-logSum) * invB)
			}
			drow[y] -= F(invB)
		}
	}
	return total * invB
}

// softmaxCrossEntropy32 mirrors the generic body for float32 logits:
// row max, exp-sum, and the loss total stay in float64 (and the log-sum
// uses the float64 math.Log — it runs once per sample, not per class),
// but each e^x is the single-precision expf32.
func softmaxCrossEntropy32(logits []float32, labels []int, classes int, dlogits []float32) float64 {
	batch := len(labels)
	invB := 1.0 / float64(batch)
	var total float64
	for s := 0; s < batch; s++ {
		row := logits[s*classes : (s+1)*classes]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += float64(vecmath.Exp32(v - maxv))
		}
		logSum := math.Log(sum) + float64(maxv)
		y := labels[s]
		total += logSum - float64(row[y])
		if dlogits != nil {
			drow := dlogits[s*classes : (s+1)*classes]
			lsf := float32(logSum)
			ib := float32(invB)
			for j, v := range row {
				drow[j] = vecmath.Exp32(v-lsf) * ib
			}
			drow[y] -= ib
		}
	}
	return total * invB
}

// Argmax returns the index of the largest element of row.
func Argmax(row []float64) int {
	return argmaxF(row)
}

func argmaxF[F Float](row []F) int {
	best, bi := row[0], 0
	for i, v := range row[1:] {
		if v > best {
			best = v
			bi = i + 1
		}
	}
	return bi
}
