package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/vecmath"
)

// dense is a fully connected layer: y = x·W + b with W of size in×out.
// A non-vector input shape is implicitly flattened.
type dense struct {
	in  Shape
	out int
}

// Dense appends a fully connected layer with the given output width.
func (b *Builder) Dense(out int) *Builder {
	in := b.cur()
	if out <= 0 {
		return b.add(nil, fmt.Errorf("nn: Dense output width %d must be positive", out))
	}
	return b.add(&dense{in: in, out: out}, nil)
}

func (l *dense) name() string    { return "dense" }
func (l *dense) inShape() Shape  { return l.in }
func (l *dense) outShape() Shape { return Vec(l.out) }
func (l *dense) paramCount() int { return l.in.Size()*l.out + l.out }

func (l *dense) initParams(params []float64, r *rng.RNG) {
	// Glorot-uniform keeps activations well-scaled for tanh/softmax heads
	// and is close enough to Kaiming for the shallow ReLU stacks used here.
	fanIn, fanOut := l.in.Size(), l.out
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	w := params[:fanIn*fanOut]
	for i := range w {
		w[i] = (2*r.Float64() - 1) * limit
	}
	vecmath.Zero(params[fanIn*fanOut:])
}

func (l *dense) forward(params, x, y []float64, batch int, _ *scratch) {
	denseForward(l, params, x, y, batch)
}

func (l *dense) forward32(params, x, y []float32, batch int, _ *scratch32) {
	denseForward(l, params, x, y, batch)
}

func (l *dense) backward(params, x, _, dy, dx, dparams []float64, batch int, _ *scratch) {
	denseBackward(l, params, x, dy, dx, dparams, batch)
}

func (l *dense) backward32(params, x, _, dy, dx, dparams []float32, batch int, _ *scratch32) {
	denseBackward(l, params, x, dy, dx, dparams, batch)
}

func denseForward[F Float](l *dense, params, x, y []F, batch int) {
	in := l.in.Size()
	w := params[:in*l.out]
	bias := params[in*l.out:]
	gemm(y[:batch*l.out], x[:batch*in], w, batch, in, l.out, false)
	addRowVectorF(y[:batch*l.out], bias, batch, l.out)
}

func denseBackward[F Float](l *dense, params, x, dy, dx, dparams []F, batch int) {
	in := l.in.Size()
	w := params[:in*l.out]
	// dW += xᵀ·dy, folded straight into the gradient vector.
	gemmATB(dparams[:in*l.out], x[:batch*in], dy[:batch*l.out], batch, in, l.out, true)
	// db += column sums of dy.
	sumRowsAccF(dparams[in*l.out:], dy[:batch*l.out], batch, l.out)
	// dx = dy·Wᵀ.
	gemmABT(dx[:batch*in], dy[:batch*l.out], w, batch, l.out, in, false)
}
