package nn

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/vecmath"
)

func TestShapeSize(t *testing.T) {
	tests := []struct {
		shape Shape
		want  int
	}{
		{Shape{C: 3, H: 8, W: 8}, 192},
		{Vec(10), 10},
		{Shape{C: 1, H: 1, W: 1}, 1},
	}
	for _, tt := range tests {
		if got := tt.shape.Size(); got != tt.want {
			t.Fatalf("%v.Size() = %d, want %d", tt.shape, got, tt.want)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func() (*Network, error)
	}{
		{"no layers", func() (*Network, error) { return NewBuilder(Vec(4)).Build() }},
		{"bad dense width", func() (*Network, error) { return NewBuilder(Vec(4)).Dense(0).Build() }},
		{"bad input", func() (*Network, error) { return NewBuilder(Vec(0)).Dense(3).Build() }},
		{"conv too big", func() (*Network, error) {
			return NewBuilder(Shape{C: 1, H: 2, W: 2}).Conv2D(2, 5, 1, 0).Build()
		}},
		{"pool does not divide", func() (*Network, error) {
			return NewBuilder(Shape{C: 1, H: 5, W: 5}).MaxPool2D(2).Build()
		}},
		{"lstm shape mismatch", func() (*Network, error) {
			return NewBuilder(Vec(10)).LSTM(3, 4, 5).Build()
		}},
		{"error sticks", func() (*Network, error) {
			return NewBuilder(Vec(4)).Dense(-1).Dense(3).Build()
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.build(); err == nil {
				t.Fatal("expected a build error")
			}
		})
	}
}

func TestParamLayout(t *testing.T) {
	net := NewBuilder(Vec(4)).Dense(3).ReLU().Dense(2).MustBuild()
	want := 4*3 + 3 + 0 + 3*2 + 2
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	if net.OutSize() != 2 {
		t.Fatalf("OutSize = %d, want 2", net.OutSize())
	}
	if net.NumLayers() != 3 {
		t.Fatalf("NumLayers = %d, want 3", net.NumLayers())
	}
}

func TestInitParamsDeterministic(t *testing.T) {
	net := MLP(10, 2)
	a := net.InitParams(rng.New(5))
	b := net.InitParams(rng.New(5))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("InitParams must be deterministic for a fixed seed")
		}
	}
	if vecmath.Norm2(a) == 0 {
		t.Fatal("InitParams produced all zeros")
	}
}

func TestNetworkString(t *testing.T) {
	net := CNN(Shape{C: 1, H: 8, W: 8}, 10)
	s := net.String()
	for _, frag := range []string{"conv2d", "maxpool2d", "dense", "relu"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	// All-zero logits over C classes give loss ln(C).
	classes := 4
	logits := make([]float64, 2*classes)
	labels := []int{0, 3}
	loss := SoftmaxCrossEntropy(logits, labels, classes, nil)
	if math.Abs(loss-math.Log(float64(classes))) > 1e-12 {
		t.Fatalf("loss = %v, want ln(%d) = %v", loss, classes, math.Log(float64(classes)))
	}
}

func TestSoftmaxCrossEntropyGradientSumsToZero(t *testing.T) {
	r := rng.New(3)
	classes, batch := 5, 7
	logits := randInput(r, batch*classes)
	labels := randLabels(r, batch, classes)
	dl := make([]float64, batch*classes)
	SoftmaxCrossEntropy(logits, labels, classes, dl)
	for s := 0; s < batch; s++ {
		row := dl[s*classes : (s+1)*classes]
		if math.Abs(vecmath.Sum(row)) > 1e-12 {
			t.Fatalf("per-sample gradient rows must sum to 0, got %v", vecmath.Sum(row))
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := []float64{1000, -1000, 0}
	labels := []int{0}
	dl := make([]float64, 3)
	loss := SoftmaxCrossEntropy(logits, labels, 3, dl)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %v for extreme logits", loss)
	}
	if !vecmath.AllFinite(dl) {
		t.Fatalf("gradient not finite: %v", dl)
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax([]float64{1, 5, 3}); got != 1 {
		t.Fatalf("Argmax = %d, want 1", got)
	}
	if got := Argmax([]float64{-1}); got != 0 {
		t.Fatalf("Argmax = %d, want 0", got)
	}
}

func TestEnginePredictMatchesLogits(t *testing.T) {
	r := rng.New(21)
	net := MLP(6, 3)
	params := net.InitParams(r)
	eng := NewEngine(net, 8)
	x := randInput(r, 8*6)
	out := make([]int, 8)
	eng.Predict(params, x, 8, out)
	for _, p := range out {
		if p < 0 || p >= 3 {
			t.Fatalf("prediction %d out of range", p)
		}
	}
}

func TestEngineGradientIsDeterministic(t *testing.T) {
	r := rng.New(33)
	net := CNN(Shape{C: 1, H: 8, W: 8}, 10)
	params := net.InitParams(r)
	x := randInput(r, 4*64)
	labels := randLabels(r, 4, 10)
	g1 := make([]float64, net.NumParams())
	g2 := make([]float64, net.NumParams())
	eng := NewEngine(net, 4)
	l1 := eng.Gradient(params, x, labels, g1)
	l2 := eng.Gradient(params, x, labels, g2)
	if l1 != l2 {
		t.Fatalf("losses differ: %v vs %v", l1, l2)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatal("gradients differ between identical calls")
		}
	}
}

func TestEnginesShareNetworkSafely(t *testing.T) {
	// Two engines over the same Network must not interfere.
	r := rng.New(44)
	net := MLP(5, 2)
	params := net.InitParams(r)
	x := randInput(r, 3*5)
	labels := randLabels(r, 3, 2)
	e1 := NewEngine(net, 3)
	e2 := NewEngine(net, 3)
	g1 := make([]float64, net.NumParams())
	g2 := make([]float64, net.NumParams())
	l1 := e1.Gradient(params, x, labels, g1)
	l2 := e2.Gradient(params, x, labels, g2)
	if l1 != l2 {
		t.Fatalf("engines disagree: %v vs %v", l1, l2)
	}
}

// TestTrainingReducesLoss is the substrate's end-to-end sanity check:
// plain SGD on a small separable problem must cut the loss dramatically.
func TestTrainingReducesLoss(t *testing.T) {
	r := rng.New(55)
	const (
		features = 8
		classes  = 3
		n        = 60
	)
	net := MLP(features, classes)
	params := net.InitParams(r)
	// Three Gaussian blobs.
	xs := make([]float64, n*features)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		for f := 0; f < features; f++ {
			center := 0.0
			if f == c {
				center = 3
			}
			xs[i*features+f] = r.Normal(center, 0.5)
		}
	}
	eng := NewEngine(net, n)
	grad := make([]float64, net.NumParams())
	initial := eng.Loss(params, xs, labels)
	for step := 0; step < 300; step++ {
		eng.Gradient(params, xs, labels, grad)
		vecmath.AXPY(-0.1, grad, params)
	}
	final := eng.Loss(params, xs, labels)
	if final > initial/4 {
		t.Fatalf("SGD failed to learn: loss %v -> %v", initial, final)
	}
	if acc := eng.Accuracy(params, xs, labels); acc < 0.9 {
		t.Fatalf("accuracy after training = %v, want >= 0.9", acc)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	net := MLP(4, 2)
	eng := NewEngine(net, 2)
	params := net.InitParams(rng.New(1))
	if got := eng.Accuracy(params, nil, nil); got != 0 {
		t.Fatalf("Accuracy on empty set = %v, want 0", got)
	}
}

func TestEnginePanicsOnBadBatch(t *testing.T) {
	net := MLP(4, 2)
	eng := NewEngine(net, 2)
	params := net.InitParams(rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized batch")
		}
	}()
	eng.Predict(params, make([]float64, 4*12), 3, make([]int, 3))
}
