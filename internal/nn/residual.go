package nn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/vecmath"
)

// residualBlock is the basic ResNet unit adapted to this substrate:
//
//	out = ReLU( conv2(ReLU(conv1(x))) + x )
//
// with two channel-preserving 3×3 convolutions (stride 1, pad 1). Batch
// normalization is omitted (see DESIGN.md); initialization is scaled down
// so deep stacks stay trainable without it.
type residualBlock struct {
	in    Shape
	conv1 *conv2d
	conv2 *conv2d
}

// Residual appends a two-convolution residual block that preserves the
// input shape.
func (b *Builder) Residual() *Builder {
	in := b.cur()
	c1, err := newConv2D(in, in.C, 3, 1, 1)
	if err != nil {
		return b.add(nil, fmt.Errorf("nn: Residual: %w", err))
	}
	c2, err := newConv2D(in, in.C, 3, 1, 1)
	if err != nil {
		return b.add(nil, fmt.Errorf("nn: Residual: %w", err))
	}
	return b.add(&residualBlock{in: in, conv1: c1, conv2: c2}, nil)
}

func (l *residualBlock) name() string    { return "residual" }
func (l *residualBlock) inShape() Shape  { return l.in }
func (l *residualBlock) outShape() Shape { return l.in }
func (l *residualBlock) paramCount() int { return l.conv1.paramCount() + l.conv2.paramCount() }

func (l *residualBlock) initParams(params []float64, r *rng.RNG) {
	p1 := l.conv1.paramCount()
	l.conv1.initParams(params[:p1], r)
	l.conv2.initParams(params[p1:], r)
	// Down-scale the second convolution so each block starts close to the
	// identity map, the usual trick for residual nets without normalization.
	vecmath.Scale(0.3, params[p1:])
}

func (l *residualBlock) forward(params, x, y []float64, batch int, sc *scratch) {
	residualForward(l, params, x, y, batch, sc)
}

func (l *residualBlock) forward32(params, x, y []float32, batch int, sc *scratch32) {
	residualForward(l, params, x, y, batch, sc)
}

func (l *residualBlock) backward(params, x, y, dy, dx, dparams []float64, batch int, sc *scratch) {
	residualBackward(l, params, x, y, dy, dx, dparams, batch, sc)
}

func (l *residualBlock) backward32(params, x, y, dy, dx, dparams []float32, batch int, sc *scratch32) {
	residualBackward(l, params, x, y, dy, dx, dparams, batch, sc)
}

// scratch layout (5 regions of batch*size each):
// h1 | a1 | dz | da1 | dxc
// The two inner convolutions get child scratches so their im2col packings
// survive from forward to backward alongside this block's own buffer.
func residualForward[F Float](l *residualBlock, params, x, y []F, batch int, sc *scratchOf[F]) {
	size := l.in.Size()
	n := batch * size
	buf := sc.floatBuf(5 * n)
	h1, a1 := buf[:n], buf[n:2*n]
	p1 := l.conv1.paramCount()
	convForward(l.conv1, params[:p1], x, h1, batch, sc.child(0))
	for i := 0; i < n; i++ {
		if h1[i] > 0 {
			a1[i] = h1[i]
		} else {
			a1[i] = 0
		}
	}
	convForward(l.conv2, params[p1:], a1, y, batch, sc.child(1))
	for i := 0; i < n; i++ {
		v := y[i] + x[i]
		if v > 0 {
			y[i] = v
		} else {
			y[i] = 0
		}
	}
}

func residualBackward[F Float](l *residualBlock, params, x, y, dy, dx, dparams []F, batch int, sc *scratchOf[F]) {
	size := l.in.Size()
	n := batch * size
	buf := sc.floatBuf(5 * n)
	h1 := buf[:n] // a1 lives in buf[n:2n] but backward only needs h1's mask
	dz, da1, dxc := buf[2*n:3*n], buf[3*n:4*n], buf[4*n:]
	// Final ReLU: its pre-activation is positive exactly where y > 0.
	for i := 0; i < n; i++ {
		if y[i] > 0 {
			dz[i] = dy[i]
		} else {
			dz[i] = 0
		}
	}
	p1 := l.conv1.paramCount()
	convBackward(l.conv2, params[p1:], dz, da1, dparams[p1:], batch, sc.child(1))
	// Inner ReLU mask from h1.
	for i := 0; i < n; i++ {
		if h1[i] <= 0 {
			da1[i] = 0
		}
	}
	convBackward(l.conv1, params[:p1], da1, dxc, dparams[:p1], batch, sc.child(0))
	// Skip connection adds dz to the conv path's input gradient.
	addF(dx[:n], dxc[:n], dz[:n])
}
