package nn

import "math"

// GradCheck compares the analytic gradient produced by Engine.Gradient
// against central finite differences of the loss, returning the maximum
// relative error over all parameters. It is exported for use by this
// package's tests and by downstream tests that define custom layers.
//
// The relative error for parameter i is |g_i − ĝ_i| / max(1e-8, |g_i| +
// |ĝ_i|), the symmetric form that stays meaningful near zero.
func GradCheck(net *Network, params, x []float64, labels []int, h float64) float64 {
	eng := NewEngine(net, len(labels))
	analytic := make([]float64, net.NumParams())
	eng.Gradient(params, x, labels, analytic)

	p := make([]float64, len(params))
	copy(p, params)
	var worst float64
	for i := range p {
		orig := p[i]
		p[i] = orig + h
		lp := eng.Loss(p, x, labels)
		p[i] = orig - h
		lm := eng.Loss(p, x, labels)
		p[i] = orig
		numeric := (lp - lm) / (2 * h)
		denom := math.Abs(analytic[i]) + math.Abs(numeric)
		if denom < 1e-8 {
			denom = 1e-8
		}
		rel := math.Abs(analytic[i]-numeric) / denom
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

// GradCheck32 is the float32 twin of GradCheck, validating Engine32's
// analytic gradient against central finite differences computed in the
// fp32 forward path. The step h must be coarse enough to survive fp32
// loss rounding (h ≈ 5e-3 works for the unit-scale test networks), and
// callers should expect relative errors around 1e-2 rather than
// GradCheck's 1e-6 — the limit here is fp32 arithmetic, not the layer
// math, which is shared with the float64 path.
func GradCheck32(net *Network, params, x []float32, labels []int, h float32) float64 {
	eng := NewEngine32(net, len(labels))
	analytic := make([]float32, net.NumParams())
	eng.Gradient(params, x, labels, analytic)

	p := make([]float32, len(params))
	copy(p, params)
	var worst float64
	for i := range p {
		orig := p[i]
		p[i] = orig + h
		lp := eng.Loss(p, x, labels)
		p[i] = orig - h
		lm := eng.Loss(p, x, labels)
		p[i] = orig
		numeric := (lp - lm) / (2 * float64(h))
		denom := math.Abs(float64(analytic[i])) + math.Abs(numeric)
		if denom < 1e-4 {
			denom = 1e-4
		}
		rel := math.Abs(float64(analytic[i])-numeric) / denom
		if rel > worst {
			worst = rel
		}
	}
	return worst
}
