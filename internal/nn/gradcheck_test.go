package nn

import (
	"testing"

	"repro/internal/rng"
)

// Every layer type gets a finite-difference gradient check on a small
// network containing it. A worst relative error below 1e-4 with h=1e-5
// means the analytic backward pass is correct (float64 arithmetic).
const (
	gcStep = 1e-5
	gcTol  = 1e-4
)

func randInput(r *rng.RNG, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Normal(0, 1)
	}
	return x
}

func randLabels(r *rng.RNG, batch, classes int) []int {
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = r.IntN(classes)
	}
	return labels
}

func checkNet(t *testing.T, net *Network, batch int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	params := net.InitParams(r)
	x := randInput(r, batch*net.InShape().Size())
	labels := randLabels(r, batch, net.OutSize())
	if got := GradCheck(net, params, x, labels, gcStep); got > gcTol {
		t.Fatalf("gradient check failed: max relative error %.3g > %.3g\nnet:\n%s", got, gcTol, net)
	}
}

func TestGradDense(t *testing.T) {
	net := NewBuilder(Vec(7)).Dense(5).Dense(3).MustBuild()
	checkNet(t, net, 4, 1)
}

func TestGradReLU(t *testing.T) {
	net := NewBuilder(Vec(6)).Dense(8).ReLU().Dense(4).MustBuild()
	checkNet(t, net, 3, 2)
}

func TestGradTanh(t *testing.T) {
	net := NewBuilder(Vec(6)).Dense(8).Tanh().Dense(4).MustBuild()
	checkNet(t, net, 3, 3)
}

func TestGradConv2D(t *testing.T) {
	net := NewBuilder(Shape{C: 2, H: 5, W: 5}).
		Conv2D(3, 3, 1, 1).ReLU().
		Dense(4).
		MustBuild()
	checkNet(t, net, 3, 4)
}

func TestGradConv2DStride(t *testing.T) {
	net := NewBuilder(Shape{C: 2, H: 6, W: 6}).
		Conv2D(3, 3, 2, 1).ReLU().
		Dense(4).
		MustBuild()
	checkNet(t, net, 2, 5)
}

func TestGradConv2DNoPad(t *testing.T) {
	net := NewBuilder(Shape{C: 1, H: 5, W: 5}).
		Conv2D(2, 3, 1, 0).
		Dense(3).
		MustBuild()
	checkNet(t, net, 2, 6)
}

func TestGradConv2DStridePad(t *testing.T) {
	// Stride > 1 combined with pad > 0 exercises every valid-range edge of
	// the im2col packing at once.
	net := NewBuilder(Shape{C: 2, H: 7, W: 7}).
		Conv2D(3, 3, 2, 2).ReLU().
		Dense(4).
		MustBuild()
	checkNet(t, net, 2, 21)
}

func TestGradConv2DRect(t *testing.T) {
	// Rectangular (H≠W) input: catches any H/W transposition in the
	// im2col/col2im index arithmetic.
	net := NewBuilder(Shape{C: 2, H: 5, W: 7}).
		Conv2D(3, 3, 1, 1).ReLU().
		Dense(4).
		MustBuild()
	checkNet(t, net, 2, 22)
}

func TestGradConv2DRectStridePad(t *testing.T) {
	net := NewBuilder(Shape{C: 2, H: 8, W: 5}).
		Conv2D(3, 3, 2, 1).ReLU().
		Dense(4).
		MustBuild()
	checkNet(t, net, 2, 23)
}

func TestGradConv2DWideKernelPad(t *testing.T) {
	// Kernel wider than stride with asymmetrically clipped valid ranges
	// (k=5 on a 6×6 input with pad 2).
	net := NewBuilder(Shape{C: 1, H: 6, W: 6}).
		Conv2D(2, 5, 2, 2).
		Dense(3).
		MustBuild()
	checkNet(t, net, 2, 24)
}

func TestGradMaxPool(t *testing.T) {
	net := NewBuilder(Shape{C: 2, H: 4, W: 4}).
		Conv2D(2, 3, 1, 1).
		MaxPool2D(2).
		Dense(3).
		MustBuild()
	checkNet(t, net, 3, 7)
}

func TestGradGlobalAvgPool(t *testing.T) {
	net := NewBuilder(Shape{C: 3, H: 4, W: 4}).
		Conv2D(4, 3, 1, 1).ReLU().
		GlobalAvgPool().
		Dense(3).
		MustBuild()
	checkNet(t, net, 3, 8)
}

func TestGradResidual(t *testing.T) {
	net := NewBuilder(Shape{C: 2, H: 4, W: 4}).
		Residual().
		GlobalAvgPool().
		Dense(3).
		MustBuild()
	checkNet(t, net, 2, 9)
}

func TestGradResidualStack(t *testing.T) {
	net := NewBuilder(Shape{C: 2, H: 4, W: 4}).
		Residual().Residual().
		Dense(3).
		MustBuild()
	checkNet(t, net, 2, 10)
}

func TestGradLSTM(t *testing.T) {
	const (
		steps  = 4
		vocab  = 5
		hidden = 6
	)
	net := NewBuilder(Vec(steps*vocab)).
		LSTM(steps, vocab, hidden).
		Dense(vocab).
		MustBuild()
	checkNet(t, net, 3, 11)
}

func TestGradLSTMAfterDense(t *testing.T) {
	// Exercise the LSTM's dx path by placing a layer before it.
	const (
		steps  = 3
		inDim  = 4
		hidden = 5
	)
	net := NewBuilder(Vec(steps*inDim)).
		Dense(steps*inDim).
		LSTM(steps, inDim, hidden).
		Dense(3).
		MustBuild()
	checkNet(t, net, 2, 12)
}

func TestGradPaperCNN(t *testing.T) {
	net := CNN(Shape{C: 1, H: 8, W: 8}, 10)
	checkNet(t, net, 2, 13)
}

func TestGradPaperMLP(t *testing.T) {
	net := MLP(12, 2)
	checkNet(t, net, 4, 14)
}

func TestGradPaperResNetLite(t *testing.T) {
	net := ResNetLite(Shape{C: 3, H: 8, W: 8}, 4, 1)
	checkNet(t, net, 2, 15)
}
