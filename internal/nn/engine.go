package nn

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/vecmath"
)

// Engine executes forward and backward passes for one Network. It owns all
// activation and scratch buffers, so it is cheap to call repeatedly but not
// safe for concurrent use: every concurrent worker (FL client goroutine)
// must create its own Engine against the shared Network.
type Engine struct {
	net      *Network
	maxBatch int
	acts     [][]float64 // acts[i] is the output buffer of layer i-1 (acts[0] unused; input comes from caller)
	dacts    [][]float64 // gradient buffers per boundary, same layout
	scratch  []scratch
	evalPool []*Engine // lazily grown worker engines for parallel Accuracy
}

// NewEngine creates an execution engine supporting batches up to maxBatch.
func NewEngine(net *Network, maxBatch int) *Engine {
	if maxBatch <= 0 {
		panic(fmt.Sprintf("nn: NewEngine maxBatch %d must be positive", maxBatch))
	}
	e := &Engine{
		net:      net,
		maxBatch: maxBatch,
		acts:     make([][]float64, len(net.layers)+1),
		dacts:    make([][]float64, len(net.layers)+1),
		scratch:  make([]scratch, len(net.layers)),
	}
	for i, l := range net.layers {
		e.acts[i+1] = make([]float64, maxBatch*l.outShape().Size())
	}
	return e
}

// ensureGradBuffers allocates the backward-pass activation-gradient
// buffers on first use, so inference-only engines (prediction, the
// Accuracy worker pool) stay at half the footprint.
func (e *Engine) ensureGradBuffers() {
	if e.dacts[0] != nil {
		return
	}
	e.dacts[0] = make([]float64, e.maxBatch*e.net.in.Size())
	for i, l := range e.net.layers {
		e.dacts[i+1] = make([]float64, e.maxBatch*l.outShape().Size())
	}
}

// Net returns the architecture this engine executes.
func (e *Engine) Net() *Network { return e.net }

func (e *Engine) checkBatch(x []float64, batch int) {
	if batch <= 0 || batch > e.maxBatch {
		panic(fmt.Sprintf("nn: batch %d out of range (1..%d)", batch, e.maxBatch))
	}
	if len(x) < batch*e.net.in.Size() {
		panic(fmt.Sprintf("nn: input has %d floats, need %d", len(x), batch*e.net.in.Size()))
	}
}

// forwardPass runs all layers; the final logits live in e.acts[len(layers)].
func (e *Engine) forwardPass(params, x []float64, batch int) []float64 {
	e.acts[0] = x
	for i, l := range e.net.layers {
		off := e.net.offsets[i]
		p := params[off : off+l.paramCount()]
		l.forward(p, e.acts[i], e.acts[i+1], batch, &e.scratch[i])
	}
	return e.acts[len(e.net.layers)]
}

// Gradient runs a full forward/backward pass over the mini-batch x (row-
// major batch×inputSize) with integer labels, writes the gradient of the
// mean loss into grad (zeroed first), and returns the mean loss.
func (e *Engine) Gradient(params, x []float64, labels []int, grad []float64) float64 {
	batch := len(labels)
	e.checkBatch(x, batch)
	if len(grad) != e.net.total {
		panic(fmt.Sprintf("nn: grad has %d elements, want %d", len(grad), e.net.total))
	}
	e.ensureGradBuffers()
	logits := e.forwardPass(params, x, batch)
	nl := len(e.net.layers)
	loss := SoftmaxCrossEntropy(logits[:batch*e.net.classes], labels, e.net.classes, e.dacts[nl])
	vecmath.Zero(grad)
	for i := nl - 1; i >= 0; i-- {
		l := e.net.layers[i]
		off := e.net.offsets[i]
		p := params[off : off+l.paramCount()]
		dp := grad[off : off+l.paramCount()]
		l.backward(p, e.acts[i], e.acts[i+1], e.dacts[i+1], e.dacts[i], dp, batch, &e.scratch[i])
	}
	return loss
}

// Loss runs a forward pass only and returns the mean cross-entropy loss.
func (e *Engine) Loss(params, x []float64, labels []int) float64 {
	batch := len(labels)
	e.checkBatch(x, batch)
	logits := e.forwardPass(params, x, batch)
	return SoftmaxCrossEntropy(logits[:batch*e.net.classes], labels, e.net.classes, nil)
}

// Predict writes the argmax class of each of the batch inputs into out.
func (e *Engine) Predict(params, x []float64, batch int, out []int) {
	e.checkBatch(x, batch)
	if len(out) < batch {
		panic(fmt.Sprintf("nn: out has %d elements, need %d", len(out), batch))
	}
	logits := e.forwardPass(params, x, batch)
	c := e.net.classes
	for s := 0; s < batch; s++ {
		out[s] = Argmax(logits[s*c : (s+1)*c])
	}
}

// Accuracy evaluates classification accuracy over a full dataset given as
// flattened features xs and labels, batching internally. Batches are
// sharded across a bounded worker pool (at most GOMAXPROCS workers, each
// with its own Engine, reused across calls); because every worker counts
// correct predictions as an integer and the shards partition the dataset,
// the result is identical to a sequential pass regardless of scheduling.
func (e *Engine) Accuracy(params, xs []float64, labels []int) float64 {
	return e.accuracyWorkers(params, xs, labels, runtime.GOMAXPROCS(0))
}

func (e *Engine) accuracyWorkers(params, xs []float64, labels []int, maxWorkers int) float64 {
	n := len(labels)
	if n == 0 {
		return 0
	}
	numBatches := (n + e.maxBatch - 1) / e.maxBatch
	workers := min(maxWorkers, numBatches)
	if workers <= 1 {
		return float64(e.countCorrect(params, xs, labels, 0, 1)) / float64(n)
	}
	for len(e.evalPool) < workers-1 {
		e.evalPool = append(e.evalPool, NewEngine(e.net, e.maxBatch))
	}
	counts := make([]int, workers)
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			counts[w] = e.evalPool[w-1].countCorrect(params, xs, labels, w, workers)
		}(w)
	}
	counts[0] = e.countCorrect(params, xs, labels, 0, workers)
	wg.Wait()
	correct := 0
	for _, c := range counts {
		correct += c
	}
	return float64(correct) / float64(n)
}

// countCorrect evaluates every stride-th batch starting at batch index
// first and returns how many predictions match the labels.
func (e *Engine) countCorrect(params, xs []float64, labels []int, first, stride int) int {
	n := len(labels)
	inSize := e.net.in.Size()
	preds := make([]int, e.maxBatch)
	correct := 0
	for start := first * e.maxBatch; start < n; start += stride * e.maxBatch {
		end := min(start+e.maxBatch, n)
		b := end - start
		e.Predict(params, xs[start*inSize:end*inSize], b, preds)
		for i := 0; i < b; i++ {
			if preds[i] == labels[start+i] {
				correct++
			}
		}
	}
	return correct
}
