// Package nn is a self-contained neural-network substrate with manual
// backpropagation, written against the Go standard library only. It exists
// because the paper's experiments train MLP/CNN/ResNet/LSTM models with
// PyTorch, which has no Go equivalent in this offline environment.
//
// Design notes:
//
//   - Model parameters live in one flat []float64. Federated-learning
//     algorithms manipulate whole parameter vectors (deltas, corrections,
//     EMA aggregation), so a contiguous layout makes every algorithm a few
//     vector kernels.
//   - A Network is an immutable architecture description shared by all
//     clients; each concurrent worker owns an Engine, which carries the
//     activation and scratch buffers for forward/backward passes.
//   - Layers implement forward and backward on row-major batch buffers.
//     Gradient correctness is enforced by finite-difference tests.
package nn

import (
	"fmt"

	"repro/internal/rng"
)

// Shape describes an activation volume with C channels of H×W spatial
// extent. Fully-connected activations use H = W = 1.
type Shape struct {
	C, H, W int
}

// Size returns the number of scalars in the volume.
func (s Shape) Size() int { return s.C * s.H * s.W }

// Vec returns a 1-D shape with n features.
func Vec(n int) Shape { return Shape{C: n, H: 1, W: 1} }

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// scratchOf holds per-layer working memory owned by an Engine, in the
// engine's compute precision. Layers size the fields they need on first
// use; buffers are reused across steps. Buffers persist between a forward
// call and the backward call that follows it (the layer contract
// guarantees the pairing), so layers may stash forward-pass state —
// im2col packings, LSTM gate records — instead of recomputing it.
type scratchOf[F Float] struct {
	ints     []int
	floats   []F
	cols     []F              // im2col packing, kept separate so it survives floatBuf use
	children []*scratchOf[F] // sub-layer scratches for composite layers (residual)
}

// scratch and scratch32 are the two instantiations the engines use. (Go
// 1.22 allows aliases to instantiated generics, just not parameterized
// aliases.)
type (
	scratch   = scratchOf[float64]
	scratch32 = scratchOf[float32]
)

func (s *scratchOf[F]) intBuf(n int) []int {
	if cap(s.ints) < n {
		s.ints = make([]int, n)
	}
	return s.ints[:n]
}

func (s *scratchOf[F]) floatBuf(n int) []F {
	if cap(s.floats) < n {
		s.floats = make([]F, n)
	}
	return s.floats[:n]
}

func (s *scratchOf[F]) colBuf(n int) []F {
	if cap(s.cols) < n {
		s.cols = make([]F, n)
	}
	return s.cols[:n]
}

// child returns the i-th sub-scratch, allocating up to it on first use.
// Composite layers hand one to each inner layer so their buffers never
// collide with the parent's.
func (s *scratchOf[F]) child(i int) *scratchOf[F] {
	for len(s.children) <= i {
		s.children = append(s.children, &scratchOf[F]{})
	}
	return s.children[i]
}

// layer is the internal building-block contract. Concrete layers are
// constructed with their input shape already resolved by the Builder, so
// the methods carry no shape arguments. Every layer implements each pass
// twice — float64 and float32 — as thin wrappers over one generic body
// (Go methods cannot be generic), so the two precisions execute the same
// operation sequence and the float64 path is unchanged by construction.
type layer interface {
	name() string
	inShape() Shape
	outShape() Shape
	paramCount() int
	// initParams writes initial weights into params (length paramCount).
	// Initialization is always float64; the fp32 path narrows afterwards.
	initParams(params []float64, r *rng.RNG)
	// forward computes y (batch×outSize) from x (batch×inSize).
	forward(params, x, y []float64, batch int, sc *scratch)
	// backward consumes dy (batch×outSize), writes dx (batch×inSize) and
	// accumulates parameter gradients into dparams. x and y are the buffers
	// from the immediately preceding forward call with the same batch.
	backward(params, x, y, dy, dx, dparams []float64, batch int, sc *scratch)
	// forward32/backward32 are the float32 twins, used by Engine32.
	forward32(params, x, y []float32, batch int, sc *scratch32)
	backward32(params, x, y, dy, dx, dparams []float32, batch int, sc *scratch32)
}

// Network is an immutable feed-forward architecture: an ordered list of
// layers with resolved shapes and a flat parameter layout.
type Network struct {
	in      Shape
	layers  []layer
	offsets []int // offsets[i] is the params offset of layer i
	total   int
	classes int // output dimension; set by Build from the last layer
}

// InShape returns the network input shape.
func (n *Network) InShape() Shape { return n.in }

// OutSize returns the output (logit) dimension.
func (n *Network) OutSize() int { return n.classes }

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int { return n.total }

// NumLayers returns the number of layers.
func (n *Network) NumLayers() int { return len(n.layers) }

// InitParams allocates and initializes a fresh parameter vector.
func (n *Network) InitParams(r *rng.RNG) []float64 {
	params := make([]float64, n.total)
	for i, l := range n.layers {
		off := n.offsets[i]
		l.initParams(params[off:off+l.paramCount()], r)
	}
	return params
}

// String describes the architecture, one layer per line.
func (n *Network) String() string {
	s := fmt.Sprintf("input %v\n", n.in)
	for _, l := range n.layers {
		s += fmt.Sprintf("%-12s %v -> %v (%d params)\n", l.name(), l.inShape(), l.outShape(), l.paramCount())
	}
	return s
}

// Builder assembles a Network layer by layer, threading shapes through.
type Builder struct {
	in     Shape
	layers []layer
	err    error
}

// NewBuilder starts a network with the given input shape.
func NewBuilder(in Shape) *Builder {
	b := &Builder{in: in}
	if in.Size() <= 0 {
		b.err = fmt.Errorf("nn: input shape %v has non-positive size", in)
	}
	return b
}

func (b *Builder) cur() Shape {
	if len(b.layers) == 0 {
		return b.in
	}
	return b.layers[len(b.layers)-1].outShape()
}

func (b *Builder) add(l layer, err error) *Builder {
	if b.err != nil {
		return b
	}
	if err != nil {
		b.err = err
		return b
	}
	b.layers = append(b.layers, l)
	return b
}

// Build finalizes the network. It returns an error when any layer was
// misconfigured or when the network has no layers.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.layers) == 0 {
		return nil, fmt.Errorf("nn: network has no layers")
	}
	n := &Network{
		in:      b.in,
		layers:  b.layers,
		offsets: make([]int, len(b.layers)),
	}
	for i, l := range b.layers {
		n.offsets[i] = n.total
		n.total += l.paramCount()
	}
	n.classes = b.layers[len(b.layers)-1].outShape().Size()
	return n, nil
}

// MustBuild is Build for statically known-good architectures (the model
// zoo); it panics on configuration errors.
func (b *Builder) MustBuild() *Network {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}
