package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/vecmath"
)

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func tanhFast(x float64) float64 { return math.Tanh(x) }

// lstm is a single-layer LSTM over a fixed-length sequence. The input is a
// flattened sequence of steps×inDim features (for character models each
// step is a one-hot vector); the output is the final hidden state h_T,
// which a Dense head then maps to logits. Backpropagation through time
// stores all gate activations for the full sequence.
//
// Parameter layout: Wx[inDim×4H] | Wh[H×4H] | b[4H], with gate order
// input, forget, cell (g), output.
type lstm struct {
	in     Shape
	steps  int
	inDim  int
	hidden int
}

// LSTM appends a recurrent layer that interprets the current activation as
// a sequence of steps×inDim features and outputs the final hidden state of
// size hidden.
func (b *Builder) LSTM(steps, inDim, hidden int) *Builder {
	in := b.cur()
	if steps <= 0 || inDim <= 0 || hidden <= 0 {
		return b.add(nil, fmt.Errorf("nn: LSTM(steps=%d, inDim=%d, hidden=%d) invalid", steps, inDim, hidden))
	}
	if in.Size() != steps*inDim {
		return b.add(nil, fmt.Errorf("nn: LSTM expects input size %d (=%d steps × %d), have %v", steps*inDim, steps, inDim, in))
	}
	return b.add(&lstm{in: in, steps: steps, inDim: inDim, hidden: hidden}, nil)
}

func (l *lstm) name() string    { return "lstm" }
func (l *lstm) inShape() Shape  { return l.in }
func (l *lstm) outShape() Shape { return Vec(l.hidden) }
func (l *lstm) paramCount() int {
	h4 := 4 * l.hidden
	return l.inDim*h4 + l.hidden*h4 + h4
}

func (l *lstm) initParams(params []float64, r *rng.RNG) {
	h4 := 4 * l.hidden
	limit := 1 / math.Sqrt(float64(l.hidden))
	nW := l.inDim*h4 + l.hidden*h4
	for i := 0; i < nW; i++ {
		params[i] = (2*r.Float64() - 1) * limit
	}
	b := params[nW:]
	vecmath.Zero(b)
	// Forget-gate bias starts at 1 so early training retains memory.
	for j := l.hidden; j < 2*l.hidden; j++ {
		b[j] = 1
	}
}

// Per-sample, per-step scratch record: i | f | g | o | c | tc (=tanh c) —
// 6H floats. h_t is not stored separately: h_t = o*tc is recomputed from
// the record when needed.
const lstmRec = 6

func (l *lstm) scratchSize(batch int) int {
	perStep := lstmRec * l.hidden
	// Sequence records + backward temporaries (dh, dc, dcNext, dz, hPrev).
	return batch*l.steps*perStep + 3*l.hidden + 4*l.hidden + l.hidden
}

func (l *lstm) forward(params, x, y []float64, batch int, sc *scratch) {
	h := l.hidden
	h4 := 4 * h
	wx := params[:l.inDim*h4]
	wh := params[l.inDim*h4 : l.inDim*h4+h*h4]
	bias := params[l.inDim*h4+h*h4:]
	buf := sc.floatBuf(l.scratchSize(batch))
	recs := buf[:batch*l.steps*lstmRec*h]
	z := buf[len(buf)-h4-h : len(buf)-h] // gate pre-activations, reused
	hPrev := buf[len(buf)-h:]

	inSize := l.in.Size()
	for s := 0; s < batch; s++ {
		xs := x[s*inSize : (s+1)*inSize]
		vecmath.Zero(hPrev)
		var cPrevRec []float64 // c_{t-1} slice inside recs, nil at t=0
		for t := 0; t < l.steps; t++ {
			rec := recs[(s*l.steps+t)*lstmRec*h : (s*l.steps+t+1)*lstmRec*h]
			gi, gf, gg, go_ := rec[:h], rec[h:2*h], rec[2*h:3*h], rec[3*h:4*h]
			c, tc := rec[4*h:5*h], rec[5*h:]
			xt := xs[t*l.inDim : (t+1)*l.inDim]
			// z = Wxᵀ x_t + Whᵀ h_{t-1} + b
			copy(z, bias)
			for k, xv := range xt {
				if xv == 0 {
					continue
				}
				row := wx[k*h4 : (k+1)*h4]
				for j, wv := range row {
					z[j] += xv * wv
				}
			}
			for k, hv := range hPrev {
				if hv == 0 {
					continue
				}
				row := wh[k*h4 : (k+1)*h4]
				for j, wv := range row {
					z[j] += hv * wv
				}
			}
			for j := 0; j < h; j++ {
				gi[j] = sigmoid(z[j])
				gf[j] = sigmoid(z[h+j])
				gg[j] = tanhFast(z[2*h+j])
				go_[j] = sigmoid(z[3*h+j])
			}
			for j := 0; j < h; j++ {
				cp := 0.0
				if cPrevRec != nil {
					cp = cPrevRec[4*h+j]
				}
				c[j] = gf[j]*cp + gi[j]*gg[j]
				tc[j] = tanhFast(c[j])
				hPrev[j] = go_[j] * tc[j]
			}
			cPrevRec = rec
		}
		copy(y[s*h:(s+1)*h], hPrev)
	}
}

func (l *lstm) backward(params, x, _, dy, dx, dparams []float64, batch int, sc *scratch) {
	h := l.hidden
	h4 := 4 * h
	nwx := l.inDim * h4
	nwh := h * h4
	wx := params[:nwx]
	wh := params[nwx : nwx+nwh]
	dwx := dparams[:nwx]
	dwh := dparams[nwx : nwx+nwh]
	db := dparams[nwx+nwh:]

	buf := sc.floatBuf(l.scratchSize(batch))
	recs := buf[:batch*l.steps*lstmRec*h]
	tmp := buf[batch*l.steps*lstmRec*h:]
	dh, dc, dhNext := tmp[:h], tmp[h:2*h], tmp[2*h:3*h]
	dz := tmp[3*h : 3*h+h4]

	inSize := l.in.Size()
	vecmath.Zero(dx[:batch*inSize])
	for s := 0; s < batch; s++ {
		xs := x[s*inSize : (s+1)*inSize]
		dxs := dx[s*inSize : (s+1)*inSize]
		copy(dh, dy[s*h:(s+1)*h])
		vecmath.Zero(dc)
		for t := l.steps - 1; t >= 0; t-- {
			rec := recs[(s*l.steps+t)*lstmRec*h : (s*l.steps+t+1)*lstmRec*h]
			gi, gf, gg, go_ := rec[:h], rec[h:2*h], rec[2*h:3*h], rec[3*h:4*h]
			tc := rec[5*h:]
			var cPrev []float64
			if t > 0 {
				prev := recs[(s*l.steps+t-1)*lstmRec*h : (s*l.steps+t)*lstmRec*h]
				cPrev = prev[4*h : 5*h]
			}
			for j := 0; j < h; j++ {
				do := dh[j] * tc[j]
				dcj := dc[j] + dh[j]*go_[j]*(1-tc[j]*tc[j])
				cp := 0.0
				if cPrev != nil {
					cp = cPrev[j]
				}
				di := dcj * gg[j]
				df := dcj * cp
				dg := dcj * gi[j]
				dc[j] = dcj * gf[j] // becomes dc_{t-1}
				dz[j] = di * gi[j] * (1 - gi[j])
				dz[h+j] = df * gf[j] * (1 - gf[j])
				dz[2*h+j] = dg * (1 - gg[j]*gg[j])
				dz[3*h+j] = do * go_[j] * (1 - go_[j])
			}
			// Parameter gradients and upstream gradients.
			xt := xs[t*l.inDim : (t+1)*l.inDim]
			dxt := dxs[t*l.inDim : (t+1)*l.inDim]
			for k, xv := range xt {
				wrow := wx[k*h4 : (k+1)*h4]
				dwrow := dwx[k*h4 : (k+1)*h4]
				var acc float64
				for j, dzj := range dz {
					if xv != 0 {
						dwrow[j] += xv * dzj
					}
					acc += wrow[j] * dzj
				}
				dxt[k] = acc
			}
			vecmath.AXPY(1, dz, db)
			if t > 0 {
				prev := recs[(s*l.steps+t-1)*lstmRec*h : (s*l.steps+t)*lstmRec*h]
				// h_{t-1} = o_{t-1} * tanh(c_{t-1})
				for k := 0; k < h; k++ {
					hPrev := prev[3*h+k] * prev[5*h+k]
					dwrow := dwh[k*h4 : (k+1)*h4]
					wrow := wh[k*h4 : (k+1)*h4]
					var acc float64
					for j, dzj := range dz {
						if hPrev != 0 {
							dwrow[j] += hPrev * dzj
						}
						acc += wrow[j] * dzj
					}
					dhNext[k] = acc
				}
				copy(dh, dhNext)
			}
		}
	}
}
