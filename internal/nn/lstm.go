package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/vecmath"
)

// lstm is a single-layer LSTM over a fixed-length sequence. The input is a
// flattened sequence of steps×inDim features (for character models each
// step is a one-hot vector); the output is the final hidden state h_T,
// which a Dense head then maps to logits. Backpropagation through time
// stores all gate activations for the full sequence.
//
// Parameter layout: Wx[inDim×4H] | Wh[H×4H] | b[4H], with gate order
// input, forget, cell (g), output.
//
// Execution is step-major: at every timestep the whole mini-batch's gate
// pre-activations are one batch×4H GEMM against Wx plus one against Wh
// (and the transposed products on the way back), so the recurrence runs on
// the same register-tiled vecmath kernels as the dense and conv layers
// instead of per-sample vector loops.
type lstm struct {
	in     Shape
	steps  int
	inDim  int
	hidden int
}

// LSTM appends a recurrent layer that interprets the current activation as
// a sequence of steps×inDim features and outputs the final hidden state of
// size hidden.
func (b *Builder) LSTM(steps, inDim, hidden int) *Builder {
	in := b.cur()
	if steps <= 0 || inDim <= 0 || hidden <= 0 {
		return b.add(nil, fmt.Errorf("nn: LSTM(steps=%d, inDim=%d, hidden=%d) invalid", steps, inDim, hidden))
	}
	if in.Size() != steps*inDim {
		return b.add(nil, fmt.Errorf("nn: LSTM expects input size %d (=%d steps × %d), have %v", steps*inDim, steps, inDim, in))
	}
	return b.add(&lstm{in: in, steps: steps, inDim: inDim, hidden: hidden}, nil)
}

func (l *lstm) name() string    { return "lstm" }
func (l *lstm) inShape() Shape  { return l.in }
func (l *lstm) outShape() Shape { return Vec(l.hidden) }
func (l *lstm) paramCount() int {
	h4 := 4 * l.hidden
	return l.inDim*h4 + l.hidden*h4 + h4
}

func (l *lstm) initParams(params []float64, r *rng.RNG) {
	h4 := 4 * l.hidden
	limit := 1 / math.Sqrt(float64(l.hidden))
	nW := l.inDim*h4 + l.hidden*h4
	for i := 0; i < nW; i++ {
		params[i] = (2*r.Float64() - 1) * limit
	}
	b := params[nW:]
	vecmath.Zero(b)
	// Forget-gate bias starts at 1 so early training retains memory.
	for j := l.hidden; j < 2*l.hidden; j++ {
		b[j] = 1
	}
}

// Per-step scratch record, batch-major so every timestep is GEMM-ready:
// gates (batch×4H, activated in place) | c (batch×H) | tc (batch×H) —
// 6H floats per sample per step. h_t is not stored separately:
// h_t = o*tc is recomputed from the record when needed.
const lstmRec = 6

// scratch layout (offsets within one floatBuf, B = batch):
//
//	recs  S·B·6H   per-step records, persist from forward into backward
//	xbuf  B·D      current timestep's inputs, gathered batch-major
//	hbuf  B·H      forward: running h_t; backward: recomputed h_{t-1}
//	dh    B·H      backward only
//	dc    B·H      backward only
//	dz    B·4H     backward only
//	dxt   B·D      backward only
func (l *lstm) scratchSize(batch int) int {
	h := l.hidden
	return batch * (l.steps*lstmRec*h + 2*l.inDim + 7*h)
}

// recBlocks slices the records of step t into the gate matrix (batch×4H)
// and the cell/tanh-cell matrices (batch×H each).
func recBlocks[F Float](recs []F, t, batch, h int) (gates, c, tc []F) {
	base := t * batch * lstmRec * h
	gates = recs[base : base+batch*4*h]
	c = recs[base+batch*4*h : base+batch*5*h]
	tc = recs[base+batch*5*h : base+batch*6*h]
	return
}

func (l *lstm) forward(params, x, y []float64, batch int, sc *scratch) {
	lstmForward(l, params, x, y, batch, sc)
}

func (l *lstm) forward32(params, x, y []float32, batch int, sc *scratch32) {
	lstmForward(l, params, x, y, batch, sc)
}

func (l *lstm) backward(params, x, _, dy, dx, dparams []float64, batch int, sc *scratch) {
	lstmBackward(l, params, x, dy, dx, dparams, batch, sc)
}

func (l *lstm) backward32(params, x, _, dy, dx, dparams []float32, batch int, sc *scratch32) {
	lstmBackward(l, params, x, dy, dx, dparams, batch, sc)
}

func lstmForward[F Float](l *lstm, params, x, y []F, batch int, sc *scratchOf[F]) {
	h := l.hidden
	h4 := 4 * h
	d := l.inDim
	wx := params[:d*h4]
	wh := params[d*h4 : d*h4+h*h4]
	bias := params[d*h4+h*h4:]

	buf := sc.floatBuf(l.scratchSize(batch))
	recs := buf[:batch*l.steps*lstmRec*h]
	xbuf := buf[len(recs) : len(recs)+batch*d]
	hbuf := buf[len(recs)+batch*d : len(recs)+batch*d+batch*h]

	inSize := l.in.Size()
	var cPrev []F // previous step's batch×H cell block, nil at t=0
	for t := 0; t < l.steps; t++ {
		gates, c, tc := recBlocks(recs, t, batch, h)
		// Gather x_t batch-major and compute all gate pre-activations:
		// Z = X_t·Wx + H_{t-1}·Wh + b, one GEMM per operand.
		for s := 0; s < batch; s++ {
			copy(xbuf[s*d:(s+1)*d], x[s*inSize+t*d:s*inSize+(t+1)*d])
		}
		gemm(gates, xbuf, wx, batch, d, h4, false)
		if t > 0 {
			gemm(gates, hbuf, wh, batch, h, h4, true)
		}
		addRowVectorF(gates, bias, batch, h4)
		lstmGateForward(gates, c, tc, hbuf, cPrev, batch, h)
		cPrev = c
	}
	copy(y[:batch*h], hbuf)
}

// lstmGateForward applies the elementwise half of one LSTM timestep:
// activate the four gate blocks in place, update the cell state, and emit
// h_t = o·tanh(c). cPrev is nil at t=0 (cell state starts at zero). The
// default (float64) body is the pre-split loop verbatim — same operations
// in the same order, so the sync golden stays bit-identical — while the
// float32 specialization runs the polynomial fp32 transcendentals from
// mathf32.go instead of round-tripping every element through the float64
// libm.
func lstmGateForward[F Float](gates, c, tc, hbuf, cPrev []F, batch, h int) {
	h4 := 4 * h
	switch g4 := any(gates).(type) {
	case []float32:
		lstmGateForward32(g4, any(c).([]float32), any(tc).([]float32),
			any(hbuf).([]float32), any(cPrev).([]float32), batch, h)
	default:
		for s := 0; s < batch; s++ {
			g := gates[s*h4 : (s+1)*h4]
			cs := c[s*h : (s+1)*h]
			tcs := tc[s*h : (s+1)*h]
			hs := hbuf[s*h : (s+1)*h]
			for j := 0; j < h; j++ {
				gi := sigmoidF(g[j])
				gf := sigmoidF(g[h+j])
				gg := tanhF(g[2*h+j])
				go_ := sigmoidF(g[3*h+j])
				g[j], g[h+j], g[2*h+j], g[3*h+j] = gi, gf, gg, go_
				var cp F
				if cPrev != nil {
					cp = cPrev[s*h+j]
				}
				cs[j] = gf*cp + gi*gg
				tcs[j] = tanhF(cs[j])
				hs[j] = go_ * tcs[j]
			}
		}
	}
}

// lstmGateForward32 runs the gate nonlinearities block-wise through the
// AVX2 vecmath kernels: the input+forget sigmoid block is contiguous in
// the gate layout ([0,2H)), the cell tanh and output sigmoid blocks
// follow, and the cell-state tanh vectorizes over the whole batch row.
// Only the two cheap mul/add fusions remain scalar.
func lstmGateForward32(gates, c, tc, hbuf, cPrev []float32, batch, h int) {
	h4 := 4 * h
	for s := 0; s < batch; s++ {
		g := gates[s*h4 : (s+1)*h4]
		vecmath.Sigmoid32(g[:2*h], g[:2*h])
		vecmath.Tanh32(g[2*h:3*h], g[2*h:3*h])
		vecmath.Sigmoid32(g[3*h:], g[3*h:])
		cs := c[s*h : (s+1)*h]
		tcs := tc[s*h : (s+1)*h]
		hs := hbuf[s*h : (s+1)*h]
		if cPrev != nil {
			cp := cPrev[s*h : (s+1)*h]
			for j := 0; j < h; j++ {
				cs[j] = g[h+j]*cp[j] + g[j]*g[2*h+j]
			}
		} else {
			for j := 0; j < h; j++ {
				cs[j] = g[j] * g[2*h+j]
			}
		}
		vecmath.Tanh32(tcs, cs)
		for j := 0; j < h; j++ {
			hs[j] = g[3*h+j] * tcs[j]
		}
	}
}

func lstmBackward[F Float](l *lstm, params, x, dy, dx, dparams []F, batch int, sc *scratchOf[F]) {
	h := l.hidden
	h4 := 4 * h
	d := l.inDim
	nwx := d * h4
	nwh := h * h4
	wx := params[:nwx]
	wh := params[nwx : nwx+nwh]
	dwx := dparams[:nwx]
	dwh := dparams[nwx : nwx+nwh]
	db := dparams[nwx+nwh:]

	buf := sc.floatBuf(l.scratchSize(batch))
	recs := buf[:batch*l.steps*lstmRec*h]
	off := len(recs)
	xbuf := buf[off : off+batch*d]
	off += batch * d
	hbuf := buf[off : off+batch*h]
	off += batch * h
	dh := buf[off : off+batch*h]
	off += batch * h
	dc := buf[off : off+batch*h]
	off += batch * h
	dz := buf[off : off+batch*h4]
	off += batch * h4
	dxt := buf[off : off+batch*d]

	inSize := l.in.Size()
	copy(dh, dy[:batch*h])
	zeroF(dc)
	for t := l.steps - 1; t >= 0; t-- {
		gates, _, tc := recBlocks(recs, t, batch, h)
		var prevGates, prevC, prevTc []F
		if t > 0 {
			prevGates, prevC, prevTc = recBlocks(recs, t-1, batch, h)
		}
		// Elementwise pass: gate gradients dz and the running dc.
		for s := 0; s < batch; s++ {
			g := gates[s*h4 : (s+1)*h4]
			dzs := dz[s*h4 : (s+1)*h4]
			for j := 0; j < h; j++ {
				gi, gf, gg, go_ := g[j], g[h+j], g[2*h+j], g[3*h+j]
				tcj := tc[s*h+j]
				dhj := dh[s*h+j]
				do := dhj * tcj
				dcj := dc[s*h+j] + dhj*go_*(1-tcj*tcj)
				var cp F
				if prevC != nil {
					cp = prevC[s*h+j]
				}
				di := dcj * gg
				df := dcj * cp
				dg := dcj * gi
				dc[s*h+j] = dcj * gf // becomes dc_{t-1}
				dzs[j] = di * gi * (1 - gi)
				dzs[h+j] = df * gf * (1 - gf)
				dzs[2*h+j] = dg * (1 - gg*gg)
				dzs[3*h+j] = do * go_ * (1 - go_)
			}
		}
		sumRowsAccF(db, dz, batch, h4)
		// dWx += X_tᵀ·dZ and dX_t = dZ·Wxᵀ.
		for s := 0; s < batch; s++ {
			copy(xbuf[s*d:(s+1)*d], x[s*inSize+t*d:s*inSize+(t+1)*d])
		}
		gemmATB(dwx, xbuf, dz, batch, d, h4, true)
		gemmABT(dxt, dz, wx, batch, h4, d, false)
		for s := 0; s < batch; s++ {
			copy(dx[s*inSize+t*d:s*inSize+(t+1)*d], dxt[s*d:(s+1)*d])
		}
		if t > 0 {
			// Recompute H_{t-1} = o_{t-1}*tanh(c_{t-1}) batch-major, then
			// dWh += H_{t-1}ᵀ·dZ and dh_{t-1} = dZ·Whᵀ.
			for s := 0; s < batch; s++ {
				for j := 0; j < h; j++ {
					hbuf[s*h+j] = prevGates[s*h4+3*h+j] * prevTc[s*h+j]
				}
			}
			gemmATB(dwh, hbuf, dz, batch, h, h4, true)
			gemmABT(dh, dz, wh, batch, h4, h, false)
		}
	}
}
