package nn

import (
	"repro/internal/rng"
)

// relu applies y = max(0, x) elementwise; shape-preserving.
type relu struct {
	in Shape
}

// ReLU appends a rectified-linear activation.
func (b *Builder) ReLU() *Builder {
	return b.add(&relu{in: b.cur()}, nil)
}

func (l *relu) name() string                   { return "relu" }
func (l *relu) inShape() Shape                 { return l.in }
func (l *relu) outShape() Shape                { return l.in }
func (l *relu) paramCount() int                { return 0 }
func (l *relu) initParams([]float64, *rng.RNG) {}

func (l *relu) forward(_, x, y []float64, batch int, _ *scratch) {
	n := batch * l.in.Size()
	for i := 0; i < n; i++ {
		if x[i] > 0 {
			y[i] = x[i]
		} else {
			y[i] = 0
		}
	}
}

func (l *relu) backward(_, x, _, dy, dx, _ []float64, batch int, _ *scratch) {
	n := batch * l.in.Size()
	for i := 0; i < n; i++ {
		if x[i] > 0 {
			dx[i] = dy[i]
		} else {
			dx[i] = 0
		}
	}
}

// tanhLayer applies y = tanh(x) elementwise; shape-preserving. Used by the
// MLP head variants and available for recurrent models.
type tanhLayer struct {
	in Shape
}

// Tanh appends a hyperbolic-tangent activation.
func (b *Builder) Tanh() *Builder {
	return b.add(&tanhLayer{in: b.cur()}, nil)
}

func (l *tanhLayer) name() string                   { return "tanh" }
func (l *tanhLayer) inShape() Shape                 { return l.in }
func (l *tanhLayer) outShape() Shape                { return l.in }
func (l *tanhLayer) paramCount() int                { return 0 }
func (l *tanhLayer) initParams([]float64, *rng.RNG) {}

func (l *tanhLayer) forward(_, x, y []float64, batch int, _ *scratch) {
	n := batch * l.in.Size()
	for i := 0; i < n; i++ {
		y[i] = tanhFast(x[i])
	}
}

func (l *tanhLayer) backward(_, _, y, dy, dx, _ []float64, batch int, _ *scratch) {
	n := batch * l.in.Size()
	for i := 0; i < n; i++ {
		dx[i] = dy[i] * (1 - y[i]*y[i])
	}
}
