package nn

import (
	"math"

	"repro/internal/rng"
	"repro/internal/vecmath"
)

// relu applies y = max(0, x) elementwise; shape-preserving.
type relu struct {
	in Shape
}

// ReLU appends a rectified-linear activation.
func (b *Builder) ReLU() *Builder {
	return b.add(&relu{in: b.cur()}, nil)
}

func (l *relu) name() string                   { return "relu" }
func (l *relu) inShape() Shape                 { return l.in }
func (l *relu) outShape() Shape                { return l.in }
func (l *relu) paramCount() int                { return 0 }
func (l *relu) initParams([]float64, *rng.RNG) {}

func (l *relu) forward(_, x, y []float64, batch int, _ *scratch) {
	reluForward(x, y, batch*l.in.Size())
}

func (l *relu) forward32(_, x, y []float32, batch int, _ *scratch32) {
	reluForward(x, y, batch*l.in.Size())
}

func (l *relu) backward(_, x, _, dy, dx, _ []float64, batch int, _ *scratch) {
	reluBackward(x, dy, dx, batch*l.in.Size())
}

func (l *relu) backward32(_, x, _, dy, dx, _ []float32, batch int, _ *scratch32) {
	reluBackward(x, dy, dx, batch*l.in.Size())
}

func reluForward[F Float](x, y []F, n int) {
	switch xs := any(x).(type) {
	case []float32:
		// Branchless max(0, v) = (v + |v|)/2 — exact for every finite v,
		// and measurably faster than the compare on random-sign
		// activations, where the branch mispredicts half the time.
		ys := any(y).([]float32)
		for i := 0; i < n; i++ {
			v := xs[i]
			ys[i] = (v + math.Float32frombits(math.Float32bits(v)&^(1<<31))) * 0.5
		}
	default:
		for i := 0; i < n; i++ {
			if x[i] > 0 {
				y[i] = x[i]
			} else {
				y[i] = 0
			}
		}
	}
}

func reluBackward[F Float](x, dy, dx []F, n int) {
	switch xs := any(x).(type) {
	case []float32:
		// Branchless gate: for non-NaN x, x > 0 exactly when its bit
		// pattern read as int32 is positive (+0 is 0, negatives and -0
		// have the sign bit set), so `keep` is 1 iff x > 0 — the &^ term
		// handles -0, whose negation wraps. Multiplying dy's bits by
		// 0/1 passes dy through or yields +0 without a data-dependent
		// branch, which mispredicts on ~half of random-sign activations.
		dys := any(dy).([]float32)
		dxs := any(dx).([]float32)
		for i := 0; i < n; i++ {
			m := int32(math.Float32bits(xs[i]))
			keep := (uint32(-m) >> 31) &^ (uint32(m) >> 31)
			dxs[i] = math.Float32frombits(math.Float32bits(dys[i]) * keep)
		}
	default:
		for i := 0; i < n; i++ {
			if x[i] > 0 {
				dx[i] = dy[i]
			} else {
				dx[i] = 0
			}
		}
	}
}

// tanhLayer applies y = tanh(x) elementwise; shape-preserving. Used by the
// MLP head variants and available for recurrent models.
type tanhLayer struct {
	in Shape
}

// Tanh appends a hyperbolic-tangent activation.
func (b *Builder) Tanh() *Builder {
	return b.add(&tanhLayer{in: b.cur()}, nil)
}

func (l *tanhLayer) name() string                   { return "tanh" }
func (l *tanhLayer) inShape() Shape                 { return l.in }
func (l *tanhLayer) outShape() Shape                { return l.in }
func (l *tanhLayer) paramCount() int                { return 0 }
func (l *tanhLayer) initParams([]float64, *rng.RNG) {}

func (l *tanhLayer) forward(_, x, y []float64, batch int, _ *scratch) {
	tanhForward(x, y, batch*l.in.Size())
}

func (l *tanhLayer) forward32(_, x, y []float32, batch int, _ *scratch32) {
	tanhForward(x, y, batch*l.in.Size())
}

func (l *tanhLayer) backward(_, _, y, dy, dx, _ []float64, batch int, _ *scratch) {
	tanhBackward(y, dy, dx, batch*l.in.Size())
}

func (l *tanhLayer) backward32(_, _, y, dy, dx, _ []float32, batch int, _ *scratch32) {
	tanhBackward(y, dy, dx, batch*l.in.Size())
}

func tanhForward[F Float](x, y []F, n int) {
	switch xs := any(x).(type) {
	case []float32:
		vecmath.Tanh32(any(y).([]float32)[:n], xs[:n])
	default:
		for i := 0; i < n; i++ {
			y[i] = tanhF(x[i])
		}
	}
}

func tanhBackward[F Float](y, dy, dx []F, n int) {
	for i := 0; i < n; i++ {
		dx[i] = dy[i] * (1 - y[i]*y[i])
	}
}
