//go:build !amd64 || noasm

package vecmath

func axpypyKernel(a float64, x *float64, b float64, y, z *float64, n int) {
	panic("vecmath: assembly kernel on non-amd64")
}

func subScaleKernel(s float64, a, b, dst *float64, n int) {
	panic("vecmath: assembly kernel on non-amd64")
}
