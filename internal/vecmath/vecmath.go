// Package vecmath provides the flat-vector and small-matrix primitives used
// throughout the repository. Federated-learning algorithms in this codebase
// exchange model updates as flat []float64 slices, so the hot operations are
// BLAS-level-1 style kernels (axpy, dot, norms, cosine similarity) plus the
// row-major GEMM kernels (matrix.go) that the neural-network substrate in
// internal/nn lowers every dense, convolutional (via im2col), and recurrent
// layer onto.
//
// # GEMM kernels and knobs
//
// Gemm, GemmATB, and GemmABT are register-tiled matrix products with an
// accumulate flag (C = A·B or C += A·B). On amd64 with AVX2+FMA the main
// tiles run in assembly microkernels (gemm_amd64.s), detected once via
// CPUID; everywhere else, and for tile remainders, pure-Go 2×4 register
// tiles are used. The tunable knobs are the constants in matrix.go:
// gemmKC (reduction-dimension cache block of the pure-Go Gemm) and
// gemmATBPanelMin (reduction length at which the pure-Go GemmATB switches
// to rank-1 row panels); gemmMR/gemmNR merely document the fixed 2×4 tile
// shape baked into the unrolled loop bodies. After changing a knob,
// re-run at the repository root
//
//	go test ./internal/vecmath/ && go test -bench 'BenchmarkGEMM|BenchmarkGradEval' -benchtime 1x .
//
// to re-validate numerics and measure the effect; BenchmarkGEMM reports
// flops/s for the shapes the substrate actually runs. DESIGN.md §2
// documents the blocking scheme and the layer/scratch/engine contract
// built on top of these kernels.
//
// All functions treat nil and empty slices as zero-length vectors. Functions
// that combine two vectors panic when the lengths differ: a length mismatch
// is a programming error in this codebase (parameter vectors for one model
// always have one fixed length), not a recoverable condition.
package vecmath

import (
	"fmt"
	"math"
)

// checkLen panics when two vectors that must be conformable are not.
func checkLen(op string, a, b int) {
	if a != b {
		panic(fmt.Sprintf("vecmath: %s: length mismatch %d != %d", op, a, b))
	}
}

// Zero sets every element of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Clone returns a newly allocated copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Add computes dst[i] = a[i] + b[i]. dst may alias a or b.
func Add(dst, a, b []float64) {
	checkLen("Add", len(a), len(b))
	checkLen("Add", len(dst), len(a))
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst[i] = a[i] - b[i]. dst may alias a or b.
func Sub(dst, a, b []float64) {
	checkLen("Sub", len(a), len(b))
	checkLen("Sub", len(dst), len(a))
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// AXPY computes y[i] += alpha * x[i] (the classic BLAS axpy kernel).
func AXPY(alpha float64, x, y []float64) {
	checkLen("AXPY", len(x), len(y))
	for i, xi := range x {
		y[i] += alpha * xi
	}
}

// AddConst computes x[i] += alpha in place. Used to apply per-channel
// biases to contiguous activation rows.
func AddConst(alpha float64, x []float64) {
	for i := range x {
		x[i] += alpha
	}
}

// Scale computes x[i] *= alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// ScaleTo computes dst[i] = alpha * x[i]. dst may alias x.
func ScaleTo(dst []float64, alpha float64, x []float64) {
	checkLen("ScaleTo", len(dst), len(x))
	for i, xi := range x {
		dst[i] = alpha * xi
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	checkLen("Dot", len(a), len(b))
	var s float64
	for i, ai := range a {
		s += ai * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// Norm2Safe returns the Euclidean norm of x, rescaling by the largest
// magnitude first so the squared sum cannot overflow. Use it where inputs
// are not under the caller's control (for example uploaded client deltas).
func Norm2Safe(x []float64) float64 {
	m := MaxAbs(x)
	if m == 0 || math.IsInf(m, 0) {
		return m
	}
	inv := 1 / m
	var s float64
	for _, v := range x {
		sv := v * inv
		s += sv * sv
	}
	return m * math.Sqrt(s)
}

// Norm1 returns the sum of absolute values of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// MaxAbs returns the largest absolute element of x (0 for empty x).
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// CosineSimilarity returns cos(a, b) = a·b / (||a|| ||b||).
// When either vector has zero norm the similarity is defined as 0, matching
// the paper's convention that a degenerate gradient carries no direction.
// The computation rescales both vectors by their largest magnitude first so
// the result stays finite even when the raw squared norms would overflow.
func CosineSimilarity(a, b []float64) float64 {
	checkLen("CosineSimilarity", len(a), len(b))
	ma, mb := MaxAbs(a), MaxAbs(b)
	if ma == 0 || mb == 0 {
		return 0
	}
	invA, invB := 1/ma, 1/mb
	var dot, na, nb float64
	for i, ai := range a {
		sa := ai * invA
		sb := b[i] * invB
		dot += sa * sb
		na += sa * sa
		nb += sb * sb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return Clamp(dot/(math.Sqrt(na)*math.Sqrt(nb)), -1, 1)
}

// WeightedSum computes dst = Σ_i weights[i] * vecs[i]. All vectors must share
// dst's length. Zero weights skip their vector entirely, so expelled clients
// cost nothing.
func WeightedSum(dst []float64, weights []float64, vecs [][]float64) {
	checkLen("WeightedSum", len(weights), len(vecs))
	Zero(dst)
	for i, w := range weights {
		if w == 0 {
			continue
		}
		AXPY(w, vecs[i], dst)
	}
}

// L2DistanceSquared returns ||a-b||^2 without allocating.
func L2DistanceSquared(a, b []float64) float64 {
	checkLen("L2DistanceSquared", len(a), len(b))
	var s float64
	for i, ai := range a {
		d := ai - b[i]
		s += d * d
	}
	return s
}

// Clamp returns v limited to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AllFinite reports whether every element of x is a finite number. FL runs
// use this to detect divergence (the paper's convergence-failure events).
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
