package vecmath

// Fused level-1 kernels for the federated-learning hot path. Every local
// SGD step of a correction-based method (Scaffold, TACO, the hybrids)
// used to make two full passes over the d-length parameter vector —
// adjust the gradient in place, then apply the step — and every
// freeloader replay made two more (subtract, then rescale). The fused
// kernels below do each pair in a single pass, with AVX2+FMA assembly on
// amd64 (gated by the same CPUID check as the GEMM microkernels) and
// pure-Go fallbacks elsewhere and for vector tails.
//
// The assembly bodies use FMA, so their roundings differ from the
// fallback's separate multiply/add in the last ulp; like the GEMM
// kernels, callers must not assume bit-identical results across
// machines, only within one process (which is what the engine's
// parallelism-independence guarantee is stated over).

// fusedLanes is the element count each assembly loop iteration consumes
// (two 4-wide YMM vectors); tails shorter than this run in pure Go.
const fusedLanes = 8

// AXPYPY computes z[i] += a*x[i] + b*y[i] in one pass — the fused form
// of GradAdjust-then-AXPY: with a = −ηl, x the raw mini-batch gradient,
// b = −ηl·coeff, and y the method's correction vector, it applies the
// corrected step w ← w − ηl·(g + coeff·c) without materializing the
// adjusted gradient.
func AXPYPY(a float64, x []float64, b float64, y, z []float64) {
	checkLen("AXPYPY", len(x), len(z))
	checkLen("AXPYPY", len(y), len(z))
	n := len(z)
	i := 0
	if useAVX && n >= fusedLanes {
		head := n &^ (fusedLanes - 1)
		axpypyKernel(a, &x[0], b, &y[0], &z[0], head)
		i = head
	}
	for ; i < n; i++ {
		z[i] += a*x[i] + b*y[i]
	}
}

// SubScale computes dst[i] = s*(a[i]-b[i]) in one pass — the fused form
// of Sub-then-Scale used by the freeloader replay ∆ = scale·(w^{t−1} −
// w^t). dst may alias a or b.
func SubScale(dst []float64, s float64, a, b []float64) {
	checkLen("SubScale", len(a), len(b))
	checkLen("SubScale", len(dst), len(a))
	n := len(dst)
	i := 0
	if useAVX && n >= fusedLanes {
		head := n &^ (fusedLanes - 1)
		subScaleKernel(s, &a[0], &b[0], &dst[0], head)
		i = head
	}
	for ; i < n; i++ {
		dst[i] = s * (a[i] - b[i])
	}
}
