//go:build !amd64 || noasm

package vecmath

func scatterAXPYKernel(alpha float64, idx *int32, val, y *float64, n int) {
	panic("vecmath: assembly kernel on non-amd64")
}

func gatherDotKernel(idx *int32, val, y *float64, n int) float64 {
	panic("vecmath: assembly kernel on non-amd64")
}
