package vecmath

import "math"

// Float32 level-1 mirrors of the hot kernels in vecmath.go, used by the
// fp32 training path (Config.DType=f32). Only the kernels on the local
// training hot path get f32 twins: elementwise update/step kernels here,
// the GEMM family in matrix32.go, the fused step kernels in fused32.go,
// and the sparse aggregation kernels in sparse32.go. Everything on the
// server side (aggregation, robust statistics, FedOpt moments) stays
// float64 — client updates are widened once at the upload boundary — so
// the f32 surface is deliberately small.
//
// Widen and Narrow are the only conversion points; both are exact in the
// direction that matters (every float32 is exactly representable as a
// float64, and Narrow(Widen(x)) == x), which is what lets the fl layer
// round-trip hook state through float64 bridge buffers without drift.

// Zero32 sets every element of x to 0.
func Zero32(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Add32 computes dst[i] = a[i] + b[i]. dst may alias a or b. The AVX2
// head produces the same bits as the scalar tail (plain adds, no FMA),
// so Add32 results do not depend on the asm/noasm build.
func Add32(dst, a, b []float32) {
	checkLen("Add32", len(a), len(b))
	checkLen("Add32", len(dst), len(a))
	n := len(dst)
	i := 0
	if useAVX && n >= fusedLanes32 {
		head := n &^ (fusedLanes32 - 1)
		add32Kernel(&a[0], &b[0], &dst[0], head)
		i = head
	}
	for ; i < n; i++ {
		dst[i] = a[i] + b[i]
	}
}

// Sub32 computes dst[i] = a[i] - b[i]. dst may alias a or b.
func Sub32(dst, a, b []float32) {
	checkLen("Sub32", len(a), len(b))
	checkLen("Sub32", len(dst), len(a))
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// AXPY32 computes y[i] += alpha * x[i]. The assembly head uses FMA, so
// (as with the other fused kernels) results match the pure-Go tail only
// to within one rounding of the product term.
func AXPY32(alpha float32, x, y []float32) {
	checkLen("AXPY32", len(x), len(y))
	n := len(x)
	i := 0
	if useAVX && n >= fusedLanes32 {
		head := n &^ (fusedLanes32 - 1)
		axpy32Kernel(alpha, &x[0], &y[0], head)
		i = head
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Scale32 computes x[i] *= alpha in place.
func Scale32(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot32 returns the inner product of a and b, accumulated in float32
// (AVX2+FMA assembly on amd64, 16 lanes per iteration). Like the other
// assembly-backed kernels the summation order differs between the asm and
// fallback paths, so results are only reproducible within one process.
func Dot32(a, b []float32) float32 {
	checkLen("Dot32", len(a), len(b))
	n := len(a)
	var s float32
	i := 0
	if useAVX && n >= fusedLanes32 {
		head := n &^ (fusedLanes32 - 1)
		s = dot32Kernel(&a[0], &b[0], head)
		i = head
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Norm232 returns the Euclidean norm of x. The sum of squares is taken in
// float32; callers needing overflow-safe norms should widen and use
// Norm2Safe.
func Norm232(x []float32) float32 {
	return float32(math.Sqrt(float64(Dot32(x, x))))
}

// Widen converts x into dst element-wise (exact: every float32 value is
// representable as a float64).
func Widen(dst []float64, x []float32) {
	checkLen("Widen", len(dst), len(x))
	for i, v := range x {
		dst[i] = float64(v)
	}
}

// Narrow converts x into dst element-wise, rounding to nearest-even.
// Narrow∘Widen is the identity, which the fl bridge buffers rely on.
func Narrow(dst []float32, x []float64) {
	checkLen("Narrow", len(dst), len(x))
	for i, v := range x {
		dst[i] = float32(v)
	}
}
