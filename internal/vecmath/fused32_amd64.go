//go:build amd64 && !noasm

package vecmath

// axpypy32Kernel accumulates z[i] += a*x[i] + b*y[i] over the first n
// elements with AVX2+FMA; n must be a positive multiple of fusedLanes32.
//
//go:noescape
func axpypy32Kernel(a float32, x *float32, b float32, y, z *float32, n int)

// subScale32Kernel writes dst[i] = s*(a[i]-b[i]) over the first n
// elements with AVX2; n must be a positive multiple of fusedLanes32.
//
//go:noescape
func subScale32Kernel(s float32, a, b, dst *float32, n int)

// axpy32Kernel accumulates y[i] += alpha*x[i] over the first n elements
// with AVX2+FMA; n must be a positive multiple of fusedLanes32.
//
//go:noescape
func axpy32Kernel(alpha float32, x, y *float32, n int)

// add32Kernel writes dst[i] = a[i]+b[i] over the first n elements with
// AVX2; n must be a positive multiple of fusedLanes32. dst may exactly
// alias a or b.
//
//go:noescape
func add32Kernel(a, b, dst *float32, n int)

// dot32Kernel returns Σ a[i]*b[i] over the first n elements with
// AVX2+FMA (two 8-wide accumulator chains, reduced pairwise at the end);
// n must be a positive multiple of fusedLanes32.
//
//go:noescape
func dot32Kernel(a, b *float32, n int) float32
