//go:build amd64 && !noasm

package vecmath

// axpypyKernel accumulates z[i] += a*x[i] + b*y[i] over the first n
// elements with AVX2+FMA; n must be a positive multiple of fusedLanes.
//
//go:noescape
func axpypyKernel(a float64, x *float64, b float64, y, z *float64, n int)

// subScaleKernel writes dst[i] = s*(a[i]-b[i]) over the first n elements
// with AVX2; n must be a positive multiple of fusedLanes.
//
//go:noescape
func subScaleKernel(s float64, a, b, dst *float64, n int)
