package vecmath

// Float32 twins of the GEMM entry points in matrix.go, used by the fp32
// training path. The design is identical — register-tiled kernels with an
// accumulate flag, AVX2+FMA microkernels on amd64 behind the same CPUID
// gate, pure-Go 2×4 register tiles elsewhere and for remainders — but the
// assembly runs 8 float32 lanes per YMM register instead of 4 float64
// lanes, so the main tiles are 4×16/1×16 (two vectors per row) with a
// 4×8/1×8 column block for the 8..15-column remainder. That second block
// matters: the substrate's dense layers are narrow (8–48 columns), and
// without it they would fall to the scalar edge and run slower than the
// f64 path they are supposed to beat.

// Gemm32 computes C = A·B (or C += A·B when accumulate is true) where A
// is m×k, B is k×n, and C is m×n. C must not alias A or B.
func Gemm32(c, a, b []float32, m, k, n int, accumulate bool) {
	checkDims("Gemm32 A", len(a), m*k)
	checkDims("Gemm32 B", len(b), k*n)
	checkDims("Gemm32 C", len(c), m*n)
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !accumulate {
			Zero32(c)
		}
		return
	}
	if useAVX && n >= 8 {
		gemm32AVX(c, a, b, m, k, n, accumulate)
		return
	}
	gemm32Generic(c, a, b, m, k, n, accumulate)
}

// gemm32AVX tiles C into 4×16 (and 1×16) blocks handled by the FMA
// microkernels, with one 4×8/1×8 block for an 8-wide column remainder;
// the final sub-8 columns fall back to scalar dots. The kernels
// accumulate unconditionally, so C is cleared first unless the caller
// asked for accumulation.
func gemm32AVX(c, a, b []float32, m, k, n int, accumulate bool) {
	if !accumulate {
		Zero32(c)
	}
	mMain := m &^ 3
	n16 := n &^ 15
	n8 := n &^ 7
	for i := 0; i < mMain; i += 4 {
		for j := 0; j < n16; j += 16 {
			gemm32Kernel4x16(&a[i*k], &a[(i+1)*k], &a[(i+2)*k], &a[(i+3)*k], &b[j], n, &c[i*n+j], n, k)
		}
		if n8 > n16 {
			gemm32Kernel4x8(&a[i*k], &a[(i+1)*k], &a[(i+2)*k], &a[(i+3)*k], &b[n16], n, &c[i*n+n16], n, k)
		}
	}
	for i := mMain; i < m; i++ {
		for j := 0; j < n16; j += 16 {
			gemm32Kernel1x16(&a[i*k], &b[j], n, &c[i*n+j], k)
		}
		if n8 > n16 {
			gemm32Kernel1x8(&a[i*k], &b[n16], n, &c[i*n+n16], k)
		}
	}
	if n8 == n {
		return
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for j := n8; j < n; j++ {
			var s float32
			idx := j
			for _, ap := range arow {
				s += ap * b[idx]
				idx += n
			}
			crow[j] += s
		}
	}
}

// gemm32Generic mirrors gemmGeneric: 2×4 register tiles with the
// reduction dimension blocked by gemmKC.
func gemm32Generic(c, a, b []float32, m, k, n int, accumulate bool) {
	for p0 := 0; p0 < k; p0 += gemmKC {
		pEnd := min(p0+gemmKC, k)
		add := accumulate || p0 > 0
		i := 0
		for ; i+gemmMR <= m; i += gemmMR {
			a0 := a[i*k+p0 : i*k+pEnd]
			a1 := a[(i+1)*k+p0 : (i+1)*k+pEnd]
			a1 = a1[:len(a0)]
			c0 := c[i*n : (i+1)*n]
			c1 := c[(i+1)*n : (i+2)*n]
			j := 0
			for ; j+gemmNR <= n; j += gemmNR {
				var s00, s01, s02, s03 float32
				var s10, s11, s12, s13 float32
				idx := p0*n + j
				for p, a0p := range a0 {
					a1p := a1[p]
					brow := b[idx : idx+4]
					b0, b1, b2, b3 := brow[0], brow[1], brow[2], brow[3]
					idx += n
					s00 += a0p * b0
					s01 += a0p * b1
					s02 += a0p * b2
					s03 += a0p * b3
					s10 += a1p * b0
					s11 += a1p * b1
					s12 += a1p * b2
					s13 += a1p * b3
				}
				if add {
					c0[j] += s00
					c0[j+1] += s01
					c0[j+2] += s02
					c0[j+3] += s03
					c1[j] += s10
					c1[j+1] += s11
					c1[j+2] += s12
					c1[j+3] += s13
				} else {
					c0[j] = s00
					c0[j+1] = s01
					c0[j+2] = s02
					c0[j+3] = s03
					c1[j] = s10
					c1[j+1] = s11
					c1[j+2] = s12
					c1[j+3] = s13
				}
			}
			for ; j < n; j++ {
				var s0, s1 float32
				idx := p0*n + j
				for p, a0p := range a0 {
					bv := b[idx]
					idx += n
					s0 += a0p * bv
					s1 += a1[p] * bv
				}
				if add {
					c0[j] += s0
					c1[j] += s1
				} else {
					c0[j] = s0
					c1[j] = s1
				}
			}
		}
		if i < m {
			arow := a[i*k+p0 : i*k+pEnd]
			crow := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				var s float32
				idx := p0*n + j
				for _, ap := range arow {
					s += ap * b[idx]
					idx += n
				}
				if add {
					crow[j] += s
				} else {
					crow[j] = s
				}
			}
		}
	}
}

// GemmATB32 computes C = Aᵀ·B (or C += Aᵀ·B when accumulate is true)
// where A is m×k (so Aᵀ is k×m), B is m×n, and C is k×n. C must not
// alias A or B.
func GemmATB32(c, a, b []float32, m, k, n int, accumulate bool) {
	checkDims("GemmATB32 A", len(a), m*k)
	checkDims("GemmATB32 B", len(b), m*n)
	checkDims("GemmATB32 C", len(c), k*n)
	if k == 0 || n == 0 {
		return
	}
	if m == 0 {
		if !accumulate {
			Zero32(c)
		}
		return
	}
	if useAVX && n >= 8 {
		gemmATB32AVX(c, a, b, m, k, n, accumulate)
		return
	}
	if m >= gemmATBPanelMin {
		gemmATB32Panels(c, a, b, m, k, n, accumulate)
		return
	}
	p := 0
	for ; p+gemmMR <= k; p += gemmMR {
		c0 := c[p*n : (p+1)*n]
		c1 := c[(p+1)*n : (p+2)*n]
		for j := 0; j < n; j++ {
			var s0, s1 float32
			ai := p
			bi := j
			for i := 0; i < m; i++ {
				bv := b[bi]
				bi += n
				s0 += a[ai] * bv
				s1 += a[ai+1] * bv
				ai += k
			}
			if accumulate {
				c0[j] += s0
				c1[j] += s1
			} else {
				c0[j] = s0
				c1[j] = s1
			}
		}
	}
	if p < k {
		crow := c[p*n : (p+1)*n]
		for j := 0; j < n; j++ {
			var s float32
			ai := p
			bi := j
			for i := 0; i < m; i++ {
				s += a[ai] * b[bi]
				ai += k
				bi += n
			}
			if accumulate {
				crow[j] += s
			} else {
				crow[j] = s
			}
		}
	}
}

// gemmATB32AVX tiles the k×n result into 4×16/1×16 blocks with an
// 8-wide column remainder, reducing over the m rows of A and B; the
// sub-8 column tail falls back to scalar dots.
func gemmATB32AVX(c, a, b []float32, m, k, n int, accumulate bool) {
	if !accumulate {
		Zero32(c)
	}
	kMain := k &^ 3
	n16 := n &^ 15
	n8 := n &^ 7
	for p := 0; p < kMain; p += 4 {
		for j := 0; j < n16; j += 16 {
			atb32Kernel4x16(&a[p], k, &b[j], n, &c[p*n+j], n, m)
		}
		if n8 > n16 {
			atb32Kernel4x8(&a[p], k, &b[n16], n, &c[p*n+n16], n, m)
		}
	}
	for p := kMain; p < k; p++ {
		for j := 0; j < n16; j += 16 {
			atb32Kernel1x16(&a[p], k, &b[j], n, &c[p*n+j], m)
		}
		if n8 > n16 {
			atb32Kernel1x8(&a[p], k, &b[n16], n, &c[p*n+n16], m)
		}
	}
	if n8 == n {
		return
	}
	for p := 0; p < k; p++ {
		crow := c[p*n : (p+1)*n]
		for j := n8; j < n; j++ {
			var s float32
			ai := p
			bi := j
			for i := 0; i < m; i++ {
				s += a[ai] * b[bi]
				ai += k
				bi += n
			}
			crow[j] += s
		}
	}
}

// gemmATB32Panels mirrors gemmATBPanels: rank-1 updates of four C rows at
// a time for long reductions.
func gemmATB32Panels(c, a, b []float32, m, k, n int, accumulate bool) {
	if !accumulate {
		Zero32(c)
	}
	p := 0
	for ; p+4 <= k; p += 4 {
		c0 := c[(p+0)*n : (p+1)*n]
		c1 := c[(p+1)*n : (p+2)*n]
		c2 := c[(p+2)*n : (p+3)*n]
		c3 := c[(p+3)*n : (p+4)*n]
		for i := 0; i < m; i++ {
			a0, a1, a2, a3 := a[i*k+p], a[i*k+p+1], a[i*k+p+2], a[i*k+p+3]
			brow := b[i*n : i*n+n]
			for j, bv := range brow {
				c0[j] += a0 * bv
				c1[j] += a1 * bv
				c2[j] += a2 * bv
				c3[j] += a3 * bv
			}
		}
	}
	for ; p < k; p++ {
		crow := c[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			ap := a[i*k+p]
			brow := b[i*n : i*n+n]
			for j, bv := range brow {
				crow[j] += ap * bv
			}
		}
	}
}

// GemmABT32 computes C = A·Bᵀ (or C += A·Bᵀ when accumulate is true)
// where A is m×k, B is n×k (so Bᵀ is k×n), and C is m×n. C must not
// alias A or B.
func GemmABT32(c, a, b []float32, m, k, n int, accumulate bool) {
	checkDims("GemmABT32 A", len(a), m*k)
	checkDims("GemmABT32 B", len(b), n*k)
	checkDims("GemmABT32 C", len(c), m*n)
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !accumulate {
			Zero32(c)
		}
		return
	}
	if useAVX && k >= 8 {
		gemmABT32AVX(c, a, b, m, k, n, accumulate)
		return
	}
	i := 0
	for ; i+gemmMR <= m; i += gemmMR {
		a0 := a[i*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		a1 = a1[:len(a0)]
		j := 0
		for ; j+gemmNR <= n; j += gemmNR {
			b0 := b[(j+0)*k : (j+1)*k][:len(a0)]
			b1 := b[(j+1)*k : (j+2)*k][:len(a0)]
			b2 := b[(j+2)*k : (j+3)*k][:len(a0)]
			b3 := b[(j+3)*k : (j+4)*k][:len(a0)]
			var s00, s01, s02, s03 float32
			var s10, s11, s12, s13 float32
			for p, a0p := range a0 {
				a1p := a1[p]
				b0p, b1p, b2p, b3p := b0[p], b1[p], b2[p], b3[p]
				s00 += a0p * b0p
				s01 += a0p * b1p
				s02 += a0p * b2p
				s03 += a0p * b3p
				s10 += a1p * b0p
				s11 += a1p * b1p
				s12 += a1p * b2p
				s13 += a1p * b3p
			}
			if accumulate {
				c[i*n+j] += s00
				c[i*n+j+1] += s01
				c[i*n+j+2] += s02
				c[i*n+j+3] += s03
				c[(i+1)*n+j] += s10
				c[(i+1)*n+j+1] += s11
				c[(i+1)*n+j+2] += s12
				c[(i+1)*n+j+3] += s13
			} else {
				c[i*n+j] = s00
				c[i*n+j+1] = s01
				c[i*n+j+2] = s02
				c[i*n+j+3] = s03
				c[(i+1)*n+j] = s10
				c[(i+1)*n+j+1] = s11
				c[(i+1)*n+j+2] = s12
				c[(i+1)*n+j+3] = s13
			}
		}
		for ; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s0, s1 float32
			for p, bp := range brow {
				s0 += a0[p] * bp
				s1 += a1[p] * bp
			}
			if accumulate {
				c[i*n+j] += s0
				c[(i+1)*n+j] += s1
			} else {
				c[i*n+j] = s0
				c[(i+1)*n+j] = s1
			}
		}
	}
	if i < m {
		arow := a[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s float32
			for p, ap := range arow {
				s += ap * brow[p]
			}
			if accumulate {
				c[i*n+j] += s
			} else {
				c[i*n+j] = s
			}
		}
	}
}

// gemmABT32AVX computes 2×4 tiles of dot products with the FMA kernel
// over the largest multiple-of-8 prefix of the reduction; the k remainder
// and the row/column edges are finished with scalar dots.
func gemmABT32AVX(c, a, b []float32, m, k, n int, accumulate bool) {
	k8 := k &^ 7
	mMain := m &^ 1
	nMain := n &^ 3
	var out [8]float32
	for i := 0; i < mMain; i += 2 {
		a0 := a[i*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		a1 = a1[:len(a0)]
		for j := 0; j < nMain; j += 4 {
			b0 := b[(j+0)*k : (j+1)*k][:len(a0)]
			b1 := b[(j+1)*k : (j+2)*k][:len(a0)]
			b2 := b[(j+2)*k : (j+3)*k][:len(a0)]
			b3 := b[(j+3)*k : (j+4)*k][:len(a0)]
			abt32Kernel2x4(&a0[0], &a1[0], &b0[0], &b1[0], &b2[0], &b3[0], k8, &out)
			for p := k8; p < k; p++ {
				a0p, a1p := a0[p], a1[p]
				out[0] += a0p * b0[p]
				out[1] += a0p * b1[p]
				out[2] += a0p * b2[p]
				out[3] += a0p * b3[p]
				out[4] += a1p * b0[p]
				out[5] += a1p * b1[p]
				out[6] += a1p * b2[p]
				out[7] += a1p * b3[p]
			}
			if accumulate {
				c[i*n+j] += out[0]
				c[i*n+j+1] += out[1]
				c[i*n+j+2] += out[2]
				c[i*n+j+3] += out[3]
				c[(i+1)*n+j] += out[4]
				c[(i+1)*n+j+1] += out[5]
				c[(i+1)*n+j+2] += out[6]
				c[(i+1)*n+j+3] += out[7]
			} else {
				c[i*n+j] = out[0]
				c[i*n+j+1] = out[1]
				c[i*n+j+2] = out[2]
				c[i*n+j+3] = out[3]
				c[(i+1)*n+j] = out[4]
				c[(i+1)*n+j+1] = out[5]
				c[(i+1)*n+j+2] = out[6]
				c[(i+1)*n+j+3] = out[7]
			}
		}
		for j := nMain; j < n; j++ {
			brow := b[j*k : (j+1)*k][:len(a0)]
			var s0, s1 float32
			for p, bp := range brow {
				s0 += a0[p] * bp
				s1 += a1[p] * bp
			}
			if accumulate {
				c[i*n+j] += s0
				c[(i+1)*n+j] += s1
			} else {
				c[i*n+j] = s0
				c[(i+1)*n+j] = s1
			}
		}
	}
	if mMain < m {
		arow := a[mMain*k : (mMain+1)*k]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k][:len(arow)]
			var s float32
			for p, bp := range brow {
				s += arow[p] * bp
			}
			if accumulate {
				c[mMain*n+j] += s
			} else {
				c[mMain*n+j] = s
			}
		}
	}
}
