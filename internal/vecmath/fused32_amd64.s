//go:build amd64 && !noasm

#include "textflag.h"

// Float32 fused level-1 AVX2+FMA kernels (see fused32.go). Ports of the
// float64 kernels in fused_amd64.s at twice the lane width: each
// iteration streams sixteen float32s (two YMM vectors). The Go wrappers
// handle the sub-16 tails, so n is always a positive multiple of 16.

// func axpypy32Kernel(a float32, x *float32, b float32, y, z *float32, n int)
// z[i] += a*x[i] + b*y[i]
TEXT ·axpypy32Kernel(SB), NOSPLIT, $0-48
	VBROADCASTSS a+0(FP), Y14
	VBROADCASTSS b+16(FP), Y15
	MOVQ         x+8(FP), R8
	MOVQ         y+24(FP), R9
	MOVQ         z+32(FP), DI
	MOVQ         n+40(FP), CX

axpypy32loop:
	VMOVUPS     (DI), Y0
	VMOVUPS     32(DI), Y1
	VMOVUPS     (R8), Y2
	VMOVUPS     32(R8), Y3
	VMOVUPS     (R9), Y4
	VMOVUPS     32(R9), Y5
	VFMADD231PS Y2, Y14, Y0
	VFMADD231PS Y3, Y14, Y1
	VFMADD231PS Y4, Y15, Y0
	VFMADD231PS Y5, Y15, Y1
	VMOVUPS     Y0, (DI)
	VMOVUPS     Y1, 32(DI)
	ADDQ        $64, R8
	ADDQ        $64, R9
	ADDQ        $64, DI
	SUBQ        $16, CX
	JNZ         axpypy32loop

	VZEROUPPER
	RET

// func subScale32Kernel(s float32, a, b, dst *float32, n int)
// dst[i] = s*(a[i]-b[i])
TEXT ·subScale32Kernel(SB), NOSPLIT, $0-40
	VBROADCASTSS s+0(FP), Y15
	MOVQ         a+8(FP), R8
	MOVQ         b+16(FP), R9
	MOVQ         dst+24(FP), DI
	MOVQ         n+32(FP), CX

subscale32loop:
	VMOVUPS (R8), Y0
	VMOVUPS 32(R8), Y1
	VMOVUPS (R9), Y2
	VMOVUPS 32(R9), Y3
	VSUBPS  Y2, Y0, Y0
	VSUBPS  Y3, Y1, Y1
	VMULPS  Y15, Y0, Y0
	VMULPS  Y15, Y1, Y1
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	ADDQ    $64, R8
	ADDQ    $64, R9
	ADDQ    $64, DI
	SUBQ    $16, CX
	JNZ     subscale32loop

	VZEROUPPER
	RET

// func axpy32Kernel(alpha float32, x, y *float32, n int)
// y[i] += alpha * x[i]
TEXT ·axpy32Kernel(SB), NOSPLIT, $0-32
	VBROADCASTSS alpha+0(FP), Y15
	MOVQ         x+8(FP), R8
	MOVQ         y+16(FP), DI
	MOVQ         n+24(FP), CX

axpy32loop:
	VMOVUPS     (DI), Y0
	VMOVUPS     32(DI), Y1
	VMOVUPS     (R8), Y2
	VMOVUPS     32(R8), Y3
	VFMADD231PS Y2, Y15, Y0
	VFMADD231PS Y3, Y15, Y1
	VMOVUPS     Y0, (DI)
	VMOVUPS     Y1, 32(DI)
	ADDQ        $64, R8
	ADDQ        $64, DI
	SUBQ        $16, CX
	JNZ         axpy32loop

	VZEROUPPER
	RET

// func add32Kernel(a, b, dst *float32, n int)
// dst[i] = a[i] + b[i]; dst may exactly alias a or b (both loads of a
// block precede its store, so in-place updates see the old values).
TEXT ·add32Kernel(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), R8
	MOVQ b+8(FP), R9
	MOVQ dst+16(FP), DI
	MOVQ n+24(FP), CX

add32loop:
	VMOVUPS (R8), Y0
	VMOVUPS 32(R8), Y1
	VMOVUPS (R9), Y2
	VMOVUPS 32(R9), Y3
	VADDPS  Y2, Y0, Y0
	VADDPS  Y3, Y1, Y1
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	ADDQ    $64, R8
	ADDQ    $64, R9
	ADDQ    $64, DI
	SUBQ    $16, CX
	JNZ     add32loop

	VZEROUPPER
	RET

// func dot32Kernel(a, b *float32, n int) float32
// Returns Σ a[i]*b[i] with two 8-lane FMA accumulator chains; the lanes
// are reduced pairwise at the end, so the summation order differs from
// the scalar fallback (documented in vecmath32.go).
TEXT ·dot32Kernel(SB), NOSPLIT, $0-28
	MOVQ   a+0(FP), R8
	MOVQ   b+8(FP), R9
	MOVQ   n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

dot32loop:
	VMOVUPS     (R8), Y2
	VMOVUPS     32(R8), Y3
	VMOVUPS     (R9), Y4
	VMOVUPS     32(R9), Y5
	VFMADD231PS Y4, Y2, Y0
	VFMADD231PS Y5, Y3, Y1
	ADDQ        $64, R8
	ADDQ        $64, R9
	SUBQ        $16, CX
	JNZ         dot32loop

	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VZEROUPPER
	MOVSS        X0, ret+24(FP)
	RET
