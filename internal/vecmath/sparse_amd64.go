//go:build amd64 && !noasm

package vecmath

// scatterAXPYKernel accumulates y[idx[j]] += alpha*val[j] over the first
// n entries, processing them in order (duplicate indices accumulate
// sequentially); n must be a positive multiple of sparseLanes. The
// products are formed with AVX2 vector multiplies; the scatter itself is
// scalar (AVX2 has no scatter instruction).
//
//go:noescape
func scatterAXPYKernel(alpha float64, idx *int32, val, y *float64, n int)

// gatherDotKernel returns Σ val[j]*y[idx[j]] over the first n entries
// with AVX2+FMA (four lanes of gathered y values per step); n must be a
// positive multiple of sparseLanes.
//
//go:noescape
func gatherDotKernel(idx *int32, val, y *float64, n int) float64
