//go:build !amd64 || noasm

package vecmath

func axpypy32Kernel(a float32, x *float32, b float32, y, z *float32, n int) {
	panic("vecmath: assembly kernel without asm support")
}

func subScale32Kernel(s float32, a, b, dst *float32, n int) {
	panic("vecmath: assembly kernel without asm support")
}

func axpy32Kernel(alpha float32, x, y *float32, n int) {
	panic("vecmath: assembly kernel without asm support")
}

func add32Kernel(a, b, dst *float32, n int) {
	panic("vecmath: assembly kernel without asm support")
}

func dot32Kernel(a, b *float32, n int) float32 {
	panic("vecmath: assembly kernel without asm support")
}
