package vecmath

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestZeroAndFill(t *testing.T) {
	x := []float64{1, 2, 3}
	Zero(x)
	for i, v := range x {
		if v != 0 {
			t.Fatalf("Zero: x[%d] = %v, want 0", i, v)
		}
	}
	Fill(x, 2.5)
	for i, v := range x {
		if v != 2.5 {
			t.Fatalf("Fill: x[%d] = %v, want 2.5", i, v)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	x := []float64{1, 2, 3}
	y := Clone(x)
	y[0] = 99
	if x[0] != 1 {
		t.Fatal("Clone must not share backing array")
	}
}

func TestAddSub(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	dst := make([]float64, 3)
	Add(dst, a, b)
	want := []float64{5, 7, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Add: dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	Sub(dst, b, a)
	want = []float64{3, 3, 3}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Sub: dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestAddAliasing(t *testing.T) {
	a := []float64{1, 2, 3}
	Add(a, a, a) // a = a + a
	want := []float64{2, 4, 6}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("aliased Add: a[%d] = %v, want %v", i, a[i], want[i])
		}
	}
}

func TestAXPY(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	AXPY(2, x, y)
	want := []float64{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("AXPY: y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestScale(t *testing.T) {
	x := []float64{1, -2, 3}
	Scale(-2, x)
	want := []float64{-2, 4, -6}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("Scale: x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestScaleTo(t *testing.T) {
	x := []float64{1, 2}
	dst := make([]float64, 2)
	ScaleTo(dst, 3, x)
	if dst[0] != 3 || dst[1] != 6 {
		t.Fatalf("ScaleTo: got %v", dst)
	}
}

func TestDotNorm(t *testing.T) {
	a := []float64{3, 4}
	if got := Dot(a, a); got != 25 {
		t.Fatalf("Dot = %v, want 25", got)
	}
	if got := Norm2(a); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm1(a); got != 7 {
		t.Fatalf("Norm1 = %v, want 7", got)
	}
}

func TestMaxAbsSumMean(t *testing.T) {
	x := []float64{-3, 1, 2}
	if got := MaxAbs(x); got != 3 {
		t.Fatalf("MaxAbs = %v, want 3", got)
	}
	if got := Sum(x); got != 0 {
		t.Fatalf("Sum = %v, want 0", got)
	}
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Fatalf("Mean = %v, want 3", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestCosineSimilarity(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{name: "identical", a: []float64{1, 2}, b: []float64{1, 2}, want: 1},
		{name: "opposite", a: []float64{1, 0}, b: []float64{-1, 0}, want: -1},
		{name: "orthogonal", a: []float64{1, 0}, b: []float64{0, 1}, want: 0},
		{name: "zero vector", a: []float64{0, 0}, b: []float64{1, 1}, want: 0},
		{name: "both zero", a: []float64{0, 0}, b: []float64{0, 0}, want: 0},
		{name: "scaled copy", a: []float64{1, 2, 3}, b: []float64{2, 4, 6}, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := CosineSimilarity(tt.a, tt.b)
			if !almostEqual(got, tt.want, 1e-12) {
				t.Fatalf("CosineSimilarity = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCosineSimilarityBounded(t *testing.T) {
	f := func(a, b []float64) bool {
		n := min(len(a), len(b))
		c := CosineSimilarity(a[:n], b[:n])
		return c >= -1-1e-9 && c <= 1+1e-9 && !math.IsNaN(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedSum(t *testing.T) {
	vecs := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	w := []float64{2, 3, 0}
	dst := make([]float64, 2)
	WeightedSum(dst, w, vecs)
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("WeightedSum = %v, want [2 3]", dst)
	}
}

func TestL2DistanceSquared(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{4, 6}
	if got := L2DistanceSquared(a, b); got != 25 {
		t.Fatalf("L2DistanceSquared = %v, want 25", got)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		v, lo, hi, want float64
	}{
		{5, 0, 1, 1},
		{-5, 0, 1, 0},
		{0.5, 0, 1, 0.5},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Fatalf("Clamp(%v,%v,%v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2, 3}) {
		t.Fatal("finite vector reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("Inf not detected")
	}
	if !AllFinite(nil) {
		t.Fatal("empty vector must be finite")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// Property: Dot is symmetric and bilinear in its first argument.
func TestDotProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(20)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			c[i] = rng.NormFloat64()
		}
		if !almostEqual(Dot(a, b), Dot(b, a), 1e-12) {
			t.Fatal("Dot not symmetric")
		}
		sum := make([]float64, n)
		Add(sum, a, c)
		if !almostEqual(Dot(sum, b), Dot(a, b)+Dot(c, b), 1e-9) {
			t.Fatal("Dot not additive")
		}
	}
}

// Property: triangle inequality for Norm2.
func TestNormTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(30)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		sum := make([]float64, n)
		Add(sum, a, b)
		if Norm2(sum) > Norm2(a)+Norm2(b)+1e-9 {
			t.Fatal("triangle inequality violated")
		}
	}
}
