//go:build amd64 && !noasm

#include "textflag.h"

// Sparse AVX2 kernels for the compressed-update aggregation path (see
// sparse.go). Both are leaf functions that consume four (int32 index,
// float64 value) entries per iteration; the Go wrappers handle the sub-4
// tails, so n is always a positive multiple of 4 here.

// func scatterAXPYKernel(alpha float64, idx *int32, val, y *float64, n int)
// y[idx[j]] += alpha*val[j], entries processed strictly in order so
// duplicate indices accumulate sequentially (scalar semantics).
TEXT ·scatterAXPYKernel(SB), NOSPLIT, $0-40
	VBROADCASTSD alpha+0(FP), Y15
	MOVQ         idx+8(FP), R8
	MOVQ         val+16(FP), R9
	MOVQ         y+24(FP), DI
	MOVQ         n+32(FP), CX

scatterloop:
	VMOVUPD (R9), Y0
	VMULPD  Y15, Y0, Y0
	MOVLQSX 0(R8), R10
	MOVLQSX 4(R8), R11
	MOVLQSX 8(R8), R12
	MOVLQSX 12(R8), R13

	VEXTRACTF128 $1, Y0, X1

	VMOVSD (DI)(R10*8), X2
	VADDSD X0, X2, X2
	VMOVSD X2, (DI)(R10*8)

	VPERMILPD $1, X0, X3
	VMOVSD    (DI)(R11*8), X4
	VADDSD    X3, X4, X4
	VMOVSD    X4, (DI)(R11*8)

	VMOVSD (DI)(R12*8), X5
	VADDSD X1, X5, X5
	VMOVSD X5, (DI)(R12*8)

	VPERMILPD $1, X1, X6
	VMOVSD    (DI)(R13*8), X7
	VADDSD    X6, X7, X7
	VMOVSD    X7, (DI)(R13*8)

	ADDQ $16, R8
	ADDQ $32, R9
	SUBQ $4, CX
	JNZ  scatterloop

	VZEROUPPER
	RET

// func gatherDotKernel(idx *int32, val, y *float64, n int) float64
// Returns Σ val[j]*y[idx[j]] with four-lane FMA accumulation; the lanes
// are reduced pairwise at the end, so the summation order differs from
// the scalar fallback (documented in sparse.go).
TEXT ·gatherDotKernel(SB), NOSPLIT, $0-40
	MOVQ   idx+0(FP), R8
	MOVQ   val+8(FP), R9
	MOVQ   y+16(FP), DI
	MOVQ   n+24(FP), CX
	VXORPD Y0, Y0, Y0

gatherloop:
	MOVLQSX 0(R8), R10
	MOVLQSX 4(R8), R11
	MOVLQSX 8(R8), R12
	MOVLQSX 12(R8), R13

	VMOVSD      (DI)(R10*8), X1
	VMOVHPD     (DI)(R11*8), X1, X1
	VMOVSD      (DI)(R12*8), X2
	VMOVHPD     (DI)(R13*8), X2, X2
	VINSERTF128 $1, X2, Y1, Y1
	VMOVUPD     (R9), Y2
	VFMADD231PD Y1, Y2, Y0

	ADDQ $16, R8
	ADDQ $32, R9
	SUBQ $4, CX
	JNZ  gatherloop

	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VPERMILPD    $1, X0, X1
	VADDSD       X1, X0, X0
	VZEROUPPER
	MOVSD        X0, ret+32(FP)
	RET
