//go:build amd64 && !noasm

#include "textflag.h"

// AVX2+FMA microkernels for the GEMM entry points in matrix.go. All
// kernels are leaf functions that keep their accumulator tiles in YMM
// registers and touch C exactly once, so the inner loops are pure
// load+FMA streams. Remainder rows/columns and short reductions are
// handled by the pure-Go fallback paths, which keeps the assembly small.

// func cpuSupportsAVX2FMA() bool
TEXT ·cpuSupportsAVX2FMA(SB), NOSPLIT, $0-1
	// Highest function parameter must reach leaf 7.
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JLT  unsupported

	// Leaf 1 ECX: FMA (bit 12), OSXSAVE (bit 27), AVX (bit 28).
	MOVL $1, AX
	CPUID
	MOVL CX, R8
	ANDL $402657280, R8  // 1<<12 | 1<<27 | 1<<28
	CMPL R8, $402657280
	JNE  unsupported

	// XCR0 bits 1 and 2: XMM and YMM state enabled by the OS.
	MOVL $0, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  unsupported

	// Leaf 7 subleaf 0 EBX: AVX2 (bit 5).
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	ANDL $32, BX
	JZ   unsupported

	MOVB $1, ret+0(FP)
	RET

unsupported:
	MOVB $0, ret+0(FP)
	RET

// func gemmKernel4x8(a0, a1, a2, a3, b *float64, ldb int, c *float64, ldc, k int)
TEXT ·gemmKernel4x8(SB), NOSPLIT, $0-72
	MOVQ a0+0(FP), R8
	MOVQ a1+8(FP), R9
	MOVQ a2+16(FP), R10
	MOVQ a3+24(FP), R11
	MOVQ b+32(FP), SI
	MOVQ ldb+40(FP), R12
	SHLQ $3, R12
	MOVQ c+48(FP), DI
	MOVQ ldc+56(FP), R13
	SHLQ $3, R13
	MOVQ k+64(FP), CX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

gemm4x8loop:
	VBROADCASTSD (R8), Y10
	VBROADCASTSD (R9), Y11
	VBROADCASTSD (R10), Y12
	VBROADCASTSD (R11), Y13
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	ADDQ         $8, R8
	ADDQ         $8, R9
	ADDQ         $8, R10
	ADDQ         $8, R11
	ADDQ         R12, SI
	DECQ         CX
	JNZ          gemm4x8loop

	VADDPD  (DI), Y0, Y0
	VMOVUPD Y0, (DI)
	VADDPD  32(DI), Y1, Y1
	VMOVUPD Y1, 32(DI)
	ADDQ    R13, DI
	VADDPD  (DI), Y2, Y2
	VMOVUPD Y2, (DI)
	VADDPD  32(DI), Y3, Y3
	VMOVUPD Y3, 32(DI)
	ADDQ    R13, DI
	VADDPD  (DI), Y4, Y4
	VMOVUPD Y4, (DI)
	VADDPD  32(DI), Y5, Y5
	VMOVUPD Y5, 32(DI)
	ADDQ    R13, DI
	VADDPD  (DI), Y6, Y6
	VMOVUPD Y6, (DI)
	VADDPD  32(DI), Y7, Y7
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func gemmKernel1x8(a, b *float64, ldb int, c *float64, k int)
TEXT ·gemmKernel1x8(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), R8
	MOVQ b+8(FP), SI
	MOVQ ldb+16(FP), R12
	SHLQ $3, R12
	MOVQ c+24(FP), DI
	MOVQ k+32(FP), CX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1

gemm1x8loop:
	VBROADCASTSD (R8), Y10
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	ADDQ         $8, R8
	ADDQ         R12, SI
	DECQ         CX
	JNZ          gemm1x8loop

	VADDPD  (DI), Y0, Y0
	VMOVUPD Y0, (DI)
	VADDPD  32(DI), Y1, Y1
	VMOVUPD Y1, 32(DI)
	VZEROUPPER
	RET

// func atbKernel4x8(a *float64, lda int, b *float64, ldb int, c *float64, ldc, m int)
TEXT ·atbKernel4x8(SB), NOSPLIT, $0-56
	MOVQ a+0(FP), AX
	MOVQ lda+8(FP), BX
	SHLQ $3, BX
	MOVQ b+16(FP), SI
	MOVQ ldb+24(FP), R12
	SHLQ $3, R12
	MOVQ c+32(FP), DI
	MOVQ ldc+40(FP), R13
	SHLQ $3, R13
	MOVQ m+48(FP), CX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

atb4x8loop:
	VBROADCASTSD (AX), Y10
	VBROADCASTSD 8(AX), Y11
	VBROADCASTSD 16(AX), Y12
	VBROADCASTSD 24(AX), Y13
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	ADDQ         BX, AX
	ADDQ         R12, SI
	DECQ         CX
	JNZ          atb4x8loop

	VADDPD  (DI), Y0, Y0
	VMOVUPD Y0, (DI)
	VADDPD  32(DI), Y1, Y1
	VMOVUPD Y1, 32(DI)
	ADDQ    R13, DI
	VADDPD  (DI), Y2, Y2
	VMOVUPD Y2, (DI)
	VADDPD  32(DI), Y3, Y3
	VMOVUPD Y3, 32(DI)
	ADDQ    R13, DI
	VADDPD  (DI), Y4, Y4
	VMOVUPD Y4, (DI)
	VADDPD  32(DI), Y5, Y5
	VMOVUPD Y5, 32(DI)
	ADDQ    R13, DI
	VADDPD  (DI), Y6, Y6
	VMOVUPD Y6, (DI)
	VADDPD  32(DI), Y7, Y7
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func atbKernel1x8(a *float64, lda int, b *float64, ldb int, c *float64, m int)
TEXT ·atbKernel1x8(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), AX
	MOVQ lda+8(FP), BX
	SHLQ $3, BX
	MOVQ b+16(FP), SI
	MOVQ ldb+24(FP), R12
	SHLQ $3, R12
	MOVQ c+32(FP), DI
	MOVQ m+40(FP), CX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1

atb1x8loop:
	VBROADCASTSD (AX), Y10
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	ADDQ         BX, AX
	ADDQ         R12, SI
	DECQ         CX
	JNZ          atb1x8loop

	VADDPD  (DI), Y0, Y0
	VMOVUPD Y0, (DI)
	VADDPD  32(DI), Y1, Y1
	VMOVUPD Y1, 32(DI)
	VZEROUPPER
	RET

// func abtKernel2x4(a0, a1, b0, b1, b2, b3 *float64, k int, out *[8]float64)
TEXT ·abtKernel2x4(SB), NOSPLIT, $0-64
	MOVQ a0+0(FP), R8
	MOVQ a1+8(FP), R9
	MOVQ b0+16(FP), R10
	MOVQ b1+24(FP), R11
	MOVQ b2+32(FP), R12
	MOVQ b3+40(FP), R13
	MOVQ k+48(FP), CX
	MOVQ out+56(FP), DI

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

abt2x4loop:
	VMOVUPD     (R8), Y8
	VMOVUPD     (R9), Y9
	VMOVUPD     (R10), Y10
	VMOVUPD     (R11), Y11
	VMOVUPD     (R12), Y12
	VMOVUPD     (R13), Y13
	VFMADD231PD Y10, Y8, Y0
	VFMADD231PD Y11, Y8, Y1
	VFMADD231PD Y12, Y8, Y2
	VFMADD231PD Y13, Y8, Y3
	VFMADD231PD Y10, Y9, Y4
	VFMADD231PD Y11, Y9, Y5
	VFMADD231PD Y12, Y9, Y6
	VFMADD231PD Y13, Y9, Y7
	ADDQ        $32, R8
	ADDQ        $32, R9
	ADDQ        $32, R10
	ADDQ        $32, R11
	ADDQ        $32, R12
	ADDQ        $32, R13
	SUBQ        $4, CX
	JNZ         abt2x4loop

	// Horizontal reduction of each accumulator into out[0..7].
	VEXTRACTF128 $1, Y0, X8
	VADDPD       X8, X0, X0
	VHADDPD      X0, X0, X0
	VMOVSD       X0, (DI)
	VEXTRACTF128 $1, Y1, X8
	VADDPD       X8, X1, X1
	VHADDPD      X1, X1, X1
	VMOVSD       X1, 8(DI)
	VEXTRACTF128 $1, Y2, X8
	VADDPD       X8, X2, X2
	VHADDPD      X2, X2, X2
	VMOVSD       X2, 16(DI)
	VEXTRACTF128 $1, Y3, X8
	VADDPD       X8, X3, X3
	VHADDPD      X3, X3, X3
	VMOVSD       X3, 24(DI)
	VEXTRACTF128 $1, Y4, X8
	VADDPD       X8, X4, X4
	VHADDPD      X4, X4, X4
	VMOVSD       X4, 32(DI)
	VEXTRACTF128 $1, Y5, X8
	VADDPD       X8, X5, X5
	VHADDPD      X5, X5, X5
	VMOVSD       X5, 40(DI)
	VEXTRACTF128 $1, Y6, X8
	VADDPD       X8, X6, X6
	VHADDPD      X6, X6, X6
	VMOVSD       X6, 48(DI)
	VEXTRACTF128 $1, Y7, X8
	VADDPD       X8, X7, X7
	VHADDPD      X7, X7, X7
	VMOVSD       X7, 56(DI)
	VZEROUPPER
	RET
