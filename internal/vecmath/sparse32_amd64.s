//go:build amd64 && !noasm

#include "textflag.h"

// Float32 sparse AVX2 kernels (see sparse32.go). Each iteration consumes
// eight (int32 index, float32 value) entries. Unlike the float64 kernels,
// which shuffle individual lanes out of the YMM registers, these stage
// the eight-lane vector through a 32-byte stack buffer: with eight lanes
// per register the extract/permute chain would cost more than the
// round-trip through L1.

// func scatterAXPY32Kernel(alpha float32, idx *int32, val, y *float32, n int)
// y[idx[j]] += alpha*val[j], entries processed strictly in order so
// duplicate indices accumulate sequentially (scalar semantics).
TEXT ·scatterAXPY32Kernel(SB), NOSPLIT, $32-40
	VBROADCASTSS alpha+0(FP), Y15
	MOVQ         idx+8(FP), R8
	MOVQ         val+16(FP), R9
	MOVQ         y+24(FP), DI
	MOVQ         n+32(FP), CX

scatter32loop:
	VMOVUPS (R9), Y0
	VMULPS  Y15, Y0, Y0
	VMOVUPS Y0, prod-32(SP)

	MOVLQSX 0(R8), R10
	VMOVSS  prod-32(SP), X1
	VMOVSS  (DI)(R10*4), X2
	VADDSS  X1, X2, X2
	VMOVSS  X2, (DI)(R10*4)

	MOVLQSX 4(R8), R10
	VMOVSS  prod-28(SP), X1
	VMOVSS  (DI)(R10*4), X2
	VADDSS  X1, X2, X2
	VMOVSS  X2, (DI)(R10*4)

	MOVLQSX 8(R8), R10
	VMOVSS  prod-24(SP), X1
	VMOVSS  (DI)(R10*4), X2
	VADDSS  X1, X2, X2
	VMOVSS  X2, (DI)(R10*4)

	MOVLQSX 12(R8), R10
	VMOVSS  prod-20(SP), X1
	VMOVSS  (DI)(R10*4), X2
	VADDSS  X1, X2, X2
	VMOVSS  X2, (DI)(R10*4)

	MOVLQSX 16(R8), R10
	VMOVSS  prod-16(SP), X1
	VMOVSS  (DI)(R10*4), X2
	VADDSS  X1, X2, X2
	VMOVSS  X2, (DI)(R10*4)

	MOVLQSX 20(R8), R10
	VMOVSS  prod-12(SP), X1
	VMOVSS  (DI)(R10*4), X2
	VADDSS  X1, X2, X2
	VMOVSS  X2, (DI)(R10*4)

	MOVLQSX 24(R8), R10
	VMOVSS  prod-8(SP), X1
	VMOVSS  (DI)(R10*4), X2
	VADDSS  X1, X2, X2
	VMOVSS  X2, (DI)(R10*4)

	MOVLQSX 28(R8), R10
	VMOVSS  prod-4(SP), X1
	VMOVSS  (DI)(R10*4), X2
	VADDSS  X1, X2, X2
	VMOVSS  X2, (DI)(R10*4)

	ADDQ $32, R8
	ADDQ $32, R9
	SUBQ $8, CX
	JNZ  scatter32loop

	VZEROUPPER
	RET

// func gatherDot32Kernel(idx *int32, val, y *float32, n int) float32
// Returns Σ val[j]*y[idx[j]] with eight-lane FMA accumulation; the lanes
// are reduced pairwise at the end, so the summation order differs from
// the scalar fallback (documented in sparse32.go).
TEXT ·gatherDot32Kernel(SB), NOSPLIT, $32-36
	MOVQ   idx+0(FP), R8
	MOVQ   val+8(FP), R9
	MOVQ   y+16(FP), DI
	MOVQ   n+24(FP), CX
	VXORPS Y0, Y0, Y0

gather32loop:
	MOVLQSX 0(R8), R10
	MOVL    (DI)(R10*4), R11
	MOVL    R11, gath-32(SP)
	MOVLQSX 4(R8), R10
	MOVL    (DI)(R10*4), R11
	MOVL    R11, gath-28(SP)
	MOVLQSX 8(R8), R10
	MOVL    (DI)(R10*4), R11
	MOVL    R11, gath-24(SP)
	MOVLQSX 12(R8), R10
	MOVL    (DI)(R10*4), R11
	MOVL    R11, gath-20(SP)
	MOVLQSX 16(R8), R10
	MOVL    (DI)(R10*4), R11
	MOVL    R11, gath-16(SP)
	MOVLQSX 20(R8), R10
	MOVL    (DI)(R10*4), R11
	MOVL    R11, gath-12(SP)
	MOVLQSX 24(R8), R10
	MOVL    (DI)(R10*4), R11
	MOVL    R11, gath-8(SP)
	MOVLQSX 28(R8), R10
	MOVL    (DI)(R10*4), R11
	MOVL    R11, gath-4(SP)

	VMOVUPS     gath-32(SP), Y1
	VMOVUPS     (R9), Y2
	VFMADD231PS Y1, Y2, Y0

	ADDQ $32, R8
	ADDQ $32, R9
	SUBQ $8, CX
	JNZ  gather32loop

	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VZEROUPPER
	MOVSS        X0, ret+32(FP)
	RET
