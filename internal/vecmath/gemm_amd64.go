//go:build amd64 && !noasm

package vecmath

// useAVX gates the AVX2+FMA assembly microkernels in gemm_amd64.s. It is
// resolved once at init from CPUID, so the dispatch in Gemm/GemmATB/
// GemmABT is a predictable branch. The pure-Go register-tiled paths remain
// as the fallback for CPUs without AVX2/FMA (and for tile remainders).
var useAVX = cpuSupportsAVX2FMA()

// cpuSupportsAVX2FMA reports whether the CPU supports AVX2 and FMA3 and
// the OS has enabled YMM state (CPUID leaves 1 and 7 plus XGETBV).
func cpuSupportsAVX2FMA() bool

// gemmKernel4x8 accumulates a 4×8 tile of C += A·B: the four A-row
// pointers advance one element per step, b advances by ldb elements
// (one B row), and after k steps the tile is added into C (row stride
// ldc). All pointers must have k (a), 8+ (b, c) elements available.
//
//go:noescape
func gemmKernel4x8(a0, a1, a2, a3, b *float64, ldb int, c *float64, ldc, k int)

// gemmKernel1x8 is the single-row variant of gemmKernel4x8 for m%4 rows.
//
//go:noescape
func gemmKernel1x8(a, b *float64, ldb int, c *float64, k int)

// atbKernel4x8 accumulates a 4×8 tile of C += Aᵀ·B: a points at the four
// consecutive elements A[i][p..p+3] and advances by lda per step (one A
// row), b advances by ldb. After m steps the tile is added into C.
//
//go:noescape
func atbKernel4x8(a *float64, lda int, b *float64, ldb int, c *float64, ldc, m int)

// atbKernel1x8 is the single-row variant of atbKernel4x8 for k%4 rows.
//
//go:noescape
func atbKernel1x8(a *float64, lda int, b *float64, ldb int, c *float64, m int)

// abtKernel2x4 computes the eight dot products of two A rows with four B
// rows over k elements (k must be a positive multiple of 4), writing
// {a0·b0, a0·b1, a0·b2, a0·b3, a1·b0, a1·b1, a1·b2, a1·b3} into out.
//
//go:noescape
func abtKernel2x4(a0, a1, b0, b1, b2, b3 *float64, k int, out *[8]float64)
