//go:build amd64 && !noasm

package vecmath

// scatterAXPY32Kernel accumulates y[idx[j]] += alpha*val[j] over the
// first n entries, processing them in order (duplicate indices
// accumulate sequentially); n must be a positive multiple of
// sparseLanes32. The products are formed with one AVX2 vector multiply
// per eight entries and spilled to a stack buffer; the scatter itself is
// scalar (AVX2 has no scatter instruction).
//
//go:noescape
func scatterAXPY32Kernel(alpha float32, idx *int32, val, y *float32, n int)

// gatherDot32Kernel returns Σ val[j]*y[idx[j]] over the first n entries
// with AVX2+FMA (eight gathered y values per step, staged through a
// stack buffer); n must be a positive multiple of sparseLanes32.
//
//go:noescape
func gatherDot32Kernel(idx *int32, val, y *float32, n int) float32
