//go:build amd64 && !noasm

package vecmath

// Float32 GEMM microkernel declarations (bodies in gemm32_amd64.s),
// gated by the same useAVX CPUID check as the float64 kernels. The main
// tiles stream two 8-wide YMM vectors per C row (16 columns); the x8
// variants handle the 8..15-column remainder so the substrate's narrow
// dense layers stay on the vector path.

// gemm32Kernel4x16 accumulates a 4×16 tile of C += A·B: the four A-row
// pointers advance one element per step, b advances by ldb elements
// (one B row), and after k steps the tile is added into C (row stride
// ldc). All pointers must have k (a), 16+ (b, c) elements available.
//
//go:noescape
func gemm32Kernel4x16(a0, a1, a2, a3, b *float32, ldb int, c *float32, ldc, k int)

// gemm32Kernel1x16 is the single-row variant of gemm32Kernel4x16 for m%4
// rows.
//
//go:noescape
func gemm32Kernel1x16(a, b *float32, ldb int, c *float32, k int)

// gemm32Kernel4x8 is the one-vector (8-column) variant of
// gemm32Kernel4x16 for the 8..15-column remainder.
//
//go:noescape
func gemm32Kernel4x8(a0, a1, a2, a3, b *float32, ldb int, c *float32, ldc, k int)

// gemm32Kernel1x8 is the single-row, one-vector variant.
//
//go:noescape
func gemm32Kernel1x8(a, b *float32, ldb int, c *float32, k int)

// atb32Kernel4x16 accumulates a 4×16 tile of C += Aᵀ·B: a points at the
// four consecutive elements A[i][p..p+3] and advances by lda per step
// (one A row), b advances by ldb. After m steps the tile is added into C.
//
//go:noescape
func atb32Kernel4x16(a *float32, lda int, b *float32, ldb int, c *float32, ldc, m int)

// atb32Kernel1x16 is the single-row variant of atb32Kernel4x16 for k%4
// rows.
//
//go:noescape
func atb32Kernel1x16(a *float32, lda int, b *float32, ldb int, c *float32, m int)

// atb32Kernel4x8 is the one-vector (8-column) variant of atb32Kernel4x16.
//
//go:noescape
func atb32Kernel4x8(a *float32, lda int, b *float32, ldb int, c *float32, ldc, m int)

// atb32Kernel1x8 is the single-row, one-vector variant.
//
//go:noescape
func atb32Kernel1x8(a *float32, lda int, b *float32, ldb int, c *float32, m int)

// abt32Kernel2x4 computes the eight dot products of two A rows with four
// B rows over k elements (k must be a positive multiple of 8), writing
// {a0·b0, a0·b1, a0·b2, a0·b3, a1·b0, a1·b1, a1·b2, a1·b3} into out.
//
//go:noescape
func abt32Kernel2x4(a0, a1, b0, b1, b2, b3 *float32, k int, out *[8]float32)
