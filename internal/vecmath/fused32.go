package vecmath

// Float32 twins of the fused level-1 kernels in fused.go, used by the
// fp32 local-update path. Same contract: AVX2+FMA assembly on amd64
// behind the shared CPUID gate, pure-Go tails, and no bit-identical
// guarantee across machines (FMA roundings differ from the fallback's
// separate multiply/add).

// fusedLanes32 is the element count each f32 assembly loop iteration
// consumes (two 8-wide YMM vectors); tails shorter than this run in
// pure Go.
const fusedLanes32 = 16

// AXPYPY32 computes z[i] += a*x[i] + b*y[i] in one pass — the f32 form
// of the corrected SGD step (see AXPYPY).
func AXPYPY32(a float32, x []float32, b float32, y, z []float32) {
	checkLen("AXPYPY32", len(x), len(z))
	checkLen("AXPYPY32", len(y), len(z))
	n := len(z)
	i := 0
	if useAVX && n >= fusedLanes32 {
		head := n &^ (fusedLanes32 - 1)
		axpypy32Kernel(a, &x[0], b, &y[0], &z[0], head)
		i = head
	}
	for ; i < n; i++ {
		z[i] += a*x[i] + b*y[i]
	}
}

// SubScale32 computes dst[i] = s*(a[i]-b[i]) in one pass. dst may alias
// a or b.
func SubScale32(dst []float32, s float32, a, b []float32) {
	checkLen("SubScale32", len(a), len(b))
	checkLen("SubScale32", len(dst), len(a))
	n := len(dst)
	i := 0
	if useAVX && n >= fusedLanes32 {
		head := n &^ (fusedLanes32 - 1)
		subScale32Kernel(s, &a[0], &b[0], &dst[0], head)
		i = head
	}
	for ; i < n; i++ {
		dst[i] = s * (a[i] - b[i])
	}
}
