//go:build !amd64 || noasm

package vecmath

func sigmoid32Kernel(x, dst *float32, n int) {
	panic("vecmath: assembly kernel without asm support")
}

func tanh32Kernel(x, dst *float32, n int) {
	panic("vecmath: assembly kernel without asm support")
}
