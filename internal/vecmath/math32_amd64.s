//go:build amd64 && !noasm

#include "textflag.h"

// Float32 transcendental AVX2+FMA kernels (see math32.go). Eight lanes
// per iteration: the loops are compute-bound (~25 ops per vector), so
// the two-vector unrolling of the level-1 kernels buys nothing here.
// All constants live in RODATA as pre-broadcast 8-lane vectors and are
// consumed as memory operands, which keeps every YMM register free for
// the pipeline.
//
// EXPV is the shared core: e^v via range reduction v = q·ln2 + r
// (|r| ≤ ln2/2), a degree-6 polynomial for e^r, and 2^q reconstructed by
// integer-adding q<<23 to the bit pattern of 1.0f — the same algorithm,
// coefficients, and clamps as the scalar Exp32, so assembly and tail
// agree to ~1 ulp (FMA contraction only). One deviation: the clamps
// saturate the *input*, so lanes that would overflow produce ~3.4e38
// rather than +Inf — past the downstream 1/(1+e) and 2/(e+1) uses the
// difference is below float32 resolution. NaN lanes are restored by an
// unordered-compare blend in each caller.

// Constant layout, one 32-byte broadcast vector per line.
DATA expHi8<>+0(SB)/4, $0x42B00F34  // 88.02969, e^x overflow clamp
DATA expHi8<>+4(SB)/4, $0x42B00F34
DATA expHi8<>+8(SB)/4, $0x42B00F34
DATA expHi8<>+12(SB)/4, $0x42B00F34
DATA expHi8<>+16(SB)/4, $0x42B00F34
DATA expHi8<>+20(SB)/4, $0x42B00F34
DATA expHi8<>+24(SB)/4, $0x42B00F34
DATA expHi8<>+28(SB)/4, $0x42B00F34
GLOBL expHi8<>(SB), RODATA|NOPTR, $32

DATA expLo8<>+0(SB)/4, $0xC2AEAC50  // -87.33655, e^x underflow clamp
DATA expLo8<>+4(SB)/4, $0xC2AEAC50
DATA expLo8<>+8(SB)/4, $0xC2AEAC50
DATA expLo8<>+12(SB)/4, $0xC2AEAC50
DATA expLo8<>+16(SB)/4, $0xC2AEAC50
DATA expLo8<>+20(SB)/4, $0xC2AEAC50
DATA expLo8<>+24(SB)/4, $0xC2AEAC50
DATA expLo8<>+28(SB)/4, $0xC2AEAC50
GLOBL expLo8<>(SB), RODATA|NOPTR, $32

DATA log2e8<>+0(SB)/4, $0x3FB8AA3B  // log2(e)
DATA log2e8<>+4(SB)/4, $0x3FB8AA3B
DATA log2e8<>+8(SB)/4, $0x3FB8AA3B
DATA log2e8<>+12(SB)/4, $0x3FB8AA3B
DATA log2e8<>+16(SB)/4, $0x3FB8AA3B
DATA log2e8<>+20(SB)/4, $0x3FB8AA3B
DATA log2e8<>+24(SB)/4, $0x3FB8AA3B
DATA log2e8<>+28(SB)/4, $0x3FB8AA3B
GLOBL log2e8<>(SB), RODATA|NOPTR, $32

DATA half8<>+0(SB)/4, $0x3F000000  // 0.5
DATA half8<>+4(SB)/4, $0x3F000000
DATA half8<>+8(SB)/4, $0x3F000000
DATA half8<>+12(SB)/4, $0x3F000000
DATA half8<>+16(SB)/4, $0x3F000000
DATA half8<>+20(SB)/4, $0x3F000000
DATA half8<>+24(SB)/4, $0x3F000000
DATA half8<>+28(SB)/4, $0x3F000000
GLOBL half8<>(SB), RODATA|NOPTR, $32

DATA ln2hi8<>+0(SB)/4, $0x3F318000  // 0.693359375 (exact in 9 bits)
DATA ln2hi8<>+4(SB)/4, $0x3F318000
DATA ln2hi8<>+8(SB)/4, $0x3F318000
DATA ln2hi8<>+12(SB)/4, $0x3F318000
DATA ln2hi8<>+16(SB)/4, $0x3F318000
DATA ln2hi8<>+20(SB)/4, $0x3F318000
DATA ln2hi8<>+24(SB)/4, $0x3F318000
DATA ln2hi8<>+28(SB)/4, $0x3F318000
GLOBL ln2hi8<>(SB), RODATA|NOPTR, $32

DATA ln2lo8<>+0(SB)/4, $0xB95E8083  // ln2 - ln2hi
DATA ln2lo8<>+4(SB)/4, $0xB95E8083
DATA ln2lo8<>+8(SB)/4, $0xB95E8083
DATA ln2lo8<>+12(SB)/4, $0xB95E8083
DATA ln2lo8<>+16(SB)/4, $0xB95E8083
DATA ln2lo8<>+20(SB)/4, $0xB95E8083
DATA ln2lo8<>+24(SB)/4, $0xB95E8083
DATA ln2lo8<>+28(SB)/4, $0xB95E8083
GLOBL ln2lo8<>(SB), RODATA|NOPTR, $32

DATA expC58<>+0(SB)/4, $0x39506967  // 1.9875691500e-4
DATA expC58<>+4(SB)/4, $0x39506967
DATA expC58<>+8(SB)/4, $0x39506967
DATA expC58<>+12(SB)/4, $0x39506967
DATA expC58<>+16(SB)/4, $0x39506967
DATA expC58<>+20(SB)/4, $0x39506967
DATA expC58<>+24(SB)/4, $0x39506967
DATA expC58<>+28(SB)/4, $0x39506967
GLOBL expC58<>(SB), RODATA|NOPTR, $32

DATA expC48<>+0(SB)/4, $0x3AB743CE  // 1.3981999507e-3
DATA expC48<>+4(SB)/4, $0x3AB743CE
DATA expC48<>+8(SB)/4, $0x3AB743CE
DATA expC48<>+12(SB)/4, $0x3AB743CE
DATA expC48<>+16(SB)/4, $0x3AB743CE
DATA expC48<>+20(SB)/4, $0x3AB743CE
DATA expC48<>+24(SB)/4, $0x3AB743CE
DATA expC48<>+28(SB)/4, $0x3AB743CE
GLOBL expC48<>(SB), RODATA|NOPTR, $32

DATA expC38<>+0(SB)/4, $0x3C088908  // 8.3334519073e-3
DATA expC38<>+4(SB)/4, $0x3C088908
DATA expC38<>+8(SB)/4, $0x3C088908
DATA expC38<>+12(SB)/4, $0x3C088908
DATA expC38<>+16(SB)/4, $0x3C088908
DATA expC38<>+20(SB)/4, $0x3C088908
DATA expC38<>+24(SB)/4, $0x3C088908
DATA expC38<>+28(SB)/4, $0x3C088908
GLOBL expC38<>(SB), RODATA|NOPTR, $32

DATA expC28<>+0(SB)/4, $0x3D2AA9C1  // 4.1665795894e-2
DATA expC28<>+4(SB)/4, $0x3D2AA9C1
DATA expC28<>+8(SB)/4, $0x3D2AA9C1
DATA expC28<>+12(SB)/4, $0x3D2AA9C1
DATA expC28<>+16(SB)/4, $0x3D2AA9C1
DATA expC28<>+20(SB)/4, $0x3D2AA9C1
DATA expC28<>+24(SB)/4, $0x3D2AA9C1
DATA expC28<>+28(SB)/4, $0x3D2AA9C1
GLOBL expC28<>(SB), RODATA|NOPTR, $32

DATA expC18<>+0(SB)/4, $0x3E2AAAAA  // 1.6666665459e-1
DATA expC18<>+4(SB)/4, $0x3E2AAAAA
DATA expC18<>+8(SB)/4, $0x3E2AAAAA
DATA expC18<>+12(SB)/4, $0x3E2AAAAA
DATA expC18<>+16(SB)/4, $0x3E2AAAAA
DATA expC18<>+20(SB)/4, $0x3E2AAAAA
DATA expC18<>+24(SB)/4, $0x3E2AAAAA
DATA expC18<>+28(SB)/4, $0x3E2AAAAA
GLOBL expC18<>(SB), RODATA|NOPTR, $32

DATA one8<>+0(SB)/4, $0x3F800000  // 1.0; also 127<<23 for the 2^q bias
DATA one8<>+4(SB)/4, $0x3F800000
DATA one8<>+8(SB)/4, $0x3F800000
DATA one8<>+12(SB)/4, $0x3F800000
DATA one8<>+16(SB)/4, $0x3F800000
DATA one8<>+20(SB)/4, $0x3F800000
DATA one8<>+24(SB)/4, $0x3F800000
DATA one8<>+28(SB)/4, $0x3F800000
GLOBL one8<>(SB), RODATA|NOPTR, $32

DATA two8<>+0(SB)/4, $0x40000000  // 2.0
DATA two8<>+4(SB)/4, $0x40000000
DATA two8<>+8(SB)/4, $0x40000000
DATA two8<>+12(SB)/4, $0x40000000
DATA two8<>+16(SB)/4, $0x40000000
DATA two8<>+20(SB)/4, $0x40000000
DATA two8<>+24(SB)/4, $0x40000000
DATA two8<>+28(SB)/4, $0x40000000
GLOBL two8<>(SB), RODATA|NOPTR, $32

DATA thresh8<>+0(SB)/4, $0x3F200000  // 0.625, tanh poly/exp switch
DATA thresh8<>+4(SB)/4, $0x3F200000
DATA thresh8<>+8(SB)/4, $0x3F200000
DATA thresh8<>+12(SB)/4, $0x3F200000
DATA thresh8<>+16(SB)/4, $0x3F200000
DATA thresh8<>+20(SB)/4, $0x3F200000
DATA thresh8<>+24(SB)/4, $0x3F200000
DATA thresh8<>+28(SB)/4, $0x3F200000
GLOBL thresh8<>(SB), RODATA|NOPTR, $32

DATA tanhC48<>+0(SB)/4, $0xBBBAF0EA  // -5.70498872745e-3
DATA tanhC48<>+4(SB)/4, $0xBBBAF0EA
DATA tanhC48<>+8(SB)/4, $0xBBBAF0EA
DATA tanhC48<>+12(SB)/4, $0xBBBAF0EA
DATA tanhC48<>+16(SB)/4, $0xBBBAF0EA
DATA tanhC48<>+20(SB)/4, $0xBBBAF0EA
DATA tanhC48<>+24(SB)/4, $0xBBBAF0EA
DATA tanhC48<>+28(SB)/4, $0xBBBAF0EA
GLOBL tanhC48<>(SB), RODATA|NOPTR, $32

DATA tanhC38<>+0(SB)/4, $0x3CA9134E  // 2.06390887954e-2
DATA tanhC38<>+4(SB)/4, $0x3CA9134E
DATA tanhC38<>+8(SB)/4, $0x3CA9134E
DATA tanhC38<>+12(SB)/4, $0x3CA9134E
DATA tanhC38<>+16(SB)/4, $0x3CA9134E
DATA tanhC38<>+20(SB)/4, $0x3CA9134E
DATA tanhC38<>+24(SB)/4, $0x3CA9134E
DATA tanhC38<>+28(SB)/4, $0x3CA9134E
GLOBL tanhC38<>(SB), RODATA|NOPTR, $32

DATA tanhC28<>+0(SB)/4, $0xBD5C1E2D  // -5.37397155531e-2
DATA tanhC28<>+4(SB)/4, $0xBD5C1E2D
DATA tanhC28<>+8(SB)/4, $0xBD5C1E2D
DATA tanhC28<>+12(SB)/4, $0xBD5C1E2D
DATA tanhC28<>+16(SB)/4, $0xBD5C1E2D
DATA tanhC28<>+20(SB)/4, $0xBD5C1E2D
DATA tanhC28<>+24(SB)/4, $0xBD5C1E2D
DATA tanhC28<>+28(SB)/4, $0xBD5C1E2D
GLOBL tanhC28<>(SB), RODATA|NOPTR, $32

DATA tanhC18<>+0(SB)/4, $0x3E088393  // 1.33314422036e-1
DATA tanhC18<>+4(SB)/4, $0x3E088393
DATA tanhC18<>+8(SB)/4, $0x3E088393
DATA tanhC18<>+12(SB)/4, $0x3E088393
DATA tanhC18<>+16(SB)/4, $0x3E088393
DATA tanhC18<>+20(SB)/4, $0x3E088393
DATA tanhC18<>+24(SB)/4, $0x3E088393
DATA tanhC18<>+28(SB)/4, $0x3E088393
GLOBL tanhC18<>(SB), RODATA|NOPTR, $32

DATA tanhC08<>+0(SB)/4, $0xBEAAAA99  // -3.33332819422e-1
DATA tanhC08<>+4(SB)/4, $0xBEAAAA99
DATA tanhC08<>+8(SB)/4, $0xBEAAAA99
DATA tanhC08<>+12(SB)/4, $0xBEAAAA99
DATA tanhC08<>+16(SB)/4, $0xBEAAAA99
DATA tanhC08<>+20(SB)/4, $0xBEAAAA99
DATA tanhC08<>+24(SB)/4, $0xBEAAAA99
DATA tanhC08<>+28(SB)/4, $0xBEAAAA99
GLOBL tanhC08<>(SB), RODATA|NOPTR, $32

DATA absmask8<>+0(SB)/4, $0x7FFFFFFF
DATA absmask8<>+4(SB)/4, $0x7FFFFFFF
DATA absmask8<>+8(SB)/4, $0x7FFFFFFF
DATA absmask8<>+12(SB)/4, $0x7FFFFFFF
DATA absmask8<>+16(SB)/4, $0x7FFFFFFF
DATA absmask8<>+20(SB)/4, $0x7FFFFFFF
DATA absmask8<>+24(SB)/4, $0x7FFFFFFF
DATA absmask8<>+28(SB)/4, $0x7FFFFFFF
GLOBL absmask8<>(SB), RODATA|NOPTR, $32

DATA signmask8<>+0(SB)/4, $0x80000000
DATA signmask8<>+4(SB)/4, $0x80000000
DATA signmask8<>+8(SB)/4, $0x80000000
DATA signmask8<>+12(SB)/4, $0x80000000
DATA signmask8<>+16(SB)/4, $0x80000000
DATA signmask8<>+20(SB)/4, $0x80000000
DATA signmask8<>+24(SB)/4, $0x80000000
DATA signmask8<>+28(SB)/4, $0x80000000
GLOBL signmask8<>(SB), RODATA|NOPTR, $32

// EXPV(v, q, p): v ← e^v elementwise; q and p are scratch.
//
//	clamp v to [expLo, expHi]
//	q = floor(v·log2e + 0.5)
//	r = v − q·ln2hi − q·ln2lo          (v reused for r)
//	p = poly(r), e^r = p·r² + r + 1
//	v = e^r · 2^q                      (2^q = (q<<23) + bits(1.0f))
#define EXPV(v, q, p) \
	VMINPS       expHi8<>(SB), v, v   \
	VMAXPS       expLo8<>(SB), v, v   \
	VMOVUPS      half8<>(SB), q       \
	VFMADD231PS  log2e8<>(SB), v, q   \
	VROUNDPS     $1, q, q             \
	VFNMADD231PS ln2hi8<>(SB), q, v   \
	VFNMADD231PS ln2lo8<>(SB), q, v   \
	VMOVUPS      expC58<>(SB), p      \
	VFMADD213PS  expC48<>(SB), v, p   \
	VFMADD213PS  expC38<>(SB), v, p   \
	VFMADD213PS  expC28<>(SB), v, p   \
	VFMADD213PS  expC18<>(SB), v, p   \
	VFMADD213PS  half8<>(SB), v, p    \
	VMULPS       v, p, p              \
	VFMADD213PS  v, v, p              \
	VADDPS       one8<>(SB), p, p     \
	VCVTPS2DQ    q, q                 \
	VPSLLD       $23, q, q            \
	VPADDD       one8<>(SB), q, q     \
	VMULPS       q, p, v

// func sigmoid32Kernel(x, dst *float32, n int)
// dst[i] = 1/(1+e^-x[i])
TEXT ·sigmoid32Kernel(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), R8
	MOVQ dst+8(FP), DI
	MOVQ n+16(FP), CX

sigmoid32loop:
	VMOVUPS (R8), Y3              // x, kept for the NaN blend
	VXORPS  signmask8<>(SB), Y3, Y0 // v = -x

	EXPV(Y0, Y1, Y2)

	VADDPS    one8<>(SB), Y0, Y0 // 1 + e^-x
	VMOVUPS   one8<>(SB), Y1
	VDIVPS    Y0, Y1, Y0         // 1/(1+e^-x)
	VCMPPS    $3, Y3, Y3, Y4     // unordered: NaN lanes of x
	VBLENDVPS Y4, Y3, Y0, Y0     // propagate NaN inputs
	VMOVUPS   Y0, (DI)
	ADDQ      $32, R8
	ADDQ      $32, DI
	SUBQ      $8, CX
	JNZ       sigmoid32loop

	VZEROUPPER
	RET

// func tanh32Kernel(x, dst *float32, n int)
// dst[i] = tanh(x[i]): poly on |x|<0.625, 1-2/(e^{2|x|}+1) above, signed.
TEXT ·tanh32Kernel(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), R8
	MOVQ dst+8(FP), DI
	MOVQ n+16(FP), CX

tanh32loop:
	VMOVUPS (R8), Y5                // x
	VANDPS  absmask8<>(SB), Y5, Y7  // z = |x|
	VANDPS  signmask8<>(SB), Y5, Y6 // sign(x)

	// Exp branch: r1 = sign(x) · (1 − 2/(e^{2z}+1)).
	VADDPS Y7, Y7, Y0 // 2z

	EXPV(Y0, Y1, Y2)

	VADDPS  one8<>(SB), Y0, Y0 // e^{2z}+1
	VMOVUPS two8<>(SB), Y1
	VDIVPS  Y0, Y1, Y1         // 2/(e^{2z}+1)
	VMOVUPS one8<>(SB), Y2
	VSUBPS  Y1, Y2, Y1         // 1 - 2/(e^{2z}+1)
	VXORPS  Y6, Y1, Y1         // restore sign

	// Poly branch: r2 = x + x·s·poly(s), s = x².
	VMULPS      Y5, Y5, Y2
	VMOVUPS     tanhC48<>(SB), Y3
	VFMADD213PS tanhC38<>(SB), Y2, Y3
	VFMADD213PS tanhC28<>(SB), Y2, Y3
	VFMADD213PS tanhC18<>(SB), Y2, Y3
	VFMADD213PS tanhC08<>(SB), Y2, Y3
	VMULPS      Y2, Y3, Y3
	VFMADD213PS Y5, Y5, Y3 // r2 = x·(p·s) + x

	// Select per lane: poly where z < 0.625, exp branch otherwise. The
	// clamps in EXPV would turn NaN lanes into finite junk, so NaN
	// inputs are restored explicitly after the blend.
	VCMPPS    $1, thresh8<>(SB), Y7, Y4 // z < 0.625
	VBLENDVPS Y4, Y3, Y1, Y0
	VCMPPS    $3, Y5, Y5, Y4 // unordered: NaN lanes of x
	VBLENDVPS Y4, Y5, Y0, Y0 // propagate NaN inputs
	VMOVUPS   Y0, (DI)
	ADDQ      $32, R8
	ADDQ      $32, DI
	SUBQ      $8, CX
	JNZ       tanh32loop

	VZEROUPPER
	RET
