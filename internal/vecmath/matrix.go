package vecmath

import "fmt"

// Row-major matrix kernels used by the neural-network substrate. A matrix
// with r rows and c columns is stored as a []float64 of length r*c with
// element (i, j) at index i*c+j. Keeping these loops here (rather than
// inside internal/nn) lets the gradient-check tests exercise them in
// isolation and keeps the layer code focused on calculus.

func checkDims(op string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("vecmath: %s: backing slice has %d elements, want %d", op, got, want))
	}
}

// MatMul computes C = A·B where A is m×k, B is k×n, and C is m×n.
// C must not alias A or B.
func MatMul(c, a, b []float64, m, k, n int) {
	checkDims("MatMul A", len(a), m*k)
	checkDims("MatMul B", len(b), k*n)
	checkDims("MatMul C", len(c), m*n)
	Zero(c)
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for p, ap := range arow {
			if ap == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += ap * bv
			}
		}
	}
}

// MatMulATB computes C = Aᵀ·B where A is m×k (so Aᵀ is k×m), B is m×n,
// and C is k×n. Used for weight gradients: dW = Xᵀ·dY.
// C must not alias A or B.
func MatMulATB(c, a, b []float64, m, k, n int) {
	checkDims("MatMulATB A", len(a), m*k)
	checkDims("MatMulATB B", len(b), m*n)
	checkDims("MatMulATB C", len(c), k*n)
	Zero(c)
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		brow := b[i*n : (i+1)*n]
		for p, ap := range arow {
			if ap == 0 {
				continue
			}
			crow := c[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += ap * bv
			}
		}
	}
}

// MatMulABT computes C = A·Bᵀ where A is m×k, B is n×k (so Bᵀ is k×n),
// and C is m×n. Used for input gradients: dX = dY·Wᵀ.
// C must not alias A or B.
func MatMulABT(c, a, b []float64, m, k, n int) {
	checkDims("MatMulABT A", len(a), m*k)
	checkDims("MatMulABT B", len(b), n*k)
	checkDims("MatMulABT C", len(c), m*n)
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s float64
			for p, ap := range arow {
				s += ap * brow[p]
			}
			crow[j] = s
		}
	}
}

// AddRowVector adds the length-n vector v to each of the m rows of the
// m×n matrix a in place. Used to apply biases to a batch.
func AddRowVector(a, v []float64, m, n int) {
	checkDims("AddRowVector A", len(a), m*n)
	checkDims("AddRowVector v", len(v), n)
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		for j, vj := range v {
			row[j] += vj
		}
	}
}

// SumRows accumulates the column sums of the m×n matrix a into the length-n
// vector dst (dst[j] = Σ_i a[i][j]). Used for bias gradients.
func SumRows(dst, a []float64, m, n int) {
	checkDims("SumRows A", len(a), m*n)
	checkDims("SumRows dst", len(dst), n)
	Zero(dst)
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		for j, v := range row {
			dst[j] += v
		}
	}
}
