package vecmath

import "fmt"

// Row-major matrix kernels used by the neural-network substrate. A matrix
// with r rows and c columns is stored as a []float64 of length r*c with
// element (i, j) at index i*c+j. Keeping these loops here (rather than
// inside internal/nn) lets the gradient-check tests exercise them in
// isolation and keeps the layer code focused on calculus.
//
// The three GEMM entry points (Gemm, GemmATB, GemmABT) share a common
// design: a 2×4 register tile of C accumulates in registers across the
// whole reduction and is written back once, so the inner loop performs 16
// flops per 6 loads with no stores. Gemm additionally blocks the reduction
// dimension (gemmKC) so the 4-column stripe of B walked by a tile stays
// cache-resident for long reductions, and GemmATB switches to a rank-1
// row-panel form when the reduction is long enough to amortize streaming
// C. Each kernel takes an accumulate flag so callers can fold C += A·B
// directly into a gradient vector instead of computing into scratch and
// AXPY-ing. The kernels are dense: unlike the pre-GEMM substrate they
// never test elements against zero, so throughput is independent of the
// data (and much higher on the dense activations that dominate training).

// Kernel parameters; see DESIGN.md §2 for the blocking scheme.
const (
	// gemmMR × gemmNR names the register tile of the pure-Go kernels:
	// 2×4 = 8 accumulators plus 6 in-flight operands, which fits the
	// 16-register floating-point file of the amd64 backend without
	// spills. The tile shape is baked into the unrolled kernel bodies
	// (s00..s13, brow[0..3]) — these constants document it and pin the
	// loop strides; changing them alone does NOT retile the kernels.
	gemmMR = 2
	gemmNR = 4
	// gemmKC bounds the reduction-dimension block in Gemm so the
	// 4-column stripe of B walked by one register tile (gemmKC cache
	// lines) stays L1-resident even for long inner dimensions. This one
	// is a genuine tuning knob.
	gemmKC = 256
	// gemmATBPanelMin is the reduction length above which the pure-Go
	// GemmATB switches from register-dot tiles to rank-1 row panels:
	// with that many updates per C row the panel stays cache-hot while
	// each B row loaded feeds four C rows. Also a genuine tuning knob.
	gemmATBPanelMin = 64
)

func checkDims(op string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("vecmath: %s: backing slice has %d elements, want %d", op, got, want))
	}
}

// Gemm computes C = A·B (or C += A·B when accumulate is true) where A is
// m×k, B is k×n, and C is m×n. C must not alias A or B.
func Gemm(c, a, b []float64, m, k, n int, accumulate bool) {
	checkDims("Gemm A", len(a), m*k)
	checkDims("Gemm B", len(b), k*n)
	checkDims("Gemm C", len(c), m*n)
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !accumulate {
			Zero(c)
		}
		return
	}
	if useAVX && n >= 8 {
		gemmAVX(c, a, b, m, k, n, accumulate)
		return
	}
	gemmGeneric(c, a, b, m, k, n, accumulate)
}

// gemmAVX tiles C into 4×8 (and 1×8) blocks handled by the FMA
// microkernels; the sub-tile column remainder falls back to scalar dots.
// The kernels accumulate unconditionally, so C is cleared first unless
// the caller asked for accumulation.
func gemmAVX(c, a, b []float64, m, k, n int, accumulate bool) {
	if !accumulate {
		Zero(c)
	}
	mMain := m &^ 3
	nMain := n &^ 7
	for i := 0; i < mMain; i += 4 {
		for j := 0; j < nMain; j += 8 {
			gemmKernel4x8(&a[i*k], &a[(i+1)*k], &a[(i+2)*k], &a[(i+3)*k], &b[j], n, &c[i*n+j], n, k)
		}
	}
	for i := mMain; i < m; i++ {
		for j := 0; j < nMain; j += 8 {
			gemmKernel1x8(&a[i*k], &b[j], n, &c[i*n+j], k)
		}
	}
	if nMain == n {
		return
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for j := nMain; j < n; j++ {
			var s float64
			idx := j
			for _, ap := range arow {
				s += ap * b[idx]
				idx += n
			}
			crow[j] += s
		}
	}
}

func gemmGeneric(c, a, b []float64, m, k, n int, accumulate bool) {
	for p0 := 0; p0 < k; p0 += gemmKC {
		pEnd := min(p0+gemmKC, k)
		add := accumulate || p0 > 0
		i := 0
		for ; i+gemmMR <= m; i += gemmMR {
			a0 := a[i*k+p0 : i*k+pEnd]
			a1 := a[(i+1)*k+p0 : (i+1)*k+pEnd]
			a1 = a1[:len(a0)]
			c0 := c[i*n : (i+1)*n]
			c1 := c[(i+1)*n : (i+2)*n]
			j := 0
			for ; j+gemmNR <= n; j += gemmNR {
				var s00, s01, s02, s03 float64
				var s10, s11, s12, s13 float64
				idx := p0*n + j
				for p, a0p := range a0 {
					a1p := a1[p]
					brow := b[idx : idx+4]
					b0, b1, b2, b3 := brow[0], brow[1], brow[2], brow[3]
					idx += n
					s00 += a0p * b0
					s01 += a0p * b1
					s02 += a0p * b2
					s03 += a0p * b3
					s10 += a1p * b0
					s11 += a1p * b1
					s12 += a1p * b2
					s13 += a1p * b3
				}
				if add {
					c0[j] += s00
					c0[j+1] += s01
					c0[j+2] += s02
					c0[j+3] += s03
					c1[j] += s10
					c1[j+1] += s11
					c1[j+2] += s12
					c1[j+3] += s13
				} else {
					c0[j] = s00
					c0[j+1] = s01
					c0[j+2] = s02
					c0[j+3] = s03
					c1[j] = s10
					c1[j+1] = s11
					c1[j+2] = s12
					c1[j+3] = s13
				}
			}
			for ; j < n; j++ {
				var s0, s1 float64
				idx := p0*n + j
				for p, a0p := range a0 {
					bv := b[idx]
					idx += n
					s0 += a0p * bv
					s1 += a1[p] * bv
				}
				if add {
					c0[j] += s0
					c1[j] += s1
				} else {
					c0[j] = s0
					c1[j] = s1
				}
			}
		}
		if i < m {
			arow := a[i*k+p0 : i*k+pEnd]
			crow := c[i*n : (i+1)*n]
			j := 0
			for ; j+gemmNR <= n; j += gemmNR {
				var s0, s1, s2, s3 float64
				idx := p0*n + j
				for _, ap := range arow {
					brow := b[idx : idx+4]
					s0 += ap * brow[0]
					s1 += ap * brow[1]
					s2 += ap * brow[2]
					s3 += ap * brow[3]
					idx += n
				}
				if add {
					crow[j] += s0
					crow[j+1] += s1
					crow[j+2] += s2
					crow[j+3] += s3
				} else {
					crow[j] = s0
					crow[j+1] = s1
					crow[j+2] = s2
					crow[j+3] = s3
				}
			}
			for ; j < n; j++ {
				var s float64
				idx := p0*n + j
				for _, ap := range arow {
					s += ap * b[idx]
					idx += n
				}
				if add {
					crow[j] += s
				} else {
					crow[j] = s
				}
			}
		}
	}
}

// GemmATB computes C = Aᵀ·B (or C += Aᵀ·B when accumulate is true) where
// A is m×k (so Aᵀ is k×m), B is m×n, and C is k×n. Used for weight
// gradients: dW += Xᵀ·dY. C must not alias A or B.
func GemmATB(c, a, b []float64, m, k, n int, accumulate bool) {
	checkDims("GemmATB A", len(a), m*k)
	checkDims("GemmATB B", len(b), m*n)
	checkDims("GemmATB C", len(c), k*n)
	if k == 0 || n == 0 {
		return
	}
	if m == 0 {
		if !accumulate {
			Zero(c)
		}
		return
	}
	if useAVX && n >= 8 {
		gemmATBAVX(c, a, b, m, k, n, accumulate)
		return
	}
	if m >= gemmATBPanelMin {
		gemmATBPanels(c, a, b, m, k, n, accumulate)
		return
	}
	p := 0
	for ; p+gemmMR <= k; p += gemmMR {
		c0 := c[p*n : (p+1)*n]
		c1 := c[(p+1)*n : (p+2)*n]
		j := 0
		for ; j+gemmNR <= n; j += gemmNR {
			var s00, s01, s02, s03 float64
			var s10, s11, s12, s13 float64
			ai := p
			bi := j
			for i := 0; i < m; i++ {
				apair := a[ai : ai+2]
				a0p, a1p := apair[0], apair[1]
				ai += k
				brow := b[bi : bi+4]
				b0, b1, b2, b3 := brow[0], brow[1], brow[2], brow[3]
				bi += n
				s00 += a0p * b0
				s01 += a0p * b1
				s02 += a0p * b2
				s03 += a0p * b3
				s10 += a1p * b0
				s11 += a1p * b1
				s12 += a1p * b2
				s13 += a1p * b3
			}
			if accumulate {
				c0[j] += s00
				c0[j+1] += s01
				c0[j+2] += s02
				c0[j+3] += s03
				c1[j] += s10
				c1[j+1] += s11
				c1[j+2] += s12
				c1[j+3] += s13
			} else {
				c0[j] = s00
				c0[j+1] = s01
				c0[j+2] = s02
				c0[j+3] = s03
				c1[j] = s10
				c1[j+1] = s11
				c1[j+2] = s12
				c1[j+3] = s13
			}
		}
		for ; j < n; j++ {
			var s0, s1 float64
			ai := p
			bi := j
			for i := 0; i < m; i++ {
				bv := b[bi]
				bi += n
				s0 += a[ai] * bv
				s1 += a[ai+1] * bv
				ai += k
			}
			if accumulate {
				c0[j] += s0
				c1[j] += s1
			} else {
				c0[j] = s0
				c1[j] = s1
			}
		}
	}
	if p < k {
		crow := c[p*n : (p+1)*n]
		for j := 0; j < n; j++ {
			var s float64
			ai := p
			bi := j
			for i := 0; i < m; i++ {
				s += a[ai] * b[bi]
				ai += k
				bi += n
			}
			if accumulate {
				crow[j] += s
			} else {
				crow[j] = s
			}
		}
	}
}

// gemmATBAVX tiles the k×n result into 4×8 (and 1×8) blocks handled by
// the FMA microkernels, reducing over the m rows of A and B; the column
// remainder falls back to scalar dots.
func gemmATBAVX(c, a, b []float64, m, k, n int, accumulate bool) {
	if !accumulate {
		Zero(c)
	}
	kMain := k &^ 3
	nMain := n &^ 7
	for p := 0; p < kMain; p += 4 {
		for j := 0; j < nMain; j += 8 {
			atbKernel4x8(&a[p], k, &b[j], n, &c[p*n+j], n, m)
		}
	}
	for p := kMain; p < k; p++ {
		for j := 0; j < nMain; j += 8 {
			atbKernel1x8(&a[p], k, &b[j], n, &c[p*n+j], m)
		}
	}
	if nMain == n {
		return
	}
	for p := 0; p < k; p++ {
		crow := c[p*n : (p+1)*n]
		for j := nMain; j < n; j++ {
			var s float64
			ai := p
			bi := j
			for i := 0; i < m; i++ {
				s += a[ai] * b[bi]
				ai += k
				bi += n
			}
			crow[j] += s
		}
	}
}

// gemmATBPanels is the long-reduction form of GemmATB: rank-1 updates of
// four C rows at a time, so each B row loaded from memory feeds four
// multiply-add chains while the 4×n C panel stays cache-hot across the
// whole m sweep.
func gemmATBPanels(c, a, b []float64, m, k, n int, accumulate bool) {
	if !accumulate {
		Zero(c)
	}
	p := 0
	for ; p+4 <= k; p += 4 {
		c0 := c[(p+0)*n : (p+1)*n]
		c1 := c[(p+1)*n : (p+2)*n]
		c2 := c[(p+2)*n : (p+3)*n]
		c3 := c[(p+3)*n : (p+4)*n]
		for i := 0; i < m; i++ {
			a0, a1, a2, a3 := a[i*k+p], a[i*k+p+1], a[i*k+p+2], a[i*k+p+3]
			brow := b[i*n : i*n+n]
			for j, bv := range brow {
				c0[j] += a0 * bv
				c1[j] += a1 * bv
				c2[j] += a2 * bv
				c3[j] += a3 * bv
			}
		}
	}
	for ; p < k; p++ {
		crow := c[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			ap := a[i*k+p]
			brow := b[i*n : i*n+n]
			for j, bv := range brow {
				crow[j] += ap * bv
			}
		}
	}
}

// GemmABT computes C = A·Bᵀ (or C += A·Bᵀ when accumulate is true) where
// A is m×k, B is n×k (so Bᵀ is k×n), and C is m×n. Used for input
// gradients: dX = dY·Wᵀ. Both operands are traversed along contiguous
// rows, so this is the pure dot-product instance of the register tile.
// C must not alias A or B.
func GemmABT(c, a, b []float64, m, k, n int, accumulate bool) {
	checkDims("GemmABT A", len(a), m*k)
	checkDims("GemmABT B", len(b), n*k)
	checkDims("GemmABT C", len(c), m*n)
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !accumulate {
			Zero(c)
		}
		return
	}
	if useAVX && k >= 4 {
		gemmABTAVX(c, a, b, m, k, n, accumulate)
		return
	}
	i := 0
	for ; i+gemmMR <= m; i += gemmMR {
		a0 := a[i*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		a1 = a1[:len(a0)]
		j := 0
		for ; j+gemmNR <= n; j += gemmNR {
			b0 := b[(j+0)*k : (j+1)*k][:len(a0)]
			b1 := b[(j+1)*k : (j+2)*k][:len(a0)]
			b2 := b[(j+2)*k : (j+3)*k][:len(a0)]
			b3 := b[(j+3)*k : (j+4)*k][:len(a0)]
			var s00, s01, s02, s03 float64
			var s10, s11, s12, s13 float64
			for p, a0p := range a0 {
				a1p := a1[p]
				b0p, b1p, b2p, b3p := b0[p], b1[p], b2[p], b3[p]
				s00 += a0p * b0p
				s01 += a0p * b1p
				s02 += a0p * b2p
				s03 += a0p * b3p
				s10 += a1p * b0p
				s11 += a1p * b1p
				s12 += a1p * b2p
				s13 += a1p * b3p
			}
			if accumulate {
				c[i*n+j] += s00
				c[i*n+j+1] += s01
				c[i*n+j+2] += s02
				c[i*n+j+3] += s03
				c[(i+1)*n+j] += s10
				c[(i+1)*n+j+1] += s11
				c[(i+1)*n+j+2] += s12
				c[(i+1)*n+j+3] += s13
			} else {
				c[i*n+j] = s00
				c[i*n+j+1] = s01
				c[i*n+j+2] = s02
				c[i*n+j+3] = s03
				c[(i+1)*n+j] = s10
				c[(i+1)*n+j+1] = s11
				c[(i+1)*n+j+2] = s12
				c[(i+1)*n+j+3] = s13
			}
		}
		for ; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s0, s1 float64
			for p, bp := range brow {
				s0 += a0[p] * bp
				s1 += a1[p] * bp
			}
			if accumulate {
				c[i*n+j] += s0
				c[(i+1)*n+j] += s1
			} else {
				c[i*n+j] = s0
				c[(i+1)*n+j] = s1
			}
		}
	}
	if i < m {
		arow := a[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s float64
			for p, ap := range arow {
				s += ap * brow[p]
			}
			if accumulate {
				c[i*n+j] += s
			} else {
				c[i*n+j] = s
			}
		}
	}
}

// gemmABTAVX computes 2×4 tiles of dot products with the FMA kernel over
// the largest multiple-of-4 prefix of the reduction; the k remainder and
// the row/column edges are finished with scalar dots.
func gemmABTAVX(c, a, b []float64, m, k, n int, accumulate bool) {
	k4 := k &^ 3
	mMain := m &^ 1
	nMain := n &^ 3
	var out [8]float64
	for i := 0; i < mMain; i += 2 {
		a0 := a[i*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		a1 = a1[:len(a0)]
		for j := 0; j < nMain; j += 4 {
			b0 := b[(j+0)*k : (j+1)*k][:len(a0)]
			b1 := b[(j+1)*k : (j+2)*k][:len(a0)]
			b2 := b[(j+2)*k : (j+3)*k][:len(a0)]
			b3 := b[(j+3)*k : (j+4)*k][:len(a0)]
			abtKernel2x4(&a0[0], &a1[0], &b0[0], &b1[0], &b2[0], &b3[0], k4, &out)
			for p := k4; p < k; p++ {
				a0p, a1p := a0[p], a1[p]
				out[0] += a0p * b0[p]
				out[1] += a0p * b1[p]
				out[2] += a0p * b2[p]
				out[3] += a0p * b3[p]
				out[4] += a1p * b0[p]
				out[5] += a1p * b1[p]
				out[6] += a1p * b2[p]
				out[7] += a1p * b3[p]
			}
			if accumulate {
				c[i*n+j] += out[0]
				c[i*n+j+1] += out[1]
				c[i*n+j+2] += out[2]
				c[i*n+j+3] += out[3]
				c[(i+1)*n+j] += out[4]
				c[(i+1)*n+j+1] += out[5]
				c[(i+1)*n+j+2] += out[6]
				c[(i+1)*n+j+3] += out[7]
			} else {
				c[i*n+j] = out[0]
				c[i*n+j+1] = out[1]
				c[i*n+j+2] = out[2]
				c[i*n+j+3] = out[3]
				c[(i+1)*n+j] = out[4]
				c[(i+1)*n+j+1] = out[5]
				c[(i+1)*n+j+2] = out[6]
				c[(i+1)*n+j+3] = out[7]
			}
		}
		for j := nMain; j < n; j++ {
			brow := b[j*k : (j+1)*k][:len(a0)]
			var s0, s1 float64
			for p, bp := range brow {
				s0 += a0[p] * bp
				s1 += a1[p] * bp
			}
			if accumulate {
				c[i*n+j] += s0
				c[(i+1)*n+j] += s1
			} else {
				c[i*n+j] = s0
				c[(i+1)*n+j] = s1
			}
		}
	}
	if mMain < m {
		arow := a[mMain*k : (mMain+1)*k]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k][:len(arow)]
			var s float64
			for p, bp := range brow {
				s += arow[p] * bp
			}
			if accumulate {
				c[mMain*n+j] += s
			} else {
				c[mMain*n+j] = s
			}
		}
	}
}

// MatMul computes C = A·B where A is m×k, B is k×n, and C is m×n.
// C must not alias A or B. It is Gemm without accumulation, kept for
// callers that predate the accumulate flag.
func MatMul(c, a, b []float64, m, k, n int) {
	Gemm(c, a, b, m, k, n, false)
}

// MatMulATB computes C = Aᵀ·B where A is m×k (so Aᵀ is k×m), B is m×n,
// and C is k×n. C must not alias A or B.
func MatMulATB(c, a, b []float64, m, k, n int) {
	GemmATB(c, a, b, m, k, n, false)
}

// MatMulABT computes C = A·Bᵀ where A is m×k, B is n×k (so Bᵀ is k×n),
// and C is m×n. C must not alias A or B.
func MatMulABT(c, a, b []float64, m, k, n int) {
	GemmABT(c, a, b, m, k, n, false)
}

// AddRowVector adds the length-n vector v to each of the m rows of the
// m×n matrix a in place. Used to apply biases to a batch.
func AddRowVector(a, v []float64, m, n int) {
	checkDims("AddRowVector A", len(a), m*n)
	checkDims("AddRowVector v", len(v), n)
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		for j, vj := range v {
			row[j] += vj
		}
	}
}

// SumRows accumulates the column sums of the m×n matrix a into the length-n
// vector dst (dst[j] = Σ_i a[i][j]). Used for bias gradients.
func SumRows(dst, a []float64, m, n int) {
	checkDims("SumRows dst", len(dst), n)
	Zero(dst)
	SumRowsAcc(dst, a, m, n)
}

// SumRowsAcc is SumRows without the initial clear: dst[j] += Σ_i a[i][j].
// Layers use it to fold bias gradients straight into the gradient vector.
func SumRowsAcc(dst, a []float64, m, n int) {
	checkDims("SumRowsAcc A", len(a), m*n)
	checkDims("SumRowsAcc dst", len(dst), n)
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		for j, v := range row {
			dst[j] += v
		}
	}
}
