package vecmath

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// refAXPYPY is the unfused two-pass reference.
func refAXPYPY(a float64, x []float64, b float64, y, z []float64) {
	for i := range z {
		z[i] += a * x[i]
	}
	for i := range z {
		z[i] += b * y[i]
	}
}

// TestAXPYPYMatchesReference checks the fused kernel against the two-pass
// form at every length around the 8-lane boundary, including the pure-Go
// tail. FMA reassociation changes the last ulp, so the comparison is
// relative with a tight tolerance rather than bit-exact.
func TestAXPYPYMatchesReference(t *testing.T) {
	r := rng.New(17)
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 64, 100, 1000, 1027} {
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		want := make([]float64, n)
		for i := range x {
			x[i] = r.Normal(0, 1)
			y[i] = r.Normal(0, 1)
			z[i] = r.Normal(0, 1)
			want[i] = z[i]
		}
		refAXPYPY(-0.05, x, 0.03, y, want)
		AXPYPY(-0.05, x, 0.03, y, z)
		for i := range z {
			if diff := math.Abs(z[i] - want[i]); diff > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: z[%d] = %v, want %v (diff %g)", n, i, z[i], want[i], diff)
			}
		}
	}
}

// TestSubScaleMatchesReference checks the fused freeloader-replay kernel,
// including aliased destinations. Sub-then-scale and the fused form
// perform the identical operations per element, so this comparison is
// bit-exact.
func TestSubScaleMatchesReference(t *testing.T) {
	r := rng.New(23)
	for _, n := range []int{0, 1, 5, 8, 13, 16, 64, 1000, 1027} {
		a := make([]float64, n)
		b := make([]float64, n)
		dst := make([]float64, n)
		want := make([]float64, n)
		for i := range a {
			a[i] = r.Normal(0, 1)
			b[i] = r.Normal(0, 1)
		}
		Sub(want, a, b)
		Scale(1.7, want)
		SubScale(dst, 1.7, a, b)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: dst[%d] = %v, want %v", n, i, dst[i], want[i])
			}
		}
		// Aliased: dst == a.
		aliased := make([]float64, n)
		copy(aliased, a)
		SubScale(aliased, 1.7, aliased, b)
		for i := range aliased {
			if aliased[i] != want[i] {
				t.Fatalf("n=%d aliased: dst[%d] = %v, want %v", n, i, aliased[i], want[i])
			}
		}
	}
}

// TestAXPYPYPanicsOnLengthMismatch pins the conformability contract.
func TestAXPYPYPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched lengths")
		}
	}()
	AXPYPY(1, make([]float64, 3), 1, make([]float64, 4), make([]float64, 4))
}

func BenchmarkFused(b *testing.B) {
	const n = 4096
	r := rng.New(5)
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := range x {
		x[i] = r.Normal(0, 1)
		y[i] = r.Normal(0, 1)
	}
	b.Run("AXPYPY", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			AXPYPY(-0.05, x, 0.01, y, z)
		}
		b.ReportMetric(float64(4*n)*float64(b.N)/b.Elapsed().Seconds(), "flops/s")
	})
	b.Run("unfused-GradAdjust+AXPY", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			AXPY(0.01, y, x)
			AXPY(-0.05, x, z)
		}
		b.ReportMetric(float64(4*n)*float64(b.N)/b.Elapsed().Seconds(), "flops/s")
	})
	b.Run("SubScale", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SubScale(z, 1.7, x, y)
		}
		b.ReportMetric(float64(2*n)*float64(b.N)/b.Elapsed().Seconds(), "flops/s")
	})
}
