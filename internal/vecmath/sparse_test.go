package vecmath

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// scatterRef is the scalar reference for ScatterAXPY.
func scatterRef(alpha float64, idx []int32, val, y []float64) {
	for j, i := range idx {
		y[i] += alpha * val[j]
	}
}

// gatherRef is the scalar reference for GatherDot.
func gatherRef(idx []int32, val, y []float64) float64 {
	var s float64
	for j, i := range idx {
		s += val[j] * y[i]
	}
	return s
}

// sparseCase draws k entries over a d-length dense vector. Indices are
// unique and ascending (the top-k codec's layout) unless dup is set, in
// which case every other index repeats its predecessor.
func sparseCase(r *rng.RNG, d, k int, dup bool) (idx []int32, val, y []float64) {
	perm := r.Perm(d)[:k]
	idx = make([]int32, k)
	for j, p := range perm {
		idx[j] = int32(p)
	}
	if dup {
		for j := 1; j < k; j += 2 {
			idx[j] = idx[j-1]
		}
	}
	val = make([]float64, k)
	for j := range val {
		val[j] = r.Normal(0, 1)
	}
	y = make([]float64, d)
	for i := range y {
		y[i] = r.Normal(0, 1)
	}
	return idx, val, y
}

// TestScatterAXPY checks the dispatched kernel (asm head + Go tail on
// amd64) against the scalar reference, which it must match bitwise: the
// products use plain multiplies and the scatter adds are sequential in
// both paths.
func TestScatterAXPY(t *testing.T) {
	r := rng.New(11)
	for _, k := range []int{0, 1, 3, 4, 5, 8, 17, 64, 641} {
		for _, dup := range []bool{false, true} {
			idx, val, y := sparseCase(r, 2048, k, dup)
			want := Clone(y)
			scatterRef(0.37, idx, val, want)
			got := Clone(y)
			ScatterAXPY(0.37, idx, val, got)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("k=%d dup=%v: y[%d] = %v, want %v", k, dup, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGatherDot checks the dispatched kernel against the scalar
// reference within accumulation-order tolerance (the asm path reduces
// four partial sums; see sparse.go).
func TestGatherDot(t *testing.T) {
	r := rng.New(13)
	for _, k := range []int{0, 1, 3, 4, 5, 8, 17, 64, 641} {
		idx, val, y := sparseCase(r, 2048, k, false)
		want := gatherRef(idx, val, y)
		got := GatherDot(idx, val, y)
		tol := 1e-12 * math.Max(1, math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Fatalf("k=%d: GatherDot = %v, want %v", k, got, want)
		}
	}
}

// TestScatterGatherAgainstDense pins the sparse kernels' semantics
// against their dense equivalents: scattering into a zero vector then
// densely accumulating must equal scattering directly, and GatherDot
// must equal the dense Dot of the densified vector.
func TestScatterGatherAgainstDense(t *testing.T) {
	r := rng.New(17)
	const d, k = 512, 37
	idx, val, y := sparseCase(r, d, k, false)
	dense := make([]float64, d)
	for j, i := range idx {
		dense[i] = val[j]
	}

	got := Clone(y)
	ScatterAXPY(-1.5, idx, val, got)
	want := Clone(y)
	AXPY(-1.5, dense, want)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-15 {
			t.Fatalf("scatter vs dense AXPY: y[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	dotWant := Dot(dense, y)
	dotGot := GatherDot(idx, val, y)
	if math.Abs(dotWant-dotGot) > 1e-12*math.Max(1, math.Abs(dotWant)) {
		t.Fatalf("GatherDot = %v, want dense Dot %v", dotGot, dotWant)
	}
}

func BenchmarkSparse(b *testing.B) {
	r := rng.New(7)
	const d = 65536
	for _, frac := range []float64{0.01, 0.1} {
		k := int(frac * d)
		idx, val, y := sparseCase(r, d, k, false)
		b.Run("ScatterAXPY/"+fracName(frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ScatterAXPY(0.5, idx, val, y)
			}
		})
		b.Run("GatherDot/"+fracName(frac), func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				s += GatherDot(idx, val, y)
			}
			_ = s
		})
	}
}

func fracName(f float64) string {
	if f == 0.01 {
		return "k1pct"
	}
	return "k10pct"
}
