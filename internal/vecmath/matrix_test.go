package vecmath

import (
	"math/rand/v2"
	"testing"
)

// naiveMatMul is the reference implementation used to validate the kernels.
func naiveMatMul(a, b []float64, m, k, n int) []float64 {
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func randMat(rng *rand.Rand, n int) []float64 {
	m := make([]float64, n)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	return m
}

func matricesClose(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if !almostEqual(got[i], want[i], 1e-10) {
			t.Fatalf("%s: element %d: got %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 50; trial++ {
		m, k, n := 1+rng.IntN(8), 1+rng.IntN(8), 1+rng.IntN(8)
		a := randMat(rng, m*k)
		b := randMat(rng, k*n)
		c := make([]float64, m*n)
		MatMul(c, a, b, m, k, n)
		matricesClose(t, c, naiveMatMul(a, b, m, k, n), "MatMul")
	}
}

func transpose(a []float64, r, c int) []float64 {
	out := make([]float64, r*c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out[j*r+i] = a[i*c+j]
		}
	}
	return out
}

func TestMatMulATBAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 50; trial++ {
		m, k, n := 1+rng.IntN(8), 1+rng.IntN(8), 1+rng.IntN(8)
		a := randMat(rng, m*k) // A is m×k, we compute Aᵀ·B (k×n)
		b := randMat(rng, m*n)
		c := make([]float64, k*n)
		MatMulATB(c, a, b, m, k, n)
		at := transpose(a, m, k) // k×m
		matricesClose(t, c, naiveMatMul(at, b, k, m, n), "MatMulATB")
	}
}

func TestMatMulABTAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 50; trial++ {
		m, k, n := 1+rng.IntN(8), 1+rng.IntN(8), 1+rng.IntN(8)
		a := randMat(rng, m*k)
		b := randMat(rng, n*k) // B is n×k, we compute A·Bᵀ (m×n)
		c := make([]float64, m*n)
		MatMulABT(c, a, b, m, k, n)
		bt := transpose(b, n, k) // k×n
		matricesClose(t, c, naiveMatMul(a, bt, m, k, n), "MatMulABT")
	}
}

// TestGemmLargeAgainstNaive exercises the blocked paths (register-tile
// remainders on every edge, k beyond one cache block).
func TestGemmLargeAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, dims := range [][3]int{{5, 300, 7}, {9, 257, 13}, {4, 256, 8}, {1, 513, 1}, {6, 3, 31}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randMat(rng, m*k)
		b := randMat(rng, k*n)
		c := make([]float64, m*n)
		Gemm(c, a, b, m, k, n, false)
		matricesClose(t, c, naiveMatMul(a, b, m, k, n), "Gemm large")
	}
}

func TestGemmAccumulate(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.IntN(9), 1+rng.IntN(9), 1+rng.IntN(9)
		a := randMat(rng, m*k)
		b := randMat(rng, k*n)
		seed := randMat(rng, m*n)

		c := append([]float64(nil), seed...)
		Gemm(c, a, b, m, k, n, true)
		want := naiveMatMul(a, b, m, k, n)
		for i := range want {
			want[i] += seed[i]
		}
		matricesClose(t, c, want, "Gemm accumulate")
	}
}

// TestGemmATBLongReduction pins the rank-1 panel path (m above
// gemmATBPanelMin) and its narrow-n scalar fallbacks, which the random
// small-shape tests never reach.
func TestGemmATBLongReduction(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 20))
	for _, dims := range [][3]int{{100, 5, 7}, {64, 9, 3}, {97, 4, 16}, {128, 13, 1}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randMat(rng, m*k)
		b := randMat(rng, m*n)
		c := make([]float64, k*n)
		GemmATB(c, a, b, m, k, n, false)
		matricesClose(t, c, naiveMatMul(transpose(a, m, k), b, k, m, n), "GemmATB long reduction")
	}
}

func TestGemmATBAccumulate(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.IntN(9), 1+rng.IntN(9), 1+rng.IntN(9)
		a := randMat(rng, m*k)
		b := randMat(rng, m*n)
		seed := randMat(rng, k*n)

		c := append([]float64(nil), seed...)
		GemmATB(c, a, b, m, k, n, true)
		want := naiveMatMul(transpose(a, m, k), b, k, m, n)
		for i := range want {
			want[i] += seed[i]
		}
		matricesClose(t, c, want, "GemmATB accumulate")
	}
}

func TestGemmABTAccumulate(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.IntN(9), 1+rng.IntN(9), 1+rng.IntN(9)
		a := randMat(rng, m*k)
		b := randMat(rng, n*k)
		seed := randMat(rng, m*n)

		c := append([]float64(nil), seed...)
		GemmABT(c, a, b, m, k, n, true)
		want := naiveMatMul(a, transpose(b, n, k), m, k, n)
		for i := range want {
			want[i] += seed[i]
		}
		matricesClose(t, c, want, "GemmABT accumulate")
	}
}

func TestSumRowsAcc(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6} // 2×3
	dst := []float64{100, 200, 300}
	SumRowsAcc(dst, a, 2, 3)
	matricesClose(t, dst, []float64{105, 207, 309}, "SumRowsAcc")
}

func TestMatMulIdentity(t *testing.T) {
	// A·I = A.
	n := 4
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	rng := rand.New(rand.NewPCG(9, 10))
	a := randMat(rng, 3*n)
	c := make([]float64, 3*n)
	MatMul(c, a, id, 3, n, n)
	matricesClose(t, c, a, "MatMul identity")
}

func TestAddRowVector(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6} // 2×3
	v := []float64{10, 20, 30}
	AddRowVector(a, v, 2, 3)
	want := []float64{11, 22, 33, 14, 25, 36}
	matricesClose(t, a, want, "AddRowVector")
}

func TestSumRows(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6} // 2×3
	dst := make([]float64, 3)
	SumRows(dst, a, 2, 3)
	want := []float64{5, 7, 9}
	matricesClose(t, dst, want, "SumRows")
}

func TestMatMulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	MatMul(make([]float64, 4), make([]float64, 3), make([]float64, 4), 2, 2, 2)
}
