//go:build amd64 && !noasm

#include "textflag.h"

// Fused level-1 AVX2+FMA kernels for the corrected-SGD and freeloader
// hot paths (see fused.go). Both are leaf functions that stream eight
// float64s (two YMM vectors) per iteration; the Go wrappers handle the
// sub-8 tails, so n is always a positive multiple of 8 here.

// func axpypyKernel(a float64, x *float64, b float64, y, z *float64, n int)
// z[i] += a*x[i] + b*y[i]
TEXT ·axpypyKernel(SB), NOSPLIT, $0-48
	VBROADCASTSD a+0(FP), Y14
	VBROADCASTSD b+16(FP), Y15
	MOVQ         x+8(FP), R8
	MOVQ         y+24(FP), R9
	MOVQ         z+32(FP), DI
	MOVQ         n+40(FP), CX

axpypyloop:
	VMOVUPD     (DI), Y0
	VMOVUPD     32(DI), Y1
	VMOVUPD     (R8), Y2
	VMOVUPD     32(R8), Y3
	VMOVUPD     (R9), Y4
	VMOVUPD     32(R9), Y5
	VFMADD231PD Y2, Y14, Y0
	VFMADD231PD Y3, Y14, Y1
	VFMADD231PD Y4, Y15, Y0
	VFMADD231PD Y5, Y15, Y1
	VMOVUPD     Y0, (DI)
	VMOVUPD     Y1, 32(DI)
	ADDQ        $64, R8
	ADDQ        $64, R9
	ADDQ        $64, DI
	SUBQ        $8, CX
	JNZ         axpypyloop

	VZEROUPPER
	RET

// func subScaleKernel(s float64, a, b, dst *float64, n int)
// dst[i] = s*(a[i]-b[i])
TEXT ·subScaleKernel(SB), NOSPLIT, $0-40
	VBROADCASTSD s+0(FP), Y15
	MOVQ         a+8(FP), R8
	MOVQ         b+16(FP), R9
	MOVQ         dst+24(FP), DI
	MOVQ         n+32(FP), CX

subscaleloop:
	VMOVUPD (R8), Y0
	VMOVUPD 32(R8), Y1
	VMOVUPD (R9), Y2
	VMOVUPD 32(R9), Y3
	VSUBPD  Y2, Y0, Y0
	VSUBPD  Y3, Y1, Y1
	VMULPD  Y15, Y0, Y0
	VMULPD  Y15, Y1, Y1
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    $64, R8
	ADDQ    $64, R9
	ADDQ    $64, DI
	SUBQ    $8, CX
	JNZ     subscaleloop

	VZEROUPPER
	RET
