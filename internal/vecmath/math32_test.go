package vecmath

import (
	"math"
	"testing"
)

// relErr32 measures |got−want|/max(|want|, tiny) with both evaluated in
// float64, so the bounds below measure the kernel's own error, not
// float32 rounding of the reference.
func relErr32(got float32, want float64) float64 {
	denom := math.Abs(want)
	if denom < 1e-30 {
		denom = 1e-30
	}
	return math.Abs(float64(got)-want) / denom
}

// TestMath32Accuracy pins the fp32 transcendental kernels against the
// float64 libm: ≤4 ulp-ish (5e-7 relative) across the useful input
// range, plus exact saturation at the clamps. These bounds are what let
// the nn engine differential tests treat the fast kernels as
// interchangeable with the libm.
func TestMath32Accuracy(t *testing.T) {
	const tol = 5e-7

	// Exp32 over the whole non-saturated range. The reference is the
	// float64 libm evaluated at the same float32-rounded input (at
	// |x|≈80 input rounding alone moves e^x by ~4e-6 relative, which is
	// not the kernel's error). Relative error is the right metric:
	// downstream consumers (softmax, sigmoid) normalize.
	for x := -87.0; x <= 88.0; x += 0.0137 {
		xf := float32(x)
		got := Exp32(xf)
		want := math.Exp(float64(xf))
		if e := relErr32(got, want); e > tol {
			t.Fatalf("Exp32(%g) = %g, want %g (rel err %.2e)", xf, got, want, e)
		}
	}

	// The scalar sigmoid/tanh bodies across the active region and into
	// saturation.
	for x := -30.0; x <= 30.0; x += 0.0041 {
		xf := float32(x)
		if e := relErr32(sigmoidScalar32(xf), 1/(1+math.Exp(-float64(xf)))); e > tol {
			t.Fatalf("sigmoidScalar32(%g): rel err %.2e", xf, e)
		}
		if e := relErr32(tanhScalar32(xf), math.Tanh(float64(xf))); e > tol {
			t.Fatalf("tanhScalar32(%g): rel err %.2e", xf, e)
		}
	}

	// Clamp behavior: exact saturation, no NaN/Inf leaks.
	if got := Exp32(89); !math.IsInf(float64(got), 1) {
		t.Fatalf("Exp32(89) = %g, want +Inf", got)
	}
	if got := Exp32(-90); got != 0 {
		t.Fatalf("Exp32(-90) = %g, want 0", got)
	}
	if got := sigmoidScalar32(200); got != 1 {
		t.Fatalf("sigmoidScalar32(200) = %g, want 1", got)
	}
	if got := sigmoidScalar32(-200); got != 0 {
		t.Fatalf("sigmoidScalar32(-200) = %g, want 0", got)
	}
	if got := tanhScalar32(50); got != 1 {
		t.Fatalf("tanhScalar32(50) = %g, want 1", got)
	}
	if got := tanhScalar32(-50); got != -1 {
		t.Fatalf("tanhScalar32(-50) = %g, want -1", got)
	}
	if got := tanhScalar32(0); got != 0 {
		t.Fatalf("tanhScalar32(0) = %g, want 0", got)
	}
	for _, f := range []func(float32) float32{Exp32, sigmoidScalar32, tanhScalar32} {
		if got := f(float32(math.NaN())); !math.IsNaN(float64(got)) {
			t.Fatalf("NaN input did not propagate (got %g)", got)
		}
	}
}

// TestMath32SliceKernels drives the slice forms across uneven lengths
// (assembly head + pure-Go tail) and checks every element against the
// float64 libm within the same bound as the scalar bodies, with a small
// extra allowance for FMA contraction in the assembly, plus a widened
// absolute bound near sigmoid's negative saturation, where the assembly's
// input clamp yields a subnormal instead of the scalar's exact 0. Inputs
// sweep the active region, both saturation tails, and special values.
func TestMath32SliceKernels(t *testing.T) {
	var xs []float32
	for x := -12.0; x <= 12.0; x += 0.00251 {
		xs = append(xs, float32(x))
	}
	xs = append(xs, 0, -0.0, 88, -88, 200, -200, 0.624, 0.626, -0.625,
		float32(math.Inf(1)), float32(math.Inf(-1)))
	for _, n := range []int{0, 1, 7, 8, 9, 16, 31, len(xs)} {
		x := xs[:n]
		sig := make([]float32, n)
		th := make([]float32, n)
		Sigmoid32(sig, x)
		Tanh32(th, x)
		for i, v := range x {
			wantS := 1 / (1 + math.Exp(-float64(v)))
			wantT := math.Tanh(float64(v))
			if e := relErr32(sig[i], wantS); e > 1e-6 && math.Abs(float64(sig[i])-wantS) > 1e-30 {
				t.Fatalf("Sigmoid32[%d](%g) = %g, want %g (rel err %.2e)", i, v, sig[i], wantS, e)
			}
			if e := relErr32(th[i], wantT); e > 1e-6 {
				t.Fatalf("Tanh32[%d](%g) = %g, want %g (rel err %.2e)", i, v, th[i], wantT, e)
			}
		}
	}

	// NaN propagates through both slice kernels (head lanes included).
	nans := make([]float32, 16)
	for i := range nans {
		nans[i] = float32(math.NaN())
	}
	out := make([]float32, 16)
	Sigmoid32(out, nans)
	for i, v := range out {
		if !math.IsNaN(float64(v)) {
			t.Fatalf("Sigmoid32 lane %d: NaN did not propagate (got %g)", i, v)
		}
	}
	Tanh32(out, nans)
	for i, v := range out {
		if !math.IsNaN(float64(v)) {
			t.Fatalf("Tanh32 lane %d: NaN did not propagate (got %g)", i, v)
		}
	}

	// In-place aliasing (dst == x) is part of the contract.
	alias := append([]float32(nil), xs[:33]...)
	want := make([]float32, 33)
	Tanh32(want, alias)
	Tanh32(alias, alias)
	for i := range alias {
		if alias[i] != want[i] {
			t.Fatalf("Tanh32 in place differs at %d: %g vs %g", i, alias[i], want[i])
		}
	}
}
