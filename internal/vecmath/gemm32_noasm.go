//go:build !amd64 || noasm

package vecmath

func gemm32Kernel4x16(a0, a1, a2, a3, b *float32, ldb int, c *float32, ldc, k int) {
	panic("vecmath: assembly kernel without asm support")
}

func gemm32Kernel1x16(a, b *float32, ldb int, c *float32, k int) {
	panic("vecmath: assembly kernel without asm support")
}

func gemm32Kernel4x8(a0, a1, a2, a3, b *float32, ldb int, c *float32, ldc, k int) {
	panic("vecmath: assembly kernel without asm support")
}

func gemm32Kernel1x8(a, b *float32, ldb int, c *float32, k int) {
	panic("vecmath: assembly kernel without asm support")
}

func atb32Kernel4x16(a *float32, lda int, b *float32, ldb int, c *float32, ldc, m int) {
	panic("vecmath: assembly kernel without asm support")
}

func atb32Kernel1x16(a *float32, lda int, b *float32, ldb int, c *float32, m int) {
	panic("vecmath: assembly kernel without asm support")
}

func atb32Kernel4x8(a *float32, lda int, b *float32, ldb int, c *float32, ldc, m int) {
	panic("vecmath: assembly kernel without asm support")
}

func atb32Kernel1x8(a *float32, lda int, b *float32, ldb int, c *float32, m int) {
	panic("vecmath: assembly kernel without asm support")
}

func abt32Kernel2x4(a0, a1, b0, b1, b2, b3 *float32, k int, out *[8]float32) {
	panic("vecmath: assembly kernel without asm support")
}
