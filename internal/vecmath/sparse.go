package vecmath

// Sparse level-1 kernels for the compressed-update aggregation path. A
// top-k-sparsified client upload is an (index, value) pair list; the
// server accumulates it into a dense model vector (ScatterAXPY) and takes
// inner products against dense broadcast vectors (GatherDot, TACO's α
// geometry) without ever materializing the dense form, so aggregating n
// sparse uploads costs O(n·k) instead of O(n·d). On amd64 with AVX2+FMA
// the bodies run in assembly (sparse_amd64.s, gated by the same CPUID
// check as the GEMM microkernels) with pure-Go tails; like the fused
// kernels, the accumulation order of GatherDot differs between the asm
// and fallback paths, so callers must not assume bit-identical results
// across machines, only within one process.
//
// Indices are int32 — the on-the-wire width of a coordinate index — and
// must lie in [0, len(y)). ScatterAXPY processes entries strictly in
// order, so duplicate indices accumulate sequentially.

// sparseLanes is the entry count each assembly loop iteration consumes
// (one 4-wide YMM vector of float64 values plus four int32 indices);
// tails shorter than this run in pure Go.
const sparseLanes = 4

// ScatterAXPY computes y[idx[j]] += alpha * val[j] for every sparse
// entry — the scatter form of AXPY used to fold a top-k upload into a
// dense accumulator.
func ScatterAXPY(alpha float64, idx []int32, val []float64, y []float64) {
	checkLen("ScatterAXPY", len(idx), len(val))
	n := len(idx)
	i := 0
	if useAVX && n >= sparseLanes {
		head := n &^ (sparseLanes - 1)
		scatterAXPYKernel(alpha, &idx[0], &val[0], &y[0], head)
		i = head
	}
	for ; i < n; i++ {
		y[idx[i]] += alpha * val[i]
	}
}

// GatherDot returns Σ_j val[j] * y[idx[j]] — the inner product of a
// sparse (idx, val) vector with a dense vector, without densifying.
func GatherDot(idx []int32, val, y []float64) float64 {
	checkLen("GatherDot", len(idx), len(val))
	n := len(idx)
	var s float64
	i := 0
	if useAVX && n >= sparseLanes {
		head := n &^ (sparseLanes - 1)
		s = gatherDotKernel(&idx[0], &val[0], &y[0], head)
		i = head
	}
	for ; i < n; i++ {
		s += val[i] * y[idx[i]]
	}
	return s
}
