package vecmath

import "math"

// Float32 transcendental kernels for the fp32 compute path. The slice
// forms (Sigmoid32, Tanh32) run an AVX2+FMA polynomial kernel on amd64 —
// the same range-reduced algorithm as the scalar bodies below, so the
// assembly and the pure-Go tail agree to ~1 ulp — and the scalar Exp32
// serves call sites that reduce in float64 anyway (softmax rows). None of
// these carry a bit-identical guarantee against the float64 libm: they
// are ~1e-7 relative-error approximations, an order below float32
// rounding, pinned by TestMath32Accuracy. The float64 training path
// never touches them.
//
// Lane-order caveat: as with the other f32 kernels, elements are
// processed independently, so results are deterministic for a fixed
// build; the assembly differs from the scalar tail only in FMA
// contraction (~1 ulp) and in NaN handling at the saturation clamps.

// math32Lanes is the element count each transcendental assembly loop
// iteration consumes (one 8-wide YMM vector — the kernels are
// compute-bound, so wider unrolling buys nothing).
const math32Lanes = 8

// Exp32 computes e^x in single precision: range reduction
// x = q·ln2 + r with |r| ≤ ln2/2, a degree-6 polynomial for e^r, and an
// exponent-bit reconstruction of 2^q. Overflow clamps to +Inf, underflow
// (below the smallest normal float32) to 0; NaN propagates.
func Exp32(x float32) float32 {
	const (
		log2e = 1.44269504088896341
		// ln2 split so that q*ln2Hi is exact for |q| < 2^15.
		ln2Hi = 0.693359375
		ln2Lo = -2.12194440e-4
	)
	if x > 88.02969 { // e^x overflows float32
		return float32(math.Inf(1))
	}
	if x < -87.33655 { // e^x underflows the smallest normal float32
		return 0
	}
	// math.Floor compiles to a single ROUNDSD; q ∈ [-126, 127] after the
	// clamps, so the biased exponent below stays in (0, 255).
	q := float32(math.Floor(float64(x)*log2e + 0.5))
	x -= q * ln2Hi
	x -= q * ln2Lo
	p := float32(1.9875691500e-4)
	p = p*x + 1.3981999507e-3
	p = p*x + 8.3334519073e-3
	p = p*x + 4.1665795894e-2
	p = p*x + 1.6666665459e-1
	p = p*x + 5.0000001201e-1
	r := p*x*x + x + 1
	return r * math.Float32frombits(uint32(int32(q)+127)<<23)
}

// sigmoidScalar32 computes 1/(1+e^-x); the pure-Go body behind
// Sigmoid32's tail. Saturation falls out of Exp32's clamps: large x → 1
// exactly, large -x → 0 exactly.
func sigmoidScalar32(x float32) float32 {
	return 1 / (1 + Exp32(-x))
}

// tanhScalar32 computes tanh(x); the pure-Go body behind Tanh32's tail:
// a degree-13 odd polynomial on |x| < 0.625, and 1 − 2/(e^{2|x|}+1)
// above it, with the sign restored. Saturates to ±1 exactly once
// e^{2|x|} overflows; NaN propagates.
func tanhScalar32(x float32) float32 {
	z := math.Float32frombits(math.Float32bits(x) &^ (1 << 31)) // |x|
	if z >= 0.625 {
		r := 1 - 2/(Exp32(2*z)+1)
		if x < 0 {
			return -r
		}
		return r
	}
	s := x * x
	p := float32(-5.70498872745e-3)
	p = p*s + 2.06390887954e-2
	p = p*s - 5.37397155531e-2
	p = p*s + 1.33314422036e-1
	p = p*s - 3.33332819422e-1
	return p*s*x + x
}

// Sigmoid32 writes dst[i] = 1/(1+e^-x[i]). dst may alias x.
func Sigmoid32(dst, x []float32) {
	checkLen("Sigmoid32", len(dst), len(x))
	n := len(x)
	i := 0
	if useAVX && n >= math32Lanes {
		head := n &^ (math32Lanes - 1)
		sigmoid32Kernel(&x[0], &dst[0], head)
		i = head
	}
	for ; i < n; i++ {
		dst[i] = sigmoidScalar32(x[i])
	}
}

// Tanh32 writes dst[i] = tanh(x[i]). dst may alias x.
func Tanh32(dst, x []float32) {
	checkLen("Tanh32", len(dst), len(x))
	n := len(x)
	i := 0
	if useAVX && n >= math32Lanes {
		head := n &^ (math32Lanes - 1)
		tanh32Kernel(&x[0], &dst[0], head)
		i = head
	}
	for ; i < n; i++ {
		dst[i] = tanhScalar32(x[i])
	}
}
