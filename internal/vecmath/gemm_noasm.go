//go:build !amd64 || noasm

package vecmath

// useAVX is false on architectures without the assembly microkernels, so
// the compiler removes the AVX dispatch branches and the stubs below are
// never reached.
const useAVX = false

func gemmKernel4x8(a0, a1, a2, a3, b *float64, ldb int, c *float64, ldc, k int) {
	panic("vecmath: assembly kernel on non-amd64")
}

func gemmKernel1x8(a, b *float64, ldb int, c *float64, k int) {
	panic("vecmath: assembly kernel on non-amd64")
}

func atbKernel4x8(a *float64, lda int, b *float64, ldb int, c *float64, ldc, m int) {
	panic("vecmath: assembly kernel on non-amd64")
}

func atbKernel1x8(a *float64, lda int, b *float64, ldb int, c *float64, m int) {
	panic("vecmath: assembly kernel on non-amd64")
}

func abtKernel2x4(a0, a1, b0, b1, b2, b3 *float64, k int, out *[8]float64) {
	panic("vecmath: assembly kernel on non-amd64")
}
