//go:build !amd64 || noasm

package vecmath

func scatterAXPY32Kernel(alpha float32, idx *int32, val, y *float32, n int) {
	panic("vecmath: assembly kernel without asm support")
}

func gatherDot32Kernel(idx *int32, val, y *float32, n int) float32 {
	panic("vecmath: assembly kernel without asm support")
}
