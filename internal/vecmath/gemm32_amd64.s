//go:build amd64 && !noasm

#include "textflag.h"

// AVX2+FMA float32 microkernels for the GEMM entry points in matrix32.go.
// Mechanical ports of the float64 kernels in gemm_amd64.s at twice the
// lane width: a YMM register holds 8 float32s, so the two-vector tiles
// cover 16 columns and the one-vector tiles cover 8. Same structure
// throughout — leaf functions, accumulator tiles live in YMM registers,
// C is touched exactly once.

// func gemm32Kernel4x16(a0, a1, a2, a3, b *float32, ldb int, c *float32, ldc, k int)
TEXT ·gemm32Kernel4x16(SB), NOSPLIT, $0-72
	MOVQ a0+0(FP), R8
	MOVQ a1+8(FP), R9
	MOVQ a2+16(FP), R10
	MOVQ a3+24(FP), R11
	MOVQ b+32(FP), SI
	MOVQ ldb+40(FP), R12
	SHLQ $2, R12
	MOVQ c+48(FP), DI
	MOVQ ldc+56(FP), R13
	SHLQ $2, R13
	MOVQ k+64(FP), CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

gemm32_4x16loop:
	VBROADCASTSS (R8), Y10
	VBROADCASTSS (R9), Y11
	VBROADCASTSS (R10), Y12
	VBROADCASTSS (R11), Y13
	VMOVUPS      (SI), Y8
	VMOVUPS      32(SI), Y9
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3
	VFMADD231PS  Y8, Y12, Y4
	VFMADD231PS  Y9, Y12, Y5
	VFMADD231PS  Y8, Y13, Y6
	VFMADD231PS  Y9, Y13, Y7
	ADDQ         $4, R8
	ADDQ         $4, R9
	ADDQ         $4, R10
	ADDQ         $4, R11
	ADDQ         R12, SI
	DECQ         CX
	JNZ          gemm32_4x16loop

	VADDPS  (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	VADDPS  32(DI), Y1, Y1
	VMOVUPS Y1, 32(DI)
	ADDQ    R13, DI
	VADDPS  (DI), Y2, Y2
	VMOVUPS Y2, (DI)
	VADDPS  32(DI), Y3, Y3
	VMOVUPS Y3, 32(DI)
	ADDQ    R13, DI
	VADDPS  (DI), Y4, Y4
	VMOVUPS Y4, (DI)
	VADDPS  32(DI), Y5, Y5
	VMOVUPS Y5, 32(DI)
	ADDQ    R13, DI
	VADDPS  (DI), Y6, Y6
	VMOVUPS Y6, (DI)
	VADDPS  32(DI), Y7, Y7
	VMOVUPS Y7, 32(DI)
	VZEROUPPER
	RET

// func gemm32Kernel1x16(a, b *float32, ldb int, c *float32, k int)
TEXT ·gemm32Kernel1x16(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), R8
	MOVQ b+8(FP), SI
	MOVQ ldb+16(FP), R12
	SHLQ $2, R12
	MOVQ c+24(FP), DI
	MOVQ k+32(FP), CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

gemm32_1x16loop:
	VBROADCASTSS (R8), Y10
	VMOVUPS      (SI), Y8
	VMOVUPS      32(SI), Y9
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	ADDQ         $4, R8
	ADDQ         R12, SI
	DECQ         CX
	JNZ          gemm32_1x16loop

	VADDPS  (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	VADDPS  32(DI), Y1, Y1
	VMOVUPS Y1, 32(DI)
	VZEROUPPER
	RET

// func gemm32Kernel4x8(a0, a1, a2, a3, b *float32, ldb int, c *float32, ldc, k int)
TEXT ·gemm32Kernel4x8(SB), NOSPLIT, $0-72
	MOVQ a0+0(FP), R8
	MOVQ a1+8(FP), R9
	MOVQ a2+16(FP), R10
	MOVQ a3+24(FP), R11
	MOVQ b+32(FP), SI
	MOVQ ldb+40(FP), R12
	SHLQ $2, R12
	MOVQ c+48(FP), DI
	MOVQ ldc+56(FP), R13
	SHLQ $2, R13
	MOVQ k+64(FP), CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

gemm32_4x8loop:
	VBROADCASTSS (R8), Y10
	VBROADCASTSS (R9), Y11
	VBROADCASTSS (R10), Y12
	VBROADCASTSS (R11), Y13
	VMOVUPS      (SI), Y8
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y8, Y11, Y1
	VFMADD231PS  Y8, Y12, Y2
	VFMADD231PS  Y8, Y13, Y3
	ADDQ         $4, R8
	ADDQ         $4, R9
	ADDQ         $4, R10
	ADDQ         $4, R11
	ADDQ         R12, SI
	DECQ         CX
	JNZ          gemm32_4x8loop

	VADDPS  (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    R13, DI
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    R13, DI
	VADDPS  (DI), Y2, Y2
	VMOVUPS Y2, (DI)
	ADDQ    R13, DI
	VADDPS  (DI), Y3, Y3
	VMOVUPS Y3, (DI)
	VZEROUPPER
	RET

// func gemm32Kernel1x8(a, b *float32, ldb int, c *float32, k int)
TEXT ·gemm32Kernel1x8(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), R8
	MOVQ b+8(FP), SI
	MOVQ ldb+16(FP), R12
	SHLQ $2, R12
	MOVQ c+24(FP), DI
	MOVQ k+32(FP), CX

	VXORPS Y0, Y0, Y0

gemm32_1x8loop:
	VBROADCASTSS (R8), Y10
	VMOVUPS      (SI), Y8
	VFMADD231PS  Y8, Y10, Y0
	ADDQ         $4, R8
	ADDQ         R12, SI
	DECQ         CX
	JNZ          gemm32_1x8loop

	VADDPS  (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	VZEROUPPER
	RET

// func atb32Kernel4x16(a *float32, lda int, b *float32, ldb int, c *float32, ldc, m int)
TEXT ·atb32Kernel4x16(SB), NOSPLIT, $0-56
	MOVQ a+0(FP), AX
	MOVQ lda+8(FP), BX
	SHLQ $2, BX
	MOVQ b+16(FP), SI
	MOVQ ldb+24(FP), R12
	SHLQ $2, R12
	MOVQ c+32(FP), DI
	MOVQ ldc+40(FP), R13
	SHLQ $2, R13
	MOVQ m+48(FP), CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

atb32_4x16loop:
	VBROADCASTSS (AX), Y10
	VBROADCASTSS 4(AX), Y11
	VBROADCASTSS 8(AX), Y12
	VBROADCASTSS 12(AX), Y13
	VMOVUPS      (SI), Y8
	VMOVUPS      32(SI), Y9
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3
	VFMADD231PS  Y8, Y12, Y4
	VFMADD231PS  Y9, Y12, Y5
	VFMADD231PS  Y8, Y13, Y6
	VFMADD231PS  Y9, Y13, Y7
	ADDQ         BX, AX
	ADDQ         R12, SI
	DECQ         CX
	JNZ          atb32_4x16loop

	VADDPS  (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	VADDPS  32(DI), Y1, Y1
	VMOVUPS Y1, 32(DI)
	ADDQ    R13, DI
	VADDPS  (DI), Y2, Y2
	VMOVUPS Y2, (DI)
	VADDPS  32(DI), Y3, Y3
	VMOVUPS Y3, 32(DI)
	ADDQ    R13, DI
	VADDPS  (DI), Y4, Y4
	VMOVUPS Y4, (DI)
	VADDPS  32(DI), Y5, Y5
	VMOVUPS Y5, 32(DI)
	ADDQ    R13, DI
	VADDPS  (DI), Y6, Y6
	VMOVUPS Y6, (DI)
	VADDPS  32(DI), Y7, Y7
	VMOVUPS Y7, 32(DI)
	VZEROUPPER
	RET

// func atb32Kernel1x16(a *float32, lda int, b *float32, ldb int, c *float32, m int)
TEXT ·atb32Kernel1x16(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), AX
	MOVQ lda+8(FP), BX
	SHLQ $2, BX
	MOVQ b+16(FP), SI
	MOVQ ldb+24(FP), R12
	SHLQ $2, R12
	MOVQ c+32(FP), DI
	MOVQ m+40(FP), CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

atb32_1x16loop:
	VBROADCASTSS (AX), Y10
	VMOVUPS      (SI), Y8
	VMOVUPS      32(SI), Y9
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	ADDQ         BX, AX
	ADDQ         R12, SI
	DECQ         CX
	JNZ          atb32_1x16loop

	VADDPS  (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	VADDPS  32(DI), Y1, Y1
	VMOVUPS Y1, 32(DI)
	VZEROUPPER
	RET

// func atb32Kernel4x8(a *float32, lda int, b *float32, ldb int, c *float32, ldc, m int)
TEXT ·atb32Kernel4x8(SB), NOSPLIT, $0-56
	MOVQ a+0(FP), AX
	MOVQ lda+8(FP), BX
	SHLQ $2, BX
	MOVQ b+16(FP), SI
	MOVQ ldb+24(FP), R12
	SHLQ $2, R12
	MOVQ c+32(FP), DI
	MOVQ ldc+40(FP), R13
	SHLQ $2, R13
	MOVQ m+48(FP), CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

atb32_4x8loop:
	VBROADCASTSS (AX), Y10
	VBROADCASTSS 4(AX), Y11
	VBROADCASTSS 8(AX), Y12
	VBROADCASTSS 12(AX), Y13
	VMOVUPS      (SI), Y8
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y8, Y11, Y1
	VFMADD231PS  Y8, Y12, Y2
	VFMADD231PS  Y8, Y13, Y3
	ADDQ         BX, AX
	ADDQ         R12, SI
	DECQ         CX
	JNZ          atb32_4x8loop

	VADDPS  (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    R13, DI
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    R13, DI
	VADDPS  (DI), Y2, Y2
	VMOVUPS Y2, (DI)
	ADDQ    R13, DI
	VADDPS  (DI), Y3, Y3
	VMOVUPS Y3, (DI)
	VZEROUPPER
	RET

// func atb32Kernel1x8(a *float32, lda int, b *float32, ldb int, c *float32, m int)
TEXT ·atb32Kernel1x8(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), AX
	MOVQ lda+8(FP), BX
	SHLQ $2, BX
	MOVQ b+16(FP), SI
	MOVQ ldb+24(FP), R12
	SHLQ $2, R12
	MOVQ c+32(FP), DI
	MOVQ m+40(FP), CX

	VXORPS Y0, Y0, Y0

atb32_1x8loop:
	VBROADCASTSS (AX), Y10
	VMOVUPS      (SI), Y8
	VFMADD231PS  Y8, Y10, Y0
	ADDQ         BX, AX
	ADDQ         R12, SI
	DECQ         CX
	JNZ          atb32_1x8loop

	VADDPS  (DI), Y0, Y0
	VMOVUPS Y0, (DI)
	VZEROUPPER
	RET

// func abt32Kernel2x4(a0, a1, b0, b1, b2, b3 *float32, k int, out *[8]float32)
TEXT ·abt32Kernel2x4(SB), NOSPLIT, $0-64
	MOVQ a0+0(FP), R8
	MOVQ a1+8(FP), R9
	MOVQ b0+16(FP), R10
	MOVQ b1+24(FP), R11
	MOVQ b2+32(FP), R12
	MOVQ b3+40(FP), R13
	MOVQ k+48(FP), CX
	MOVQ out+56(FP), DI

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

abt32_2x4loop:
	VMOVUPS     (R8), Y8
	VMOVUPS     (R9), Y9
	VMOVUPS     (R10), Y10
	VMOVUPS     (R11), Y11
	VMOVUPS     (R12), Y12
	VMOVUPS     (R13), Y13
	VFMADD231PS Y10, Y8, Y0
	VFMADD231PS Y11, Y8, Y1
	VFMADD231PS Y12, Y8, Y2
	VFMADD231PS Y13, Y8, Y3
	VFMADD231PS Y10, Y9, Y4
	VFMADD231PS Y11, Y9, Y5
	VFMADD231PS Y12, Y9, Y6
	VFMADD231PS Y13, Y9, Y7
	ADDQ        $32, R8
	ADDQ        $32, R9
	ADDQ        $32, R10
	ADDQ        $32, R11
	ADDQ        $32, R12
	ADDQ        $32, R13
	SUBQ        $8, CX
	JNZ         abt32_2x4loop

	// Horizontal reduction of each 8-lane accumulator into out[0..7].
	VEXTRACTF128 $1, Y0, X8
	VADDPS       X8, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VMOVSS       X0, (DI)
	VEXTRACTF128 $1, Y1, X8
	VADDPS       X8, X1, X1
	VHADDPS      X1, X1, X1
	VHADDPS      X1, X1, X1
	VMOVSS       X1, 4(DI)
	VEXTRACTF128 $1, Y2, X8
	VADDPS       X8, X2, X2
	VHADDPS      X2, X2, X2
	VHADDPS      X2, X2, X2
	VMOVSS       X2, 8(DI)
	VEXTRACTF128 $1, Y3, X8
	VADDPS       X8, X3, X3
	VHADDPS      X3, X3, X3
	VHADDPS      X3, X3, X3
	VMOVSS       X3, 12(DI)
	VEXTRACTF128 $1, Y4, X8
	VADDPS       X8, X4, X4
	VHADDPS      X4, X4, X4
	VHADDPS      X4, X4, X4
	VMOVSS       X4, 16(DI)
	VEXTRACTF128 $1, Y5, X8
	VADDPS       X8, X5, X5
	VHADDPS      X5, X5, X5
	VHADDPS      X5, X5, X5
	VMOVSS       X5, 20(DI)
	VEXTRACTF128 $1, Y6, X8
	VADDPS       X8, X6, X6
	VHADDPS      X6, X6, X6
	VHADDPS      X6, X6, X6
	VMOVSS       X6, 24(DI)
	VEXTRACTF128 $1, Y7, X8
	VADDPS       X8, X7, X7
	VHADDPS      X7, X7, X7
	VHADDPS      X7, X7, X7
	VMOVSS       X7, 28(DI)
	VZEROUPPER
	RET
