package vecmath

import (
	"math"
	"math/rand/v2"
	"testing"
)

// Differential tests: every float32 kernel against its float64 twin on
// identical inputs, within an ulp-scaled tolerance. The float64 result on
// float32-representable inputs is within one f64 rounding of exact, so it
// serves as the reference; the f32 path may accumulate one rounding per
// reduction step, giving an error bound of roughly k·ε₃₂ relative to the
// sum of absolute terms. The bound below uses a generous constant (the
// accumulation is random-signed, so typical error is √k·ε₃₂) while
// staying far below anything a broken kernel — wrong lane, stale
// accumulator, off-by-one tail — would produce. Sizes are chosen to
// straddle every dispatch boundary: below the AVX threshold, exactly on a
// lane multiple, and with every tail length.

// randVec32 returns matched f32/f64 vectors with identical values.
func randVec32(rng *rand.Rand, n int) ([]float32, []float64) {
	x32 := make([]float32, n)
	x64 := make([]float64, n)
	for i := range x32 {
		v := float32(rng.NormFloat64())
		x32[i] = v
		x64[i] = float64(v)
	}
	return x32, x64
}

// tol32 is the ulp-scaled error budget for a length-k f32 reduction whose
// terms have absolute sum absSum.
func tol32(k int, absSum float64) float64 {
	const eps32 = 1.0 / (1 << 23)
	return (8 + float64(k)) * eps32 * (absSum + 1e-30)
}

// diffClose fails unless got (f32 path) matches want (f64 twin) within
// the reduction tolerance.
func diffClose(t *testing.T, label string, got float32, want, tol float64) {
	t.Helper()
	if d := math.Abs(float64(got) - want); d > tol || math.IsNaN(float64(got)) {
		t.Fatalf("%s: f32 %v vs f64 %v, |diff| %g > tol %g", label, got, want, d, tol)
	}
}

// sizes straddling the 8/16-lane boundaries and the scalar fallback.
var diffSizes = []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 63, 64, 100, 257}

func TestElementwise32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, n := range diffSizes {
		x32, x64 := randVec32(rng, n)
		y32, y64 := randVec32(rng, n)

		// AXPY32: one product and one add per element.
		g32 := append([]float32(nil), y32...)
		g64 := append([]float64(nil), y64...)
		AXPY32(0.37, x32, g32)
		AXPY(0.37, x64, g64)
		for i := range g32 {
			diffClose(t, "AXPY32", g32[i], g64[i], tol32(2, math.Abs(g64[i])+math.Abs(x64[i])))
		}

		// Add32 / Sub32 / Scale32: exact single-rounding ops.
		s32 := make([]float32, n)
		s64 := make([]float64, n)
		Add32(s32, x32, y32)
		Add(s64, x64, y64)
		for i := range s32 {
			diffClose(t, "Add32", s32[i], s64[i], tol32(1, math.Abs(s64[i])))
		}
		Sub32(s32, x32, y32)
		Sub(s64, x64, y64)
		for i := range s32 {
			diffClose(t, "Sub32", s32[i], s64[i], tol32(1, math.Abs(s64[i])))
		}
		copy(s32, x32)
		copy(s64, x64)
		Scale32(1.7, s32)
		Scale(1.7, s64)
		for i := range s32 {
			diffClose(t, "Scale32", s32[i], s64[i], tol32(1, math.Abs(s64[i])))
		}

		// Dot32 / Norm232: full-length reductions.
		var absSum float64
		for i := range x64 {
			absSum += math.Abs(x64[i] * y64[i])
		}
		diffClose(t, "Dot32", Dot32(x32, y32), Dot(x64, y64), tol32(n, absSum))
		diffClose(t, "Norm232", Norm232(x32), Norm2(x64), tol32(n, Dot(x64, x64)))
	}
}

func TestFused32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	for _, n := range diffSizes {
		x32, x64 := randVec32(rng, n)
		y32, y64 := randVec32(rng, n)
		z32, z64 := randVec32(rng, n)

		a32, b32 := float32(-0.05), float32(0.85)
		AXPYPY32(a32, x32, b32, y32, z32)
		AXPYPY(float64(a32), x64, float64(b32), y64, z64)
		for i := range z32 {
			scale := math.Abs(z64[i]) + math.Abs(x64[i]) + math.Abs(y64[i])
			diffClose(t, "AXPYPY32", z32[i], z64[i], tol32(4, scale))
		}

		d32 := make([]float32, n)
		d64 := make([]float64, n)
		SubScale32(d32, 0.31, x32, y32)
		SubScale(d64, 0.31, x64, y64)
		for i := range d32 {
			diffClose(t, "SubScale32", d32[i], d64[i], tol32(2, math.Abs(x64[i])+math.Abs(y64[i])))
		}
	}
}

func TestGemm32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	// Shapes crossing the 16-column main tile, the 8-column remainder
	// block, the scalar column tail, and the sub-AVX fallback, for each
	// of the three transposition variants and both accumulate modes.
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {3, 5, 7}, {4, 8, 8}, {5, 9, 10},
		{4, 16, 16}, {7, 11, 17}, {8, 24, 24}, {6, 13, 31}, {9, 17, 33},
		{32, 48, 10}, {32, 64, 24}, {16, 100, 40}, {3, 257, 19},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, acc := range []bool{false, true} {
			a32, a64 := randVec32(rng, m*k)
			b32, b64 := randVec32(rng, k*n)
			c32, c64 := randVec32(rng, m*n)
			if !acc {
				Zero32(c32)
				Zero(c64)
			}
			Gemm32(c32, a32, b32, m, k, n, acc)
			Gemm(c64, a64, b64, m, k, n, acc)
			for i := range c32 {
				diffClose(t, "Gemm32", c32[i], c64[i], tol32(k+1, gemmAbsRow(a64, b64, m, k, n, i)))
			}

			// Aᵀ·B: A is m×k with the reduction over m.
			at32, at64 := randVec32(rng, m*k)
			bt32, bt64 := randVec32(rng, m*n)
			ct32, ct64 := randVec32(rng, k*n)
			if !acc {
				Zero32(ct32)
				Zero(ct64)
			}
			GemmATB32(ct32, at32, bt32, m, k, n, acc)
			GemmATB(ct64, at64, bt64, m, k, n, acc)
			for i := range ct32 {
				diffClose(t, "GemmATB32", ct32[i], ct64[i], tol32(m+1, atbAbs(at64, bt64, m, k, n, i)))
			}

			// A·Bᵀ: B is n×k with the reduction over k.
			ab32, ab64 := randVec32(rng, m*k)
			bb32, bb64 := randVec32(rng, n*k)
			cb32, cb64 := randVec32(rng, m*n)
			if !acc {
				Zero32(cb32)
				Zero(cb64)
			}
			GemmABT32(cb32, ab32, bb32, m, k, n, acc)
			GemmABT(cb64, ab64, bb64, m, k, n, acc)
			for i := range cb32 {
				diffClose(t, "GemmABT32", cb32[i], cb64[i], tol32(k+1, abtAbs(ab64, bb64, m, k, n, i)))
			}
		}
	}
}

// gemmAbsRow returns Σ_p |A[i][p]·B[p][j]| + 1 for flat C index ij.
func gemmAbsRow(a, b []float64, m, k, n, ij int) float64 {
	i, j := ij/n, ij%n
	s := 1.0
	for p := 0; p < k; p++ {
		s += math.Abs(a[i*k+p] * b[p*n+j])
	}
	return s
}

func atbAbs(a, b []float64, m, k, n, ij int) float64 {
	p, j := ij/n, ij%n
	s := 1.0
	for i := 0; i < m; i++ {
		s += math.Abs(a[i*k+p] * b[i*n+j])
	}
	return s
}

func abtAbs(a, b []float64, m, k, n, ij int) float64 {
	i, j := ij/n, ij%n
	s := 1.0
	for p := 0; p < k; p++ {
		s += math.Abs(a[i*k+p] * b[j*k+p])
	}
	return s
}

func TestSparse32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	const d = 300
	for _, nnz := range diffSizes {
		idx := make([]int32, nnz)
		for i := range idx {
			idx[i] = int32(rng.IntN(d))
		}
		val32, val64 := randVec32(rng, nnz)
		y32, y64 := randVec32(rng, d)

		g32 := append([]float32(nil), y32...)
		g64 := append([]float64(nil), y64...)
		ScatterAXPY32(0.42, idx, val32, g32)
		ScatterAXPY(0.42, idx, val64, g64)
		for i := range g32 {
			// Duplicate indices accumulate, so budget the whole nnz.
			diffClose(t, "ScatterAXPY32", g32[i], g64[i], tol32(nnz+1, math.Abs(g64[i])+1))
		}

		var absSum float64
		for j := range idx {
			absSum += math.Abs(val64[j] * y64[idx[j]])
		}
		diffClose(t, "GatherDot32", GatherDot32(idx, val32, y32), GatherDot(idx, val64, y64), tol32(nnz, absSum))
	}
}

// TestScatterAXPY32DuplicateOrder pins the sequential duplicate-index
// semantics of the asm path against the scalar definition.
func TestScatterAXPY32DuplicateOrder(t *testing.T) {
	idx := []int32{3, 3, 3, 3, 1, 3, 1, 3, 3, 0}
	val := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	y := make([]float32, 4)
	want := make([]float32, 4)
	for j, ix := range idx {
		want[ix] += 0.5 * val[j]
	}
	ScatterAXPY32(0.5, idx, val, y)
	for i := range y {
		if math.Abs(float64(y[i]-want[i])) > 1e-5 {
			t.Fatalf("duplicate-index scatter: y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

// TestWidenNarrowRoundTrip pins the exactness property the fl bridge
// buffers rely on: Narrow∘Widen is the identity on float32 values.
func TestWidenNarrowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 20))
	x32, _ := randVec32(rng, 257)
	wide := make([]float64, len(x32))
	back := make([]float32, len(x32))
	Widen(wide, x32)
	Narrow(back, wide)
	for i := range x32 {
		if back[i] != x32[i] {
			t.Fatalf("Narrow(Widen(x))[%d] = %v, want %v", i, back[i], x32[i])
		}
	}
}

func TestLengthMismatchPanics32(t *testing.T) {
	for name, fn := range map[string]func(){
		"Add32":     func() { Add32(make([]float32, 2), make([]float32, 3), make([]float32, 3)) },
		"AXPY32":    func() { AXPY32(1, make([]float32, 2), make([]float32, 3)) },
		"Dot32":     func() { Dot32(make([]float32, 2), make([]float32, 3)) },
		"AXPYPY32":  func() { AXPYPY32(1, make([]float32, 2), 1, make([]float32, 3), make([]float32, 3)) },
		"Gemm32":    func() { Gemm32(make([]float32, 4), make([]float32, 3), make([]float32, 4), 2, 2, 2, false) },
		"Scatter32": func() { ScatterAXPY32(1, make([]int32, 2), make([]float32, 3), make([]float32, 4)) },
		"Widen":     func() { Widen(make([]float64, 2), make([]float32, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}
