//go:build amd64 && !noasm

package vecmath

// sigmoid32Kernel writes dst[i] = 1/(1+e^-x[i]) over the first n
// elements with AVX2+FMA; n must be a positive multiple of math32Lanes.
// dst may alias x.
//
//go:noescape
func sigmoid32Kernel(x, dst *float32, n int)

// tanh32Kernel writes dst[i] = tanh(x[i]) over the first n elements with
// AVX2+FMA; n must be a positive multiple of math32Lanes. dst may alias
// x.
//
//go:noescape
func tanh32Kernel(x, dst *float32, n int)
