package vecmath

// Float32 twins of the sparse level-1 kernels in sparse.go. Indices stay
// int32 (the on-the-wire coordinate width); only the values change
// precision. ScatterAXPY32 keeps the strict in-order entry processing of
// its f64 twin, so duplicate indices accumulate sequentially on both
// paths.

// sparseLanes32 is the entry count each f32 assembly loop iteration
// consumes (one 8-wide YMM vector of float32 values plus eight int32
// indices); tails shorter than this run in pure Go.
const sparseLanes32 = 8

// ScatterAXPY32 computes y[idx[j]] += alpha * val[j] for every sparse
// entry, in order.
func ScatterAXPY32(alpha float32, idx []int32, val []float32, y []float32) {
	checkLen("ScatterAXPY32", len(idx), len(val))
	n := len(idx)
	i := 0
	if useAVX && n >= sparseLanes32 {
		head := n &^ (sparseLanes32 - 1)
		scatterAXPY32Kernel(alpha, &idx[0], &val[0], &y[0], head)
		i = head
	}
	for ; i < n; i++ {
		y[idx[i]] += alpha * val[i]
	}
}

// GatherDot32 returns Σ_j val[j] * y[idx[j]] without densifying. Like
// GatherDot, the asm path reduces its lanes pairwise at the end, so the
// summation order differs from the scalar fallback.
func GatherDot32(idx []int32, val, y []float32) float32 {
	checkLen("GatherDot32", len(idx), len(val))
	n := len(idx)
	var s float32
	i := 0
	if useAVX && n >= sparseLanes32 {
		head := n &^ (sparseLanes32 - 1)
		s = gatherDot32Kernel(&idx[0], &val[0], &y[0], head)
		i = head
	}
	for ; i < n; i++ {
		s += val[i] * y[idx[i]]
	}
	return s
}
