package simclock

import (
	"math"
	"testing"
)

func TestPlainProfile(t *testing.T) {
	c := Plain()
	if c.GradEvalsPerStep != 1 || c.AuxPerStep != 0 || c.AuxPerRound != 0 {
		t.Fatalf("Plain() = %+v", c)
	}
}

func TestRoundSecondsScalesLinearly(t *testing.T) {
	c := Plain()
	one := RoundSeconds(1_000_000, 1, c)
	ten := RoundSeconds(1_000_000, 10, c)
	if math.Abs(ten-10*one) > 1e-12 {
		t.Fatalf("RoundSeconds not linear in steps: %v vs %v", ten, 10*one)
	}
	double := RoundSeconds(2_000_000, 1, c)
	if math.Abs(double-2*one) > 1e-12 {
		t.Fatalf("RoundSeconds not linear in flops: %v vs %v", double, 2*one)
	}
}

func TestAuxPerRoundAddsOnce(t *testing.T) {
	c := Costs{GradEvalsPerStep: 1, AuxPerRound: 2}
	withAux := RoundSeconds(1_000_000, 5, c)
	without := RoundSeconds(1_000_000, 5, Plain())
	gradSec := 1_000_000.0 / EdgeDeviceFlopsPerSecond
	if math.Abs(withAux-without-2*gradSec) > 1e-12 {
		t.Fatalf("AuxPerRound contribution wrong: %v", withAux-without)
	}
}

func TestPer100StepsMatchesPaperCalibration(t *testing.T) {
	// The calibrated constants must land within a few points of the
	// paper's Table I FMNIST overhead percentages.
	base := Per100Steps(1_000_000, Plain())
	overhead := func(aux float64) float64 {
		c := Costs{GradEvalsPerStep: 1, AuxPerStep: aux}
		return 100 * (Per100Steps(1_000_000, c) - base) / base
	}
	tests := []struct {
		name string
		aux  float64
		want float64 // paper Table I, FMNIST
	}{
		{"FedProx", CostProxTerm, 23.52},
		{"Scaffold", CostControlVariate, 7.73},
		{"STEM", CostSTEMExtraGrad, 40.86},
		{"FedACG", CostACGTerm, 24.15},
	}
	for _, tt := range tests {
		if got := overhead(tt.aux); math.Abs(got-tt.want) > 3 {
			t.Fatalf("%s modeled overhead %.2f%%, paper %.2f%%", tt.name, got, tt.want)
		}
	}
	// TACO's overhead must stay small (Table III: +6.9%).
	if got := overhead(CostTACOCorrection); got > 8 {
		t.Fatalf("TACO modeled overhead %.2f%% too large", got)
	}
}

func TestPer100StepsIgnoresPerRoundAux(t *testing.T) {
	withRound := Costs{GradEvalsPerStep: 1, AuxPerRound: 100}
	if Per100Steps(1_000_000, withRound) != Per100Steps(1_000_000, Plain()) {
		t.Fatal("Per100Steps must exclude per-round costs (Table I times local updates only)")
	}
}
