package simclock

import (
	"math"
	"testing"
)

func TestTraceAlwaysAvailable(t *testing.T) {
	var tr Trace // zero value
	for _, at := range []float64{0, 1.5, 1e9} {
		if !tr.Available(at) {
			t.Fatalf("zero trace unavailable at %v", at)
		}
		if got := tr.NextAvailable(at); got != at {
			t.Fatalf("NextAvailable(%v) = %v, want identity", at, got)
		}
	}
}

func TestTraceWindows(t *testing.T) {
	tr := Trace{PeriodSec: 10, OnFraction: 0.3}
	cases := []struct {
		at        float64
		available bool
		next      float64
	}{
		{0, true, 0},
		{2.9, true, 2.9},
		{3, false, 10},
		{9.9, false, 10},
		{10, true, 10},
		{12.9, true, 12.9},
		{13, false, 20},
	}
	for _, c := range cases {
		if got := tr.Available(c.at); got != c.available {
			t.Fatalf("Available(%v) = %v, want %v", c.at, got, c.available)
		}
		if got := tr.NextAvailable(c.at); math.Abs(got-c.next) > 1e-9 {
			t.Fatalf("NextAvailable(%v) = %v, want %v", c.at, got, c.next)
		}
	}
}

func TestTraceOffset(t *testing.T) {
	tr := Trace{PeriodSec: 10, OnFraction: 0.5, OffsetSec: 4}
	if !tr.Available(4) || !tr.Available(8.9) {
		t.Fatal("offset window start misplaced")
	}
	if tr.Available(9) || tr.Available(13.9) {
		t.Fatal("offset window end misplaced")
	}
	if got := tr.NextAvailable(9); math.Abs(got-14) > 1e-9 {
		t.Fatalf("NextAvailable(9) = %v, want 14", got)
	}
	// Times before the first cycle origin still resolve.
	if got := tr.NextAvailable(0); math.Abs(got-0) > 1e-9 && math.Abs(got-4) > 1e-9 {
		t.Fatalf("NextAvailable(0) = %v", got)
	}
}

func TestTraceValidate(t *testing.T) {
	bad := []Trace{
		{PeriodSec: -1},
		{PeriodSec: 5},                  // missing on-fraction
		{PeriodSec: 5, OnFraction: 1.5}, // above one
		{PeriodSec: math.NaN()},
		{PeriodSec: 5, OnFraction: 0.5, OffsetSec: math.NaN()},
		{PeriodSec: 5, OnFraction: 0.5, OffsetSec: math.Inf(1)},
	}
	for _, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Fatalf("trace %+v accepted", tr)
		}
	}
	good := []Trace{{}, {PeriodSec: 5, OnFraction: 0.5}, {PeriodSec: 5, OnFraction: 1}}
	for _, tr := range good {
		if err := tr.Validate(); err != nil {
			t.Fatalf("trace %+v rejected: %v", tr, err)
		}
	}
}

func TestDeviceProfileValidate(t *testing.T) {
	for _, p := range []DeviceProfile{{}, {SpeedFactor: -1}, {SpeedFactor: math.Inf(1)}} {
		if err := p.Validate(); err == nil {
			t.Fatalf("profile %+v accepted", p)
		}
	}
	if err := (DeviceProfile{SpeedFactor: 2.5}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFleets(t *testing.T) {
	for _, name := range FleetNames() {
		fleet, err := FleetByName(name, 20, 1.0, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(fleet) != 20 {
			t.Fatalf("%s fleet has %d devices, want 20", name, len(fleet))
		}
		for i, p := range fleet {
			if err := p.Validate(); err != nil {
				t.Fatalf("%s fleet device %d: %v", name, i, err)
			}
		}
		// Deterministic for a fixed seed.
		again, _ := FleetByName(name, 20, 1.0, 7)
		for i := range fleet {
			if fleet[i] != again[i] {
				t.Fatalf("%s fleet not deterministic at device %d", name, i)
			}
		}
	}
	if _, err := FleetByName("nope", 5, 1.0, 1); err == nil {
		t.Fatal("expected error for unknown fleet")
	}
}

func TestFleetShapes(t *testing.T) {
	uniform := UniformFleet(8)
	for _, p := range uniform {
		if p.SpeedFactor != 1 || p.Availability.PeriodSec != 0 {
			t.Fatalf("uniform fleet not nominal: %+v", p)
		}
	}
	mild := MildFleet(50, 3)
	for _, p := range mild {
		if p.SpeedFactor < 0.8 || p.SpeedFactor > 2.5 {
			t.Fatalf("mild speed %v outside [0.8, 2.5]", p.SpeedFactor)
		}
		if p.Availability.PeriodSec != 0 {
			t.Fatal("mild fleet must be always available")
		}
	}
	extreme := ExtremeFleet(40, 2.0, 3)
	stragglers := 0
	for _, p := range extreme {
		if p.SpeedFactor >= 4 {
			stragglers++
			if p.Availability.PeriodSec != 40 {
				t.Fatalf("straggler availability period %v, want 20× nominal", p.Availability.PeriodSec)
			}
		}
	}
	if stragglers != 10 {
		t.Fatalf("extreme fleet has %d stragglers of 40, want 10", stragglers)
	}
}

func TestDeviceSeconds(t *testing.T) {
	p := DeviceProfile{SpeedFactor: 3}
	if got := p.Seconds(2); got != 6 {
		t.Fatalf("Seconds(2) at 3× = %v, want 6", got)
	}
}
