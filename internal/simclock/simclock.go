// Package simclock models client-side computation time deterministically.
//
// The paper's time-to-accuracy results (Table I, Table III, Fig. 4, Fig. 5)
// measure wall-clock client time in the authors' PyTorch stack, where the
// relative overhead of each algorithm's auxiliary work (prox terms inside
// the autograd loss, control-variate additions, a second gradient pass) is
// an implementation property as much as a flop count. To reproduce the
// *shape* of those results on any machine, this package provides a cost
// model with per-operation constants calibrated once against the paper's
// Table I column for FMNIST:
//
//	FedAvg/FoolsGold +0%, Scaffold ≈ +8%, FedProx ≈ +22%,
//	FedACG ≈ +23%, STEM ≈ +41%, TACO ≈ +5% (Table III: 4.81s vs 4.50s).
//
// The engine additionally records real measured Go time per client, so
// every timing table reports both the modeled (deterministic) and measured
// (machine-specific) values.
package simclock

// Calibrated per-step auxiliary costs, expressed in units of one mini-batch
// gradient evaluation. See the package comment for the calibration source.
const (
	// CostProxTerm models a proximal term evaluated inside the training
	// loss (FedProx), which in an eager framework pays autograd overhead
	// proportional to a sizable fraction of a gradient pass.
	CostProxTerm = 0.22
	// CostACGTerm models FedACG's momentum-shifted proximal term.
	CostACGTerm = 0.23
	// CostControlVariate models Scaffold's per-step control-variate add.
	CostControlVariate = 0.075
	// CostSTEMExtraGrad models STEM's second gradient evaluation per step.
	// It is cheaper than a full 1.0 because the second pass reuses the
	// loaded batch and framework bookkeeping.
	CostSTEMExtraGrad = 0.41
	// CostTACOCorrection models TACO's single AXPY per local step.
	CostTACOCorrection = 0.045
)

// EdgeDeviceFlopsPerSecond is the nominal compute rate of the simulated
// edge client. Only ratios matter for the reproduced tables; the constant
// pins the absolute scale to something edge-CPU-like.
const EdgeDeviceFlopsPerSecond = 2e9

// Costs describes one algorithm's per-step computation profile.
type Costs struct {
	// GradEvalsPerStep counts full mini-batch gradient evaluations per
	// local step (1 for every method here; STEM's second pass is charged
	// via AuxPerStep at its calibrated discount).
	GradEvalsPerStep float64
	// AuxPerStep is the per-local-step auxiliary cost in gradient-
	// evaluation units.
	AuxPerStep float64
	// AuxPerRound is a once-per-round client-side cost in gradient-
	// evaluation units (for example Scaffold's control-variate refresh).
	AuxPerRound float64
}

// Plain returns the FedAvg profile: one gradient evaluation per step and
// nothing else.
func Plain() Costs { return Costs{GradEvalsPerStep: 1} }

// RoundSeconds returns the modeled client computation time for one round
// of localSteps local updates with the given per-gradient-evaluation flop
// cost.
func RoundSeconds(gradFlops int64, localSteps int, c Costs) float64 {
	gradSec := float64(gradFlops) / EdgeDeviceFlopsPerSecond
	perStep := (c.GradEvalsPerStep + c.AuxPerStep) * gradSec
	return float64(localSteps)*perStep + c.AuxPerRound*gradSec
}

// Per100Steps returns the modeled time of 100 local updates, the unit used
// by the paper's Table I.
func Per100Steps(gradFlops int64, c Costs) float64 {
	return RoundSeconds(gradFlops, 100, Costs{
		GradEvalsPerStep: c.GradEvalsPerStep,
		AuxPerStep:       c.AuxPerStep,
	})
}
