package simclock

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Trace is a deterministic periodic availability schedule: the device is
// reachable during the first OnFraction of every PeriodSec-long cycle,
// with the cycle origin shifted by OffsetSec. The zero value (PeriodSec
// 0) means always available. Traces are pure functions of time, so the
// event-driven scheduler stays bit-reproducible at any parallelism.
type Trace struct {
	// PeriodSec is the cycle length in modeled seconds; 0 disables the
	// trace (always available).
	PeriodSec float64
	// OnFraction ∈ (0,1] is the fraction of each cycle, measured from the
	// cycle start, during which the device is reachable.
	OnFraction float64
	// OffsetSec shifts the cycle origin, decorrelating devices that share
	// a period.
	OffsetSec float64
}

// Validate reports malformed traces.
func (tr Trace) Validate() error {
	switch {
	case tr.PeriodSec < 0 || math.IsNaN(tr.PeriodSec) || math.IsInf(tr.PeriodSec, 0):
		return fmt.Errorf("simclock: trace period %v must be a finite non-negative value", tr.PeriodSec)
	case tr.PeriodSec > 0 && !(tr.OnFraction > 0 && tr.OnFraction <= 1):
		return fmt.Errorf("simclock: trace on-fraction %v must be in (0,1]", tr.OnFraction)
	case math.IsNaN(tr.OffsetSec) || math.IsInf(tr.OffsetSec, 0):
		return fmt.Errorf("simclock: trace offset %v must be finite", tr.OffsetSec)
	}
	return nil
}

// phase returns the position of time t inside its cycle, in [0, PeriodSec).
func (tr Trace) phase(t float64) float64 {
	p := math.Mod(t-tr.OffsetSec, tr.PeriodSec)
	if p < 0 {
		p += tr.PeriodSec
	}
	return p
}

// Available reports whether the device is reachable at modeled time t.
func (tr Trace) Available(t float64) bool {
	if tr.PeriodSec <= 0 {
		return true
	}
	return tr.phase(t) < tr.OnFraction*tr.PeriodSec
}

// NextAvailable returns the earliest modeled time ≥ t at which the device
// is reachable.
func (tr Trace) NextAvailable(t float64) float64 {
	if tr.PeriodSec <= 0 || tr.Available(t) {
		return t
	}
	return t + tr.PeriodSec - tr.phase(t)
}

// DeviceProfile models one client's hardware heterogeneity: how much
// slower than the nominal edge device it computes, and when it is
// reachable at all.
type DeviceProfile struct {
	// SpeedFactor multiplies the client's modeled computation time:
	// 1 is the nominal EdgeDeviceFlopsPerSecond device, 4 is 4× slower.
	SpeedFactor float64
	// Availability is the device's deterministic on/off trace; the zero
	// value means always available.
	Availability Trace
}

// Validate reports malformed profiles.
func (p DeviceProfile) Validate() error {
	if !(p.SpeedFactor > 0) || math.IsInf(p.SpeedFactor, 0) {
		return fmt.Errorf("simclock: device speed factor %v must be a finite positive value", p.SpeedFactor)
	}
	return p.Availability.Validate()
}

// Seconds scales a nominal-device duration to this device.
func (p DeviceProfile) Seconds(base float64) float64 { return base * p.SpeedFactor }

// UniformFleet returns n nominal always-available devices — the implicit
// fleet of the paper's synchronous experiments.
func UniformFleet(n int) []DeviceProfile {
	fleet := make([]DeviceProfile, n)
	for i := range fleet {
		fleet[i].SpeedFactor = 1
	}
	return fleet
}

// MildFleet returns n always-available devices with speed factors drawn
// log-uniformly from [0.8, 2.5] — the moderate heterogeneity regime where
// a synchronous server waits ~2–3× longer than the median client.
func MildFleet(n int, seed uint64) []DeviceProfile {
	r := rng.New(seed).Derive("fleet-mild", n)
	fleet := make([]DeviceProfile, n)
	lo, hi := 0.8, 2.5
	for i := range fleet {
		fleet[i].SpeedFactor = lo * math.Exp(r.Float64()*math.Log(hi/lo))
	}
	return fleet
}

// ExtremeFleet returns n devices of which one quarter are stragglers:
// 4–8× slower than nominal and reachable only half the time, cycling
// with a period of 20 nominal rounds. The rest draw speed factors from
// [0.8, 1.5]. nominalRoundSec anchors the availability period to the
// workload's modeled round duration.
func ExtremeFleet(n int, nominalRoundSec float64, seed uint64) []DeviceProfile {
	r := rng.New(seed).Derive("fleet-extreme", n)
	fleet := make([]DeviceProfile, n)
	period := 20 * nominalRoundSec
	for i := range fleet {
		if i%4 == 3 { // every fourth device is a straggler
			fleet[i].SpeedFactor = 4 + 4*r.Float64()
			fleet[i].Availability = Trace{
				PeriodSec:  period,
				OnFraction: 0.5,
				OffsetSec:  r.Float64() * period,
			}
		} else {
			fleet[i].SpeedFactor = 0.8 + 0.7*r.Float64()
		}
	}
	return fleet
}

// FleetNames lists the named heterogeneity profiles accepted by
// FleetByName, mildest first.
func FleetNames() []string { return []string{"uniform", "mild", "extreme"} }

// FleetByName constructs one of the named fleets. nominalRoundSec anchors
// availability periods (only the extreme fleet uses it); seed drives the
// deterministic speed draws.
func FleetByName(name string, n int, nominalRoundSec float64, seed uint64) ([]DeviceProfile, error) {
	switch name {
	case "uniform":
		return UniformFleet(n), nil
	case "mild":
		return MildFleet(n, seed), nil
	case "extreme":
		return ExtremeFleet(n, nominalRoundSec, seed), nil
	default:
		return nil, fmt.Errorf("simclock: unknown fleet %q (valid: %v)", name, FleetNames())
	}
}
