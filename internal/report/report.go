// Package report renders the reproduced tables and figures as text. Every
// experiment runner in internal/experiments produces a Table or Series
// bundle, which these helpers print in the row/column layout of the
// corresponding paper artifact.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are printed after the table body, one per line.
	Notes []string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = pad(cell, width)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(t.Columns)
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Series is one labelled curve of a reproduced figure: y values over x.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a set of curves plus axis labels, rendered as aligned columns
// (one block per series) so the curve shapes can be compared numerically.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render writes every series as "x y" rows grouped by label.
func (f *Figure) Render(w io.Writer) {
	if f.Title != "" {
		fmt.Fprintf(w, "%s\n", f.Title)
	}
	for _, s := range f.Series {
		fmt.Fprintf(w, "series %q (%s -> %s):\n", s.Label, f.XLabel, f.YLabel)
		for i := range s.X {
			fmt.Fprintf(w, "  %12.4f %12.4f\n", s.X[i], s.Y[i])
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var b strings.Builder
	f.Render(&b)
	return b.String()
}

// Sparkline summarizes a curve as a compact unicode strip, handy for quick
// CLI inspection of accuracy trajectories.
func Sparkline(ys []float64, lo, hi float64) string {
	if len(ys) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	if hi <= lo {
		hi = lo + 1
	}
	var b strings.Builder
	for _, y := range ys {
		f := (y - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		idx := int(f * float64(len(levels)-1))
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// Pct formats a fraction as a percentage with two decimals ("78.88%").
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// Sec formats seconds with three decimals.
func Sec(v float64) string { return fmt.Sprintf("%.3fs", v) }
