package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Columns: []string{"Method", "Acc"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow("FedAvg", "78.88%")
	tbl.AddRow("TACO", "83.80%")
	s := tbl.String()
	for _, frag := range []string{"Demo", "Method", "FedAvg", "83.80%", "note: a note"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("render missing %q:\n%s", frag, s)
		}
	}
	// Column alignment: header and rows share the same pipe positions.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	var widths []int
	for _, line := range lines[1:4] {
		if len(widths) == 0 {
			widths = []int{len(line)}
			continue
		}
		if len(line) != widths[0] {
			t.Fatalf("misaligned table:\n%s", s)
		}
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{
		Title:  "Curve",
		XLabel: "round",
		YLabel: "acc",
		Series: []Series{{Label: "TACO", X: []float64{1, 2}, Y: []float64{0.5, 0.6}}},
		Notes:  []string{"shape"},
	}
	s := fig.String()
	for _, frag := range []string{"Curve", `series "TACO"`, "0.6000", "note: shape"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("figure missing %q:\n%s", frag, s)
		}
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1}, 0, 1)
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline length %d, want 3", len([]rune(s)))
	}
	if Sparkline(nil, 0, 1) != "" {
		t.Fatal("empty sparkline must be empty")
	}
	// Degenerate range must not panic or divide by zero.
	if s := Sparkline([]float64{1, 1}, 1, 1); len([]rune(s)) != 2 {
		t.Fatal("degenerate range sparkline wrong length")
	}
	// Out-of-range values clamp.
	s = Sparkline([]float64{-10, 10}, 0, 1)
	runes := []rune(s)
	if runes[0] != '▁' || runes[1] != '█' {
		t.Fatalf("clamping failed: %q", s)
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.7888); got != "78.88%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Sec(1.2345); got != "1.234s" && got != "1.235s" {
		t.Fatalf("Sec = %q", got)
	}
}
