package dataset

import (
	"fmt"

	"repro/internal/nn"
)

// Scale selects how large the standard datasets are. ScaleSmall keeps unit
// tests and benchmarks fast; ScaleFull approaches the relative sizes of
// Table IV for the CLI experiment runs.
type Scale int

const (
	// ScaleSmall is the test/bench profile.
	ScaleSmall Scale = iota + 1
	// ScaleFull is the CLI experiment profile.
	ScaleFull
)

func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

func (s Scale) factor() int {
	if s == ScaleFull {
		return 4
	}
	return 1
}

// Names lists the standard dataset names in the paper's Table IV order.
func Names() []string {
	return []string{"mnist", "fmnist", "femnist", "svhn", "cifar10", "cifar100", "adult", "shakespeare"}
}

// Standard builds the named dataset's train and test splits. Difficulty
// knobs are fixed per name so the paper's relative hardness ordering holds
// (see DESIGN.md §1); seed controls the generated instance.
func Standard(name string, scale Scale, seed uint64) (train, test *Dataset, err error) {
	f := scale.factor()
	switch name {
	case "mnist":
		return imageSplit(ImageConfig{
			Name: name, In: nn.Shape{C: 1, H: 8, W: 8}, Classes: 10,
			SharedFrac: 0.15, NoiseStd: 0.45, AmpJitter: 0.15,
		}, 2400*f, 800*f, seed)
	case "fmnist":
		return imageSplit(ImageConfig{
			Name: name, In: nn.Shape{C: 1, H: 8, W: 8}, Classes: 10,
			SharedFrac: 0.35, NoiseStd: 0.65, AmpJitter: 0.25,
		}, 2400*f, 800*f, seed)
	case "femnist":
		return imageSplit(ImageConfig{
			Name: name, In: nn.Shape{C: 1, H: 8, W: 8}, Classes: 62,
			SharedFrac: 0.30, NoiseStd: 0.55, AmpJitter: 0.20,
		}, 3720*f, 1240*f, seed)
	case "svhn":
		return imageSplit(ImageConfig{
			Name: name, In: nn.Shape{C: 3, H: 8, W: 8}, Classes: 10,
			SharedFrac: 0.45, NoiseStd: 0.85, AmpJitter: 0.35,
		}, 2600*f, 900*f, seed)
	case "cifar10":
		return imageSplit(ImageConfig{
			Name: name, In: nn.Shape{C: 3, H: 8, W: 8}, Classes: 10,
			SharedFrac: 0.50, NoiseStd: 0.95, AmpJitter: 0.35,
		}, 2400*f, 800*f, seed)
	case "cifar100":
		// 50 classes rather than 100: the scaled-down ResNet's pooled
		// 16-feature representation saturates near chance on 100 classes
		// within reproducible budgets; 50 keeps the "many classes, deep
		// model" character while leaving the algorithms room to separate.
		return imageSplit(ImageConfig{
			Name: name, In: nn.Shape{C: 3, H: 8, W: 8}, Classes: 50,
			SharedFrac: 0.30, NoiseStd: 0.55, AmpJitter: 0.25,
		}, 3000*f, 1000*f, seed)
	case "adult":
		cfg := TabularConfig{
			Name: name, NumericDims: 6, CatBlocks: []int{4, 3, 5, 2},
			LabelNoise: 0.08, Imbalance: -1.1,
		}
		cfg.N = 2200 * f
		cfg.Walk = 0
		trainD, err := Tabular(cfg, seed)
		if err != nil {
			return nil, nil, err
		}
		cfg.N = 1100 * f
		cfg.Walk = 1
		testD, err := Tabular(cfg, seed)
		if err != nil {
			return nil, nil, err
		}
		return trainD, testD, nil
	case "shakespeare":
		cfg := CharSeqConfig{
			Name: name, Vocab: 12, Steps: 8, Speakers: 20,
			Branch: 3, SpeakerMix: 0.3,
		}
		cfg.N = 4800 * f
		cfg.Walk = 0
		trainD, err := CharSeq(cfg, seed)
		if err != nil {
			return nil, nil, err
		}
		// Same Markov chains (same seed), different text walk: the test
		// split follows the train distribution without sharing windows.
		cfg.N = 1600 * f
		cfg.Walk = 1
		testD, err := CharSeq(cfg, seed)
		if err != nil {
			return nil, nil, err
		}
		return trainD, testD, nil
	default:
		return nil, nil, fmt.Errorf("dataset: unknown standard dataset %q (valid: %v)", name, Names())
	}
}

// Model returns the paper's model family for the named dataset (Table IV),
// built against the standard input geometry.
func Model(name string) (*nn.Network, error) {
	switch name {
	case "mnist", "fmnist", "svhn", "cifar10":
		_, cls, in := standardGeometry(name)
		return nn.CNN(in, cls), nil
	case "femnist":
		_, cls, in := standardGeometry(name)
		return nn.CNN(in, cls), nil
	case "cifar100":
		_, cls, in := standardGeometry(name)
		return nn.ResNetLite(in, cls, 1), nil
	case "adult":
		_, cls, in := standardGeometry(name)
		return nn.MLP(in.Size(), cls), nil
	case "shakespeare":
		return nn.CharLSTM(8, 12, 16), nil
	default:
		return nil, fmt.Errorf("dataset: unknown standard dataset %q (valid: %v)", name, Names())
	}
}

func standardGeometry(name string) (string, int, nn.Shape) {
	switch name {
	case "mnist", "fmnist":
		return name, 10, nn.Shape{C: 1, H: 8, W: 8}
	case "femnist":
		return name, 62, nn.Shape{C: 1, H: 8, W: 8}
	case "svhn", "cifar10":
		return name, 10, nn.Shape{C: 3, H: 8, W: 8}
	case "cifar100":
		return name, 50, nn.Shape{C: 3, H: 8, W: 8}
	case "adult":
		return name, 2, nn.Vec(20)
	case "shakespeare":
		return name, 12, nn.Vec(8 * 12)
	}
	panic("dataset: standardGeometry: unknown name " + name)
}

// imageSplit generates train and test splits from one image config. The
// splits share prototypes (same underlying "world") but contain different
// samples: we generate one dataset and slice it.
func imageSplit(cfg ImageConfig, trainN, testN int, seed uint64) (*Dataset, *Dataset, error) {
	cfg.N = trainN + testN
	full, err := ImageLike(cfg, seed)
	if err != nil {
		return nil, nil, err
	}
	trainIdx := make([]int, trainN)
	testIdx := make([]int, testN)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	for i := range testIdx {
		testIdx[i] = trainN + i
	}
	return full.Subset(trainIdx), full.Subset(testIdx), nil
}
