package dataset

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/rng"
)

// TabularConfig parameterizes the synthetic tabular generator standing in
// for the UCI adult census dataset: a mix of standardized numeric features
// and one-hot categorical blocks, a binary label from a noisy logistic
// ground truth, and class imbalance similar to adult's ~76/24 split.
type TabularConfig struct {
	Name        string
	NumericDims int
	CatBlocks   []int // cardinalities of the categorical features
	N           int
	LabelNoise  float64 // probability of flipping the true label
	Imbalance   float64 // bias added to the logit, shifting the base rate
	Walk        int     // sample-walk id: same seed + different Walk shares the ground truth but draws fresh samples
}

// Features returns the total encoded feature width.
func (c TabularConfig) Features() int {
	total := c.NumericDims
	for _, k := range c.CatBlocks {
		total += k
	}
	return total
}

// Tabular generates a binary-classification tabular dataset.
func Tabular(cfg TabularConfig, seed uint64) (*Dataset, error) {
	if cfg.N <= 0 || cfg.Features() <= 0 {
		return nil, fmt.Errorf("dataset: invalid TabularConfig %+v", cfg)
	}
	// The logistic ground truth depends only on seed; samples also depend
	// on Walk so train/test splits share one "world" without overlapping.
	worldR := rng.New(seed).Derive("world", 0)
	r := rng.New(seed).Derive("samples", cfg.Walk)
	features := cfg.Features()

	// Ground-truth logistic weights over the encoded representation.
	w := make([]float64, features)
	for i := range w {
		w[i] = worldR.Normal(0, 1)
	}

	d := &Dataset{
		Name:    cfg.Name,
		In:      nn.Vec(features),
		Classes: 2,
		X:       make([]float64, cfg.N*features),
		Y:       make([]int, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		row := d.X[i*features : (i+1)*features]
		for j := 0; j < cfg.NumericDims; j++ {
			row[j] = r.Normal(0, 1)
		}
		off := cfg.NumericDims
		for _, k := range cfg.CatBlocks {
			row[off+r.IntN(k)] = 1
			off += k
		}
		logit := cfg.Imbalance
		for j, wj := range w {
			logit += wj * row[j]
		}
		p := 1 / (1 + math.Exp(-logit))
		y := 0
		if r.Float64() < p {
			y = 1
		}
		if r.Float64() < cfg.LabelNoise {
			y = 1 - y
		}
		d.Y[i] = y
	}
	return d, d.Validate()
}
