// Package dataset synthesizes the eight datasets used by the paper's
// evaluation. The real corpora (MNIST, FMNIST, FEMNIST, SVHN, CIFAR-10/100,
// UCI adult, LEAF Shakespeare) cannot be downloaded in this offline
// environment, so each is replaced by a generator that preserves the
// properties the experiments depend on: class structure for label-skew
// partitioning, controllable difficulty so the papers' relative hardness
// ordering holds, and the same model families (CNN on images, MLP on
// tabular data, LSTM on character sequences). DESIGN.md §1 records the
// substitutions.
package dataset

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/rng"
)

// Dataset is a complete supervised dataset with flattened features.
// X holds Len()·In.Size() float64s in row-major order; Y holds one integer
// class label per sample. Groups optionally carries a natural-partition key
// (for example the synthetic speaker of a text sample); it is nil when the
// dataset has no natural grouping.
type Dataset struct {
	Name    string
	In      nn.Shape
	Classes int
	X       []float64
	Y       []int
	Groups  []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Gather copies the samples at the given indices into x (row-major) and y.
// Buffers must hold len(indices) samples.
func (d *Dataset) Gather(indices []int, x []float64, y []int) {
	size := d.In.Size()
	for i, idx := range indices {
		copy(x[i*size:(i+1)*size], d.X[idx*size:(idx+1)*size])
		y[i] = d.Y[idx]
	}
}

// Subset returns a new Dataset containing copies of the samples at the
// given indices (Groups metadata included when present).
func (d *Dataset) Subset(indices []int) *Dataset {
	size := d.In.Size()
	sub := &Dataset{
		Name:    d.Name,
		In:      d.In,
		Classes: d.Classes,
		X:       make([]float64, len(indices)*size),
		Y:       make([]int, len(indices)),
	}
	if d.Groups != nil {
		sub.Groups = make([]int, len(indices))
	}
	for i, idx := range indices {
		copy(sub.X[i*size:(i+1)*size], d.X[idx*size:(idx+1)*size])
		sub.Y[i] = d.Y[idx]
		if d.Groups != nil {
			sub.Groups[i] = d.Groups[idx]
		}
	}
	return sub
}

// LabelCounts returns a histogram of labels.
func (d *Dataset) LabelCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Validate checks internal consistency; generators call it before
// returning and tests use it on partitioned shards.
func (d *Dataset) Validate() error {
	size := d.In.Size()
	if size <= 0 {
		return fmt.Errorf("dataset %s: input shape %v has non-positive size", d.Name, d.In)
	}
	if len(d.X) != len(d.Y)*size {
		return fmt.Errorf("dataset %s: have %d feature floats for %d samples of size %d", d.Name, len(d.X), len(d.Y), size)
	}
	if d.Groups != nil && len(d.Groups) != len(d.Y) {
		return fmt.Errorf("dataset %s: %d group keys for %d samples", d.Name, len(d.Groups), len(d.Y))
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("dataset %s: label %d at sample %d out of range [0,%d)", d.Name, y, i, d.Classes)
		}
	}
	return nil
}

// Sampler draws uniform mini-batches from a dataset, matching the paper's
// "uniformly at random samples a mini batch" local-update model. It owns
// its RNG so concurrent clients sample independently and deterministically.
type Sampler struct {
	data *Dataset
	r    *rng.RNG
	idx  []int
}

// NewSampler creates a mini-batch sampler over data.
func NewSampler(data *Dataset, r *rng.RNG) *Sampler {
	return &Sampler{data: data, r: r}
}

// Stream exposes the sampler's random stream so checkpointing code can
// capture and restore its cursor.
func (s *Sampler) Stream() *rng.RNG { return s.r }

// Batch fills x and y with a uniformly sampled mini-batch of size
// len(y). When the dataset is smaller than the batch, samples repeat.
func (s *Sampler) Batch(x []float64, y []int) {
	n := s.data.Len()
	if n == 0 {
		panic("dataset: sampling from an empty dataset")
	}
	batch := len(y)
	if cap(s.idx) < batch {
		s.idx = make([]int, batch)
	}
	idx := s.idx[:batch]
	for i := range idx {
		idx[i] = s.r.IntN(n)
	}
	s.data.Gather(idx, x, y)
}
