package dataset

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/rng"
)

// ImageConfig parameterizes the synthetic image generator. Each class gets
// a smooth prototype pattern; samples are amplitude-jittered prototypes
// plus Gaussian pixel noise. Difficulty is controlled by three knobs:
//
//   - SharedFrac: fraction of every prototype drawn from a base pattern
//     common to all classes. Higher values make classes harder to separate.
//   - NoiseStd: per-pixel Gaussian noise.
//   - AmpJitter: multiplicative per-sample amplitude variation, creating
//     intra-class diversity.
type ImageConfig struct {
	Name       string
	In         nn.Shape
	Classes    int
	N          int
	SharedFrac float64
	NoiseStd   float64
	AmpJitter  float64
}

// ImageLike generates a synthetic image-classification dataset.
func ImageLike(cfg ImageConfig, seed uint64) (*Dataset, error) {
	if cfg.Classes <= 1 || cfg.N <= 0 || cfg.In.Size() <= 0 {
		return nil, fmt.Errorf("dataset: invalid ImageConfig %+v", cfg)
	}
	r := rng.New(seed)
	size := cfg.In.Size()

	// Class prototypes: shared smooth base + per-class smooth pattern.
	base := smoothPattern(r, cfg.In)
	protos := make([][]float64, cfg.Classes)
	for c := range protos {
		own := smoothPattern(r, cfg.In)
		p := make([]float64, size)
		for i := range p {
			p[i] = cfg.SharedFrac*base[i] + (1-cfg.SharedFrac)*own[i]
		}
		protos[c] = p
	}

	d := &Dataset{
		Name:    cfg.Name,
		In:      cfg.In,
		Classes: cfg.Classes,
		X:       make([]float64, cfg.N*size),
		Y:       make([]int, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		c := i % cfg.Classes // balanced labels
		d.Y[i] = c
		amp := 1 + cfg.AmpJitter*r.Normal(0, 1)
		row := d.X[i*size : (i+1)*size]
		proto := protos[c]
		for j := range row {
			row[j] = amp*proto[j] + r.Normal(0, cfg.NoiseStd)
		}
	}
	// Shuffle so class labels are not ordered.
	r.Shuffle(cfg.N, func(a, b int) {
		d.Y[a], d.Y[b] = d.Y[b], d.Y[a]
		ra := d.X[a*size : (a+1)*size]
		rb := d.X[b*size : (b+1)*size]
		for j := range ra {
			ra[j], rb[j] = rb[j], ra[j]
		}
	})
	return d, d.Validate()
}

// smoothPattern draws a low-frequency pattern by sampling a coarse grid
// and bilinearly upsampling, per channel. Smoothness matters: it gives
// convolutions local structure to exploit, unlike white noise.
func smoothPattern(r *rng.RNG, in nn.Shape) []float64 {
	coarseH := max(in.H/2, 1)
	coarseW := max(in.W/2, 1)
	out := make([]float64, in.Size())
	coarse := make([]float64, coarseH*coarseW)
	for c := 0; c < in.C; c++ {
		for i := range coarse {
			coarse[i] = r.Normal(0, 1)
		}
		chanBias := r.Normal(0, 0.5)
		for y := 0; y < in.H; y++ {
			fy := float64(y) * float64(coarseH-1) / float64(max(in.H-1, 1))
			y0 := int(fy)
			y1 := min(y0+1, coarseH-1)
			wy := fy - float64(y0)
			for x := 0; x < in.W; x++ {
				fx := float64(x) * float64(coarseW-1) / float64(max(in.W-1, 1))
				x0 := int(fx)
				x1 := min(x0+1, coarseW-1)
				wx := fx - float64(x0)
				v := (1-wy)*((1-wx)*coarse[y0*coarseW+x0]+wx*coarse[y0*coarseW+x1]) +
					wy*((1-wx)*coarse[y1*coarseW+x0]+wx*coarse[y1*coarseW+x1])
				out[(c*in.H+y)*in.W+x] = v + chanBias
			}
		}
	}
	return out
}
