package dataset

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
)

func TestStandardNamesAllBuild(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			train, test, err := Standard(name, ScaleSmall, 1)
			if err != nil {
				t.Fatalf("Standard(%q): %v", name, err)
			}
			if err := train.Validate(); err != nil {
				t.Fatalf("train invalid: %v", err)
			}
			if err := test.Validate(); err != nil {
				t.Fatalf("test invalid: %v", err)
			}
			if train.Len() == 0 || test.Len() == 0 {
				t.Fatal("empty split")
			}
			if train.In != test.In || train.Classes != test.Classes {
				t.Fatal("train/test geometry mismatch")
			}
			model, err := Model(name)
			if err != nil {
				t.Fatalf("Model(%q): %v", name, err)
			}
			if model.InShape() != train.In {
				t.Fatalf("model input %v != dataset input %v", model.InShape(), train.In)
			}
			if model.OutSize() != train.Classes {
				t.Fatalf("model classes %d != dataset classes %d", model.OutSize(), train.Classes)
			}
		})
	}
}

func TestStandardUnknownName(t *testing.T) {
	if _, _, err := Standard("nope", ScaleSmall, 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	if _, err := Model("nope"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestStandardDeterministic(t *testing.T) {
	a, _, err := Standard("mnist", ScaleSmall, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Standard("mnist", ScaleSmall, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("features differ for identical seeds")
		}
	}
}

func TestStandardSeedsDiffer(t *testing.T) {
	a, _, err := Standard("mnist", ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Standard("mnist", ScaleSmall, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.X {
		if a.X[i] != b.X[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestScaleFullIsLarger(t *testing.T) {
	small, _, err := Standard("adult", ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := Standard("adult", ScaleFull, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() <= small.Len() {
		t.Fatalf("full scale %d not larger than small %d", full.Len(), small.Len())
	}
}

func TestLabelsRoughlyBalancedImages(t *testing.T) {
	train, _, err := Standard("mnist", ScaleSmall, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := train.LabelCounts()
	want := train.Len() / train.Classes
	for c, n := range counts {
		if n < want/2 || n > want*2 {
			t.Fatalf("class %d has %d samples, want ≈%d", c, n, want)
		}
	}
}

func TestAdultImbalance(t *testing.T) {
	train, _, err := Standard("adult", ScaleSmall, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := train.LabelCounts()
	frac1 := float64(counts[1]) / float64(train.Len())
	if frac1 < 0.1 || frac1 > 0.45 {
		t.Fatalf("positive-class fraction = %v, want minority class like adult", frac1)
	}
}

func TestSubsetAndGather(t *testing.T) {
	train, _, err := Standard("adult", ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{5, 0, 9}
	sub := train.Subset(idx)
	if sub.Len() != 3 {
		t.Fatalf("Subset length %d, want 3", sub.Len())
	}
	size := train.In.Size()
	x := make([]float64, 3*size)
	y := make([]int, 3)
	train.Gather(idx, x, y)
	for i, id := range idx {
		if y[i] != train.Y[id] {
			t.Fatalf("Gather label %d mismatch", i)
		}
		for j := 0; j < size; j++ {
			if x[i*size+j] != train.X[id*size+j] {
				t.Fatalf("Gather features mismatch at sample %d", i)
			}
			if sub.X[i*size+j] != train.X[id*size+j] {
				t.Fatalf("Subset features mismatch at sample %d", i)
			}
		}
	}
}

func TestSubsetPreservesGroups(t *testing.T) {
	train, _, err := Standard("shakespeare", ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	if train.Groups == nil {
		t.Fatal("shakespeare must carry speaker groups")
	}
	sub := train.Subset([]int{0, 10, 20})
	if sub.Groups == nil || len(sub.Groups) != 3 {
		t.Fatal("Subset lost group metadata")
	}
}

func TestSamplerFillsBatches(t *testing.T) {
	train, _, err := Standard("adult", ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(train, rng.New(9))
	size := train.In.Size()
	x := make([]float64, 8*size)
	y := make([]int, 8)
	s.Batch(x, y)
	for _, label := range y {
		if label < 0 || label >= train.Classes {
			t.Fatalf("sampled label %d out of range", label)
		}
	}
	// Two consecutive batches should differ with overwhelming probability.
	x2 := make([]float64, 8*size)
	y2 := make([]int, 8)
	s.Batch(x2, y2)
	sameAll := true
	for i := range y {
		if y[i] != y2[i] {
			sameAll = false
			break
		}
	}
	if sameAll {
		for i := range x {
			if x[i] != x2[i] {
				sameAll = false
				break
			}
		}
	}
	if sameAll {
		t.Fatal("two batches were identical; sampler is not random")
	}
}

func TestCharSeqOneHot(t *testing.T) {
	train, _, err := Standard("shakespeare", ScaleSmall, 2)
	if err != nil {
		t.Fatal(err)
	}
	const vocab = 12
	steps := train.In.Size() / vocab
	row := train.X[:train.In.Size()]
	for tt := 0; tt < steps; tt++ {
		var ones int
		for v := 0; v < vocab; v++ {
			switch row[tt*vocab+v] {
			case 1:
				ones++
			case 0:
			default:
				t.Fatalf("non-binary value in one-hot encoding: %v", row[tt*vocab+v])
			}
		}
		if ones != 1 {
			t.Fatalf("step %d has %d ones, want exactly 1", tt, ones)
		}
	}
}

func TestCharSeqWalksShareChains(t *testing.T) {
	cfg := CharSeqConfig{Name: "x", Vocab: 10, Steps: 5, Speakers: 2, N: 200, Branch: 3, SpeakerMix: 0.3}
	a, err := CharSeq(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Walk = 1
	b, err := CharSeq(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Different walks must produce different text...
	same := true
	for i := range a.X {
		if a.X[i] != b.X[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different walks produced identical text")
	}
}

// trainCentrally runs plain centralized SGD and returns test accuracy; the
// learnability gate for every generator.
func trainCentrally(t *testing.T, name string, steps int, lr float64) float64 {
	t.Helper()
	train, test, err := Standard(name, ScaleSmall, 11)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Model(name)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(12)
	params := model.InitParams(r)
	const batch = 32
	eng := nn.NewEngine(model, max(batch, 64))
	sampler := NewSampler(train, r)
	x := make([]float64, batch*train.In.Size())
	y := make([]int, batch)
	grad := make([]float64, model.NumParams())
	for s := 0; s < steps; s++ {
		sampler.Batch(x, y)
		eng.Gradient(params, x, y, grad)
		for i := range params {
			params[i] -= lr * grad[i]
		}
	}
	return eng.Accuracy(params, test.X, test.Y)
}

func TestLearnabilityMNIST(t *testing.T) {
	if acc := trainCentrally(t, "mnist", 400, 0.1); acc < 0.6 {
		t.Fatalf("mnist accuracy = %v, want >= 0.6", acc)
	}
}

func TestLearnabilityAdult(t *testing.T) {
	if acc := trainCentrally(t, "adult", 400, 0.1); acc < 0.7 {
		t.Fatalf("adult accuracy = %v, want >= 0.7", acc)
	}
}

func TestLearnabilityShakespeare(t *testing.T) {
	if testing.Short() {
		t.Skip("LSTM training is slow")
	}
	if acc := trainCentrally(t, "shakespeare", 800, 2.0); acc < 0.3 {
		t.Fatalf("shakespeare accuracy = %v, want >= 0.3", acc)
	}
}

func TestHardnessOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("trains three models")
	}
	// The paper's relative hardness must hold: mnist easier than fmnist,
	// fmnist easier than cifar10 (after identical budgets).
	mnist := trainCentrally(t, "mnist", 300, 0.1)
	fmnist := trainCentrally(t, "fmnist", 300, 0.1)
	cifar := trainCentrally(t, "cifar10", 300, 0.1)
	if mnist <= fmnist {
		t.Fatalf("mnist (%v) should be easier than fmnist (%v)", mnist, fmnist)
	}
	if fmnist <= cifar {
		t.Fatalf("fmnist (%v) should be easier than cifar10 (%v)", fmnist, cifar)
	}
}
